package shard

import (
	"context"
	"fmt"
	"sync"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// Request bundles one scatter-gather execution: the query, its pinned
// catalog, the per-shard slice versions of the sharded table, and the
// canonical states to evaluate.
type Request struct {
	Stmt     *sqlparse.Stmt
	Cat      *catalog.Catalog
	Table    string
	Slices   []*storage.Table // one per worker, index-aligned
	States   []canonical.State
	UseCache bool
	Positive func(cat *catalog.Catalog, base expr.Node, tables []string) bool
	Maint    func(stmt *sqlparse.Stmt, dp *exec.DataPlan) any
}

// ShardInfo is one shard's provenance in a gathered result.
type ShardInfo struct {
	Fingerprint string
	Rows        int
	Groups      int
	StateHits   int
	FromCache   bool
}

// Merged is a gathered result: the ⊕-merge of every worker's partial.
// Vals[i] holds state States[i] of the request, aligned with Keys.
type Merged struct {
	Keys     []cache.GroupKey
	KeyNames []string
	KeyCols  []*storage.Column
	Vals     [][]float64
	Pos      []bool
	Rows     int
	Kernels  []string
	Shards   []ShardInfo
}

// Gather scatters the request across the workers (one goroutine each),
// waits for every worker to finish, and ⊕-merges the partials in shard
// order. Failure semantics are all-or-nothing: the first scan error or
// panic cancels the siblings, every goroutine is awaited (no leaks), and
// the caller sees exactly one error wrapping errs.ErrShard and the
// underlying cause — never a partial result.
func Gather(ctx context.Context, workers []Worker, req *Request) (m *Merged, err error) {
	// Coordinator-side panics (merge, post-merge) get the same typed
	// error as worker-side ones: the caller always sees one ErrShard,
	// never an unwound stack with goroutines still draining.
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("%w: gather panic: %v", errs.ErrShard, r)
		}
	}()
	if len(workers) == 0 || len(workers) != len(req.Slices) {
		return nil, fmt.Errorf("%w: %d workers for %d slices", errs.ErrShard, len(workers), len(req.Slices))
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	parts := make([]*Partial, len(workers))
	var (
		mu      sync.Mutex
		firstEl int
		firstEr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstEr == nil {
			firstEl, firstEr = i, err
			cancel()
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w Worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(i, fmt.Errorf("scan panic: %v", r))
				}
			}()
			p, err := w.Scan(gctx, &ScanRequest{
				Stmt: req.Stmt, Cat: req.Cat, Slice: req.Slices[i],
				States: req.States, UseCache: req.UseCache,
				Positive: req.Positive, Maint: req.Maint,
			})
			if err != nil {
				fail(i, err)
				return
			}
			parts[i] = p
		}(i, w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, fmt.Errorf("%w: shard %d: %w", errs.ErrShard, firstEl, firstEr)
	}
	m, err = MergePartials(req.States, parts)
	if err != nil {
		return nil, fmt.Errorf("%w: merge: %w", errs.ErrShard, err)
	}
	if err := faultinject.Hit(faultinject.PointShardStall); err != nil {
		return nil, fmt.Errorf("%w: gather: %w", errs.ErrShard, err)
	}
	return m, nil
}

// MergePartials folds the workers' partials in shard order with the
// delta-merge machinery of incremental ingestion: the union group set
// keeps earlier shards' group order with new groups appended in
// appearance order (which, for contiguous row-range shards, is exactly
// the single-engine first-appearance order), absent groups pad with the
// state's ⊕-identity, and positivity ANDs across shards. fp-exact: the
// merge performs the same ⊕ reductions, in the same order, as the
// engine's own morsel-merge over one table.
func MergePartials(states []canonical.State, parts []*Partial) (*Merged, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("no partials")
	}
	seen := make(map[string]bool, len(states))
	for _, st := range states {
		if k := st.Key(); seen[k] {
			return nil, fmt.Errorf("duplicate state %s", k)
		} else {
			seen[k] = true
		}
	}
	m := &Merged{
		Vals: make([][]float64, len(states)),
		Pos:  make([]bool, len(states)),
	}
	kernels := map[string]bool{} // dedup; m.Kernels keeps first-shard-order

	p0 := parts[0]
	gt := cache.NewGroupTable("shard-merge", p0.KeyNames, p0.Keys, p0.KeyCols)
	for i, st := range states {
		if err := gt.AddState(&cache.CachedState{State: st, Vals: p0.Vals[i], PositiveInput: p0.Pos[i]}); err != nil {
			return nil, err
		}
	}
	note := func(p *Partial) {
		m.Rows += p.Rows
		m.Shards = append(m.Shards, ShardInfo{
			Fingerprint: p.Fingerprint, Rows: p.Rows, Groups: len(p.Keys),
			StateHits: p.StateHits, FromCache: p.FromCache,
		})
		for _, k := range p.Kernels {
			if !kernels[k] {
				kernels[k] = true
				m.Kernels = append(m.Kernels, k)
			}
		}
	}
	note(p0)

	for _, p := range parts[1:] {
		if err := faultinject.Hit(faultinject.PointShardMerge); err != nil {
			return nil, err
		}
		deltaVals := make(map[string][]float64, len(states))
		deltaPos := make(map[string]bool, len(states))
		for i, st := range states {
			deltaVals[st.Key()] = p.Vals[i]
			deltaPos[st.Key()] = p.Pos[i]
		}
		next, err := cache.MergeDelta(gt.SnapshotEntry(), "shard-merge", p.Keys, p.KeyCols, deltaVals, deltaPos, nil)
		if err != nil {
			return nil, err
		}
		gt = next
		note(p)
	}

	m.Keys, m.KeyNames, m.KeyCols = gt.Keys, gt.KeyNames, gt.KeyCols
	for i, st := range states {
		cs, ok := gt.Exact(st.Key())
		if !ok {
			return nil, fmt.Errorf("state %s lost in merge", st.Key())
		}
		m.Vals[i] = cs.Vals
		m.Pos[i] = cs.PositiveInput
	}
	return m, nil
}
