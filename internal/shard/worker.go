// Package shard implements scatter-gather aggregation over a table
// partitioned into contiguous row-range shards. The paper's canonical
// decomposition makes this almost free: every SUDAF reduces to
// commutative-monoid states (F, ⊕, T), so the partial F-states computed
// per shard ⊕-merge into exactly the single-engine answer and the
// terminating function T runs once at the coordinator.
//
// The package is deliberately engine-agnostic at the seams: the
// coordinator (Gather) talks to shards through the Worker interface, so
// the in-process InProc worker used today can later be replaced by a
// node abstraction over the HTTP serving layer. Each worker owns its own
// state cache, which keeps Theorem 4.1 sharing local to the shard: a
// warm shard serves its partial from cache (zero rows scanned) while a
// cold one recomputes only its own partition.
package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

// ScanRequest asks one worker for its partial aggregation states over
// its slice of the sharded table.
type ScanRequest struct {
	// Stmt is the parsed query (FROM/WHERE/GROUP BY shape the scan; the
	// select list and ORDER BY/LIMIT are coordinator business).
	Stmt *sqlparse.Stmt
	// Cat is the query's pinned catalog snapshot. The worker overlays it
	// with Slice under the sharded table's name, so every other table
	// resolves at exactly the version the coordinator pinned.
	Cat *catalog.Catalog
	// Slice is this worker's sealed, epoch-stamped row-range version of
	// the sharded table. Its epoch is stable across queries, which is
	// what makes per-shard cache fingerprints reusable.
	Slice *storage.Table
	// States are the canonical aggregation states to evaluate, in the
	// coordinator's output order. Keys must be distinct.
	States []canonical.State
	// UseCache consults and fills the worker's state cache (Share mode).
	UseCache bool
	// Positive reports whether a state's base expression is provably
	// positive over the catalog's data (the engine's static positivity
	// check; per-shard positivity AND-merges into whole-table positivity).
	Positive func(cat *catalog.Catalog, base expr.Node, tables []string) bool
	// Maint builds the maintenance record stored with a cached partial
	// so the append path can ⊕-maintain it (nil-able).
	Maint func(stmt *sqlparse.Stmt, dp *exec.DataPlan) any
}

// Partial is one worker's contribution: per-group state values over its
// slice, in the worker's group order. Vals[i] is aligned with Keys and
// holds state States[i] of the originating request.
type Partial struct {
	Fingerprint string
	Keys        []cache.GroupKey
	KeyNames    []string
	KeyCols     []*storage.Column
	Vals        [][]float64
	Pos         []bool // per state: base provably positive on this shard
	Rows        int    // base rows scanned (0 on a full cache hit)
	Kernels     []string
	StateHits   int  // states served from this worker's cache
	FromCache   bool // entire partial served from cache, no scan
}

// WorkerStats are one worker's lifetime counters.
type WorkerStats struct {
	Scans       int64 // scatter scans executed (including full cache hits)
	FullHits    int64 // scans answered entirely from the worker's cache
	StateHits   int64 // individual states served from the worker's cache
	RowsScanned int64 // base rows read by partial recomputations
}

// Worker is one shard's execution endpoint. InProc implements it in
// process; a future remote implementation can proxy it over the serving
// layer.
type Worker interface {
	// Scan evaluates the request's states over the worker's slice.
	Scan(ctx context.Context, req *ScanRequest) (*Partial, error)
	// StateCache exposes the worker's private state cache (maintenance,
	// EXPLAIN probing, tests).
	StateCache() *cache.Cache
	// Stats returns lifetime counters.
	Stats() WorkerStats
	// ClearCache drops the worker's cached partials.
	ClearCache()
}

// InProc is the in-process Worker: it shares the session's exec engine
// (and therefore its worker-token pool) but owns a private striped state
// cache sized to its share of the session budget.
type InProc struct {
	eng         *exec.Engine
	cache       atomic.Pointer[cache.Cache]
	cacheBytes  int64
	cacheShards int
	space       *symbolic.Space

	scans       atomic.Int64
	fullHits    atomic.Int64
	stateHits   atomic.Int64
	rowsScanned atomic.Int64
}

// NewInProc builds an in-process worker around the given engine with a
// private cache of cacheBytes capacity (≤0 picks the cache default).
func NewInProc(eng *exec.Engine, cacheBytes int64, cacheShards int, space *symbolic.Space) *InProc {
	w := &InProc{eng: eng, cacheBytes: cacheBytes, cacheShards: cacheShards, space: space}
	w.cache.Store(cache.NewSharded(cacheBytes, cacheShards, space))
	return w
}

// StateCache returns the worker's private cache.
func (w *InProc) StateCache() *cache.Cache { return w.cache.Load() }

// ClearCache drops every cached partial by swapping in a fresh cache
// (in-flight scans keep the snapshot they started with, mirroring the
// session cache's ClearCache contract).
func (w *InProc) ClearCache() {
	w.cache.Store(cache.NewSharded(w.cacheBytes, w.cacheShards, w.space))
}

// Stats returns the worker's lifetime counters.
func (w *InProc) Stats() WorkerStats {
	return WorkerStats{
		Scans:       w.scans.Load(),
		FullHits:    w.fullHits.Load(),
		StateHits:   w.stateHits.Load(),
		RowsScanned: w.rowsScanned.Load(),
	}
}

// Scan evaluates req.States over the worker's slice: it plans the query
// against an overlay catalog that shadows the sharded table with the
// slice, serves whatever states its cache already holds (exact, Theorem
// 4.1 rewrite, or sign-split), recomputes only the misses in one scan,
// and — in Share mode — stores the completed partial back, keyed by the
// slice's own epoch-versioned fingerprint.
func (w *InProc) Scan(ctx context.Context, req *ScanRequest) (*Partial, error) {
	if err := faultinject.Hit(faultinject.PointShardScan); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.scans.Add(1)
	ov := req.Cat.Overlay()
	if err := ov.Register(req.Slice); err != nil {
		return nil, fmt.Errorf("register slice: %w", err)
	}
	dp, err := w.eng.PrepareDataIn(ov, req.Stmt)
	if err != nil {
		return nil, err
	}
	n := len(req.States)
	vals := make([][]float64, n) // cached states land here in entry order
	pos := make([]bool, n)
	for i, st := range req.States {
		if req.Positive != nil {
			pos[i] = req.Positive(ov, st.Base, dp.Tables())
		}
	}

	c := w.cache.Load()
	var entry *cache.GroupTable
	hits := 0
	if req.UseCache {
		if e, ok := c.Entry(dp.Fingerprint); ok {
			entry = e
			for i, st := range req.States {
				if v, _, ok := c.LookupKind(dp.Fingerprint, st, pos[i]); ok {
					vals[i] = v
					hits++
				}
			}
		}
	}
	p := &Partial{Fingerprint: dp.Fingerprint, Pos: pos, StateHits: hits}

	if hits == n && entry != nil {
		// Entire partial served from cache: no scan, entry group order.
		p.Keys, p.KeyNames, p.KeyCols = entry.Keys, entry.KeyNames, entry.KeyCols
		p.Vals = vals
		p.FromCache = true
		w.fullHits.Add(1)
		w.stateHits.Add(int64(hits))
		return p, nil
	}

	// Compute the misses in one scan, then align the cached states to the
	// scan's group order. Any misalignment (a corrupted or torn entry)
	// falls back to recomputing everything — never a wrong partial.
	gr, aligned, err := w.compute(ctx, dp, req.States, vals, entry)
	if err != nil {
		return nil, err
	}
	if !aligned {
		hits = 0
		for i := range vals {
			vals[i] = nil
		}
		gr, _, err = w.compute(ctx, dp, req.States, vals, nil)
		if err != nil {
			return nil, err
		}
	}
	w.stateHits.Add(int64(hits))
	p.StateHits = hits
	w.rowsScanned.Add(int64(gr.Rows))
	p.Keys, p.KeyNames, p.KeyCols = gr.Keys, gr.KeyNames, gr.KeyColumns
	p.Rows, p.Kernels = gr.Rows, gr.Kernels
	p.Vals = make([][]float64, n)
	for i := range req.States {
		p.Vals[i] = vals[i]
	}

	if req.UseCache {
		gt := cache.NewGroupTable(dp.Fingerprint, gr.KeyNames, gr.Keys, gr.KeyColumns)
		if req.Maint != nil {
			gt.Maint = req.Maint(req.Stmt, dp)
		}
		stored := true
		for i, st := range req.States {
			if err := gt.AddState(&cache.CachedState{State: st, Vals: p.Vals[i], PositiveInput: pos[i]}); err != nil {
				stored = false
				break
			}
		}
		if stored {
			c.Put(gt)
		}
	}
	return p, nil
}

// compute runs the states whose vals slot is still nil through one
// RunSpecs scan and fills every slot in the scan's group order. Cached
// slots (vals[i] != nil, in entry order) are realigned against gr's
// keys; aligned reports whether that realignment was possible.
func (w *InProc) compute(ctx context.Context, dp *exec.DataPlan, states []canonical.State,
	vals [][]float64, entry *cache.GroupTable) (*exec.GroupResult, bool, error) {

	reg := exec.NewTaskRegistry()
	idx := make([]int, len(states))
	for i, st := range states {
		if vals[i] != nil {
			idx[i] = -1
			continue
		}
		st := st
		idx[i] = reg.Add(st.Key(), func(b exec.Binder) (exec.Task, error) {
			return exec.NewStateTask(st, b)
		})
	}
	gr, err := w.eng.RunSpecs(ctx, dp, reg)
	if err != nil {
		return nil, false, err
	}
	for i := range states {
		if idx[i] >= 0 {
			vals[i] = gr.Values[idx[i]]
			continue
		}
		// Realign the cached vector (entry group order) to gr group order.
		if entry == nil || entry.NumGroups() != gr.NumGroups {
			return gr, false, nil
		}
		out := make([]float64, gr.NumGroups)
		for g, k := range gr.Keys {
			j, ok := entry.IndexOf(k)
			if !ok {
				return gr, false, nil
			}
			out[g] = vals[i][j]
		}
		vals[i] = out
	}
	return gr, true, nil
}
