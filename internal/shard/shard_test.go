package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/errs"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/storage"
)

// The merge property test fabricates partials directly — no engine, no
// workers — and checks the ⊕-merge algebra MergePartials builds on: for
// ANY assignment of rows to shards and ANY shard order, the merged
// per-group values are bit-identical to a direct fold over the whole
// multiset. Row values are integer-valued floats (plus NaN/±Inf
// specials), so every ⊕ reduction is exact and "identical" means
// Float64bits-identical, not within-epsilon.

// mrow is one input row: a group and a value.
type mrow struct {
	g int64
	v float64
}

// mergeStates are the fold shapes under test: one per ⊕ flavor (the F
// chains are empty — F applies per tuple before ⊕ and is irrelevant to
// merge algebra; distinct Base vars keep the state keys distinct).
func mergeStates() []canonical.State {
	return []canonical.State{
		{Op: canonical.OpSum, F: scalar.NewChain(), Base: expr.MustParse("a")},
		{Op: canonical.OpCount, Base: &expr.Num{Val: 1}},
		{Op: canonical.OpMin, F: scalar.NewChain(), Base: expr.MustParse("b")},
		{Op: canonical.OpMax, F: scalar.NewChain(), Base: expr.MustParse("c")},
		{Op: canonical.OpProd, F: scalar.NewChain(), Base: expr.MustParse("d")},
	}
}

// foldUpdate folds one row into a per-state accumulator. Values are
// small integers (|v| ≤ 3, ≤ ~30 per group), so sums and products stay
// exact in float64 and bit comparison is sound.
func foldUpdate(st canonical.State, acc, v float64) float64 {
	if st.Op == canonical.OpCount {
		return acc + 1
	}
	return st.Merge(acc, v)
}

// buildPartial computes one shard's per-group partial over its rows, in
// first-appearance group order — exactly what a worker scan produces.
func buildPartial(states []canonical.State, rows []mrow) *Partial {
	var keys []cache.GroupKey
	kc := storage.NewColumn("g", storage.KindInt)
	idx := map[int64]int{}
	vals := make([][]float64, len(states))
	for _, r := range rows {
		gi, ok := idx[r.g]
		if !ok {
			gi = len(keys)
			idx[r.g] = gi
			keys = append(keys, cache.GroupKey{r.g, 0})
			kc.AppendInt(r.g)
			for i, st := range states {
				vals[i] = append(vals[i], st.MergeIdentity())
			}
		}
		for i, st := range states {
			vals[i][gi] = foldUpdate(st, vals[i][gi], r.v)
		}
	}
	return &Partial{
		Fingerprint: "prop",
		Keys:        keys,
		KeyNames:    []string{"g"},
		KeyCols:     []*storage.Column{kc},
		Vals:        vals,
		Pos:         make([]bool, len(states)),
		Rows:        len(rows),
	}
}

// asMap canonicalizes a merged result for order-independent bit
// comparison: group key → per-state value bit patterns (NaN normalized).
func asMap(states []canonical.State, m *Merged) map[int64][]uint64 {
	out := map[int64][]uint64{}
	for gi, k := range m.Keys {
		row := make([]uint64, len(states))
		for i := range states {
			v := m.Vals[i][gi]
			if math.IsNaN(v) {
				v = math.NaN()
			}
			row[i] = math.Float64bits(v)
		}
		out[k[0]] = row
	}
	return out
}

// genRows builds a random integer-valued row multiset with adversarial
// specials: NaN and ±Inf rows, a single-row group and a heavy group.
func genRows(rng *rand.Rand) []mrow {
	groups := 1 + rng.Intn(8)
	var rows []mrow
	for g := 0; g < groups; g++ {
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			v := float64(rng.Intn(7) - 3) // small ints, signed
			if rng.Intn(40) == 0 {
				v = math.NaN()
			} else if rng.Intn(40) == 0 {
				v = math.Inf(1 - 2*rng.Intn(2))
			}
			rows = append(rows, mrow{g: int64(g), v: v})
		}
	}
	// One group that only ever has a single row.
	rows = append(rows, mrow{g: 999, v: 5})
	return rows
}

// TestShardMergePartitionInvariance is the ⊕-merge property test: for a
// random row multiset, every random shard assignment (including empty
// shards) and every merge order produces the identical per-group result
// — bit-identical to the direct whole-multiset fold.
func TestShardMergePartitionInvariance(t *testing.T) {
	states := mergeStates()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rows := genRows(rng)

		// Ground truth: one fold over the whole multiset.
		want := asMap(states, mustMerge(t, states, []*Partial{buildPartial(states, rows)}))

		// Random partitioning into n shards (row→shard assignment is
		// arbitrary, not necessarily contiguous; n may exceed the row
		// count, forcing empty shards).
		n := 1 + rng.Intn(9)
		parts := make([][]mrow, n)
		for _, r := range rows {
			s := rng.Intn(n)
			parts[s] = append(parts[s], r)
		}
		partials := make([]*Partial, n)
		for i := range parts {
			partials[i] = buildPartial(states, parts[i])
		}

		got := asMap(states, mustMerge(t, states, partials))
		diffMaps(t, trial, "partitioned", want, got)

		// Merge order must not matter either: shuffle the partials.
		rng.Shuffle(n, func(i, j int) { partials[i], partials[j] = partials[j], partials[i] })
		got = asMap(states, mustMerge(t, states, partials))
		diffMaps(t, trial, "shuffled", want, got)
	}
}

func mustMerge(t *testing.T, states []canonical.State, parts []*Partial) *Merged {
	t.Helper()
	m, err := MergePartials(states, parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func diffMaps(t *testing.T, trial int, what string, want, got map[int64][]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d %s: group counts differ: want %d got %d", trial, what, len(want), len(got))
	}
	for g, wv := range want {
		gv, ok := got[g]
		if !ok {
			t.Fatalf("trial %d %s: group %d missing", trial, what, g)
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("trial %d %s: group %d state %d: want %v got %v", trial, what, g, i,
					math.Float64frombits(wv[i]), math.Float64frombits(gv[i]))
			}
		}
	}
}

// TestShardMergeRowAccounting checks Rows sums across partials and the
// shard provenance records every shard in order.
func TestShardMergeRowAccounting(t *testing.T) {
	states := mergeStates()
	p1 := buildPartial(states, []mrow{{1, 2}, {1, 3}, {2, 4}})
	p2 := buildPartial(states, []mrow{{2, 5}})
	p1.Kernels = []string{"k1", "k2"}
	p2.Kernels = []string{"k2", "k3"}
	m, err := MergePartials(states, []*Partial{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4 {
		t.Errorf("Rows = %d, want 4", m.Rows)
	}
	if len(m.Shards) != 2 || m.Shards[0].Rows != 3 || m.Shards[1].Groups != 1 {
		t.Errorf("shard provenance wrong: %+v", m.Shards)
	}
	if fmt.Sprint(m.Kernels) != "[k1 k2 k3]" {
		t.Errorf("kernels must dedup in first-appearance order, got %v", m.Kernels)
	}
}

// TestShardMergeRejectsDuplicateStates pins the defensive checks.
func TestShardMergeRejectsDuplicateStates(t *testing.T) {
	st := canonical.State{Op: canonical.OpSum, F: scalar.NewChain(), Base: expr.MustParse("a")}
	states := []canonical.State{st, st}
	p := buildPartial(states, []mrow{{1, 1}})
	if _, err := MergePartials(states, []*Partial{p}); err == nil {
		t.Fatal("duplicate state keys must be rejected")
	}
	if _, err := MergePartials(states[:1], nil); err == nil {
		t.Fatal("zero partials must be rejected")
	}
}

// TestShardGatherValidates pins the worker/slice arity check and its
// typed error.
func TestShardGatherValidates(t *testing.T) {
	_, err := Gather(context.Background(), nil, &Request{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, errs.ErrShard) {
		t.Fatalf("error must wrap errs.ErrShard: %v", err)
	}
}
