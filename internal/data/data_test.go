package data

import (
	"testing"

	"sudaf/internal/storage"
)

func TestTPCDSSchema(t *testing.T) {
	tables := TPCDS(1, 42)
	byName := map[string]*storage.Table{}
	for _, tbl := range tables {
		if err := tbl.Validate(); err != nil {
			t.Fatal(err)
		}
		byName[tbl.Name] = tbl
	}
	for _, want := range []string{"store", "date_dim", "item",
		"customer_demographics", "promotion", "store_sales"} {
		if byName[want] == nil {
			t.Fatalf("missing table %s", want)
		}
	}
	ss := byName["store_sales"]
	if ss.NumRows() != TPCDSScale(1) {
		t.Errorf("store_sales rows = %d, want %d", ss.NumRows(), TPCDSScale(1))
	}
	// Foreign keys stay within dimension ranges.
	nItems := byName["item"].NumRows()
	for _, v := range ss.Col("ss_item_sk").I[:1000] {
		if v < 0 || v >= int64(nItems) {
			t.Fatalf("ss_item_sk %d out of range", v)
		}
	}
	// Measures strictly positive (log/geometric-mean safety).
	for _, col := range []string{"ss_quantity", "ss_list_price", "ss_sales_price", "ss_coupon_amt"} {
		min, _ := ss.Col(col).Stats()
		if min <= 0 {
			t.Errorf("%s has non-positive values (min %v)", col, min)
		}
	}
	// The evaluation predicates must select something.
	if byName["store"].Col("s_state").Code("TN") < 0 {
		t.Error("no TN stores")
	}
	if byName["item"].Col("i_category").Code("Sports") < 0 {
		t.Error("no Sports items")
	}
	if byName["customer_demographics"].Col("cd_education_status").Code("College") < 0 {
		t.Error("no College demographics")
	}
}

func TestTPCDSDeterministic(t *testing.T) {
	a := TPCDS(1, 7)
	b := TPCDS(1, 7)
	sa, sb := a[len(a)-1], b[len(b)-1]
	for i := 0; i < 100; i++ {
		if sa.Col("ss_list_price").F[i] != sb.Col("ss_list_price").F[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := TPCDS(1, 8)
	diff := false
	for i := 0; i < 100; i++ {
		if sa.Col("ss_list_price").F[i] != c[len(c)-1].Col("ss_list_price").F[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestMilan(t *testing.T) {
	m := Milan(50_000, 100, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 50_000 {
		t.Fatalf("rows = %d", m.NumRows())
	}
	min, max := m.Col("internet_traffic").Stats()
	if min <= 0 {
		t.Errorf("traffic must be positive, min %v", min)
	}
	if max <= min {
		t.Error("degenerate traffic distribution")
	}
	// All squares in range, most squares populated.
	seen := map[int64]bool{}
	for _, v := range m.Col("square_id").I {
		if v < 0 || v >= 100 {
			t.Fatalf("square %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Errorf("only %d/100 squares populated", len(seen))
	}
}
