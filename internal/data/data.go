// Package data generates the synthetic datasets used by the benchmark
// harness, substituting for the paper's proprietary inputs:
//
//   - a TPC-DS-like star schema (store_sales plus the store, date_dim,
//     item, customer_demographics and promotion dimensions) with the key
//     distributions and selectivities the evaluation queries exercise;
//   - a Milan-telecom-like single table (square_id, internet_traffic)
//     with lognormal traffic, standing in for the Telecom Italia dataset
//     of query models 1 and 2.
//
// Generation is deterministic given a seed. All measure columns are
// strictly positive so that geometric/harmonic means and log-family
// states are well defined, matching the paper's workloads.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"sudaf/internal/storage"
)

// TPCDSScale describes the row counts of a generated TPC-DS-like
// instance. Rows ≈ 120k × scale in store_sales.
func TPCDSScale(scale int) int { return 120_000 * scale }

// TPCDS generates the star schema at the given scale factor.
func TPCDS(scale int, seed int64) []*storage.Table {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// store: 6 per scale unit, states weighted toward TN (the paper's
	// predicate keeps roughly half the stores).
	nStores := 6 * scale
	statePool := []string{"TN", "CA", "TN", "NY", "TN", "WA"}
	store := storage.NewTable("store",
		storage.NewColumn("s_store_sk", storage.KindInt),
		storage.NewColumn("s_state", storage.KindString))
	for i := 0; i < nStores; i++ {
		store.Col("s_store_sk").AppendInt(int64(i))
		store.Col("s_state").AppendString(statePool[i%len(statePool)])
	}

	// date_dim: 6 years of days, 1998–2003.
	const nYears = 6
	date := storage.NewTable("date_dim",
		storage.NewColumn("d_date_sk", storage.KindInt),
		storage.NewColumn("d_year", storage.KindInt),
		storage.NewColumn("d_moy", storage.KindInt))
	nDates := nYears * 365
	for i := 0; i < nDates; i++ {
		date.Col("d_date_sk").AppendInt(int64(i))
		date.Col("d_year").AppendInt(int64(1998 + i/365))
		date.Col("d_moy").AppendInt(int64((i%365)/31 + 1))
	}

	// item: 1800 per scale unit, 10 categories.
	nItems := 1800 * scale
	cats := []string{"Sports", "Books", "Home", "Electronics", "Music",
		"Jewelry", "Shoes", "Women", "Men", "Children"}
	item := storage.NewTable("item",
		storage.NewColumn("i_item_sk", storage.KindInt),
		storage.NewColumn("i_item_id", storage.KindString),
		storage.NewColumn("i_category", storage.KindString))
	for i := 0; i < nItems; i++ {
		item.Col("i_item_sk").AppendInt(int64(i))
		item.Col("i_item_id").AppendString(fmt.Sprintf("AAAAAAAA%08d", i))
		item.Col("i_category").AppendString(cats[i%len(cats)])
	}

	// customer_demographics: the full cross product like real TPC-DS
	// (gender × marital × education × ...), 1920 rows.
	genders := []string{"M", "F"}
	maritals := []string{"S", "M", "D", "W", "U"}
	educations := []string{"College", "2 yr Degree", "4 yr Degree",
		"Advanced Degree", "Primary", "Secondary", "Unknown"}
	cd := storage.NewTable("customer_demographics",
		storage.NewColumn("cd_demo_sk", storage.KindInt),
		storage.NewColumn("cd_gender", storage.KindString),
		storage.NewColumn("cd_marital_status", storage.KindString),
		storage.NewColumn("cd_education_status", storage.KindString))
	sk := 0
	for rep := 0; rep < 28; rep++ {
		for _, g := range genders {
			for _, m := range maritals {
				for _, e := range educations {
					cd.Col("cd_demo_sk").AppendInt(int64(sk))
					cd.Col("cd_gender").AppendString(g)
					cd.Col("cd_marital_status").AppendString(m)
					cd.Col("cd_education_status").AppendString(e)
					sk++
				}
			}
		}
	}

	// promotion: 30 per scale unit, channels Y/N.
	nPromos := 30 * scale
	promo := storage.NewTable("promotion",
		storage.NewColumn("p_promo_sk", storage.KindInt),
		storage.NewColumn("p_channel_email", storage.KindString),
		storage.NewColumn("p_channel_event", storage.KindString))
	yn := []string{"N", "Y"}
	for i := 0; i < nPromos; i++ {
		promo.Col("p_promo_sk").AppendInt(int64(i))
		promo.Col("p_channel_email").AppendString(yn[rng.Intn(2)])
		promo.Col("p_channel_event").AppendString(yn[rng.Intn(2)])
	}

	// store_sales fact table.
	n := TPCDSScale(scale)
	ss := storage.NewTable("store_sales",
		storage.NewColumn("ss_item_sk", storage.KindInt),
		storage.NewColumn("ss_store_sk", storage.KindInt),
		storage.NewColumn("ss_sold_date_sk", storage.KindInt),
		storage.NewColumn("ss_cdemo_sk", storage.KindInt),
		storage.NewColumn("ss_promo_sk", storage.KindInt),
		storage.NewColumn("ss_quantity", storage.KindFloat),
		storage.NewColumn("ss_list_price", storage.KindFloat),
		storage.NewColumn("ss_sales_price", storage.KindFloat),
		storage.NewColumn("ss_coupon_amt", storage.KindFloat))
	itemC := ss.Col("ss_item_sk")
	storeC := ss.Col("ss_store_sk")
	dateC := ss.Col("ss_sold_date_sk")
	cdemoC := ss.Col("ss_cdemo_sk")
	promoC := ss.Col("ss_promo_sk")
	qtyC := ss.Col("ss_quantity")
	lpC := ss.Col("ss_list_price")
	spC := ss.Col("ss_sales_price")
	cpC := ss.Col("ss_coupon_amt")
	for i := 0; i < n; i++ {
		// Zipf-ish item popularity: square a uniform to skew low ids.
		u := rng.Float64()
		itemC.AppendInt(int64(u * u * float64(nItems)))
		storeC.AppendInt(int64(rng.Intn(nStores)))
		dateC.AppendInt(int64(rng.Intn(nDates)))
		cdemoC.AppendInt(int64(rng.Intn(sk)))
		promoC.AppendInt(int64(rng.Intn(nPromos)))
		qtyC.AppendFloat(float64(1 + rng.Intn(99)))
		lp := 1 + rng.Float64()*199
		lpC.AppendFloat(lp)
		spC.AppendFloat(lp * (0.4 + 0.6*rng.Float64()))
		cpC.AppendFloat(0.01 + rng.Float64()*49)
	}
	return []*storage.Table{store, date, item, cd, promo, ss}
}

// Milan generates the telecom-like table: squares × measurements with
// lognormal internet traffic (strictly positive, heavy tailed).
func Milan(rows, squares int, seed int64) *storage.Table {
	if squares < 1 {
		squares = 10_000
	}
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("milan_data",
		storage.NewColumn("square_id", storage.KindInt),
		storage.NewColumn("internet_traffic", storage.KindFloat))
	sq := t.Col("square_id")
	tr := t.Col("internet_traffic")
	for i := 0; i < rows; i++ {
		sq.AppendInt(int64(rng.Intn(squares)))
		// Lognormal(3, 1.1), roughly 0.5–2000 with a long tail.
		tr.AppendFloat(math.Exp(3 + 1.1*rng.NormFloat64()))
	}
	return t
}
