// Package errs defines the sentinel errors shared between the internal
// engine layers and the public sudaf package. Internal code wraps these
// with fmt.Errorf("%w ...") at the point where the condition is detected,
// so callers of the public API can classify failures with errors.Is
// without parsing message strings. The root package re-exports each
// sentinel (sudaf.ErrParse = errs.ErrParse, ...).
package errs

import "errors"

var (
	// ErrUnknownTable marks a reference to a table absent from the catalog.
	ErrUnknownTable = errors.New("unknown table")
	// ErrUnknownUDAF marks a call to an aggregate that is neither a SQL
	// built-in nor a registered UDAF.
	ErrUnknownUDAF = errors.New("unknown aggregate")
	// ErrParse marks a SQL or UDAF-expression syntax error.
	ErrParse = errors.New("parse error")
	// ErrNumericFault marks a NaN/±Inf aggregate output rejected under the
	// strict numeric policy.
	ErrNumericFault = errors.New("numeric domain fault")
	// ErrCanceled marks a query stopped by context cancellation or a
	// deadline. Errors wrapping it also wrap the originating context
	// error, so errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("query canceled")
	// ErrEngineClosed marks work rejected because the engine is closed or
	// draining: Close stops admitting queries, appends and
	// materializations, and resolves queued admission waiters with this
	// sentinel.
	ErrEngineClosed = errors.New("engine closed")
	// ErrOverloaded marks a request shed by the serving layer's overload
	// protection: the admission queue, a per-session concurrency cap or
	// the session table was full. Overloaded requests were rejected
	// before execution, so retrying after backoff is always safe.
	ErrOverloaded = errors.New("server overloaded")
	// ErrShard marks a scatter-gather failure: a shard worker's scan
	// failed or panicked, or the coordinator's partial-state merge did.
	// The query returns this one typed error and no partial results.
	// Errors wrapping it also wrap the underlying cause (ErrCanceled for
	// a cancelled shard, faultinject.ErrInjected under chaos, ...).
	ErrShard = errors.New("shard failure")
)
