package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// momentsOf computes min, max and raw moments of a sample.
func momentsOf(xs []float64, k int) (min, max float64, m []float64) {
	min, max = math.Inf(1), math.Inf(-1)
	m = make([]float64, k+1)
	m[0] = 1
	for _, x := range xs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	n := float64(len(xs))
	for i := 1; i <= k; i++ {
		acc := 0.0
		for _, x := range xs {
			acc += math.Pow(x, float64(i))
		}
		m[i] = acc / n
	}
	return min, max, m
}

func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	idx := q * float64(len(s)-1)
	lo := int(idx)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// checkQuantile asserts the sketch estimate is within tol·range of the
// exact sample quantile.
func checkQuantile(t *testing.T, xs []float64, q, tol float64, label string) {
	t.Helper()
	min, max, m := momentsOf(xs, DefaultK)
	got := Quantile(min, max, m, q)
	want := exactQuantile(xs, q)
	if math.IsNaN(got) {
		t.Fatalf("%s: NaN estimate", label)
	}
	spread := max - min
	if math.Abs(got-want) > tol*spread {
		t.Errorf("%s q=%v: estimate %v, exact %v (spread %v)", label, q, got, want, spread)
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		checkQuantile(t, xs, q, 0.02, "uniform")
	}
}

func TestQuantileGaussianish(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 50 + 10*rng.NormFloat64()
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		checkQuantile(t, xs, q, 0.03, "gaussian")
	}
}

func TestQuantileLognormal(t *testing.T) {
	// The Milan traffic distribution shape: heavy-tailed.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(2 + 0.8*rng.NormFloat64())
	}
	// Heavy tails are the hard case for moment methods; allow 6% of range
	// on the median (the msketch paper reports similar behaviour).
	checkQuantile(t, xs, 0.5, 0.06, "lognormal")
}

func TestQuantilePointMass(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	min, max, m := momentsOf(xs, DefaultK)
	if got := Quantile(min, max, m, 0.5); got != 5 {
		t.Errorf("point mass: %v", got)
	}
}

func TestQuantileTwoPoint(t *testing.T) {
	// Half 0s, half 10s: median is ambiguous; estimate must stay in range.
	xs := make([]float64, 1000)
	for i := 500; i < 1000; i++ {
		xs[i] = 10
	}
	min, max, m := momentsOf(xs, DefaultK)
	got := Quantile(min, max, m, 0.9)
	if got < 0 || got > 10 {
		t.Errorf("two-point estimate out of range: %v", got)
	}
}

func TestStatesShape(t *testing.T) {
	sts := States(10)
	if len(sts) != NumStates(10) || len(sts) != 23 {
		t.Fatalf("MS(10) has %d states, want 23", len(sts))
	}
	// First three are min, max, count.
	if sts[0].Op.String() != "min" || sts[1].Op.String() != "max" || sts[2].Op.String() != "count" {
		t.Errorf("header states wrong: %v %v %v", sts[0].Op, sts[1].Op, sts[2].Op)
	}
	// All keys distinct.
	seen := map[string]bool{}
	for _, s := range sts {
		k := s.Key()
		if seen[k] {
			t.Errorf("duplicate state key %s", k)
		}
		seen[k] = true
	}
}

func TestQuantileFormEvaluate(t *testing.T) {
	form, err := QuantileForm("approx_median", 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 1 + rng.Float64()*9
	}
	// Compute the states directly.
	vals := make([]float64, len(form.States))
	for i, s := range form.States {
		acc := s.MergeIdentity()
		for _, x := range xs {
			var v float64
			switch s.Op.String() {
			case "count":
				v = 1
			default:
				v = s.F.Eval(x)
			}
			acc = s.Merge(acc, v)
		}
		vals[i] = acc
	}
	got, err := form.Evaluate(vals)
	if err != nil {
		t.Fatal(err)
	}
	want := exactQuantile(xs, 0.5)
	if math.Abs(got-want) > 0.03*9 {
		t.Errorf("approx_median = %v, exact %v", got, want)
	}
}

func TestQuantileFormValidation(t *testing.T) {
	if _, err := QuantileForm("x", 1, 0.5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := QuantileForm("x", 5, 0); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := QuantileForm("x", 5, 1.5); err == nil {
		t.Error("q>1 should fail")
	}
}

func TestSolveLinear(t *testing.T) {
	H := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(H, b)
	if !ok {
		t.Fatal("solve failed")
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
	// Singular matrix fails cleanly.
	if _, ok := solveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); ok {
		t.Error("singular solve should fail")
	}
}

func BenchmarkQuantileSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	min, max, m := momentsOf(xs, DefaultK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(min, max, m, 0.5)
	}
}
