// Package sketch implements the moment sketch of Gan et al. (VLDB'18) as
// used by the SUDAF paper: the sketch is a set of SUDAF aggregation
// states (min, max, count, Σx^i, Σ(ln x)^i for i ≤ k) and the quantile
// estimator is a *hardcoded terminating function* (§4.1 scenario 2) — a
// maximum-entropy solver that fits the density exp(Σ λ_i T_i(t)) on the
// scaled domain via damped Newton iterations over a Chebyshev basis, then
// inverts the CDF.
//
// Because the sketch's states are ordinary SUDAF states, prefetching a
// moment sketch populates the cache with Σx^i and Σln^i x, from which
// later aggregates (qm, cm, variance, geometric mean via Πx = e^{Σln x},
// …) are answered without touching base data — the paper's AS2 scenario.
package sketch

import (
	"fmt"
	"math"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
)

// DefaultK is the paper's sketch order (k = 10 in Section 6).
const DefaultK = 10

// States returns the moment-sketch aggregation states over parameter x:
// min, max, count, Σx^i (i=1..k), Σ(ln x)^i (i=1..k).
func States(k int) []canonical.State {
	base := &expr.Var{Name: "x"}
	out := []canonical.State{
		{Op: canonical.OpMin, F: scalar.IdentityChain(), Base: base},
		{Op: canonical.OpMax, F: scalar.IdentityChain(), Base: base},
		{Op: canonical.OpCount, Base: &expr.Num{Val: 1}},
	}
	for i := 1; i <= k; i++ {
		ch := scalar.IdentityChain()
		if i > 1 {
			ch = scalar.NewChain(scalar.PowerP(float64(i)))
		}
		out = append(out, canonical.State{Op: canonical.OpSum, F: ch, Base: base})
	}
	for i := 1; i <= k; i++ {
		ch := scalar.NewChain(scalar.LogP(scalar.E))
		if i > 1 {
			ch = ch.Then(scalar.PowerP(float64(i)))
		}
		out = append(out, canonical.State{Op: canonical.OpSum, F: ch, Base: base})
	}
	return out
}

// NumStates is the state count of MS(k): 3 + 2k.
func NumStates(k int) int { return 3 + 2*k }

// QuantileForm builds a UDAF form named name approximating the q-th
// quantile from MS(k) states with a hardcoded terminating function.
func QuantileForm(name string, k int, q float64) (*canonical.Form, error) {
	if k < 2 {
		return nil, fmt.Errorf("moment sketch needs k ≥ 2, got %d", k)
	}
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("quantile must be in (0,1), got %v", q)
	}
	form := &canonical.Form{
		Name:   name,
		Params: []string{"x"},
		States: States(k),
		T:      &expr.Var{Name: "s1"}, // unused; HardT overrides
	}
	form.HardT = func(st []float64) (float64, error) {
		if len(st) != NumStates(k) {
			return 0, fmt.Errorf("%s: got %d states, want %d", name, len(st), NumStates(k))
		}
		min, max, n := st[0], st[1], st[2]
		if n == 0 {
			return math.NaN(), nil
		}
		moments := make([]float64, k+1)
		moments[0] = 1
		for i := 1; i <= k; i++ {
			moments[i] = st[2+i] / n
		}
		return Quantile(min, max, moments, q), nil
	}
	return form, nil
}

// PrefetchForm builds the "moment_sketch" UDAF: it computes and caches
// the MS(k) states but its terminating function simply reports the count
// — the cheap prefetch the paper runs before sequence AS2.
func PrefetchForm(name string, k int) *canonical.Form {
	form := &canonical.Form{
		Name:   name,
		Params: []string{"x"},
		States: States(k),
		T:      &expr.Var{Name: "s3"}, // count
	}
	form.HardT = func(st []float64) (float64, error) { return st[2], nil }
	return form
}

// Quantile estimates the q-th quantile of a distribution on [min, max]
// with raw power moments m[i] = E[x^i] (m[0] = 1) using the
// maximum-entropy fit; it falls back to a moment-matched normal
// approximation when the solver cannot converge.
func Quantile(min, max float64, m []float64, q float64) float64 {
	if max-min < 1e-12*(1+math.Abs(max)) {
		return min // point mass
	}
	// Scale x to t ∈ [-1, 1]: t = a·x + b.
	a := 2 / (max - min)
	b := -(max + min) / (max - min)
	mu := scaledMoments(m, a, b)
	if !plausibleMoments(mu) {
		return normalFallback(min, max, m, q)
	}
	cheb := chebyshevMoments(mu)
	lambda, ok := maxEntropySolve(cheb)
	if !ok {
		return normalFallback(min, max, m, q)
	}
	t := invertCDF(lambda, q)
	return (t - b) / a
}

// scaledMoments computes E[(a·x+b)^j] from E[x^i] by binomial expansion.
func scaledMoments(m []float64, a, b float64) []float64 {
	k := len(m) - 1
	mu := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		var acc float64
		binom := 1.0
		// C(j, i) a^i b^(j-i) m[i]
		for i := 0; i <= j; i++ {
			acc += binom * math.Pow(a, float64(i)) * math.Pow(b, float64(j-i)) * m[i]
			binom = binom * float64(j-i) / float64(i+1)
		}
		mu[j] = acc
	}
	return mu
}

// plausibleMoments checks that scaled power moments are within the
// feasible range for a distribution on [-1, 1].
func plausibleMoments(mu []float64) bool {
	for _, v := range mu {
		if math.IsNaN(v) || math.Abs(v) > 1+1e-6 {
			return false
		}
	}
	return true
}

// chebyshevMoments converts power moments E[t^j] into Chebyshev moments
// E[T_n(t)] using the T_n coefficient recurrence.
func chebyshevMoments(mu []float64) []float64 {
	k := len(mu) - 1
	// coeff[n][j]: coefficient of t^j in T_n.
	coeff := make([][]float64, k+1)
	coeff[0] = []float64{1}
	if k >= 1 {
		coeff[1] = []float64{0, 1}
	}
	for n := 2; n <= k; n++ {
		c := make([]float64, n+1)
		for j, v := range coeff[n-1] {
			c[j+1] += 2 * v
		}
		for j, v := range coeff[n-2] {
			c[j] -= v
		}
		coeff[n] = c
	}
	out := make([]float64, k+1)
	for n := 0; n <= k; n++ {
		var acc float64
		for j, c := range coeff[n] {
			acc += c * mu[j]
		}
		out[n] = acc
	}
	return out
}

// Quadrature grid on [-1, 1] (composite Simpson; the integrand
// exp(poly_k) is smooth, so this converges fast and avoids precomputing
// Gauss nodes).
const quadN = 128

func quadWeights() (ts, ws []float64) {
	ts = make([]float64, quadN+1)
	ws = make([]float64, quadN+1)
	h := 2.0 / quadN
	for i := 0; i <= quadN; i++ {
		ts[i] = -1 + h*float64(i)
		switch {
		case i == 0 || i == quadN:
			ws[i] = h / 3
		case i%2 == 1:
			ws[i] = 4 * h / 3
		default:
			ws[i] = 2 * h / 3
		}
	}
	return ts, ws
}

// maxEntropySolve finds λ with E_f[T_n] = cheb[n] for the density
// f(t) = exp(Σ λ_n T_n(t)) by damped Newton on the dual potential.
func maxEntropySolve(cheb []float64) ([]float64, bool) {
	k := len(cheb) - 1
	ts, ws := quadWeights()
	// Precompute T_n at the quadrature nodes.
	tn := make([][]float64, k+1)
	for n := 0; n <= k; n++ {
		tn[n] = make([]float64, len(ts))
	}
	for i, t := range ts {
		tn[0][i] = 1
		if k >= 1 {
			tn[1][i] = t
		}
		for n := 2; n <= k; n++ {
			tn[n][i] = 2*t*tn[n-1][i] - tn[n-2][i]
		}
	}
	lambda := make([]float64, k+1)
	lambda[0] = -math.Ln2 // uniform density 1/2 on [-1,1]

	potential := func(l []float64) float64 {
		var z float64
		for i := range ts {
			e := 0.0
			for n := 0; n <= k; n++ {
				e += l[n] * tn[n][i]
			}
			z += ws[i] * math.Exp(e)
		}
		dot := 0.0
		for n := 0; n <= k; n++ {
			dot += l[n] * cheb[n]
		}
		return z - dot
	}

	f := make([]float64, len(ts))
	grad := make([]float64, k+1)
	hess := make([][]float64, k+1)
	for n := range hess {
		hess[n] = make([]float64, k+1)
	}
	phi := potential(lambda)
	for iter := 0; iter < 80; iter++ {
		// Density at nodes.
		for i := range ts {
			e := 0.0
			for n := 0; n <= k; n++ {
				e += lambda[n] * tn[n][i]
			}
			f[i] = ws[i] * math.Exp(e)
		}
		// Gradient and Hessian.
		gmax := 0.0
		for n := 0; n <= k; n++ {
			var acc float64
			for i := range ts {
				acc += f[i] * tn[n][i]
			}
			grad[n] = acc - cheb[n]
			if math.Abs(grad[n]) > gmax {
				gmax = math.Abs(grad[n])
			}
			for mIdx := n; mIdx <= k; mIdx++ {
				var h float64
				for i := range ts {
					h += f[i] * tn[n][i] * tn[mIdx][i]
				}
				hess[n][mIdx] = h
				hess[mIdx][n] = h
			}
		}
		if gmax < 1e-10 {
			return lambda, true
		}
		step, ok := solveLinear(hess, grad)
		if !ok {
			return nil, false
		}
		// Damped update: halve until the potential decreases.
		improved := false
		for damp := 1.0; damp > 1e-6; damp /= 2 {
			trial := make([]float64, k+1)
			for n := range trial {
				trial[n] = lambda[n] - damp*step[n]
			}
			p := potential(trial)
			if !math.IsNaN(p) && !math.IsInf(p, 0) && p < phi {
				lambda, phi = trial, p
				improved = true
				break
			}
		}
		if !improved {
			// Converged as far as float precision allows.
			return lambda, gmax < 1e-4
		}
	}
	return lambda, true
}

// solveLinear solves H·x = b by Gaussian elimination with partial
// pivoting (H is small: (k+1)², k ≤ ~12).
func solveLinear(H [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n+1)
		copy(A[i], H[i])
		A[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[p][col]) {
				p = r
			}
		}
		if math.Abs(A[p][col]) < 1e-14 {
			return nil, false
		}
		A[col], A[p] = A[p], A[col]
		for r := col + 1; r < n; r++ {
			ratio := A[r][col] / A[col][col]
			for c := col; c <= n; c++ {
				A[r][c] -= ratio * A[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		acc := A[r][n]
		for c := r + 1; c < n; c++ {
			acc -= A[r][c] * x[c]
		}
		x[r] = acc / A[r][r]
	}
	return x, true
}

// invertCDF integrates the fitted density and returns the t with
// CDF(t) = q (linear interpolation between nodes).
func invertCDF(lambda []float64, q float64) float64 {
	k := len(lambda) - 1
	ts, ws := quadWeights()
	mass := make([]float64, len(ts))
	total := 0.0
	tn := make([]float64, k+1)
	for i, t := range ts {
		tn[0] = 1
		if k >= 1 {
			tn[1] = t
		}
		for n := 2; n <= k; n++ {
			tn[n] = 2*t*tn[n-1] - tn[n-2]
		}
		e := 0.0
		for n := 0; n <= k; n++ {
			e += lambda[n] * tn[n]
		}
		mass[i] = ws[i] * math.Exp(e)
		total += mass[i]
	}
	target := q * total
	cum := 0.0
	for i := range ts {
		next := cum + mass[i]
		if next >= target {
			if mass[i] <= 0 {
				return ts[i]
			}
			frac := (target - cum) / mass[i]
			lo := ts[i]
			hi := lo
			if i+1 < len(ts) {
				hi = ts[i+1]
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return 1
}

// normalFallback approximates the quantile with a moment-matched normal
// clamped to [min, max] — used when the max-entropy solve is infeasible.
func normalFallback(min, max float64, m []float64, q float64) float64 {
	mean := m[1]
	variance := m[2] - m[1]*m[1]
	if variance <= 0 {
		return math.Min(math.Max(mean, min), max)
	}
	z := math.Sqrt2 * math.Erfinv(2*q-1)
	v := mean + z*math.Sqrt(variance)
	return math.Min(math.Max(v, min), max)
}
