package exec

import (
	"fmt"

	"sudaf/internal/canonical"
	"sudaf/internal/storage"
)

// NewTableBinder returns a Binder over every row of one table with
// identity indirection: accessor row i reads physical row i. Window
// executors compile per-row value accessors and per-frame recompute
// tasks against it, so absolute row indexes line up with column storage
// and with the morsel boundaries of a cold scan.
func NewTableBinder(t *storage.Table) Binder {
	n := t.NumRows()
	vec := make([]int32, n)
	for i := range vec {
		vec[i] = int32(i)
	}
	return &RowSet{n: n, tables: []*storage.Table{t},
		vecs: map[string][]int32{t.Name: vec}, identity: true}
}

// StateValuer compiles a bound state's per-tuple translated value
// F(base(row)) exactly the way NewStateTask compiles its accumulation
// input — the same CompileExpr for the base, the same
// NormalizeReal().Compile() for the chain — so a window fold over these
// values is bit-compatible with the state task's scalar and vectorized
// kernels. count() states yield the constant 1.
func StateValuer(st canonical.State, b Binder) (Accessor, error) {
	if st.Op == canonical.OpCount {
		return func(int32) float64 { return 1 }, nil
	}
	in, err := CompileExpr(st.Base, b.Bind)
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", st.Key(), err)
	}
	chain := st.F.NormalizeReal()
	if chain.IsIdentity() {
		return in, nil
	}
	fn, err := chain.Compile()
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", st.Key(), err)
	}
	return func(i int32) float64 { return fn(in(i)) }, nil
}

// Placeholder names the synthetic variable replacing the i-th aggregate
// call extracted by ExtractAggCalls (the windowed output builder in
// internal/core evaluates select expressions over these).
func Placeholder(i int) string {
	return fmt.Sprintf("%s%d", placeholderPrefix, i)
}
