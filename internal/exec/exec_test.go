package exec

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// testCatalog builds a small star schema:
//
//	sales(s_store int, s_item int, price float, qty float)
//	stores(st_id int, st_state string)
func testCatalog(t *testing.T, rows int) *catalog.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	sales := storage.NewTable("sales",
		storage.NewColumn("s_store", storage.KindInt),
		storage.NewColumn("s_item", storage.KindInt),
		storage.NewColumn("price", storage.KindFloat),
		storage.NewColumn("qty", storage.KindFloat),
	)
	for i := 0; i < rows; i++ {
		sales.Col("s_store").AppendInt(int64(rng.Intn(4)))
		sales.Col("s_item").AppendInt(int64(rng.Intn(10)))
		sales.Col("price").AppendFloat(1 + rng.Float64()*99)
		sales.Col("qty").AppendFloat(float64(1 + rng.Intn(9)))
	}
	stores := storage.NewTable("stores",
		storage.NewColumn("st_id", storage.KindInt),
		storage.NewColumn("st_state", storage.KindString),
	)
	states := []string{"TN", "CA", "TN", "NY"}
	for i := 0; i < 4; i++ {
		stores.Col("st_id").AppendInt(int64(i))
		stores.Col("st_state").AppendString(states[i])
	}
	cat := catalog.New()
	if err := cat.Register(sales); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(stores); err != nil {
		t.Fatal(err)
	}
	return cat
}

// runBuiltins executes a statement with builtin tasks for every aggregate
// call found in the select list.
func runBuiltins(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTaskRegistry()
	spec := OutputSpec{}
	isAgg := func(name string) bool { _, ok := LookupBuiltin(name); return ok }
	for _, item := range stmt.Select {
		var calls []*expr.Call
		rewritten := ExtractAggCalls(item.Expr, isAgg, &calls)
		// Assign placeholders in the global finisher order.
		base := len(spec.Finishers)
		bind := map[string]expr.Node{}
		for ci, call := range calls {
			kind, _ := LookupBuiltin(call.Name)
			call := call
			idx := reg.Add(call.String(), func(b Binder) (Task, error) {
				bt := &BuiltinTask{Kind: kind, Lbl: call.Name}
				if len(call.Args) > 0 {
					in, err := CompileExpr(call.Args[0], b.Bind)
					if err != nil {
						return nil, err
					}
					bt.In = in
				}
				if len(call.Args) > 1 {
					in2, err := CompileExpr(call.Args[1], b.Bind)
					if err != nil {
						return nil, err
					}
					bt.In2 = in2
				}
				return bt, nil
			})
			spec.Finishers = append(spec.Finishers, func(vals [][]float64, g int) float64 {
				return vals[idx][g]
			})
			bind[placeholderName(ci)] = &expr.Var{Name: placeholderName(base + ci)}
			_ = ci
		}
		// ExtractAggCalls numbered placeholders per item from 0; renumber
		// to the global order.
		renumbered := expr.Substitute(rewritten, bind)
		spec.Items = append(spec.Items, sqlparse.SelectItem{Expr: renumbered, Alias: item.Alias})
	}
	gr, err := e.RunSpecs(context.Background(), dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildOutput(context.Background(), stmt, dp, gr, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func placeholderName(i int) string {
	return "__agg" + string(rune('0'+i))
}

func TestGrandAggregate(t *testing.T) {
	cat := testCatalog(t, 1000)
	e := NewEngine(cat, 1)
	res := runBuiltins(t, e, "SELECT sum(price), count(*), min(price), max(price), avg(price) FROM sales")
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	sales, _ := cat.Table("sales")
	var wantSum, wantMin, wantMax float64
	wantMin = math.Inf(1)
	wantMax = math.Inf(-1)
	for _, v := range sales.Col("price").F {
		wantSum += v
		wantMin = math.Min(wantMin, v)
		wantMax = math.Max(wantMax, v)
	}
	got := res.Table.Cols[0].F[0]
	if math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	if res.Table.Cols[1].F[0] != 1000 {
		t.Errorf("count = %v", res.Table.Cols[1].F[0])
	}
	if res.Table.Cols[2].F[0] != wantMin || res.Table.Cols[3].F[0] != wantMax {
		t.Errorf("min/max = %v/%v, want %v/%v",
			res.Table.Cols[2].F[0], res.Table.Cols[3].F[0], wantMin, wantMax)
	}
	if math.Abs(res.Table.Cols[4].F[0]-wantSum/1000) > 1e-9 {
		t.Errorf("avg = %v", res.Table.Cols[4].F[0])
	}
}

func TestGroupByWithJoinAndFilter(t *testing.T) {
	cat := testCatalog(t, 5000)
	e := NewEngine(cat, 1)
	res := runBuiltins(t, e,
		`SELECT s_item, sum(price) FROM sales, stores
		 WHERE s_store = st_id AND st_state = 'TN'
		 GROUP BY s_item ORDER BY s_item`)
	// Reference computation.
	sales, _ := cat.Table("sales")
	want := map[int64]float64{}
	for i := 0; i < sales.NumRows(); i++ {
		st := sales.Col("s_store").I[i]
		if st != 0 && st != 2 { // TN stores
			continue
		}
		want[sales.Col("s_item").I[i]] += sales.Col("price").F[i]
	}
	if res.Table.NumRows() != len(want) {
		t.Fatalf("groups = %d, want %d", res.Table.NumRows(), len(want))
	}
	for i := 0; i < res.Table.NumRows(); i++ {
		item := res.Table.Cols[0].I[i]
		got := res.Table.Cols[1].F[i]
		if math.Abs(got-want[item]) > 1e-6 {
			t.Errorf("item %d: sum = %v, want %v", item, got, want[item])
		}
		if i > 0 && item <= res.Table.Cols[0].I[i-1] {
			t.Errorf("ORDER BY violated at row %d", i)
		}
	}
}

func TestSerialParallelAgree(t *testing.T) {
	cat := testCatalog(t, 20000)
	serial := NewEngine(cat, 1)
	parallel := NewEngine(cat, 8)
	q := `SELECT s_item, sum(price), count(*), avg(qty), stddev(price), min(price), max(qty)
	      FROM sales, stores WHERE s_store = st_id AND st_state != 'CA'
	      GROUP BY s_item ORDER BY s_item`
	r1 := runBuiltins(t, serial, q)
	r2 := runBuiltins(t, parallel, q)
	if r1.Table.NumRows() != r2.Table.NumRows() {
		t.Fatalf("row mismatch: %d vs %d", r1.Table.NumRows(), r2.Table.NumRows())
	}
	for c := range r1.Table.Cols {
		for i := 0; i < r1.Table.NumRows(); i++ {
			a := r1.Table.Cols[c].AsFloat(i)
			b := r2.Table.Cols[c].AsFloat(i)
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				t.Fatalf("col %d row %d: %v vs %v", c, i, a, b)
			}
		}
	}
}

func TestStateTaskMatchesBuiltin(t *testing.T) {
	cat := testCatalog(t, 3000)
	e := NewEngine(cat, 4)
	stmt, _ := sqlparse.Parse("SELECT s_item, sum(price) FROM sales GROUP BY s_item ORDER BY s_item")
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// State task Σ price² and builtin-equivalent check via two runs.
	st := canonical.State{Op: canonical.OpSum,
		F:    mustChain(t, "x^2"),
		Base: expr.MustParse("price")}
	reg := NewTaskRegistry()
	reg.Add(st.Key(), func(b Binder) (Task, error) {
		return NewStateTask(st, b)
	})
	cnt := canonical.State{Op: canonical.OpCount, Base: &expr.Num{Val: 1}}
	reg.Add(cnt.Key(), func(b Binder) (Task, error) {
		return NewStateTask(cnt, b)
	})
	gr, err := e.RunSpecs(context.Background(), dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference.
	sales, _ := cat.Table("sales")
	wantSq := map[int64]float64{}
	wantN := map[int64]float64{}
	for i := 0; i < sales.NumRows(); i++ {
		it := sales.Col("s_item").I[i]
		p := sales.Col("price").F[i]
		wantSq[it] += p * p
		wantN[it]++
	}
	for g := 0; g < gr.NumGroups; g++ {
		item := gr.Keys[g][0]
		if math.Abs(gr.Values[0][g]-wantSq[item]) > 1e-6*(1+wantSq[item]) {
			t.Errorf("Σx² for item %d: %v, want %v", item, gr.Values[0][g], wantSq[item])
		}
		if gr.Values[1][g] != wantN[item] {
			t.Errorf("count for item %d: %v, want %v", item, gr.Values[1][g], wantN[item])
		}
	}
}

func mustChain(t *testing.T, body string) scalar.Chain {
	t.Helper()
	form, err := canonical.Decompose("tmp", []string{"x"}, expr.MustParse("sum("+body+")"))
	if err != nil {
		t.Fatal(err)
	}
	return form.States[0].F
}

func TestNaiveUDAFTaskMatchesDirect(t *testing.T) {
	cat := testCatalog(t, 2000)
	e := NewEngine(cat, 4)
	form, err := canonical.Decompose("qm", []string{"x"},
		expr.MustParse("sqrt(sum(x^2)/count())"))
	if err != nil {
		t.Fatal(err)
	}
	stmt, _ := sqlparse.Parse("SELECT s_item, qm(price) FROM sales GROUP BY s_item")
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	call := &expr.Call{Name: "qm", Args: []expr.Node{&expr.Var{Name: "price"}}}
	reg := NewTaskRegistry()
	reg.Add("naive:qm", func(b Binder) (Task, error) {
		return NewNaiveUDAFTask(form, call, b.Bind)
	})
	gr, err := e.RunSpecs(context.Background(), dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	sales, _ := cat.Table("sales")
	sq := map[int64]float64{}
	n := map[int64]float64{}
	for i := 0; i < sales.NumRows(); i++ {
		it := sales.Col("s_item").I[i]
		p := sales.Col("price").F[i]
		sq[it] += p * p
		n[it]++
	}
	for g := 0; g < gr.NumGroups; g++ {
		item := gr.Keys[g][0]
		want := math.Sqrt(sq[item] / n[item])
		if math.Abs(gr.Values[0][g]-want) > 1e-9*(1+want) {
			t.Errorf("qm(%d) = %v, want %v", item, gr.Values[0][g], want)
		}
	}
}

func TestOrPredicate(t *testing.T) {
	cat := testCatalog(t, 2000)
	e := NewEngine(cat, 1)
	res := runBuiltins(t, e,
		`SELECT count(*) FROM sales, stores
		 WHERE s_store = st_id AND (st_state = 'TN' OR st_state = 'NY')`)
	sales, _ := cat.Table("sales")
	want := 0.0
	for _, st := range sales.Col("s_store").I {
		if st == 0 || st == 2 || st == 3 {
			want++
		}
	}
	if got := res.Table.Cols[0].F[0]; got != want {
		t.Errorf("count = %v, want %v", got, want)
	}
}

func TestRunSimpleProjection(t *testing.T) {
	cat := testCatalog(t, 100)
	e := NewEngine(cat, 1)
	stmt, _ := sqlparse.Parse("SELECT s_item, price*qty AS revenue FROM sales WHERE price > 50")
	res, err := e.RunSimple(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	sales, _ := cat.Table("sales")
	want := 0
	for i := 0; i < sales.NumRows(); i++ {
		if sales.Col("price").F[i] > 50 {
			want++
		}
	}
	if res.Table.NumRows() != want {
		t.Fatalf("rows = %d, want %d", res.Table.NumRows(), want)
	}
	if res.Table.Col("revenue") == nil || res.Table.Col("s_item") == nil {
		t.Fatal("missing output columns")
	}
}

func TestLimitAndDesc(t *testing.T) {
	cat := testCatalog(t, 1000)
	e := NewEngine(cat, 1)
	res := runBuiltins(t, e,
		"SELECT s_item, sum(price) s FROM sales GROUP BY s_item ORDER BY s DESC LIMIT 3")
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	s := res.Table.Col("s")
	if s.F[0] < s.F[1] || s.F[1] < s.F[2] {
		t.Errorf("DESC order violated: %v", s.F)
	}
}

func TestFingerprintStability(t *testing.T) {
	cat := testCatalog(t, 10)
	e := NewEngine(cat, 1)
	// Same data part written two ways must fingerprint identically.
	q1, _ := sqlparse.Parse("SELECT sum(price) FROM sales, stores WHERE s_store = st_id AND st_state = 'TN' GROUP BY s_item")
	q2, _ := sqlparse.Parse("SELECT count(*) FROM stores, sales WHERE st_state = 'TN' AND st_id = s_store GROUP BY s_item")
	dp1, err := e.PrepareData(q1)
	if err != nil {
		t.Fatal(err)
	}
	dp2, err := e.PrepareData(q2)
	if err != nil {
		t.Fatal(err)
	}
	if dp1.Fingerprint != dp2.Fingerprint {
		t.Errorf("fingerprints differ:\n%s\n%s", dp1.Fingerprint, dp2.Fingerprint)
	}
	// Different predicate → different fingerprint.
	q3, _ := sqlparse.Parse("SELECT sum(price) FROM sales, stores WHERE s_store = st_id AND st_state = 'CA' GROUP BY s_item")
	dp3, err := e.PrepareData(q3)
	if err != nil {
		t.Fatal(err)
	}
	if dp3.Fingerprint == dp1.Fingerprint {
		t.Error("fingerprint should depend on predicates")
	}
}

func TestJoinDuplicateBuildKeys(t *testing.T) {
	// Build side with duplicate keys must expand rows (multimap path).
	dup := storage.NewTable("dup",
		storage.NewColumn("d_id", storage.KindInt),
		storage.NewColumn("d_tag", storage.KindInt),
	)
	for i := 0; i < 3; i++ {
		dup.Col("d_id").AppendInt(1)
		dup.Col("d_tag").AppendInt(int64(i))
	}
	facts := storage.NewTable("facts",
		storage.NewColumn("f_id", storage.KindInt),
		storage.NewColumn("f_v", storage.KindFloat),
	)
	facts.Col("f_id").AppendInt(1)
	facts.Col("f_v").AppendFloat(10)
	facts.Col("f_id").AppendInt(2)
	facts.Col("f_v").AppendFloat(20)
	// Pad facts so it is picked as the fact side.
	for i := 0; i < 10; i++ {
		facts.Col("f_id").AppendInt(99)
		facts.Col("f_v").AppendFloat(0)
	}
	cat := catalog.New()
	if err := cat.Register(dup); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(facts); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, 1)
	res := runBuiltins(t, e, "SELECT count(*), sum(f_v) FROM facts, dup WHERE f_id = d_id")
	if got := res.Table.Cols[0].F[0]; got != 3 {
		t.Errorf("count = %v, want 3 (one fact row × 3 dup rows)", got)
	}
	if got := res.Table.Cols[1].F[0]; got != 30 {
		t.Errorf("sum = %v, want 30", got)
	}
}
