// Package exec implements the physical execution engine of the SUDAF
// reproduction: columnar scans with predicate selection, left-deep hash
// joins, and hash group-by aggregation with three aggregate execution
// paths — built-in fast loops (sum/count/avg/min/max/stddev/variance/
// covariance), compiled SUDAF aggregation-state loops, and deliberately
// interpreted "hardcoded UDAF" accumulators that model the per-tuple
// boxing overhead of PL/pgSQL and Spark's UserDefinedAggregateFunction.
//
// The engine runs serial ("PostgreSQL mode") or with partitioned parallel
// partial aggregation and merge ("Spark mode"), exercising exactly the
// IUME update/merge contract the paper's canonical forms guarantee.
package exec

import (
	"fmt"
	"math"

	"sudaf/internal/expr"
	"sudaf/internal/storage"
)

// Accessor reads a float64 value for output row i of a row set.
type Accessor func(i int32) float64

// colAccessor builds an accessor for a physical column through a row
// indirection vector.
func colAccessor(col *storage.Column, rows []int32) Accessor {
	switch col.Kind {
	case storage.KindFloat:
		f := col.F
		return func(i int32) float64 { return f[rows[i]] }
	case storage.KindInt:
		v := col.I
		return func(i int32) float64 { return float64(v[rows[i]]) }
	default:
		c := col.Codes
		return func(i int32) float64 { return float64(c[rows[i]]) }
	}
}

// intAccessor reads group-key values as int64.
func intAccessor(col *storage.Column, rows []int32) func(i int32) int64 {
	switch col.Kind {
	case storage.KindInt:
		v := col.I
		return func(i int32) int64 { return v[rows[i]] }
	case storage.KindString:
		c := col.Codes
		return func(i int32) int64 { return int64(c[rows[i]]) }
	default:
		f := col.F
		return func(i int32) int64 { return int64(f[rows[i]]) }
	}
}

// CompileExpr compiles a scalar expression over columns into an accessor.
// bind resolves a column name to its accessor. Compilation happens once
// per query; evaluation is closure calls only — no maps, no boxing.
func CompileExpr(n expr.Node, bind func(name string) (Accessor, error)) (Accessor, error) {
	switch t := n.(type) {
	case *expr.Num:
		v := t.Val
		return func(int32) float64 { return v }, nil
	case *expr.Var:
		return bind(t.Name)
	case *expr.Neg:
		x, err := CompileExpr(t.X, bind)
		if err != nil {
			return nil, err
		}
		return func(i int32) float64 { return -x(i) }, nil
	case *expr.Bin:
		l, err := CompileExpr(t.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := CompileExpr(t.R, bind)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case '+':
			return func(i int32) float64 { return l(i) + r(i) }, nil
		case '-':
			return func(i int32) float64 { return l(i) - r(i) }, nil
		case '*':
			return func(i int32) float64 { return l(i) * r(i) }, nil
		case '/':
			return func(i int32) float64 { return l(i) / r(i) }, nil
		case '^':
			// Integer powers compile to multiplications.
			if c, ok := t.R.(*expr.Num); ok {
				switch c.Val {
				case 2:
					return func(i int32) float64 { v := l(i); return v * v }, nil
				case 3:
					return func(i int32) float64 { v := l(i); return v * v * v }, nil
				case -1:
					return func(i int32) float64 { return 1 / l(i) }, nil
				case 0.5:
					return func(i int32) float64 { return math.Sqrt(l(i)) }, nil
				}
			}
			return func(i int32) float64 { return math.Pow(l(i), r(i)) }, nil
		}
		return nil, fmt.Errorf("unknown operator %q", t.Op)
	case *expr.Call:
		if expr.AggregateFuncs[t.Name] {
			return nil, fmt.Errorf("aggregate %s() in scalar context", t.Name)
		}
		args := make([]Accessor, len(t.Args))
		for k, a := range t.Args {
			c, err := CompileExpr(a, bind)
			if err != nil {
				return nil, err
			}
			args[k] = c
		}
		switch t.Name {
		case "sqrt":
			a := args[0]
			return func(i int32) float64 { return math.Sqrt(a(i)) }, nil
		case "cbrt":
			a := args[0]
			return func(i int32) float64 { return math.Cbrt(a(i)) }, nil
		case "ln":
			a := args[0]
			return func(i int32) float64 { return math.Log(a(i)) }, nil
		case "log":
			b, x := args[0], args[1]
			return func(i int32) float64 { return math.Log(x(i)) / math.Log(b(i)) }, nil
		case "exp":
			a := args[0]
			return func(i int32) float64 { return math.Exp(a(i)) }, nil
		case "abs":
			a := args[0]
			return func(i int32) float64 { return math.Abs(a(i)) }, nil
		case "sgn":
			a := args[0]
			return func(i int32) float64 {
				v := a(i)
				if v > 0 {
					return 1
				} else if v < 0 {
					return -1
				}
				return 0
			}, nil
		case "pow":
			a, b := args[0], args[1]
			return func(i int32) float64 { return math.Pow(a(i), b(i)) }, nil
		case "inv":
			a := args[0]
			return func(i int32) float64 { return 1 / a(i) }, nil
		}
		return nil, fmt.Errorf("unknown scalar function %q", t.Name)
	}
	return nil, fmt.Errorf("cannot compile %T", n)
}
