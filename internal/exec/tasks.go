package exec

import (
	"fmt"
	"math"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/storage"
)

// StateTask computes one SUDAF aggregation state with compiled loops:
// base expression and scalar chain are closures, the merge operation is
// monomorphic per AggOp. This is the "rewritten using built-in functions"
// execution path of the paper (queries RQ1/RQ2).
//
// It is also a VectorTask: NewStateTask classifies the state into a batch
// kernel (canonical.SelectKernel) and AccumulateVec runs the matching
// fused loop — direct column indexing for float columns, gather-then-loop
// otherwise, and a compiled batch filler for generic bases. Both paths
// visit rows in the same order per group, so they agree bit for bit.
type StateTask struct {
	State canonical.State // bound state (base over real columns)
	Lbl   string
	in    Accessor              // compiled base expression (nil for count)
	fn    func(float64) float64 // compiled chain (nil for identity)

	// Vectorized execution plan (vecOK false means scalar-only).
	plan        canonical.KernelPlan
	col, col2   *storage.Column // fused-kernel inputs
	rows, rows2 []int32         // per-column row indirection vectors
	fillerFac   VecFillerFactory
	vecOK       bool
}

// NewStateTask compiles a bound state against a row binder.
func NewStateTask(st canonical.State, b Binder) (*StateTask, error) {
	t := &StateTask{State: st, Lbl: st.Key()}
	if st.Op != canonical.OpCount {
		in, err := CompileExpr(st.Base, b.Bind)
		if err != nil {
			return nil, fmt.Errorf("state %s: %w", st.Key(), err)
		}
		t.in = in
		chain := st.F.NormalizeReal()
		if !chain.IsIdentity() {
			fn, err := chain.Compile()
			if err != nil {
				return nil, fmt.Errorf("state %s: %w", st.Key(), err)
			}
			t.fn = fn
		}
	}
	t.compileKernel(b)
	return t, nil
}

// compileKernel resolves the vectorized plan. Failures here are never
// errors: the scalar path always works, so an unbindable column or an
// uncompilable base just leaves vecOK false.
func (t *StateTask) compileKernel(b Binder) {
	t.plan = t.State.SelectKernel()
	switch t.plan.Class {
	case canonical.KernelCount:
		t.vecOK = true
	case canonical.KernelSumCol, canonical.KernelSumPow, canonical.KernelProdCol,
		canonical.KernelMinCol, canonical.KernelMaxCol:
		col, rows, err := b.BindColumn(t.plan.Col)
		if err != nil {
			return
		}
		t.col, t.rows, t.vecOK = col, rows, true
	case canonical.KernelSumMul:
		col, rows, err := b.BindColumn(t.plan.Col)
		if err != nil {
			return
		}
		col2, rows2, err := b.BindColumn(t.plan.Col2)
		if err != nil {
			return
		}
		t.col, t.col2, t.rows, t.rows2, t.vecOK = col, col2, rows, rows2, true
	default: // KernelGeneric
		fac, err := CompileVecFiller(t.State.Base, b)
		if err != nil {
			return
		}
		t.fillerFac = fac
		t.vecOK = true
	}
}

func (t *StateTask) Name() string { return t.Lbl }

// stateVecState is one worker's kernel scratch: gather buffers for
// non-float columns and the compiled batch filler for generic bases.
type stateVecState struct {
	buf  []float64
	buf2 []float64
	fill VecFiller
}

// NewVecState implements VectorTask. Returns nil when no kernel was
// compiled, which routes this task to the scalar Accumulate.
func (t *StateTask) NewVecState() VecState {
	if !t.vecOK {
		return nil
	}
	vs := &stateVecState{}
	switch t.plan.Class {
	case canonical.KernelCount:
		// No input, no scratch.
	case canonical.KernelGeneric:
		vs.buf = make([]float64, BatchSize)
		vs.fill = t.fillerFac()
	case canonical.KernelSumMul:
		if t.col.Kind != storage.KindFloat || t.col2.Kind != storage.KindFloat {
			vs.buf = make([]float64, BatchSize)
			vs.buf2 = make([]float64, BatchSize)
		}
	default:
		if t.col.Kind != storage.KindFloat {
			vs.buf = make([]float64, BatchSize)
		}
	}
	return vs
}

// AccumulateVec implements VectorTask: one fused loop per kernel class.
// Float columns are indexed directly through the row vector; other kinds
// gather into the worker's batch buffer first. Every loop folds rows in
// ascending order, so per-group accumulation order — and therefore
// floating-point rounding — matches the scalar path exactly.
func (t *StateTask) AccumulateVec(vsi VecState, p Partial, lo, hi int, gids []int32) {
	a := p.(*floatsPartial).arrs[0]
	vs := vsi.(*stateVecState)
	n := hi - lo
	switch t.plan.Class {
	case canonical.KernelCount:
		for _, g := range gids[:n] {
			a[g]++
		}
	case canonical.KernelSumCol:
		if t.col.Kind == storage.KindFloat {
			f, rows := t.col.F, t.rows
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] += f[rows[i]]
			}
		} else {
			buf := vs.buf[:n]
			t.col.GatherFloats(t.rows, lo, hi, buf)
			for j, g := range gids[:n] {
				a[g] += buf[j]
			}
		}
	case canonical.KernelSumPow:
		switch t.plan.Pow {
		case 2:
			if t.col.Kind == storage.KindFloat {
				f, rows := t.col.F, t.rows
				for i := lo; i < hi; i++ {
					v := f[rows[i]]
					a[gids[i-lo]] += v * v
				}
			} else {
				buf := vs.buf[:n]
				t.col.GatherFloats(t.rows, lo, hi, buf)
				for j, g := range gids[:n] {
					v := buf[j]
					a[g] += v * v
				}
			}
		case 3:
			if t.col.Kind == storage.KindFloat {
				f, rows := t.col.F, t.rows
				for i := lo; i < hi; i++ {
					v := f[rows[i]]
					a[gids[i-lo]] += v * v * v
				}
			} else {
				buf := vs.buf[:n]
				t.col.GatherFloats(t.rows, lo, hi, buf)
				for j, g := range gids[:n] {
					v := buf[j]
					a[g] += v * v * v
				}
			}
		default:
			// k = 4 stays math.Pow to match Chain.Compile / CompileExpr
			// bit for bit (x*x*x*x rounds differently).
			k := float64(t.plan.Pow)
			if t.col.Kind == storage.KindFloat {
				f, rows := t.col.F, t.rows
				for i := lo; i < hi; i++ {
					a[gids[i-lo]] += math.Pow(f[rows[i]], k)
				}
			} else {
				buf := vs.buf[:n]
				t.col.GatherFloats(t.rows, lo, hi, buf)
				for j, g := range gids[:n] {
					a[g] += math.Pow(buf[j], k)
				}
			}
		}
	case canonical.KernelSumMul:
		if t.col.Kind == storage.KindFloat && t.col2.Kind == storage.KindFloat {
			f1, r1 := t.col.F, t.rows
			f2, r2 := t.col2.F, t.rows2
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] += f1[r1[i]] * f2[r2[i]]
			}
		} else {
			buf, buf2 := vs.buf[:n], vs.buf2[:n]
			t.col.GatherFloats(t.rows, lo, hi, buf)
			t.col2.GatherFloats(t.rows2, lo, hi, buf2)
			for j, g := range gids[:n] {
				a[g] += buf[j] * buf2[j]
			}
		}
	case canonical.KernelProdCol:
		if t.col.Kind == storage.KindFloat {
			f, rows := t.col.F, t.rows
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] *= f[rows[i]]
			}
		} else {
			buf := vs.buf[:n]
			t.col.GatherFloats(t.rows, lo, hi, buf)
			for j, g := range gids[:n] {
				a[g] *= buf[j]
			}
		}
	case canonical.KernelMinCol:
		if t.col.Kind == storage.KindFloat {
			f, rows := t.col.F, t.rows
			for i := lo; i < hi; i++ {
				g := gids[i-lo]
				if v := f[rows[i]]; v < a[g] || v != v {
					a[g] = v
				}
			}
		} else {
			buf := vs.buf[:n]
			t.col.GatherFloats(t.rows, lo, hi, buf)
			for j, g := range gids[:n] {
				if v := buf[j]; v < a[g] || v != v {
					a[g] = v
				}
			}
		}
	case canonical.KernelMaxCol:
		if t.col.Kind == storage.KindFloat {
			f, rows := t.col.F, t.rows
			for i := lo; i < hi; i++ {
				g := gids[i-lo]
				if v := f[rows[i]]; v > a[g] || v != v {
					a[g] = v
				}
			}
		} else {
			buf := vs.buf[:n]
			t.col.GatherFloats(t.rows, lo, hi, buf)
			for j, g := range gids[:n] {
				if v := buf[j]; v > a[g] || v != v {
					a[g] = v
				}
			}
		}
	default: // KernelGeneric: batch-eval the base, chain, then fold.
		buf := vs.buf[:n]
		vs.fill(lo, hi, buf)
		if fn := t.fn; fn != nil {
			for j := range buf {
				buf[j] = fn(buf[j])
			}
		}
		switch t.State.Op {
		case canonical.OpSum:
			for j, g := range gids[:n] {
				a[g] += buf[j]
			}
		case canonical.OpProd:
			for j, g := range gids[:n] {
				a[g] *= buf[j]
			}
		case canonical.OpMin:
			for j, g := range gids[:n] {
				if v := buf[j]; v < a[g] || v != v {
					a[g] = v
				}
			}
		case canonical.OpMax:
			for j, g := range gids[:n] {
				if v := buf[j]; v > a[g] || v != v {
					a[g] = v
				}
			}
		}
	}
}

// maxExactFold bounds the magnitude budget of a run-fold: every partial
// sum (or product) the dense path would compute must be an exact
// integer, which holds comfortably below 2^52 (float64 represents all
// integers up to 2^53 exactly; the extra bit is margin for the
// float-arithmetic guard computations themselves).
const maxExactFold = float64(1 << 52)

// ipow computes v^n by binary exponentiation with float64 multiplies.
// Under the fold guards every intermediate is an exact integer, so the
// result equals what n-1 sequential multiplications produce — including
// signed-zero parity, which plain math.Pow does not guarantee bitwise.
func ipow(v float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= v
		}
		v *= v
		n >>= 1
	}
	return r
}

// FoldRuns implements RunFoldTask: it folds the RLE runs of the state's
// input column directly into group 0 of p, in O(runs). The caller
// guarantees an identity row set (column row i IS morsel row i) and a
// single group. Exactness contract: the fold only proceeds when its
// result is provably bit-identical to the dense scan —
//
//   - count: always (integer increments below 2^53);
//   - min/max: always (runs are bitwise-constant, so applying each run
//     value once visits the same distinct values in the same order,
//     including NaN poisoning);
//   - sum/sum-pow: only when every covered value is an exact integer
//     and maxAbs^pow × rows stays under 2^52, making every partial sum
//     on both paths an exact — and therefore association-independent —
//     integer;
//   - prod: only when the running product provably stays an exact
//     integer (constant/0/±1-heavy segments in practice);
//   - everything else (SumMul, Generic): never, dense path.
func (t *StateTask) FoldRuns(p Partial, lo, hi int) bool {
	if !t.vecOK || hi <= lo {
		return false
	}
	a := p.(*floatsPartial).arrs[0]
	if t.plan.Class == canonical.KernelCount {
		a[0] += float64(hi - lo)
		storage.CountRunFolds(1)
		return true
	}
	switch t.plan.Class {
	case canonical.KernelSumCol, canonical.KernelSumPow, canonical.KernelProdCol,
		canonical.KernelMinCol, canonical.KernelMaxCol:
	default:
		return false
	}
	maxAbs, integral, ok := t.col.RunCoverage(lo, hi)
	if !ok {
		return false
	}
	n := hi - lo
	folds := int64(0)
	switch t.plan.Class {
	case canonical.KernelSumCol:
		if !integral || maxAbs*float64(n) >= maxExactFold {
			return false
		}
		sum := 0.0
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			sum += v * float64(c)
			folds++
		})
		a[0] += sum
	case canonical.KernelSumPow:
		pw := math.Pow(maxAbs, float64(t.plan.Pow))
		if !integral || pw*float64(n) >= maxExactFold {
			return false
		}
		sum := 0.0
		pow := t.plan.Pow
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			var pv float64
			switch pow {
			case 2:
				pv = v * v
			case 3:
				pv = v * v * v
			default:
				pv = math.Pow(v, float64(pow)) // matches the dense kernel
			}
			sum += pv * float64(c)
			folds++
		})
		a[0] += sum
	case canonical.KernelProdCol:
		if !integral {
			return false
		}
		// The running product must stay an exact integer on both paths:
		// bound it by the product of per-run |v|^count (math.Pow may
		// under-round by an ulp, hence the 2^51 margin below 2^52).
		bound := 1.0
		exact := true
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			av := math.Abs(v)
			if av > 1 {
				bound *= math.Pow(av, float64(c))
			}
			if bound >= maxExactFold/2 || math.IsInf(bound, 0) {
				exact = false
			}
		})
		if !exact {
			return false
		}
		prod := 1.0
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			prod *= ipow(v, c)
			folds++
		})
		a[0] *= prod
	case canonical.KernelMinCol:
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			if v < a[0] || v != v {
				a[0] = v
			}
			folds++
		})
	case canonical.KernelMaxCol:
		t.col.ForEachRun(lo, hi, func(v float64, c int) {
			if v > a[0] || v != v {
				a[0] = v
			}
			folds++
		})
	}
	storage.CountRunFolds(folds)
	return true
}

func (t *StateTask) fill() float64 { return t.State.MergeIdentity() }

func (t *StateTask) NewPartial(n int) Partial { return newFloats(n, t.fill()) }

func (t *StateTask) Grow(p Partial, n int) Partial {
	p.(*floatsPartial).grow(n, t.fill())
	return p
}

func (t *StateTask) Accumulate(p Partial, lo, hi int, gids []int32) {
	a := p.(*floatsPartial).arrs[0]
	switch t.State.Op {
	case canonical.OpCount:
		for i := lo; i < hi; i++ {
			a[gids[i-lo]]++
		}
	case canonical.OpSum:
		in, fn := t.in, t.fn
		if fn == nil {
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] += in(int32(i))
			}
		} else {
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] += fn(in(int32(i)))
			}
		}
	case canonical.OpProd:
		in, fn := t.in, t.fn
		if fn == nil {
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] *= in(int32(i))
			}
		} else {
			for i := lo; i < hi; i++ {
				a[gids[i-lo]] *= fn(in(int32(i)))
			}
		}
	case canonical.OpMin:
		in, fn := t.in, t.fn
		for i := lo; i < hi; i++ {
			v := in(int32(i))
			if fn != nil {
				v = fn(v)
			}
			// v != v catches NaN: poison the group like math.Min (and like
			// State.Merge), so results don't depend on partitioning.
			if g := gids[i-lo]; v < a[g] || v != v {
				a[g] = v
			}
		}
	case canonical.OpMax:
		in, fn := t.in, t.fn
		for i := lo; i < hi; i++ {
			v := in(int32(i))
			if fn != nil {
				v = fn(v)
			}
			if g := gids[i-lo]; v > a[g] || v != v {
				a[g] = v
			}
		}
	}
}

func (t *StateTask) Merge(dst, src Partial, remap []int32) {
	d, s := dst.(*floatsPartial).arrs[0], src.(*floatsPartial).arrs[0]
	st := t.State
	for g, v := range s {
		d[remap[g]] = st.Merge(d[remap[g]], v)
	}
}

func (t *StateTask) Finalize(p Partial, ngroups int) []float64 {
	out := make([]float64, ngroups)
	copy(out, p.(*floatsPartial).arrs[0][:ngroups])
	return out
}

// NaiveUDAFTask models a hardcoded UDAF: the same canonical form, but the
// update function is interpreted per tuple — the argument environment is
// boxed into a map and both the base expressions and the scalar chains
// are walked as trees, mirroring the per-row overhead of PL/pgSQL and of
// Spark's UserDefinedAggregateFunction Row objects. The merge step obeys
// the same IUME contract, so parallel execution stays correct.
type NaiveUDAFTask struct {
	Form *canonical.Form
	Lbl  string
	// args are the compiled accessors for the UDAF's actual arguments
	// (the query engine hands the UDAF its input row, which is fast; the
	// slowness is in the user's update routine).
	args []Accessor
	// updates are the interpreted per-tuple update statements
	// s_i := s_i ⊕ F_i(args); nil entries (min/max) update natively.
	updates []expr.Node
}

// NewNaiveUDAFTask builds the baseline task for a UDAF call.
func NewNaiveUDAFTask(form *canonical.Form, call *expr.Call, bind func(string) (Accessor, error)) (*NaiveUDAFTask, error) {
	if len(call.Args) != len(form.Params) {
		return nil, fmt.Errorf("%s takes %d arguments, got %d", form.Name, len(form.Params), len(call.Args))
	}
	t := &NaiveUDAFTask{Form: form, Lbl: form.Name}
	for _, a := range call.Args {
		in, err := CompileExpr(a, bind)
		if err != nil {
			return nil, err
		}
		t.args = append(t.args, in)
	}
	for i := range form.States {
		t.updates = append(t.updates, form.UpdateExpr(i))
	}
	return t, nil
}

func (t *NaiveUDAFTask) Name() string { return t.Lbl }

func (t *NaiveUDAFTask) fills() []float64 {
	out := make([]float64, len(t.Form.States))
	for i, s := range t.Form.States {
		out[i] = s.MergeIdentity()
	}
	return out
}

func (t *NaiveUDAFTask) NewPartial(n int) Partial { return newFloats(n, t.fills()...) }

func (t *NaiveUDAFTask) Grow(p Partial, n int) Partial {
	p.(*floatsPartial).grow(n, t.fills()...)
	return p
}

func (t *NaiveUDAFTask) Accumulate(p Partial, lo, hi int, gids []int32) {
	fp := p.(*floatsPartial)
	states := t.Form.States
	params := t.Form.Params
	for i := lo; i < hi; i++ {
		// The hardcoded-UDAF cost model: a boxed per-tuple environment
		// holding the arguments and the current state values, with each
		// update statement s_j := s_j ⊕ F_j(args) interpreted as an
		// expression tree — what an interpreted stored-procedure
		// accumulator (PL/pgSQL) or a Row-boxing Spark UDAF does per row.
		env := make(expr.MapEnv, len(params)+len(states))
		for k, name := range params {
			env[name] = t.args[k](int32(i))
		}
		g := gids[i-lo]
		for si := range states {
			env[canonical.StateVar(si)] = fp.arrs[si][g]
		}
		for si, s := range states {
			if t.updates[si] == nil {
				// min/max: native comparison update.
				base, err := expr.Eval(s.Base, env)
				if err != nil {
					base = math.NaN()
				}
				fp.arrs[si][g] = s.Update(fp.arrs[si][g], base)
				continue
			}
			v, err := expr.Eval(t.updates[si], env)
			if err != nil {
				v = math.NaN()
			}
			fp.arrs[si][g] = v
		}
	}
}

func (t *NaiveUDAFTask) Merge(dst, src Partial, remap []int32) {
	d, s := dst.(*floatsPartial), src.(*floatsPartial)
	for si, st := range t.Form.States {
		da, sa := d.arrs[si], s.arrs[si]
		for g, v := range sa {
			da[remap[g]] = st.Merge(da[remap[g]], v)
		}
	}
}

func (t *NaiveUDAFTask) Finalize(p Partial, ngroups int) []float64 {
	fp := p.(*floatsPartial)
	out := make([]float64, ngroups)
	vals := make([]float64, len(t.Form.States))
	tfn, err := t.Form.CompileT()
	if err != nil {
		for g := range out {
			out[g] = math.NaN()
		}
		return out
	}
	for g := 0; g < ngroups; g++ {
		for si := range t.Form.States {
			vals[si] = fp.arrs[si][g]
		}
		out[g] = tfn(vals)
	}
	return out
}
