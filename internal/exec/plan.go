package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"sudaf/internal/catalog"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// Engine executes queries against a catalog. It is safe for concurrent
// use: any number of goroutines may run queries at once, sharing one
// worker-token pool so the morsel scheduler is never oversubscribed (see
// aggregate).
type Engine struct {
	Cat *catalog.Catalog
	// Workers is the parallelism degree: 1 models the single-threaded
	// PostgreSQL setting, runtime.NumCPU() the Spark cluster setting.
	// Under concurrent queries it is the *total* helper budget shared by
	// all of them, not a per-query figure.
	Workers int
	// disableVec forces every task onto the tuple-at-a-time Accumulate
	// path even when it implements VectorTask. Used by the kernel
	// benchmarks and the batch≡tuple differential tests; results are
	// identical either way, only throughput differs. Atomic so the knob
	// can be flipped while queries are in flight.
	disableVec atomic.Bool
	// disableFold turns off the direct-over-encoding run-folds (storage
	// engine v2): aggregation then always decodes through the dense
	// path. Results are bit-identical either way — the fold guards
	// guarantee exactness — only throughput differs. Atomic for the same
	// reason as disableVec.
	disableFold atomic.Bool
	// sem holds Workers-1 helper tokens shared across all concurrent
	// aggregations: each query's calling goroutine always participates
	// as a worker (guaranteeing progress without a token), and extra
	// workers spawn only while tokens are available.
	sem chan struct{}
}

// NewEngine creates an engine; workers < 1 defaults to all CPUs.
func NewEngine(cat *catalog.Catalog, workers int) *Engine {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Engine{Cat: cat, Workers: workers, sem: make(chan struct{}, workers-1)}
}

// SetVectorKernels toggles the batch aggregation kernels (on by default).
// Safe to call while queries run; each query snapshots the knob once.
func (e *Engine) SetVectorKernels(on bool) { e.disableVec.Store(!on) }

// VectorKernels reports whether the batch kernels are enabled.
func (e *Engine) VectorKernels() bool { return !e.disableVec.Load() }

// SetEncodedFolds toggles aggregation directly over encoded segments
// (on by default). Safe to call while queries run; each query snapshots
// the knob once.
func (e *Engine) SetEncodedFolds(on bool) { e.disableFold.Store(!on) }

// EncodedFolds reports whether direct-over-encoding folds are enabled.
func (e *Engine) EncodedFolds() bool { return !e.disableFold.Load() }

// joinCond is an equi-join between two table columns.
type joinCond struct {
	lt, rt *storage.Table
	lc, rc *storage.Column
}

// DataPlan is the resolved data part of an aggregate query: base tables,
// pushed-down filters, the equi-join graph, and the grouping columns.
// It is the unit the cache fingerprints (the paper's data dimension).
type DataPlan struct {
	eng     *Engine
	tables  []*storage.Table
	filters map[string]sqlparse.Pred // conjunction per table
	joins   []joinCond
	groupBy []planCol

	// Fingerprint is the canonical identity of the data part; equal
	// fingerprints mean cached aggregation states are directly reusable.
	Fingerprint string
}

// planCol is a resolved column.
type planCol struct {
	table *storage.Table
	col   *storage.Column
}

// GroupByNames returns the group-by column names in order.
func (dp *DataPlan) GroupByNames() []string {
	out := make([]string, len(dp.groupBy))
	for i, g := range dp.groupBy {
		out[i] = g.col.Name
	}
	return out
}

// Tables returns the plan's base table names.
func (dp *DataPlan) Tables() []string {
	out := make([]string, len(dp.tables))
	for i, t := range dp.tables {
		out[i] = t.Name
	}
	return out
}

// TableEpochs returns the version epoch of every base table the plan
// resolved, keyed by table name — the data-version identity that the
// ingestion path compares against when deciding whether cached states
// built from this plan can be delta-maintained.
func (dp *DataPlan) TableEpochs() map[string]int64 {
	out := make(map[string]int64, len(dp.tables))
	for _, t := range dp.tables {
		out[t.Name] = t.Epoch
	}
	return out
}

// PrepareData resolves the FROM/WHERE/GROUP BY part of a statement
// against the engine's session catalog. Subqueries must have been
// materialized by the caller.
func (e *Engine) PrepareData(stmt *sqlparse.Stmt) (*DataPlan, error) {
	return e.PrepareDataIn(e.Cat, stmt)
}

// PrepareDataIn resolves the FROM/WHERE/GROUP BY part of a statement
// against an explicit catalog — typically a per-query overlay holding
// materialized subqueries on top of the session catalog. Subqueries must
// have been materialized by the caller.
//
// It is the composition of the four resolve-phase steps the analyzer
// pipeline exposes individually: NewDataPlan → ResolveFrom →
// ClassifyWhere → ResolveGroupBy → Seal.
func (e *Engine) PrepareDataIn(cat *catalog.Catalog, stmt *sqlparse.Stmt) (*DataPlan, error) {
	dp := e.NewDataPlan()
	if err := dp.ResolveFrom(cat, stmt); err != nil {
		return nil, err
	}
	if err := dp.ClassifyWhere(cat, stmt); err != nil {
		return nil, err
	}
	if err := dp.ResolveGroupBy(cat, stmt); err != nil {
		return nil, err
	}
	dp.Seal(stmt)
	return dp, nil
}

// NewDataPlan starts an empty plan for step-wise resolution (the
// analyzer's resolve phase applies the Resolve*/Seal steps as rules).
func (e *Engine) NewDataPlan() *DataPlan {
	return &DataPlan{eng: e, filters: map[string]sqlparse.Pred{}}
}

// ResolveFrom resolves the statement's FROM list to catalog tables.
// Subqueries must have been materialized (and their refs rewritten)
// by the caller beforehand.
func (dp *DataPlan) ResolveFrom(cat *catalog.Catalog, stmt *sqlparse.Stmt) error {
	for _, ref := range stmt.From {
		if ref.Sub != nil {
			return fmt.Errorf("subquery %q must be materialized before PrepareData", ref.RefName())
		}
		t, err := cat.Table(ref.Name)
		if err != nil {
			return err
		}
		dp.tables = append(dp.tables, t)
	}
	return nil
}

// ClassifyWhere splits the WHERE clause's conjuncts into equi-join
// conditions and per-table pushed-down filters. Requires ResolveFrom.
func (dp *DataPlan) ClassifyWhere(cat *catalog.Catalog, stmt *sqlparse.Stmt) error {
	names := dp.Tables()
	for _, conj := range sqlparse.Conjuncts(stmt.Where) {
		if cmp, ok := conj.(*sqlparse.Cmp); ok && cmp.Op == "=" && cmp.L.IsCol && cmp.R.IsCol {
			lt, err := cat.ResolveColumn(cmp.L.Col, names)
			if err != nil {
				return err
			}
			rt, err := cat.ResolveColumn(cmp.R.Col, names)
			if err != nil {
				return err
			}
			if lt != rt {
				dp.joins = append(dp.joins, joinCond{
					lt: lt, rt: rt, lc: lt.Col(cmp.L.Col), rc: rt.Col(cmp.R.Col),
				})
				continue
			}
		}
		// Single-table filter (or same-table column comparison).
		owner, err := predOwner(cat, conj, names)
		if err != nil {
			return err
		}
		if prev, ok := dp.filters[owner.Name]; ok {
			dp.filters[owner.Name] = &sqlparse.And{L: prev, R: conj}
		} else {
			dp.filters[owner.Name] = conj
		}
	}
	return nil
}

// ResolveGroupBy resolves the grouping columns (floats rejected: their
// equality semantics make unusable group keys). Requires ResolveFrom.
func (dp *DataPlan) ResolveGroupBy(cat *catalog.Catalog, stmt *sqlparse.Stmt) error {
	names := dp.Tables()
	for _, g := range stmt.GroupBy {
		t, err := cat.ResolveColumn(g, names)
		if err != nil {
			return err
		}
		col := t.Col(g)
		if col.Kind == storage.KindFloat {
			return fmt.Errorf("GROUP BY on float column %q is not supported", g)
		}
		dp.groupBy = append(dp.groupBy, planCol{table: t, col: col})
	}
	return nil
}

// Seal canonicalizes the resolved plan into its cache fingerprint; the
// plan is complete after this step.
func (dp *DataPlan) Seal(stmt *sqlparse.Stmt) {
	dp.Fingerprint = fingerprint(dp, stmt)
}

// predOwner finds the single table all columns of a predicate belong to.
func predOwner(cat *catalog.Catalog, p sqlparse.Pred, names []string) (*storage.Table, error) {
	cols := map[string]bool{}
	sqlparse.PredColumns(p, cols)
	if len(cols) == 0 {
		return nil, fmt.Errorf("constant predicate %q not supported", sqlparse.PredString(p))
	}
	var owner *storage.Table
	for c := range cols {
		t, err := cat.ResolveColumn(c, names)
		if err != nil {
			return nil, err
		}
		if owner == nil {
			owner = t
		} else if owner != t {
			return nil, fmt.Errorf("cross-table predicate %q is not an equi-join", sqlparse.PredString(p))
		}
	}
	return owner, nil
}

// DataInfo is the normalized description of a data part, used by the
// aggregate-view rewriter to test subsumption.
type DataInfo struct {
	Tables  []string            // sorted base table names
	Joins   []string            // normalized equi-join strings, sorted
	Filters map[string][]string // table → normalized conjunct strings
	Preds   map[string][]sqlparse.Pred
	GroupBy []string
}

// Info exports the plan's normalized data part.
func (dp *DataPlan) Info() *DataInfo {
	info := &DataInfo{
		Tables:  dp.Tables(),
		Filters: map[string][]string{},
		Preds:   map[string][]sqlparse.Pred{},
		GroupBy: dp.GroupByNames(),
	}
	sort.Strings(info.Tables)
	for _, j := range dp.joins {
		a := j.lt.Name + "." + j.lc.Name
		b := j.rt.Name + "." + j.rc.Name
		if a > b {
			a, b = b, a
		}
		info.Joins = append(info.Joins, a+"="+b)
	}
	sort.Strings(info.Joins)
	for t, p := range dp.filters {
		for _, c := range sqlparse.Conjuncts(p) {
			info.Filters[t] = append(info.Filters[t], sqlparse.PredString(c))
			info.Preds[t] = append(info.Preds[t], c)
		}
		sort.Strings(info.Filters[t])
	}
	return info
}

// fingerprint canonicalizes the data part: sorted table versions
// (name@epoch — the epoch ties cached states to exactly one version of
// the data, so an append retires old fingerprints instead of serving
// stale states), sorted join conditions, sorted per-table filters,
// group-by columns in order.
func fingerprint(dp *DataPlan, stmt *sqlparse.Stmt) string {
	tables := make([]string, len(dp.tables))
	for i, t := range dp.tables {
		tables[i] = fmt.Sprintf("%s@%d", t.Name, t.Epoch)
	}
	sort.Strings(tables)
	var joins []string
	for _, j := range dp.joins {
		a := j.lt.Name + "." + j.lc.Name
		b := j.rt.Name + "." + j.rc.Name
		if a > b {
			a, b = b, a
		}
		joins = append(joins, a+"="+b)
	}
	sort.Strings(joins)
	var filters []string
	for t, p := range dp.filters {
		for _, c := range sqlparse.Conjuncts(p) {
			filters = append(filters, t+":"+sqlparse.PredString(c))
		}
	}
	sort.Strings(filters)
	return "T[" + strings.Join(tables, ",") + "]J[" + strings.Join(joins, ",") +
		"]F[" + strings.Join(filters, ";") + "]G[" + strings.Join(dp.GroupByNames(), ",") + "]"
}

// ---- selection (filter evaluation) ----

// cancelCheckRows is the cooperative-cancellation granularity of the
// scan, probe and accumulate loops: ctx.Err() is polled every block.
const cancelCheckRows = 8192

// selection evaluates a table's pushed-down filter to a row index vector,
// polling ctx between blocks so runaway scans can be cancelled.
func selection(ctx context.Context, t *storage.Table, pred sqlparse.Pred) ([]int32, error) {
	if err := faultinject.Hit(faultinject.PointStorageScan); err != nil {
		return nil, fmt.Errorf("scan %s: %w", t.Name, err)
	}
	n := t.NumRows()
	if pred == nil {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all, nil
	}
	match, err := compilePred(t, pred)
	if err != nil {
		return nil, err
	}
	out := make([]int32, 0, n/4+16)
	for lo := 0; lo < n; lo += cancelCheckRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + cancelCheckRows
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if match(int32(i)) {
				out = append(out, int32(i))
			}
		}
	}
	return out, nil
}

// compilePred compiles a predicate into a per-row matcher for one table.
func compilePred(t *storage.Table, pred sqlparse.Pred) (func(int32) bool, error) {
	switch p := pred.(type) {
	case *sqlparse.And:
		l, err := compilePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return func(i int32) bool { return l(i) && r(i) }, nil
	case *sqlparse.Or:
		l, err := compilePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return func(i int32) bool { return l(i) || r(i) }, nil
	case *sqlparse.Cmp:
		return compileCmp(t, p)
	}
	return nil, fmt.Errorf("unsupported predicate %T", pred)
}

func compileCmp(t *storage.Table, p *sqlparse.Cmp) (func(int32) bool, error) {
	// Column vs column (same table).
	if p.L.IsCol && p.R.IsCol {
		lc, rc := t.Col(p.L.Col), t.Col(p.R.Col)
		if lc == nil || rc == nil {
			return nil, fmt.Errorf("unknown column in %q", sqlparse.PredString(p))
		}
		la := func(i int32) float64 { return lc.AsFloat(int(i)) }
		ra := func(i int32) float64 { return rc.AsFloat(int(i)) }
		return cmpFloat(p.Op, la, ra)
	}
	// Normalize to column OP literal.
	cmp := *p
	if !cmp.L.IsCol {
		cmp.L, cmp.R = cmp.R, cmp.L
		cmp.Op = flipOp(cmp.Op)
	}
	if !cmp.L.IsCol {
		return nil, fmt.Errorf("predicate %q has no column", sqlparse.PredString(p))
	}
	col := t.Col(cmp.L.Col)
	if col == nil {
		return nil, fmt.Errorf("unknown column %q in table %s", cmp.L.Col, t.Name)
	}
	if cmp.R.IsNum {
		v := cmp.R.Num
		switch col.Kind {
		case storage.KindFloat:
			f := col.F
			return cmpConst(cmp.Op, func(i int32) float64 { return f[i] }, v)
		case storage.KindInt:
			iv := col.I
			return cmpConst(cmp.Op, func(i int32) float64 { return float64(iv[i]) }, v)
		default:
			return nil, fmt.Errorf("numeric comparison on string column %q", col.Name)
		}
	}
	// String literal: compare by dictionary code (equality only).
	if col.Kind != storage.KindString {
		return nil, fmt.Errorf("string comparison on non-string column %q", col.Name)
	}
	code := col.Code(cmp.R.Str)
	codes := col.Codes
	switch cmp.Op {
	case "=":
		if code < 0 {
			return func(int32) bool { return false }, nil
		}
		return func(i int32) bool { return codes[i] == code }, nil
	case "!=":
		if code < 0 {
			return func(int32) bool { return true }, nil
		}
		return func(i int32) bool { return codes[i] != code }, nil
	}
	return nil, fmt.Errorf("string comparison %q only supports = and !=", cmp.Op)
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func cmpFloat(op string, l, r func(int32) float64) (func(int32) bool, error) {
	switch op {
	case "=":
		return func(i int32) bool { return l(i) == r(i) }, nil
	case "!=":
		return func(i int32) bool { return l(i) != r(i) }, nil
	case "<":
		return func(i int32) bool { return l(i) < r(i) }, nil
	case "<=":
		return func(i int32) bool { return l(i) <= r(i) }, nil
	case ">":
		return func(i int32) bool { return l(i) > r(i) }, nil
	case ">=":
		return func(i int32) bool { return l(i) >= r(i) }, nil
	}
	return nil, fmt.Errorf("unknown comparison %q", op)
}

func cmpConst(op string, l func(int32) float64, v float64) (func(int32) bool, error) {
	switch op {
	case "=":
		return func(i int32) bool { return l(i) == v }, nil
	case "!=":
		return func(i int32) bool { return l(i) != v }, nil
	case "<":
		return func(i int32) bool { return l(i) < v }, nil
	case "<=":
		return func(i int32) bool { return l(i) <= v }, nil
	case ">":
		return func(i int32) bool { return l(i) > v }, nil
	case ">=":
		return func(i int32) bool { return l(i) >= v }, nil
	}
	return nil, fmt.Errorf("unknown comparison %q", op)
}
