package exec

import (
	"testing"

	"sudaf/internal/catalog"
	"sudaf/internal/storage"
)

// TestGroupByEmptyIntColumn pins the empty-domain regression: an empty
// int column reports (+Inf, -Inf) stats, and the dense group-key sizing
// used to convert those straight to int64 — an out-of-range conversion
// (undefined result) that produced a bogus domain width. The guard must
// route empty (and otherwise non-finite) domains to the hash path.
func TestGroupByEmptyIntColumn(t *testing.T) {
	empty := storage.NewTable("empty",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	cat := catalog.New()
	if err := cat.Register(empty); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, 2)
	res := runBuiltins(t, e, "SELECT g, sum(v), count(*) FROM empty GROUP BY g")
	if res.Table.NumRows() != 0 {
		t.Fatalf("groups over empty table = %d, want 0", res.Table.NumRows())
	}

	// Same guard, string flavor: empty dictionary-encoded key column.
	empty2 := storage.NewTable("empty2",
		storage.NewColumn("tag", storage.KindString),
		storage.NewColumn("v", storage.KindFloat))
	if err := cat.Register(empty2); err != nil {
		t.Fatal(err)
	}
	res = runBuiltins(t, e, "SELECT tag, min(v) FROM empty2 GROUP BY tag")
	if res.Table.NumRows() != 0 {
		t.Fatalf("groups over empty string-keyed table = %d, want 0", res.Table.NumRows())
	}
}

// TestGroupByAfterAppendVersion: the dense-key path sizes its table from
// Column.Stats(); querying a successor version whose key domain grew
// must see fresh stats, not the sealed parent's.
func TestGroupByAfterAppendVersion(t *testing.T) {
	base := storage.NewTable("grow",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	base.Col("g").AppendInt(0)
	base.Col("v").AppendFloat(1)
	cat := catalog.New()
	if err := cat.Register(base); err != nil {
		t.Fatal(err)
	}
	// Warm the stats cache on the 1-row domain.
	base.Col("g").Stats()

	delta := storage.NewTable("grow",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	for i := int64(1); i <= 300; i++ {
		delta.Col("g").AppendInt(i)
		delta.Col("v").AppendFloat(float64(i))
	}
	v2, err := base.AppendRows(delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(v2); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, 2)
	res := runBuiltins(t, e, "SELECT g, count(*) FROM grow GROUP BY g")
	if res.Table.NumRows() != 301 {
		t.Fatalf("groups = %d, want 301", res.Table.NumRows())
	}
}
