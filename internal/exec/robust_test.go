package exec

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// runAgg prepares a statement and runs one builtin sum(price) task,
// returning the RunSpecs error (the path under test).
func runAgg(t *testing.T, e *Engine, ctx context.Context, sql string) error {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTaskRegistry()
	reg.Add("sum", func(b Binder) (Task, error) {
		in, err := CompileExpr(mustParseExpr(t, "price"), b.Bind)
		if err != nil {
			return nil, err
		}
		return &BuiltinTask{Kind: BSum, Lbl: "sum", In: in}, nil
	})
	_, err = e.RunSpecs(ctx, dp, reg)
	return err
}

func mustParseExpr(t *testing.T, s string) expr.Node {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT " + s + " FROM x")
	if err != nil {
		t.Fatal(err)
	}
	return stmt.Select[0].Expr
}

func TestPreCanceledContext(t *testing.T) {
	cat := testCatalog(t, 1000)
	e := NewEngine(cat, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runAgg(t, e, ctx, "SELECT sum(price) FROM sales GROUP BY s_item")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCancelMidAggregation(t *testing.T) {
	defer faultinject.Reset()
	cat := testCatalog(t, 50_000)
	e := NewEngine(cat, 4)
	// Each worker sleeps at its first block, so the deadline expires while
	// the aggregation is genuinely mid-flight.
	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 60 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := runAgg(t, e, ctx, "SELECT sum(price) FROM sales GROUP BY s_item")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestWorkerPanicIsolated(t *testing.T) {
	defer faultinject.Reset()
	cat := testCatalog(t, 10_000)
	e := NewEngine(cat, 4)
	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{Kind: faultinject.KindPanic})
	err := runAgg(t, e, context.Background(), "SELECT sum(price) FROM sales GROUP BY s_item")
	if err == nil {
		t.Fatal("worker panic should surface as an error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should mention the recovered panic: %v", err)
	}
	// The process survived; the engine still works after the fault clears.
	faultinject.Reset()
	if err := runAgg(t, e, context.Background(), "SELECT sum(price) FROM sales GROUP BY s_item"); err != nil {
		t.Fatalf("engine broken after recovered panic: %v", err)
	}
}

func TestScanErrorFault(t *testing.T) {
	defer faultinject.Reset()
	cat := testCatalog(t, 1000)
	e := NewEngine(cat, 2)
	faultinject.Arm(faultinject.PointStorageScan, faultinject.Spec{Kind: faultinject.KindError})
	err := runAgg(t, e, context.Background(),
		"SELECT sum(price) FROM sales WHERE price > 10 GROUP BY s_item")
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected scan error, got %v", err)
	}
}

func TestJoinErrorFault(t *testing.T) {
	defer faultinject.Reset()
	cat := testCatalog(t, 1000)
	e := NewEngine(cat, 2)
	faultinject.Arm(faultinject.PointExecJoin, faultinject.Spec{Kind: faultinject.KindError})
	err := runAgg(t, e, context.Background(),
		"SELECT sum(price) FROM sales, stores WHERE s_store = st_id GROUP BY s_item")
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected join error, got %v", err)
	}
}

func TestJoinWorkerPanicIsolated(t *testing.T) {
	defer faultinject.Reset()
	cat := testCatalog(t, 10_000)
	e := NewEngine(cat, 4)
	// Panic after the join's own Hit (which fires first) is disarmed:
	// arm only the worker point, then run a join so both probe goroutines
	// and aggregation workers are in play.
	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{Kind: faultinject.KindPanic, Times: 1})
	err := runAgg(t, e, context.Background(),
		"SELECT sum(price) FROM sales, stores WHERE s_store = st_id GROUP BY s_item")
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want recovered panic error, got %v", err)
	}
}

// buildNumericResult fabricates a one-group result whose single finisher
// yields the given value, then materializes it under the given policy.
func buildNumericResult(t *testing.T, val float64, pol NumericPolicy) (*Result, error) {
	t.Helper()
	kc := storage.NewColumn("g", storage.KindInt)
	kc.AppendInt(1)
	gr := &GroupResult{
		NumGroups:  1,
		Keys:       []GroupKey{{1, 0}},
		KeyNames:   []string{"g"},
		KeyColumns: []*storage.Column{kc},
		Values:     [][]float64{{val}},
	}
	stmt, err := sqlparse.Parse("SELECT g, __agg0 FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	spec := OutputSpec{
		Items:     stmt.Select,
		Finishers: []Finisher{func(vals [][]float64, g int) float64 { return vals[0][g] }},
		Labels:    []string{"sum(x)"},
		Numeric:   pol,
	}
	return BuildOutput(context.Background(), stmt, nil, gr, spec)
}

func TestNumericPolicyStrict(t *testing.T) {
	_, err := buildNumericResult(t, math.NaN(), NumericStrict)
	if err == nil {
		t.Fatal("strict policy should fail on NaN")
	}
	if !strings.Contains(err.Error(), "sum(x)") {
		t.Errorf("error should name the aggregate: %v", err)
	}
	if _, err := buildNumericResult(t, math.Inf(1), NumericStrict); err == nil {
		t.Fatal("strict policy should fail on +Inf")
	}
	if _, err := buildNumericResult(t, 42, NumericStrict); err != nil {
		t.Fatalf("strict policy rejected a finite value: %v", err)
	}
}

func TestNumericPolicyPermissive(t *testing.T) {
	res, err := buildNumericResult(t, math.NaN(), NumericPermissive)
	if err != nil {
		t.Fatalf("permissive policy should tolerate NaN: %v", err)
	}
	if res.NumericFaults != 1 {
		t.Errorf("NumericFaults = %d, want 1", res.NumericFaults)
	}
	if !math.IsNaN(res.Table.Cols[1].F[0]) {
		t.Error("NaN should pass through to the output")
	}
}
