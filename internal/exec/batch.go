package exec

import (
	"fmt"
	"math"

	"sudaf/internal/expr"
	"sudaf/internal/storage"
)

// Batch execution parameters. Scans feed the aggregation kernels in
// fixed-size chunks of BatchSize output rows; workers claim work in
// morsels of MorselRows rows from a shared cursor. BatchSize is sized so
// a batch of group ids plus a couple of float64 vectors stay L1/L2
// resident; MorselRows is coarse enough that cursor contention is noise
// yet fine enough that a straggler worker never holds more than one
// morsel of residual work.
const (
	BatchSize  = 1024
	MorselRows = 64 * BatchSize
)

// Binder resolves column names for task construction. Bind returns a
// scalar accessor (the tuple-at-a-time contract); BindColumn exposes the
// underlying physical column and row-indirection vector so vectorized
// kernels can gather whole batches without per-row interface dispatch.
// BindColumn may fail where Bind succeeds (e.g. synthetic bindings in
// tests); kernels must fall back to the scalar path in that case.
type Binder interface {
	Bind(name string) (Accessor, error)
	BindColumn(name string) (*storage.Column, []int32, error)
}

// funcBinder adapts a plain bind function to the Binder interface for
// callers (tests, simple harnesses) that have no physical columns.
type funcBinder func(name string) (Accessor, error)

func (f funcBinder) Bind(name string) (Accessor, error) { return f(name) }

func (f funcBinder) BindColumn(string) (*storage.Column, []int32, error) {
	return nil, nil, fmt.Errorf("no physical column binding")
}

// BindFunc wraps a name→Accessor function as a Binder with no physical
// column access (BindColumn always fails, forcing scalar execution).
func BindFunc(fn func(name string) (Accessor, error)) Binder { return funcBinder(fn) }

// VecFiller fills out[0:hi-lo] with the value of a compiled expression
// for output rows lo..hi of the row set. hi-lo must not exceed BatchSize.
type VecFiller func(lo, hi int, out []float64)

// VecFillerFactory instantiates a VecFiller with private scratch buffers.
// Tasks are shared across workers, so each worker materializes its own
// filler; the closures it returns are not safe for concurrent use.
type VecFillerFactory func() VecFiller

// CompileVecFiller compiles a scalar expression over columns into a
// vectorized filler factory. It computes exactly the same values as
// CompileExpr — the same '^' strength reductions, the same scalar
// function semantics — restructured as batch loops over gathered column
// chunks. Returns an error for expressions or bindings the vector path
// cannot serve (the caller then stays on the scalar path).
func CompileVecFiller(n expr.Node, b Binder) (VecFillerFactory, error) {
	// Trial-compile once so binding and shape errors surface now rather
	// than per worker.
	if _, err := compileVecOp(n, b); err != nil {
		return nil, err
	}
	return func() VecFiller {
		op, err := compileVecOp(n, b)
		if err != nil {
			// Cannot happen: the trial compile above succeeded and
			// compilation is deterministic.
			panic(fmt.Sprintf("vec compile diverged: %v", err))
		}
		return VecFiller(op)
	}, nil
}

// vecOp writes the expression's value for rows lo..hi into dst[0:hi-lo].
type vecOp func(lo, hi int, dst []float64)

func compileVecOp(n expr.Node, b Binder) (vecOp, error) {
	switch t := n.(type) {
	case *expr.Num:
		v := t.Val
		return func(lo, hi int, dst []float64) {
			for i := range dst[:hi-lo] {
				dst[i] = v
			}
		}, nil
	case *expr.Var:
		col, rows, err := b.BindColumn(t.Name)
		if err != nil {
			return nil, err
		}
		return func(lo, hi int, dst []float64) {
			col.GatherFloats(rows, lo, hi, dst)
		}, nil
	case *expr.Neg:
		x, err := compileVecOp(t.X, b)
		if err != nil {
			return nil, err
		}
		return func(lo, hi int, dst []float64) {
			x(lo, hi, dst)
			for i := range dst[:hi-lo] {
				dst[i] = -dst[i]
			}
		}, nil
	case *expr.Bin:
		l, err := compileVecOp(t.L, b)
		if err != nil {
			return nil, err
		}
		if t.Op == '^' {
			// Mirror CompileExpr's strength reduction so the batch and
			// tuple paths are bit-identical on these hot exponents.
			if c, ok := t.R.(*expr.Num); ok {
				switch c.Val {
				case 2:
					return func(lo, hi int, dst []float64) {
						l(lo, hi, dst)
						for i := range dst[:hi-lo] {
							v := dst[i]
							dst[i] = v * v
						}
					}, nil
				case 3:
					return func(lo, hi int, dst []float64) {
						l(lo, hi, dst)
						for i := range dst[:hi-lo] {
							v := dst[i]
							dst[i] = v * v * v
						}
					}, nil
				case -1:
					return func(lo, hi int, dst []float64) {
						l(lo, hi, dst)
						for i := range dst[:hi-lo] {
							dst[i] = 1 / dst[i]
						}
					}, nil
				case 0.5:
					return func(lo, hi int, dst []float64) {
						l(lo, hi, dst)
						for i := range dst[:hi-lo] {
							dst[i] = math.Sqrt(dst[i])
						}
					}, nil
				}
			}
		}
		r, err := compileVecOp(t.R, b)
		if err != nil {
			return nil, err
		}
		tmp := make([]float64, BatchSize)
		switch t.Op {
		case '+':
			return func(lo, hi int, dst []float64) {
				l(lo, hi, dst)
				r(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] += tmp[i]
				}
			}, nil
		case '-':
			return func(lo, hi int, dst []float64) {
				l(lo, hi, dst)
				r(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] -= tmp[i]
				}
			}, nil
		case '*':
			return func(lo, hi int, dst []float64) {
				l(lo, hi, dst)
				r(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] *= tmp[i]
				}
			}, nil
		case '/':
			return func(lo, hi int, dst []float64) {
				l(lo, hi, dst)
				r(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] /= tmp[i]
				}
			}, nil
		case '^':
			return func(lo, hi int, dst []float64) {
				l(lo, hi, dst)
				r(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] = math.Pow(dst[i], tmp[i])
				}
			}, nil
		}
		return nil, fmt.Errorf("unknown operator %q", t.Op)
	case *expr.Call:
		if expr.AggregateFuncs[t.Name] {
			return nil, fmt.Errorf("aggregate %s() in scalar context", t.Name)
		}
		args := make([]vecOp, len(t.Args))
		for k, a := range t.Args {
			c, err := compileVecOp(a, b)
			if err != nil {
				return nil, err
			}
			args[k] = c
		}
		switch t.Name {
		case "sqrt":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = math.Sqrt(dst[i])
				}
			}, nil
		case "cbrt":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = math.Cbrt(dst[i])
				}
			}, nil
		case "ln":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = math.Log(dst[i])
				}
			}, nil
		case "log":
			base, x := args[0], args[1]
			tmp := make([]float64, BatchSize)
			return func(lo, hi int, dst []float64) {
				base(lo, hi, dst)
				x(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] = math.Log(tmp[i]) / math.Log(dst[i])
				}
			}, nil
		case "exp":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = math.Exp(dst[i])
				}
			}, nil
		case "abs":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = math.Abs(dst[i])
				}
			}, nil
		case "sgn":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					if dst[i] > 0 {
						dst[i] = 1
					} else if dst[i] < 0 {
						dst[i] = -1
					} else {
						dst[i] = 0
					}
				}
			}, nil
		case "pow":
			a, p := args[0], args[1]
			tmp := make([]float64, BatchSize)
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				p(lo, hi, tmp)
				for i := range dst[:hi-lo] {
					dst[i] = math.Pow(dst[i], tmp[i])
				}
			}, nil
		case "inv":
			a := args[0]
			return func(lo, hi int, dst []float64) {
				a(lo, hi, dst)
				for i := range dst[:hi-lo] {
					dst[i] = 1 / dst[i]
				}
			}, nil
		}
		return nil, fmt.Errorf("unknown scalar function %q", t.Name)
	}
	return nil, fmt.Errorf("cannot compile %T", n)
}
