package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"sudaf/internal/catalog"
	"sudaf/internal/errs"
	"sudaf/internal/expr"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// TaskSpec builds a Task once the joined row set's column binder exists.
// The Binder gives both scalar accessors and physical column access, so
// specs can compile vectorized kernels where the shape allows.
type TaskSpec func(b Binder) (Task, error)

// TaskRegistry deduplicates tasks by key: two aggregate calls needing the
// same computation (e.g. the count() of avg and of stddev) run it once.
type TaskRegistry struct {
	keys  map[string]int
	specs []TaskSpec
	names []string
}

// NewTaskRegistry creates an empty registry.
func NewTaskRegistry() *TaskRegistry {
	return &TaskRegistry{keys: map[string]int{}}
}

// Add registers a task spec under a deduplication key and returns its
// task index.
func (r *TaskRegistry) Add(key string, spec TaskSpec) int {
	if i, ok := r.keys[key]; ok {
		return i
	}
	i := len(r.specs)
	r.keys[key] = i
	r.specs = append(r.specs, spec)
	r.names = append(r.names, key)
	return i
}

// Len returns the number of distinct tasks.
func (r *TaskRegistry) Len() int { return len(r.specs) }

// Keys returns the registered task keys in index order.
func (r *TaskRegistry) Keys() []string { return r.names }

// Spec returns the i-th task spec; the batch planner uses it to merge
// per-query registries into one fused-scan union registry.
func (r *TaskRegistry) Spec(i int) TaskSpec { return r.specs[i] }

// Has reports whether a key is already registered.
func (r *TaskRegistry) Has(key string) bool {
	_, ok := r.keys[key]
	return ok
}

// Index returns the task index registered under a key.
func (r *TaskRegistry) Index(key string) (int, bool) {
	i, ok := r.keys[key]
	return i, ok
}

// RunSpecs executes the data plan, builds the registered tasks against
// the joined row set, and aggregates. The context cancels the scan, join
// and accumulate loops cooperatively; a nil ctx means Background.
func (e *Engine) RunSpecs(ctx context.Context, dp *DataPlan, reg *TaskRegistry) (*GroupResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rs, err := dp.buildRowSet(ctx)
	if err != nil {
		return nil, err
	}
	tasks := make([]Task, len(reg.specs))
	for i, spec := range reg.specs {
		t, err := spec(rs)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	return e.aggregate(ctx, dp, rs, tasks)
}

// Finisher computes one aggregate call's value for group g from the task
// output matrix.
type Finisher func(vals [][]float64, g int) float64

// Result is a finished query result.
type Result struct {
	Table *storage.Table
	// Rows is the number of joined base rows read (0 when fully answered
	// from cache).
	Rows int
	// Groups is the number of groups before LIMIT.
	Groups int
	// NumericFaults counts NaN/±Inf aggregate outputs observed under the
	// permissive numeric policy (0 under strict — the query errors first).
	NumericFaults int
}

// placeholderPrefix names the synthetic variables replacing aggregate
// calls in select expressions.
const placeholderPrefix = "__agg"

// ExtractAggCalls rewrites a select expression, replacing each aggregate
// call (as identified by isAgg) with a placeholder variable, and returns
// the calls in placeholder order.
func ExtractAggCalls(n expr.Node, isAgg func(name string) bool, calls *[]*expr.Call) expr.Node {
	switch t := n.(type) {
	case *expr.Num, *expr.Var:
		return n
	case *expr.Neg:
		return &expr.Neg{X: ExtractAggCalls(t.X, isAgg, calls)}
	case *expr.Bin:
		return &expr.Bin{Op: t.Op,
			L: ExtractAggCalls(t.L, isAgg, calls),
			R: ExtractAggCalls(t.R, isAgg, calls)}
	case *expr.Call:
		if isAgg(t.Name) {
			*calls = append(*calls, t)
			return &expr.Var{Name: fmt.Sprintf("%s%d", placeholderPrefix, len(*calls)-1)}
		}
		args := make([]expr.Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = ExtractAggCalls(a, isAgg, calls)
		}
		return &expr.Call{Name: t.Name, Args: args}
	}
	return n
}

// NumericPolicy selects how numeric domain faults — NaN or ±Inf emerging
// from a terminating function T or a per-tuple translation F (sqrt of a
// negative partial, 0/0 on an empty group, log of a non-positive value)
// — are reported.
type NumericPolicy int

const (
	// NumericPermissive emits the IEEE result (NaN/±Inf, the SQL-NULL
	// analogue in this engine's float columns) and counts the fault in
	// Result.NumericFaults so it is never silent.
	NumericPermissive NumericPolicy = iota
	// NumericStrict fails the query with an error naming the aggregate
	// and group instead of emitting NaN/±Inf.
	NumericStrict
)

func (p NumericPolicy) String() string {
	if p == NumericStrict {
		return "strict"
	}
	return "permissive"
}

// OutputSpec is a compiled select list for an aggregate query: rewritten
// expressions plus the finishers backing each placeholder.
type OutputSpec struct {
	Items     []sqlparse.SelectItem // exprs with placeholders substituted
	Finishers []Finisher            // one per placeholder, in order
	// Labels names each finisher's aggregate call (for numeric-fault
	// diagnostics); may be shorter than Finishers.
	Labels []string
	// Numeric is the numeric fault policy applied to finisher outputs.
	Numeric NumericPolicy
}

func (out *OutputSpec) label(p int) string {
	if p < len(out.Labels) {
		return out.Labels[p]
	}
	return fmt.Sprintf("%s%d", placeholderPrefix, p)
}

// BuildOutput materializes the final result table: group-by key columns,
// select expressions evaluated per group over placeholder values, then
// ORDER BY and LIMIT. Finisher loops poll ctx (terminating functions such
// as the moment-sketch solver can dominate runtime), and NaN/±Inf outputs
// are handled per the spec's NumericPolicy.
func BuildOutput(ctx context.Context, stmt *sqlparse.Stmt, dp *DataPlan, gr *GroupResult, out OutputSpec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	totalGroups := gr.NumGroups
	numericFaults := 0
	// When ORDER BY touches only group-key columns and a LIMIT is set,
	// select the surviving groups *before* evaluating finishers — this is
	// what lets expensive terminating functions (e.g. the moment-sketch
	// quantile solver) run only for the 20 output groups of query model 2.
	if reduced, ok := limitByKeys(stmt, gr); ok {
		gr = reduced
	}
	// Pre-compute placeholder value columns and their names once.
	phVals := make([][]float64, len(out.Finishers))
	phNames := make([]string, len(out.Finishers))
	for p, fin := range out.Finishers {
		col := make([]float64, gr.NumGroups)
		for g := 0; g < gr.NumGroups; g++ {
			if g%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			v := fin(gr.Values, g)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if out.Numeric == NumericStrict {
					return nil, fmt.Errorf("aggregate %s: %w (%v) in group %d (strict numeric policy)",
						out.label(p), errs.ErrNumericFault, v, g)
				}
				numericFaults++
			}
			col[g] = v
		}
		phVals[p] = col
		phNames[p] = fmt.Sprintf("%s%d", placeholderPrefix, p)
	}
	// Group-key columns by name for direct reference.
	keyCols := map[string]*storage.Column{}
	keyIdx := map[string]int{}
	for k, name := range gr.KeyNames {
		keyCols[name] = gr.KeyColumns[k]
		keyIdx[name] = k
	}

	res := storage.NewTable("result")
	for pos, item := range out.Items {
		name := item.OutputName(pos)
		// Direct group-column reference (required for string columns).
		if v, ok := item.Expr.(*expr.Var); ok {
			if kc, ok := keyCols[v.Name]; ok {
				if err := res.AddColumn(kc.Renamed(name)); err != nil {
					return nil, err
				}
				continue
			}
		}
		// Fast path: the item is a bare placeholder (one aggregate call).
		if v, ok := item.Expr.(*expr.Var); ok {
			matched := false
			for p, pn := range phNames {
				if v.Name == pn {
					col := storage.NewColumn(name, storage.KindFloat)
					col.F = append(col.F, phVals[p]...)
					if err := res.AddColumn(col); err != nil {
						return nil, err
					}
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		// Numeric expression over placeholders and numeric group keys:
		// reuse one environment map across groups.
		col := storage.NewColumn(name, storage.KindFloat)
		env := expr.MapEnv{}
		for g := 0; g < gr.NumGroups; g++ {
			for p, pn := range phNames {
				env[pn] = phVals[p][g]
			}
			for kname, k := range keyIdx {
				env[kname] = float64(gr.Keys[g][k])
			}
			v, err := expr.Eval(item.Expr, env)
			if err != nil {
				return nil, fmt.Errorf("select item %q: %w", name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if out.Numeric == NumericStrict {
					return nil, fmt.Errorf("select item %q: %w (%v) in group %d (strict numeric policy)",
						name, errs.ErrNumericFault, v, g)
				}
				numericFaults++
			}
			col.AppendFloat(v)
		}
		if err := res.AddColumn(col); err != nil {
			return nil, err
		}
	}
	if err := sortLimit(res, stmt); err != nil {
		return nil, err
	}
	return &Result{Table: res, Rows: gr.Rows, Groups: totalGroups, NumericFaults: numericFaults}, nil
}

// limitByKeys pre-selects groups when ORDER BY uses only group-key
// columns and LIMIT is present.
func limitByKeys(stmt *sqlparse.Stmt, gr *GroupResult) (*GroupResult, bool) {
	if len(stmt.OrderBy) == 0 || stmt.Limit < 0 || stmt.Limit >= gr.NumGroups {
		return nil, false
	}
	colIdx := map[string]int{}
	for k, n := range gr.KeyNames {
		colIdx[n] = k
	}
	type sortSpec struct {
		col  *storage.Column
		desc bool
	}
	var specs []sortSpec
	for _, o := range stmt.OrderBy {
		k, ok := colIdx[o.Col]
		if !ok {
			return nil, false
		}
		specs = append(specs, sortSpec{gr.KeyColumns[k], o.Desc})
	}
	perm := make([]int, gr.NumGroups)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		for _, sc := range specs {
			var cmp int
			if sc.col.Kind == storage.KindString {
				cmp = strings.Compare(sc.col.StringAt(perm[a]), sc.col.StringAt(perm[b]))
			} else {
				va, vb := sc.col.AsFloat(perm[a]), sc.col.AsFloat(perm[b])
				if va < vb {
					cmp = -1
				} else if va > vb {
					cmp = 1
				}
			}
			if sc.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	sel := perm[:stmt.Limit]
	out := &GroupResult{
		NumGroups: len(sel),
		Keys:      make([]GroupKey, len(sel)),
		KeyNames:  gr.KeyNames,
		Rows:      gr.Rows,
	}
	for i, g := range sel {
		out.Keys[i] = gr.Keys[g]
	}
	out.KeyColumns = make([]*storage.Column, len(gr.KeyColumns))
	for k, kc := range gr.KeyColumns {
		nc := storage.NewColumn(kc.Name, kc.Kind)
		for _, g := range sel {
			switch kc.Kind {
			case storage.KindFloat:
				nc.AppendFloat(kc.F[g])
			case storage.KindInt:
				nc.AppendInt(kc.I[g])
			default:
				nc.AppendString(kc.StringAt(g))
			}
		}
		out.KeyColumns[k] = nc
	}
	out.Values = make([][]float64, len(gr.Values))
	for t, vals := range gr.Values {
		nv := make([]float64, len(sel))
		for i, g := range sel {
			nv[i] = vals[g]
		}
		out.Values[t] = nv
	}
	return out, true
}

// sortLimit applies ORDER BY and LIMIT to a result table in place.
func sortLimit(t *storage.Table, stmt *sqlparse.Stmt) error {
	n := t.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if len(stmt.OrderBy) > 0 {
		type sortCol struct {
			col  *storage.Column
			desc bool
		}
		var scs []sortCol
		for _, o := range stmt.OrderBy {
			c := t.Col(o.Col)
			if c == nil {
				return fmt.Errorf("ORDER BY column %q not in output", o.Col)
			}
			scs = append(scs, sortCol{c, o.Desc})
		}
		sort.SliceStable(perm, func(a, b int) bool {
			for _, sc := range scs {
				var cmp int
				switch sc.col.Kind {
				case storage.KindString:
					cmp = strings.Compare(sc.col.StringAt(perm[a]), sc.col.StringAt(perm[b]))
				default:
					va, vb := sc.col.AsFloat(perm[a]), sc.col.AsFloat(perm[b])
					if va < vb {
						cmp = -1
					} else if va > vb {
						cmp = 1
					}
				}
				if sc.desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	limit := n
	if stmt.Limit >= 0 && stmt.Limit < n {
		limit = stmt.Limit
	}
	if limit == n && len(stmt.OrderBy) == 0 {
		return nil
	}
	for ci, c := range t.Cols {
		nc := storage.NewColumn(c.Name, c.Kind)
		for i := 0; i < limit; i++ {
			switch c.Kind {
			case storage.KindFloat:
				nc.AppendFloat(c.F[perm[i]])
			case storage.KindInt:
				nc.AppendInt(c.I[perm[i]])
			default:
				nc.AppendString(c.StringAt(perm[i]))
			}
		}
		t.Cols[ci] = nc
	}
	return nil
}

// RunSimple executes a non-aggregate query: scan/filter/join then
// row-wise projection (used for materializing plain derived tables).
// Projection loops poll ctx cooperatively.
func (e *Engine) RunSimple(ctx context.Context, stmt *sqlparse.Stmt) (*Result, error) {
	return e.RunSimpleIn(ctx, e.Cat, stmt)
}

// RunSimpleIn is RunSimple resolving tables against an explicit catalog
// (a per-query overlay, so concurrent queries materializing subqueries
// under the same alias never see each other's temporaries).
func (e *Engine) RunSimpleIn(ctx context.Context, cat *catalog.Catalog, stmt *sqlparse.Stmt) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dp, err := e.PrepareDataIn(cat, stmt)
	if err != nil {
		return nil, err
	}
	rs, err := dp.buildRowSet(ctx)
	if err != nil {
		return nil, err
	}
	res := storage.NewTable("result")
	for pos, item := range stmt.Select {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := item.OutputName(pos)
		// Column passthrough keeps its type.
		if v, ok := item.Expr.(*expr.Var); ok {
			for _, bt := range dp.tables {
				if src := bt.Col(v.Name); src != nil {
					vec := rs.vecs[bt.Name]
					nc := storage.NewColumn(name, src.Kind)
					for i := 0; i < rs.n; i++ {
						switch src.Kind {
						case storage.KindFloat:
							nc.AppendFloat(src.F[vec[i]])
						case storage.KindInt:
							nc.AppendInt(src.I[vec[i]])
						default:
							nc.AppendString(src.StringAt(int(vec[i])))
						}
					}
					if err := res.AddColumn(nc); err != nil {
						return nil, err
					}
					break
				}
			}
			if res.Col(name) != nil {
				continue
			}
		}
		acc, err := CompileExpr(item.Expr, rs.Bind)
		if err != nil {
			return nil, err
		}
		nc := storage.NewColumn(name, storage.KindFloat)
		for i := 0; i < rs.n; i++ {
			nc.AppendFloat(acc(int32(i)))
		}
		if err := res.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	if err := sortLimit(res, stmt); err != nil {
		return nil, err
	}
	return &Result{Table: res, Rows: rs.n, Groups: rs.n}, nil
}
