package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sudaf/internal/faultinject"
	"sudaf/internal/storage"
)

// GroupKey is a composite group-by key (unused trailing slots are zero).
// Group-by columns are int64 or dictionary codes, never floats.
type GroupKey = [2]int64

// Partial is a task's partition-local accumulation state: one or more
// per-group arrays.
type Partial interface{}

// Task is an aggregate computation folded over the joined rows. The
// engine drives it through the IUME contract: NewPartial/Accumulate per
// partition, Merge across partitions, Finalize per group.
type Task interface {
	// Name identifies the task in results.
	Name() string
	// NewPartial allocates accumulation state for ngroups groups.
	NewPartial(ngroups int) Partial
	// Grow extends a partial to ngroups groups.
	Grow(p Partial, ngroups int) Partial
	// Accumulate folds rows [lo, hi) with group assignments gids
	// (gids[i-lo] is the group of row i).
	Accumulate(p Partial, lo, hi int, gids []int32)
	// Merge folds src group g_src into dst group remap[g_src].
	Merge(dst, src Partial, remap []int32)
	// Finalize extracts the per-group result values.
	Finalize(p Partial, ngroups int) []float64
}

// VecState is a worker-private scratch area for a vectorized task: batch
// buffers and compiled fillers that must not be shared between goroutines.
// It carries no accumulation state — all per-group state stays in the
// Partial, so results are independent of which worker ran which morsel.
type VecState interface{}

// VectorTask is the optional batch-kernel extension of Task. A task that
// implements it is driven one BatchSize chunk at a time through
// AccumulateVec; tasks that don't (or whose NewVecState returns nil — the
// shape or bindings didn't admit a kernel) fall back to the scalar
// Accumulate. AccumulateVec must compute exactly what Accumulate computes,
// in the same row order per group, so the two paths agree bit for bit.
type VectorTask interface {
	Task
	// NewVecState allocates one worker's scratch, or nil to decline
	// vectorized execution for this query.
	NewVecState() VecState
	// AccumulateVec folds rows [lo, hi) (hi-lo ≤ BatchSize) with group
	// assignments gids, using vs as scratch.
	AccumulateVec(vs VecState, p Partial, lo, hi int, gids []int32)
}

// RunFoldTask is the optional direct-over-encoding extension of
// VectorTask: a task that can fold the RLE runs of its input column as
// (value, count) pairs in O(runs) instead of O(rows). FoldRuns is
// all-or-nothing per morsel and must be *exact*: it either folds rows
// [lo, hi) into group 0 of p with a result bit-identical to what
// Accumulate would produce (returning true), or leaves p completely
// untouched and returns false so the caller runs the dense path. It is
// only invoked on identity row sets (row i of the morsel IS row i of
// the column) for keyless aggregates, where every row belongs to the
// single group 0.
type RunFoldTask interface {
	VectorTask
	FoldRuns(p Partial, lo, hi int) bool
}

// GroupResult is the output of aggregation: group keys plus one value
// column per task. KeyColumns are materialized storage columns aligned
// with Keys, so results can round-trip through the cache without
// referencing engine internals.
type GroupResult struct {
	NumGroups  int
	Keys       []GroupKey
	KeyNames   []string
	KeyColumns []*storage.Column
	Values     [][]float64 // Values[taskIdx][groupID]
	// Rows is the number of joined base rows aggregated (observability).
	Rows int
	// Kernels names the tasks that ran through compiled batch kernels
	// (per-query observability; empty when everything ran tuple-at-a-time).
	Kernels []string
}

// materializeKeys decodes the composite keys into storage columns.
func (gr *GroupResult) materializeKeys(groupBy []planCol) {
	gr.KeyNames = make([]string, len(groupBy))
	gr.KeyColumns = make([]*storage.Column, len(groupBy))
	for k, pc := range groupBy {
		gr.KeyNames[k] = pc.col.Name
		out := storage.NewColumn(pc.col.Name, pc.col.Kind)
		for g := 0; g < gr.NumGroups; g++ {
			v := gr.Keys[g][k]
			switch pc.col.Kind {
			case storage.KindInt:
				out.AppendInt(v)
			case storage.KindString:
				out.AppendString(pc.col.DictString(int32(v)))
			default:
				out.AppendFloat(float64(v))
			}
		}
		gr.KeyColumns[k] = out
	}
}

// aggregate folds all tasks over the joined rows with morsel-driven
// parallelism: workers claim MorselRows-row morsels from a shared atomic
// cursor, aggregate each morsel into morsel-local partials one BatchSize
// batch at a time (vectorized kernels when the task provides them), and
// the morsel partials are merged in morsel-index order — so the result,
// including group order and floating-point rounding, is identical for any
// worker count and any scheduling interleaving.
//
// Cancellation is polled once per batch, injected faults fire once per
// morsel (the batch-granularity analogue of PR 1's per-worker fault
// point), and a panicking task poisons only its morsel: the recover turns
// it into an error joined at the merge barrier, and the shared abort flag
// stops the other workers from claiming further morsels.
func (e *Engine) aggregate(ctx context.Context, dp *DataPlan, rs *RowSet, tasks []Task) (*GroupResult, error) {
	keyFns := make([]func(int32) int64, len(dp.groupBy))
	for i, g := range dp.groupBy {
		keyFns[i] = rs.bindInt(g)
	}

	// When both key columns fit in 32 bits the composite key packs into a
	// single int64, enabling the runtime's fast64 map path. An empty
	// column reports (+Inf, -Inf) stats — any non-finite bound disables
	// packing (converting ±Inf to int64 is undefined in Go).
	packable := len(dp.groupBy) == 2
	for _, g := range dp.groupBy {
		min, max := g.col.Stats()
		if math.IsInf(min, 0) || math.IsInf(max, 0) || min < 0 || max >= (1<<31) {
			packable = false
		}
	}

	type localAgg struct {
		keys     []GroupKey
		index    map[GroupKey]int32
		partials []Partial
		err      error
	}
	nMorsels := (rs.n + MorselRows - 1) / MorselRows
	locals := make([]*localAgg, nMorsels)

	workers := e.Workers
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers < 1 {
		workers = 1
	}

	// Which tasks run vectorized: resolved once (the knob is snapshotted
	// here, so a concurrent toggle never splits one query across paths),
	// with vec scratch allocated per worker (tasks are shared across
	// workers; VecStates must not be). A task whose NewVecState declines
	// is demoted to the scalar path up front, and accepted kernels are
	// recorded for per-query observability.
	useVec := !e.disableVec.Load()
	vecTasks := make([]VectorTask, len(tasks))
	var kernels []string
	if useVec {
		for t, task := range tasks {
			if vt, ok := task.(VectorTask); ok {
				if probe := vt.NewVecState(); probe != nil {
					vecTasks[t] = vt
					kernels = append(kernels, task.Name())
				}
			}
		}
	}

	// Direct-over-encoding run folds (storage engine v2): eligible only
	// for keyless aggregates over an identity row set, where morsel
	// windows are column row ranges and every row folds into group 0.
	// The knob snapshot mirrors useVec; per-morsel exactness checks
	// (RLE coverage, the 2^53 integral guards) live in FoldRuns itself.
	var foldTasks []RunFoldTask
	if useVec && !e.disableFold.Load() && rs.identity && len(dp.groupBy) == 0 {
		for t, task := range tasks {
			if ft, ok := task.(RunFoldTask); ok && vecTasks[t] != nil {
				if foldTasks == nil {
					foldTasks = make([]RunFoldTask, len(tasks))
				}
				foldTasks[t] = ft
			}
		}
	}

	// Dense group-id assignment: when the key columns span a small integer
	// domain (int columns via their cached min/max stats, string columns
	// via their dictionary size), group ids come from an array lookup
	// instead of a hash probe per row. Part of the batch machinery, so the
	// DisableVectorKernels knob turns it off with the kernels.
	lookupLen := 0
	var denseBase0, denseBase1, denseWidth1 int64
	var denseInts []int64
	var denseCodes []int32
	var denseRows []int32
	if useVec {
		switch {
		case len(dp.groupBy) == 1:
			if d := keyDomainOf(dp.groupBy[0].col); d.dense {
				lookupLen, denseBase0 = int(d.width), d.base
				g := dp.groupBy[0]
				denseInts, denseCodes = g.col.I, g.col.Codes
				denseRows = rs.vecs[g.table.Name]
			}
		case packable:
			d0, d1 := keyDomainOf(dp.groupBy[0].col), keyDomainOf(dp.groupBy[1].col)
			if d0.dense && d1.dense && d0.width*d1.width <= maxDenseKeyWidth {
				lookupLen = int(d0.width * d1.width)
				denseBase0, denseBase1, denseWidth1 = d0.base, d1.base, d1.width
			}
		}
	}

	var cursor atomic.Int64
	var abort atomic.Bool
	workerBody := func() {
		// Worker-private batch scratch: group ids for one batch, plus
		// each vectorized task's kernel buffers.
		gids := make([]int32, BatchSize)
		vecStates := make([]VecState, len(tasks))
		for t, vt := range vecTasks {
			if vt != nil {
				vecStates[t] = vt.NewVecState()
			}
		}
		var lookup []int32
		if lookupLen > 0 {
			lookup = make([]int32, lookupLen)
		}
		dense := denseKeys{lookup: lookup, base0: denseBase0, base1: denseBase1, width1: denseWidth1,
			ints: denseInts, codes: denseCodes, rows: denseRows}
		var foldMask []bool
		if foldTasks != nil {
			foldMask = make([]bool, len(tasks))
		}
		for !abort.Load() {
			m := int(cursor.Add(1)) - 1
			if m >= nMorsels {
				return
			}
			la := &localAgg{index: map[GroupKey]int32{}, partials: make([]Partial, len(tasks))}
			locals[m] = la
			la.err = e.runMorsel(ctx, rs, tasks, vecTasks, vecStates, foldTasks, foldMask, keyFns, packable, dense, m, gids, la.index, &la.keys, la.partials)
			if la.err != nil {
				abort.Store(true)
				return
			}
		}
	}

	// Helper workers draw tokens from the engine-wide pool, which is shared
	// by every concurrent query so N simultaneous aggregations never run
	// more than Engine.Workers goroutines in total. The acquire is
	// non-blocking: if the pool is drained by other queries, this query
	// simply runs on fewer workers. The calling goroutine always
	// participates without a token, so every query makes progress even when
	// the pool is empty (and a single-threaded query needs no token at all).
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-e.sem }()
				defer wg.Done()
				workerBody()
			}()
		default:
			w = workers - 1 // pool drained; stop trying
		}
	}
	workerBody()
	wg.Wait()

	// Fault barrier: join worker errors (cancellation, injected faults,
	// recovered panics) before merging.
	var werrs []error
	for _, la := range locals {
		if la != nil && la.err != nil {
			werrs = append(werrs, la.err)
		}
	}
	if len(werrs) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err // prefer the canonical context error
		}
		return nil, errors.Join(werrs...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge morsel partials in morsel-index order: group order equals
	// first appearance in global row order, exactly as a serial scan would
	// produce, regardless of which worker ran which morsel.
	gr := &GroupResult{Rows: rs.n, Kernels: kernels}
	globalIndex := map[GroupKey]int32{}
	var globalKeys []GroupKey
	merged := make([]Partial, len(tasks))
	for _, la := range locals {
		if la == nil || len(la.keys) == 0 {
			continue
		}
		remap := make([]int32, len(la.keys))
		for lg, key := range la.keys {
			g, ok := globalIndex[key]
			if !ok {
				g = int32(len(globalKeys))
				globalIndex[key] = g
				globalKeys = append(globalKeys, key)
			}
			remap[lg] = g
		}
		for t, task := range tasks {
			if merged[t] == nil {
				merged[t] = task.NewPartial(len(globalKeys))
			} else {
				merged[t] = task.Grow(merged[t], len(globalKeys))
			}
			task.Merge(merged[t], la.partials[t], remap)
		}
	}
	// A grand aggregate over zero rows still yields one group (SQL
	// semantics for aggregates without GROUP BY).
	if len(globalKeys) == 0 && len(dp.groupBy) == 0 {
		globalKeys = append(globalKeys, GroupKey{})
		for t, task := range tasks {
			if merged[t] == nil {
				merged[t] = task.NewPartial(1)
			}
		}
	}
	gr.NumGroups = len(globalKeys)
	gr.Keys = globalKeys
	gr.Values = make([][]float64, len(tasks))
	for t, task := range tasks {
		if merged[t] == nil {
			merged[t] = task.NewPartial(gr.NumGroups)
		}
		gr.Values[t] = task.Finalize(merged[t], gr.NumGroups)
	}
	gr.materializeKeys(dp.groupBy)
	return gr, nil
}

// maxDenseKeyWidth bounds the per-worker dense group-lookup table (one
// int32 per possible key): 64K entries = 256 KiB, comfortably cache- and
// allocation-cheap next to a 64K-row morsel.
const maxDenseKeyWidth = 1 << 16

// keyDomain describes a group-key column whose values provably fall in a
// small integer range [base, base+width), enabling array-indexed group-id
// assignment instead of a hash probe per row.
type keyDomain struct {
	base  int64
	width int64
	dense bool
}

// keyDomainOf classifies a group-key column: int columns use their cached
// min/max stats, dictionary-coded string columns their code range. Float
// keys (truncated to int64 by bindInt) stay on the hash path.
//
// Column.Stats is append-aware (recomputed when the column length
// changes), so the domain always covers every value a scan of this
// column version can produce — a stale, narrower domain would make the
// dense lookup table index out of range. The non-finite guard is
// defense in depth for the empty-column (+Inf, -Inf) sentinel: int64
// conversion of a non-finite float is undefined behavior in Go.
func keyDomainOf(col *storage.Column) keyDomain {
	switch col.Kind {
	case storage.KindInt:
		if len(col.I) == 0 {
			return keyDomain{}
		}
		min, max := col.Stats()
		if math.IsInf(min, 0) || math.IsInf(max, 0) || math.IsNaN(min) || math.IsNaN(max) {
			return keyDomain{}
		}
		// Beyond 2^53 the float stats are rounded, so int64(min) could
		// disagree with the true minimum and the width arithmetic below
		// could wrap — either would send lookup[k-base] out of range.
		// Bound the span in float space first (exact within ±2^53).
		if min < -float64(1<<53) || max > float64(1<<53) ||
			max-min+1 > float64(maxDenseKeyWidth) {
			return keyDomain{}
		}
		w := int64(max) - int64(min) + 1
		if w > 0 && w <= maxDenseKeyWidth {
			return keyDomain{base: int64(min), width: w, dense: true}
		}
	case storage.KindString:
		if n := int64(col.DictSize()); n > 0 && n <= maxDenseKeyWidth {
			return keyDomain{base: 0, width: n, dense: true}
		}
	}
	return keyDomain{}
}

// denseKeys is a worker's dense group-assignment scratch: a lookup table
// of morsel-local group ids (reset per morsel), plus the key-space
// geometry. A nil lookup means hash assignment. For the single-key case
// ints/codes+rows carry the key column's backing storage so the assign
// loop reads it directly instead of calling an accessor closure per row.
type denseKeys struct {
	lookup       []int32
	base0, base1 int64
	width1       int64
	ints         []int64
	codes        []int32
	rows         []int32
}

// runMorsel aggregates rows [m*MorselRows, min((m+1)*MorselRows, n)) into
// morsel-local partials, one batch at a time. gids, vecStates and dense
// are the calling worker's scratch; index/keys/partials belong to the
// morsel. Panics from task code are recovered into the returned error.
func (e *Engine) runMorsel(ctx context.Context, rs *RowSet, tasks []Task,
	vecTasks []VectorTask, vecStates []VecState,
	foldTasks []RunFoldTask, foldMask []bool,
	keyFns []func(int32) int64, packable bool, dense denseKeys, m int, gids []int32,
	index map[GroupKey]int32, keys *[]GroupKey, partials []Partial) (err error) {

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("aggregation worker panic (recovered): %v", r)
		}
	}()
	lo, hi := m*MorselRows, (m+1)*MorselRows
	if hi > rs.n {
		hi = rs.n
	}
	if err := faultinject.Hit(faultinject.PointExecWorker); err != nil {
		return err
	}
	if dense.lookup != nil {
		// Group ids are morsel-local: empty the lookup for this morsel.
		for i := range dense.lookup {
			dense.lookup[i] = -1
		}
	}
	// assignBlock maps rows [blo, bhi) to morsel-local group ids, keeping
	// the dedup index alive across the morsel's batches.
	var assignBlock func(blo, bhi int, gids []int32)
	switch {
	case len(keyFns) == 0:
		*keys = append(*keys, GroupKey{})
		index[GroupKey{}] = 0
		assignBlock = func(blo, bhi int, gids []int32) {
			for i := range gids {
				gids[i] = 0
			}
		}
	case len(keyFns) == 1 && dense.lookup != nil:
		lookup, base := dense.lookup, dense.base0
		// newGroup is the cold path: one call per distinct group per morsel.
		newGroup := func(k int64) int32 {
			gid := int32(len(*keys))
			lookup[k-base] = gid
			*keys = append(*keys, GroupKey{k, 0})
			index[GroupKey{k, 0}] = gid
			return gid
		}
		switch {
		case dense.ints != nil:
			v, rows := dense.ints, dense.rows
			assignBlock = func(blo, bhi int, gids []int32) {
				for i := blo; i < bhi; i++ {
					k := v[rows[i]]
					gid := lookup[k-base]
					if gid < 0 {
						gid = newGroup(k)
					}
					gids[i-blo] = gid
				}
			}
		case dense.codes != nil:
			c, rows := dense.codes, dense.rows
			assignBlock = func(blo, bhi int, gids []int32) {
				for i := blo; i < bhi; i++ {
					k := int64(c[rows[i]])
					gid := lookup[k-base]
					if gid < 0 {
						gid = newGroup(k)
					}
					gids[i-blo] = gid
				}
			}
		default:
			fn := keyFns[0]
			assignBlock = func(blo, bhi int, gids []int32) {
				for i := blo; i < bhi; i++ {
					k := fn(int32(i))
					gid := lookup[k-base]
					if gid < 0 {
						gid = newGroup(k)
					}
					gids[i-blo] = gid
				}
			}
		}
	case len(keyFns) == 1:
		fn := keyFns[0]
		idx := make(map[int64]int32, 256)
		assignBlock = func(blo, bhi int, gids []int32) {
			for i := blo; i < bhi; i++ {
				k := fn(int32(i))
				gid, ok := idx[k]
				if !ok {
					gid = int32(len(*keys))
					idx[k] = gid
					*keys = append(*keys, GroupKey{k, 0})
					index[GroupKey{k, 0}] = gid
				}
				gids[i-blo] = gid
			}
		}
	case packable && dense.lookup != nil:
		f0, f1 := keyFns[0], keyFns[1]
		lookup := dense.lookup
		b0, b1, w1 := dense.base0, dense.base1, dense.width1
		assignBlock = func(blo, bhi int, gids []int32) {
			for i := blo; i < bhi; i++ {
				a, b := f0(int32(i)), f1(int32(i))
				gid := lookup[(a-b0)*w1+(b-b1)]
				if gid < 0 {
					gid = int32(len(*keys))
					lookup[(a-b0)*w1+(b-b1)] = gid
					*keys = append(*keys, GroupKey{a, b})
					index[GroupKey{a, b}] = gid
				}
				gids[i-blo] = gid
			}
		}
	case packable:
		f0, f1 := keyFns[0], keyFns[1]
		idx := make(map[int64]int32, 256)
		assignBlock = func(blo, bhi int, gids []int32) {
			for i := blo; i < bhi; i++ {
				a, b := f0(int32(i)), f1(int32(i))
				k := a<<32 | b
				gid, ok := idx[k]
				if !ok {
					gid = int32(len(*keys))
					idx[k] = gid
					*keys = append(*keys, GroupKey{a, b})
					index[GroupKey{a, b}] = gid
				}
				gids[i-blo] = gid
			}
		}
	default:
		assignBlock = func(blo, bhi int, gids []int32) {
			var key GroupKey
			for i := blo; i < bhi; i++ {
				for k, fn := range keyFns {
					key[k] = fn(int32(i))
				}
				gid, ok := index[key]
				if !ok {
					gid = int32(len(*keys))
					index[key] = gid
					*keys = append(*keys, key)
				}
				gids[i-blo] = gid
			}
		}
	}
	// Run-fold fast path: each fold-capable task gets one shot at the
	// whole morsel. A task that folds (exactly, into group 0 — the
	// caller only enables folds for keyless identity scans) skips the
	// batch loop below; a declined fold costs nothing and falls through
	// to the dense path. When every task folds, the batch loop vanishes
	// and the morsel is aggregated in O(runs).
	remaining := len(tasks)
	if foldTasks != nil {
		for t := range foldMask {
			foldMask[t] = false
		}
		for t, ft := range foldTasks {
			if ft == nil {
				continue
			}
			if partials[t] == nil {
				partials[t] = tasks[t].NewPartial(len(*keys))
			}
			if ft.FoldRuns(partials[t], lo, hi) {
				foldMask[t] = true
				remaining--
			}
		}
	}
	if remaining == 0 {
		return nil
	}
	for blo := lo; blo < hi; blo += BatchSize {
		// Cooperative cancellation at batch granularity.
		if err := ctx.Err(); err != nil {
			return err
		}
		bhi := blo + BatchSize
		if bhi > hi {
			bhi = hi
		}
		bg := gids[:bhi-blo]
		assignBlock(blo, bhi, bg)
		ng := len(*keys)
		for t, task := range tasks {
			if foldTasks != nil && foldMask[t] {
				continue
			}
			if partials[t] == nil {
				partials[t] = task.NewPartial(ng)
			} else {
				partials[t] = task.Grow(partials[t], ng)
			}
			if vt := vecTasks[t]; vt != nil && vecStates[t] != nil {
				vt.AccumulateVec(vecStates[t], partials[t], blo, bhi, bg)
			} else {
				task.Accumulate(partials[t], blo, bhi, bg)
			}
		}
	}
	return nil
}

// ---- float-array partial helpers ----

type floatsPartial struct {
	arrs [][]float64
}

func newFloats(n int, fills ...float64) *floatsPartial {
	fp := &floatsPartial{arrs: make([][]float64, len(fills))}
	for i, fill := range fills {
		a := make([]float64, n)
		if fill != 0 {
			for j := range a {
				a[j] = fill
			}
		}
		fp.arrs[i] = a
	}
	return fp
}

func (fp *floatsPartial) grow(n int, fills ...float64) {
	for i := range fp.arrs {
		for len(fp.arrs[i]) < n {
			fp.arrs[i] = append(fp.arrs[i], fills[i])
		}
	}
}

// ---- built-in aggregate tasks (fast paths) ----

// BuiltinKind enumerates the engine's native aggregates.
type BuiltinKind int

const (
	BSum BuiltinKind = iota
	BCount
	BAvg
	BMin
	BMax
	BVar   // population variance
	BStd   // population standard deviation
	BCovar // population covariance (two inputs)
	BProd  // product (for SUDAF Π states)
)

// BuiltinTask computes one built-in aggregate over a compiled input.
type BuiltinTask struct {
	Kind BuiltinKind
	Lbl  string
	In   Accessor // nil for count
	In2  Accessor // second input for covariance
}

func (b *BuiltinTask) Name() string { return b.Lbl }

func (b *BuiltinTask) fills() []float64 {
	switch b.Kind {
	case BMin:
		return []float64{math.Inf(1)}
	case BMax:
		return []float64{math.Inf(-1)}
	case BProd:
		return []float64{1}
	case BAvg, BVar, BStd:
		return []float64{0, 0, 0} // n, Σx, Σx²
	case BCovar:
		return []float64{0, 0, 0, 0} // n, Σx, Σy, Σxy
	default:
		return []float64{0}
	}
}

func (b *BuiltinTask) NewPartial(n int) Partial {
	return newFloats(n, b.fills()...)
}

func (b *BuiltinTask) Grow(p Partial, n int) Partial {
	p.(*floatsPartial).grow(n, b.fills()...)
	return p
}

func (b *BuiltinTask) Accumulate(p Partial, lo, hi int, gids []int32) {
	fp := p.(*floatsPartial)
	switch b.Kind {
	case BCount:
		a := fp.arrs[0]
		for i := lo; i < hi; i++ {
			a[gids[i-lo]]++
		}
	case BSum:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			a[gids[i-lo]] += in(int32(i))
		}
	case BProd:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			a[gids[i-lo]] *= in(int32(i))
		}
	case BMin:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			// v != v catches NaN: like math.Min, a NaN input poisons the
			// group, so the result cannot depend on accumulation order.
			if v := in(int32(i)); v < a[g] || v != v {
				a[g] = v
			}
		}
	case BMax:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			if v := in(int32(i)); v > a[g] || v != v {
				a[g] = v
			}
		}
	case BAvg, BVar, BStd:
		n, sx, sx2 := fp.arrs[0], fp.arrs[1], fp.arrs[2]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			v := in(int32(i))
			n[g]++
			sx[g] += v
			sx2[g] += v * v
		}
	case BCovar:
		n, sx, sy, sxy := fp.arrs[0], fp.arrs[1], fp.arrs[2], fp.arrs[3]
		in, in2 := b.In, b.In2
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			x, y := in(int32(i)), in2(int32(i))
			n[g]++
			sx[g] += x
			sy[g] += y
			sxy[g] += x * y
		}
	}
}

func (b *BuiltinTask) Merge(dst, src Partial, remap []int32) {
	d, s := dst.(*floatsPartial), src.(*floatsPartial)
	switch b.Kind {
	case BMin:
		for g, v := range s.arrs[0] {
			if v < d.arrs[0][remap[g]] || v != v {
				d.arrs[0][remap[g]] = v
			}
		}
	case BMax:
		for g, v := range s.arrs[0] {
			if v > d.arrs[0][remap[g]] || v != v {
				d.arrs[0][remap[g]] = v
			}
		}
	case BProd:
		for g, v := range s.arrs[0] {
			d.arrs[0][remap[g]] *= v
		}
	default:
		for k := range s.arrs {
			da, sa := d.arrs[k], s.arrs[k]
			for g, v := range sa {
				da[remap[g]] += v
			}
		}
	}
}

func (b *BuiltinTask) Finalize(p Partial, ngroups int) []float64 {
	fp := p.(*floatsPartial)
	out := make([]float64, ngroups)
	switch b.Kind {
	case BAvg:
		for g := 0; g < ngroups; g++ {
			out[g] = fp.arrs[1][g] / fp.arrs[0][g]
		}
	case BVar, BStd:
		for g := 0; g < ngroups; g++ {
			n, sx, sx2 := fp.arrs[0][g], fp.arrs[1][g], fp.arrs[2][g]
			v := sx2/n - (sx/n)*(sx/n)
			if b.Kind == BStd {
				v = math.Sqrt(math.Max(v, 0))
			}
			out[g] = v
		}
	case BCovar:
		for g := 0; g < ngroups; g++ {
			n, sx, sy, sxy := fp.arrs[0][g], fp.arrs[1][g], fp.arrs[2][g], fp.arrs[3][g]
			out[g] = sxy/n - (sx/n)*(sy/n)
		}
	default:
		copy(out, fp.arrs[0][:ngroups])
	}
	return out
}

// LookupBuiltin maps SQL aggregate names to built-in kinds. avg/stddev/
// variance/covar_pop are native in both PostgreSQL and Spark SQL, which
// is why the baseline system computes them fast.
func LookupBuiltin(name string) (BuiltinKind, bool) {
	switch name {
	case "sum":
		return BSum, true
	case "count":
		return BCount, true
	case "avg", "mean":
		return BAvg, true
	case "min":
		return BMin, true
	case "max":
		return BMax, true
	case "var", "variance", "var_pop":
		return BVar, true
	case "std", "stddev", "stddev_pop":
		return BStd, true
	case "covar_pop", "covar":
		return BCovar, true
	}
	return 0, false
}
