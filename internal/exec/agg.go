package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"sudaf/internal/faultinject"
	"sudaf/internal/storage"
)

// GroupKey is a composite group-by key (unused trailing slots are zero).
// Group-by columns are int64 or dictionary codes, never floats.
type GroupKey = [2]int64

// Partial is a task's partition-local accumulation state: one or more
// per-group arrays.
type Partial interface{}

// Task is an aggregate computation folded over the joined rows. The
// engine drives it through the IUME contract: NewPartial/Accumulate per
// partition, Merge across partitions, Finalize per group.
type Task interface {
	// Name identifies the task in results.
	Name() string
	// NewPartial allocates accumulation state for ngroups groups.
	NewPartial(ngroups int) Partial
	// Grow extends a partial to ngroups groups.
	Grow(p Partial, ngroups int) Partial
	// Accumulate folds rows [lo, hi) with group assignments gids
	// (gids[i-lo] is the group of row i).
	Accumulate(p Partial, lo, hi int, gids []int32)
	// Merge folds src group g_src into dst group remap[g_src].
	Merge(dst, src Partial, remap []int32)
	// Finalize extracts the per-group result values.
	Finalize(p Partial, ngroups int) []float64
}

// GroupResult is the output of aggregation: group keys plus one value
// column per task. KeyColumns are materialized storage columns aligned
// with Keys, so results can round-trip through the cache without
// referencing engine internals.
type GroupResult struct {
	NumGroups  int
	Keys       []GroupKey
	KeyNames   []string
	KeyColumns []*storage.Column
	Values     [][]float64 // Values[taskIdx][groupID]
	// Rows is the number of joined base rows aggregated (observability).
	Rows int
}

// materializeKeys decodes the composite keys into storage columns.
func (gr *GroupResult) materializeKeys(groupBy []planCol) {
	gr.KeyNames = make([]string, len(groupBy))
	gr.KeyColumns = make([]*storage.Column, len(groupBy))
	for k, pc := range groupBy {
		gr.KeyNames[k] = pc.col.Name
		out := storage.NewColumn(pc.col.Name, pc.col.Kind)
		for g := 0; g < gr.NumGroups; g++ {
			v := gr.Keys[g][k]
			switch pc.col.Kind {
			case storage.KindInt:
				out.AppendInt(v)
			case storage.KindString:
				out.AppendString(pc.col.DictString(int32(v)))
			default:
				out.AppendFloat(float64(v))
			}
		}
		gr.KeyColumns[k] = out
	}
}

// aggregate folds all tasks over the joined rows, in parallel when the
// engine has multiple workers, merging per-partition partials (IUME).
//
// Each worker processes its partition in blocks of cancelCheckRows rows,
// polling ctx between blocks (cooperative cancellation) and recovering
// panics — a faulty task or accessor becomes an error joined at the
// merge barrier instead of killing the process.
func (e *Engine) aggregate(ctx context.Context, dp *DataPlan, rs *RowSet, tasks []Task) (*GroupResult, error) {
	keyFns := make([]func(int32) int64, len(dp.groupBy))
	for i, g := range dp.groupBy {
		keyFns[i] = rs.bindInt(g)
	}

	workers := e.Workers
	if workers > rs.n/2048+1 {
		workers = rs.n/2048 + 1
	}
	if workers < 1 {
		workers = 1
	}

	// When both key columns fit in 32 bits the composite key packs into a
	// single int64, enabling the runtime's fast64 map path.
	packable := len(dp.groupBy) == 2
	for _, g := range dp.groupBy {
		min, max := g.col.Stats()
		if min < 0 || max >= (1<<31) {
			packable = false
		}
	}

	type localAgg struct {
		keys     []GroupKey
		index    map[GroupKey]int32
		partials []Partial
		err      error
	}
	locals := make([]*localAgg, workers)
	chunk := (rs.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rs.n {
			hi = rs.n
		}
		if lo > hi {
			lo = hi
		}
		la := &localAgg{index: map[GroupKey]int32{}, partials: make([]Partial, len(tasks))}
		locals[w] = la
		wg.Add(1)
		go func(lo, hi int, la *localAgg) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					la.err = fmt.Errorf("aggregation worker panic (recovered): %v", r)
				}
			}()
			if hi == lo {
				return
			}
			if err := faultinject.Hit(faultinject.PointExecWorker); err != nil {
				la.err = err
				return
			}
			// assignBlock maps rows [blo, bhi) to partition-local group ids,
			// keeping the dedup index alive across blocks.
			var assignBlock func(blo, bhi int, gids []int32)
			switch {
			case len(keyFns) == 0:
				la.keys = append(la.keys, GroupKey{})
				la.index[GroupKey{}] = 0
				assignBlock = func(blo, bhi int, gids []int32) {
					for i := range gids {
						gids[i] = 0
					}
				}
			case len(keyFns) == 1:
				fn := keyFns[0]
				idx := make(map[int64]int32, 256)
				assignBlock = func(blo, bhi int, gids []int32) {
					for i := blo; i < bhi; i++ {
						k := fn(int32(i))
						gid, ok := idx[k]
						if !ok {
							gid = int32(len(la.keys))
							idx[k] = gid
							la.keys = append(la.keys, GroupKey{k, 0})
							la.index[GroupKey{k, 0}] = gid
						}
						gids[i-blo] = gid
					}
				}
			case packable:
				f0, f1 := keyFns[0], keyFns[1]
				idx := make(map[int64]int32, 256)
				assignBlock = func(blo, bhi int, gids []int32) {
					for i := blo; i < bhi; i++ {
						a, b := f0(int32(i)), f1(int32(i))
						k := a<<32 | b
						gid, ok := idx[k]
						if !ok {
							gid = int32(len(la.keys))
							idx[k] = gid
							la.keys = append(la.keys, GroupKey{a, b})
							la.index[GroupKey{a, b}] = gid
						}
						gids[i-blo] = gid
					}
				}
			default:
				assignBlock = func(blo, bhi int, gids []int32) {
					var key GroupKey
					for i := blo; i < bhi; i++ {
						for k, fn := range keyFns {
							key[k] = fn(int32(i))
						}
						gid, ok := la.index[key]
						if !ok {
							gid = int32(len(la.keys))
							la.index[key] = gid
							la.keys = append(la.keys, key)
						}
						gids[i-blo] = gid
					}
				}
			}
			block := cancelCheckRows
			if block > hi-lo {
				block = hi - lo
			}
			gids := make([]int32, block)
			for blo := lo; blo < hi; blo += cancelCheckRows {
				if err := ctx.Err(); err != nil {
					la.err = err
					return
				}
				bhi := blo + cancelCheckRows
				if bhi > hi {
					bhi = hi
				}
				bg := gids[:bhi-blo]
				assignBlock(blo, bhi, bg)
				ng := len(la.keys)
				for t, task := range tasks {
					if la.partials[t] == nil {
						la.partials[t] = task.NewPartial(ng)
					} else {
						la.partials[t] = task.Grow(la.partials[t], ng)
					}
					task.Accumulate(la.partials[t], blo, bhi, bg)
				}
			}
		}(lo, hi, la)
	}
	wg.Wait()

	// Fault barrier: join worker errors (cancellation, injected faults,
	// recovered panics) before merging.
	var werrs []error
	for _, la := range locals {
		if la != nil && la.err != nil {
			werrs = append(werrs, la.err)
		}
	}
	if len(werrs) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err // prefer the canonical context error
		}
		return nil, errors.Join(werrs...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge partitions in worker order (deterministic group order).
	gr := &GroupResult{Rows: rs.n}
	globalIndex := map[GroupKey]int32{}
	var globalKeys []GroupKey
	merged := make([]Partial, len(tasks))
	for _, la := range locals {
		if la == nil || len(la.keys) == 0 {
			continue
		}
		remap := make([]int32, len(la.keys))
		for lg, key := range la.keys {
			g, ok := globalIndex[key]
			if !ok {
				g = int32(len(globalKeys))
				globalIndex[key] = g
				globalKeys = append(globalKeys, key)
			}
			remap[lg] = g
		}
		for t, task := range tasks {
			if merged[t] == nil {
				merged[t] = task.NewPartial(len(globalKeys))
			} else {
				merged[t] = task.Grow(merged[t], len(globalKeys))
			}
			task.Merge(merged[t], la.partials[t], remap)
		}
	}
	// A grand aggregate over zero rows still yields one group (SQL
	// semantics for aggregates without GROUP BY).
	if len(globalKeys) == 0 && len(dp.groupBy) == 0 {
		globalKeys = append(globalKeys, GroupKey{})
		for t, task := range tasks {
			if merged[t] == nil {
				merged[t] = task.NewPartial(1)
			}
		}
	}
	gr.NumGroups = len(globalKeys)
	gr.Keys = globalKeys
	gr.Values = make([][]float64, len(tasks))
	for t, task := range tasks {
		if merged[t] == nil {
			merged[t] = task.NewPartial(gr.NumGroups)
		}
		gr.Values[t] = task.Finalize(merged[t], gr.NumGroups)
	}
	gr.materializeKeys(dp.groupBy)
	return gr, nil
}

// ---- float-array partial helpers ----

type floatsPartial struct {
	arrs [][]float64
}

func newFloats(n int, fills ...float64) *floatsPartial {
	fp := &floatsPartial{arrs: make([][]float64, len(fills))}
	for i, fill := range fills {
		a := make([]float64, n)
		if fill != 0 {
			for j := range a {
				a[j] = fill
			}
		}
		fp.arrs[i] = a
	}
	return fp
}

func (fp *floatsPartial) grow(n int, fills ...float64) {
	for i := range fp.arrs {
		for len(fp.arrs[i]) < n {
			fp.arrs[i] = append(fp.arrs[i], fills[i])
		}
	}
}

// ---- built-in aggregate tasks (fast paths) ----

// BuiltinKind enumerates the engine's native aggregates.
type BuiltinKind int

const (
	BSum BuiltinKind = iota
	BCount
	BAvg
	BMin
	BMax
	BVar   // population variance
	BStd   // population standard deviation
	BCovar // population covariance (two inputs)
	BProd  // product (for SUDAF Π states)
)

// BuiltinTask computes one built-in aggregate over a compiled input.
type BuiltinTask struct {
	Kind BuiltinKind
	Lbl  string
	In   Accessor // nil for count
	In2  Accessor // second input for covariance
}

func (b *BuiltinTask) Name() string { return b.Lbl }

func (b *BuiltinTask) fills() []float64 {
	switch b.Kind {
	case BMin:
		return []float64{math.Inf(1)}
	case BMax:
		return []float64{math.Inf(-1)}
	case BProd:
		return []float64{1}
	case BAvg, BVar, BStd:
		return []float64{0, 0, 0} // n, Σx, Σx²
	case BCovar:
		return []float64{0, 0, 0, 0} // n, Σx, Σy, Σxy
	default:
		return []float64{0}
	}
}

func (b *BuiltinTask) NewPartial(n int) Partial {
	return newFloats(n, b.fills()...)
}

func (b *BuiltinTask) Grow(p Partial, n int) Partial {
	p.(*floatsPartial).grow(n, b.fills()...)
	return p
}

func (b *BuiltinTask) Accumulate(p Partial, lo, hi int, gids []int32) {
	fp := p.(*floatsPartial)
	switch b.Kind {
	case BCount:
		a := fp.arrs[0]
		for i := lo; i < hi; i++ {
			a[gids[i-lo]]++
		}
	case BSum:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			a[gids[i-lo]] += in(int32(i))
		}
	case BProd:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			a[gids[i-lo]] *= in(int32(i))
		}
	case BMin:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			if v := in(int32(i)); v < a[g] {
				a[g] = v
			}
		}
	case BMax:
		a := fp.arrs[0]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			if v := in(int32(i)); v > a[g] {
				a[g] = v
			}
		}
	case BAvg, BVar, BStd:
		n, sx, sx2 := fp.arrs[0], fp.arrs[1], fp.arrs[2]
		in := b.In
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			v := in(int32(i))
			n[g]++
			sx[g] += v
			sx2[g] += v * v
		}
	case BCovar:
		n, sx, sy, sxy := fp.arrs[0], fp.arrs[1], fp.arrs[2], fp.arrs[3]
		in, in2 := b.In, b.In2
		for i := lo; i < hi; i++ {
			g := gids[i-lo]
			x, y := in(int32(i)), in2(int32(i))
			n[g]++
			sx[g] += x
			sy[g] += y
			sxy[g] += x * y
		}
	}
}

func (b *BuiltinTask) Merge(dst, src Partial, remap []int32) {
	d, s := dst.(*floatsPartial), src.(*floatsPartial)
	switch b.Kind {
	case BMin:
		for g, v := range s.arrs[0] {
			if v < d.arrs[0][remap[g]] {
				d.arrs[0][remap[g]] = v
			}
		}
	case BMax:
		for g, v := range s.arrs[0] {
			if v > d.arrs[0][remap[g]] {
				d.arrs[0][remap[g]] = v
			}
		}
	case BProd:
		for g, v := range s.arrs[0] {
			d.arrs[0][remap[g]] *= v
		}
	default:
		for k := range s.arrs {
			da, sa := d.arrs[k], s.arrs[k]
			for g, v := range sa {
				da[remap[g]] += v
			}
		}
	}
}

func (b *BuiltinTask) Finalize(p Partial, ngroups int) []float64 {
	fp := p.(*floatsPartial)
	out := make([]float64, ngroups)
	switch b.Kind {
	case BAvg:
		for g := 0; g < ngroups; g++ {
			out[g] = fp.arrs[1][g] / fp.arrs[0][g]
		}
	case BVar, BStd:
		for g := 0; g < ngroups; g++ {
			n, sx, sx2 := fp.arrs[0][g], fp.arrs[1][g], fp.arrs[2][g]
			v := sx2/n - (sx/n)*(sx/n)
			if b.Kind == BStd {
				v = math.Sqrt(math.Max(v, 0))
			}
			out[g] = v
		}
	case BCovar:
		for g := 0; g < ngroups; g++ {
			n, sx, sy, sxy := fp.arrs[0][g], fp.arrs[1][g], fp.arrs[2][g], fp.arrs[3][g]
			out[g] = sxy/n - (sx/n)*(sy/n)
		}
	default:
		copy(out, fp.arrs[0][:ngroups])
	}
	return out
}

// LookupBuiltin maps SQL aggregate names to built-in kinds. avg/stddev/
// variance/covar_pop are native in both PostgreSQL and Spark SQL, which
// is why the baseline system computes them fast.
func LookupBuiltin(name string) (BuiltinKind, bool) {
	switch name {
	case "sum":
		return BSum, true
	case "count":
		return BCount, true
	case "avg", "mean":
		return BAvg, true
	case "min":
		return BMin, true
	case "max":
		return BMax, true
	case "var", "variance", "var_pop":
		return BVar, true
	case "std", "stddev", "stddev_pop":
		return BStd, true
	case "covar_pop", "covar":
		return BCovar, true
	}
	return 0, false
}
