package exec

import (
	"context"
	"testing"

	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

func TestLimitByKeys(t *testing.T) {
	kc := storage.NewColumn("g", storage.KindInt)
	gr := &GroupResult{NumGroups: 5, KeyNames: []string{"g"}}
	for i := 0; i < 5; i++ {
		gr.Keys = append(gr.Keys, GroupKey{int64(4 - i), 0}) // reverse order
		kc.AppendInt(int64(4 - i))
	}
	gr.KeyColumns = []*storage.Column{kc}
	gr.Values = [][]float64{{40, 30, 20, 10, 0}}

	stmt, _ := sqlparse.Parse("SELECT g, sum(x) FROM t GROUP BY g ORDER BY g LIMIT 2")
	out, ok := limitByKeys(stmt, gr)
	if !ok {
		t.Fatal("limitByKeys should apply")
	}
	if out.NumGroups != 2 {
		t.Fatalf("groups = %d", out.NumGroups)
	}
	// Smallest keys first: g=0 (value 0), g=1 (value 10).
	if out.Keys[0][0] != 0 || out.Keys[1][0] != 1 {
		t.Fatalf("keys: %v", out.Keys)
	}
	if out.Values[0][0] != 0 || out.Values[0][1] != 10 {
		t.Fatalf("values: %v", out.Values[0])
	}

	// DESC order.
	stmtD, _ := sqlparse.Parse("SELECT g FROM t GROUP BY g ORDER BY g DESC LIMIT 1")
	outD, ok := limitByKeys(stmtD, gr)
	if !ok || outD.Keys[0][0] != 4 {
		t.Fatalf("desc: %v %v", outD, ok)
	}

	// ORDER BY a non-key column disables the fast path.
	stmt2, _ := sqlparse.Parse("SELECT g, sum(x) s FROM t GROUP BY g ORDER BY s LIMIT 2")
	if _, ok := limitByKeys(stmt2, gr); ok {
		t.Fatal("non-key ORDER BY must not pre-limit")
	}
	// No LIMIT: no fast path.
	stmt3, _ := sqlparse.Parse("SELECT g FROM t GROUP BY g ORDER BY g")
	if _, ok := limitByKeys(stmt3, gr); ok {
		t.Fatal("no LIMIT must not pre-limit")
	}
}

func TestPrepareDataErrors(t *testing.T) {
	cat := testCatalog(t, 10)
	e := NewEngine(cat, 1)
	bad := []string{
		"SELECT sum(price) FROM sales, stores GROUP BY price",                           // float group key, and disconnected join
		"SELECT sum(price) FROM missing",                                                // unknown table
		"SELECT sum(price) FROM sales WHERE nope = 1",                                   // unknown column
		"SELECT sum(price) FROM sales, stores WHERE price > st_id",                      // cross-table non-equi
		"SELECT sum(price) FROM sales WHERE st_state = 'TN'",                            // column from unjoined table
		"SELECT sum(price) FROM sales, stores WHERE s_store = st_id AND st_state > 'A'", // string range compare
	}
	for _, q := range bad {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			continue
		}
		if dp, err := e.PrepareData(stmt); err == nil {
			// Some failures surface at execution; force it.
			if _, err2 := e.RunSpecs(context.Background(), dp, NewTaskRegistry()); err2 == nil {
				t.Errorf("%q should fail", q)
			}
		}
	}
}

func TestDisconnectedJoinFails(t *testing.T) {
	cat := testCatalog(t, 10)
	e := NewEngine(cat, 1)
	stmt, _ := sqlparse.Parse("SELECT count(*) FROM sales, stores")
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTaskRegistry()
	reg.Add("count", func(b Binder) (Task, error) {
		return &BuiltinTask{Kind: BCount, Lbl: "count"}, nil
	})
	if _, err := e.RunSpecs(context.Background(), dp, reg); err == nil {
		t.Error("cartesian product (no join condition) should fail")
	}
}

func TestEmptySelection(t *testing.T) {
	cat := testCatalog(t, 100)
	e := NewEngine(cat, 2)
	res := runBuiltins(t, e, "SELECT count(*), sum(price) FROM sales WHERE price > 1e9")
	// Grand aggregate over zero rows: one group, count 0.
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	if res.Table.Cols[0].F[0] != 0 {
		t.Errorf("count = %v", res.Table.Cols[0].F[0])
	}
	// Grouped aggregate over zero rows: zero groups.
	res2 := runBuiltins(t, e, "SELECT s_item, count(*) FROM sales WHERE price > 1e9 GROUP BY s_item")
	if res2.Table.NumRows() != 0 {
		t.Fatalf("grouped rows = %d", res2.Table.NumRows())
	}
}

func TestStringGroupKey(t *testing.T) {
	cat := testCatalog(t, 3000)
	e := NewEngine(cat, 3)
	res := runBuiltins(t, e,
		`SELECT st_state, count(*) FROM sales, stores
		 WHERE s_store = st_id GROUP BY st_state ORDER BY st_state`)
	if res.Table.NumRows() != 3 { // TN, CA, NY
		t.Fatalf("states = %d", res.Table.NumRows())
	}
	if res.Table.Cols[0].Kind != storage.KindString {
		t.Fatal("string key column lost its type")
	}
	prev := ""
	total := 0.0
	for i := 0; i < res.Table.NumRows(); i++ {
		cur := res.Table.Cols[0].StringAt(i)
		if cur <= prev {
			t.Errorf("ORDER BY on string key violated: %q after %q", cur, prev)
		}
		prev = cur
		total += res.Table.Cols[1].F[i]
	}
	if total != 3000 {
		t.Errorf("counts sum to %v", total)
	}
}

func TestTaskRegistryDedup(t *testing.T) {
	reg := NewTaskRegistry()
	mk := func(bind Binder) (Task, error) {
		return &BuiltinTask{Kind: BCount, Lbl: "c"}, nil
	}
	i1 := reg.Add("k1", mk)
	i2 := reg.Add("k2", mk)
	i3 := reg.Add("k1", mk)
	if i1 != i3 || i1 == i2 || reg.Len() != 2 {
		t.Fatalf("dedup broken: %d %d %d, len %d", i1, i2, i3, reg.Len())
	}
	if reg.Keys()[0] != "k1" || reg.Keys()[1] != "k2" {
		t.Fatalf("keys: %v", reg.Keys())
	}
}
