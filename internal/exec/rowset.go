package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sudaf/internal/faultinject"
	"sudaf/internal/storage"
)

// RowSet is the materialized result of the scan/filter/join phase: one
// row-index vector per base table, all the same length. Row i of the
// joined relation is (vecs[t0][i], vecs[t1][i], …).
type RowSet struct {
	n      int
	tables []*storage.Table
	vecs   map[string][]int32
	// identity marks a single-table, unfiltered row set: vecs[t][i] == i
	// for every row, so morsel windows map 1:1 onto column row ranges.
	// This is the precondition for aggregating directly over encoded
	// segments (run-folds) instead of through the indirection vector.
	identity bool
}

// Len returns the joined row count.
func (rs *RowSet) Len() int { return rs.n }

// Bind returns an accessor factory resolving column names across the
// joined tables (column names are globally unique in our star schemas).
func (rs *RowSet) Bind(name string) (Accessor, error) {
	for _, t := range rs.tables {
		if c := t.Col(name); c != nil {
			return colAccessor(c, rs.vecs[t.Name]), nil
		}
	}
	return nil, fmt.Errorf("unknown column %q", name)
}

// BindColumn resolves a column name to its physical column and row
// indirection vector, the raw material of the vectorized batch kernels.
// Together with Bind this makes *RowSet implement Binder.
func (rs *RowSet) BindColumn(name string) (*storage.Column, []int32, error) {
	for _, t := range rs.tables {
		if c := t.Col(name); c != nil {
			return c, rs.vecs[t.Name], nil
		}
	}
	return nil, nil, fmt.Errorf("unknown column %q", name)
}

// bindInt resolves a group-key accessor.
func (rs *RowSet) bindInt(pc planCol) func(int32) int64 {
	return intAccessor(pc.col, rs.vecs[pc.table.Name])
}

// buildRowSet runs scans, filters and the left-deep hash join.
func (dp *DataPlan) buildRowSet(ctx context.Context) (*RowSet, error) {
	sels := map[string][]int32{}
	for _, t := range dp.tables {
		sel, err := selection(ctx, t, dp.filters[t.Name])
		if err != nil {
			return nil, err
		}
		sels[t.Name] = sel
	}
	if len(dp.tables) == 1 {
		t := dp.tables[0]
		return &RowSet{n: len(sels[t.Name]), tables: dp.tables,
			vecs: map[string][]int32{t.Name: sels[t.Name]},
			// selection() returns the identity vector [0..n) exactly when
			// there is no WHERE predicate on the table.
			identity: dp.filters[t.Name] == nil}, nil
	}

	// Start from the largest filtered table (the fact table) and fold the
	// remaining tables in via hash joins along the equi-join graph.
	start := dp.tables[0]
	for _, t := range dp.tables[1:] {
		if len(sels[t.Name]) > len(sels[start.Name]) {
			start = t
		}
	}
	rs := &RowSet{
		n:      len(sels[start.Name]),
		tables: []*storage.Table{start},
		vecs:   map[string][]int32{start.Name: sels[start.Name]},
	}
	joined := map[string]bool{start.Name: true}
	remaining := append([]joinCond{}, dp.joins...)
	for len(joined) < len(dp.tables) {
		idx := -1
		var jc joinCond
		for i, c := range remaining {
			l, r := joined[c.lt.Name], joined[c.rt.Name]
			if l != r { // connects the joined set to a new table
				idx, jc = i, c
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("join graph disconnected: joined %v of %v", keys(joined), dp.Tables())
		}
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		// Orient: probe side already joined, build side new.
		probeT, probeC, buildT, buildC := jc.lt, jc.lc, jc.rt, jc.rc
		if !joined[probeT.Name] {
			probeT, probeC, buildT, buildC = jc.rt, jc.rc, jc.lt, jc.lc
		}
		if err := rs.hashJoin(ctx, dp.eng.Workers, probeT, probeC, buildT, buildC, sels[buildT.Name]); err != nil {
			return nil, err
		}
		joined[buildT.Name] = true
		// Apply any remaining conditions between already-joined tables as
		// post-join filters.
		for i := 0; i < len(remaining); {
			c := remaining[i]
			if joined[c.lt.Name] && joined[c.rt.Name] {
				rs.filterEqual(c)
				remaining = append(remaining[:i], remaining[i+1:]...)
				continue
			}
			i++
		}
	}
	return rs, nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// hashJoin builds a hash table over the build side's selected rows and
// probes with the current row set, expanding it in place. Probing is
// chunked across workers; chunk outputs are concatenated in order so the
// result is deterministic. Worker panics are recovered and surfaced as
// errors, and probing polls ctx so long joins can be cancelled.
func (rs *RowSet) hashJoin(ctx context.Context, workers int, probeT *storage.Table, probeC *storage.Column,
	buildT *storage.Table, buildC *storage.Column, buildSel []int32) error {

	if err := faultinject.Hit(faultinject.PointExecJoin); err != nil {
		return fmt.Errorf("join %s⋈%s: %w", probeT.Name, buildT.Name, err)
	}
	// Build: key → row(s). Dimension keys are usually unique; fall back
	// to a multimap only when duplicates exist.
	single := make(map[int64]int32, len(buildSel))
	var multi map[int64][]int32
	keyOf := func(row int32) int64 { return buildC.AsInt(int(row)) }
	for _, row := range buildSel {
		k := keyOf(row)
		if prev, dup := single[k]; dup {
			if multi == nil {
				multi = map[int64][]int32{}
			}
			multi[k] = append(multi[k], prev, row)
			delete(single, k)
		} else if multi != nil && len(multi[k]) > 0 {
			multi[k] = append(multi[k], row)
		} else {
			single[k] = row
		}
	}

	probeVec := rs.vecs[probeT.Name]
	probeKey := func(i int32) int64 { return probeC.AsInt(int(probeVec[i])) }

	type chunkOut struct {
		keep  []int32 // indexes into the current rowset
		build []int32 // matched build rows, aligned with keep
	}
	nchunks := workers
	if nchunks > rs.n/4096+1 {
		nchunks = rs.n/4096 + 1
	}
	outs := make([]chunkOut, nchunks)
	errs := make([]error, nchunks)
	var wg sync.WaitGroup
	chunk := (rs.n + nchunks - 1) / nchunks
	for c := 0; c < nchunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > rs.n {
			hi = rs.n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			// Isolate faults: a panicking probe worker must not kill the
			// process; it becomes an error joined after the barrier.
			defer func() {
				if r := recover(); r != nil {
					errs[c] = fmt.Errorf("join worker panic (recovered): %v", r)
				}
			}()
			keep := make([]int32, 0, hi-lo)
			build := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if (i-lo)%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						errs[c] = err
						return
					}
				}
				k := probeKey(int32(i))
				if multi != nil {
					if rows, ok := multi[k]; ok && len(rows) > 0 {
						for _, r := range rows {
							keep = append(keep, int32(i))
							build = append(build, r)
						}
						continue
					}
				}
				if r, ok := single[k]; ok {
					keep = append(keep, int32(i))
					build = append(build, r)
				}
			}
			outs[c] = chunkOut{keep: keep, build: build}
		}(c, lo, hi)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}

	total := 0
	for _, o := range outs {
		total += len(o.keep)
	}
	// Rebuild all existing vectors through keep, and add the build vector.
	newVecs := map[string][]int32{}
	for name, vec := range rs.vecs {
		nv := make([]int32, total)
		pos := 0
		for _, o := range outs {
			for _, i := range o.keep {
				nv[pos] = vec[i]
				pos++
			}
		}
		newVecs[name] = nv
	}
	bv := make([]int32, 0, total)
	for _, o := range outs {
		bv = append(bv, o.build...)
	}
	newVecs[buildT.Name] = bv
	rs.vecs = newVecs
	rs.n = total
	rs.tables = append(rs.tables, buildT)
	return nil
}

// filterEqual applies a residual equi-join condition between two already
// joined tables.
func (rs *RowSet) filterEqual(c joinCond) {
	lv, rv := rs.vecs[c.lt.Name], rs.vecs[c.rt.Name]
	keep := make([]int32, 0, rs.n)
	for i := 0; i < rs.n; i++ {
		if c.lc.AsInt(int(lv[i])) == c.rc.AsInt(int(rv[i])) {
			keep = append(keep, int32(i))
		}
	}
	for name, vec := range rs.vecs {
		nv := make([]int32, len(keep))
		for j, i := range keep {
			nv[j] = vec[i]
		}
		rs.vecs[name] = nv
	}
	rs.n = len(keep)
}
