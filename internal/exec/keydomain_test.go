package exec

import (
	"math"
	"testing"

	"sudaf/internal/storage"
)

// Regression tests for keyDomainOf against the Stats() (+Inf, -Inf)
// sentinels: an empty or all-NaN key column must yield the zero
// keyDomain (hash grouping), never a dense domain derived from
// non-finite bounds (int64-of-Inf is undefined behavior).

func TestKeyDomainEmptyIntColumn(t *testing.T) {
	c := storage.NewColumn("k", storage.KindInt)
	if d := keyDomainOf(c); d.dense {
		t.Fatalf("empty int column produced dense domain %+v", d)
	}
}

func TestKeyDomainSingleRow(t *testing.T) {
	c := storage.NewColumn("k", storage.KindInt)
	c.AppendInt(41)
	d := keyDomainOf(c)
	if !d.dense || d.base != 41 || d.width != 1 {
		t.Fatalf("single-row domain = %+v, want dense base=41 width=1", d)
	}
}

func TestKeyDomainEmptyStringColumn(t *testing.T) {
	c := storage.NewColumn("s", storage.KindString)
	if d := keyDomainOf(c); d.dense {
		t.Fatalf("empty string column produced dense domain %+v", d)
	}
}

func TestKeyDomainFloatColumnNeverDense(t *testing.T) {
	c := storage.NewColumn("f", storage.KindFloat)
	c.AppendFloat(math.NaN())
	c.AppendFloat(math.NaN())
	if d := keyDomainOf(c); d.dense {
		t.Fatalf("all-NaN float column produced dense domain %+v", d)
	}
}

func TestKeyDomainInexactStatsFallsBackToHash(t *testing.T) {
	// Values beyond 2^53 round in float64, so the float-derived base may
	// disagree with the true minimum even when the span is tiny; dense
	// assignment would then index out of the lookup table.
	c := storage.NewColumn("k", storage.KindInt)
	base := int64(1) << 60
	for i := int64(0); i < 10; i++ {
		c.AppendInt(base + i)
	}
	if d := keyDomainOf(c); d.dense {
		t.Fatalf("beyond-2^53 column produced dense domain %+v", d)
	}
}

func TestKeyDomainHugeSpanFallsBackToHash(t *testing.T) {
	c := storage.NewColumn("k", storage.KindInt)
	c.AppendInt(math.MinInt64 + 1)
	c.AppendInt(math.MaxInt64 - 1)
	if d := keyDomainOf(c); d.dense {
		t.Fatalf("overflowing span produced dense domain %+v", d)
	}
}
