package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// runStates executes the given states as one aggregation over sql.
func runStates(t *testing.T, e *Engine, sql string, states []canonical.State) *GroupResult {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := e.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTaskRegistry()
	for i, st := range states {
		st := st
		reg.Add(fmt.Sprintf("%d:%s", i, st.Key()), func(b Binder) (Task, error) {
			return NewStateTask(st, b)
		})
	}
	gr, err := e.RunSpecs(context.Background(), dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

// assertIdentical demands bit-for-bit equality: same groups, same group
// order, same accumulated values (NaN counts as equal to NaN).
func assertIdentical(t *testing.T, label string, a, b *GroupResult) {
	t.Helper()
	if a.NumGroups != b.NumGroups {
		t.Fatalf("%s: %d vs %d groups", label, a.NumGroups, b.NumGroups)
	}
	for g := 0; g < a.NumGroups; g++ {
		if a.Keys[g] != b.Keys[g] {
			t.Fatalf("%s: group %d key %v vs %v (order must match)", label, g, a.Keys[g], b.Keys[g])
		}
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d vs %d value columns", label, len(a.Values), len(b.Values))
	}
	for v := range a.Values {
		for g := 0; g < a.NumGroups; g++ {
			if !bitsEq(a.Values[v][g], b.Values[v][g]) {
				t.Fatalf("%s: task %d group %d: %v (%#x) vs %v (%#x)", label, v, g,
					a.Values[v][g], math.Float64bits(a.Values[v][g]),
					b.Values[v][g], math.Float64bits(b.Values[v][g]))
			}
		}
	}
}

// kernelStates covers every kernel class over the test star schema:
// count, sum(col) on float and int columns, the sum(col^k) moments,
// sum(colX*colY), min/max, and a generic base with a non-identity chain.
func kernelStates(t *testing.T) []canonical.State {
	t.Helper()
	return []canonical.State{
		{Op: canonical.OpCount, Base: &expr.Num{Val: 1}},
		{Op: canonical.OpSum, Base: expr.MustParse("price")},
		{Op: canonical.OpSum, Base: expr.MustParse("s_item")}, // int column → gather path
		{Op: canonical.OpSum, F: mustChain(t, "x^2"), Base: expr.MustParse("price")},
		{Op: canonical.OpSum, F: mustChain(t, "x^3"), Base: expr.MustParse("price")},
		{Op: canonical.OpSum, F: mustChain(t, "x^4"), Base: expr.MustParse("price")},
		{Op: canonical.OpSum, Base: expr.MustParse("price*qty")},
		{Op: canonical.OpMin, Base: expr.MustParse("price")},
		{Op: canonical.OpMax, Base: expr.MustParse("price")},
		{Op: canonical.OpSum, F: mustChain(t, "ln(x+1)"), Base: expr.MustParse("sqrt(price)+qty")},
	}
}

// TestVectorizedMatchesTuple is the batch ≡ tuple differential: the same
// aggregation run with kernels on and off must agree bit for bit, for
// grand aggregates, int keys, packed two-column keys and string keys.
func TestVectorizedMatchesTuple(t *testing.T) {
	cat := testCatalog(t, 20_000)
	states := kernelStates(t)
	for _, sql := range []string{
		"SELECT sum(price) FROM sales",
		"SELECT s_item, sum(price) FROM sales GROUP BY s_item",
		"SELECT s_store, s_item, sum(price) FROM sales GROUP BY s_store, s_item",
		"SELECT st_state, sum(price) FROM sales, stores WHERE s_store = st_id GROUP BY st_state",
	} {
		vec := NewEngine(cat, 4)
		tup := NewEngine(cat, 4)
		tup.SetVectorKernels(false)
		assertIdentical(t, sql, runStates(t, vec, sql, states), runStates(t, tup, sql, states))
	}
}

// TestMorselDeterminism pins the scheduler contract: with multiple
// morsels in flight, any worker count must produce bit-identical results
// — values and group order — because morsel partials merge in morsel
// order, not completion order.
func TestMorselDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 3-morsel table")
	}
	rows := 2*MorselRows + 4321 // three morsels, last one ragged
	cat := testCatalog(t, rows)
	states := kernelStates(t)
	sql := "SELECT s_item, sum(price) FROM sales GROUP BY s_item"
	serial := NewEngine(cat, 1)
	want := runStates(t, serial, sql, states)
	for _, workers := range []int{2, 3, 8} {
		e := NewEngine(cat, workers)
		assertIdentical(t, fmt.Sprintf("workers=%d", workers), want, runStates(t, e, sql, states))
	}
	// And the tuple path agrees with all of them.
	tup := NewEngine(cat, 8)
	tup.SetVectorKernels(false)
	assertIdentical(t, "tuple-path", want, runStates(t, tup, sql, states))
}

// advCatalog builds a table whose value column is adversarial for
// min/max/prod: whole groups of NaN, NaN mixed into normal data, ±Inf,
// signed zeros, subnormals, and values near 1 so products stay finite.
// Groups interleave so every batch sees several of them.
func advCatalog(t *testing.T, rows int) *catalog.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	adv := storage.NewTable("adv",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat),
	)
	for i := 0; i < rows; i++ {
		g := i % 8
		var v float64
		switch g {
		case 0:
			v = math.NaN()
		case 1:
			if rng.Intn(3) == 0 {
				v = math.NaN()
			} else {
				v = rng.Float64()*4 - 2
			}
		case 2:
			v = math.Inf(1 - 2*rng.Intn(2))
		case 3:
			v = rng.Float64()*200 - 100
		case 4:
			v = math.Copysign(0, float64(1-2*rng.Intn(2)))
		case 5:
			v = 42.5
		case 6:
			v = 0.999 + rng.Float64()*0.002
		default:
			v = rng.Float64() * 1e-308
		}
		adv.Col("g").AppendInt(int64(g))
		adv.Col("v").AppendFloat(v)
	}
	cat := catalog.New()
	if err := cat.Register(adv); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestVectorizedMatchesTupleAdversarial runs the min/max/prod/sum kernels
// over NaN/±Inf/signed-zero/subnormal data: batch and tuple paths must
// agree bit for bit, under any worker count.
func TestVectorizedMatchesTupleAdversarial(t *testing.T) {
	cat := advCatalog(t, 9_973)
	states := []canonical.State{
		{Op: canonical.OpMin, Base: expr.MustParse("v")},
		{Op: canonical.OpMax, Base: expr.MustParse("v")},
		{Op: canonical.OpProd, Base: expr.MustParse("v")},
		{Op: canonical.OpSum, Base: expr.MustParse("v")},
		{Op: canonical.OpSum, F: mustChain(t, "x^2"), Base: expr.MustParse("v")},
		{Op: canonical.OpCount, Base: &expr.Num{Val: 1}},
	}
	for _, sql := range []string{
		"SELECT g, min(v) FROM adv GROUP BY g",
		"SELECT min(v) FROM adv",
		"SELECT min(v) FROM adv WHERE g > 100", // empty selection → merge identities
	} {
		for _, workers := range []int{1, 4} {
			vec := NewEngine(cat, workers)
			tup := NewEngine(cat, workers)
			tup.SetVectorKernels(false)
			label := fmt.Sprintf("%s workers=%d", sql, workers)
			assertIdentical(t, label, runStates(t, vec, sql, states), runStates(t, tup, sql, states))
		}
	}
}

// TestEmptySelectionIdentities pins the empty-group contract for the
// grand aggregate: zero input rows still yield one group holding each
// op's merge identity (+Inf for min, -Inf for max, 1 for prod, 0 for
// sum/count), on both execution paths.
func TestEmptySelectionIdentities(t *testing.T) {
	cat := advCatalog(t, 64)
	states := []canonical.State{
		{Op: canonical.OpMin, Base: expr.MustParse("v")},
		{Op: canonical.OpMax, Base: expr.MustParse("v")},
		{Op: canonical.OpProd, Base: expr.MustParse("v")},
		{Op: canonical.OpSum, Base: expr.MustParse("v")},
		{Op: canonical.OpCount, Base: &expr.Num{Val: 1}},
	}
	want := []float64{math.Inf(1), math.Inf(-1), 1, 0, 0}
	for _, disable := range []bool{false, true} {
		e := NewEngine(cat, 2)
		e.SetVectorKernels(!disable)
		gr := runStates(t, e, "SELECT min(v) FROM adv WHERE g > 100", states)
		if gr.NumGroups != 1 {
			t.Fatalf("disable=%v: %d groups, want 1", disable, gr.NumGroups)
		}
		for i, w := range want {
			if !bitsEq(gr.Values[i][0], w) {
				t.Errorf("disable=%v state %d: %v, want identity %v", disable, i, gr.Values[i][0], w)
			}
		}
	}
}

// TestKernelSelection checks the canonical-form → kernel classification.
func TestKernelSelection(t *testing.T) {
	cases := []struct {
		st   canonical.State
		want canonical.KernelClass
		pow  int
	}{
		{canonical.State{Op: canonical.OpCount, Base: &expr.Num{Val: 1}}, canonical.KernelCount, 0},
		{canonical.State{Op: canonical.OpSum, Base: expr.MustParse("x")}, canonical.KernelSumCol, 0},
		{canonical.State{Op: canonical.OpSum, F: mustChain(t, "x^2"), Base: expr.MustParse("x")}, canonical.KernelSumPow, 2},
		{canonical.State{Op: canonical.OpSum, F: mustChain(t, "x^4"), Base: expr.MustParse("x")}, canonical.KernelSumPow, 4},
		{canonical.State{Op: canonical.OpSum, Base: expr.MustParse("x*y")}, canonical.KernelSumMul, 0},
		{canonical.State{Op: canonical.OpSum, Base: expr.MustParse("x^3")}, canonical.KernelSumPow, 3},
		{canonical.State{Op: canonical.OpProd, Base: expr.MustParse("x")}, canonical.KernelProdCol, 0},
		{canonical.State{Op: canonical.OpMin, Base: expr.MustParse("x")}, canonical.KernelMinCol, 0},
		{canonical.State{Op: canonical.OpMax, Base: expr.MustParse("x")}, canonical.KernelMaxCol, 0},
		{canonical.State{Op: canonical.OpSum, F: mustChain(t, "ln(x)"), Base: expr.MustParse("x")}, canonical.KernelGeneric, 0},
		{canonical.State{Op: canonical.OpMin, F: mustChain(t, "x^2"), Base: expr.MustParse("x")}, canonical.KernelGeneric, 0},
		{canonical.State{Op: canonical.OpSum, Base: expr.MustParse("x+y")}, canonical.KernelGeneric, 0},
	}
	for i, c := range cases {
		plan := c.st.SelectKernel()
		if plan.Class != c.want || plan.Pow != c.pow {
			t.Errorf("case %d (%s): got %v pow=%d, want %v pow=%d",
				i, c.st.Key(), plan.Class, plan.Pow, c.want, c.pow)
		}
	}
	_ = scalar.Chain{} // keep the import meaningful if cases change
}

// TestScalarFallbackWithoutColumns: a Binder with no physical columns
// (BindFunc) must route every kernel except count() back to the scalar
// path via a nil VecState — never fail task construction.
func TestScalarFallbackWithoutColumns(t *testing.T) {
	bind := BindFunc(func(name string) (Accessor, error) {
		return func(i int32) float64 { return float64(i) }, nil
	})
	sum := canonical.State{Op: canonical.OpSum, Base: expr.MustParse("x")}
	st, err := NewStateTask(sum, bind)
	if err != nil {
		t.Fatal(err)
	}
	if vs := st.NewVecState(); vs != nil {
		t.Error("sum over synthetic binding should decline vectorization")
	}
	cnt := canonical.State{Op: canonical.OpCount, Base: &expr.Num{Val: 1}}
	ct, err := NewStateTask(cnt, bind)
	if err != nil {
		t.Fatal(err)
	}
	if vs := ct.NewVecState(); vs == nil {
		t.Error("count() needs no columns and should stay vectorized")
	}
}
