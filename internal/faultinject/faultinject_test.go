package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("injection should start disabled")
	}
	for i := 0; i < 100; i++ {
		if err := Hit(PointStorageScan); err != nil {
			t.Fatalf("disabled Hit returned %v", err)
		}
	}
	if HitCount(PointStorageScan) != 0 {
		t.Error("disabled hits should not be counted")
	}
}

func TestErrorKind(t *testing.T) {
	defer Reset()
	Arm(PointCacheGet, Spec{Kind: KindError})
	err := Hit(PointCacheGet)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// Unarmed points are unaffected.
	if err := Hit(PointStorageScan); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	defer Reset()
	custom := errors.New("boom")
	Arm(PointExecJoin, Spec{Kind: KindError, Err: custom})
	if err := Hit(PointExecJoin); !errors.Is(err, custom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	Arm(PointExecWorker, Spec{Kind: KindError, After: 2, Times: 1})
	var errs int
	for i := 0; i < 5; i++ {
		if Hit(PointExecWorker) != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("After=2 Times=1 over 5 hits: want 1 error, got %d", errs)
	}
	if HitCount(PointExecWorker) != 5 || Fired(PointExecWorker) != 1 {
		t.Fatalf("hits=%d fired=%d", HitCount(PointExecWorker), Fired(PointExecWorker))
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	Arm(PointStorageScan, Spec{Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Error("KindPanic should panic")
		}
	}()
	_ = Hit(PointStorageScan)
}

func TestDelayKind(t *testing.T) {
	defer Reset()
	Arm(PointCacheGet, Spec{Kind: KindDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := Hit(PointCacheGet); err != nil {
		t.Fatalf("KindDelay returned error: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay not applied")
	}
}

func TestDisarm(t *testing.T) {
	defer Reset()
	Arm(PointCacheGet, Spec{Kind: KindError})
	Disarm(PointCacheGet)
	if err := Hit(PointCacheGet); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if !Enabled() {
		t.Error("Disarm should leave injection enabled for other points")
	}
}

func TestPlanFromSeedDeterministic(t *testing.T) {
	defer Reset()
	n1, s1 := PlanFromSeed(42)
	Reset()
	n2, s2 := PlanFromSeed(42)
	if n1 != n2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%s %+v) vs (%s %+v)", n1, s1, n2, s2)
	}
	if !Enabled() {
		t.Error("PlanFromSeed should arm the point")
	}
	found := false
	for _, p := range Points() {
		if p == n1 {
			found = true
		}
	}
	if !found {
		t.Errorf("plan chose unknown point %q", n1)
	}
}
