// Package faultinject provides deterministic, seedable fault points for
// chaos-testing the query path. Production code calls Hit(point) at
// well-known places (storage scans, cache gets, exec workers, join
// probes); when injection is disabled — the default — Hit is a single
// atomic load. Tests arm a point with a Spec (inject an error, a panic,
// or a delay, optionally after N hits and for at most M firings) and
// assert that every injected fault surfaces as a clean error or a
// fallback, never a crash or a wrong answer.
//
// The registry is process-global and guarded by a mutex, so armed points
// behave deterministically even under `go test -race` with parallel
// engine workers. Seedable chaos plans (PlanFromSeed) derive the point,
// kind and skip-count from a math/rand PRNG so a failing run is
// reproducible from its seed alone.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the behaviour of an armed fault point.
type Kind int

const (
	// KindError makes Hit return an error.
	KindError Kind = iota
	// KindPanic makes Hit panic.
	KindPanic
	// KindDelay makes Hit sleep (for cancellation/timeout testing).
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registered fault points compiled into the engine.
const (
	// PointStorageScan fires in the base-table scan/filter step.
	PointStorageScan = "storage.scan"
	// PointCacheGet fires inside aggregation-state cache lookups.
	PointCacheGet = "cache.get"
	// PointExecWorker fires in every parallel aggregation worker.
	PointExecWorker = "exec.worker"
	// PointExecJoin fires at the start of each hash join.
	PointExecJoin = "exec.join"
	// PointNetAccept fires in the server's connection-accept path: an
	// error tears the just-accepted connection down, a delay stalls the
	// accept loop.
	PointNetAccept = "net.accept"
	// PointNetRead fires on every server-side connection read: an error
	// models a torn client connection mid-request, a delay a slow
	// (stalling) client.
	PointNetRead = "net.read"
	// PointNetWrite fires on every server-side connection write: an
	// error models a client that disconnected mid-response, a delay a
	// congested downlink.
	PointNetWrite = "net.write"
	// PointNetStall fires before each streamed result frame is written:
	// an error truncates the stream (a torn response the client must
	// detect via length framing), a delay stalls it mid-stream.
	PointNetStall = "net.stall"
	// PointShardScan fires at the start of every per-shard worker scan:
	// an error or panic models a failed shard, a delay a straggler.
	PointShardScan = "shard.scan"
	// PointShardMerge fires before each partial-state ⊕-merge step at
	// the scatter-gather coordinator.
	PointShardMerge = "shard.merge"
	// PointShardStall fires after the coordinator has gathered and
	// merged all partials, before the result is returned: a delay models
	// a stalled coordinator (drain testing), an error a failed gather.
	PointShardStall = "shard.stall"
	// PointWindowEvict fires each time a sliding window evicts expired
	// rows (once per eviction step, not per state): an error aborts the
	// windowed query or fails the subscription cleanly.
	PointWindowEvict = "window.evict"
	// PointWindowEmit fires before each window emission is computed: an
	// error models a failure mid-stream — one-shot queries abort, live
	// subscriptions surface it via Err() after the result channel closes.
	PointWindowEmit = "window.emit"
)

// Points lists every registered fault point.
func Points() []string {
	return []string{
		PointStorageScan, PointCacheGet, PointExecWorker, PointExecJoin,
		PointNetAccept, PointNetRead, PointNetWrite, PointNetStall,
		PointShardScan, PointShardMerge, PointShardStall,
		PointWindowEvict, PointWindowEmit,
	}
}

// ErrInjected is the sentinel wrapped by injected errors.
var ErrInjected = errors.New("injected fault")

// Spec configures an armed fault point.
type Spec struct {
	Kind Kind
	// After skips the first After hits before firing.
	After int
	// Times bounds how often the point fires (0 = every hit after After).
	Times int
	// Delay is the sleep for KindDelay (default 50ms).
	Delay time.Duration
	// Err overrides the injected error for KindError.
	Err error
}

type point struct {
	spec  Spec
	hits  int
	fired int
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  = map[string]*point{}
)

// Arm installs a spec at a point and enables injection.
func Arm(name string, s Spec) {
	mu.Lock()
	points[name] = &point{spec: s}
	mu.Unlock()
	enabled.Store(true)
}

// Disarm removes a single point (injection stays enabled for others).
func Disarm(name string) {
	mu.Lock()
	delete(points, name)
	mu.Unlock()
}

// Reset disarms every point and disables injection.
func Reset() {
	enabled.Store(false)
	mu.Lock()
	points = map[string]*point{}
	mu.Unlock()
}

// Enabled reports whether injection is globally on.
func Enabled() bool { return enabled.Load() }

// Hit is called by production code at a fault point. With injection
// disabled it costs one atomic load. With the point armed it returns an
// error, panics, or sleeps according to the spec.
func Hit(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.spec.After || (p.spec.Times > 0 && p.fired >= p.spec.Times) {
		mu.Unlock()
		return nil
	}
	p.fired++
	spec := p.spec
	mu.Unlock()
	switch spec.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	case KindDelay:
		d := spec.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
		return nil
	default:
		if spec.Err != nil {
			return spec.Err
		}
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// Fired reports how many times a point has fired.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// HitCount reports how many times a point has been reached (fired or not).
func HitCount(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// PlanFromSeed deterministically arms one point with one kind derived
// from the seed and returns the choice, so chaos harnesses can sweep
// seeds and reproduce any failure.
func PlanFromSeed(seed int64) (string, Spec) {
	rng := rand.New(rand.NewSource(seed))
	pts := Points()
	name := pts[rng.Intn(len(pts))]
	spec := Spec{
		Kind:  Kind(rng.Intn(3)),
		After: rng.Intn(3),
		Delay: time.Duration(1+rng.Intn(5)) * time.Millisecond,
	}
	Arm(name, spec)
	return name, spec
}
