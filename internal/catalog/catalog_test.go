package catalog

import (
	"testing"

	"sudaf/internal/storage"
)

func tbl(name string, cols ...string) *storage.Table {
	t := storage.NewTable(name)
	for _, c := range cols {
		t.AddColumn(storage.NewColumn(c, storage.KindInt))
	}
	return t
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	if err := c.Register(tbl("a", "x", "y")); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(tbl("b", "z")); err != nil {
		t.Fatal(err)
	}
	if !c.Has("a") || c.Has("missing") {
		t.Error("Has broken")
	}
	got, err := c.Table("a")
	if err != nil || got.Name != "a" {
		t.Fatalf("Table: %v %v", got, err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("a")
	if c.Has("a") {
		t.Error("Drop failed")
	}
}

func TestRegisterInvalid(t *testing.T) {
	c := New()
	bad := storage.NewTable("bad", storage.NewColumn("a", storage.KindInt), storage.NewColumn("b", storage.KindInt))
	bad.Col("a").AppendInt(1) // ragged
	if err := c.Register(bad); err == nil {
		t.Error("ragged table must not register")
	}
	unnamed := storage.NewTable("")
	if err := c.Register(unnamed); err == nil {
		t.Error("unnamed table must not register")
	}
}

func TestResolveColumn(t *testing.T) {
	c := New()
	_ = c.Register(tbl("a", "x", "y"))
	_ = c.Register(tbl("b", "z", "y")) // y is ambiguous between a and b
	owner, err := c.ResolveColumn("x", []string{"a", "b"})
	if err != nil || owner.Name != "a" {
		t.Fatalf("resolve x: %v %v", owner, err)
	}
	if _, err := c.ResolveColumn("y", []string{"a", "b"}); err == nil {
		t.Error("ambiguous column should error")
	}
	if _, err := c.ResolveColumn("w", []string{"a", "b"}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := c.ResolveColumn("x", []string{"a", "missing"}); err == nil {
		t.Error("unknown table should error")
	}
	// Unambiguous when scoped to one table.
	owner, err = c.ResolveColumn("y", []string{"b"})
	if err != nil || owner.Name != "b" {
		t.Fatalf("scoped resolve: %v %v", owner, err)
	}
}
