// Package catalog is the schema registry of the SUDAF engine: it maps
// table names to columnar tables and answers column-resolution queries
// for the planner (which table owns a column, assuming the star-schema
// convention of globally unique column names).
package catalog

import (
	"fmt"
	"sort"

	"sudaf/internal/errs"
	"sudaf/internal/storage"
)

// Catalog holds the registered tables of a session.
type Catalog struct {
	tables map[string]*storage.Table
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*storage.Table{}}
}

// Register adds or replaces a table; the table must validate.
func (c *Catalog) Register(t *storage.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Name == "" {
		return fmt.Errorf("cannot register unnamed table")
	}
	c.tables[t.Name] = t
	return nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) { delete(c.tables, name) }

// Table returns the named table.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", errs.ErrUnknownTable, name)
	}
	return t, nil
}

// Has reports whether a table is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Names returns registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveColumn finds the unique table among candidates that owns the
// column. Ambiguity or absence is an error.
func (c *Catalog) ResolveColumn(col string, among []string) (*storage.Table, error) {
	var owner *storage.Table
	for _, name := range among {
		t, err := c.Table(name)
		if err != nil {
			return nil, err
		}
		if t.HasColumn(col) {
			if owner != nil {
				return nil, fmt.Errorf("column %q is ambiguous between %s and %s", col, owner.Name, t.Name)
			}
			owner = t
		}
	}
	if owner == nil {
		return nil, fmt.Errorf("column %q not found in tables %v", col, among)
	}
	return owner, nil
}
