// Package catalog is the schema registry of the SUDAF engine: it maps
// table names to columnar tables and answers column-resolution queries
// for the planner (which table owns a column, assuming the star-schema
// convention of globally unique column names).
//
// A Catalog is safe for concurrent use. Per-query temporary tables
// (materialized subqueries) live in an Overlay: a shared-nothing child
// catalog whose local registrations shadow the parent without ever
// writing to it, so concurrent queries can materialize derived tables
// under the same alias without interfering.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"sudaf/internal/errs"
	"sudaf/internal/storage"
)

// Catalog holds the registered tables of a session (or, for overlays,
// the temporary tables of one query on top of a parent catalog).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*storage.Table
	parent *Catalog // consulted on local misses; never written through
	// pinning marks a snapshot catalog: parent lookups are memoized
	// locally, so each name resolves to one table version for the
	// snapshot's whole lifetime even while the parent advances.
	pinning bool
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*storage.Table{}}
}

// Overlay creates a child catalog: lookups fall through to c, while
// Register and Drop act only on the overlay's local tables. Intended for
// per-query temporary tables; the overlay is not shared across queries,
// but remains safe for concurrent use like any Catalog.
func (c *Catalog) Overlay() *Catalog {
	return &Catalog{tables: map[string]*storage.Table{}, parent: c}
}

// Snapshot creates a pinning overlay: the first lookup of each name
// memoizes the table version it resolved to, so a query planning and
// executing against the snapshot observes exactly one version of every
// table — appends published to the parent mid-query stay invisible.
// Local Register/Drop work like an ordinary overlay (subquery temps).
func (c *Catalog) Snapshot() *Catalog {
	return &Catalog{tables: map[string]*storage.Table{}, parent: c, pinning: true}
}

// Register adds or replaces a table; the table must validate. The table
// is sealed (its rows become immutable; growth goes through
// Table.AppendRows) and stamped with a version epoch if it has none yet.
func (c *Catalog) Register(t *storage.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Name == "" {
		return fmt.Errorf("cannot register unnamed table")
	}
	if t.Epoch == 0 {
		t.Epoch = storage.NextEpoch()
	}
	t.Seal()
	c.mu.Lock()
	c.tables[t.Name] = t
	c.mu.Unlock()
	return nil
}

// Drop removes a table (from the local layer only, for overlays).
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	delete(c.tables, name)
	c.mu.Unlock()
}

// Table returns the named table, consulting the parent on a local miss.
// Snapshot catalogs memoize the first parent resolution per name, pinning
// that table version for all later lookups.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	if c.parent != nil {
		t, err := c.parent.Table(name)
		if err != nil {
			return nil, err
		}
		if c.pinning {
			c.mu.Lock()
			if prev, ok := c.tables[name]; ok {
				t = prev // lost the pin race; keep the first version seen
			} else {
				c.tables[name] = t
			}
			c.mu.Unlock()
		}
		return t, nil
	}
	return nil, fmt.Errorf("%w %q", errs.ErrUnknownTable, name)
}

// Has reports whether a table is registered (here or in a parent).
func (c *Catalog) Has(name string) bool {
	_, err := c.Table(name)
	return err == nil
}

// Names returns registered table names (including inherited ones),
// sorted.
func (c *Catalog) Names() []string {
	seen := map[string]bool{}
	for l := c; l != nil; l = l.parent {
		l.mu.RLock()
		for n := range l.tables {
			seen[n] = true
		}
		l.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveColumn finds the unique table among candidates that owns the
// column. Ambiguity or absence is an error.
func (c *Catalog) ResolveColumn(col string, among []string) (*storage.Table, error) {
	var owner *storage.Table
	for _, name := range among {
		t, err := c.Table(name)
		if err != nil {
			return nil, err
		}
		if t.HasColumn(col) {
			if owner != nil {
				return nil, fmt.Errorf("column %q is ambiguous between %s and %s", col, owner.Name, t.Name)
			}
			owner = t
		}
	}
	if owner == nil {
		return nil, fmt.Errorf("column %q not found in tables %v", col, among)
	}
	return owner, nil
}
