package scalar

import (
	"math"
	"math/rand"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestPrimEval(t *testing.T) {
	cases := []struct {
		p    Prim
		x    float64
		want float64
	}{
		{Const(7), 3, 7},
		{Linear(2), 3, 6},
		{PowerP(2), 3, 9},
		{LogP(E), E, 1},
		{LogP(2), 8, 3},
		{ExpP(2), 3, 8},
		{Identity(), 5, 5},
	}
	for _, c := range cases {
		approx(t, c.p.Eval(c.x), c.want, 1e-12, c.p.String())
	}
}

func TestChainEvalOrder(t *testing.T) {
	// Chain{power 2, linear 4} is 4·x², not (4x)².
	ch := NewChain(PowerP(2), Linear(4))
	approx(t, ch.Eval(3), 36, 1e-12, "4*x^2 at 3")
	ch2 := NewChain(Linear(4), PowerP(2))
	approx(t, ch2.Eval(3), 144, 1e-12, "(4x)^2 at 3")
}

// randChain builds a random chain whose natural domain includes (0, ∞).
func randChain(r *rand.Rand, n int) Chain {
	prims := make([]Prim, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			prims = append(prims, Linear(float64(r.Intn(5)+1)))
		case 1:
			prims = append(prims, PowerP([]float64{0.5, 1, 2, 3, -1}[r.Intn(5)]))
		case 2:
			prims = append(prims, LogP([]float64{2, E, 10}[r.Intn(3)]))
		case 3:
			prims = append(prims, ExpP([]float64{2, E, 0.5}[r.Intn(3)]))
		default:
			prims = append(prims, Identity())
		}
	}
	return Chain{Prims: prims}
}

// TestNormalizePreservesValue: normalization never changes chain values on
// the positive domain (the paper's setting after the |x| reduction).
func TestNormalizePreservesValue(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		ch := randChain(r, 1+r.Intn(4))
		norm := ch.Normalize()
		x := 0.1 + r.Float64()*5
		v1 := ch.Eval(x)
		v2 := norm.Eval(x)
		if math.IsNaN(v1) || math.IsInf(v1, 0) {
			continue // left the positive domain mid-chain (e.g. log of tiny → negative → power)
		}
		if math.IsNaN(v2) || math.Abs(v1-v2) > 1e-6*(1+math.Abs(v1)) {
			t.Fatalf("normalize changed value: %s -> %s at x=%v: %v vs %v",
				ch, norm, x, v1, v2)
		}
	}
}

func TestNormalizeLaws(t *testing.T) {
	cases := []struct {
		in   Chain
		want Chain
	}{
		// x^2 ∘ x^3 = x^6
		{NewChain(PowerP(3), PowerP(2)), NewChain(PowerP(6))},
		// 2·(3·x) = 6·x
		{NewChain(Linear(3), Linear(2)), NewChain(Linear(6))},
		// (2x)^3 = 8·x^3
		{NewChain(Linear(2), PowerP(3)), NewChain(PowerP(3), Linear(8))},
		// ln(x^5) = 5·ln x
		{NewChain(PowerP(5), LogP(E)), NewChain(LogP(E), Linear(5))},
		// ln(2^x) = ln2 · x
		{NewChain(ExpP(2), LogP(E)), NewChain(Linear(math.Log(2)))},
		// 2^(ln x) = x^(ln 2)
		{NewChain(LogP(E), ExpP(2)), NewChain(PowerP(math.Log(2)))},
		// e^(2x) = (e^2)^x
		{NewChain(Linear(2), ExpP(E)), NewChain(ExpP(math.Exp(2)))},
		// (2^x)^3 = 8^x
		{NewChain(ExpP(2), PowerP(3)), NewChain(ExpP(8))},
		// log_2 x = (1/ln2)·ln x
		{NewChain(LogP(2)), NewChain(LogP(E), Linear(1/math.Log(2)))},
		// identity drops
		{NewChain(Identity(), PowerP(2), Identity()), NewChain(PowerP(2))},
		// x^0 is the constant 1
		{NewChain(PowerP(0), Linear(3)), NewChain(Const(3))},
		// const collapses the whole chain
		{NewChain(PowerP(2), Const(5), Linear(2)), NewChain(Const(10))},
	}
	for _, c := range cases {
		got := c.in.Normalize()
		if !got.Equal(c.want) {
			t.Errorf("Normalize(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		ch := randChain(r, 1+r.Intn(4))
		n1 := ch.Normalize()
		n2 := n1.Normalize()
		if !n1.Equal(n2) {
			t.Fatalf("not idempotent: %s -> %s -> %s", ch, n1, n2)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		ch := randChain(r, 1+r.Intn(3)).Normalize()
		if !ch.Classify().Injective {
			continue // the formal inverse is only meaningful for injections
		}
		inv, ok := ch.Inverse()
		if !ok {
			if !ch.Classify().Constant {
				t.Fatalf("inverse failed for non-constant %s", ch)
			}
			continue
		}
		x := 0.2 + r.Float64()*3
		y := ch.Eval(x)
		if math.IsNaN(y) || math.IsInf(y, 0) || y <= 0 {
			continue // outside the invertible positive range
		}
		back := inv.Eval(y)
		if math.IsNaN(back) || math.Abs(back-x) > 1e-6*(1+x) {
			t.Fatalf("inverse round trip failed: %s, inv %s, x=%v -> y=%v -> %v",
				ch, inv, x, y, back)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		ch   Chain
		want Props
	}{
		{NewChain(Linear(3)), Props{Injective: true, Odd: true}},
		{NewChain(PowerP(2)), Props{Even: true}},
		{NewChain(PowerP(3)), Props{Injective: true, Odd: true}},
		{NewChain(PowerP(2), Linear(4)), Props{Even: true}},
		// x^6 normalizes from x^3∘x^2; even.
		{NewChain(PowerP(3), PowerP(2)), Props{Even: true}},
		// 4·x² then x³ → x^6 scaled: still even.
		{NewChain(PowerP(2), PowerP(3)), Props{Even: true}},
		{NewChain(LogP(E)), Props{Injective: true, NeedsPositive: true}},
		{NewChain(ExpP(2)), Props{Injective: true}},
		{NewChain(PowerP(0.5)), Props{Injective: true, NeedsPositive: true}},
		{NewChain(Const(3)), Props{Constant: true}},
		// ln(x²): even, not injective, defined on x≠0 (not needs-positive).
		{NewChain(PowerP(2), LogP(E)), Props{Even: true}},
		// x^-1: odd injective.
		{NewChain(PowerP(-1)), Props{Injective: true, Odd: true}},
		// x^-2: even.
		{NewChain(PowerP(-2)), Props{Even: true}},
		// 2^(x²): even (inner even).
		{NewChain(PowerP(2), ExpP(2)), Props{Even: true}},
		// (ln x)²: needs positive, not injective on its domain... but on
		// x>0, ln covers all of ℝ then squaring loses injectivity.
		{NewChain(LogP(E), PowerP(2)), Props{NeedsPositive: true}},
	}
	for _, c := range cases {
		got := c.ch.Classify()
		if got != c.want {
			t.Errorf("Classify(%s) = %+v, want %+v", c.ch, got, c.want)
		}
	}
}

// TestClassifyEvenNumeric verifies the Even flag numerically: for chains
// classified even, f(-x) == f(x) at sample points.
func TestClassifyEvenNumeric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		ch := randChain(r, 1+r.Intn(3))
		props := ch.Classify()
		if !props.Even {
			continue
		}
		for j := 0; j < 5; j++ {
			x := 0.3 + r.Float64()*2
			fp := ch.Eval(x)
			fm := ch.Eval(-x)
			if math.IsNaN(fp) || math.IsNaN(fm) {
				continue
			}
			if math.Abs(fp-fm) > 1e-9*(1+math.Abs(fp)) {
				t.Fatalf("chain %s classified Even but f(%v)=%v, f(-%v)=%v",
					ch, x, fp, x, fm)
			}
		}
	}
}

// TestClassifyInjectiveNumeric: chains classified injective must not map
// two distinct sample points to the same value.
func TestClassifyInjectiveNumeric(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		ch := randChain(r, 1+r.Intn(3))
		props := ch.Classify()
		if !props.Injective || props.Constant {
			continue
		}
		xs := []float64{0.5, 0.7, 1.1, 1.9, 2.4, 3.3}
		type pt struct{ x, y float64 }
		var pts []pt
		for _, x := range xs {
			y := ch.Eval(x)
			if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) < 1e-300 {
				continue // NaN/overflow/underflow: float artifacts, not math
			}
			for _, p := range pts {
				// Equal values (relative to their own magnitude) at
				// distinct inputs contradict injectivity.
				if p.y == y || math.Abs(p.y-y) <= 1e-9*math.Max(math.Abs(p.y), math.Abs(y)) {
					t.Fatalf("chain %s classified injective but f(%v)=%v, f(%v)=%v",
						ch, p.x, p.y, x, y)
				}
			}
			pts = append(pts, pt{x, y})
		}
	}
}

func TestSymbolicCoefficients(t *testing.T) {
	// Symbolic chain: p2·x^p1, normalized from (x^p1)·p2.
	ch := NewChain(Prim{KPower, Param("p1")}, Prim{KLinear, Param("p2")})
	v, err := ch.EvalWith(3, map[string]float64{"p1": 2, "p2": 4})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 36, 1e-12, "p2*x^p1")

	// Normalization with symbolic coefficients: (p1·x)^p2 → x^p2 · p1^p2.
	ch2 := NewChain(Prim{KLinear, Param("p1")}, Prim{KPower, Param("p2")}).Normalize()
	v2, err := ch2.EvalWith(2, map[string]float64{"p1": 3, "p2": 2})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v2, 36, 1e-12, "(p1*x)^p2 normalized")

	params := ch2.Params()
	if !params["p1"] || !params["p2"] {
		t.Errorf("Params = %v, want p1 and p2", params)
	}
}

func TestCoefOps(t *testing.T) {
	if v, _ := CEval(CMul(Num(3), Num(4)), nil); v != 12 {
		t.Errorf("CMul: %v", v)
	}
	if v, _ := CEval(CPow(Num(2), Num(10)), nil); v != 1024 {
		t.Errorf("CPow: %v", v)
	}
	if v, _ := CEval(CLog(Num(2), Num(8)), nil); math.Abs(v-3) > 1e-12 {
		t.Errorf("CLog: %v", v)
	}
	if v, _ := CEval(CInv(Num(4)), nil); v != 0.25 {
		t.Errorf("CInv: %v", v)
	}
	// Symbolic fold-through
	c := CMul(Param("a"), CInv(Param("a")))
	v, err := CEval(c, map[string]float64{"a": 7})
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Errorf("symbolic CEval: %v, %v", v, err)
	}
	if _, err := CEval(Param("zz"), nil); err == nil {
		t.Error("expected unbound parameter error")
	}
}

func TestRender(t *testing.T) {
	ch := NewChain(PowerP(2), Linear(4))
	if got := ch.Render("x"); got != "4*((x)^2)" {
		t.Errorf("Render = %q", got)
	}
	ch2 := NewChain(LogP(E))
	if got := ch2.Render("v"); got != "ln(v)" {
		t.Errorf("Render = %q", got)
	}
}

func TestChainEqual(t *testing.T) {
	a := NewChain(PowerP(3), PowerP(2))
	b := NewChain(PowerP(6))
	if !a.Equal(b) {
		t.Error("x^6 chains should be equal after normalization")
	}
	c := NewChain(PowerP(5))
	if a.Equal(c) {
		t.Error("x^6 != x^5")
	}
}
