package scalar

import "math"

// Normalize brings a chain into positive-domain normal form by rewriting
// to fixpoint with the laws of the primitive algebra:
//
//	x^a ∘ x^b            = x^(a·b)
//	a·(b·x)              = (a·b)·x
//	(b·x)^a              = b^a · x^a
//	log_a(x^b)           = b · log_a(x)
//	log_a(b^x)           = log_a(b) · x
//	b^(log_a x)          = x^(log_a b)
//	a^(b·x)              = (a^b)^x
//	(a^x)^b              = (a^b)^x
//	log_a(x)             = (1/ln a) · ln(x)      (logs canonicalize to base e)
//	f ∘ const            = const
//
// Identity primitives are dropped. These laws hold for x > 0, the domain
// in which the sharing machinery operates after the even-function/sign
// reduction of Section 5.3; Classify (not Normalize) is responsible for
// whole-real-line reasoning. Symbolic coefficients are assumed positive.
func (c Chain) Normalize() Chain { return c.normalize(modePositiveInput) }

// NormalizeReal is like Normalize but assumes nothing about the sign of
// the input: only rewrites sound on the whole real line are applied. Used
// by Classify, which reasons about evenness over ℝ.
func (c Chain) NormalizeReal() Chain { return c.normalize(modeReal) }

// NormalizeAssumePositive rewrites as if every intermediate value were
// positive, enabling range-consistent cancellations such as
// (√u)² = u inside f₂∘f₂⁻¹ compositions. Sound only when the chain is
// applied to values in the range where those intermediates are indeed
// positive; the sharing decision procedure uses it and gates acceptance
// behind numeric verification.
func (c Chain) NormalizeAssumePositive() Chain { return c.normalize(modeAllPositive) }

// Normalization modes: what may be assumed about value signs.
const (
	modeReal          = iota // nothing known about the input sign
	modePositiveInput        // the raw input is positive; track through chain
	modeAllPositive          // every intermediate is positive
)

func (c Chain) normalize(mode int) Chain {
	prims := make([]Prim, len(c.Prims))
	copy(prims, c.Prims)
	for iter := 0; iter < 100; iter++ {
		next, changed := normalizePass(prims, mode)
		prims = next
		if !changed {
			break
		}
	}
	return Chain{Prims: prims}
}

// positiveBefore computes, for each primitive position, whether its input
// is guaranteed positive: the raw input is positive iff positiveInput;
// exponentials always emit positives; logarithms emit unknown signs;
// powers and positive linears preserve positivity.
func positiveBefore(prims []Prim, positiveInput bool) []bool {
	out := make([]bool, len(prims)+1)
	pos := positiveInput
	out[0] = pos
	for i, p := range prims {
		switch p.Kind {
		case KConst:
			v, ok := coefNum(p.A)
			pos = !ok || v > 0 // symbolic constants assumed positive
		case KLinear:
			v, ok := coefNum(p.A)
			if ok && v < 0 {
				pos = false
			} else if ok && v == 0 {
				pos = false
			}
			// positive coefficient (or symbolic, assumed positive): keep pos
		case KPower:
			// u>0 → u^a>0; unknown stays unknown
		case KLog:
			pos = false // log of a positive can be any sign
		case KExp:
			pos = true // a^u > 0 always
		}
		out[i+1] = pos
	}
	return out
}

func normalizePass(prims []Prim, mode int) ([]Prim, bool) {
	changed := false

	// Singleton rewrites.
	out := make([]Prim, 0, len(prims))
	for _, p := range prims {
		switch {
		case p.IsIdentity():
			changed = true
			continue
		case p.Kind == KPower && isZeroCoef(p.A):
			out = append(out, Const(1))
			changed = true
		case p.Kind == KLinear && isZeroCoef(p.A):
			out = append(out, Const(0))
			changed = true
		case p.Kind == KLog && !isNaturalBase(p.A):
			// log_a x = (1/ln a)·ln x
			out = append(out, Prim{KLog, Num(E)}, Prim{KLinear, CInv(CLn(p.A))})
			changed = true
		default:
			out = append(out, p)
		}
	}
	prims = out

	// Constant collapse: once a constant appears, everything before it is
	// dead and everything after evaluates to a constant coefficient.
	for i, p := range prims {
		if p.Kind == KConst {
			if i == 0 && len(prims) == 1 {
				break // already minimal
			}
			v := p.A
			for _, q := range prims[i+1:] {
				v = applyToCoef(q, v)
			}
			return []Prim{{KConst, v}}, true
		}
	}

	// Adjacent-pair rewrites. Scan innermost-first; restart after a change
	// by reporting changed and letting the caller loop. Each rule checks
	// whether it is sound given the (possibly unknown) sign of the pair's
	// input value.
	posAt := positiveBefore(prims, mode == modePositiveInput)
	for i := 0; i+1 < len(prims); i++ {
		p, q := prims[i], prims[i+1] // q ∘ p
		inputPos := posAt[i] || mode == modeAllPositive
		if repl, ok := rewritePair(p, q, inputPos); ok {
			res := make([]Prim, 0, len(prims)-2+len(repl))
			res = append(res, prims[:i]...)
			res = append(res, repl...)
			res = append(res, prims[i+2:]...)
			return res, true
		}
	}
	return prims, changed
}

// isNaturalBase reports whether a log base coefficient is (numerically) e.
func isNaturalBase(a Coef) bool {
	v, ok := coefNum(a)
	return ok && approxEq(v, E)
}

// applyToCoef applies a primitive to a constant coefficient value.
func applyToCoef(p Prim, v Coef) Coef {
	switch p.Kind {
	case KConst:
		return p.A
	case KLinear:
		return CMul(p.A, v)
	case KPower:
		return CPow(v, p.A)
	case KLog:
		return CLog(p.A, v)
	case KExp:
		return CPow(p.A, v)
	}
	return v
}

// rewritePair rewrites the composition q∘p (p applied first) when a law
// applies, returning the replacement primitives (innermost first).
// inputPos reports whether the input to p is guaranteed positive; rules
// that are only sound on positive inputs require it (or an exponent-parity
// condition that makes them sound for all reals).
func rewritePair(p, q Prim, inputPos bool) ([]Prim, bool) {
	switch {
	case p.Kind == KLinear && q.Kind == KLinear:
		return []Prim{{KLinear, CMul(p.A, q.A)}}, true

	case p.Kind == KPower && q.Kind == KPower:
		// (u^a)^b = u^(ab): always for u>0; for arbitrary u when both
		// exponents are integers.
		if !inputPos && !(isIntCoef(p.A) && isIntCoef(q.A)) {
			return nil, false
		}
		return []Prim{{KPower, CMul(p.A, q.A)}}, true

	case p.Kind == KLinear && q.Kind == KPower:
		// (b·u)^a = b^a · u^a: for u>0 with b>0, or any u with a integer.
		bv, bok := coefNum(p.A)
		if !(isIntCoef(q.A) || ((!bok || bv > 0) && inputPos)) {
			return nil, false
		}
		if bok && bv < 0 && !isIntCoef(q.A) {
			return nil, false
		}
		return []Prim{{KPower, q.A}, {KLinear, CPow(p.A, q.A)}}, true

	case p.Kind == KPower && q.Kind == KLog:
		// log_a(u^b) = b·log_a(u): for u>0, or for any u when b is an odd
		// integer (then u<0 makes both sides NaN consistently).
		if !inputPos && !isOddIntCoef(p.A) {
			return nil, false
		}
		return []Prim{{KLog, q.A}, {KLinear, p.A}}, true

	case p.Kind == KExp && q.Kind == KLog:
		// log_a(b^x) = log_a(b)·x.
		return []Prim{{KLinear, CLog(q.A, p.A)}}, true

	case p.Kind == KLog && q.Kind == KExp:
		// b^(log_a u) = u^(log_a b) for u>0 (u<0 would turn a NaN into a
		// possibly-defined power, so require positivity).
		if !inputPos {
			return nil, false
		}
		return []Prim{{KPower, CLog(p.A, q.A)}}, true

	case p.Kind == KLinear && q.Kind == KExp:
		// a^(b·x) = (a^b)^x.
		return []Prim{{KExp, CPow(q.A, p.A)}}, true

	case p.Kind == KExp && q.Kind == KPower:
		// (a^x)^b = (a^b)^x.
		return []Prim{{KExp, CPow(p.A, q.A)}}, true
	}
	return nil, false
}

// isIntCoef reports whether the coefficient is a concrete integer.
func isIntCoef(c Coef) bool {
	v, ok := coefNum(c)
	return ok && v == math.Trunc(v)
}

// isOddIntCoef reports whether the coefficient is a concrete odd integer.
func isOddIntCoef(c Coef) bool {
	v, ok := coefNum(c)
	return ok && v == math.Trunc(v) && int64(v)%2 != 0
}
