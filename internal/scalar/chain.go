package scalar

import (
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the primitive scalar function families of Table 2.
type Kind int

const (
	// KConst is f(x) = a.
	KConst Kind = iota
	// KLinear is f(x) = a·x (the identity when a = 1).
	KLinear
	// KPower is f(x) = x^a.
	KPower
	// KLog is f(x) = log_a(x).
	KLog
	// KExp is f(x) = a^x.
	KExp
)

func (k Kind) String() string {
	switch k {
	case KConst:
		return "const"
	case KLinear:
		return "linear"
	case KPower:
		return "power"
	case KLog:
		return "log"
	case KExp:
		return "exp"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// E is the base of natural logarithms, used as the canonical log base.
const E = math.E

// Prim is a primitive scalar function from PS.
type Prim struct {
	Kind Kind
	A    Coef
}

// Convenience constructors.

// Const returns the constant function x ↦ a.
func Const(a float64) Prim { return Prim{KConst, Num(a)} }

// Linear returns x ↦ a·x.
func Linear(a float64) Prim { return Prim{KLinear, Num(a)} }

// PowerP returns x ↦ x^a.
func PowerP(a float64) Prim { return Prim{KPower, Num(a)} }

// LogP returns x ↦ log_a(x).
func LogP(a float64) Prim { return Prim{KLog, Num(a)} }

// ExpP returns x ↦ a^x.
func ExpP(a float64) Prim { return Prim{KExp, Num(a)} }

// Identity returns the identity function (linear with a = 1).
func Identity() Prim { return Linear(1) }

func (p Prim) String() string {
	switch p.Kind {
	case KConst:
		return p.A.String()
	case KLinear:
		if isOneCoef(p.A) {
			return "x"
		}
		return p.A.String() + "*x"
	case KPower:
		return "x^" + p.A.String()
	case KLog:
		if v, ok := coefNum(p.A); ok && approxEq(v, E) {
			return "ln(x)"
		}
		return "log_" + p.A.String() + "(x)"
	case KExp:
		return p.A.String() + "^x"
	}
	return "?"
}

// IsIdentity reports whether p is the identity function.
func (p Prim) IsIdentity() bool {
	return (p.Kind == KLinear || p.Kind == KPower) && isOneCoef(p.A)
}

// Eval evaluates a primitive with concrete coefficient at x.
// Symbolic coefficients require EvalWith.
func (p Prim) Eval(x float64) float64 {
	v, err := p.evalWith(x, nil)
	if err != nil {
		return math.NaN()
	}
	return v
}

func (p Prim) evalWith(x float64, bind map[string]float64) (float64, error) {
	a, err := CEval(p.A, bind)
	if err != nil {
		return 0, err
	}
	switch p.Kind {
	case KConst:
		return a, nil
	case KLinear:
		return a * x, nil
	case KPower:
		return math.Pow(x, a), nil
	case KLog:
		return math.Log(x) / math.Log(a), nil
	case KExp:
		return math.Pow(a, x), nil
	}
	return 0, fmt.Errorf("bad prim kind %v", p.Kind)
}

// Chain is a composition of primitive scalar functions, an element of PS∘.
// Prims[0] is applied first (innermost): Chain{f, g, h} denotes h∘g∘f.
// The zero value is the identity function.
type Chain struct {
	Prims []Prim
}

// NewChain builds a chain applying prims in order (first prim innermost).
func NewChain(prims ...Prim) Chain { return Chain{Prims: prims} }

// IdentityChain returns the identity chain.
func IdentityChain() Chain { return Chain{} }

// Len returns the number of primitives, |f| in the paper's notation.
func (c Chain) Len() int { return len(c.Prims) }

// IsIdentity reports whether the chain is the identity function
// syntactically (after dropping identity primitives).
func (c Chain) IsIdentity() bool {
	for _, p := range c.Prims {
		if !p.IsIdentity() {
			return false
		}
	}
	return true
}

// Compose returns g∘c: first apply c, then g.
func (c Chain) Compose(g Chain) Chain {
	out := Chain{Prims: make([]Prim, 0, len(c.Prims)+len(g.Prims))}
	out.Prims = append(out.Prims, c.Prims...)
	out.Prims = append(out.Prims, g.Prims...)
	return out
}

// Then appends a single primitive applied after the chain.
func (c Chain) Then(p Prim) Chain {
	out := Chain{Prims: make([]Prim, 0, len(c.Prims)+1)}
	out.Prims = append(out.Prims, c.Prims...)
	out.Prims = append(out.Prims, p)
	return out
}

// Eval evaluates the chain at x (concrete coefficients only).
func (c Chain) Eval(x float64) float64 {
	v, err := c.EvalWith(x, nil)
	if err != nil {
		return math.NaN()
	}
	return v
}

// EvalWith evaluates the chain at x with parameter bindings.
func (c Chain) EvalWith(x float64, bind map[string]float64) (float64, error) {
	v := x
	for _, p := range c.Prims {
		var err error
		v, err = p.evalWith(v, bind)
		if err != nil {
			return 0, err
		}
	}
	return v, nil
}

// String renders the chain as nested applications, innermost first.
func (c Chain) String() string {
	if len(c.Prims) == 0 {
		return "x"
	}
	parts := make([]string, len(c.Prims))
	for i, p := range c.Prims {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ∘→ ")
}

// Render substitutes inner expressions textually, producing a readable
// formula such as "4*(x^2)" for [power 2, linear 4].
func (c Chain) Render(inner string) string {
	s := inner
	for _, p := range c.Prims {
		switch p.Kind {
		case KConst:
			s = p.A.String()
		case KLinear:
			if isOneCoef(p.A) {
				break
			}
			s = p.A.String() + "*(" + s + ")"
		case KPower:
			s = "(" + s + ")^" + p.A.String()
		case KLog:
			if v, ok := coefNum(p.A); ok && approxEq(v, E) {
				s = "ln(" + s + ")"
			} else {
				s = "log(" + p.A.String() + "," + s + ")"
			}
		case KExp:
			s = p.A.String() + "^(" + s + ")"
		}
	}
	return s
}

// Equal reports equality of two chains after positive-domain
// normalization, with approximate coefficient comparison for concrete
// coefficients and structural comparison for symbolic ones.
func (c Chain) Equal(d Chain) bool {
	a := c.Normalize()
	b := d.Normalize()
	if len(a.Prims) != len(b.Prims) {
		return false
	}
	for i := range a.Prims {
		pa, pb := a.Prims[i], b.Prims[i]
		if pa.Kind != pb.Kind {
			return false
		}
		va, aok := coefNum(pa.A)
		vb, bok := coefNum(pb.A)
		if aok && bok {
			if !approxEq(va, vb) {
				return false
			}
		} else if pa.A.String() != pb.A.String() {
			return false
		}
	}
	return true
}

// Compile builds a fast closure evaluating the chain. Chains with
// symbolic coefficients cannot be compiled (bind them first).
func (c Chain) Compile() (func(float64) float64, error) {
	fns := make([]func(float64) float64, 0, len(c.Prims))
	for _, p := range c.Prims {
		a, ok := coefNum(p.A)
		if !ok {
			return nil, fmt.Errorf("cannot compile symbolic coefficient %v", p.A)
		}
		switch p.Kind {
		case KConst:
			v := a
			fns = append(fns, func(float64) float64 { return v })
		case KLinear:
			v := a
			fns = append(fns, func(x float64) float64 { return v * x })
		case KPower:
			switch a {
			case 1:
				continue
			case 2:
				fns = append(fns, func(x float64) float64 { return x * x })
			case 3:
				fns = append(fns, func(x float64) float64 { return x * x * x })
			case -1:
				fns = append(fns, func(x float64) float64 { return 1 / x })
			case 0.5:
				fns = append(fns, math.Sqrt)
			default:
				v := a
				fns = append(fns, func(x float64) float64 { return math.Pow(x, v) })
			}
		case KLog:
			if approxEq(a, E) {
				fns = append(fns, math.Log)
			} else {
				inv := 1 / math.Log(a)
				fns = append(fns, func(x float64) float64 { return math.Log(x) * inv })
			}
		case KExp:
			if approxEq(a, E) {
				fns = append(fns, math.Exp)
			} else {
				ln := math.Log(a)
				fns = append(fns, func(x float64) float64 { return math.Exp(x * ln) })
			}
		default:
			return nil, fmt.Errorf("cannot compile prim kind %v", p.Kind)
		}
	}
	switch len(fns) {
	case 0:
		return func(x float64) float64 { return x }, nil
	case 1:
		return fns[0], nil
	case 2:
		f0, f1 := fns[0], fns[1]
		return func(x float64) float64 { return f1(f0(x)) }, nil
	default:
		return func(x float64) float64 {
			for _, f := range fns {
				x = f(x)
			}
			return x
		}, nil
	}
}

// Params returns the set of symbolic parameter names used in the chain.
func (c Chain) Params() map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Prims {
		CoefParams(p.A, out)
	}
	return out
}
