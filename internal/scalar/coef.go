// Package scalar implements the primitive scalar-function algebra of the
// SUDAF paper (Table 2): the class PS of primitive scalar functions
// (constants, a·x, x^a, log_a x, a^x), their compositions PS∘ as chains,
// a positive-domain normalization rewrite system, inverses, and the
// injective/even classification of Figure 3.
//
// Coefficients are either concrete numbers or symbolic parameter
// expressions, so the same normalization and sharing machinery serves both
// the runtime decision procedure (concrete states such as Σ4x²) and the
// precomputed symbolic space saggs_l (parameterized states such as
// Σ p₂·x^p₁).
package scalar

import (
	"fmt"
	"math"

	"sudaf/internal/expr"
)

// Coef is a coefficient in a primitive scalar function: either a concrete
// number (Num) or a symbolic expression over named parameters (Param,
// OpCoef). Symbolic coefficients are assumed positive, matching the
// paper's parameter classes (log and exponential bases are >0 and ≠1,
// linear and power coefficients are ≠0) and the positive-domain setting in
// which symbolic sharing is decided (Section 5.3 reduces to |x|).
type Coef interface {
	fmt.Stringer
	isCoef()
}

// Num is a concrete numeric coefficient.
type Num float64

// Param is a named symbolic parameter, e.g. "p1".
type Param string

// OpCoef is a symbolic operation over coefficients.
// Op is one of '*', '/', '^', 'n' (natural log of L; R unused).
type OpCoef struct {
	Op   byte
	L, R Coef
}

func (Num) isCoef()    {}
func (Param) isCoef()  {}
func (OpCoef) isCoef() {}

func (n Num) String() string   { return expr.FormatFloat(float64(n)) }
func (p Param) String() string { return string(p) }

func (o OpCoef) String() string {
	if o.Op == 'n' {
		return "ln(" + o.L.String() + ")"
	}
	return "(" + o.L.String() + string(o.Op) + o.R.String() + ")"
}

// CMul multiplies coefficients, folding constants.
func CMul(a, b Coef) Coef {
	an, aok := a.(Num)
	bn, bok := b.(Num)
	if aok && bok {
		return Num(float64(an) * float64(bn))
	}
	if aok && float64(an) == 1 {
		return b
	}
	if bok && float64(bn) == 1 {
		return a
	}
	return OpCoef{Op: '*', L: a, R: b}
}

// CDiv divides coefficients, folding constants.
func CDiv(a, b Coef) Coef {
	an, aok := a.(Num)
	bn, bok := b.(Num)
	if aok && bok && float64(bn) != 0 {
		return Num(float64(an) / float64(bn))
	}
	if bok && float64(bn) == 1 {
		return a
	}
	return OpCoef{Op: '/', L: a, R: b}
}

// CPow raises a to the b-th power, folding constants when the result is
// well defined.
func CPow(a, b Coef) Coef {
	an, aok := a.(Num)
	bn, bok := b.(Num)
	if aok && bok {
		v := math.Pow(float64(an), float64(bn))
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			return Num(v)
		}
	}
	if bok && float64(bn) == 1 {
		return a
	}
	if aok && float64(an) == 1 {
		return Num(1)
	}
	return OpCoef{Op: '^', L: a, R: b}
}

// CInv is the reciprocal.
func CInv(a Coef) Coef { return CDiv(Num(1), a) }

// CLn is the natural logarithm of a coefficient.
func CLn(a Coef) Coef {
	if an, ok := a.(Num); ok && float64(an) > 0 {
		return Num(math.Log(float64(an)))
	}
	return OpCoef{Op: 'n', L: a}
}

// CLog is log base `base` of x, i.e. ln x / ln base.
func CLog(base, x Coef) Coef { return CDiv(CLn(x), CLn(base)) }

// CEval evaluates a coefficient under parameter bindings. Unbound
// parameters yield an error.
func CEval(c Coef, bind map[string]float64) (float64, error) {
	switch t := c.(type) {
	case Num:
		return float64(t), nil
	case Param:
		v, ok := bind[string(t)]
		if !ok {
			return 0, fmt.Errorf("unbound parameter %q", string(t))
		}
		return v, nil
	case OpCoef:
		l, err := CEval(t.L, bind)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case 'n':
			return math.Log(l), nil
		}
		r, err := CEval(t.R, bind)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		case '^':
			return math.Pow(l, r), nil
		}
	}
	return 0, fmt.Errorf("cannot evaluate coefficient %v", c)
}

// coefNum extracts a concrete value if the coefficient is a Num.
func coefNum(c Coef) (float64, bool) {
	n, ok := c.(Num)
	return float64(n), ok
}

// isOneCoef reports whether c is known to equal 1 (concrete only).
func isOneCoef(c Coef) bool {
	v, ok := coefNum(c)
	return ok && approxEq(v, 1)
}

// isZeroCoef reports whether c is known to equal 0 (concrete only).
func isZeroCoef(c Coef) bool {
	v, ok := coefNum(c)
	return ok && v == 0
}

// approxEq compares floats with a relative tolerance suitable for chained
// coefficient arithmetic.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// CoefParams collects the parameter names appearing in c.
func CoefParams(c Coef, into map[string]bool) {
	switch t := c.(type) {
	case Param:
		into[string(t)] = true
	case OpCoef:
		CoefParams(t.L, into)
		if t.R != nil {
			CoefParams(t.R, into)
		}
	}
}
