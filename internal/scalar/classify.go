package scalar

import "math"

// Props describes a chain's properties over its natural real domain, the
// classification that drives Table 3's case analysis (Figure 3 in the
// paper: every non-constant PS∘ function is either injective or even).
type Props struct {
	// Constant: the function ignores x.
	Constant bool
	// Injective on its natural domain.
	Injective bool
	// Even: f(-x) = f(x) wherever defined.
	Even bool
	// Odd: f(-x) = -f(x) wherever defined.
	Odd bool
	// NeedsPositive: the natural domain is contained in (0, ∞) — a log or
	// fractional power constrains the raw input before any even primitive
	// neutralizes signs.
	NeedsPositive bool
}

// primProps returns the properties of a single primitive on its natural
// domain. Symbolic coefficients are assumed positive and non-degenerate
// (≠0, and ≠1 for bases), per the paper's parameter classes.
type primProps struct {
	constant      bool
	injective     bool
	even          bool
	odd           bool
	needsPositive bool
}

func propsOf(p Prim) primProps {
	switch p.Kind {
	case KConst:
		return primProps{constant: true}
	case KLinear:
		return primProps{injective: true, odd: true}
	case KPower:
		a, ok := coefNum(p.A)
		if !ok {
			// Symbolic exponent: positive-domain use only; injective there.
			return primProps{injective: true, needsPositive: true}
		}
		if a == 0 {
			return primProps{constant: true}
		}
		if a == math.Trunc(a) {
			if int64(a)%2 == 0 {
				return primProps{even: true}
			}
			return primProps{injective: true, odd: true}
		}
		// Fractional power: defined (by math.Pow semantics) for x ≥ 0 only.
		return primProps{injective: true, needsPositive: true}
	case KLog:
		return primProps{injective: true, needsPositive: true}
	case KExp:
		return primProps{injective: true}
	}
	return primProps{}
}

// Classify computes the chain's properties by composing primitive
// properties innermost-first:
//
//   - the chain is constant iff any primitive is constant;
//   - injective iff all primitives are injective;
//   - even iff some primitive is even and all primitives inside it are odd
//     (an odd prefix preserves the symmetry the even primitive collapses);
//   - odd iff all primitives are odd;
//   - needs a positive input iff some primitive needs a positive input and
//     every primitive inside it is odd or injective-on-ℝ (so the
//     constraint propagates to x itself) and no even primitive precedes it.
func (c Chain) Classify() Props {
	n := c.NormalizeReal()
	if len(n.Prims) == 0 {
		return Props{Injective: true, Odd: true}
	}
	res := Props{Injective: true, Odd: true}
	sawEven := false
	for _, p := range n.Prims {
		pp := propsOf(p)
		if pp.constant {
			return Props{Constant: true}
		}
		if !pp.injective {
			res.Injective = false
		}
		if pp.needsPositive && !sawEven {
			res.NeedsPositive = true
		}
		if pp.even && !sawEven {
			if res.Odd { // everything inside the even primitive was odd
				res.Even = true
			}
			sawEven = true
		}
		if !pp.odd {
			res.Odd = false
		}
	}
	if res.Even {
		res.Odd = false
	}
	return res
}

// Inverse returns the inverse chain on the positive domain, where every
// non-constant primitive is injective. It fails for constant primitives
// and numerically-zero coefficients.
func (c Chain) Inverse() (Chain, bool) {
	inv := make([]Prim, 0, len(c.Prims))
	for i := len(c.Prims) - 1; i >= 0; i-- {
		p := c.Prims[i]
		switch p.Kind {
		case KConst:
			return Chain{}, false
		case KLinear:
			if isZeroCoef(p.A) {
				return Chain{}, false
			}
			inv = append(inv, Prim{KLinear, CInv(p.A)})
		case KPower:
			if isZeroCoef(p.A) {
				return Chain{}, false
			}
			inv = append(inv, Prim{KPower, CInv(p.A)})
		case KLog:
			inv = append(inv, Prim{KExp, p.A})
		case KExp:
			inv = append(inv, Prim{KLog, p.A})
		default:
			return Chain{}, false
		}
	}
	return Chain{Prims: inv}, true
}
