// Package sqlparse implements the SQL dialect of the SUDAF engine: SELECT
// statements with comma and JOIN..ON joins, conjunctive/disjunctive WHERE
// predicates, GROUP BY, ORDER BY, LIMIT, and FROM-subqueries. Select
// expressions reuse the internal/expr AST so UDAF calls embed naturally
// in projections (e.g. theta1(ss_list_price, ss_sales_price)).
package sqlparse

import (
	"strings"

	"sudaf/internal/expr"
)

// Stmt is a parsed SELECT statement.
type Stmt struct {
	Select  []SelectItem
	From    []TableRef
	Where   Pred // nil when absent
	GroupBy []string
	OrderBy []OrderItem
	Limit   int // -1 when absent
	// Window is the statement's OVER clause, nil for ordinary queries.
	// One spec governs the whole statement: every aggregate in the
	// projection carries the same frame (the parser rejects mixed OVER
	// clauses).
	Window *WindowSpec
}

// WindowUnit selects what a window frame is measured in.
type WindowUnit int

const (
	// WindowRows frames over physical row counts.
	WindowRows WindowUnit = iota
	// WindowEpochs frames over append epochs: each Append batch is one
	// tick, whatever its row count. Epoch frames only make sense on a
	// live stream, so they are Subscribe-only.
	WindowEpochs
)

func (u WindowUnit) String() string {
	if u == WindowEpochs {
		return "EPOCHS"
	}
	return "ROWS"
}

// WindowSpec is a parsed OVER clause:
//
//	OVER (ROWS n PRECEDING)    sliding, frame = current row + n preceding
//	OVER (ROWS n TUMBLING)     disjoint buckets of n rows
//	OVER (EPOCHS n PRECEDING)  sliding over the last n+1 append batches
//	OVER (EPOCHS n TUMBLING)   disjoint buckets of n append batches
type WindowSpec struct {
	Unit    WindowUnit
	N       int
	Sliding bool // PRECEDING (sliding) vs TUMBLING
}

// Size returns the frame extent in the spec's unit: n+1 for sliding
// (current + n preceding), n for tumbling buckets.
func (w *WindowSpec) Size() int {
	if w.Sliding {
		return w.N + 1
	}
	return w.N
}

// String renders the spec deterministically (it feeds cache
// fingerprints): "ROWS 9 PRECEDING", "EPOCHS 4 TUMBLING".
func (w *WindowSpec) String() string {
	kind := "TUMBLING"
	if w.Sliding {
		kind = "PRECEDING"
	}
	return w.Unit.String() + " " + itoa(w.N) + " " + kind
}

// Equal reports whether two specs describe the same frame.
func (w *WindowSpec) Equal(o *WindowSpec) bool {
	if w == nil || o == nil {
		return w == o
	}
	return w.Unit == o.Unit && w.N == o.N && w.Sliding == o.Sliding
}

// SelectItem is one projection: an expression (possibly containing
// aggregate or UDAF calls) with an optional alias.
type SelectItem struct {
	Expr  expr.Node
	Alias string
}

// OutputName returns the column name for the projection.
func (s SelectItem) OutputName(pos int) string {
	if s.Alias != "" {
		return s.Alias
	}
	if v, ok := s.Expr.(*expr.Var); ok {
		return v.Name
	}
	if c, ok := s.Expr.(*expr.Call); ok {
		return c.Name + "_" + itoa(pos)
	}
	return "expr_" + itoa(pos)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TableRef is a FROM entry: a base table or a subquery with an alias.
type TableRef struct {
	Name  string
	Alias string
	Sub   *Stmt // non-nil for derived tables
}

// RefName is how the table is addressed in the query.
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Pred is a WHERE predicate tree.
type Pred interface{ predNode() }

// And is a conjunction.
type And struct{ L, R Pred }

// Or is a disjunction.
type Or struct{ L, R Pred }

// Cmp is a comparison between two operands.
// Op is one of "=", "!=", "<", "<=", ">", ">=".
type Cmp struct {
	Op   string
	L, R Operand
}

func (*And) predNode() {}
func (*Or) predNode()  {}
func (*Cmp) predNode() {}

// Operand is a comparison side: a column reference or a literal.
type Operand struct {
	Col   string // column name (qualified names keep only the last part)
	IsCol bool
	Num   float64
	IsNum bool
	Str   string // string literal when !IsCol && !IsNum
}

// Conjuncts flattens a predicate into its top-level AND parts.
func Conjuncts(p Pred) []Pred {
	if p == nil {
		return nil
	}
	if a, ok := p.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Pred{p}
}

// PredColumns collects all column names referenced by a predicate.
func PredColumns(p Pred, into map[string]bool) {
	switch t := p.(type) {
	case *And:
		PredColumns(t.L, into)
		PredColumns(t.R, into)
	case *Or:
		PredColumns(t.L, into)
		PredColumns(t.R, into)
	case *Cmp:
		if t.L.IsCol {
			into[t.L.Col] = true
		}
		if t.R.IsCol {
			into[t.R.Col] = true
		}
	}
}

// PredString renders a predicate deterministically (for fingerprints).
func PredString(p Pred) string {
	switch t := p.(type) {
	case nil:
		return ""
	case *And:
		return "(" + PredString(t.L) + " AND " + PredString(t.R) + ")"
	case *Or:
		return "(" + PredString(t.L) + " OR " + PredString(t.R) + ")"
	case *Cmp:
		return operandString(t.L) + t.Op + operandString(t.R)
	}
	return "?"
}

func operandString(o Operand) string {
	switch {
	case o.IsCol:
		return o.Col
	case o.IsNum:
		return expr.FormatFloat(o.Num)
	default:
		return "'" + o.Str + "'"
	}
}

// baseName strips a table qualifier from a column reference.
func baseName(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}
