package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the SQL parser with arbitrary input: any input either
// parses or returns an error — never a panic or runaway recursion. For
// statements that parse, the derived helpers (Conjuncts, PredColumns,
// PredString, OutputName) must hold up on the resulting AST.
// TestParseDepthLimit pins the fix for a fuzzing find: deeply nested
// subqueries, parenthesized expressions or predicate groups used to
// overflow the goroutine stack fatally. The parser now errors out.
func TestParseDepthLimit(t *testing.T) {
	deep := []string{
		strings.Repeat("SELECT a FROM (", 100_000) + "SELECT a FROM t" + strings.Repeat(") s", 100_000),
		"SELECT " + strings.Repeat("(", 100_000) + "a" + strings.Repeat(")", 100_000) + " FROM t",
		"SELECT a FROM t WHERE " + strings.Repeat("(", 100_000) + "a=1" + strings.Repeat(")", 100_000),
		"SELECT " + strings.Repeat("-", 100_000) + "a FROM t",
	}
	for _, src := range deep {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected depth error for %d-byte input", len(src))
		}
	}
	// Moderate nesting stays legal.
	if _, err := Parse(strings.Repeat("SELECT a FROM (", 50) + "SELECT a FROM t" + strings.Repeat(") s", 50)); err != nil {
		t.Errorf("50-deep subquery should parse: %v", err)
	}
}

func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT square_id, qm(internet_traffic) FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 20",
		"SELECT a, sum(b*2) s FROM t WHERE a > 1 AND b < 2 OR c = 'x' GROUP BY a ORDER BY s DESC LIMIT 5",
		"SELECT t1.a, avg(t2.b) FROM t1 JOIN t2 ON t1.k = t2.k GROUP BY t1.a",
		"SELECT avg(p) FROM (SELECT price*2 p FROM sales) t",
		"SELECT count(*) FROM t",
		"select a from t where a >= 1.5e3",
		"SELECT a FROM t1, t2 WHERE t1.k = t2.k",
		// Regression seeds from earlier fuzzing sessions.
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t ORDER BY a LIMIT",
		"SELECT a FROM t WHERE a = 'unterminated",
		strings.Repeat("SELECT a FROM (", 25) + "SELECT a FROM t" + strings.Repeat(") s", 25),
		"SELECT " + strings.Repeat("(", 40) + "a" + strings.Repeat(")", 40) + " FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		for i, it := range stmt.Select {
			_ = it.OutputName(i)
			_ = it.Expr.String()
		}
		cols := map[string]bool{}
		PredColumns(stmt.Where, cols)
		_ = PredString(stmt.Where)
		_ = Conjuncts(stmt.Where)
		for _, tr := range stmt.From {
			_ = tr.RefName()
		}
	})
}
