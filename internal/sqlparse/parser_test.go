package sqlparse

import (
	"strings"
	"testing"

	"sudaf/internal/expr"
)

func parse(t *testing.T, src string) *Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := parse(t, "SELECT a, b FROM t")
	if len(s.Select) != 2 || len(s.From) != 1 || s.From[0].Name != "t" {
		t.Fatalf("bad stmt: %+v", s)
	}
	if s.Select[0].OutputName(0) != "a" {
		t.Errorf("output name = %q", s.Select[0].OutputName(0))
	}
}

func TestParseAggregatesAndUDAFs(t *testing.T) {
	s := parse(t, "SELECT square_id, AVG(internet_traffic), qm(internet_traffic) FROM milan_data GROUP BY square_id")
	if len(s.Select) != 3 {
		t.Fatal("want 3 select items")
	}
	c, ok := s.Select[2].Expr.(*expr.Call)
	if !ok || c.Name != "qm" || len(c.Args) != 1 {
		t.Fatalf("UDAF call not parsed: %v", s.Select[2].Expr)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "square_id" {
		t.Fatalf("group by: %v", s.GroupBy)
	}
}

func TestParseCountStar(t *testing.T) {
	s := parse(t, "SELECT count(*) FROM t")
	c, ok := s.Select[0].Expr.(*expr.Call)
	if !ok || c.Name != "count" || len(c.Args) != 0 {
		t.Fatalf("count(*) mis-parsed: %v", s.Select[0].Expr)
	}
}

func TestParsePaperQ1(t *testing.T) {
	// The motivating example query of the paper (section 2).
	q1 := `SELECT ss_item_sk, d_year, avg(ss_list_price),
	       avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
	FROM store_sales, store, date_dim
	WHERE ss_sold_date_sk = d_date_sk and
	      ss_store_sk = s_store_sk and s_state = 'TN'
	GROUP BY ss_item_sk, d_year;`
	s := parse(t, q1)
	if len(s.From) != 3 {
		t.Fatalf("FROM: %+v", s.From)
	}
	conj := Conjuncts(s.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	theta, ok := s.Select[4].Expr.(*expr.Call)
	if !ok || theta.Name != "theta1" || len(theta.Args) != 2 {
		t.Fatalf("theta1 call: %v", s.Select[4].Expr)
	}
	if len(s.GroupBy) != 2 {
		t.Fatalf("group by: %v", s.GroupBy)
	}
}

func TestParseQueryModel3(t *testing.T) {
	// TPC-DS query 7 shape: multi-way join, OR predicate, ORDER BY, LIMIT.
	q := `SELECT i_item_id, AVG(ss_quantity) agg1, AVG(ss_list_price) agg2
	FROM store_sales, customer_demographics, date_dim, item, promotion
	WHERE ss_sold_date_sk = d_date_sk and
	      ss_item_sk = i_item_sk and
	      ss_cdemo_sk = cd_demo_sk and
	      ss_promo_sk = p_promo_sk and cd_gender = 'M'
	      and cd_marital_status = 'S' and
	      cd_education_status = 'College' and
	      (p_channel_email = 'N' or p_channel_event = 'N')
	      and d_year = 2000
	GROUP BY i_item_id ORDER BY i_item_id LIMIT 100;`
	s := parse(t, q)
	if len(s.From) != 5 {
		t.Fatalf("FROM: %d", len(s.From))
	}
	if s.Limit != 100 {
		t.Fatalf("LIMIT = %d", s.Limit)
	}
	if len(s.OrderBy) != 1 || s.OrderBy[0].Col != "i_item_id" || s.OrderBy[0].Desc {
		t.Fatalf("ORDER BY: %+v", s.OrderBy)
	}
	if s.Select[1].Alias != "agg1" {
		t.Fatalf("implicit alias: %+v", s.Select[1])
	}
	// The OR must survive as a disjunction inside the conjunct list.
	foundOr := false
	for _, c := range Conjuncts(s.Where) {
		if _, ok := c.(*Or); ok {
			foundOr = true
		}
	}
	if !foundOr {
		t.Error("OR predicate lost")
	}
}

func TestParseSubquery(t *testing.T) {
	// RQ1 shape: partial aggregates in a derived table.
	q := `SELECT ss_item_sk, d_year, s2/s1 avg_list_price
	FROM (SELECT ss_item_sk, d_year, count(*) s1, sum(ss_list_price) s2
	      FROM store_sales, store
	      WHERE ss_store_sk = s_store_sk and s_state = 'TN'
	      GROUP BY ss_item_sk, d_year) TEMP`
	s := parse(t, q)
	if len(s.From) != 1 || s.From[0].Sub == nil || s.From[0].Alias != "TEMP" {
		t.Fatalf("subquery: %+v", s.From[0])
	}
	inner := s.From[0].Sub
	if len(inner.Select) != 4 || len(inner.GroupBy) != 2 {
		t.Fatalf("inner: %+v", inner)
	}
}

func TestParseJoinOn(t *testing.T) {
	s := parse(t, "SELECT a FROM t JOIN u ON t_id = u_id WHERE v > 3")
	if len(s.From) != 2 {
		t.Fatalf("FROM: %+v", s.From)
	}
	conj := Conjuncts(s.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
}

func TestParseOperators(t *testing.T) {
	s := parse(t, "SELECT a FROM t WHERE x >= 1 AND y <= 2 AND z != 3 AND w <> 4 AND v < -5")
	conj := Conjuncts(s.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	ops := map[string]bool{}
	for _, c := range conj {
		ops[c.(*Cmp).Op] = true
	}
	for _, want := range []string{">=", "<=", "!=", "<"} {
		if !ops[want] {
			t.Errorf("missing op %s", want)
		}
	}
	last := conj[4].(*Cmp)
	if !last.R.IsNum || last.R.Num != -5 {
		t.Errorf("negative literal: %+v", last.R)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	s := parse(t, "SELECT t.a FROM t WHERE t.b = 1 GROUP BY t.a")
	v, ok := s.Select[0].Expr.(*expr.Var)
	if !ok || v.Name != "a" {
		t.Fatalf("qualified select: %v", s.Select[0].Expr)
	}
	if s.GroupBy[0] != "a" {
		t.Fatalf("qualified group by: %v", s.GroupBy)
	}
	cmp := Conjuncts(s.Where)[0].(*Cmp)
	if cmp.L.Col != "b" {
		t.Fatalf("qualified where: %+v", cmp)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE x",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM (SELECT b FROM u)", // subquery without alias
		"SELECT a FROM t WHERE x = 'unterminated",
		"SELECT a FROM t extra garbage ~",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestPredString(t *testing.T) {
	s := parse(t, "SELECT a FROM t WHERE x = 1 AND (y = 'b' OR z > 2)")
	str := PredString(s.Where)
	if !strings.Contains(str, "OR") || !strings.Contains(str, "'b'") {
		t.Errorf("PredString = %q", str)
	}
	cols := map[string]bool{}
	PredColumns(s.Where, cols)
	if !cols["x"] || !cols["y"] || !cols["z"] {
		t.Errorf("PredColumns = %v", cols)
	}
}

func TestParseComments(t *testing.T) {
	s := parse(t, "SELECT a -- trailing comment\nFROM t")
	if len(s.Select) != 1 || s.From[0].Name != "t" {
		t.Fatal("comment handling broken")
	}
}

func TestParseArithmeticProjection(t *testing.T) {
	// RQ1's terminating projection shape.
	s := parse(t, "SELECT (s1*s5-s4*s2)/(s1*s3-s2^2) theta1 FROM temp")
	if s.Select[0].Alias != "theta1" {
		t.Fatalf("alias: %+v", s.Select[0])
	}
	// Expression must evaluate correctly.
	env := expr.MapEnv{"s1": 2, "s2": 3, "s3": 4, "s4": 5, "s5": 6}
	got, err := expr.Eval(s.Select[0].Expr, env)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0*6 - 5*3) / (2.0*4 - 9)
	if got != want {
		t.Errorf("eval = %v, want %v", got, want)
	}
}

func TestParseOverClause(t *testing.T) {
	s := parse(t, "SELECT sum(x) OVER (ROWS 9 PRECEDING) FROM t")
	if s.Window == nil || s.Window.Unit != WindowRows || s.Window.N != 9 || !s.Window.Sliding {
		t.Fatalf("window: %+v", s.Window)
	}
	if s.Window.Size() != 10 {
		t.Fatalf("Size = %d, want 10", s.Window.Size())
	}
	if s.Window.String() != "ROWS 9 PRECEDING" {
		t.Fatalf("String = %q", s.Window.String())
	}
	c, ok := s.Select[0].Expr.(*expr.Call)
	if !ok || c.Name != "sum" {
		t.Fatalf("call lost: %v", s.Select[0].Expr)
	}

	s = parse(t, "SELECT count(*) over (epochs 4 tumbling) FROM t")
	if s.Window == nil || s.Window.Unit != WindowEpochs || s.Window.N != 4 || s.Window.Sliding {
		t.Fatalf("window: %+v", s.Window)
	}
	if s.Window.Size() != 4 || s.Window.String() != "EPOCHS 4 TUMBLING" {
		t.Fatalf("spec: Size=%d String=%q", s.Window.Size(), s.Window.String())
	}

	// Matching OVER clauses on several aggregates collapse to one spec.
	s = parse(t, "SELECT sum(x) OVER (ROWS 5 PRECEDING), count(*) OVER (ROWS 5 PRECEDING) FROM t")
	if s.Window == nil || s.Window.N != 5 {
		t.Fatalf("window: %+v", s.Window)
	}

	// A subquery's frame must not leak into the outer statement.
	s = parse(t, "SELECT v FROM (SELECT sum(x) OVER (ROWS 2 PRECEDING) v FROM u) q")
	if s.Window != nil {
		t.Fatalf("outer window leaked: %+v", s.Window)
	}
	if s.From[0].Sub.Window == nil || s.From[0].Sub.Window.N != 2 {
		t.Fatalf("inner window lost: %+v", s.From[0].Sub.Window)
	}

	// "over" stays usable as an alias when no paren follows.
	s = parse(t, "SELECT sum(x) over FROM t")
	if s.Select[0].Alias != "over" || s.Window != nil {
		t.Fatalf("alias 'over' broken: %+v window=%+v", s.Select[0], s.Window)
	}
}

func TestParseOverClauseErrors(t *testing.T) {
	bad := []string{
		"SELECT sum(x) OVER (ROWS PRECEDING) FROM t",
		"SELECT sum(x) OVER (ROWS 2.5 PRECEDING) FROM t",
		"SELECT sum(x) OVER (ROWS 3 SLIDING) FROM t",
		"SELECT sum(x) OVER (DAYS 3 PRECEDING) FROM t",
		"SELECT sum(x) OVER (ROWS 0 TUMBLING) FROM t",
		"SELECT sum(x) OVER (ROWS 3 PRECEDING FROM t",
		"SELECT sum(x) OVER (ROWS 3 PRECEDING), count(*) OVER (ROWS 4 PRECEDING) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
