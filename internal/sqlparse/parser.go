package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"sudaf/internal/expr"
)

// Token kinds for the SQL lexer.
type tkind int

const (
	tEOF tkind = iota
	tIdent
	tNum
	tStr
	tOp     // arithmetic and comparison operators
	tLParen // (
	tRParen // )
	tComma
	tStar // bare * in count(*) or SELECT *
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func sqlLex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, tok{tNum, src[start:i], start})
		case c == '\'':
			i++
			start := i
			for i < len(src) && src[i] != '\'' {
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("unterminated string at offset %d", start-1)
			}
			toks = append(toks, tok{tStr, src[start:i], start})
			i++
		case isSQLIdentStart(rune(c)):
			start := i
			for i < len(src) && isSQLIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, tok{tIdent, src[start:i], start})
		case c == '*':
			toks = append(toks, tok{tStar, "*", i})
			i++
		case c == '(':
			toks = append(toks, tok{tLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, tok{tRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, tok{tComma, ",", i})
			i++
		case c == ';':
			i++ // statement terminator, ignored
		case strings.IndexByte("+-/^", c) >= 0:
			toks = append(toks, tok{tOp, string(c), i})
			i++
		case c == '=':
			toks = append(toks, tok{tOp, "=", i})
			i++
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
				op := "<="
				if src[i+1] == '>' {
					op = "!="
				}
				toks = append(toks, tok{tOp, op, i})
				i += 2
			} else {
				toks = append(toks, tok{tOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, tok{tOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, tok{tOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, tok{tOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("unexpected '!' at offset %d", i)
			}
		default:
			return nil, fmt.Errorf("unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, tok{tEOF, "", len(src)})
	return toks, nil
}

func isSQLIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isSQLIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type sqlParser struct {
	toks  []tok
	i     int
	depth int
	// window collects the OVER clause of the SELECT currently being
	// parsed; parseSelect save/restores it around subquery recursion.
	window *WindowSpec
}

// maxParseDepth bounds statement nesting — subqueries, parenthesized
// expressions and predicate groups all recurse per level, and unbounded
// input depth would overflow the goroutine stack unrecoverably.
const maxParseDepth = 500

func (p *sqlParser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("statement nested deeper than %d levels", maxParseDepth)
	}
	return nil
}

// Parse parses a SELECT statement.
func Parse(src string) (*Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("unexpected trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

func (p *sqlParser) peek() tok { return p.toks[p.i] }

func (p *sqlParser) next() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

// kw checks for a (case-insensitive) keyword without consuming.
func (p *sqlParser) kw(word string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

func (p *sqlParser) eatKw(word string) bool {
	if p.kw(word) {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(word string) error {
	if !p.eatKw(word) {
		return fmt.Errorf("expected %s at offset %d, found %q", strings.ToUpper(word), p.peek().pos, p.peek().text)
	}
	return nil
}

var reservedKw = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "limit": true, "and": true, "or": true, "as": true,
	"join": true, "on": true, "asc": true, "desc": true,
}

func (p *sqlParser) parseSelect() (*Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	saved := p.window
	p.window = nil
	defer func() { p.window = saved }()
	stmt := &Stmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, first)
	for {
		if p.peek().kind == tComma {
			p.next()
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		if p.eatKw("join") {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			cond, err := p.parseCmp()
			if err != nil {
				return nil, err
			}
			stmt.Where = andPred(stmt.Where, cond)
			continue
		}
		break
	}
	if p.eatKw("where") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = andPred(stmt.Where, pred)
	}
	if p.eatKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.kind != tIdent {
				return nil, fmt.Errorf("expected column in GROUP BY at offset %d", t.pos)
			}
			p.next()
			stmt.GroupBy = append(stmt.GroupBy, baseName(t.text))
			if p.peek().kind == tComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.eatKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.kind != tIdent {
				return nil, fmt.Errorf("expected column in ORDER BY at offset %d", t.pos)
			}
			p.next()
			item := OrderItem{Col: baseName(t.text)}
			if p.eatKw("desc") {
				item.Desc = true
			} else {
				p.eatKw("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.peek().kind == tComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.eatKw("limit") {
		t := p.peek()
		if t.kind != tNum {
			return nil, fmt.Errorf("expected number after LIMIT at offset %d", t.pos)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("bad LIMIT %q: %v", t.text, err)
		}
		stmt.Limit = n
	}
	stmt.Window = p.window
	return stmt, nil
}

// parseOverClause parses the frame after an aggregate call's OVER:
// ( ROWS|EPOCHS <n> PRECEDING|TUMBLING ). Every OVER clause in one
// statement must describe the same frame.
func (p *sqlParser) parseOverClause() error {
	if p.peek().kind != tLParen {
		return fmt.Errorf("expected ( after OVER at offset %d", p.peek().pos)
	}
	p.next()
	spec := &WindowSpec{}
	switch {
	case p.eatKw("rows"):
		spec.Unit = WindowRows
	case p.eatKw("epochs"):
		spec.Unit = WindowEpochs
	default:
		return fmt.Errorf("expected ROWS or EPOCHS in OVER clause at offset %d", p.peek().pos)
	}
	t := p.peek()
	if t.kind != tNum {
		return fmt.Errorf("expected frame size in OVER clause at offset %d", t.pos)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return fmt.Errorf("window frame size must be an integer, got %q", t.text)
	}
	spec.N = n
	switch {
	case p.eatKw("preceding"):
		spec.Sliding = true
		if n < 0 {
			return fmt.Errorf("OVER (%s n PRECEDING) requires n >= 0, got %d", spec.Unit, n)
		}
	case p.eatKw("tumbling"):
		if n < 1 {
			return fmt.Errorf("OVER (%s n TUMBLING) requires n >= 1, got %d", spec.Unit, n)
		}
	default:
		return fmt.Errorf("expected PRECEDING or TUMBLING in OVER clause at offset %d", p.peek().pos)
	}
	if p.peek().kind != tRParen {
		return fmt.Errorf("expected ) after OVER clause at offset %d", p.peek().pos)
	}
	p.next()
	if p.window != nil && !p.window.Equal(spec) {
		return fmt.Errorf("conflicting OVER clauses: %s vs %s (one frame per statement)", p.window, spec)
	}
	p.window = spec
	return nil
}

// OrderItem is an ORDER BY entry.
type OrderItem struct {
	Col  string
	Desc bool
}

func andPred(a, b Pred) Pred {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &And{L: a, R: b}
}

func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKw("as") {
		t := p.peek()
		if t.kind != tIdent {
			return item, fmt.Errorf("expected alias after AS at offset %d", t.pos)
		}
		p.next()
		item.Alias = t.text
		return item, nil
	}
	// Implicit alias: a bare identifier that is not a keyword.
	if t := p.peek(); t.kind == tIdent && !reservedKw[strings.ToLower(t.text)] {
		p.next()
		item.Alias = t.text
	}
	return item, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind == tLParen {
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if p.peek().kind != tRParen {
			return TableRef{}, fmt.Errorf("expected ) after subquery at offset %d", p.peek().pos)
		}
		p.next()
		ref := TableRef{Sub: sub}
		p.eatKw("as")
		if a := p.peek(); a.kind == tIdent && !reservedKw[strings.ToLower(a.text)] {
			p.next()
			ref.Alias = a.text
		} else {
			return TableRef{}, fmt.Errorf("subquery requires an alias at offset %d", p.peek().pos)
		}
		return ref, nil
	}
	if t.kind != tIdent {
		return TableRef{}, fmt.Errorf("expected table name at offset %d, found %q", t.pos, t.text)
	}
	p.next()
	ref := TableRef{Name: t.text}
	p.eatKw("as")
	if a := p.peek(); a.kind == tIdent && !reservedKw[strings.ToLower(a.text)] {
		p.next()
		ref.Alias = a.text
	}
	return ref, nil
}

// ---- predicates ----

func (p *sqlParser) parseOr() (Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Pred, error) {
	left, err := p.parsePredAtom()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		right, err := p.parsePredAtom()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parsePredAtom() (Pred, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if p.peek().kind == tLParen {
		p.next()
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tRParen {
			return nil, fmt.Errorf("expected ) at offset %d", p.peek().pos)
		}
		p.next()
		return pred, nil
	}
	return p.parseCmp()
}

func (p *sqlParser) parseCmp() (Pred, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tOp || !isCmpOp(t.text) {
		return nil, fmt.Errorf("expected comparison operator at offset %d, found %q", t.pos, t.text)
	}
	p.next()
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: t.text, L: l, R: r}, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *sqlParser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tIdent:
		p.next()
		return Operand{Col: baseName(t.text), IsCol: true}, nil
	case tNum:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad number %q: %v", t.text, err)
		}
		return Operand{Num: v, IsNum: true}, nil
	case tStr:
		p.next()
		return Operand{Str: t.text}, nil
	case tOp:
		if t.text == "-" {
			p.next()
			n := p.peek()
			if n.kind != tNum {
				return Operand{}, fmt.Errorf("expected number after '-' at offset %d", n.pos)
			}
			p.next()
			v, err := strconv.ParseFloat(n.text, 64)
			if err != nil {
				return Operand{}, fmt.Errorf("bad number %q: %v", n.text, err)
			}
			return Operand{Num: -v, IsNum: true}, nil
		}
	}
	return Operand{}, fmt.Errorf("expected operand at offset %d, found %q", t.pos, t.text)
}

// ---- select expressions (reusing expr.Node) ----

// parseExpr parses an arithmetic expression over columns, literals and
// function calls (scalar, aggregate or UDAF — resolution happens in the
// planner). count(*) and count() both parse to the count call.
func (p *sqlParser) parseExpr() (expr.Node, error) {
	return p.parseAddE()
}

func (p *sqlParser) parseAddE() (expr.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	left, err := p.parseMulE()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMulE()
			if err != nil {
				return nil, err
			}
			left = &expr.Bin{Op: t.text[0], L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *sqlParser) parseMulE() (expr.Node, error) {
	left, err := p.parseUnaryE()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if (t.kind == tOp && t.text == "/") || t.kind == tStar {
			p.next()
			right, err := p.parseUnaryE()
			if err != nil {
				return nil, err
			}
			op := byte('*')
			if t.text == "/" {
				op = '/'
			}
			left = &expr.Bin{Op: op, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *sqlParser) parseUnaryE() (expr.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	t := p.peek()
	if t.kind == tOp && t.text == "-" {
		p.next()
		x, err := p.parseUnaryE()
		if err != nil {
			return nil, err
		}
		return &expr.Neg{X: x}, nil
	}
	return p.parsePowE()
}

func (p *sqlParser) parsePowE() (expr.Node, error) {
	base, err := p.parsePrimaryE()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tOp && t.text == "^" {
		p.next()
		exp, err := p.parseUnaryE()
		if err != nil {
			return nil, err
		}
		return &expr.Bin{Op: '^', L: base, R: exp}, nil
	}
	return base, nil
}

func (p *sqlParser) parsePrimaryE() (expr.Node, error) {
	t := p.peek()
	switch t.kind {
	case tNum:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", t.text, err)
		}
		return &expr.Num{Val: v}, nil
	case tIdent:
		p.next()
		name := t.text
		if p.peek().kind == tLParen {
			p.next()
			lower := strings.ToLower(name)
			var args []expr.Node
			if p.peek().kind == tStar {
				// count(*)
				p.next()
			} else if p.peek().kind != tRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tComma {
						p.next()
						continue
					}
					break
				}
			}
			if p.peek().kind != tRParen {
				return nil, fmt.Errorf("expected ) at offset %d", p.peek().pos)
			}
			p.next()
			// OVER (...) directly after a call attaches a window frame
			// to the statement. Lookahead for the paren so "over" stays
			// usable as an alias.
			if p.kw("over") && p.toks[p.i+1].kind == tLParen {
				p.next()
				if err := p.parseOverClause(); err != nil {
					return nil, err
				}
			}
			return &expr.Call{Name: lower, Args: args}, nil
		}
		return &expr.Var{Name: baseName(name)}, nil
	case tLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tRParen {
			return nil, fmt.Errorf("expected ) at offset %d", p.peek().pos)
		}
		p.next()
		return e, nil
	}
	return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
}
