package window

import (
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/canonical"
)

// refFold is the test's independent reference: the executor's cold
// chunked fold over the window contents in chronological order. Every
// Value() — fast path or fallback — must match it bit-for-bit.
func refFold(st canonical.State, chunk int, vals []float64) float64 {
	update := func(acc, v float64) float64 {
		switch st.Op {
		case canonical.OpProd:
			return acc * v
		case canonical.OpMin:
			if v < acc || v != v {
				return v
			}
			return acc
		case canonical.OpMax:
			if v > acc || v != v {
				return v
			}
			return acc
		default:
			return acc + v
		}
	}
	acc := st.MergeIdentity()
	cacc := st.MergeIdentity()
	n := 0
	for _, v := range vals {
		cacc = update(cacc, v)
		n++
		if chunk > 0 && n == chunk {
			acc = st.Merge(acc, cacc)
			cacc = st.MergeIdentity()
			n = 0
		}
	}
	if n > 0 {
		acc = st.Merge(acc, cacc)
	}
	return acc
}

func ops() []canonical.State {
	return []canonical.State{
		{Op: canonical.OpCount},
		{Op: canonical.OpSum},
		{Op: canonical.OpProd},
		{Op: canonical.OpMin},
		{Op: canonical.OpMax},
	}
}

// exactVal draws a value from the op's association-free class, so the
// O(1) two-stacks path stays eligible.
func exactVal(st canonical.State, rng *rand.Rand) float64 {
	switch st.Op {
	case canonical.OpCount:
		return 1
	case canonical.OpProd:
		return [3]float64{0, 1, -1}[rng.Intn(3)]
	case canonical.OpMin, canonical.OpMax:
		return float64(rng.Intn(2001) - 1000) // anything but -0.0
	default:
		return float64(rng.Intn(1<<20)) - float64(1<<19)
	}
}

// nastyVal draws from the full adversarial float domain: NaN, ±Inf,
// -0.0, fractional, huge and tiny values.
func nastyVal(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return math.Copysign(0, -1)
	case 4:
		return rng.NormFloat64() * 1e18
	case 5:
		return rng.NormFloat64() * 1e-18
	case 6:
		return float64(1<<21) + 0.5
	default:
		return rng.NormFloat64()
	}
}

// TestFoldInvariance is the two-stacks ⊕-invariance property test:
// random interleavings of Push and Evict across every state class,
// chunk size and value regime must keep Value() bit-identical to the
// reference chunked fold of the window's chronological contents.
func TestFoldInvariance(t *testing.T) {
	chunks := []int{0, 1, 3, 7, 64}
	for _, st := range ops() {
		for _, chunk := range chunks {
			for _, nasty := range []bool{false, true} {
				rng := rand.New(rand.NewSource(int64(chunk)*100 + int64(st.Op)*10 + 1))
				f := New(st, chunk)
				var mirror []float64
				for step := 0; step < 4000; step++ {
					if len(mirror) > 0 && rng.Intn(3) == 0 {
						f.Evict()
						mirror = mirror[1:]
					} else {
						var v float64
						if nasty && st.Op != canonical.OpCount {
							v = nastyVal(rng)
						} else {
							v = exactVal(st, rng)
						}
						f.Push(v)
						mirror = append(mirror, v)
					}
					got := f.Value()
					want := refFold(st, chunk, mirror)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s chunk=%d nasty=%v step=%d len=%d: Value=%x want %x (%v vs %v)",
							st.Op, chunk, nasty, step, len(mirror),
							math.Float64bits(got), math.Float64bits(want), got, want)
					}
					if f.Len() != len(mirror) {
						t.Fatalf("%s: Len=%d want %d", st.Op, f.Len(), len(mirror))
					}
				}
			}
		}
	}
}

// TestFastPathEligibility pins the exactness gate: association-free
// values ride the O(1) path, anything else falls back, and evicting
// the violating value restores eligibility.
func TestFastPathEligibility(t *testing.T) {
	for _, st := range ops() {
		rng := rand.New(rand.NewSource(7))
		f := New(st, 64)
		for i := 0; i < 200; i++ {
			f.Push(exactVal(st, rng))
			f.Value()
		}
		if _, fast, refolds := f.Stats(); fast != 200 || refolds != 0 {
			t.Fatalf("%s exact-only: fast=%d refolds=%d, want 200/0", st.Op, fast, refolds)
		}
	}

	// A fractional value poisons a sum window until it leaves.
	st := canonical.State{Op: canonical.OpSum}
	f := New(st, 64)
	f.Push(1)
	f.Push(0.5)
	f.Value()
	if _, _, refolds := f.Stats(); refolds != 1 {
		t.Fatalf("fractional sum value should force a refold, got %d", refolds)
	}
	f.Evict() // evicts 1; 0.5 still present
	f.Value()
	if _, _, refolds := f.Stats(); refolds != 2 {
		t.Fatalf("violation should persist until evicted, refolds=%d", refolds)
	}
	f.Evict() // evicts 0.5
	f.Push(2)
	f.Value()
	if _, fast, refolds := f.Stats(); refolds != 2 || fast != 1 {
		t.Fatalf("after evicting violation: fast=%d refolds=%d, want 1/2", fast, refolds)
	}

	// -0.0 poisons a min window (compare-update vs math.Min ±0 ties).
	fm := New(canonical.State{Op: canonical.OpMin}, 64)
	fm.Push(math.Copysign(0, -1))
	fm.Value()
	if _, _, refolds := fm.Stats(); refolds != 1 {
		t.Fatalf("-0.0 min value should force a refold, got %d", refolds)
	}
}

func TestResetAndEmpty(t *testing.T) {
	st := canonical.State{Op: canonical.OpMin}
	f := New(st, 64)
	f.Evict() // empty evict is a no-op
	if got := f.Value(); !math.IsInf(got, 1) {
		t.Fatalf("empty min window: got %v, want +Inf identity", got)
	}
	f.Push(3)
	f.Push(1)
	f.Evict()
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Reset: Len=%d, want 0", f.Len())
	}
	if got := f.Value(); !math.IsInf(got, 1) {
		t.Fatalf("reset min window: got %v, want +Inf identity", got)
	}
	f.Push(5)
	if got := f.Value(); got != 5 {
		t.Fatalf("after reset: got %v, want 5", got)
	}
}
