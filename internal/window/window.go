// Package window implements sliding-window aggregation over canonical
// aggregation states: the classic two-stacks-of-⊕ queue (Okasaki-style
// functional queue specialized to a monoid fold), which supports Push
// (newest row enters), Evict (oldest row leaves) and Value (fold of the
// current window) in O(1) amortized time using only the state's ⊕ —
// no inverse required, so it covers min/max exactly like sum/prod.
//
// Because the engine pins query answers bitwise (windowed results must
// be bit-identical to a cold query over the same row range, and cold
// queries fold morsel partials in a fixed chunked order), the O(1)
// two-stacks value is only used when it is provably bit-equal to the
// engine's chunked fold for the values seen so far — i.e. when every
// value in the window is association-free under ⊕ (see exact below).
// Otherwise Value falls back to a chunked in-order refold that
// replicates the executor's morsel merge structure exactly. The fold
// tracks how often each path ran (FastValues / Refolds) so callers can
// export the split as metrics.
package window

import (
	"math"

	"sudaf/internal/canonical"
)

// Fold is a sliding-window ⊕-fold over one canonical aggregation state.
// Values pushed are the state's per-tuple translations F(base(row)) —
// the caller applies the scalar chain; the fold only sees float64s.
//
// A Fold is not safe for concurrent use; each subscription/query owns
// its own.
type Fold struct {
	st    canonical.State
	chunk int // executor morsel size the fallback refold replicates

	// Back stack: receives pushes. backFold is the running ⊕ of
	// backVals in push order.
	backVals []float64
	backFold float64

	// Front stack: receives flips; top (end of slice) is the oldest
	// row. frontFolds[i] is the ⊕ of frontVals[i..0] in chronological
	// order (frontVals[i] first), so the top fold covers the whole
	// front.
	frontVals  []float64
	frontFolds []float64

	// violations counts window values that fail the association-free
	// predicate; the O(1) path is valid iff it is zero.
	violations int

	evicts     int64
	fastValues int64
	refolds    int64
}

// New creates a Fold over st. chunk is the executor's morsel row count
// (exec.MorselRows); the fallback refold merges chunk-sized partials in
// order to match cold-query bit patterns. chunk <= 0 disables chunking
// (one flat fold).
func New(st canonical.State, chunk int) *Fold {
	f := &Fold{st: st, chunk: chunk}
	f.backFold = st.MergeIdentity()
	return f
}

// exact reports whether v is association-free under the state's ⊕: any
// parenthesization of a fold containing only such values yields the
// same bits, so the two-stacks value equals the executor's chunked
// fold.
//
//   - count: every value is the constant 1 — always exact.
//   - min/max: comparisons are order-insensitive except that the
//     executor's in-morsel kernels use first-wins compare-update while
//     cross-morsel merges use math.Min/math.Max, which disagree on the
//     sign of a ±0 tie and on NaN payload bits (compare-update keeps
//     the operand's bits, math.Min returns the canonical NaN). Exact
//     iff v is neither -0.0 nor NaN.
//   - sum: float addition associates exactly while every partial sum is
//     an exactly-representable integer. Exact iff v is an integer with
//     |v| < 2^20 (any window below ~2^32 rows then keeps all partials
//     under 2^52).
//   - prod: sign is an XOR and the magnitude stays in {0,1}, both
//     association-free. Exact iff v ∈ {0, 1, -1}.
func (f *Fold) exact(v float64) bool {
	switch f.st.Op {
	case canonical.OpCount:
		return true
	case canonical.OpMin, canonical.OpMax:
		return v == v && !(v == 0 && math.Signbit(v))
	case canonical.OpProd:
		return v == 0 || v == 1 || v == -1
	default: // OpSum
		return v == math.Trunc(v) && math.Abs(v) < float64(1<<20)
	}
}

// update replicates the executor's in-morsel kernel accumulate step:
// += for Σ/count, *= for Π, first-wins compare-update (NaN-sticky) for
// min/max.
func (f *Fold) update(acc, v float64) float64 {
	switch f.st.Op {
	case canonical.OpProd:
		return acc * v
	case canonical.OpMin:
		if v < acc || v != v {
			return v
		}
		return acc
	case canonical.OpMax:
		if v > acc || v != v {
			return v
		}
		return acc
	default:
		return acc + v
	}
}

// Push appends the newest row's translated value to the window.
func (f *Fold) Push(v float64) {
	f.backVals = append(f.backVals, v)
	f.backFold = f.st.Merge(f.backFold, v)
	if !f.exact(v) {
		f.violations++
	}
}

// Evict removes the oldest row from the window. It is a no-op on an
// empty window.
func (f *Fold) Evict() {
	if len(f.frontVals) == 0 {
		if len(f.backVals) == 0 {
			return
		}
		f.flip()
	}
	top := len(f.frontVals) - 1
	v := f.frontVals[top]
	f.frontVals = f.frontVals[:top]
	f.frontFolds = f.frontFolds[:top]
	if !f.exact(v) {
		f.violations--
	}
	f.evicts++
}

// flip moves the whole back stack onto the front stack, computing the
// front's cumulative folds; each row is moved at most once between the
// stacks, so eviction stays O(1) amortized.
func (f *Fold) flip() {
	acc := f.st.MergeIdentity()
	for i := len(f.backVals) - 1; i >= 0; i-- {
		v := f.backVals[i]
		acc = f.st.Merge(v, acc)
		f.frontVals = append(f.frontVals, v)
		f.frontFolds = append(f.frontFolds, acc)
	}
	f.backVals = f.backVals[:0]
	f.backFold = f.st.MergeIdentity()
}

// Len returns the number of rows currently in the window.
func (f *Fold) Len() int { return len(f.frontVals) + len(f.backVals) }

// Value returns the ⊕-fold of the current window, bit-identical to the
// engine's cold chunked fold over the same rows: the O(1) two-stacks
// combination when every window value is association-free, a chunked
// in-order refold otherwise. An empty window yields the merge identity
// (matching a cold aggregate over zero rows).
func (f *Fold) Value() float64 {
	if f.violations == 0 {
		f.fastValues++
		if len(f.frontVals) == 0 {
			return f.backFold
		}
		return f.st.Merge(f.frontFolds[len(f.frontFolds)-1], f.backFold)
	}
	f.refolds++
	return f.refold()
}

// refold recomputes the window fold in chronological order with the
// executor's exact morsel structure: chunk-sized partials accumulated
// with kernel update semantics, merged left-to-right via the state's ⊕
// starting from the merge identity — the same shape exec.aggregate
// produces for a cold scan whose row 0 is the window start.
func (f *Fold) refold() float64 {
	acc := f.st.MergeIdentity()
	cacc := f.st.MergeIdentity()
	n := 0
	emit := func(v float64) {
		cacc = f.update(cacc, v)
		n++
		if f.chunk > 0 && n == f.chunk {
			acc = f.st.Merge(acc, cacc)
			cacc = f.st.MergeIdentity()
			n = 0
		}
	}
	for i := len(f.frontVals) - 1; i >= 0; i-- {
		emit(f.frontVals[i])
	}
	for _, v := range f.backVals {
		emit(v)
	}
	if n > 0 {
		acc = f.st.Merge(acc, cacc)
	}
	return acc
}

// Reset empties the window (tumbling-bucket reuse) without releasing
// the stacks' capacity.
func (f *Fold) Reset() {
	f.backVals = f.backVals[:0]
	f.frontVals = f.frontVals[:0]
	f.frontFolds = f.frontFolds[:0]
	f.backFold = f.st.MergeIdentity()
	f.violations = 0
}

// Stats returns the fold's lifetime counters: rows evicted, Value calls
// served by the O(1) two-stacks path, and Value calls that fell back to
// a chunked refold.
func (f *Fold) Stats() (evicts, fastValues, refolds int64) {
	return f.evicts, f.fastValues, f.refolds
}
