package core

import (
	"fmt"

	"sudaf/internal/obs"
	"sudaf/internal/storage"
)

// registerMetrics installs every session counter into the metrics
// registry as reader-backed samples, so the hot path bumps nothing but
// the atomics it already maintains and scrape time pays the read.
//
// The exported families (all documented in docs/OBSERVABILITY.md):
//
//	sudaf_queries_started_total / _completed_total / _failed_total / _queued_total
//	sudaf_rows_scanned_total
//	sudaf_query_seconds_total, sudaf_queue_wait_seconds_total
//	sudaf_query_duration_seconds            (histogram)
//	sudaf_engine_drain_seconds
//	sudaf_cache_lookups_total, sudaf_cache_hits_total{kind=...},
//	sudaf_cache_misses_total, sudaf_cache_evictions_total,
//	sudaf_cache_corruptions_total
//	sudaf_ingest_appends_total, sudaf_ingest_rows_total,
//	sudaf_ingest_entries_migrated_total / _invalidated_total,
//	sudaf_ingest_states_maintained_total,
//	sudaf_ingest_views_maintained_total / _invalidated_total
//	sudaf_shard_queries_total, sudaf_shard_fallbacks_total,
//	sudaf_shard_scans_total, sudaf_shard_full_hits_total,
//	sudaf_shard_state_hits_total, sudaf_shard_rows_scanned_total,
//	sudaf_shard_appends_routed_total, sudaf_shard_entries_maintained_total
//	sudaf_storage_encoded_segments_total, sudaf_storage_run_folds_total,
//	sudaf_storage_saves_total, sudaf_storage_tables_loaded_total,
//	sudaf_storage_cache_entries_loaded_total
//	sudaf_window_queries_total, sudaf_window_emits_total,
//	sudaf_window_rows_evicted_total, sudaf_window_fast_folds_total,
//	sudaf_window_refolds_total, sudaf_window_subscriptions_total
func (s *Session) registerMetrics(label string) {
	lbl := ""
	if label != "" {
		lbl = fmt.Sprintf("engine=%q", label)
	}
	withKind := func(kind string) string {
		pair := fmt.Sprintf("kind=%q", kind)
		if lbl == "" {
			return pair
		}
		return lbl + "," + pair
	}
	r := s.metrics

	// Query path.
	r.CounterFunc("sudaf_queries_started_total", lbl,
		"Queries admitted to execution.", s.queriesStarted.Load)
	r.CounterFunc("sudaf_queries_completed_total", lbl,
		"Queries that returned a result.", s.queriesCompleted.Load)
	r.CounterFunc("sudaf_queries_failed_total", lbl,
		"Queries that returned an error (including cancellation).", s.queriesFailed.Load)
	r.CounterFunc("sudaf_queries_queued_total", lbl,
		"Queries that waited for an admission slot.", s.queriesQueued.Load)
	r.CounterFunc("sudaf_rows_scanned_total", lbl,
		"Joined base rows read across all queries.", s.rowsScanned.Load)
	r.GaugeFunc("sudaf_query_seconds_total", lbl,
		"Total query wall time in seconds (admission wait excluded).",
		func() float64 { return float64(s.queryNanos.Load()) / 1e9 })
	r.GaugeFunc("sudaf_queue_wait_seconds_total", lbl,
		"Total admission-queue wait in seconds.",
		func() float64 { return float64(s.queueNanos.Load()) / 1e9 })
	s.queryHist = r.Histogram("sudaf_query_duration_seconds", lbl,
		"Per-query wall time distribution in seconds.", nil)
	r.GaugeFunc("sudaf_engine_drain_seconds", lbl,
		"How long the completed Close drain took (0 until the engine is closed).",
		func() float64 { return s.DrainDuration().Seconds() })

	// State cache. Readers go through the current cache snapshot, so a
	// ClearCache resets these series along with the cache itself.
	r.CounterFunc("sudaf_cache_lookups_total", lbl,
		"State lookup attempts against the dynamic cache.",
		func() int64 { return s.CacheStats().Lookups })
	r.CounterFunc("sudaf_cache_hits_total", withKind("exact"),
		"Cache hits by kind: exact key, Theorem 4.1 shared, sign-split.",
		func() int64 { return s.CacheStats().ExactHits })
	r.CounterFunc("sudaf_cache_hits_total", withKind("shared"),
		"Cache hits by kind: exact key, Theorem 4.1 shared, sign-split.",
		func() int64 { return s.CacheStats().SharedHits })
	r.CounterFunc("sudaf_cache_hits_total", withKind("sign"),
		"Cache hits by kind: exact key, Theorem 4.1 shared, sign-split.",
		func() int64 { return s.CacheStats().SignHits })
	r.CounterFunc("sudaf_cache_misses_total", lbl,
		"State lookups that missed.",
		func() int64 { return s.CacheStats().Misses })
	r.CounterFunc("sudaf_cache_evictions_total", lbl,
		"Cache entries evicted under the byte budget.",
		func() int64 { return s.CacheStats().Evictions })
	r.CounterFunc("sudaf_cache_corruptions_total", lbl,
		"Cached states dropped after failing their integrity checksum.",
		func() int64 { return s.CacheStats().Corruptions })

	// Ingestion.
	r.CounterFunc("sudaf_ingest_appends_total", lbl,
		"Successful append batches.", s.appends.Load)
	r.CounterFunc("sudaf_ingest_rows_total", lbl,
		"Rows ingested across all appends.", s.rowsAppended.Load)
	r.CounterFunc("sudaf_ingest_entries_migrated_total", lbl,
		"Cache entries delta-maintained across appends.", s.entriesMigrated.Load)
	r.CounterFunc("sudaf_ingest_states_maintained_total", lbl,
		"Cached states delta-folded across appends.", s.statesMaintained.Load)
	r.CounterFunc("sudaf_ingest_entries_invalidated_total", lbl,
		"Cache entries dropped because they could not be delta-maintained.", s.entriesInvalidated.Load)
	r.CounterFunc("sudaf_ingest_views_maintained_total", lbl,
		"Materialized views delta-folded across appends.", s.viewsMaintained.Load)
	r.CounterFunc("sudaf_ingest_views_invalidated_total", lbl,
		"Materialized views dropped during appends.", s.viewsInvalidated.Load)

	// Scatter-gather sharding (all zero on an unsharded engine). Readers
	// go through ShardStats, which sums the worker atomics at scrape time.
	r.CounterFunc("sudaf_shard_queries_total", lbl,
		"Queries executed scatter-gather across the shard workers.",
		func() int64 { return s.ShardStats().Queries })
	r.CounterFunc("sudaf_shard_fallbacks_total", lbl,
		"Shard-eligible queries that ran single-engine instead (epoch mismatch, view rewrite, subquery temp).",
		func() int64 { return s.ShardStats().Fallbacks })
	r.CounterFunc("sudaf_shard_scans_total", lbl,
		"Per-shard worker scans, including full cache hits.",
		func() int64 { return s.ShardStats().Scans })
	r.CounterFunc("sudaf_shard_full_hits_total", lbl,
		"Worker scans answered entirely from the worker's private cache.",
		func() int64 { return s.ShardStats().FullHits })
	r.CounterFunc("sudaf_shard_state_hits_total", lbl,
		"Individual aggregation states served from worker caches.",
		func() int64 { return s.ShardStats().StateHits })
	r.CounterFunc("sudaf_shard_rows_scanned_total", lbl,
		"Base rows read by per-shard partial recomputations.",
		func() int64 { return s.ShardStats().RowsScanned })
	r.CounterFunc("sudaf_shard_appends_routed_total", lbl,
		"Append batches routed to their owning shard.",
		func() int64 { return s.ShardStats().AppendsRouted })
	r.CounterFunc("sudaf_shard_entries_maintained_total", lbl,
		"Worker-cache entries ⊕-maintained in place across routed appends.",
		func() int64 { return s.ShardStats().EntriesMaintained })

	// Storage engine v2: segment encodings, run-folds and persistence.
	// The first two read process-wide storage counters (encodings are
	// built by tables, not sessions); the rest are per-session.
	r.CounterFunc("sudaf_storage_encoded_segments_total", lbl,
		"Column segments given an acceleration encoding (RLE or FOR) at seal time.",
		storage.EncodedSegmentsBuilt)
	r.CounterFunc("sudaf_storage_run_folds_total", lbl,
		"Morsel aggregation tasks answered by folding encoded runs instead of scanning dense values.",
		storage.RunFoldsExecuted)
	r.CounterFunc("sudaf_storage_saves_total", lbl,
		"Successful Session.Save persistence snapshots.", s.persistSaves.Load)
	r.CounterFunc("sudaf_storage_tables_loaded_total", lbl,
		"Tables restored from DataDir segment files at session start.", s.persistTablesLoaded.Load)
	r.CounterFunc("sudaf_storage_cache_entries_loaded_total", lbl,
		"State-cache entries restored from the DataDir snapshot at session start.", s.persistEntriesLoaded.Load)

	// Sliding-window streaming: one-shot OVER queries and Subscribe
	// streams share these counters (docs/WINDOWS.md).
	r.CounterFunc("sudaf_window_queries_total", lbl,
		"One-shot windowed (OVER) queries executed.", s.windowQueries.Load)
	r.CounterFunc("sudaf_window_emits_total", lbl,
		"Window emissions produced, across one-shot queries and subscriptions.", s.windowEmits.Load)
	r.CounterFunc("sudaf_window_rows_evicted_total", lbl,
		"Rows evicted from sliding two-stacks folds.", s.windowRowsEvicted.Load)
	r.CounterFunc("sudaf_window_fast_folds_total", lbl,
		"Window values served by the O(1) two-stacks combination.", s.windowFastFolds.Load)
	r.CounterFunc("sudaf_window_refolds_total", lbl,
		"Window values that fell back to the chunked in-order refold.", s.windowRefolds.Load)
	r.CounterFunc("sudaf_window_subscriptions_total", lbl,
		"Continuous-query subscriptions opened via Subscribe.", s.windowSubscriptions.Load)
}

// ServeMetrics starts an HTTP endpoint on addr serving the session's
// registry: /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof. Close the returned server to stop it.
func (s *Session) ServeMetrics(addr string) (*obs.MetricsServer, error) {
	return obs.ServeMetrics(addr, s.metrics)
}
