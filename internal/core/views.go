package core

import (
	"context"
	"fmt"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/rewrite"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// Materialize creates a materialized state view from an aggregate query:
// the stored table holds the group-by columns plus one column per
// aggregation state appearing in the query's aggregates (the paper's V1,
// the subquery of RQ1). The view's states are also inserted into the
// state cache, and the view becomes a roll-up rewriting candidate.
func (s *Session) Materialize(name, sql string) error {
	if err := s.beginOp("materialize"); err != nil {
		return err
	}
	defer s.endOp()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	// Serialize against appends: materialization reads base data and
	// records the table versions it reflects; interleaving with an append
	// could seed a view whose maintenance record is already stale.
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for _, ref := range stmt.From {
		if ref.Sub != nil {
			return fmt.Errorf("materialized views over subqueries are not supported")
		}
	}
	dp, err := s.eng.PrepareData(stmt)
	if err != nil {
		return err
	}
	// Collect the states of every aggregate in the select list.
	var calls []*expr.Call
	for _, item := range stmt.Select {
		exec.ExtractAggCalls(item.Expr, s.isAgg, &calls)
	}
	if len(calls) == 0 {
		return fmt.Errorf("view %s: query has no aggregates", name)
	}
	var states []canonical.State
	var positives []bool
	seen := map[string]bool{}
	for _, call := range calls {
		form, err := s.formFor(call.Name)
		if err != nil {
			return err
		}
		if len(call.Args) != len(form.Params) {
			return fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		for _, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			if seen[bs.Key()] {
				continue
			}
			seen[bs.Key()] = true
			states = append(states, bs)
			positives = append(positives, basePositive(s.cat, bs.Base, dp.Tables()))
		}
	}
	reg := exec.NewTaskRegistry()
	for _, st := range states {
		addStateTask(reg, st, st.Key())
	}
	gr, err := s.eng.RunSpecs(context.Background(), dp, reg)
	if err != nil {
		return err
	}

	// Materialize: key columns + s1..sk state columns.
	tbl := storage.NewTable(name)
	for _, kc := range gr.KeyColumns {
		if err := tbl.AddColumn(kc); err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
	}
	stateCols := map[string]string{}
	for i, st := range states {
		colName := fmt.Sprintf("s%d", i+1)
		col := storage.NewColumn(colName, storage.KindFloat)
		col.F = append(col.F, gr.Values[i]...)
		if err := tbl.AddColumn(col); err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		stateCols[st.Key()] = colName
	}
	if err := s.cat.Register(tbl); err != nil {
		return err
	}

	// Cache the states under the view query's fingerprint too. The entry
	// carries a maintenance record like any share-mode insert, so the
	// append path delta-folds it rather than invalidating.
	gt := cache.NewGroupTable(dp.Fingerprint, gr.KeyNames, gr.Keys, gr.KeyColumns)
	gt.Maint = newMaintRec(stmt, dp)
	for i, st := range states {
		_ = gt.AddState(&cache.CachedState{State: st, Vals: gr.Values[i], PositiveInput: positives[i]})
	}
	snap := gt.SnapshotEntry()
	s.stateCache().Put(gt)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.views[name] = &rewrite.View{
		Name:      name,
		Table:     tbl,
		Info:      dp.Info(),
		States:    states,
		StateCols: stateCols,
	}
	s.viewMaints[name] = &viewMaint{
		stmt:      stmt,
		states:    states,
		stateCols: stateCols,
		epochs:    dp.TableEpochs(),
		snap:      snap,
	}
	return nil
}

// DropView removes a materialized view.
func (s *Session) DropView(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.views, name)
	delete(s.viewMaints, name)
	s.cat.Drop(name)
}

// Views lists materialized view names.
func (s *Session) Views() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.views))
	for n := range s.views {
		out = append(out, n)
	}
	return out
}

// tryViews attempts a roll-up rewriting of the query's missing states
// from any registered view, returning the prepared roll-up data plan.
// The views map is snapshotted under the read lock; column resolution
// and planning use the query's catalog view.
func (s *Session) tryViews(qc *queryCtx, dp *exec.DataPlan, missing []*slot) (*exec.DataPlan, *rewrite.Rollup, string) {
	info := dp.Info()
	states := make([]canonical.State, len(missing))
	for i, sl := range missing {
		states[i] = sl.st
	}
	colOwner := func(col string) string {
		t, err := qc.cat.ResolveColumn(col, info.Tables)
		if err != nil {
			return ""
		}
		return t.Name
	}
	s.mu.RLock()
	views := make([]*rewrite.View, 0, len(s.views))
	maints := make(map[string]*viewMaint, len(s.viewMaints))
	for _, v := range s.views {
		views = append(views, v)
	}
	for n, vm := range s.viewMaints {
		maints[n] = vm
	}
	s.mu.RUnlock()
	for _, v := range views {
		// Version check: the view must reflect exactly the base-table
		// versions this query pinned. A query that pinned its snapshot
		// before (or after) an append must not roll up from a view
		// maintained on the other side of it — mixed versions would
		// double- or under-count the delta.
		if vm := maints[v.Name]; vm != nil {
			stale := false
			for tn, ep := range vm.epochs {
				t, err := qc.cat.Table(tn)
				if err != nil || t.Epoch != ep {
					stale = true
					break
				}
			}
			if stale {
				continue
			}
		}
		rollup, reason := rewrite.TryRollup(info, states, v, colOwner)
		if rollup == nil {
			_ = reason
			continue
		}
		// Pin the exact view-table version the version check vouched for:
		// registering it in the query's snapshot shadows any successor the
		// session catalog may publish while this query plans and runs.
		if err := qc.cat.Register(v.Table); err != nil {
			continue
		}
		dpv, err := s.eng.PrepareDataIn(qc.cat, rollup.Stmt)
		if err != nil {
			continue
		}
		return dpv, rollup, v.Name
	}
	return nil, nil, ""
}
