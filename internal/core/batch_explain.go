package core

import (
	"fmt"
	"strings"

	"sudaf/internal/errs"
	"sudaf/internal/sqlparse"
)

// BatchExplain is the structured result of Session.BatchExplain: how a
// batch would execute — per-query explanations plus the batch-level
// sharing plan (fingerprint groups, fused-scan task unions, and every
// state's disposition), computed read-only against the live cache.
type BatchExplain struct {
	// Mode the batch is explained for.
	Mode Mode
	// Queries holds each query's own explanation, positionally aligned
	// with the batch (nil for queries EXPLAIN cannot describe, e.g.
	// subquery statements — see Solo).
	Queries []*Explain
	// Groups are the fingerprint groups the batch's queries fuse into.
	Groups []BatchGroupExplain
	// Solo lists queries that execute standalone, with the reason.
	Solo []BatchSoloExplain
	// Scans is the number of fused scans the batch plans (groups whose
	// task union is non-empty); compare against len(Queries).
	Scans int
}

// BatchGroupExplain is one fingerprint group of the batch plan.
type BatchGroupExplain struct {
	// Fingerprint of the shared data part.
	Fingerprint string
	// Members are the batch indices served by this group's fused scan.
	Members []int
	// Tasks is the fused scan's task union, in registration order.
	Tasks []string
	// Shards is the number of shard workers this group's fused scan
	// would scatter-gather across (0 when it runs as one local scan:
	// unsharded engine, baseline mode, or no distributable table).
	Shards int
	// States is every member state's disposition, in planning order.
	States []BatchStateExplain
}

// BatchStateExplain is the disposition of one member state.
type BatchStateExplain struct {
	// Query is the batch index of the member needing the state.
	Query int
	// State is the canonical state key.
	State string
	// Disposition says how the state is served: "computed" (by the fused
	// scan), "batch:fused" (identical state of an earlier member),
	// "batch:derived" (Theorem 4.1 derivation from an in-flight state),
	// or "cache:exact" / "cache:shared" / "cache:sign" (the pre-batch
	// cache already serves it).
	Disposition string
	// Via is the serving state's key, when derived or cache-served.
	Via string
	// Rewrite is the scalar rewriting r with state = r(via), rendered
	// over s (sharing-based dispositions only).
	Rewrite string
}

// BatchSoloExplain marks a query that executes standalone.
type BatchSoloExplain struct {
	Query  int
	Reason string
}

// BatchExplain explains how QueryBatch would execute a batch without
// executing it: each query's canonical decomposition plus the batch
// sharing plan — which queries fuse into which scan, which states the
// in-flight batch derives from each other via Theorem 4.1, and which the
// cache already serves. The probe is read-only: no LRU touches, no
// stats, no derived-state materialization.
func (s *Session) BatchExplain(reqs []Request, mode Mode) (*BatchExplain, error) {
	stmts := make([]*sqlparse.Stmt, len(reqs))
	for i, req := range reqs {
		stmt, err := sqlparse.Parse(req.SQL)
		if err != nil {
			return nil, fmt.Errorf("batch query %d: %w: %w", i, errs.ErrParse, err)
		}
		stmts[i] = stmt
	}
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache()}
	plan, err := s.planBatch(qc, stmts, mode)
	if err != nil {
		return nil, err
	}
	be := &BatchExplain{Mode: mode, Queries: make([]*Explain, len(reqs))}
	for i, m := range plan.members {
		if m.solo {
			be.Solo = append(be.Solo, BatchSoloExplain{Query: i, Reason: m.soloWhy})
		}
		// Per-query explanation, when EXPLAIN supports the statement.
		if ex, err := s.ExplainQuery(reqs[i].SQL, mode); err == nil {
			be.Queries[i] = ex
		}
	}
	for _, g := range plan.groups {
		ge := BatchGroupExplain{
			Fingerprint: g.fp,
			Members:     g.members,
			Tasks:       g.reg.Keys(),
		}
		if s.shards != nil && mode != ModeBaseline && g.reg.Len() > 0 &&
			len(g.compute) == g.reg.Len() && s.shards.pickSet(g.dp) != nil {
			ge.Shards = s.shards.n
		}
		for _, mi := range g.members {
			for _, st := range plan.members[mi].states {
				ge.States = append(ge.States, BatchStateExplain{
					Query:       mi,
					State:       st.Key,
					Disposition: st.Disposition,
					Via:         st.Via,
					Rewrite:     st.Rewrite,
				})
			}
		}
		if len(ge.Tasks) > 0 {
			be.Scans++
		}
		be.Groups = append(be.Groups, ge)
	}
	return be, nil
}

// String renders the batch plan as indented text (the per-query
// explanations are omitted — render those individually).
func (be *BatchExplain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BATCH EXPLAIN (%d queries, mode: %s)\n", len(be.Queries), be.Mode)
	fmt.Fprintf(&b, "fused scans: %d\n", be.Scans)
	for gi, g := range be.Groups {
		fmt.Fprintf(&b, "\ngroup %d: fingerprint %s\n", gi, g.Fingerprint)
		fmt.Fprintf(&b, "  queries: %s\n", joinInts(g.Members))
		fmt.Fprintf(&b, "  fused tasks (%d): %s\n", len(g.Tasks), strings.Join(g.Tasks, ", "))
		if g.Shards > 0 {
			fmt.Fprintf(&b, "  scatter: %d shards\n", g.Shards)
		}
		for _, st := range g.States {
			line := fmt.Sprintf("  q%d %s — %s", st.Query, st.State, st.Disposition)
			if st.Via != "" {
				line += " via " + st.Via
			}
			if st.Rewrite != "" {
				line += fmt.Sprintf(" with r(s) = %s", st.Rewrite)
			}
			b.WriteString(line + "\n")
		}
	}
	for _, so := range be.Solo {
		fmt.Fprintf(&b, "\nq%d executes standalone: %s\n", so.Query, so.Reason)
	}
	return b.String()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("q%d", x)
	}
	return strings.Join(parts, ", ")
}
