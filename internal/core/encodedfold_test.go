package core

import (
	"fmt"
	"math"
	"testing"

	"sudaf/internal/storage"
)

// foldTable builds a sealed single table with every adversarial shape
// the run-fold path can meet: integral runs (folds engage), fractional
// runs (fold declines: non-integral), NaN and ±Inf runs (min/max still
// fold; sums decline), huge-magnitude runs (2^52 guard declines),
// alternating values and a constant column.
func foldTable(rows int) *storage.Table {
	tbl := storage.NewTable("ft",
		storage.NewColumn("int_runs", storage.KindFloat),
		storage.NewColumn("frac_runs", storage.KindFloat),
		storage.NewColumn("nan_runs", storage.KindFloat),
		storage.NewColumn("inf_runs", storage.KindFloat),
		storage.NewColumn("huge_runs", storage.KindFloat),
		storage.NewColumn("alt", storage.KindFloat),
		storage.NewColumn("const_c", storage.KindFloat),
		storage.NewColumn("gm_runs", storage.KindFloat),
		storage.NewColumn("grp", storage.KindInt))
	nanv := []float64{math.NaN(), 1, 2}
	infv := []float64{math.Inf(1), math.Inf(-1), 3}
	for i := 0; i < rows; i++ {
		tbl.Col("int_runs").AppendFloat(float64(1 + (i/257)%5))
		tbl.Col("frac_runs").AppendFloat(0.5 + float64((i/301)%4))
		tbl.Col("nan_runs").AppendFloat(nanv[(i/199)%3])
		tbl.Col("inf_runs").AppendFloat(infv[(i/173)%3])
		tbl.Col("huge_runs").AppendFloat(float64(int64(1)<<50) * float64(1+(i/211)%3))
		tbl.Col("alt").AppendFloat(float64(i % 2))
		tbl.Col("const_c").AppendFloat(7)
		// gm: long runs of 1 with rare short runs of 2 — the product
		// stays exactly representable so the prod fold engages.
		v := 1.0
		if (i/1000)%8 == 7 && i%1000 < 20 {
			v = 2
		}
		tbl.Col("gm_runs").AppendFloat(v)
		tbl.Col("grp").AppendInt(int64(i / (rows / 4)))
	}
	tbl.Seal()
	return tbl
}

var foldQueries = []string{
	`SELECT count(), sum(int_runs), min(int_runs), max(int_runs), avg(int_runs) FROM ft;`,
	`SELECT sum(frac_runs), stddev(frac_runs), min(frac_runs) FROM ft;`,
	`SELECT min(nan_runs), max(nan_runs), sum(nan_runs), count() FROM ft;`,
	`SELECT min(inf_runs), max(inf_runs), sum(inf_runs) FROM ft;`,
	`SELECT sum(huge_runs), min(huge_runs), max(huge_runs) FROM ft;`,
	`SELECT sum(alt), qm(alt), count() FROM ft;`,
	`SELECT sum(const_c), stddev(const_c), min(const_c), max(const_c) FROM ft;`,
	`SELECT gm(gm_runs), sum(gm_runs) FROM ft;`,
	`SELECT qm(int_runs), stddev(int_runs) FROM ft;`,
	// Grouped and filtered variants: folds must stand down, results
	// must still match.
	`SELECT grp, sum(int_runs), min(nan_runs) FROM ft GROUP BY grp ORDER BY grp;`,
	`SELECT sum(int_runs) FROM ft WHERE grp >= 1;`,
}

// TestEncodedFoldsBitIdentical is the tentpole differential: every
// query must produce bit-for-bit identical results with encoded-segment
// folds on and off, across all three execution modes and worker counts.
func TestEncodedFoldsBitIdentical(t *testing.T) {
	tbl := foldTable(20000)
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeBaseline, ModeRewrite, ModeShare} {
			s := NewSession(Options{Workers: workers})
			if err := s.Register(tbl); err != nil {
				t.Fatal(err)
			}
			for qi, q := range foldQueries {
				label := fmt.Sprintf("w=%d mode=%v q%d", workers, mode, qi)
				s.SetEncodedFolds(true)
				on, err := s.Query(q, mode)
				if err != nil {
					t.Fatalf("%s folds-on: %v", label, err)
				}
				s.ClearCache()
				s.SetEncodedFolds(false)
				off, err := s.Query(q, mode)
				if err != nil {
					t.Fatalf("%s folds-off: %v", label, err)
				}
				s.ClearCache()
				tablesBitIdentical(t, on.Table, off.Table, label)
			}
		}
	}
}

// TestEncodedFoldsEngage proves the fold path actually runs for
// integral run data (the differential alone would pass if folds never
// engaged).
func TestEncodedFoldsEngage(t *testing.T) {
	s := NewSession(Options{Workers: 2})
	if err := s.Register(foldTable(20000)); err != nil {
		t.Fatal(err)
	}
	before := storage.RunFoldsExecuted()
	if _, err := s.Query(`SELECT count(), sum(int_runs), min(int_runs), max(int_runs) FROM ft;`, ModeShare); err != nil {
		t.Fatal(err)
	}
	if got := storage.RunFoldsExecuted(); got <= before {
		t.Fatalf("no run-folds executed (counter %d → %d)", before, got)
	}
}

// TestEncodedFoldsProdEngages: the guarded product fold engages on
// exactly-representable run products.
func TestEncodedFoldsProdEngages(t *testing.T) {
	s := NewSession(Options{Workers: 1})
	if err := s.Register(foldTable(20000)); err != nil {
		t.Fatal(err)
	}
	before := storage.RunFoldsExecuted()
	res, err := s.Query(`SELECT gm(gm_runs) FROM ft;`, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.RunFoldsExecuted(); got <= before {
		t.Fatalf("prod fold never engaged (counter %d → %d)", before, got)
	}
	if v := res.Table.Cols[0].AsFloat(0); v <= 0 || math.IsNaN(v) {
		t.Fatalf("gm = %v", v)
	}
}

// TestEncodedFoldsShardedDifferential: sharded sessions slice tables
// into per-shard views; the views carry the encodings and the fold path
// must stay bit-identical to the dense path.
func TestEncodedFoldsShardedDifferential(t *testing.T) {
	tbl := foldTable(16000)
	for _, q := range foldQueries {
		s := NewSession(Options{Workers: 2, Shards: 3})
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
		s.SetEncodedFolds(true)
		on, err := s.Query(q, ModeShare)
		if err != nil {
			t.Fatalf("sharded folds-on: %v", err)
		}
		s.ClearCache()
		s.SetEncodedFolds(false)
		off, err := s.Query(q, ModeShare)
		if err != nil {
			t.Fatalf("sharded folds-off: %v", err)
		}
		tablesBitIdentical(t, on.Table, off.Table, "sharded "+q)
	}
}

// TestEncodedFoldsAfterAppend: appends create a new table version with
// an extra encoded tail segment; folds over the successor must agree
// with dense.
func TestEncodedFoldsAfterAppend(t *testing.T) {
	s := NewSession(Options{Workers: 2})
	if err := s.Register(foldTable(8000)); err != nil {
		t.Fatal(err)
	}
	delta := storage.NewTable("ft")
	src := foldTable(4000)
	for _, c := range src.Cols {
		_ = delta.AddColumn(c)
	}
	if _, err := s.Append(t.Context(), "ft", delta); err != nil {
		t.Fatal(err)
	}
	q := `SELECT count(), sum(int_runs), min(nan_runs), max(inf_runs) FROM ft;`
	s.SetEncodedFolds(true)
	on, err := s.Query(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	s.ClearCache()
	s.SetEncodedFolds(false)
	off, err := s.Query(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitIdentical(t, on.Table, off.Table, "post-append")
}
