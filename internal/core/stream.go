package core

import (
	"context"
	"fmt"

	"sudaf/internal/exec"
	"sudaf/internal/storage"
)

// QueryBatches runs a SELECT statement and returns a cursor over the
// result in fixed-size column batches (exec.BatchSize rows each), so
// large outputs can be consumed incrementally instead of walking one
// monolithic table. The cursor's batches are zero-copy views of the
// result columns.
func (s *Session) QueryBatches(ctx context.Context, sql string, mode Mode) (*BatchCursor, error) {
	res, err := s.QueryContext(ctx, sql, mode)
	if err != nil {
		return nil, err
	}
	return res.Batches(exec.BatchSize), nil
}

// BatchCursor iterates a query result batch by batch. Use as:
//
//	cur, err := eng.QueryBatches(ctx, sql, mode)
//	for cur.Next() {
//	    b := cur.Batch() // *storage.Table view, ≤ BatchSize rows
//	    ...
//	}
//	err = cur.Err()
type BatchCursor struct {
	res    *Result
	size   int
	pos    int
	batch  *storage.Table
	closed bool
	err    error
}

// Batches returns a cursor over the result in batches of size rows
// (size ≤ 0 uses exec.BatchSize). Batches are zero-copy column views.
func (r *Result) Batches(size int) *BatchCursor {
	if size <= 0 {
		size = exec.BatchSize
	}
	return &BatchCursor{res: r, size: size}
}

// Next advances to the next batch; it returns false when the result is
// exhausted or the cursor is closed.
func (c *BatchCursor) Next() bool {
	if c.closed || c.err != nil {
		return false
	}
	n := c.res.Table.NumRows()
	if c.pos >= n {
		c.batch = nil
		return false
	}
	hi := c.pos + c.size
	if hi > n {
		hi = n
	}
	c.batch = c.res.Table.Slice(c.pos, hi)
	c.pos = hi
	return true
}

// Batch returns the current batch: a table view with the result's columns
// and at most the cursor's batch size rows. Valid until the next call to
// Next.
func (c *BatchCursor) Batch() *storage.Table { return c.batch }

// Err returns the first error encountered while iterating (always nil
// for cursors over a materialized result; kept for forward compatibility
// with pipelined execution).
func (c *BatchCursor) Err() error { return c.err }

// Close releases the cursor; Next returns false afterwards. Closing is
// idempotent.
func (c *BatchCursor) Close() error {
	c.closed = true
	c.batch = nil
	return nil
}

// Result returns the full query result backing the cursor (row counts,
// cache hit flags, degradation events).
func (c *BatchCursor) Result() *Result { return c.res }

// Rows returns a row iterator over the result, built on the batch cursor:
//
//	it := res.Rows()
//	for it.Next() {
//	    v := it.Float(1)
//	}
func (r *Result) Rows() *RowIter {
	return &RowIter{cur: r.Batches(0), row: -1}
}

// RowIter iterates a result row by row over the underlying batches.
type RowIter struct {
	cur   *BatchCursor
	batch *storage.Table
	row   int
}

// Next advances to the next row, fetching the next batch as needed.
func (it *RowIter) Next() bool {
	it.row++
	for it.batch == nil || it.row >= it.batch.NumRows() {
		if !it.cur.Next() {
			it.batch = nil
			return false
		}
		it.batch = it.cur.Batch()
		it.row = 0
	}
	return true
}

// Columns returns the result column names.
func (it *RowIter) Columns() []string {
	cols := it.cur.res.Table.Cols
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// NumCols returns the number of result columns.
func (it *RowIter) NumCols() int { return len(it.cur.res.Table.Cols) }

// Float returns column col of the current row as float64 (dictionary
// columns yield their code).
func (it *RowIter) Float(col int) float64 {
	return it.batch.Cols[col].AsFloat(it.row)
}

// String returns column col of the current row rendered as text.
func (it *RowIter) String(col int) string {
	c := it.batch.Cols[col]
	if c.Kind == storage.KindString {
		return c.StringAt(it.row)
	}
	return fmt.Sprint(c.AsFloat(it.row))
}
