package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/storage"
)

func salesDelta(rows int) *storage.Table {
	d := storage.NewTable("store_sales",
		storage.NewColumn("ss_item_sk", storage.KindInt),
		storage.NewColumn("ss_store_sk", storage.KindInt),
		storage.NewColumn("ss_sold_date_sk", storage.KindInt),
		storage.NewColumn("ss_list_price", storage.KindFloat),
		storage.NewColumn("ss_sales_price", storage.KindFloat))
	for i := 0; i < rows; i++ {
		d.Col("ss_item_sk").AppendInt(int64(i % 40))
		d.Col("ss_store_sk").AppendInt(int64(i % 6))
		d.Col("ss_sold_date_sk").AppendInt(int64(i % 100))
		d.Col("ss_list_price").AppendFloat(float64(20 + i%30))
		d.Col("ss_sales_price").AppendFloat(float64(10 + i%15))
	}
	return d
}

// TestAppendInvalidatesMaintlessEntry: a cache entry without a
// maintenance record that fingerprints the pre-append table version must
// be dropped by Append (targeted invalidation), with the reason recorded
// both in the AppendResult and in the cache's event stream so the next
// query surfaces it.
func TestAppendInvalidatesMaintlessEntry(t *testing.T) {
	s := newTestSession(t, 500, 2)
	tbl, err := s.cat.Table("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("T[store_sales@%d]J[]F[]G[ss_item_sk]", tbl.Epoch)
	keyCol := storage.NewColumn("ss_item_sk", storage.KindInt)
	keyCol.AppendInt(0)
	gt := cache.NewGroupTable(fp, []string{"ss_item_sk"}, []cache.GroupKey{{0, 0}}, []*storage.Column{keyCol})
	if err := gt.AddState(&cache.CachedState{State: canonical.State{Op: canonical.OpCount}, Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	c := s.stateCache()
	c.Put(gt)

	res, err := s.Append(context.Background(), "store_sales", salesDelta(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesInvalidated != 1 {
		t.Fatalf("invalidated %d entries, want 1 (events %v)", res.EntriesInvalidated, res.Events)
	}
	if _, ok := c.Entry(fp); ok {
		t.Fatal("maint-less entry survived the append")
	}
	if len(res.Events) == 0 || !strings.Contains(res.Events[0], "no maintenance record") {
		t.Fatalf("events = %v, want an invalidation note", res.Events)
	}
	// The note is also queued on the cache and drained by the next query.
	qres, err := s.Query(q2, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range qres.Events {
		found = found || strings.Contains(ev, "invalidated")
	}
	if !found {
		t.Fatalf("query events = %v, want the ingest invalidation note", qres.Events)
	}
}

// TestAppendMigratesJoinEntry: entries over a join migrate by running the
// delta slice of the fact table against the full dimension tables; the
// next identical query answers from the merged states without a scan.
func TestAppendMigratesJoinEntry(t *testing.T) {
	s := newTestSession(t, 2000, 2)
	if _, err := s.Query(q1, ModeShare); err != nil {
		t.Fatal(err)
	}
	res, err := s.Append(context.Background(), "store_sales", salesDelta(77))
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesMigrated == 0 {
		t.Fatalf("join entry not migrated: %+v", res)
	}
	if res.StatesMaintained == 0 {
		t.Fatal("no states folded during migration")
	}
	qres, err := s.Query(q1, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if !qres.FullCacheHit || qres.RowsScanned != 0 {
		t.Fatalf("post-append q1: hit=%v scanned=%d, want a full hit from migrated states",
			qres.FullCacheHit, qres.RowsScanned)
	}
}

// TestAppendToDimension: appending to a *dimension* table routes the
// delta run through (full fact) ⋈ (new dimension rows) — the exact set
// of join tuples the append adds — so the entry is either migrated or,
// if anything about the plan resists it, dropped. Either way the rerun
// query must agree with baseline.
func TestAppendToDimension(t *testing.T) {
	s := newTestSession(t, 1000, 2)
	if _, err := s.Query(q1, ModeShare); err != nil {
		t.Fatal(err)
	}
	dd := storage.NewTable("date_dim",
		storage.NewColumn("d_date_sk", storage.KindInt),
		storage.NewColumn("d_year", storage.KindInt))
	dd.Col("d_date_sk").AppendInt(99999)
	dd.Col("d_year").AppendInt(2050)
	res, err := s.Append(context.Background(), "date_dim", dd)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesMigrated+res.EntriesInvalidated == 0 {
		t.Fatalf("append to dimension left q1's entry untouched: %+v", res)
	}
	qres, err := s.Query(q1, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Query(q1, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, qres.Table, base.Table, "post-dimension-append share vs baseline")
}
