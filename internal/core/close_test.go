package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sudaf/internal/errs"
	"sudaf/internal/faultinject"
	"sudaf/internal/storage"
)

const closeTestQuery = `SELECT s_state, qm(ss_list_price), avg(ss_sales_price)
	FROM store_sales, store WHERE ss_store_sk = s_store_sk GROUP BY s_state`

// TestAdmissionWaitersDuringClose races a burst of queries — far more
// than the admission cap — against Engine close. Every call must resolve
// to exactly one of {success, ErrCanceled, ErrEngineClosed}, no worker
// or admission token may be lost, and the lifetime counters must
// balance. Run under -race by the CI stress matrix.
func TestAdmissionWaitersDuringClose(t *testing.T) {
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			s := newTestSession(t, 40000, 2)
			s.admit = make(chan struct{}, 2) // force a deep admission queue

			const callers = 16
			type outcome struct {
				ok       bool
				canceled bool
				closed   bool
				err      error
			}
			outcomes := make([]outcome, callers)
			var wg sync.WaitGroup
			for i := 0; i < callers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ctx := context.Background()
					if i%5 == 4 {
						// A few callers carry a deadline that can expire
						// while queued, exercising the ErrCanceled arm.
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i)*time.Millisecond)
						defer cancel()
					}
					res, err := s.QueryContext(ctx, closeTestQuery, ModeShare)
					switch {
					case err == nil && res != nil:
						outcomes[i] = outcome{ok: true}
					case errors.Is(err, errs.ErrEngineClosed):
						outcomes[i] = outcome{closed: true}
					case errors.Is(err, errs.ErrCanceled):
						outcomes[i] = outcome{canceled: true}
					default:
						outcomes[i] = outcome{err: err}
					}
				}(i)
			}
			// Let some queries execute and a queue form, then drain.
			time.Sleep(time.Duration(2+round*4) * time.Millisecond)
			if err := s.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
			wg.Wait()

			for i, o := range outcomes {
				if o.err != nil {
					t.Errorf("caller %d: untyped outcome: %v", i, o.err)
				}
			}
			// No lost admission/worker tokens: the semaphore is empty once
			// the drain completed.
			if n := len(s.admit); n != 0 {
				t.Errorf("admission semaphore holds %d token(s) after drain", n)
			}
			st := s.Stats()
			if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
				t.Errorf("stats unbalanced after drain: started=%d completed=%d failed=%d",
					st.QueriesStarted, st.QueriesCompleted, st.QueriesFailed)
			}

			// The closed engine rejects everything with the typed sentinel.
			if _, err := s.Query(closeTestQuery, ModeShare); !errors.Is(err, errs.ErrEngineClosed) {
				t.Errorf("query after close: got %v, want ErrEngineClosed", err)
			}
			delta := storage.NewTable("store_sales")
			if _, err := s.Append(context.Background(), "store_sales", delta); !errors.Is(err, errs.ErrEngineClosed) {
				t.Errorf("append after close: got %v, want ErrEngineClosed", err)
			}
			if err := s.Materialize("v_after_close", closeTestQuery); !errors.Is(err, errs.ErrEngineClosed) {
				t.Errorf("materialize after close: got %v, want ErrEngineClosed", err)
			}
			// Close is idempotent.
			if err := s.Close(context.Background()); err != nil {
				t.Errorf("second Close: %v", err)
			}
			if !s.Closed() {
				t.Error("Closed() = false after Close")
			}
		})
	}
}

// TestCloseDeadline: Close with a too-short context reports the drain as
// incomplete without abandoning the in-flight query, and a later
// unbounded Close completes once the query finishes.
func TestCloseDeadline(t *testing.T) {
	defer faultinject.Reset()
	s := newTestSession(t, 2000, 1)

	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 60 * time.Millisecond, Times: 1})
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Query(closeTestQuery, ModeRewrite)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the query start

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Close: got %v, want DeadlineExceeded", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("in-flight query must survive an interrupted drain: %v", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("final Close: %v", err)
	}
	if s.DrainDuration() <= 0 {
		t.Error("DrainDuration not recorded after completed drain")
	}
}

// TestCloseKeepsCacheIntact: drain does not destroy cached aggregation
// states — the contract the serving layer relies on to keep sharing warm
// across a server restart within the same process.
func TestCloseKeepsCacheIntact(t *testing.T) {
	s := newTestSession(t, 5000, 2)
	if _, err := s.Query(closeTestQuery, ModeShare); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Cache().Snapshot()); n == 0 {
		t.Fatal("warmup query cached nothing")
	}
	before := len(s.Cache().Snapshot())
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := len(s.Cache().Snapshot()); after != before {
		t.Errorf("drain changed the cache: %d -> %d entries", before, after)
	}
}
