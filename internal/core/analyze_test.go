package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sudaf/internal/exec"
	"sudaf/internal/sqlparse"
)

// newPlanState parses a statement and returns a fresh planState over a
// fresh snapshot pair, ready for the pipeline.
func newPlanState(t *testing.T, s *Session, sql string, mode Mode) *planState {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache()}
	return &planState{s: s, qc: qc, stmt: stmt, mode: mode}
}

// runRules applies the named phase/rule pairs in order.
func runRules(t *testing.T, ps *planState, names ...string) {
	t.Helper()
	for _, n := range names {
		parts := strings.SplitN(n, "/", 2)
		r, ok := queryPipeline.Rule(parts[0], parts[1])
		if !ok {
			t.Fatalf("unknown rule %s", n)
		}
		if err := r.Apply(context.Background(), ps); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

var resolveRules = []string{
	"resolve/resolve-tables", "resolve/classify-predicates",
	"resolve/resolve-grouping", "resolve/fingerprint", "resolve/extract-aggregates",
}

func TestPipelinePhaseNames(t *testing.T) {
	want := "[resolve canonicalize share fuse parallelize distribute]"
	if got := fmt.Sprint(queryPipeline.PhaseNames()); got != want {
		t.Fatalf("phases = %s, want %s", got, want)
	}
}

func TestResolveRulesBuildDataPlan(t *testing.T) {
	s := newTestSession(t, 500, 2)
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	runRules(t, ps, resolveRules...)
	if ps.dp == nil || ps.dp.Fingerprint == "" {
		t.Fatal("resolve did not seal a fingerprinted data plan")
	}
	if ps.dpRun != ps.dp {
		t.Fatal("dpRun must start as the resolved plan")
	}
	if len(ps.calls) != 1 || ps.calls[0].Name != "avg" {
		t.Fatalf("calls = %v", ps.calls)
	}
	if ps.reg == nil || ps.reg.Len() != 0 {
		t.Fatal("registry must be created empty by resolve")
	}
	if len(ps.spec.Items) != 2 {
		t.Fatalf("%d select items", len(ps.spec.Items))
	}
}

func TestResolveRuleRejectsUnknownTable(t *testing.T) {
	s := newTestSession(t, 10, 1)
	ps := newPlanState(t, s, "SELECT sum(x) FROM nope", ModeBaseline)
	r, _ := queryPipeline.Rule("resolve", "resolve-tables")
	if err := r.Apply(context.Background(), ps); err == nil {
		t.Fatal("resolve-tables accepted an unknown table")
	}
}

func TestBindBaselineIsModeGated(t *testing.T) {
	s := newTestSession(t, 100, 1)
	// In baseline mode: one task per call, no state slots.
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, sum(ss_list_price), avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk",
		ModeBaseline)
	runRules(t, ps, append(resolveRules, "canonicalize/bind-baseline", "canonicalize/bind-states")...)
	if ps.reg.Len() != 2 || len(ps.spec.Finishers) != 2 {
		t.Fatalf("baseline: %d tasks, %d finishers", ps.reg.Len(), len(ps.spec.Finishers))
	}
	if len(ps.slotOrder) != 0 {
		t.Fatal("baseline must not decompose into states")
	}
}

func TestBindStatesDeduplicatesSlots(t *testing.T) {
	s := newTestSession(t, 100, 1)
	// sum+avg+stddev share the Σx and count states: 3 calls → 3 slots
	// (sum, count, sum of squares), not 5.
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, sum(ss_list_price), avg(ss_list_price), stddev(ss_list_price) FROM store_sales GROUP BY ss_store_sk",
		ModeShare)
	runRules(t, ps, append(resolveRules, "canonicalize/bind-baseline", "canonicalize/bind-states")...)
	if len(ps.spec.Finishers) != 3 {
		t.Fatalf("%d finishers", len(ps.spec.Finishers))
	}
	if len(ps.slotOrder) != 3 {
		t.Fatalf("slots = %v, want 3 deduplicated states", ps.slotOrder)
	}
	if ps.reg.Len() != 0 {
		t.Fatal("canonicalize must not register tasks yet")
	}
}

func TestShareRulesColdCache(t *testing.T) {
	s := newTestSession(t, 100, 1)
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	runRules(t, ps, append(resolveRules,
		"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing")...)
	if ps.entryOK {
		t.Fatal("cold cache cannot have an entry")
	}
	if len(ps.missing) != len(ps.slotOrder) {
		t.Fatalf("missing = %d, want all %d", len(ps.missing), len(ps.slotOrder))
	}
	if ps.qc.stats.CacheMisses != len(ps.slotOrder) {
		t.Fatalf("CacheMisses = %d, want %d", ps.qc.stats.CacheMisses, len(ps.slotOrder))
	}
}

func TestLookupCacheServesWarmStates(t *testing.T) {
	s := newTestSession(t, 200, 2)
	// Warm the cache with the same data part.
	if _, err := s.Query(
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare); err != nil {
		t.Fatal(err)
	}
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	runRules(t, ps, append(resolveRules,
		"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing")...)
	if !ps.entryOK {
		t.Fatal("warm cache entry not found")
	}
	if len(ps.missing) != 0 {
		t.Fatalf("missing = %d after warmup", len(ps.missing))
	}
	if ps.qc.stats.CacheExactHits != len(ps.slotOrder) {
		t.Fatalf("exact hits = %d, want %d", ps.qc.stats.CacheExactHits, len(ps.slotOrder))
	}
}

func TestRegisterTasksAddsCompanions(t *testing.T) {
	s := newTestSession(t, 100, 1)
	if err := s.DefineUDAF("pr", []string{"x"}, "prod(x)"); err != nil {
		t.Fatal(err)
	}
	// ss_sales_price - 60 is signed, so the prod state needs the §5.3
	// sign-split companions: 1 missing state → 3 registered tasks.
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, pr(ss_sales_price - 60) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	runRules(t, ps, append(resolveRules,
		"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing",
		"share/rewrite-views", "fuse/register-tasks")...)
	if ps.reg.Len() != 3 {
		t.Fatalf("tasks = %v, want prod + 2 companions", ps.reg.Keys())
	}
	if len(ps.companions) != 2 {
		t.Fatalf("%d companions", len(ps.companions))
	}
	for _, sl := range ps.missing {
		if sl.taskIdx < 0 {
			t.Fatal("missing slot left without a task")
		}
	}
}

func TestElideScanRequiresFullHit(t *testing.T) {
	s := newTestSession(t, 100, 1)
	if _, err := s.Query(
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare); err != nil {
		t.Fatal(err)
	}
	ps := newPlanState(t, s,
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	runRules(t, ps, append(resolveRules,
		"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing",
		"share/rewrite-views", "fuse/register-tasks", "parallelize/elide-scan")...)
	if !ps.fullHit {
		t.Fatal("full cache hit must elide the scan")
	}
	// The same plan in rewrite mode keeps scanning: no cache, no elision.
	ps2 := newPlanState(t, s,
		"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", ModeRewrite)
	runRules(t, ps2, append(resolveRules,
		"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing",
		"share/rewrite-views", "fuse/register-tasks", "parallelize/elide-scan")...)
	if ps2.fullHit || ps2.reg.Len() == 0 {
		t.Fatal("rewrite mode must compute its states")
	}
}

func TestFusedScanRuleConsultsProvider(t *testing.T) {
	s := newTestSession(t, 100, 1)
	build := func(mode Mode, provide scanProvider) *planState {
		ps := newPlanState(t, s,
			"SELECT ss_store_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_store_sk", mode)
		ps.qc.provide = provide
		runRules(t, ps, append(resolveRules,
			"canonicalize/bind-states", "share/lookup-cache", "share/collect-missing",
			"share/rewrite-views", "fuse/register-tasks", "parallelize/elide-scan",
			"parallelize/fused-scan")...)
		return ps
	}
	served := &exec.GroupResult{NumGroups: 1}
	var askedKeys []string
	ps := build(ModeRewrite, func(dp *exec.DataPlan, reg *exec.TaskRegistry) (*exec.GroupResult, bool) {
		askedKeys = reg.Keys()
		return served, true
	})
	if ps.gr != served {
		t.Fatal("provider result not adopted")
	}
	if len(askedKeys) != ps.reg.Len() {
		t.Fatalf("provider asked for %d keys, registry has %d", len(askedKeys), ps.reg.Len())
	}
	// A provider that cannot serve leaves the plan scanning for itself.
	ps2 := build(ModeRewrite, func(dp *exec.DataPlan, reg *exec.TaskRegistry) (*exec.GroupResult, bool) {
		return nil, false
	})
	if ps2.gr != nil {
		t.Fatal("declined provider must leave gr nil")
	}
	// No provider: rule is a no-op.
	ps3 := build(ModeRewrite, nil)
	if ps3.gr != nil {
		t.Fatal("nil provider must leave gr nil")
	}
}

func TestPipelineErrorsNameTheRule(t *testing.T) {
	s := newTestSession(t, 10, 1)
	ps := newPlanState(t, s, "SELECT sum(x) FROM nope", ModeBaseline)
	err := queryPipeline.Run(context.Background(), ps, nil)
	if err == nil || !strings.Contains(err.Error(), "analyzer resolve/resolve-tables") {
		t.Fatalf("err = %v, want analyzer resolve/resolve-tables position", err)
	}
}
