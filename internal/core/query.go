package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/obs"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// QueryStats is the per-query observability record attached to every
// Result: what the query cost and how the cache served it.
type QueryStats struct {
	// WallTime is the query's execution time (admission wait excluded).
	WallTime time.Duration
	// QueueWait is the time spent waiting for an admission slot (0 when
	// MaxConcurrentQueries is unset or a slot was free).
	QueueWait time.Duration
	// RowsScanned is the number of joined base rows read.
	RowsScanned int
	// CacheExactHits / CacheSharedHits / CacheSignHits / CacheMisses
	// count this query's state lookups by outcome (share mode only).
	CacheExactHits  int
	CacheSharedHits int
	CacheSignHits   int
	CacheMisses     int
	// Kernels names the aggregation tasks that ran through compiled batch
	// kernels (empty when nothing executed or kernels were off).
	Kernels []string
}

// Result is a finished SUDAF query.
type Result struct {
	Table *storage.Table
	// RowsScanned is the number of joined base rows read; 0 means the
	// query was answered entirely from the cache.
	RowsScanned int
	// Groups before LIMIT.
	Groups int
	// UsedView names the materialized view a roll-up rewriting used.
	UsedView string
	// FullCacheHit reports that no execution was needed.
	FullCacheHit bool
	// NumericFaults counts NaN/±Inf aggregate outputs observed under the
	// permissive numeric policy.
	NumericFaults int
	// Events records degradation events: cache states dropped after
	// failing integrity checks, recovered cache faults, numeric faults
	// tolerated under the permissive policy. The query still succeeded —
	// these report *how*.
	Events []string
	// Stats is the per-query cost/cache observability record.
	Stats QueryStats
	// Trace is this query's span tree, present only when the session's
	// TraceRate sampled it (nil otherwise). Render with Trace.Tree() or
	// Trace.JSON().
	Trace *obs.Trace
}

// queryCtx is the shared-nothing per-call state of one query: the
// catalog snapshot (which pins one version of every table the query
// touches, so concurrent appends never surface mid-query — the MVCC-lite
// read side of ingestion), the cache snapshot the whole query runs
// against, and the stats tallies. Nothing in it is shared between
// concurrent queries.
type queryCtx struct {
	cat   *catalog.Catalog
	cache *cache.Cache
	stats QueryStats
	// sp is the current parent span for instrumentation (nil when the
	// query is not sampled — every span call is nil-safe and free). It is
	// only touched by the query's orchestration goroutine.
	sp *obs.Span
	// provide, when non-nil, offers pre-computed scan results to the
	// parallelize phase (batch replays consume the batch's fused scans
	// through it). Nil for ordinary queries.
	provide scanProvider
}

// tempCat returns the catalog to register subquery temporaries in. The
// query's pinning snapshot doubles as the private overlay: local
// registrations shadow the session catalog without writing to it, so
// concurrent queries can materialize temps under the same alias.
func (qc *queryCtx) tempCat() *catalog.Catalog { return qc.cat }

// Request is one query submission: the statement plus the mode to run
// it in. Every entry point — Query, QueryContext, QueryBatches,
// QueryBatch — reduces to Requests flowing through the session's single
// internal submission path.
type Request struct {
	// SQL is the statement text.
	SQL string
	// Mode selects baseline / rewrite / share execution. The zero value
	// is ModeBaseline. QueryBatch runs its whole batch under the mode
	// passed to it and ignores per-Request modes.
	Mode Mode
}

// Query parses and runs a SQL statement in the given mode.
func (s *Session) Query(sql string, mode Mode) (*Result, error) {
	return s.QueryContext(context.Background(), sql, mode)
}

// QueryContext parses and runs a SQL statement in the given mode under a
// context: cancellation and deadlines propagate into the scan, join,
// accumulate and finisher loops, which poll cooperatively. The session's
// QueryTimeout (if any) is nested inside ctx. Internal panics anywhere on
// the query path are recovered and returned as errors — a faulty query
// never kills the process.
//
// QueryContext is safe to call from any number of goroutines. When
// Options.MaxConcurrentQueries is set, excess calls queue here until a
// slot frees or ctx is done.
func (s *Session) QueryContext(ctx context.Context, sql string, mode Mode) (*Result, error) {
	return s.submit(ctx, Request{SQL: sql, Mode: mode})
}

// admitted is the shared front door of the submission path: the
// lifecycle gate (a closed/draining session rejects new work with the
// typed sentinel; admitted work is tracked so Close can wait for it),
// admission control (bound the queries executing at once so the morsel
// scheduler isn't oversubscribed — queued callers stay cancelable, and
// resolve deterministically when the session closes mid-wait: a slot,
// their own context, or the close), and query-timeout nesting. Both
// single submissions and whole batches (one slot per batch) pass
// through it. The returned release func must be deferred by the caller;
// it is nil exactly when err is non-nil.
func (s *Session) admitted(ctx context.Context, kind string) (outCtx context.Context, queued time.Duration, release func(), err error) {
	if err := s.beginOp(kind); err != nil {
		return nil, 0, nil, err
	}
	release = s.endOp
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
		default:
			waitStart := time.Now()
			select {
			case s.admit <- struct{}{}:
				queued = time.Since(waitStart)
				s.queueNanos.Add(int64(queued))
			case <-ctx.Done():
				s.endOp()
				return nil, 0, nil, fmt.Errorf("%w: %w", errs.ErrCanceled, ctx.Err())
			case <-s.closedCh():
				s.endOp()
				return nil, 0, nil, fmt.Errorf("%w: engine closed while queued for admission", errs.ErrEngineClosed)
			}
		}
		prev := release
		release = func() { <-s.admit; prev() }
	}
	s.mu.RLock()
	timeout := s.queryTimeout
	s.mu.RUnlock()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		prev := release
		release = func() { cancel(); prev() }
	}
	return ctx, queued, release, nil
}

// submit runs one Request end to end: admission, trace sampling, parse,
// analyze (the rule pipeline), execute, stats finalization. This is the
// single internal submission path every query entry point flows through.
func (s *Session) submit(ctx context.Context, req Request) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, queued, release, err := s.admitted(ctx, "query")
	if err != nil {
		return nil, err
	}
	defer release()
	if queued > 0 {
		s.queriesQueued.Add(1)
	}
	s.queriesStarted.Add(1)
	// Trace sampling: a sampled query gets a span tree threaded through
	// the whole pipeline; an unsampled one threads nil spans, which every
	// span method treats as a free no-op.
	var tr *obs.Trace
	if s.sampler.Sample() {
		tr = obs.NewTrace("query")
		tr.Root().SetStr("mode", req.Mode.String())
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("query panicked (recovered): %v", r)
		}
		// Classify cancellation/deadline failures under ErrCanceled. The
		// original context error stays wrapped too, so both
		// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
		// hold.
		if err != nil && !errors.Is(err, errs.ErrCanceled) &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			err = fmt.Errorf("%w: %w", errs.ErrCanceled, err)
		}
		elapsed := time.Since(start)
		s.queryNanos.Add(int64(elapsed))
		s.queryHist.Observe(elapsed.Seconds())
		if err != nil {
			s.queriesFailed.Add(1)
			return
		}
		s.queriesCompleted.Add(1)
		s.rowsScanned.Add(int64(res.RowsScanned))
		res.Stats.WallTime = elapsed
		res.Stats.QueueWait = queued
		res.Stats.RowsScanned = res.RowsScanned
		tr.Finish()
		res.Trace = tr
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	psp := tr.Root().Child("parse")
	stmt, err := sqlparse.Parse(req.SQL)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrParse, err)
	}
	// The snapshot pins one version of every table the query resolves,
	// so concurrent appends (which publish new versions, never mutate
	// old ones) stay invisible to in-flight scans, batch cursors and
	// row iterators.
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache(), sp: tr.Root()}
	return s.runStmt(ctx, qc, stmt, req.Mode, 0)
}

func (s *Session) runStmt(ctx context.Context, qc *queryCtx, stmt *sqlparse.Stmt, mode Mode, depth int) (*Result, error) {
	if depth > 4 {
		return nil, fmt.Errorf("subquery nesting too deep")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Windowed statements flow through their own pipeline: the frame is
	// the grouping structure and the scan is a chronological fold pass.
	if stmt.Window != nil {
		if depth > 0 {
			return nil, fmt.Errorf("windowed subqueries are not supported")
		}
		if err := s.checkAggregates(stmt); err != nil {
			return nil, err
		}
		return s.runWindowStmt(ctx, qc, stmt, mode)
	}
	// Materialize derived tables bottom-up, into the query's private
	// catalog overlay (never the shared session catalog).
	var temps []string
	defer func() {
		for _, t := range temps {
			qc.cat.Drop(t)
		}
	}()
	for i, ref := range stmt.From {
		if ref.Sub == nil {
			continue
		}
		// The subquery gets its own span subtree: swap it in as the
		// current parent for the recursive call, restore after.
		parent := qc.sp
		qc.sp = parent.Child("subquery")
		qc.sp.SetStr("alias", ref.Alias)
		sub, err := s.runStmt(ctx, qc, ref.Sub, mode, depth+1)
		qc.sp.End()
		qc.sp = parent
		if err != nil {
			return nil, err
		}
		sub.Table.Name = ref.Alias
		if err := qc.tempCat().Register(sub.Table); err != nil {
			return nil, err
		}
		temps = append(temps, ref.Alias)
		stmt.From[i] = sqlparse.TableRef{Name: ref.Alias}
	}

	if err := s.checkAggregates(stmt); err != nil {
		return nil, err
	}

	if !s.hasAggregates(stmt) && len(stmt.GroupBy) == 0 {
		sp := qc.sp.Child("scan/project")
		r, err := s.eng.RunSimpleIn(ctx, qc.cat, stmt)
		if err != nil {
			return nil, err
		}
		sp.SetInt("rows", int64(r.Rows))
		sp.End()
		return &Result{Table: r.Table, RowsScanned: r.Rows, Groups: r.Groups}, nil
	}

	// Everything aggregate flows through the fixed analyzer pipeline
	// (resolve → canonicalize → share → fuse → parallelize), then the
	// common execution tail.
	ps := &planState{s: s, qc: qc, stmt: stmt, mode: mode}
	if err := queryPipeline.Run(ctx, ps, nil); err != nil {
		return nil, err
	}
	return s.executePlan(ctx, ps)
}

// noteKernels merges a group result's kernel names into the query stats
// (deduplicated — subqueries may run the same kernels again).
func (qc *queryCtx) noteKernels(gr *exec.GroupResult) {
	for _, k := range gr.Kernels {
		dup := false
		for _, have := range qc.stats.Kernels {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			qc.stats.Kernels = append(qc.stats.Kernels, k)
		}
	}
}

// noteScanAgg annotates a scan/agg span with the run's cost facts:
// joined rows read, groups produced, morsel batch count, and the
// compiled kernels that served it. Nil-safe like every span call.
func noteScanAgg(sp *obs.Span, gr *exec.GroupResult) {
	sp.SetInt("rows", int64(gr.Rows))
	sp.SetInt("groups", int64(gr.NumGroups))
	if gr.Rows > 0 {
		sp.SetInt("batches", int64((gr.Rows+exec.BatchSize-1)/exec.BatchSize))
	}
	sp.SetStr("kernels", strings.Join(gr.Kernels, ","))
}

// noteNumericFaults records a degradation event for tolerated numeric
// faults so they are visible without inspecting every output value.
func noteNumericFaults(res *Result) {
	if res.NumericFaults > 0 {
		res.Events = append(res.Events,
			fmt.Sprintf("numeric: %d NaN/±Inf aggregate output(s) under permissive policy", res.NumericFaults))
	}
}

// checkAggregates rejects calls with aggregate syntax (sum, prod, …)
// that are neither SQL built-ins nor registered UDAFs, up front under
// the ErrUnknownUDAF sentinel — otherwise they would fall through to
// the scalar evaluator and fail confusingly. Shared by the submission
// path, EXPLAIN, and the batch planner.
func (s *Session) checkAggregates(stmt *sqlparse.Stmt) error {
	for _, item := range stmt.Select {
		var unknown error
		expr.Walk(item.Expr, func(n expr.Node) bool {
			if c, ok := n.(*expr.Call); ok && expr.AggregateFuncs[c.Name] && !s.isAgg(c.Name) {
				unknown = fmt.Errorf("%w %q", errs.ErrUnknownUDAF, c.Name)
				return false
			}
			return true
		})
		if unknown != nil {
			return unknown
		}
	}
	return nil
}

func (s *Session) hasAggregates(stmt *sqlparse.Stmt) bool {
	found := false
	for _, item := range stmt.Select {
		expr.Walk(item.Expr, func(n expr.Node) bool {
			if c, ok := n.(*expr.Call); ok && s.isAgg(c.Name) {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// slot is one unique bound aggregation state needed by the query.
type slot struct {
	st       canonical.State
	positive bool
	taskIdx  int // index in the task registry, -1 when cached
	cached   []float64
	finalIdx int // index into the assembled value matrix
}

// addStateTask registers a compiled state task under its key.
func addStateTask(reg *exec.TaskRegistry, st canonical.State, key string) int {
	return reg.Add(key, func(b exec.Binder) (exec.Task, error) {
		return exec.NewStateTask(st, b)
	})
}

// needsSignSplit reports whether a state's future sharing requires the
// |x|/sign companions: products and logarithmic chains.
func needsSignSplit(st canonical.State) bool {
	if st.Op == canonical.OpProd {
		return true
	}
	for _, p := range st.F.Prims {
		if p.Kind == scalar.KLog {
			return true
		}
	}
	return false
}

// alignEntryToResult reorders entry-ordered values into the result's
// group order.
func alignEntryToResult(entry *cache.GroupTable, gr *exec.GroupResult, vals []float64) ([]float64, bool) {
	if entry == nil || entry.NumGroups() != gr.NumGroups {
		return nil, false
	}
	out := make([]float64, gr.NumGroups)
	for g, key := range gr.Keys {
		i, ok := entry.IndexOf(key)
		if !ok {
			return nil, false
		}
		out[g] = vals[i]
	}
	return out, true
}

// baselineFinisher compiles one aggregate call for the baseline system:
// built-ins run native fast paths, UDAFs run hardcoded-interpreted.
func (s *Session) baselineFinisher(call *expr.Call, reg *exec.TaskRegistry) (exec.Finisher, error) {
	if kind, ok := exec.LookupBuiltin(call.Name); ok {
		wantArgs := 1
		if kind == exec.BCount {
			wantArgs = 0
		}
		if kind == exec.BCovar {
			wantArgs = 2
		}
		if len(call.Args) != wantArgs {
			return nil, fmt.Errorf("%s takes %d argument(s), got %d", call.Name, wantArgs, len(call.Args))
		}
		idx := reg.Add("builtin:"+call.String(), func(b exec.Binder) (exec.Task, error) {
			bt := &exec.BuiltinTask{Kind: kind, Lbl: call.Name}
			if len(call.Args) > 0 {
				in, err := exec.CompileExpr(call.Args[0], b.Bind)
				if err != nil {
					return nil, err
				}
				bt.In = in
			}
			if len(call.Args) > 1 {
				in2, err := exec.CompileExpr(call.Args[1], b.Bind)
				if err != nil {
					return nil, err
				}
				bt.In2 = in2
			}
			return bt, nil
		})
		return func(vals [][]float64, g int) float64 { return vals[idx][g] }, nil
	}
	form, ok := s.UDAF(call.Name)
	if !ok {
		return nil, fmt.Errorf("%w %q", errs.ErrUnknownUDAF, call.Name)
	}
	if form.HardT != nil {
		// Hardcoded-terminating-function aggregates (the approx quantile
		// family) are *native* in the baseline systems too (Spark's
		// percentile_approx): compiled state loops, not interpreted.
		return s.nativeFormFinisher(form, call, reg)
	}
	idx := reg.Add("naive:"+call.String(), func(b exec.Binder) (exec.Task, error) {
		return exec.NewNaiveUDAFTask(form, call, b.Bind)
	})
	return func(vals [][]float64, g int) float64 { return vals[idx][g] }, nil
}

// nativeFormFinisher compiles a form's states as fast tasks and its
// terminating function as a closure (used by the baseline for natively
// implemented aggregates).
func (s *Session) nativeFormFinisher(form *canonical.Form, call *expr.Call, reg *exec.TaskRegistry) (exec.Finisher, error) {
	if len(call.Args) != len(form.Params) {
		return nil, fmt.Errorf("%s takes %d argument(s), got %d", form.Name, len(form.Params), len(call.Args))
	}
	bind := map[string]expr.Node{}
	for i, p := range form.Params {
		bind[p] = call.Args[i]
	}
	idxs := make([]int, len(form.States))
	for j, st := range form.States {
		bs := st
		if st.Op != canonical.OpCount {
			bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
		}
		idxs[j] = addStateTask(reg, bs, "native:"+bs.Key())
	}
	tfn, err := form.CompileT()
	if err != nil {
		return nil, err
	}
	buf := make([]float64, len(idxs))
	return func(vals [][]float64, g int) float64 {
		for j, ix := range idxs {
			buf[j] = vals[ix][g]
		}
		return tfn(buf)
	}, nil
}

// formFor returns the canonical form for any aggregate name: registered
// UDAFs directly, SQL built-ins through their declarative definitions.
func (s *Session) formFor(name string) (*canonical.Form, error) {
	if f, ok := s.UDAF(name); ok {
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.builtinForms == nil {
		s.builtinForms = map[string]*canonical.Form{}
	}
	if f, ok := s.builtinForms[name]; ok {
		return f, nil
	}
	body, params := builtinFormDef(name)
	if body == "" {
		return nil, fmt.Errorf("%w %q", errs.ErrUnknownUDAF, name)
	}
	f, err := canonical.Decompose(name, params, expr.MustParse(body))
	if err != nil {
		return nil, err
	}
	s.builtinForms[name] = f
	return f, nil
}

// builtinFormDef gives the declarative definition of a SQL built-in.
func builtinFormDef(name string) (body string, params []string) {
	switch name {
	case "sum":
		return "sum(x)", []string{"x"}
	case "count":
		return "count()", nil
	case "avg", "mean":
		return "avg(x)", []string{"x"}
	case "min":
		return "min(x)", []string{"x"}
	case "max":
		return "max(x)", []string{"x"}
	case "std", "stddev", "stddev_pop":
		return "sqrt(sum(x^2)/n - (sum(x)/n)^2)", []string{"x"}
	case "var", "variance", "var_pop":
		return "sum(x^2)/n - (sum(x)/n)^2", []string{"x"}
	case "covar_pop", "covar":
		return "sum(x*y)/n - sum(x)*sum(y)/n^2", []string{"x", "y"}
	}
	return "", nil
}

// basePositive conservatively decides whether a bound base expression is
// strictly positive on the given tables (column min stats, products and
// even powers of positives). It resolves columns against the query's
// catalog view so subquery temporaries are considered too.
func basePositive(cat *catalog.Catalog, base expr.Node, tables []string) bool {
	switch t := base.(type) {
	case *expr.Num:
		return t.Val > 0
	case *expr.Var:
		tbl, err := cat.ResolveColumn(t.Name, tables)
		if err != nil {
			return false
		}
		// StatsFull, not Stats: an empty or all-NaN column reports the
		// (+Inf, -Inf) sentinels, where min > 0 would wrongly claim
		// positivity (and a NaN anywhere defeats it regardless of min —
		// NaN is not positive, and ln-based sharing rewrites would turn
		// it into a wrong, not-NaN result).
		min, max, hasNaN := tbl.Col(t.Name).StatsFull()
		return min > 0 && min <= max && !hasNaN
	case *expr.Bin:
		switch t.Op {
		case '*', '/', '+':
			return basePositive(cat, t.L, tables) && basePositive(cat, t.R, tables)
		case '^':
			return basePositive(cat, t.L, tables)
		}
		return false
	case *expr.Call:
		if t.Name == "exp" {
			return true
		}
		return false
	}
	return false
}
