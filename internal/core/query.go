package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/obs"
	"sudaf/internal/rewrite"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// QueryStats is the per-query observability record attached to every
// Result: what the query cost and how the cache served it.
type QueryStats struct {
	// WallTime is the query's execution time (admission wait excluded).
	WallTime time.Duration
	// QueueWait is the time spent waiting for an admission slot (0 when
	// MaxConcurrentQueries is unset or a slot was free).
	QueueWait time.Duration
	// RowsScanned is the number of joined base rows read.
	RowsScanned int
	// CacheExactHits / CacheSharedHits / CacheSignHits / CacheMisses
	// count this query's state lookups by outcome (share mode only).
	CacheExactHits  int
	CacheSharedHits int
	CacheSignHits   int
	CacheMisses     int
	// Kernels names the aggregation tasks that ran through compiled batch
	// kernels (empty when nothing executed or kernels were off).
	Kernels []string
}

// Result is a finished SUDAF query.
type Result struct {
	Table *storage.Table
	// RowsScanned is the number of joined base rows read; 0 means the
	// query was answered entirely from the cache.
	RowsScanned int
	// Groups before LIMIT.
	Groups int
	// UsedView names the materialized view a roll-up rewriting used.
	UsedView string
	// FullCacheHit reports that no execution was needed.
	FullCacheHit bool
	// NumericFaults counts NaN/±Inf aggregate outputs observed under the
	// permissive numeric policy.
	NumericFaults int
	// Events records degradation events: cache states dropped after
	// failing integrity checks, recovered cache faults, numeric faults
	// tolerated under the permissive policy. The query still succeeded —
	// these report *how*.
	Events []string
	// Stats is the per-query cost/cache observability record.
	Stats QueryStats
	// Trace is this query's span tree, present only when the session's
	// TraceRate sampled it (nil otherwise). Render with Trace.Tree() or
	// Trace.JSON().
	Trace *obs.Trace
}

// queryCtx is the shared-nothing per-call state of one query: the
// catalog snapshot (which pins one version of every table the query
// touches, so concurrent appends never surface mid-query — the MVCC-lite
// read side of ingestion), the cache snapshot the whole query runs
// against, and the stats tallies. Nothing in it is shared between
// concurrent queries.
type queryCtx struct {
	cat   *catalog.Catalog
	cache *cache.Cache
	stats QueryStats
	// sp is the current parent span for instrumentation (nil when the
	// query is not sampled — every span call is nil-safe and free). It is
	// only touched by the query's orchestration goroutine.
	sp *obs.Span
}

// tempCat returns the catalog to register subquery temporaries in. The
// query's pinning snapshot doubles as the private overlay: local
// registrations shadow the session catalog without writing to it, so
// concurrent queries can materialize temps under the same alias.
func (qc *queryCtx) tempCat() *catalog.Catalog { return qc.cat }

// Query parses and runs a SQL statement in the given mode.
func (s *Session) Query(sql string, mode Mode) (*Result, error) {
	return s.QueryContext(context.Background(), sql, mode)
}

// QueryContext parses and runs a SQL statement in the given mode under a
// context: cancellation and deadlines propagate into the scan, join,
// accumulate and finisher loops, which poll cooperatively. The session's
// QueryTimeout (if any) is nested inside ctx. Internal panics anywhere on
// the query path are recovered and returned as errors — a faulty query
// never kills the process.
//
// QueryContext is safe to call from any number of goroutines. When
// Options.MaxConcurrentQueries is set, excess calls queue here until a
// slot frees or ctx is done.
func (s *Session) QueryContext(ctx context.Context, sql string, mode Mode) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Lifecycle gate: a closed (draining) session rejects new queries
	// with the typed sentinel; admitted queries are tracked so Close can
	// wait for them.
	if err := s.beginOp("query"); err != nil {
		return nil, err
	}
	defer s.endOp()
	// Admission control: bound the queries executing at once so the
	// morsel scheduler isn't oversubscribed. Queued callers stay
	// cancelable, and resolve deterministically when the session closes
	// mid-wait: a slot (the query is accepted and runs under the drain),
	// their own context (ErrCanceled), or the close (ErrEngineClosed).
	var queued time.Duration
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
		default:
			waitStart := time.Now()
			select {
			case s.admit <- struct{}{}:
				queued = time.Since(waitStart)
				s.queueNanos.Add(int64(queued))
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w", errs.ErrCanceled, ctx.Err())
			case <-s.closedCh():
				return nil, fmt.Errorf("%w: engine closed while queued for admission", errs.ErrEngineClosed)
			}
		}
		defer func() { <-s.admit }()
	}
	s.mu.RLock()
	timeout := s.queryTimeout
	s.mu.RUnlock()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if queued > 0 {
		s.queriesQueued.Add(1)
	}
	s.queriesStarted.Add(1)
	// Trace sampling: a sampled query gets a span tree threaded through
	// the whole pipeline; an unsampled one threads nil spans, which every
	// span method treats as a free no-op.
	var tr *obs.Trace
	if s.sampler.Sample() {
		tr = obs.NewTrace("query")
		tr.Root().SetStr("mode", mode.String())
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("query panicked (recovered): %v", r)
		}
		// Classify cancellation/deadline failures under ErrCanceled. The
		// original context error stays wrapped too, so both
		// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
		// hold.
		if err != nil && !errors.Is(err, errs.ErrCanceled) &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			err = fmt.Errorf("%w: %w", errs.ErrCanceled, err)
		}
		elapsed := time.Since(start)
		s.queryNanos.Add(int64(elapsed))
		s.queryHist.Observe(elapsed.Seconds())
		if err != nil {
			s.queriesFailed.Add(1)
			return
		}
		s.queriesCompleted.Add(1)
		s.rowsScanned.Add(int64(res.RowsScanned))
		res.Stats.WallTime = elapsed
		res.Stats.QueueWait = queued
		res.Stats.RowsScanned = res.RowsScanned
		tr.Finish()
		res.Trace = tr
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	psp := tr.Root().Child("parse")
	stmt, err := sqlparse.Parse(sql)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrParse, err)
	}
	// The snapshot pins one version of every table the query resolves,
	// so concurrent appends (which publish new versions, never mutate
	// old ones) stay invisible to in-flight scans, batch cursors and
	// row iterators.
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache(), sp: tr.Root()}
	return s.runStmt(ctx, qc, stmt, mode, 0)
}

func (s *Session) runStmt(ctx context.Context, qc *queryCtx, stmt *sqlparse.Stmt, mode Mode, depth int) (*Result, error) {
	if depth > 4 {
		return nil, fmt.Errorf("subquery nesting too deep")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Materialize derived tables bottom-up, into the query's private
	// catalog overlay (never the shared session catalog).
	var temps []string
	defer func() {
		for _, t := range temps {
			qc.cat.Drop(t)
		}
	}()
	for i, ref := range stmt.From {
		if ref.Sub == nil {
			continue
		}
		// The subquery gets its own span subtree: swap it in as the
		// current parent for the recursive call, restore after.
		parent := qc.sp
		qc.sp = parent.Child("subquery")
		qc.sp.SetStr("alias", ref.Alias)
		sub, err := s.runStmt(ctx, qc, ref.Sub, mode, depth+1)
		qc.sp.End()
		qc.sp = parent
		if err != nil {
			return nil, err
		}
		sub.Table.Name = ref.Alias
		if err := qc.tempCat().Register(sub.Table); err != nil {
			return nil, err
		}
		temps = append(temps, ref.Alias)
		stmt.From[i] = sqlparse.TableRef{Name: ref.Alias}
	}

	// A call with aggregate syntax (sum, prod, …) that is neither a SQL
	// built-in nor a registered UDAF would otherwise fall through to the
	// scalar evaluator and fail confusingly; reject it up front under the
	// ErrUnknownUDAF sentinel.
	for _, item := range stmt.Select {
		var unknown error
		expr.Walk(item.Expr, func(n expr.Node) bool {
			if c, ok := n.(*expr.Call); ok && expr.AggregateFuncs[c.Name] && !s.isAgg(c.Name) {
				unknown = fmt.Errorf("%w %q", errs.ErrUnknownUDAF, c.Name)
				return false
			}
			return true
		})
		if unknown != nil {
			return nil, unknown
		}
	}

	if !s.hasAggregates(stmt) && len(stmt.GroupBy) == 0 {
		sp := qc.sp.Child("scan/project")
		r, err := s.eng.RunSimpleIn(ctx, qc.cat, stmt)
		if err != nil {
			return nil, err
		}
		sp.SetInt("rows", int64(r.Rows))
		sp.End()
		return &Result{Table: r.Table, RowsScanned: r.Rows, Groups: r.Groups}, nil
	}

	psp := qc.sp.Child("plan")
	dp, err := s.eng.PrepareDataIn(qc.cat, stmt)
	if err != nil {
		return nil, err
	}
	psp.SetStr("fingerprint", dp.Fingerprint)
	psp.End()

	// Extract aggregate calls into placeholders.
	var calls []*expr.Call
	items := make([]sqlparse.SelectItem, len(stmt.Select))
	for i, item := range stmt.Select {
		items[i] = sqlparse.SelectItem{
			Expr:  exec.ExtractAggCalls(item.Expr, s.isAgg, &calls),
			Alias: item.Alias,
		}
	}
	spec := exec.OutputSpec{Items: items, Numeric: s.NumericPolicySetting()}
	reg := exec.NewTaskRegistry()

	if mode == ModeBaseline {
		for _, call := range calls {
			fin, err := s.baselineFinisher(call, reg)
			if err != nil {
				return nil, err
			}
			spec.Finishers = append(spec.Finishers, fin)
			spec.Labels = append(spec.Labels, call.String())
		}
		ssp := qc.sp.Child("scan/agg")
		gr, err := s.eng.RunSpecs(ctx, dp, reg)
		if err != nil {
			return nil, err
		}
		noteScanAgg(ssp, gr)
		ssp.End()
		fsp := qc.sp.Child("finisher")
		out, err := exec.BuildOutput(ctx, stmt, dp, gr, spec)
		if err != nil {
			return nil, err
		}
		fsp.SetInt("groups", int64(out.Groups))
		fsp.End()
		qc.noteKernels(gr)
		res := &Result{Table: out.Table, RowsScanned: gr.Rows, Groups: out.Groups,
			NumericFaults: out.NumericFaults, Stats: qc.stats}
		noteNumericFaults(res)
		return res, nil
	}

	return s.runSUDAF(ctx, qc, stmt, dp, calls, spec, reg, mode)
}

// noteKernels merges a group result's kernel names into the query stats
// (deduplicated — subqueries may run the same kernels again).
func (qc *queryCtx) noteKernels(gr *exec.GroupResult) {
	for _, k := range gr.Kernels {
		dup := false
		for _, have := range qc.stats.Kernels {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			qc.stats.Kernels = append(qc.stats.Kernels, k)
		}
	}
}

// noteScanAgg annotates a scan/agg span with the run's cost facts:
// joined rows read, groups produced, morsel batch count, and the
// compiled kernels that served it. Nil-safe like every span call.
func noteScanAgg(sp *obs.Span, gr *exec.GroupResult) {
	sp.SetInt("rows", int64(gr.Rows))
	sp.SetInt("groups", int64(gr.NumGroups))
	if gr.Rows > 0 {
		sp.SetInt("batches", int64((gr.Rows+exec.BatchSize-1)/exec.BatchSize))
	}
	sp.SetStr("kernels", strings.Join(gr.Kernels, ","))
}

// noteNumericFaults records a degradation event for tolerated numeric
// faults so they are visible without inspecting every output value.
func noteNumericFaults(res *Result) {
	if res.NumericFaults > 0 {
		res.Events = append(res.Events,
			fmt.Sprintf("numeric: %d NaN/±Inf aggregate output(s) under permissive policy", res.NumericFaults))
	}
}

func (s *Session) hasAggregates(stmt *sqlparse.Stmt) bool {
	found := false
	for _, item := range stmt.Select {
		expr.Walk(item.Expr, func(n expr.Node) bool {
			if c, ok := n.(*expr.Call); ok && s.isAgg(c.Name) {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// slot is one unique bound aggregation state needed by the query.
type slot struct {
	st       canonical.State
	positive bool
	taskIdx  int // index in the task registry, -1 when cached
	cached   []float64
	finalIdx int // index into the assembled value matrix
}

// runSUDAF executes a query in ModeRewrite or ModeShare.
func (s *Session) runSUDAF(ctx context.Context, qc *queryCtx, stmt *sqlparse.Stmt, dp *exec.DataPlan, calls []*expr.Call,
	spec exec.OutputSpec, reg *exec.TaskRegistry, mode Mode) (*Result, error) {

	// events accumulates degradation notes (cache faults survived, states
	// dropped). The cache is an accelerator: any fault in it downgrades to
	// recomputation from base data, never a failed query.
	var events []string
	guard := func(stage string, f func()) {
		defer func() {
			if r := recover(); r != nil {
				events = append(events, fmt.Sprintf(
					"cache: panic during %s (recovered); falling back to recomputation: %v", stage, r))
			}
		}()
		f()
	}

	slots := map[string]*slot{}
	var slotOrder []string
	getSlot := func(st canonical.State, positive bool) *slot {
		key := st.Key()
		if sl, ok := slots[key]; ok {
			return sl
		}
		sl := &slot{st: st, positive: positive, taskIdx: -1}
		slots[key] = sl
		slotOrder = append(slotOrder, key)
		return sl
	}

	// Decompose every aggregate call into bound states + a finisher.
	csp := qc.sp.Child("canonicalize")
	for _, call := range calls {
		form, err := s.formFor(call.Name)
		if err != nil {
			return nil, err
		}
		if len(call.Args) != len(form.Params) {
			return nil, fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		callSlots := make([]*slot, len(form.States))
		for j, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			callSlots[j] = getSlot(bs, basePositive(qc.cat, bs.Base, dp.Tables()))
		}
		tfn, err := form.CompileT()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", call.Name, err)
		}
		cs := callSlots
		buf := make([]float64, len(cs))
		spec.Finishers = append(spec.Finishers, func(vals [][]float64, g int) float64 {
			for j, sl := range cs {
				buf[j] = vals[sl.finalIdx][g]
			}
			return tfn(buf)
		})
		spec.Labels = append(spec.Labels, call.String())
	}
	csp.SetInt("aggregates", int64(len(calls)))
	csp.SetInt("states", int64(len(slotOrder)))
	csp.End()

	// Cache consultation (share mode only). Guarded: a cache that panics
	// behaves like a cache that misses. The query runs against its
	// admission-time cache snapshot (qc.cache) throughout, so a
	// concurrent ClearCache can't split one query across two caches.
	var entry *cache.GroupTable
	entryOK := false
	if mode == ModeShare {
		lsp := qc.sp.Child("sharing-lookup")
		guard("entry lookup", func() {
			entry, entryOK = qc.cache.Entry(dp.Fingerprint)
		})
		for _, key := range slotOrder {
			sl := slots[key]
			guard("state lookup", func() {
				vals, kind, ok := qc.cache.LookupKind(dp.Fingerprint, sl.st, sl.positive)
				if ok {
					sl.cached = vals
				}
				switch kind {
				case cache.HitExact:
					qc.stats.CacheExactHits++
				case cache.HitShared:
					qc.stats.CacheSharedHits++
				case cache.HitSign:
					qc.stats.CacheSignHits++
				default:
					qc.stats.CacheMisses++
				}
			})
		}
		lsp.SetInt("exact", int64(qc.stats.CacheExactHits))
		lsp.SetInt("shared", int64(qc.stats.CacheSharedHits))
		lsp.SetInt("sign", int64(qc.stats.CacheSignHits))
		lsp.SetInt("miss", int64(qc.stats.CacheMisses))
		lsp.End()
	}

	var missing []*slot
	for _, key := range slotOrder {
		if sl := slots[key]; sl.cached == nil {
			missing = append(missing, sl)
		}
	}

	// Aggregate-view rewriting for the missing states (Q3 → RQ3').
	dpRun := dp
	usedView := ""
	if len(missing) > 0 && s.ViewRewriting() && !entryOK {
		vsp := qc.sp.Child("view-rewrite")
		if dpv, rollup, name := s.tryViews(qc, dp, missing); dpv != nil {
			dpRun = dpv
			usedView = name
			vsp.SetStr("view", name)
			for _, sl := range missing {
				st := rewrite.RollupState(sl.st, rollup.StateCol[sl.st.Key()])
				sl.taskIdx = addStateTask(reg, st, sl.st.Key())
			}
			missing = nil
		}
		vsp.End()
	}

	// Remaining missing states execute from base data, plus §5.3
	// sign-split companions for states that need them.
	var companions []*slot
	for _, sl := range missing {
		sl.taskIdx = addStateTask(reg, sl.st, sl.st.Key())
		if mode == ModeShare && !sl.positive && needsSignSplit(sl.st) {
			lnAbs, sgnProd := cache.SignSplitStates(sl.st.Base)
			for _, comp := range []canonical.State{lnAbs, sgnProd} {
				cs := &slot{st: comp, positive: false}
				cs.taskIdx = addStateTask(reg, comp, comp.Key())
				companions = append(companions, cs)
			}
		}
	}

	// Execute, or synthesize the group structure from the cache.
	var gr *exec.GroupResult
	fullHit := false
	if reg.Len() == 0 && mode == ModeShare && entryOK {
		gr = &exec.GroupResult{
			NumGroups:  entry.NumGroups(),
			Keys:       entry.Keys,
			KeyNames:   entry.KeyNames,
			KeyColumns: entry.KeyCols,
			Rows:       0,
		}
		fullHit = true
	} else {
		ssp := qc.sp.Child("scan/agg")
		ssp.SetInt("tasks", int64(reg.Len()))
		var err error
		gr, err = s.eng.RunSpecs(ctx, dpRun, reg)
		if err != nil {
			return nil, err
		}
		noteScanAgg(ssp, gr)
		ssp.End()
		qc.noteKernels(gr)
	}

	// Assemble the value matrix: task outputs first, then cached arrays
	// aligned to the result's group order.
	for _, key := range slotOrder {
		sl := slots[key]
		if sl.cached == nil {
			sl.finalIdx = sl.taskIdx
			continue
		}
		aligned := sl.cached
		if !fullHit {
			var ok bool
			aligned, ok = alignEntryToResult(entry, gr, sl.cached)
			if !ok {
				return nil, fmt.Errorf("cache entry misaligned with result groups for state %s", key)
			}
		}
		sl.finalIdx = len(gr.Values)
		gr.Values = append(gr.Values, aligned)
	}

	// Cache the freshly computed states (and companions). Guarded: a
	// failed insert costs future sharing, not this query.
	if mode == ModeShare && !fullHit {
		stsp := qc.sp.Child("cache-store")
		stored := 0
		guard("state insert", func() {
			gt := cache.NewGroupTable(dp.Fingerprint, gr.KeyNames, gr.Keys, gr.KeyColumns)
			// Attach the maintenance record: the statement's data part
			// plus the pinned table versions it ran against. The append
			// path uses it to delta-fold future batches into this entry
			// instead of invalidating it.
			gt.Maint = newMaintRec(stmt, dp)
			for _, key := range slotOrder {
				sl := slots[key]
				if sl.taskIdx >= 0 {
					_ = gt.AddState(&cache.CachedState{
						State:         sl.st,
						Vals:          gr.Values[sl.taskIdx],
						PositiveInput: sl.positive,
					})
				}
			}
			for _, cs := range companions {
				_ = gt.AddState(&cache.CachedState{State: cs.st, Vals: gr.Values[cs.taskIdx]})
			}
			if gt.NumStates() > 0 {
				qc.cache.Put(gt)
				stored = gt.NumStates()
			}
		})
		stsp.SetInt("states", int64(stored))
		stsp.End()
	}

	fsp := qc.sp.Child("finisher")
	out, err := exec.BuildOutput(ctx, stmt, dpRun, gr, spec)
	if err != nil {
		return nil, err
	}
	fsp.SetInt("groups", int64(out.Groups))
	fsp.End()
	if mode == ModeShare {
		events = append(events, qc.cache.DrainEvents()...)
	}
	res := &Result{
		Table:         out.Table,
		RowsScanned:   gr.Rows,
		Groups:        out.Groups,
		UsedView:      usedView,
		FullCacheHit:  fullHit,
		NumericFaults: out.NumericFaults,
		Events:        events,
		Stats:         qc.stats,
	}
	noteNumericFaults(res)
	return res, nil
}

// addStateTask registers a compiled state task under its key.
func addStateTask(reg *exec.TaskRegistry, st canonical.State, key string) int {
	return reg.Add(key, func(b exec.Binder) (exec.Task, error) {
		return exec.NewStateTask(st, b)
	})
}

// needsSignSplit reports whether a state's future sharing requires the
// |x|/sign companions: products and logarithmic chains.
func needsSignSplit(st canonical.State) bool {
	if st.Op == canonical.OpProd {
		return true
	}
	for _, p := range st.F.Prims {
		if p.Kind == scalar.KLog {
			return true
		}
	}
	return false
}

// alignEntryToResult reorders entry-ordered values into the result's
// group order.
func alignEntryToResult(entry *cache.GroupTable, gr *exec.GroupResult, vals []float64) ([]float64, bool) {
	if entry == nil || entry.NumGroups() != gr.NumGroups {
		return nil, false
	}
	out := make([]float64, gr.NumGroups)
	for g, key := range gr.Keys {
		i, ok := entry.IndexOf(key)
		if !ok {
			return nil, false
		}
		out[g] = vals[i]
	}
	return out, true
}

// baselineFinisher compiles one aggregate call for the baseline system:
// built-ins run native fast paths, UDAFs run hardcoded-interpreted.
func (s *Session) baselineFinisher(call *expr.Call, reg *exec.TaskRegistry) (exec.Finisher, error) {
	if kind, ok := exec.LookupBuiltin(call.Name); ok {
		wantArgs := 1
		if kind == exec.BCount {
			wantArgs = 0
		}
		if kind == exec.BCovar {
			wantArgs = 2
		}
		if len(call.Args) != wantArgs {
			return nil, fmt.Errorf("%s takes %d argument(s), got %d", call.Name, wantArgs, len(call.Args))
		}
		idx := reg.Add("builtin:"+call.String(), func(b exec.Binder) (exec.Task, error) {
			bt := &exec.BuiltinTask{Kind: kind, Lbl: call.Name}
			if len(call.Args) > 0 {
				in, err := exec.CompileExpr(call.Args[0], b.Bind)
				if err != nil {
					return nil, err
				}
				bt.In = in
			}
			if len(call.Args) > 1 {
				in2, err := exec.CompileExpr(call.Args[1], b.Bind)
				if err != nil {
					return nil, err
				}
				bt.In2 = in2
			}
			return bt, nil
		})
		return func(vals [][]float64, g int) float64 { return vals[idx][g] }, nil
	}
	form, ok := s.UDAF(call.Name)
	if !ok {
		return nil, fmt.Errorf("%w %q", errs.ErrUnknownUDAF, call.Name)
	}
	if form.HardT != nil {
		// Hardcoded-terminating-function aggregates (the approx quantile
		// family) are *native* in the baseline systems too (Spark's
		// percentile_approx): compiled state loops, not interpreted.
		return s.nativeFormFinisher(form, call, reg)
	}
	idx := reg.Add("naive:"+call.String(), func(b exec.Binder) (exec.Task, error) {
		return exec.NewNaiveUDAFTask(form, call, b.Bind)
	})
	return func(vals [][]float64, g int) float64 { return vals[idx][g] }, nil
}

// nativeFormFinisher compiles a form's states as fast tasks and its
// terminating function as a closure (used by the baseline for natively
// implemented aggregates).
func (s *Session) nativeFormFinisher(form *canonical.Form, call *expr.Call, reg *exec.TaskRegistry) (exec.Finisher, error) {
	if len(call.Args) != len(form.Params) {
		return nil, fmt.Errorf("%s takes %d argument(s), got %d", form.Name, len(form.Params), len(call.Args))
	}
	bind := map[string]expr.Node{}
	for i, p := range form.Params {
		bind[p] = call.Args[i]
	}
	idxs := make([]int, len(form.States))
	for j, st := range form.States {
		bs := st
		if st.Op != canonical.OpCount {
			bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
		}
		idxs[j] = addStateTask(reg, bs, "native:"+bs.Key())
	}
	tfn, err := form.CompileT()
	if err != nil {
		return nil, err
	}
	buf := make([]float64, len(idxs))
	return func(vals [][]float64, g int) float64 {
		for j, ix := range idxs {
			buf[j] = vals[ix][g]
		}
		return tfn(buf)
	}, nil
}

// formFor returns the canonical form for any aggregate name: registered
// UDAFs directly, SQL built-ins through their declarative definitions.
func (s *Session) formFor(name string) (*canonical.Form, error) {
	if f, ok := s.UDAF(name); ok {
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.builtinForms == nil {
		s.builtinForms = map[string]*canonical.Form{}
	}
	if f, ok := s.builtinForms[name]; ok {
		return f, nil
	}
	body, params := builtinFormDef(name)
	if body == "" {
		return nil, fmt.Errorf("%w %q", errs.ErrUnknownUDAF, name)
	}
	f, err := canonical.Decompose(name, params, expr.MustParse(body))
	if err != nil {
		return nil, err
	}
	s.builtinForms[name] = f
	return f, nil
}

// builtinFormDef gives the declarative definition of a SQL built-in.
func builtinFormDef(name string) (body string, params []string) {
	switch name {
	case "sum":
		return "sum(x)", []string{"x"}
	case "count":
		return "count()", nil
	case "avg", "mean":
		return "avg(x)", []string{"x"}
	case "min":
		return "min(x)", []string{"x"}
	case "max":
		return "max(x)", []string{"x"}
	case "std", "stddev", "stddev_pop":
		return "sqrt(sum(x^2)/n - (sum(x)/n)^2)", []string{"x"}
	case "var", "variance", "var_pop":
		return "sum(x^2)/n - (sum(x)/n)^2", []string{"x"}
	case "covar_pop", "covar":
		return "sum(x*y)/n - sum(x)*sum(y)/n^2", []string{"x", "y"}
	}
	return "", nil
}

// basePositive conservatively decides whether a bound base expression is
// strictly positive on the given tables (column min stats, products and
// even powers of positives). It resolves columns against the query's
// catalog view so subquery temporaries are considered too.
func basePositive(cat *catalog.Catalog, base expr.Node, tables []string) bool {
	switch t := base.(type) {
	case *expr.Num:
		return t.Val > 0
	case *expr.Var:
		tbl, err := cat.ResolveColumn(t.Name, tables)
		if err != nil {
			return false
		}
		min, _ := tbl.Col(t.Name).Stats()
		return min > 0
	case *expr.Bin:
		switch t.Op {
		case '*', '/', '+':
			return basePositive(cat, t.L, tables) && basePositive(cat, t.R, tables)
		case '^':
			return basePositive(cat, t.L, tables)
		}
		return false
	case *expr.Call:
		if t.Name == "exp" {
			return true
		}
		return false
	}
	return false
}
