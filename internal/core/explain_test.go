package core

import (
	"strings"
	"testing"
)

func TestRewriteSQLProducesRQ1Shape(t *testing.T) {
	s := newTestSession(t, 100, 1)
	out, err := s.RewriteSQL(q1)
	if err != nil {
		t.Fatal(err)
	}
	// The rewriting must compute partial aggregates with built-ins in a
	// derived table (the RQ1 shape of the paper).
	for _, want := range []string{
		"count(*)", "sum(ss_list_price)", "sum((ss_list_price)^2)",
		"sum(ss_sales_price)", "FROM (SELECT", ") TEMP",
		"GROUP BY ss_item_sk, d_year",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rewritten SQL missing %q:\n%s", want, out)
		}
	}
	// Exactly five states, shared across theta1 and the two avg calls.
	if !strings.Contains(out, "s5") || strings.Contains(out, "s6") {
		t.Errorf("expected exactly 5 states:\n%s", out)
	}
}

func TestRewriteSQLGeometricMean(t *testing.T) {
	s := newTestSession(t, 100, 1)
	out, err := s.RewriteSQL("SELECT ss_item_sk, gm(ss_list_price) FROM store_sales GROUP BY ss_item_sk")
	if err != nil {
		t.Fatal(err)
	}
	// Π is spelled exp(sum(ln(...))) for engines without a product
	// aggregate.
	if !strings.Contains(out, "exp(sum(ln(ss_list_price)))") {
		t.Errorf("gm rewriting:\n%s", out)
	}
}

func TestRewriteSQLRoundTripsThroughParser(t *testing.T) {
	// The generated SQL must itself parse and (modulo the synthetic
	// product spelling) be executable by the engine.
	s := newTestSession(t, 2000, 1)
	out, err := s.RewriteSQL(q2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(out, ModeRewrite)
	if err != nil {
		t.Fatalf("rewritten SQL does not execute: %v\n%s", err, out)
	}
	direct, err := s.Query(q2, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != direct.Table.NumRows() {
		t.Fatalf("row mismatch: %d vs %d", res.Table.NumRows(), direct.Table.NumRows())
	}
	tablesEqual(t, direct.Table, res.Table, "rewritten vs direct")
}

func TestRewriteSQLErrors(t *testing.T) {
	s := newTestSession(t, 10, 1)
	if _, err := s.RewriteSQL("SELECT ss_item_sk FROM store_sales"); err == nil {
		t.Error("no aggregates should error")
	}
	if _, err := s.RewriteSQL("not sql"); err == nil {
		t.Error("bad SQL should error")
	}
}
