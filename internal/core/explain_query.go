package core

import (
	"fmt"
	"sort"
	"strings"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/sqlparse"
)

// Explain is the structured result of ExplainQuery: the canonical
// decomposition of a query's aggregates and — in share mode — the
// sharing provenance of every aggregation state, probed read-only
// against the live cache. Render it with String, or walk the fields.
type Explain struct {
	// SQL is the explained statement; Mode the mode explained for.
	SQL  string
	Mode Mode
	// Fingerprint identifies the query's data part (tables@epoch, joins,
	// filters, grouping) — the cache key namespace its states live under.
	Fingerprint string
	// Tables (name@epoch), Joins, Filters and GroupBy describe the
	// normalized data part.
	Tables  []string
	Joins   []string
	Filters []string
	GroupBy []string
	// Aggregates describes each aggregate call in selection order.
	Aggregates []ExplainAggregate
	// States lists the deduplicated bound aggregation states the query
	// needs (empty in baseline mode, which has no state decomposition).
	States []ExplainState
	// Rewritten is the RQ1/RQ2 SQL rewriting (empty in baseline mode).
	Rewritten string
	// Window is the OVER-clause provenance for windowed statements: the
	// frame shape and the window-qualified fingerprint its per-emission
	// partials are cached under. Nil for non-windowed queries.
	Window *ExplainWindow
	// Shards is the per-shard scatter provenance on a sharded engine
	// (Options.Shards > 1): one entry per shard worker, with its slice
	// fingerprint and — in share mode — its private cache's probed
	// outcome for every state. Empty on unsharded engines and in
	// baseline mode (which never distributes).
	Shards []ExplainShard
}

// ExplainWindow is a windowed statement's frame provenance.
type ExplainWindow struct {
	// Frame is the OVER clause as written, e.g. "ROWS 9 PRECEDING".
	Frame string
	// Unit is "ROWS" or "EPOCHS"; N the frame parameter; Sliding whether
	// the frame slides per row/epoch (PRECEDING) or tumbles; Size the
	// row/epoch capacity of one frame.
	Unit    string
	N       int
	Sliding bool
	Size    int
	// Fingerprint is the window-qualified cache key namespace
	// (data fingerprint + "|W[frame]") the per-emission state vectors
	// live under in share mode.
	Fingerprint string
}

// ExplainShard is one shard worker's scatter provenance.
type ExplainShard struct {
	// Index is the shard number; Table the sharded (scatter) table; Rows
	// the shard's row-range size.
	Index int
	Table string
	Rows  int
	// Fingerprint keys the worker's private cache: the query's data part
	// with the sharded table at the shard's own slice version.
	Fingerprint string
	// Hits aligns with Explain.States: the worker cache's probed outcome
	// per state — "exact", "shared", "sign" or "miss" (nil outside share
	// mode).
	Hits []string
}

// ExplainAggregate is one aggregate call's decomposition.
type ExplainAggregate struct {
	// Call is the call as written, e.g. "gm(price)".
	Call string
	// Form is the canonical form (F, ⊕, T) it decomposes into; in
	// baseline mode this is empty and Exec says how the call runs.
	Form string
	// Exec describes the baseline execution strategy (baseline only).
	Exec string
	// States indexes into Explain.States: the bound states this call's
	// terminating function reads.
	States []int
}

// ExplainState is one deduplicated bound aggregation state and — in
// share mode — how the cache would serve it.
type ExplainState struct {
	// Index is the state's position (StateVar(Index) = "s<Index+1>").
	Index int
	// Key is the canonical state key, e.g. "prod[x](price)".
	Key string
	// Formula is the state as a built-in SQL aggregate, e.g.
	// "exp(sum(ln(price)))".
	Formula string
	// Positive reports the base expression is provably positive on the
	// current data (column min statistics), which widens sharing.
	Positive bool
	// Hit is the probed cache outcome: "exact", "shared", "sign" or
	// "miss" (empty outside share mode).
	Hit string
	// Matched is the cached state key serving the hit (sharing source
	// for a shared hit).
	Matched string
	// Rewrite is the scalar rewriting r with state = r(matched),
	// rendered over s (shared hits only).
	Rewrite string
	// Conditions are the parameter conditions the sharing decision
	// checked; empty means unconditional ("strong") sharing.
	Conditions []string
	// PositiveOnly reports the rewriting is sound only over positive
	// data (satisfied here, or it would not be a hit).
	PositiveOnly bool
	// Companions are the §5.3 sign-split companion states a "sign" hit
	// reconstructs from.
	Companions []string
	// MissReason explains a miss; empty on hits.
	MissReason string
	// Candidates are the cached state keys under the fingerprint the
	// sharing pass had to work with (misses only, for context).
	Candidates []string
}

// ExplainQuery explains how a statement would execute in the given mode
// without executing it: the normalized data part and fingerprint, each
// aggregate's canonical form (F, ⊕, T), the deduplicated aggregation
// states, the RQ rewriting, and — in share mode — per-state cache
// provenance from a read-only probe (no LRU touches, no stats, no
// derived-state materialization). Subqueries are not supported.
func (s *Session) ExplainQuery(sql string, mode Mode) (*Explain, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrParse, err)
	}
	for _, ref := range stmt.From {
		if ref.Sub != nil {
			return nil, fmt.Errorf("EXPLAIN does not support subqueries")
		}
	}
	if err := s.checkAggregates(stmt); err != nil {
		return nil, err
	}

	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache()}
	dp, err := s.eng.PrepareDataIn(qc.cat, stmt)
	if err != nil {
		return nil, err
	}
	info := dp.Info()
	ex := &Explain{
		SQL:         sql,
		Mode:        mode,
		Fingerprint: dp.Fingerprint,
		Joins:       info.Joins,
		GroupBy:     info.GroupBy,
	}
	epochs := dp.TableEpochs()
	for _, t := range info.Tables {
		ex.Tables = append(ex.Tables, fmt.Sprintf("%s@%d", t, epochs[t]))
	}
	// Windowed statements cache per-emission state vectors under the
	// window-qualified fingerprint, so that is where probes must look.
	probeFP := dp.Fingerprint
	if spec := stmt.Window; spec != nil {
		wfp := dp.Fingerprint + "|W[" + spec.String() + "]"
		ex.Window = &ExplainWindow{
			Frame:       spec.String(),
			Unit:        spec.Unit.String(),
			N:           spec.N,
			Sliding:     spec.Sliding,
			Size:        spec.Size(),
			Fingerprint: wfp,
		}
		probeFP = wfp
	}
	var ftabs []string
	for t := range info.Filters {
		ftabs = append(ftabs, t)
	}
	sort.Strings(ftabs)
	for _, t := range ftabs {
		for _, f := range info.Filters[t] {
			ex.Filters = append(ex.Filters, t+": "+f)
		}
	}

	var calls []*expr.Call
	for _, item := range stmt.Select {
		exec.ExtractAggCalls(item.Expr, s.isAgg, &calls)
	}

	if mode == ModeBaseline {
		for _, call := range calls {
			ea := ExplainAggregate{Call: call.String(), Exec: s.baselineExec(call.Name)}
			ex.Aggregates = append(ex.Aggregates, ea)
		}
		return ex, nil
	}

	// Canonical decomposition, mirroring runSUDAF's slot dedup. bound
	// keeps the canonical states index-aligned with ex.States for the
	// shard probe below.
	stateIdx := map[string]int{}
	var bound []canonical.State
	for _, call := range calls {
		form, err := s.formFor(call.Name)
		if err != nil {
			return nil, err
		}
		if len(call.Args) != len(form.Params) {
			return nil, fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		ea := ExplainAggregate{Call: call.String(), Form: form.String()}
		for _, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			key := bs.Key()
			idx, seen := stateIdx[key]
			if !seen {
				idx = len(ex.States)
				stateIdx[key] = idx
				positive := basePositive(qc.cat, bs.Base, dp.Tables())
				es := ExplainState{Index: idx, Key: key, Formula: stateSQL(bs), Positive: positive}
				if mode == ModeShare {
					noteProbe(&es, qc.cache.Probe(probeFP, bs, positive))
				}
				ex.States = append(ex.States, es)
				bound = append(bound, bs)
			}
			ea.States = append(ea.States, idx)
		}
		ex.Aggregates = append(ex.Aggregates, ea)
	}
	if len(calls) > 0 {
		if rw, err := s.RewriteSQL(sql); err == nil {
			ex.Rewritten = rw
		}
	}
	if s.shards != nil && len(bound) > 0 {
		s.explainShards(qc, stmt, dp, ex, bound)
	}
	return ex, nil
}

// noteProbe copies a cache probe's provenance onto an explain state.
func noteProbe(es *ExplainState, pr cache.ProbeResult) {
	es.Hit = pr.Kind.String()
	es.Matched = pr.Matched
	es.Rewrite = pr.Rewrite
	es.Conditions = pr.Conditions
	es.PositiveOnly = pr.PositiveOnly
	es.Companions = pr.Companions
	if pr.Kind == cache.HitNone {
		es.MissReason = pr.Reason
		es.Candidates = pr.Candidates
	}
}

// baselineExec describes how the baseline system runs an aggregate.
func (s *Session) baselineExec(name string) string {
	if _, ok := exec.LookupBuiltin(name); ok {
		return "native built-in aggregate loop"
	}
	if form, ok := s.UDAF(name); ok && form.HardT != nil {
		return "native state loops + hardcoded terminating function"
	}
	return "hardcoded UDAF: per-tuple interpreted accumulator"
}

// String renders the explanation as indented text — the format
// documented in docs/OBSERVABILITY.md and pinned by the golden tests.
func (ex *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s\n", ex.SQL)
	fmt.Fprintf(&b, "mode: %s\n", ex.Mode)
	b.WriteString("\ndata:\n")
	fmt.Fprintf(&b, "  tables:      %s\n", strings.Join(ex.Tables, ", "))
	if len(ex.Joins) > 0 {
		fmt.Fprintf(&b, "  joins:       %s\n", strings.Join(ex.Joins, ", "))
	}
	if len(ex.Filters) > 0 {
		fmt.Fprintf(&b, "  filters:     %s\n", strings.Join(ex.Filters, "; "))
	}
	if len(ex.GroupBy) > 0 {
		fmt.Fprintf(&b, "  group by:    %s\n", strings.Join(ex.GroupBy, ", "))
	}
	fmt.Fprintf(&b, "  fingerprint: %s\n", ex.Fingerprint)
	if w := ex.Window; w != nil {
		shape := "tumbling"
		if w.Sliding {
			shape = "sliding"
		}
		b.WriteString("\nwindow:\n")
		fmt.Fprintf(&b, "  frame:       %s (%s, size %d %s)\n",
			w.Frame, shape, w.Size, strings.ToLower(w.Unit))
		fmt.Fprintf(&b, "  fingerprint: %s\n", w.Fingerprint)
	}
	if len(ex.Aggregates) > 0 {
		b.WriteString("\naggregates:\n")
		for _, a := range ex.Aggregates {
			if a.Exec != "" {
				fmt.Fprintf(&b, "  %s — %s\n", a.Call, a.Exec)
				continue
			}
			fmt.Fprintf(&b, "  %s\n", a.Form)
			var vars []string
			for _, i := range a.States {
				vars = append(vars, canonical.StateVar(i))
			}
			fmt.Fprintf(&b, "    states: %s\n", strings.Join(vars, ", "))
		}
	}
	if len(ex.States) > 0 {
		b.WriteString("\nstates:\n")
		for _, st := range ex.States {
			pos := ""
			if st.Positive {
				pos = "  [positive data]"
			}
			fmt.Fprintf(&b, "  %s: %s = %s%s\n", canonical.StateVar(st.Index), st.Key, st.Formula, pos)
			if st.Hit != "" {
				b.WriteString("      " + st.provenance() + "\n")
			}
		}
	}
	if ex.Rewritten != "" {
		b.WriteString("\nrewritten SQL (RQ):\n")
		for _, line := range strings.Split(ex.Rewritten, "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	if len(ex.Shards) > 0 {
		b.WriteString("\nshards:\n")
		for _, sh := range ex.Shards {
			fmt.Fprintf(&b, "  shard %d: %s rows=%d fingerprint=%s\n", sh.Index, sh.Table, sh.Rows, sh.Fingerprint)
			if len(sh.Hits) > 0 {
				var parts []string
				for j, h := range sh.Hits {
					parts = append(parts, fmt.Sprintf("%s=%s", canonical.StateVar(j), h))
				}
				fmt.Fprintf(&b, "    cache: %s\n", strings.Join(parts, ", "))
			}
		}
	}
	return b.String()
}

// provenance renders one state's cache outcome as a sentence.
func (st *ExplainState) provenance() string {
	switch st.Hit {
	case "exact":
		return fmt.Sprintf("cache: exact hit — state %s is cached under this fingerprint", st.Matched)
	case "shared":
		conds := "none (strong sharing)"
		if len(st.Conditions) > 0 {
			conds = strings.Join(st.Conditions, " and ")
		}
		msg := fmt.Sprintf("cache: shared hit — computable from cached %s via r(s) = %s; conditions: %s",
			st.Matched, st.Rewrite, conds)
		if st.PositiveOnly {
			msg += "; requires positive data (satisfied)"
		}
		return msg
	case "sign":
		return fmt.Sprintf("cache: sign-split hit — reconstructible from companions %s (§5.3)",
			strings.Join(st.Companions, ", "))
	case "miss":
		msg := "cache: miss — " + st.MissReason
		if len(st.Candidates) > 0 {
			msg += fmt.Sprintf(" (cached under this fingerprint: %s)", strings.Join(st.Candidates, ", "))
		}
		return msg
	}
	return ""
}
