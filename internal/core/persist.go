package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/storage"
)

// Session persistence: Options.DataDir names a directory holding every
// registered table as an encoded segment file (tables/<name>.seg, the
// SDF2 format of internal/storage/persist.go) plus a JSON snapshot of
// the state cache (state_cache.json). Save writes both atomically
// (tmp+rename per file); NewSession reloads them, so a restarted
// session answers its first Share-mode query from warm cached states
// without touching base rows.
//
// Exactness contract: every float64 that round-trips through the cache
// snapshot (state values, scalar coefficients, float key columns) is
// serialized as its IEEE-754 bit pattern (math.Float64bits), so NaN
// payloads, ±0 and subnormals survive byte-for-byte. Table epochs are
// preserved by the segment files, so post-restart fingerprints equal
// pre-restart fingerprints and cache keys still match.
//
// What is NOT persisted: maintenance records (GroupTable.Maint) — they
// hold live plan structures — so a post-restart append invalidates the
// affected entries instead of delta-maintaining them; and states whose
// scalar chains carry symbolic (parameterized) coefficients, which have
// no faithful numeric serialization and are simply skipped (the next
// query recomputes and re-caches them).

const (
	// cacheFileName is the state-cache snapshot inside DataDir.
	cacheFileName = "state_cache.json"
	// tablesDirName is the per-table segment file directory inside DataDir.
	tablesDirName = "tables"
	// cacheFormatVersion versions the JSON snapshot schema.
	cacheFormatVersion = 1
)

// persistedCache is the on-disk shape of a state-cache snapshot.
type persistedCache struct {
	Version int              `json:"version"`
	Entries []persistedEntry `json:"entries"`
}

// persistedEntry is one cache entry (fingerprint → group table).
type persistedEntry struct {
	Fingerprint string            `json:"fp"`
	KeyNames    []string          `json:"key_names,omitempty"`
	Keys        [][2]int64        `json:"keys,omitempty"`
	KeyCols     []persistedKeyCol `json:"key_cols,omitempty"`
	States      []persistedState  `json:"states"`
}

// persistedKeyCol is one materialized group-key column.
type persistedKeyCol struct {
	Name string   `json:"name"`
	Kind int      `json:"kind"`
	Ints []int64  `json:"ints,omitempty"`
	Bits []uint64 `json:"bits,omitempty"` // float values as Float64bits
	Strs []string `json:"strs,omitempty"`
}

// persistedState is one canonical aggregation state with its per-group
// values. Key is the state's identity string, stored for integrity: a
// reconstructed state whose Key() disagrees is dropped rather than
// silently cached under the wrong identity.
type persistedState struct {
	Op       int             `json:"op"`
	Prims    []persistedPrim `json:"prims"`
	Base     string          `json:"base"`
	Key      string          `json:"key"`
	Vals     []uint64        `json:"vals"` // Float64bits per group
	Positive bool            `json:"positive,omitempty"`
}

// persistedPrim is one scalar-chain primitive with a numeric coefficient.
type persistedPrim struct {
	Kind int    `json:"kind"`
	A    uint64 `json:"a"` // coefficient as Float64bits
}

// DataDir returns the session's persistence directory ("" when the
// session is in-memory only).
func (s *Session) DataDir() string { return s.dataDir }

// LoadError returns the (joined) errors encountered while restoring
// DataDir at session construction, or nil. Loading is best-effort: a
// corrupt table file or cache snapshot is skipped and reported here,
// while everything readable is restored.
func (s *Session) LoadError() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.loadErr
}

// Save persists every registered table and the current state cache to
// DataDir. It serializes against ingestion (appends block while a save
// is in progress) so the table files and the cache snapshot are
// mutually consistent. Queries keep running concurrently.
func (s *Session) Save() error {
	if s.dataDir == "" {
		return fmt.Errorf("core: Save requires Options.DataDir")
	}
	if err := s.beginOp("save"); err != nil {
		return err
	}
	defer s.endOp()
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	tdir := filepath.Join(s.dataDir, tablesDirName)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	for _, name := range s.cat.Names() {
		t, err := s.cat.Table(name)
		if err != nil {
			return fmt.Errorf("core: save table %q: %w", name, err)
		}
		if err := t.SaveSegFile(filepath.Join(tdir, name+storage.SegFileExt)); err != nil {
			return fmt.Errorf("core: save table %q: %w", name, err)
		}
	}

	pc := snapshotCacheForPersist(s.stateCache())
	data, err := json.Marshal(pc)
	if err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	path := filepath.Join(s.dataDir, cacheFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save cache: %w", err)
	}
	s.persistSaves.Add(1)
	return nil
}

// snapshotCacheForPersist converts a cache snapshot into the on-disk
// shape, skipping states that cannot be serialized faithfully.
func snapshotCacheForPersist(c *cache.Cache) persistedCache {
	snaps := c.Snapshot()
	// Deterministic file contents: order entries by fingerprint.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Fingerprint < snaps[j].Fingerprint })
	pc := persistedCache{Version: cacheFormatVersion}
	for _, e := range snaps {
		pe := persistedEntry{
			Fingerprint: e.Fingerprint,
			KeyNames:    e.KeyNames,
			Keys:        make([][2]int64, len(e.Keys)),
		}
		for i, k := range e.Keys {
			pe.Keys[i] = k
		}
		for _, kc := range e.KeyCols {
			pe.KeyCols = append(pe.KeyCols, persistKeyCol(kc))
		}
		for _, cs := range e.States {
			ps, ok := persistState(cs)
			if !ok {
				continue
			}
			pe.States = append(pe.States, ps)
		}
		if len(pe.States) == 0 {
			continue
		}
		pc.Entries = append(pc.Entries, pe)
	}
	return pc
}

func persistKeyCol(c *storage.Column) persistedKeyCol {
	pk := persistedKeyCol{Name: c.Name, Kind: int(c.Kind)}
	n := c.Len()
	switch c.Kind {
	case storage.KindFloat:
		pk.Bits = make([]uint64, n)
		for i := 0; i < n; i++ {
			pk.Bits[i] = math.Float64bits(c.AsFloat(i))
		}
	case storage.KindInt:
		pk.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			pk.Ints[i] = c.AsInt(i)
		}
	default:
		pk.Strs = make([]string, n)
		for i := 0; i < n; i++ {
			pk.Strs[i] = c.StringAt(i)
		}
	}
	return pk
}

// persistState serializes one cached state; ok is false when the state
// carries symbolic coefficients (no faithful numeric form).
func persistState(cs *cache.CachedState) (persistedState, bool) {
	st := cs.State
	ps := persistedState{
		Op:       int(st.Op),
		Base:     "1",
		Key:      st.Key(),
		Positive: cs.PositiveInput,
	}
	if st.Base != nil {
		ps.Base = st.Base.String()
	}
	for _, p := range st.F.Prims {
		a, err := scalar.CEval(p.A, nil)
		if err != nil {
			return persistedState{}, false // symbolic coefficient
		}
		ps.Prims = append(ps.Prims, persistedPrim{Kind: int(p.Kind), A: math.Float64bits(a)})
	}
	ps.Vals = make([]uint64, len(cs.Vals))
	for i, v := range cs.Vals {
		ps.Vals[i] = math.Float64bits(v)
	}
	return ps, true
}

// loadDataDir restores tables and the state cache from s.dataDir into a
// freshly constructed session. Best-effort: unreadable pieces are
// skipped and their errors joined into the return value.
func (s *Session) loadDataDir() error {
	var errs []error

	tdir := filepath.Join(s.dataDir, tablesDirName)
	ents, err := os.ReadDir(tdir)
	if err != nil && !os.IsNotExist(err) {
		errs = append(errs, fmt.Errorf("core: load tables: %w", err))
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name() < ents[j].Name() })
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), storage.SegFileExt) {
			continue
		}
		path := filepath.Join(tdir, de.Name())
		t, err := storage.LoadSegFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("core: load %s: %w", de.Name(), err))
			continue
		}
		if err := s.Register(t); err != nil {
			errs = append(errs, fmt.Errorf("core: register %q: %w", t.Name, err))
			continue
		}
		s.persistTablesLoaded.Add(1)
	}

	if err := s.loadCacheSnapshot(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// loadCacheSnapshot restores state_cache.json into the session cache.
func (s *Session) loadCacheSnapshot() error {
	path := filepath.Join(s.dataDir, cacheFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("core: load cache: %w", err)
	}
	var pc persistedCache
	if err := json.Unmarshal(data, &pc); err != nil {
		return fmt.Errorf("core: load cache: %w", err)
	}
	if pc.Version != cacheFormatVersion {
		return fmt.Errorf("core: load cache: unsupported snapshot version %d", pc.Version)
	}
	c := s.stateCache()
	var errs []error
	for _, pe := range pc.Entries {
		gt, err := entryFromPersisted(pe)
		if err != nil {
			errs = append(errs, fmt.Errorf("core: load cache entry %q: %w", pe.Fingerprint, err))
			continue
		}
		if gt == nil {
			continue // every state was dropped
		}
		c.Put(gt)
		s.persistEntriesLoaded.Add(1)
	}
	return errors.Join(errs...)
}

// entryFromPersisted rebuilds a GroupTable from its on-disk shape. The
// returned table's Maint is nil: a restored entry serves lookups but is
// invalidated (not delta-maintained) by post-restart appends.
func entryFromPersisted(pe persistedEntry) (*cache.GroupTable, error) {
	keys := make([]cache.GroupKey, len(pe.Keys))
	for i, k := range pe.Keys {
		keys[i] = k
	}
	keyCols := make([]*storage.Column, 0, len(pe.KeyCols))
	for _, pk := range pe.KeyCols {
		kc, err := keyColFromPersisted(pk, len(keys))
		if err != nil {
			return nil, err
		}
		keyCols = append(keyCols, kc)
	}
	gt := cache.NewGroupTable(pe.Fingerprint, pe.KeyNames, keys, keyCols)
	added := 0
	for _, ps := range pe.States {
		st, err := stateFromPersisted(ps)
		if err != nil {
			continue // unreconstructable state: recompute on demand
		}
		if len(ps.Vals) != len(keys) {
			return nil, fmt.Errorf("state %s: %d values for %d groups", ps.Key, len(ps.Vals), len(keys))
		}
		vals := make([]float64, len(ps.Vals))
		for i, b := range ps.Vals {
			vals[i] = math.Float64frombits(b)
		}
		if err := gt.AddState(&cache.CachedState{State: st, Vals: vals, PositiveInput: ps.Positive}); err != nil {
			return nil, err
		}
		added++
	}
	if added == 0 {
		return nil, nil
	}
	return gt, nil
}

func keyColFromPersisted(pk persistedKeyCol, n int) (*storage.Column, error) {
	kind := storage.Kind(pk.Kind)
	switch kind {
	case storage.KindFloat, storage.KindInt, storage.KindString:
	default:
		return nil, fmt.Errorf("key column %q: bad kind %d", pk.Name, pk.Kind)
	}
	c := storage.NewColumn(pk.Name, kind)
	switch kind {
	case storage.KindFloat:
		if len(pk.Bits) != n {
			return nil, fmt.Errorf("key column %q: %d values for %d groups", pk.Name, len(pk.Bits), n)
		}
		for _, b := range pk.Bits {
			c.AppendFloat(math.Float64frombits(b))
		}
	case storage.KindInt:
		if len(pk.Ints) != n {
			return nil, fmt.Errorf("key column %q: %d values for %d groups", pk.Name, len(pk.Ints), n)
		}
		for _, v := range pk.Ints {
			c.AppendInt(v)
		}
	default:
		if len(pk.Strs) != n {
			return nil, fmt.Errorf("key column %q: %d values for %d groups", pk.Name, len(pk.Strs), n)
		}
		for _, v := range pk.Strs {
			c.AppendString(v)
		}
	}
	return c, nil
}

// stateFromPersisted rebuilds a canonical state and verifies its
// identity key matches the persisted one.
func stateFromPersisted(ps persistedState) (canonical.State, error) {
	if ps.Op < int(canonical.OpSum) || ps.Op > int(canonical.OpMax) {
		return canonical.State{}, fmt.Errorf("bad op %d", ps.Op)
	}
	base, err := expr.Parse(ps.Base)
	if err != nil {
		return canonical.State{}, fmt.Errorf("base %q: %w", ps.Base, err)
	}
	prims := make([]scalar.Prim, len(ps.Prims))
	for i, pp := range ps.Prims {
		if pp.Kind < int(scalar.KConst) || pp.Kind > int(scalar.KExp) {
			return canonical.State{}, fmt.Errorf("bad prim kind %d", pp.Kind)
		}
		prims[i] = scalar.Prim{Kind: scalar.Kind(pp.Kind), A: scalar.Num(math.Float64frombits(pp.A))}
	}
	st := canonical.State{Op: canonical.AggOp(ps.Op), F: scalar.Chain{Prims: prims}, Base: base}
	if got := st.Key(); got != ps.Key {
		return canonical.State{}, fmt.Errorf("identity drift: reconstructed %q, persisted %q", got, ps.Key)
	}
	return st, nil
}
