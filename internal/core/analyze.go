package core

import (
	"context"
	"fmt"

	"sudaf/internal/analyzer"
	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/obs"
	"sudaf/internal/rewrite"
	"sudaf/internal/sqlparse"
)

// scanProvider serves a pre-computed group result for a data plan and
// task registry, or reports it cannot (ok=false → the query falls back
// to its own scan). QueryBatch injects one into each replayed query's
// queryCtx so queries consume the batch's fused scans instead of
// scanning base data themselves.
type scanProvider func(dp *exec.DataPlan, reg *exec.TaskRegistry) (*exec.GroupResult, bool)

// planState is the unit the analyzer pipeline operates on: one aggregate
// query's plan, built up phase by phase (resolve → canonicalize → share
// → fuse → parallelize → distribute) and then executed by executePlan. Each field
// records which phase owns it; rules only touch their own phase's
// outputs plus earlier ones.
type planState struct {
	s    *Session
	qc   *queryCtx
	stmt *sqlparse.Stmt
	mode Mode

	// resolve
	planSpan *obs.Span // the "plan" span, open across the resolve steps
	dp       *exec.DataPlan
	calls    []*expr.Call
	spec     exec.OutputSpec
	reg      *exec.TaskRegistry

	// canonicalize
	slots     map[string]*slot
	slotOrder []string

	// share
	entry    *cache.GroupTable
	entryOK  bool
	missing  []*slot
	dpRun    *exec.DataPlan
	usedView string
	events   []string

	// fuse
	companions []*slot

	// parallelize
	fullHit bool
	gr      *exec.GroupResult // fused-scan result served by a provider
}

// guard runs f recovering panics into a degradation event: the cache is
// an accelerator, so any fault in it downgrades to recomputation from
// base data, never a failed query.
func (ps *planState) guard(stage string, f func()) {
	defer func() {
		if r := recover(); r != nil {
			ps.events = append(ps.events, fmt.Sprintf(
				"cache: panic during %s (recovered); falling back to recomputation: %v", stage, r))
		}
	}()
	f()
}

// getSlot returns the slot for a bound state, creating it on first use —
// the per-query state deduplication (two aggregates needing Σx share one
// slot and one task).
func (ps *planState) getSlot(st canonical.State, positive bool) *slot {
	key := st.Key()
	if sl, ok := ps.slots[key]; ok {
		return sl
	}
	sl := &slot{st: st, positive: positive, taskIdx: -1}
	ps.slots[key] = sl
	ps.slotOrder = append(ps.slotOrder, key)
	return sl
}

// queryPipeline is the fixed analyzer pipeline every aggregate query
// flows through (single queries and batch replays alike). Phases:
//
//	resolve      — FROM/WHERE/GROUP BY resolution, data fingerprint,
//	               aggregate-call extraction
//	canonicalize — decompose calls into bound aggregation states and
//	               terminating-function finishers (or baseline tasks)
//	share        — consult the state cache (exact / Theorem 4.1 /
//	               sign-split), collect what is still missing, try
//	               aggregate-view roll-up rewriting
//	fuse         — register one deduplicated task per missing state
//	               (plus §5.3 sign-split companions) in the scan's
//	               task registry
//	parallelize  — decide scan elision (full cache hit) or adopt a
//	               batch-provided fused scan; the morsel scheduler
//	               parallelizes whatever scan remains
//	distribute   — on a sharded session (Options.Shards > 1), execute
//	               the remaining scan scatter-gather over the shard
//	               workers and ⊕-merge the partials (SUDAF modes only)
//
// Rules are mode-gated internally: baseline queries no-op through the
// share and fuse phases, rewrite queries through the cache lookups.
var queryPipeline = analyzer.Pipeline[*planState]{
	Phases: []analyzer.Phase[*planState]{
		{Name: "resolve", Rules: []analyzer.Rule[*planState]{
			{Name: "resolve-tables", Apply: ruleResolveTables},
			{Name: "classify-predicates", Apply: ruleClassifyPredicates},
			{Name: "resolve-grouping", Apply: ruleResolveGrouping},
			{Name: "fingerprint", Apply: ruleFingerprint},
			{Name: "extract-aggregates", Apply: ruleExtractAggregates},
		}},
		{Name: "canonicalize", Rules: []analyzer.Rule[*planState]{
			{Name: "bind-baseline", Apply: ruleBindBaseline},
			{Name: "bind-states", Apply: ruleBindStates},
		}},
		{Name: "share", Rules: []analyzer.Rule[*planState]{
			{Name: "lookup-cache", Apply: ruleLookupCache},
			{Name: "collect-missing", Apply: ruleCollectMissing},
			{Name: "rewrite-views", Apply: ruleRewriteViews},
		}},
		{Name: "fuse", Rules: []analyzer.Rule[*planState]{
			{Name: "register-tasks", Apply: ruleRegisterTasks},
		}},
		{Name: "parallelize", Rules: []analyzer.Rule[*planState]{
			{Name: "elide-scan", Apply: ruleElideScan},
			{Name: "fused-scan", Apply: ruleFusedScan},
		}},
		{Name: "distribute", Rules: []analyzer.Rule[*planState]{
			{Name: "scatter-gather", Apply: ruleDistribute},
		}},
	},
}

// ---- resolve phase ----

// ruleResolveTables opens the plan span and resolves the FROM list
// against the query's catalog snapshot.
func ruleResolveTables(_ context.Context, ps *planState) error {
	ps.planSpan = ps.qc.sp.Child("plan")
	ps.dp = ps.s.eng.NewDataPlan()
	return ps.dp.ResolveFrom(ps.qc.cat, ps.stmt)
}

// ruleClassifyPredicates splits WHERE into equi-joins and pushed-down
// per-table filters.
func ruleClassifyPredicates(_ context.Context, ps *planState) error {
	return ps.dp.ClassifyWhere(ps.qc.cat, ps.stmt)
}

// ruleResolveGrouping resolves the GROUP BY columns.
func ruleResolveGrouping(_ context.Context, ps *planState) error {
	return ps.dp.ResolveGroupBy(ps.qc.cat, ps.stmt)
}

// ruleFingerprint seals the data plan into its canonical cache
// fingerprint and closes the plan span.
func ruleFingerprint(_ context.Context, ps *planState) error {
	ps.dp.Seal(ps.stmt)
	ps.dpRun = ps.dp
	ps.planSpan.SetStr("fingerprint", ps.dp.Fingerprint)
	ps.planSpan.End()
	return nil
}

// ruleExtractAggregates replaces aggregate calls in the select list with
// placeholders and starts the output spec and task registry.
func ruleExtractAggregates(_ context.Context, ps *planState) error {
	items := make([]sqlparse.SelectItem, len(ps.stmt.Select))
	for i, item := range ps.stmt.Select {
		items[i] = sqlparse.SelectItem{
			Expr:  exec.ExtractAggCalls(item.Expr, ps.s.isAgg, &ps.calls),
			Alias: item.Alias,
		}
	}
	ps.spec = exec.OutputSpec{Items: items, Numeric: ps.s.NumericPolicySetting()}
	ps.reg = exec.NewTaskRegistry()
	return nil
}

// ---- canonicalize phase ----

// ruleBindBaseline (baseline mode only) compiles each aggregate call the
// way the baseline systems run it: built-ins native, UDAFs hardcoded.
func ruleBindBaseline(_ context.Context, ps *planState) error {
	if ps.mode != ModeBaseline {
		return nil
	}
	for _, call := range ps.calls {
		fin, err := ps.s.baselineFinisher(call, ps.reg)
		if err != nil {
			return err
		}
		ps.spec.Finishers = append(ps.spec.Finishers, fin)
		ps.spec.Labels = append(ps.spec.Labels, call.String())
	}
	return nil
}

// ruleBindStates (SUDAF modes) decomposes every aggregate call into
// bound aggregation states (deduplicated into slots) plus a terminating
// function finisher over the slots' value columns.
func ruleBindStates(_ context.Context, ps *planState) error {
	if ps.mode == ModeBaseline {
		return nil
	}
	ps.slots = map[string]*slot{}
	csp := ps.qc.sp.Child("canonicalize")
	for _, call := range ps.calls {
		form, err := ps.s.formFor(call.Name)
		if err != nil {
			return err
		}
		if len(call.Args) != len(form.Params) {
			return fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		callSlots := make([]*slot, len(form.States))
		for j, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			callSlots[j] = ps.getSlot(bs, basePositive(ps.qc.cat, bs.Base, ps.dp.Tables()))
		}
		tfn, err := form.CompileT()
		if err != nil {
			return fmt.Errorf("%s: %w", call.Name, err)
		}
		cs := callSlots
		buf := make([]float64, len(cs))
		ps.spec.Finishers = append(ps.spec.Finishers, func(vals [][]float64, g int) float64 {
			for j, sl := range cs {
				buf[j] = vals[sl.finalIdx][g]
			}
			return tfn(buf)
		})
		ps.spec.Labels = append(ps.spec.Labels, call.String())
	}
	csp.SetInt("aggregates", int64(len(ps.calls)))
	csp.SetInt("states", int64(len(ps.slotOrder)))
	csp.End()
	return nil
}

// ---- share phase ----

// ruleLookupCache (share mode only) consults the query's cache snapshot
// for every slot: exact hit, Theorem 4.1 sharing, or §5.3 sign-split
// reconstruction. Guarded: a cache that panics behaves like a cache
// that misses.
func ruleLookupCache(_ context.Context, ps *planState) error {
	if ps.mode != ModeShare {
		return nil
	}
	qc := ps.qc
	lsp := qc.sp.Child("sharing-lookup")
	ps.guard("entry lookup", func() {
		ps.entry, ps.entryOK = qc.cache.Entry(ps.dp.Fingerprint)
	})
	for _, key := range ps.slotOrder {
		sl := ps.slots[key]
		ps.guard("state lookup", func() {
			vals, kind, ok := qc.cache.LookupKind(ps.dp.Fingerprint, sl.st, sl.positive)
			if ok {
				sl.cached = vals
			}
			switch kind {
			case cache.HitExact:
				qc.stats.CacheExactHits++
			case cache.HitShared:
				qc.stats.CacheSharedHits++
			case cache.HitSign:
				qc.stats.CacheSignHits++
			default:
				qc.stats.CacheMisses++
			}
		})
	}
	lsp.SetInt("exact", int64(qc.stats.CacheExactHits))
	lsp.SetInt("shared", int64(qc.stats.CacheSharedHits))
	lsp.SetInt("sign", int64(qc.stats.CacheSignHits))
	lsp.SetInt("miss", int64(qc.stats.CacheMisses))
	lsp.End()
	return nil
}

// ruleCollectMissing lists the slots the cache could not serve, in slot
// order (in rewrite mode — no cache — that is every slot).
func ruleCollectMissing(_ context.Context, ps *planState) error {
	for _, key := range ps.slotOrder {
		if sl := ps.slots[key]; sl.cached == nil {
			ps.missing = append(ps.missing, sl)
		}
	}
	return nil
}

// ruleRewriteViews tries aggregate-view roll-up rewriting (Q3 → RQ3')
// for the missing states: when a materialized state view subsumes the
// data part, the missing states compute from the view's partial states
// instead of base data.
func ruleRewriteViews(_ context.Context, ps *planState) error {
	if len(ps.missing) == 0 || !ps.s.ViewRewriting() || ps.entryOK {
		return nil
	}
	vsp := ps.qc.sp.Child("view-rewrite")
	if dpv, rollup, name := ps.s.tryViews(ps.qc, ps.dp, ps.missing); dpv != nil {
		ps.dpRun = dpv
		ps.usedView = name
		vsp.SetStr("view", name)
		for _, sl := range ps.missing {
			st := rewrite.RollupState(sl.st, rollup.StateCol[sl.st.Key()])
			sl.taskIdx = addStateTask(ps.reg, st, sl.st.Key())
		}
		ps.missing = nil
	}
	vsp.End()
	return nil
}

// ---- fuse phase ----

// ruleRegisterTasks registers one deduplicated scan task per missing
// state — the fusion step: every remaining consumer shares the single
// scan these tasks ride on — plus the §5.3 sign-split companion states
// needed to keep future sharing sound over signed data.
func ruleRegisterTasks(_ context.Context, ps *planState) error {
	for _, sl := range ps.missing {
		sl.taskIdx = addStateTask(ps.reg, sl.st, sl.st.Key())
		if ps.mode == ModeShare && !sl.positive && needsSignSplit(sl.st) {
			lnAbs, sgnProd := cache.SignSplitStates(sl.st.Base)
			for _, comp := range []canonical.State{lnAbs, sgnProd} {
				cs := &slot{st: comp, positive: false}
				cs.taskIdx = addStateTask(ps.reg, comp, comp.Key())
				ps.companions = append(ps.companions, cs)
			}
		}
	}
	return nil
}

// ---- parallelize phase ----

// ruleElideScan skips execution entirely when the cache served every
// state and the cached entry supplies the group structure.
func ruleElideScan(_ context.Context, ps *planState) error {
	if ps.reg.Len() == 0 && ps.mode == ModeShare && ps.entryOK {
		ps.fullHit = true
	}
	return nil
}

// ruleFusedScan (batch replay only) asks the batch's scan provider for
// the query's group result: when the batch pre-computed a fused scan
// covering every registered task, the query consumes it instead of
// scanning. A provider that cannot serve (fingerprint unknown, task
// missing, view rewrite redirected the plan) leaves ps.gr nil and the
// query falls back to its own scan.
func ruleFusedScan(_ context.Context, ps *planState) error {
	if ps.fullHit || ps.qc.provide == nil || ps.reg.Len() == 0 {
		return nil
	}
	if gr, ok := ps.qc.provide(ps.dpRun, ps.reg); ok {
		ps.gr = gr
	}
	return nil
}

// ---- execution (after the pipeline) ----

// executePlan runs the analyzed plan: execute the fused scan (or adopt
// the provided one, or elide it on a full cache hit), assemble the value
// matrix from task outputs and cached arrays, store freshly computed
// states, and build the output table.
func (s *Session) executePlan(ctx context.Context, ps *planState) (*Result, error) {
	qc := ps.qc
	var gr *exec.GroupResult
	switch {
	case ps.fullHit:
		gr = &exec.GroupResult{
			NumGroups:  ps.entry.NumGroups(),
			Keys:       ps.entry.Keys,
			KeyNames:   ps.entry.KeyNames,
			KeyColumns: ps.entry.KeyCols,
			Rows:       0,
		}
	case ps.gr != nil:
		gr = ps.gr
		qc.noteKernels(gr)
	default:
		ssp := qc.sp.Child("scan/agg")
		if ps.mode != ModeBaseline {
			ssp.SetInt("tasks", int64(ps.reg.Len()))
		}
		var err error
		gr, err = s.eng.RunSpecs(ctx, ps.dpRun, ps.reg)
		if err != nil {
			return nil, err
		}
		noteScanAgg(ssp, gr)
		ssp.End()
		qc.noteKernels(gr)
	}

	// Assemble the value matrix: task outputs first, then cached arrays
	// aligned to the result's group order.
	for _, key := range ps.slotOrder {
		sl := ps.slots[key]
		if sl.cached == nil {
			sl.finalIdx = sl.taskIdx
			continue
		}
		aligned := sl.cached
		if !ps.fullHit {
			var ok bool
			aligned, ok = alignEntryToResult(ps.entry, gr, sl.cached)
			if !ok {
				return nil, fmt.Errorf("cache entry misaligned with result groups for state %s", key)
			}
		}
		sl.finalIdx = len(gr.Values)
		gr.Values = append(gr.Values, aligned)
	}

	// Cache the freshly computed states (and companions). Guarded: a
	// failed insert costs future sharing, not this query.
	if ps.mode == ModeShare && !ps.fullHit {
		stsp := qc.sp.Child("cache-store")
		stored := 0
		ps.guard("state insert", func() {
			gt := cache.NewGroupTable(ps.dp.Fingerprint, gr.KeyNames, gr.Keys, gr.KeyColumns)
			// Attach the maintenance record: the statement's data part
			// plus the pinned table versions it ran against. The append
			// path uses it to delta-fold future batches into this entry
			// instead of invalidating it.
			gt.Maint = newMaintRec(ps.stmt, ps.dp)
			for _, key := range ps.slotOrder {
				sl := ps.slots[key]
				if sl.taskIdx >= 0 {
					_ = gt.AddState(&cache.CachedState{
						State:         sl.st,
						Vals:          gr.Values[sl.taskIdx],
						PositiveInput: sl.positive,
					})
				}
			}
			for _, cs := range ps.companions {
				_ = gt.AddState(&cache.CachedState{State: cs.st, Vals: gr.Values[cs.taskIdx]})
			}
			// Count before Put: the cache owns gt afterwards, and a
			// concurrent query's Put may merge new states into it under
			// the cache lock while we'd be reading it unlocked.
			if n := gt.NumStates(); n > 0 {
				qc.cache.Put(gt)
				stored = n
			}
		})
		stsp.SetInt("states", int64(stored))
		stsp.End()
	}

	fsp := qc.sp.Child("finisher")
	out, err := exec.BuildOutput(ctx, ps.stmt, ps.dpRun, gr, ps.spec)
	if err != nil {
		return nil, err
	}
	fsp.SetInt("groups", int64(out.Groups))
	fsp.End()
	if ps.mode == ModeShare {
		ps.events = append(ps.events, qc.cache.DrainEvents()...)
	}
	res := &Result{
		Table:         out.Table,
		RowsScanned:   gr.Rows,
		Groups:        out.Groups,
		UsedView:      ps.usedView,
		FullCacheHit:  ps.fullHit,
		NumericFaults: out.NumericFaults,
		Events:        ps.events,
		Stats:         qc.stats,
	}
	noteNumericFaults(res)
	return res, nil
}
