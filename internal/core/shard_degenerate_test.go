package core

import (
	"math"
	"testing"

	"sudaf/internal/storage"
)

// Degenerate sharding cases end-to-end: more shards than rows, zero-row
// tables, single-row tables. The scatter-gather result must match an
// unsharded session exactly (empty shard ranges contribute merge
// identities, not garbage).

func tinyTable(rows int) *storage.Table {
	tbl := storage.NewTable("tiny",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	for i := 0; i < rows; i++ {
		tbl.Col("g").AppendInt(int64(i % 2))
		tbl.Col("v").AppendFloat(float64(i) + 0.25)
	}
	tbl.Seal()
	return tbl
}

func TestShardedMoreShardsThanRows(t *testing.T) {
	for _, rows := range []int{1, 3, 7} {
		tbl := tinyTable(rows)
		flat := NewSession(Options{Workers: 1})
		sharded := NewSession(Options{Workers: 2, Shards: 8})
		for _, s := range []*Session{flat, sharded} {
			if err := s.Register(tbl); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range []string{
			`SELECT count(), sum(v), min(v), max(v), avg(v) FROM tiny;`,
			`SELECT g, sum(v), stddev(v) FROM tiny GROUP BY g ORDER BY g;`,
		} {
			want, err := flat.Query(q, ModeShare)
			if err != nil {
				t.Fatalf("rows=%d flat: %v", rows, err)
			}
			got, err := sharded.Query(q, ModeShare)
			if err != nil {
				t.Fatalf("rows=%d sharded: %v", rows, err)
			}
			tablesBitIdentical(t, want.Table, got.Table, q)
		}
	}
}

func TestShardedZeroRowTable(t *testing.T) {
	tbl := tinyTable(0)
	flat := NewSession(Options{Workers: 1})
	sharded := NewSession(Options{Workers: 2, Shards: 4})
	for _, s := range []*Session{flat, sharded} {
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	q := `SELECT count(), sum(v), min(v), max(v) FROM tiny;`
	want, err := flat.Query(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Query(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitIdentical(t, want.Table, got.Table, "zero-row")
	// The conventional empty-aggregate shapes: count 0, sum 0 (or NaN
	// per policy) — at minimum min must not be a spurious finite value.
	if n := got.Table.Cols[0].AsFloat(0); n != 0 {
		t.Fatalf("count over empty table = %v", n)
	}
	if mn := got.Table.Cols[2].AsFloat(0); !math.IsInf(mn, 1) && !math.IsNaN(mn) {
		t.Fatalf("min over empty table = %v, want +Inf or NaN", mn)
	}
}
