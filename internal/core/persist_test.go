package core

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudaf/internal/storage"
)

// newPersistSession builds a session persisting to dir, with a fact
// table plus one dimension. Data includes NaN-free floats with runs so
// both RLE and FOR segments appear in the saved files.
func newPersistSession(t *testing.T, rows int, dir string) *Session {
	t.Helper()
	s := NewSession(Options{Workers: 2, DataDir: dir})
	rng := rand.New(rand.NewSource(7))

	dim := storage.NewTable("pstore",
		storage.NewColumn("p_store_sk", storage.KindInt),
		storage.NewColumn("p_state", storage.KindString))
	states := []string{"TN", "CA", "TN", "NY"}
	for i := 0; i < 4; i++ {
		dim.Col("p_store_sk").AppendInt(int64(i))
		dim.Col("p_state").AppendString(states[i])
	}
	fact := storage.NewTable("psales",
		storage.NewColumn("p_item_sk", storage.KindInt),
		storage.NewColumn("ps_store_sk", storage.KindInt),
		storage.NewColumn("p_price", storage.KindFloat))
	for i := 0; i < rows; i++ {
		fact.Col("p_item_sk").AppendInt(int64(i / 64)) // long runs → RLE
		fact.Col("ps_store_sk").AppendInt(int64(rng.Intn(4)))
		fact.Col("p_price").AppendFloat(10 + rng.Float64()*90)
	}
	for _, tbl := range []*storage.Table{dim, fact} {
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const persistQ = `SELECT p_item_sk, avg(p_price), stddev(p_price)
FROM psales, pstore
WHERE ps_store_sk = p_store_sk and p_state = 'TN'
GROUP BY p_item_sk ORDER BY p_item_sk;`

// tablesBitIdentical fails unless both result tables agree to the bit.
func tablesBitIdentical(t *testing.T, a, b *storage.Table, label string) {
	t.Helper()
	if a.NumRows() != b.NumRows() || len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", label,
			a.NumRows(), len(a.Cols), b.NumRows(), len(b.Cols))
	}
	for c := range a.Cols {
		for i := 0; i < a.NumRows(); i++ {
			va, vb := a.Cols[c].AsFloat(i), b.Cols[c].AsFloat(i)
			if math.Float64bits(va) != math.Float64bits(vb) {
				t.Fatalf("%s: col %d row %d: %v (%#x) vs %v (%#x)", label,
					c, i, va, math.Float64bits(va), vb, math.Float64bits(vb))
			}
		}
	}
}

// TestPersistRestartWarmCache is the headline persistence test: save a
// session after a Share-mode query, open a fresh session over the same
// DataDir, and the same query must answer entirely from restored cached
// states — zero base rows scanned — with bit-identical results.
func TestPersistRestartWarmCache(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 20000, dir)
	res1, err := s1.Query(persistQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}

	s2 := NewSession(Options{Workers: 2, DataDir: dir})
	if err := s2.LoadError(); err != nil {
		t.Fatalf("load error: %v", err)
	}
	for _, name := range []string{"psales", "pstore"} {
		if !s2.Catalog().Has(name) {
			t.Fatalf("table %q not restored", name)
		}
	}
	res2, err := s2.Query(persistQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RowsScanned != 0 {
		t.Fatalf("post-restart share query scanned %d rows, want 0 (cold cache)", res2.RowsScanned)
	}
	tablesBitIdentical(t, res1.Table, res2.Table, "pre-save vs post-restart")
}

// TestPersistRestartDerivedQuery checks Theorem 4.1 sharing across a
// restart: a *different* query whose states are derivable from the
// restored ones must also scan zero rows.
func TestPersistRestartDerivedQuery(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 10000, dir)
	if _, err := s1.Query(persistQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	s2 := newRestartSession(t, dir)
	const derived = `SELECT p_item_sk, qm(p_price)
FROM psales, pstore
WHERE ps_store_sk = p_store_sk and p_state = 'TN'
GROUP BY p_item_sk ORDER BY p_item_sk;`
	res, err := s2.Query(derived, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 0 {
		t.Fatalf("derived query scanned %d rows, want 0 (qm derivable from avg/stddev states)", res.RowsScanned)
	}
}

func newRestartSession(t *testing.T, dir string) *Session {
	t.Helper()
	s := NewSession(Options{Workers: 2, DataDir: dir})
	if err := s.LoadError(); err != nil {
		t.Fatalf("load error: %v", err)
	}
	return s
}

// TestPersistEpochsSurvive: restored tables keep their epochs, and the
// global epoch counter is advanced past them so new tables can never
// collide with restored fingerprints.
func TestPersistEpochsSurvive(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 1000, dir)
	tb, err := s1.Catalog().Table("psales")
	if err != nil {
		t.Fatal(err)
	}
	epoch := tb.Epoch
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	s2 := newRestartSession(t, dir)
	tb2, err := s2.Catalog().Table("psales")
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Epoch != epoch {
		t.Fatalf("epoch changed across restart: %d → %d", epoch, tb2.Epoch)
	}
	fresh := storage.NewTable("fresh", storage.NewColumn("x", storage.KindFloat))
	fresh.Col("x").AppendFloat(1)
	if err := s2.Register(fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Epoch <= epoch {
		t.Fatalf("fresh epoch %d not past restored epoch %d", fresh.Epoch, epoch)
	}
}

// TestPersistAppendAfterRestart: appends to a restored table must
// invalidate (not wrongly serve) restored cache entries — the restored
// entries carry no maintenance record.
func TestPersistAppendAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 5000, dir)
	if _, err := s1.Query(persistQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	s2 := newRestartSession(t, dir)
	delta := storage.NewTable("psales",
		storage.NewColumn("p_item_sk", storage.KindInt),
		storage.NewColumn("ps_store_sk", storage.KindInt),
		storage.NewColumn("p_price", storage.KindFloat))
	delta.Col("p_item_sk").AppendInt(3)
	delta.Col("ps_store_sk").AppendInt(0) // TN store
	delta.Col("p_price").AppendFloat(55)
	if _, err := s2.Append(context.Background(), "psales", delta); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Query(persistQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned == 0 {
		t.Fatal("post-append share query served stale restored states (scanned 0 rows)")
	}
	// And the answer must match a from-scratch computation.
	base, err := s2.Query(persistQ, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, base.Table, res.Table, "post-append share vs baseline")
}

// TestSaveRequiresDataDir: Save on an in-memory session errors.
func TestSaveRequiresDataDir(t *testing.T) {
	s := NewSession(Options{Workers: 1})
	if err := s.Save(); err == nil {
		t.Fatal("Save without DataDir succeeded")
	}
}

// TestPersistCorruptCacheSnapshot: a damaged state_cache.json surfaces
// on LoadError but the tables still load and queries still work.
func TestPersistCorruptCacheSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 2000, dir)
	if _, err := s1.Query(persistQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "state_cache.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(Options{Workers: 1, DataDir: dir})
	if err := s2.LoadError(); err == nil {
		t.Fatal("corrupt cache snapshot not reported")
	} else if !strings.Contains(err.Error(), "load cache") {
		t.Fatalf("unexpected load error: %v", err)
	}
	if !s2.Catalog().Has("psales") {
		t.Fatal("tables should load despite corrupt cache snapshot")
	}
	if _, err := s2.Query(persistQ, ModeShare); err != nil {
		t.Fatal(err)
	}
}

// TestPersistCorruptSegmentFile: a truncated .seg file is skipped with
// an error; the rest of the catalog still loads.
func TestPersistCorruptSegmentFile(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 2000, dir)
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tables", "psales"+storage.SegFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(Options{Workers: 1, DataDir: dir})
	if err := s2.LoadError(); err == nil {
		t.Fatal("truncated segment file not reported")
	}
	if s2.Catalog().Has("psales") {
		t.Fatal("truncated table should not register")
	}
	if !s2.Catalog().Has("pstore") {
		t.Fatal("intact table should still load")
	}
}

// TestPersistSaveIsRepeatable: Save twice, load, still consistent.
func TestPersistSaveIsRepeatable(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistSession(t, 1000, dir)
	if _, err := s1.Query(persistQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}
	s2 := newRestartSession(t, dir)
	res, err := s2.Query(persistQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 0 {
		t.Fatalf("scanned %d rows, want 0", res.RowsScanned)
	}
}
