// Incremental ingestion: the write side of the session's MVCC-lite
// model. Append publishes a new immutable version of a table (built by
// storage.Table.AppendRows, which seals the delta as one more column
// segment) and, instead of throwing cached work away, *delta-maintains*
// it: every aggregation state in the paper's canonical form is a monoid
// fold (Σ⊕ f(b)), so the states of the delta batch alone, ⊕-merged per
// group into the previously cached values, equal the states of the
// concatenated data. The same identity maintains materialized state
// views. Entries that cannot be re-planned over the delta (e.g. they
// were fed by a per-query subquery temporary) fall back to targeted
// invalidation, surfaced as a degradation event.
//
// Queries never block on ingestion and vice versa: a query pins a
// catalog snapshot at admission (one version of every table), appends
// build successor versions without mutating anything a reader can see,
// and the maintenance pass runs entirely against catalog overlays before
// the new version is published.

package core

import (
	"context"
	"fmt"
	"strings"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/exec"
	"sudaf/internal/rewrite"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// maintRec is the maintenance record attached to a cache entry: the
// statement whose data part produced the entry, and the table versions
// it was computed at. An append whose pre-append versions match can
// re-plan the statement over the delta batch and ⊕-merge; any mismatch
// means the entry belongs to a superseded version and is skipped.
type maintRec struct {
	stmt   *sqlparse.Stmt
	epochs map[string]int64
}

// newMaintRec records the maintenance identity of a just-executed plan.
func newMaintRec(stmt *sqlparse.Stmt, dp *exec.DataPlan) *maintRec {
	return &maintRec{stmt: stmt, epochs: dp.TableEpochs()}
}

// viewMaint is the maintenance state of one materialized view: its
// defining statement, the canonical states behind its value columns, the
// base-table versions its contents reflect, and an eviction-independent
// snapshot of its per-group state values (the cache may drop the view's
// entry at any time; the view table itself must stay maintainable).
type viewMaint struct {
	stmt      *sqlparse.Stmt
	states    []canonical.State
	stateCols map[string]string
	epochs    map[string]int64
	snap      cache.EntrySnapshot
}

// AppendResult reports what one append batch did: the rows ingested, the
// table-version transition, and how the cached work was carried across
// it (delta-maintained vs invalidated).
type AppendResult struct {
	// Table is the appended table's name.
	Table string
	// RowsAppended is the delta batch's row count (0 for a no-op append,
	// which does not create a new version).
	RowsAppended int
	// OldEpoch and NewEpoch are the table versions before and after the
	// append (equal for a no-op).
	OldEpoch, NewEpoch int64
	// EntriesMigrated counts cache entries delta-maintained onto the new
	// version; StatesMaintained totals their per-entry states.
	EntriesMigrated  int
	StatesMaintained int
	// EntriesInvalidated counts cache entries referencing the old version
	// that had to be dropped instead of maintained.
	EntriesInvalidated int
	// ViewsMaintained / ViewsInvalidated count materialized views
	// delta-folded vs dropped.
	ViewsMaintained  int
	ViewsInvalidated int
	// Events lists the degradation events (one per invalidation); the
	// same events are also queued on the cache and surface in the next
	// share-mode query's Result.Events.
	Events []string
}

// Append ingests a batch of rows into a registered table. The delta must
// have the table's columns (same names and kinds, any order). On return
// the session catalog serves the new table version; queries already in
// flight keep their pinned snapshot and never observe the new rows.
//
// Before publishing, Append delta-maintains derived results: every cache
// entry whose maintenance record matches the pre-append versions gets
// the delta's per-group states ⊕-merged in and moves to the post-append
// fingerprint, and every materialized view over the table is rebuilt the
// same way — no base-data rescan in either case. Unmaintainable entries
// and views are invalidated, each with an AppendResult.Events note.
//
// Appends are serialized per session; Append is safe to call
// concurrently with queries and other appends.
func (s *Session) Append(ctx context.Context, table string, delta *storage.Table) (res *AppendResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if delta == nil {
		return nil, fmt.Errorf("append to %s: nil delta", table)
	}
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("append to %s panicked (recovered): %v", table, r)
		}
	}()
	// Lifecycle gate: a closed (draining) session rejects new appends;
	// admitted ones are tracked so Close waits for the maintenance pass
	// and the version publish to finish.
	if err := s.beginOp("append"); err != nil {
		return nil, err
	}
	defer s.endOp()
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	s.mu.RLock()
	_, isView := s.views[table]
	s.mu.RUnlock()
	if isView {
		return nil, fmt.Errorf("append to %s: table is a materialized view", table)
	}
	old, err := s.cat.Table(table)
	if err != nil {
		return nil, err
	}
	res = &AppendResult{Table: table, OldEpoch: old.Epoch, NewEpoch: old.Epoch}
	if err := delta.Validate(); err != nil {
		return nil, fmt.Errorf("append to %s: %w", table, err)
	}
	// Schema is checked even for empty deltas, so a miswired caller fails
	// loudly instead of silently no-opping.
	if len(delta.Cols) != len(old.Cols) {
		return nil, fmt.Errorf("append to %s: %d columns, want %d", table, len(delta.Cols), len(old.Cols))
	}
	for _, c := range old.Cols {
		d := delta.Col(c.Name)
		if d == nil {
			return nil, fmt.Errorf("append to %s: missing column %s", table, c.Name)
		}
		if d.Kind != c.Kind {
			return nil, fmt.Errorf("append to %s: column %s is %s, want %s", table, c.Name, d.Kind, c.Kind)
		}
	}
	if delta.NumRows() == 0 {
		// Nothing to ingest: keep the current version (and with it every
		// cached fingerprint) instead of churning epochs.
		s.noteAppend(res)
		return res, nil
	}

	newTbl, err := old.AppendRows(delta)
	if err != nil {
		return nil, err
	}
	res.RowsAppended = delta.NumRows()
	res.NewEpoch = newTbl.Epoch

	// Two planning overlays, neither published: deltaCat resolves the
	// table to just the delta rows (a zero-copy slice of the new version,
	// sharing its dictionary so group codes line up with cached keys);
	// postCat resolves it to the full new version (for post-append
	// fingerprints). Every other table resolves to its current session
	// version in both.
	deltaCat := s.cat.Overlay()
	if err := deltaCat.Register(newTbl.Slice(old.NumRows(), newTbl.NumRows())); err != nil {
		return nil, fmt.Errorf("append to %s: delta view: %w", table, err)
	}
	postCat := s.cat.Overlay()
	if err := postCat.Register(newTbl); err != nil {
		return nil, fmt.Errorf("append to %s: %w", table, err)
	}

	c := s.stateCache()
	invalidate := func(fp, why string) {
		c.Remove(fp)
		ev := fmt.Sprintf("ingest: %s@%d→%d: cache entry %s %s; invalidated", table, res.OldEpoch, res.NewEpoch, fp, why)
		res.Events = append(res.Events, ev)
		c.AddEvent(ev)
		res.EntriesInvalidated++
	}
	for _, snap := range c.Snapshot() {
		mr, ok := snap.Maint.(*maintRec)
		if !ok || mr == nil {
			if fpReferences(snap.Fingerprint, table, old.Epoch) {
				invalidate(snap.Fingerprint, "has no maintenance record")
			}
			continue
		}
		if !s.recCurrent(mr.epochs, table, old.Epoch) {
			// The entry does not touch this table (still valid as-is) or
			// was computed at superseded versions (already unreachable
			// garbage for new fingerprints); either way, leave it alone.
			continue
		}
		n, err := s.migrateEntry(ctx, c, snap, mr, deltaCat, postCat)
		if err != nil {
			invalidate(snap.Fingerprint, fmt.Sprintf("not delta-maintainable (%v)", err))
			continue
		}
		res.EntriesMigrated++
		res.StatesMaintained += n
	}

	// Materialized views over the table: same monoid fold, applied to the
	// view's own state snapshot, then re-materialized as a fresh table
	// version. Failures drop the view (a stale view must never answer a
	// roll-up or a direct query).
	s.mu.RLock()
	vms := make(map[string]*viewMaint, len(s.viewMaints))
	for n, vm := range s.viewMaints {
		vms[n] = vm
	}
	s.mu.RUnlock()
	for name, vm := range vms {
		if !s.recCurrent(vm.epochs, table, old.Epoch) {
			continue
		}
		nv, nvm, verr := s.maintainView(ctx, name, vm, deltaCat, postCat)
		if verr == nil {
			verr = s.cat.Register(nv.Table)
		}
		if verr != nil {
			s.DropView(name)
			ev := fmt.Sprintf("ingest: %s@%d→%d: view %s not delta-maintainable (%v); dropped", table, res.OldEpoch, res.NewEpoch, name, verr)
			res.Events = append(res.Events, ev)
			c.AddEvent(ev)
			res.ViewsInvalidated++
			continue
		}
		s.mu.Lock()
		s.views[name] = nv
		s.viewMaints[name] = nvm
		s.mu.Unlock()
		res.ViewsMaintained++
	}

	// Route the delta to its owning shard before publishing: contiguous
	// ranges mean an append extends only the last shard, whose worker
	// cache is ⊕-maintained in place; the other shards' slices — and
	// every partial cached under them — stay valid untouched.
	if s.shards != nil {
		s.routeAppend(ctx, old, newTbl, deltaCat)
	}

	// Publish: from here on, new snapshots pin the new version. In-flight
	// queries keep the old one, and keep hitting its epoch-qualified
	// cache entries (migration copies, never mutates or removes them);
	// entries invalidated above recompute — never read stale state.
	if err := s.cat.Register(newTbl); err != nil {
		return nil, fmt.Errorf("append to %s: publish: %w", table, err)
	}
	// Notify continuous subscriptions after publish, still under
	// ingestMu: one note per append, in append order (the FIFO /
	// exactly-once half of the Subscribe contract).
	s.notifySubs(table, newTbl, old.NumRows(), newTbl.NumRows())
	s.noteAppend(res)
	return res, nil
}

// noteAppend folds one successful append into the session-lifetime
// ingestion counters (see IngestStats and the sudaf_ingest_* metrics).
func (s *Session) noteAppend(res *AppendResult) {
	s.appends.Add(1)
	s.rowsAppended.Add(int64(res.RowsAppended))
	s.entriesMigrated.Add(int64(res.EntriesMigrated))
	s.statesMaintained.Add(int64(res.StatesMaintained))
	s.entriesInvalidated.Add(int64(res.EntriesInvalidated))
	s.viewsMaintained.Add(int64(res.ViewsMaintained))
	s.viewsInvalidated.Add(int64(res.ViewsInvalidated))
}

// AppendCSV ingests a CSV batch (WriteCSV's typed-header format) into a
// registered table through Append. It honors the same skip-bad-rows
// policy as the initial CSV load path: malformed rows (wrong field
// count, unparsable values) are skipped and reported in
// AppendResult.Events instead of failing the whole delta. Use
// AppendCSVWith for strict all-or-nothing ingestion.
func (s *Session) AppendCSV(ctx context.Context, table, path string) (*AppendResult, error) {
	return s.AppendCSVWith(ctx, table, path, storage.CSVOptions{SkipBadRows: true})
}

// AppendCSVWith ingests a CSV batch with explicit malformed-row
// handling: with SkipBadRows set, bad rows are skipped, counted and
// surfaced as an AppendResult.Events note; without it, the first bad
// row fails the whole delta with a line-numbered error and nothing is
// ingested.
func (s *Session) AppendCSVWith(ctx context.Context, table, path string, opts storage.CSVOptions) (*AppendResult, error) {
	delta, skipped, err := storage.LoadCSVFileWith(table, path, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.Append(ctx, table, delta)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		res.Events = append(res.Events,
			fmt.Sprintf("ingest: %s: skipped %d malformed CSV row(s); %d row(s) ingested", table, skipped, res.RowsAppended))
	}
	return res, nil
}

// recCurrent reports whether a maintenance record matches the data this
// append transitions: the appended table at its pre-append version and
// every other referenced table at its current session version.
func (s *Session) recCurrent(epochs map[string]int64, table string, oldEpoch int64) bool {
	touches := false
	for name, ep := range epochs {
		if name == table {
			if ep != oldEpoch {
				return false
			}
			touches = true
			continue
		}
		t, err := s.cat.Table(name)
		if err != nil || t.Epoch != ep {
			return false
		}
	}
	return touches
}

// fpReferences reports whether a data fingerprint's tables section
// contains exactly the version name@epoch (used to decide whether an
// unmaintainable entry is affected by an append at all).
func fpReferences(fp, name string, epoch int64) bool {
	end := strings.Index(fp, "]")
	if !strings.HasPrefix(fp, "T[") || end < 0 {
		return false
	}
	want := fmt.Sprintf("%s@%d", name, epoch)
	for _, t := range strings.Split(fp[2:end], ",") {
		if t == want {
			return true
		}
	}
	return false
}

// runDeltaStates re-plans a statement's data part over the delta catalog
// and computes the given canonical states on the delta rows only,
// returning the group result plus per-state value vectors and delta
// positivity (whether every delta base value is provably > 0). A grand
// aggregate (no GROUP BY) always yields exactly one group, with identity
// values when no delta row passes the filters — which merges as a no-op.
func (s *Session) runDeltaStates(ctx context.Context, dc *catalog.Catalog, stmt *sqlparse.Stmt,
	states []canonical.State) (gr *exec.GroupResult, vals map[string][]float64, pos map[string]bool, err error) {

	defer func() {
		if r := recover(); r != nil {
			gr, vals, pos = nil, nil, nil
			err = fmt.Errorf("delta run panicked (recovered): %v", r)
		}
	}()
	dp, err := s.eng.PrepareDataIn(dc, stmt)
	if err != nil {
		return nil, nil, nil, err
	}
	reg := exec.NewTaskRegistry()
	idx := make([]int, len(states))
	for i, st := range states {
		idx[i] = addStateTask(reg, st, st.Key())
	}
	gr, err = s.eng.RunSpecs(ctx, dp, reg)
	if err != nil {
		return nil, nil, nil, err
	}
	vals = make(map[string][]float64, len(states))
	pos = make(map[string]bool, len(states))
	for i, st := range states {
		vals[st.Key()] = gr.Values[idx[i]]
		pos[st.Key()] = basePositive(dc, st.Base, dp.Tables())
	}
	return gr, vals, pos, nil
}

// migrateEntry delta-maintains one cache entry: computes its states on
// the delta rows, ⊕-merges them into the snapshot, and installs the
// result under the post-append fingerprint. It returns the number of
// states maintained.
//
// The superseded entry is deliberately left in place. Fingerprints are
// epoch-qualified, so it can never serve a query over newer data — but a
// batch (or any in-flight query) pinned to the pre-append snapshot may
// still hit it, and must: a maintained entry's ⊕-merged values differ in
// the last ulp from a cold rescan's fold, so evicting it mid-batch would
// let two identical queries in one batch disagree bit-for-bit. Later
// appends skip it (its maintenance record no longer matches) and the LRU
// reclaims it under budget pressure.
func (s *Session) migrateEntry(ctx context.Context, c *cache.Cache, snap cache.EntrySnapshot,
	mr *maintRec, deltaCat, postCat *catalog.Catalog) (int, error) {

	states := make([]canonical.State, len(snap.States))
	for i, cs := range snap.States {
		states[i] = cs.State
	}
	gr, vals, pos, err := s.runDeltaStates(ctx, deltaCat, mr.stmt, states)
	if err != nil {
		return 0, err
	}
	dpNew, err := s.eng.PrepareDataIn(postCat, mr.stmt)
	if err != nil {
		return 0, err
	}
	merged, err := cache.MergeDelta(snap, dpNew.Fingerprint, gr.Keys, gr.KeyColumns, vals, pos,
		newMaintRec(mr.stmt, dpNew))
	if err != nil {
		return 0, err
	}
	c.Put(merged)
	return len(states), nil
}

// maintainView delta-maintains one materialized view: merges the delta
// states into the view's snapshot and re-materializes the view table
// (fresh columns; the old version stays readable by pinned queries).
func (s *Session) maintainView(ctx context.Context, name string, vm *viewMaint,
	deltaCat, postCat *catalog.Catalog) (*rewrite.View, *viewMaint, error) {

	states := make([]canonical.State, len(vm.snap.States))
	for i, cs := range vm.snap.States {
		states[i] = cs.State
	}
	gr, vals, pos, err := s.runDeltaStates(ctx, deltaCat, vm.stmt, states)
	if err != nil {
		return nil, nil, err
	}
	dpNew, err := s.eng.PrepareDataIn(postCat, vm.stmt)
	if err != nil {
		return nil, nil, err
	}
	merged, err := cache.MergeDelta(vm.snap, dpNew.Fingerprint, gr.Keys, gr.KeyColumns, vals, pos, nil)
	if err != nil {
		return nil, nil, err
	}
	tbl := merged.ToTable(name, func(_ int, cs *cache.CachedState) string {
		return vm.stateCols[cs.State.Key()]
	})
	if err := tbl.Validate(); err != nil {
		return nil, nil, err
	}
	nv := &rewrite.View{Name: name, Table: tbl, Info: dpNew.Info(), States: vm.states, StateCols: vm.stateCols}
	nvm := &viewMaint{
		stmt:      vm.stmt,
		states:    vm.states,
		stateCols: vm.stateCols,
		epochs:    dpNew.TableEpochs(),
		snap:      merged.SnapshotEntry(),
	}
	return nv, nvm, nil
}
