package core

import (
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// newTestSession builds a session over a miniature TPC-DS-like schema:
// store_sales (fact), store, date_dim, item.
func newTestSession(t *testing.T, rows, workers int) *Session {
	t.Helper()
	s := NewSession(Options{Workers: workers})
	rng := rand.New(rand.NewSource(2024))

	const nStores, nItems, nYears = 6, 40, 4
	storeT := storage.NewTable("store",
		storage.NewColumn("s_store_sk", storage.KindInt),
		storage.NewColumn("s_state", storage.KindString))
	statesPool := []string{"TN", "CA", "TN", "NY", "TN", "WA"}
	for i := 0; i < nStores; i++ {
		storeT.Col("s_store_sk").AppendInt(int64(i))
		storeT.Col("s_state").AppendString(statesPool[i])
	}
	dateT := storage.NewTable("date_dim",
		storage.NewColumn("d_date_sk", storage.KindInt),
		storage.NewColumn("d_year", storage.KindInt))
	for i := 0; i < nYears*365; i++ {
		dateT.Col("d_date_sk").AppendInt(int64(i))
		dateT.Col("d_year").AppendInt(int64(1998 + i/365))
	}
	itemT := storage.NewTable("item",
		storage.NewColumn("i_item_sk", storage.KindInt),
		storage.NewColumn("i_category", storage.KindString))
	cats := []string{"Sports", "Books", "Home"}
	for i := 0; i < nItems; i++ {
		itemT.Col("i_item_sk").AppendInt(int64(i))
		itemT.Col("i_category").AppendString(cats[i%3])
	}
	sales := storage.NewTable("store_sales",
		storage.NewColumn("ss_item_sk", storage.KindInt),
		storage.NewColumn("ss_store_sk", storage.KindInt),
		storage.NewColumn("ss_sold_date_sk", storage.KindInt),
		storage.NewColumn("ss_list_price", storage.KindFloat),
		storage.NewColumn("ss_sales_price", storage.KindFloat))
	for i := 0; i < rows; i++ {
		sales.Col("ss_item_sk").AppendInt(int64(rng.Intn(nItems)))
		sales.Col("ss_store_sk").AppendInt(int64(rng.Intn(nStores)))
		sales.Col("ss_sold_date_sk").AppendInt(int64(rng.Intn(nYears * 365)))
		lp := 10 + rng.Float64()*90
		sales.Col("ss_list_price").AppendFloat(lp)
		sales.Col("ss_sales_price").AppendFloat(lp * (0.5 + rng.Float64()*0.5))
	}
	for _, tbl := range []*storage.Table{storeT, dateT, itemT, sales} {
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const q1 = `SELECT ss_item_sk, d_year, avg(ss_list_price),
	avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and
	ss_store_sk = s_store_sk and s_state = 'TN'
GROUP BY ss_item_sk, d_year ORDER BY ss_item_sk, d_year;`

const q2 = `SELECT ss_item_sk, d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and
	ss_store_sk = s_store_sk and s_state = 'TN'
GROUP BY ss_item_sk, d_year ORDER BY ss_item_sk, d_year;`

const q3 = `SELECT d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim, item
WHERE ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
	and ss_store_sk = s_store_sk and i_category = 'Sports'
	and s_state = 'TN' and d_year >= 2000
GROUP BY d_year ORDER BY d_year;`

// tablesEqual compares two result tables cell-by-cell with tolerance.
func tablesEqual(t *testing.T, a, b *storage.Table, label string) {
	t.Helper()
	if a.NumRows() != b.NumRows() || len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", label,
			a.NumRows(), len(a.Cols), b.NumRows(), len(b.Cols))
	}
	for c := range a.Cols {
		for i := 0; i < a.NumRows(); i++ {
			va, vb := a.Cols[c].AsFloat(i), b.Cols[c].AsFloat(i)
			if math.IsNaN(va) && math.IsNaN(vb) {
				continue
			}
			if math.Abs(va-vb) > 1e-6*(1+math.Abs(va)) {
				t.Fatalf("%s: col %d row %d: %v vs %v", label, c, i, va, vb)
			}
		}
	}
}

// TestModesAgree is the master correctness test: all three execution
// modes must produce identical results for the paper's queries.
func TestModesAgree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := newTestSession(t, 30000, workers)
		for _, q := range []string{q1, q2, q3} {
			base, err := s.Query(q, ModeBaseline)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			rw, err := s.Query(q, ModeRewrite)
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			sh, err := s.Query(q, ModeShare)
			if err != nil {
				t.Fatalf("share: %v", err)
			}
			tablesEqual(t, base.Table, rw.Table, "baseline vs rewrite")
			tablesEqual(t, base.Table, sh.Table, "baseline vs share")
		}
	}
}

// TestQ2SharesQ1States reproduces the paper's §2 scenario: after Q1 in
// share mode, Q2's states (count, Σx, Σx²) are fully cached, so Q2 reads
// zero base rows.
func TestQ2SharesQ1States(t *testing.T) {
	s := newTestSession(t, 20000, 1)
	if _, err := s.Query(q1, ModeShare); err != nil {
		t.Fatal(err)
	}
	s.ResetCacheStats()
	res, err := s.Query(q2, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullCacheHit || res.RowsScanned != 0 {
		t.Fatalf("Q2 should be a full cache hit after Q1: %+v, stats %+v",
			res, s.CacheStats())
	}
	st := s.CacheStats()
	if st.ExactHits == 0 {
		t.Errorf("expected exact hits, stats %+v", st)
	}
	// Correctness: compare against a fresh baseline run.
	base, err := s.Query(q2, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, base.Table, res.Table, "Q2 cached vs baseline")
}

// TestQ1NotServableFromQ2 checks the converse: Q1 needs Σxy and Σy which
// Q2 never computed, so it must scan.
func TestQ1NotServableFromQ2(t *testing.T) {
	s := newTestSession(t, 10000, 1)
	if _, err := s.Query(q2, ModeShare); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(q1, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullCacheHit {
		t.Fatal("Q1 cannot be fully served from Q2's states")
	}
	if res.RowsScanned == 0 {
		t.Fatal("Q1 must scan for Σxy")
	}
}

// TestViewRewriting reproduces Q3 → RQ3': with V1 (the subquery of RQ1)
// materialized, Q3 rolls up from the view instead of scanning base data.
func TestViewRewriting(t *testing.T) {
	s := newTestSession(t, 20000, 1)
	// Ground truth without views.
	s.SetViewRewriting(false)
	direct, err := s.Query(q3, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize V1: Q1's data part with its aggregates.
	v1 := `SELECT ss_item_sk, d_year, count(*), sum(ss_list_price),
		qm(ss_list_price), theta1(ss_list_price, ss_sales_price)
	FROM store_sales, store, date_dim
	WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
		and s_state = 'TN'
	GROUP BY ss_item_sk, d_year`
	if err := s.Materialize("v1", v1); err != nil {
		t.Fatal(err)
	}
	s.SetViewRewriting(true)
	res, err := s.Query(q3, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedView != "v1" {
		t.Fatalf("Q3 should roll up from v1, got view %q (rows scanned %d)",
			res.UsedView, res.RowsScanned)
	}
	if res.RowsScanned >= direct.RowsScanned {
		t.Errorf("roll-up should read far fewer rows: %d vs %d",
			res.RowsScanned, direct.RowsScanned)
	}
	tablesEqual(t, direct.Table, res.Table, "Q3 direct vs roll-up")
}

// TestGMSharesMomentSketch: prefetching approx_median (moment sketch)
// caches Σ ln x, from which gm's Πx state is derived (case 2.3).
func TestGMSharesMomentSketch(t *testing.T) {
	s := newTestSession(t, 15000, 1)
	prefetch := `SELECT ss_item_sk, approx_median(ss_list_price)
		FROM store_sales GROUP BY ss_item_sk`
	if _, err := s.Query(prefetch, ModeShare); err != nil {
		t.Fatal(err)
	}
	s.ResetCacheStats()
	gmq := `SELECT ss_item_sk, gm(ss_list_price)
		FROM store_sales GROUP BY ss_item_sk ORDER BY ss_item_sk`
	res, err := s.Query(gmq, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullCacheHit {
		t.Fatalf("gm should be served from the moment sketch: %+v, stats %+v",
			res, s.CacheStats())
	}
	if s.CacheStats().SharedHits == 0 {
		t.Errorf("expected a Theorem 4.1 shared hit, stats %+v", s.CacheStats())
	}
	base, err := s.Query(gmq, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, base.Table, res.Table, "gm cached vs baseline")
}

// TestHMNotServedByMomentSketch: Σ x⁻¹ is not derivable from MS states
// (the paper's AS2 exception).
func TestHMNotServedByMomentSketch(t *testing.T) {
	s := newTestSession(t, 8000, 1)
	prefetch := `SELECT ss_item_sk, approx_median(ss_list_price)
		FROM store_sales GROUP BY ss_item_sk`
	if _, err := s.Query(prefetch, ModeShare); err != nil {
		t.Fatal(err)
	}
	hmq := `SELECT ss_item_sk, hm(ss_list_price) FROM store_sales GROUP BY ss_item_sk`
	res, err := s.Query(hmq, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullCacheHit || res.RowsScanned == 0 {
		t.Fatal("hm requires Σx⁻¹, which the moment sketch does not cache")
	}
}

// TestSequenceAS1 runs the paper's AS1 aggregate sequence and checks
// later aggregates reuse earlier states (count/var/sum/avg after cm..std).
func TestSequenceAS1(t *testing.T) {
	s := newTestSession(t, 10000, 1)
	seq := []string{"cm", "qm", "gm", "hm", "min", "max", "count", "std", "var", "sum", "avg"}
	fullHits := 0
	for _, agg := range seq {
		var q string
		if agg == "count" {
			q = "SELECT ss_item_sk, count(*) FROM store_sales GROUP BY ss_item_sk"
		} else {
			q = "SELECT ss_item_sk, " + agg + "(ss_list_price) FROM store_sales GROUP BY ss_item_sk"
		}
		res, err := s.Query(q, ModeShare)
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if res.FullCacheHit {
			fullHits++
		}
	}
	// count, std(partially: needs count+Σx+Σx²: count cached from?? cm
	// caches Σx³+count; qm caches Σx²; sum/avg reuse Σx from std), var...
	if fullHits < 4 {
		t.Errorf("AS1 should see several full cache hits, got %d (stats %+v)",
			fullHits, s.CacheStats())
	}
}

// TestUDAFDefinitionErrors exercises the declarative front door.
func TestUDAFDefinitionErrors(t *testing.T) {
	s := NewSession(Options{Workers: 1})
	if err := s.DefineUDAF("sum", []string{"x"}, "sum(x)"); err == nil {
		t.Error("redefining a built-in must fail")
	}
	if err := s.DefineUDAF("bad", []string{"x"}, "x + 1"); err == nil {
		t.Error("non-aggregate body must fail")
	}
	if err := s.DefineUDAF("bad2", []string{"x"}, "sum(x"); err == nil {
		t.Error("syntax error must fail")
	}
	if err := s.DefineUDAF("trimmed_mean", []string{"x"}, "sum(x)/count()"); err != nil {
		t.Errorf("valid definition failed: %v", err)
	}
	if _, ok := s.UDAF("trimmed_mean"); !ok {
		t.Error("UDAF not registered")
	}
}

// TestSubqueryMaterialization runs an RQ1-shaped query with a derived
// table through all modes.
func TestSubqueryMaterialization(t *testing.T) {
	s := newTestSession(t, 5000, 2)
	q := `SELECT ss_item_sk, s2/s1 avg_price
	FROM (SELECT ss_item_sk, count(*) s1, sum(ss_list_price) s2
	      FROM store_sales GROUP BY ss_item_sk) TEMP
	GROUP BY ss_item_sk ORDER BY ss_item_sk`
	// The outer query has no aggregates; use a plain aggregate-free shape.
	q = `SELECT ss_item_sk, s2/s1 avg_price
	FROM (SELECT ss_item_sk, count(*) s1, sum(ss_list_price) s2
	      FROM store_sales GROUP BY ss_item_sk) TEMP`
	res, err := s.Query(q, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against direct avg.
	direct, err := s.Query("SELECT ss_item_sk, avg(ss_list_price) FROM store_sales GROUP BY ss_item_sk", ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != direct.Table.NumRows() {
		t.Fatalf("row mismatch: %d vs %d", res.Table.NumRows(), direct.Table.NumRows())
	}
	// Values match after aligning by item (both ordered differently
	// perhaps); build a map.
	want := map[int64]float64{}
	for i := 0; i < direct.Table.NumRows(); i++ {
		want[direct.Table.Cols[0].AsInt(i)] = direct.Table.Cols[1].AsFloat(i)
	}
	for i := 0; i < res.Table.NumRows(); i++ {
		k := res.Table.Cols[0].AsInt(i)
		got := res.Table.Cols[1].AsFloat(i)
		if math.Abs(got-want[k]) > 1e-9*(1+math.Abs(got)) {
			t.Fatalf("item %d: %v vs %v", k, got, want[k])
		}
	}
}

// TestCrossAggregateIntraQuerySharing: within one query, stddev and qm
// need the same Σx² and count states — the task registry must dedupe.
func TestCrossAggregateIntraQuerySharing(t *testing.T) {
	s := newTestSession(t, 5000, 1)
	q := `SELECT ss_item_sk, qm(ss_list_price), stddev(ss_list_price),
		variance(ss_list_price), avg(ss_list_price)
	FROM store_sales GROUP BY ss_item_sk`
	res, err := s.Query(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	// qm: {Σx², count}; stddev: {Σx², Σx, count}; var same; avg {Σx, count}
	// → 3 unique states total.
	entry, ok := s.Cache().Entry(mustFingerprint(t, s, q))
	if !ok {
		t.Fatal("no cache entry")
	}
	if entry.NumStates() != 3 {
		t.Errorf("expected 3 deduped states, got %d: %v", entry.NumStates(), entry.StateKeys())
	}
	_ = res
}

func mustFingerprint(t *testing.T, s *Session, sql string) string {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := s.eng.PrepareData(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return dp.Fingerprint
}
