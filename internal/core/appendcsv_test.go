package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudaf/internal/storage"
)

// appendCSVSession is a session with one tiny registered table m(k:int,
// v:float) holding two seed rows.
func appendCSVSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(Options{Workers: 1})
	m := storage.NewTable("m",
		storage.NewColumn("k", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	m.Col("k").AppendInt(1)
	m.Col("v").AppendFloat(10)
	m.Col("k").AppendInt(2)
	m.Col("v").AppendFloat(20)
	if err := s.Register(m); err != nil {
		t.Fatal(err)
	}
	return s
}

func sumV(t *testing.T, s *Session) float64 {
	t.Helper()
	res, err := s.Query("SELECT sum(v) FROM m", ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table.Cols[0].AsFloat(0)
}

// TestAppendCSVSkipsBadRows: a corrupt row in the middle of a CSV delta
// no longer fails the whole batch — the good rows are ingested and the
// skip is reported via AppendResult.Events, matching the skip-bad-rows
// policy the initial CSV load path has had since PR 1.
func TestAppendCSVSkipsBadRows(t *testing.T) {
	s := appendCSVSession(t)
	path := filepath.Join(t.TempDir(), "delta.csv")
	csv := "k:int,v:float\n" +
		"3,30\n" +
		"4,notanumber\n" + // unparsable float mid-file
		"5\n" + // wrong field count
		"6,60\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := s.AppendCSV(context.Background(), "m", path)
	if err != nil {
		t.Fatalf("AppendCSV must skip bad rows, not fail: %v", err)
	}
	if res.RowsAppended != 2 {
		t.Errorf("RowsAppended = %d, want 2", res.RowsAppended)
	}
	found := false
	for _, ev := range res.Events {
		if strings.Contains(ev, "skipped 2 malformed CSV row(s)") {
			found = true
		}
	}
	if !found {
		t.Errorf("Events missing skipped-rows note: %v", res.Events)
	}
	if got, want := sumV(t, s), 10.0+20+30+60; got != want {
		t.Errorf("sum(v) after append = %v, want %v", got, want)
	}
}

// TestAppendCSVWithStrict: the explicit strict policy still rejects the
// whole delta on the first malformed row, ingesting nothing.
func TestAppendCSVWithStrict(t *testing.T) {
	s := appendCSVSession(t)
	path := filepath.Join(t.TempDir(), "delta.csv")
	csv := "k:int,v:float\n3,30\n4,notanumber\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendCSVWith(context.Background(), "m", path, storage.CSVOptions{}); err == nil {
		t.Fatal("strict AppendCSVWith must fail on a malformed row")
	}
	if got, want := sumV(t, s), 30.0; got != want {
		t.Errorf("strict failure must ingest nothing: sum(v) = %v, want %v", got, want)
	}
}
