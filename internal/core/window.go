package core

import (
	"context"
	"fmt"
	"math"

	"sudaf/internal/analyzer"
	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
	"sudaf/internal/window"
)

// This file plans and executes windowed queries — statements carrying an
// OVER (ROWS|EPOCHS n PRECEDING|TUMBLING) clause. They flow through
// their own analyzer pipeline (windowPipeline) rather than
// queryPipeline: the frame replaces GROUP BY as the grouping structure,
// the scan is a single in-order pass (the two-stacks ⊕-fold needs rows
// chronologically, not morsel-parallel), and share-mode caching keys on
// a window-qualified fingerprint so only queries with the same frame
// shape exchange per-emission state vectors (Theorem 4.1 still applies:
// two different terminating functions over the same frame share the
// same cached states).
//
// One-shot execution lives here; the continuous Subscribe path
// (internal/core/subscribe.go) reuses the same plan state, frames and
// output builder incrementally.

// frame is one emission's row range [lo, hi); hi-1 is the emit row,
// where non-aggregate projection columns are read.
type frame struct{ lo, hi int }

// windowFrames enumerates a ROWS-unit query's emission frames over n
// rows. Sliding frames emit one window per row — standard SQL
// "ROWS k PRECEDING" semantics, with partial frames while the window
// fills. Tumbling frames emit one window per bucket; a one-shot query
// includes the trailing partial bucket (the table ends there), while a
// continuous subscription excludes it (it is still growing).
func windowFrames(spec *sqlparse.WindowSpec, n int, continuous bool) []frame {
	var out []frame
	if spec.Sliding {
		for r := 0; r < n; r++ {
			lo := r - spec.N
			if lo < 0 {
				lo = 0
			}
			out = append(out, frame{lo, r + 1})
		}
		return out
	}
	b := spec.Size()
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			if continuous {
				break
			}
			hi = n
		}
		out = append(out, frame{lo, hi})
	}
	return out
}

// windowPlanState is the analyzer unit for one windowed query: the plan
// built phase by phase (resolve → canonicalize → window) and executed
// by executeWindowPlan, or driven incrementally by a Subscription.
type windowPlanState struct {
	s    *Session
	qc   *queryCtx
	stmt *sqlparse.Stmt
	mode Mode
	spec *sqlparse.WindowSpec
	// continuous marks a Subscribe-owned plan: EPOCHS frames become
	// legal and the state cache is bypassed (a live stream's frames are
	// perpetually one append ahead of any cached entry).
	continuous bool

	// resolve
	tbl   *storage.Table
	dp    *exec.DataPlan
	calls []*expr.Call
	out   exec.OutputSpec
	reg   *exec.TaskRegistry // baseline-mode per-call tasks

	// canonicalize (SUDAF modes)
	slots     map[string]*slot
	slotOrder []string

	// window
	wfp        string // window-qualified cache fingerprint
	entryOK    bool
	missing    []*slot
	companions []*slot
	fullHit    bool
	events     []string
}

// guard mirrors planState.guard: cache faults degrade to recomputation.
func (ws *windowPlanState) guard(stage string, f func()) {
	defer func() {
		if r := recover(); r != nil {
			ws.events = append(ws.events, fmt.Sprintf(
				"cache: panic during %s (recovered); falling back to recomputation: %v", stage, r))
		}
	}()
	f()
}

func (ws *windowPlanState) getSlot(st canonical.State, positive bool) *slot {
	key := st.Key()
	if sl, ok := ws.slots[key]; ok {
		return sl
	}
	sl := &slot{st: st, positive: positive, taskIdx: -1}
	ws.slots[key] = sl
	ws.slotOrder = append(ws.slotOrder, key)
	return sl
}

// windowPipeline is the analyzer pipeline for windowed statements:
//
//	resolve      — scope validation (v1 windows read one base table,
//	               no WHERE/GROUP BY/ORDER BY/LIMIT), table resolution,
//	               data fingerprint, aggregate-call extraction
//	canonicalize — the same state decomposition as ordinary queries:
//	               baseline tasks or deduplicated (F, ⊕, T) slots
//	window       — qualify the data fingerprint with the frame spec and
//	               consult the state cache for per-emission vectors
var windowPipeline = analyzer.Pipeline[*windowPlanState]{
	Phases: []analyzer.Phase[*windowPlanState]{
		{Name: "resolve", Rules: []analyzer.Rule[*windowPlanState]{
			{Name: "validate-scope", Apply: ruleWindowScope},
			{Name: "resolve-table", Apply: ruleWindowResolve},
			{Name: "extract-aggregates", Apply: ruleWindowExtract},
		}},
		{Name: "canonicalize", Rules: []analyzer.Rule[*windowPlanState]{
			{Name: "bind-baseline", Apply: ruleWindowBindBaseline},
			{Name: "bind-states", Apply: ruleWindowBindStates},
		}},
		{Name: "window", Rules: []analyzer.Rule[*windowPlanState]{
			{Name: "qualify-fingerprint", Apply: ruleWindowFingerprint},
			{Name: "lookup-cache", Apply: ruleWindowLookupCache},
			{Name: "collect-missing", Apply: ruleWindowCollectMissing},
		}},
	},
}

// ---- resolve phase ----

// ruleWindowScope pins the v1 windowed-query surface: one base table,
// aggregate projections only, frame-ordered output.
func ruleWindowScope(_ context.Context, ws *windowPlanState) error {
	if ws.spec.Unit == sqlparse.WindowEpochs && !ws.continuous {
		return fmt.Errorf("EPOCHS windows require a live stream: use Subscribe (each Append batch is one epoch tick)")
	}
	if len(ws.stmt.From) != 1 || ws.stmt.From[0].Sub != nil {
		return fmt.Errorf("windowed queries read a single base table")
	}
	if ws.stmt.Where != nil {
		return fmt.Errorf("windowed queries do not support WHERE")
	}
	if len(ws.stmt.GroupBy) > 0 {
		return fmt.Errorf("windowed queries do not support GROUP BY (the frame is the group)")
	}
	if len(ws.stmt.OrderBy) > 0 || ws.stmt.Limit >= 0 {
		return fmt.Errorf("windowed queries do not support ORDER BY/LIMIT (emissions arrive in frame order)")
	}
	if !ws.s.hasAggregates(ws.stmt) {
		return fmt.Errorf("OVER requires at least one aggregate call in the select list")
	}
	return nil
}

// ruleWindowResolve resolves the base table against the query's catalog
// snapshot and seals the statement's data-part fingerprint (which pins
// the table's version via its epoch, exactly like ordinary queries).
func ruleWindowResolve(_ context.Context, ws *windowPlanState) error {
	sp := ws.qc.sp.Child("plan")
	defer sp.End()
	tbl, err := ws.qc.cat.Table(ws.stmt.From[0].Name)
	if err != nil {
		return err
	}
	ws.tbl = tbl
	dp := ws.s.eng.NewDataPlan()
	if err := dp.ResolveFrom(ws.qc.cat, ws.stmt); err != nil {
		return err
	}
	if err := dp.ClassifyWhere(ws.qc.cat, ws.stmt); err != nil {
		return err
	}
	if err := dp.ResolveGroupBy(ws.qc.cat, ws.stmt); err != nil {
		return err
	}
	dp.Seal(ws.stmt)
	ws.dp = dp
	sp.SetStr("fingerprint", dp.Fingerprint)
	sp.SetStr("window", ws.spec.String())
	return nil
}

// ruleWindowExtract replaces aggregate calls with placeholders, exactly
// like ruleExtractAggregates.
func ruleWindowExtract(_ context.Context, ws *windowPlanState) error {
	items := make([]sqlparse.SelectItem, len(ws.stmt.Select))
	for i, item := range ws.stmt.Select {
		items[i] = sqlparse.SelectItem{
			Expr:  exec.ExtractAggCalls(item.Expr, ws.s.isAgg, &ws.calls),
			Alias: item.Alias,
		}
	}
	ws.out = exec.OutputSpec{Items: items, Numeric: ws.s.NumericPolicySetting()}
	ws.reg = exec.NewTaskRegistry()
	return nil
}

// ---- canonicalize phase ----

// ruleWindowBindBaseline (baseline mode) compiles each call into the
// baseline task it would run as in an unwindowed query; the executor
// recomputes every frame from scratch with these tasks.
func ruleWindowBindBaseline(_ context.Context, ws *windowPlanState) error {
	if ws.mode != ModeBaseline {
		return nil
	}
	for _, call := range ws.calls {
		fin, err := ws.s.baselineFinisher(call, ws.reg)
		if err != nil {
			return err
		}
		ws.out.Finishers = append(ws.out.Finishers, fin)
		ws.out.Labels = append(ws.out.Labels, call.String())
	}
	return nil
}

// ruleWindowBindStates (SUDAF modes) decomposes calls into deduplicated
// bound states plus terminating-function finishers over the value
// matrix — identical to ruleBindStates, so windowed and unwindowed
// queries share canonical forms (and, in share mode, cached states).
func ruleWindowBindStates(_ context.Context, ws *windowPlanState) error {
	if ws.mode == ModeBaseline {
		return nil
	}
	ws.slots = map[string]*slot{}
	csp := ws.qc.sp.Child("canonicalize")
	for _, call := range ws.calls {
		form, err := ws.s.formFor(call.Name)
		if err != nil {
			return err
		}
		if len(call.Args) != len(form.Params) {
			return fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		callSlots := make([]*slot, len(form.States))
		for j, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			callSlots[j] = ws.getSlot(bs, basePositive(ws.qc.cat, bs.Base, ws.dp.Tables()))
		}
		tfn, err := form.CompileT()
		if err != nil {
			return fmt.Errorf("%s: %w", call.Name, err)
		}
		cs := callSlots
		buf := make([]float64, len(cs))
		ws.out.Finishers = append(ws.out.Finishers, func(vals [][]float64, e int) float64 {
			for j, sl := range cs {
				buf[j] = vals[sl.finalIdx][e]
			}
			return tfn(buf)
		})
		ws.out.Labels = append(ws.out.Labels, call.String())
	}
	csp.SetInt("aggregates", int64(len(ws.calls)))
	csp.SetInt("states", int64(len(ws.slotOrder)))
	csp.End()
	return nil
}

// ---- window phase ----

// ruleWindowFingerprint qualifies the data fingerprint with the frame
// spec: two queries share cached per-emission vectors only when both
// their data part and their frame shape agree. The "T[...]" prefix is
// preserved, so the append path's fpReferences sees window entries like
// any other and invalidates them when their base table grows.
func ruleWindowFingerprint(_ context.Context, ws *windowPlanState) error {
	ws.wfp = ws.dp.Fingerprint + "|W[" + ws.spec.String() + "]"
	return nil
}

// ruleWindowLookupCache (share mode, one-shot only) consults the cache
// under the window-qualified fingerprint. A cached vector is usable
// only when its length matches this table version's emission count —
// a stale-length vector (entry survived from a differently-sized
// version) is ignored.
func ruleWindowLookupCache(_ context.Context, ws *windowPlanState) error {
	if ws.mode != ModeShare || ws.continuous {
		return nil
	}
	qc := ws.qc
	lsp := qc.sp.Child("sharing-lookup")
	nEmits := len(windowFrames(ws.spec, ws.tbl.NumRows(), false))
	ws.guard("entry lookup", func() {
		_, ws.entryOK = qc.cache.Entry(ws.wfp)
	})
	for _, key := range ws.slotOrder {
		sl := ws.slots[key]
		ws.guard("state lookup", func() {
			vals, kind, ok := qc.cache.LookupKind(ws.wfp, sl.st, sl.positive)
			if ok && len(vals) == nEmits {
				sl.cached = vals
			}
			switch kind {
			case cache.HitExact:
				qc.stats.CacheExactHits++
			case cache.HitShared:
				qc.stats.CacheSharedHits++
			case cache.HitSign:
				qc.stats.CacheSignHits++
			default:
				qc.stats.CacheMisses++
			}
		})
	}
	lsp.SetInt("exact", int64(qc.stats.CacheExactHits))
	lsp.SetInt("shared", int64(qc.stats.CacheSharedHits))
	lsp.SetInt("sign", int64(qc.stats.CacheSignHits))
	lsp.SetInt("miss", int64(qc.stats.CacheMisses))
	lsp.End()
	return nil
}

// ruleWindowCollectMissing lists slots the cache could not serve and,
// in share mode, their §5.3 sign-split companion states (folded in the
// same pass and cached for future sharing over signed data).
func ruleWindowCollectMissing(_ context.Context, ws *windowPlanState) error {
	for _, key := range ws.slotOrder {
		if sl := ws.slots[key]; sl.cached == nil {
			ws.missing = append(ws.missing, sl)
		}
	}
	if ws.mode != ModeShare || ws.continuous {
		return nil
	}
	if len(ws.missing) == 0 && ws.entryOK && len(ws.slotOrder) > 0 {
		ws.fullHit = true
	}
	for _, sl := range ws.missing {
		if !sl.positive && needsSignSplit(sl.st) {
			lnAbs, sgnProd := cache.SignSplitStates(sl.st.Base)
			for _, comp := range []canonical.State{lnAbs, sgnProd} {
				ws.companions = append(ws.companions, &slot{st: comp, positive: false})
			}
		}
	}
	return nil
}

// ---- execution (after the pipeline) ----

// runWindowStmt is the windowed branch of runStmt.
func (s *Session) runWindowStmt(ctx context.Context, qc *queryCtx, stmt *sqlparse.Stmt, mode Mode) (*Result, error) {
	s.windowQueries.Add(1)
	ws := &windowPlanState{s: s, qc: qc, stmt: stmt, mode: mode, spec: stmt.Window}
	if err := windowPipeline.Run(ctx, ws, nil); err != nil {
		return nil, err
	}
	return s.executeWindowPlan(ctx, ws)
}

// executeWindowPlan runs the analyzed window plan: a full cache hit
// answers from the stored per-emission vectors with no scan; baseline
// mode recomputes every frame from scratch with the call's native
// tasks; the SUDAF modes make one chronological pass pushing translated
// values through a two-stacks ⊕-fold per state. Share mode then stores
// the freshly folded vectors under the window-qualified fingerprint.
func (s *Session) executeWindowPlan(ctx context.Context, ws *windowPlanState) (*Result, error) {
	qc := ws.qc
	n := ws.tbl.NumRows()
	frames := windowFrames(ws.spec, n, false)

	var vals [][]float64
	rowsScanned := 0
	switch {
	case ws.fullHit:
		for _, key := range ws.slotOrder {
			sl := ws.slots[key]
			sl.finalIdx = len(vals)
			vals = append(vals, sl.cached)
		}
	case ws.mode == ModeBaseline:
		ssp := qc.sp.Child("window-recompute")
		v, err := windowTaskValues(ctx, ws.reg, ws.tbl, frames)
		if err != nil {
			return nil, err
		}
		ssp.SetInt("frames", int64(len(frames)))
		ssp.End()
		vals = v // finishers index by task position
		rowsScanned = n
	default:
		ssp := qc.sp.Child("window-fold")
		folded, err := s.windowFoldScan(ctx, ws, frames)
		if err != nil {
			return nil, err
		}
		ssp.SetInt("frames", int64(len(frames)))
		ssp.SetInt("states", int64(len(ws.missing)))
		ssp.End()
		mi := 0
		for _, key := range ws.slotOrder {
			sl := ws.slots[key]
			sl.finalIdx = len(vals)
			if sl.cached != nil {
				vals = append(vals, sl.cached)
			} else {
				vals = append(vals, folded[mi])
				mi++
			}
		}
		rowsScanned = n

		// Cache the fresh vectors (and companions) under the
		// window-qualified fingerprint. Maint stays nil: an append
		// changes every emission of the new version, so invalidation —
		// not delta maintenance — is the correct response.
		if ws.mode == ModeShare && len(ws.missing)+len(ws.companions) > 0 {
			stsp := qc.sp.Child("cache-store")
			stored := 0
			ws.guard("state insert", func() {
				keys := make([]cache.GroupKey, len(frames))
				kc := storage.NewColumn("__row", storage.KindInt)
				for e, fr := range frames {
					keys[e] = cache.GroupKey{int64(fr.hi - 1), 0}
					kc.AppendInt(int64(fr.hi - 1))
				}
				gt := cache.NewGroupTable(ws.wfp, []string{"__row"}, keys, []*storage.Column{kc})
				for i, sl := range ws.missing {
					_ = gt.AddState(&cache.CachedState{
						State:         sl.st,
						Vals:          folded[i],
						PositiveInput: sl.positive,
					})
				}
				for j, cs := range ws.companions {
					_ = gt.AddState(&cache.CachedState{State: cs.st, Vals: folded[len(ws.missing)+j]})
				}
				if cnt := gt.NumStates(); cnt > 0 {
					qc.cache.Put(gt)
					stored = cnt
				}
			})
			stsp.SetInt("states", int64(stored))
			stsp.End()
		}
	}

	fsp := qc.sp.Child("finisher")
	outTbl, faults, err := buildWindowOutput(ctx, ws, ws.tbl, frames, vals)
	if err != nil {
		return nil, err
	}
	fsp.SetInt("windows", int64(len(frames)))
	fsp.End()
	s.windowEmits.Add(int64(len(frames)))
	if ws.mode == ModeShare {
		ws.events = append(ws.events, qc.cache.DrainEvents()...)
	}
	res := &Result{
		Table:         outTbl,
		RowsScanned:   rowsScanned,
		Groups:        len(frames),
		FullCacheHit:  ws.fullHit,
		NumericFaults: faults,
		Events:        ws.events,
		Stats:         qc.stats,
	}
	noteNumericFaults(res)
	return res, nil
}

// windowFoldScan is the SUDAF-mode window executor: one chronological
// pass over the table, pushing each missing state's translated value
// F(base(row)) through its two-stacks fold, evicting expired rows, and
// snapshotting Value() at each emission point. Companion states ride
// the same pass. Returns one per-emission vector per slot, ordered
// missing-then-companions.
func (s *Session) windowFoldScan(ctx context.Context, ws *windowPlanState, frames []frame) ([][]float64, error) {
	slots := make([]*slot, 0, len(ws.missing)+len(ws.companions))
	slots = append(slots, ws.missing...)
	slots = append(slots, ws.companions...)
	b := exec.NewTableBinder(ws.tbl)
	valuers := make([]exec.Accessor, len(slots))
	folds := make([]*window.Fold, len(slots))
	outs := make([][]float64, len(slots))
	for i, sl := range slots {
		v, err := exec.StateValuer(sl.st, b)
		if err != nil {
			return nil, err
		}
		valuers[i] = v
		folds[i] = window.New(sl.st, exec.MorselRows)
		outs[i] = make([]float64, len(frames))
	}
	n := ws.tbl.NumRows()
	spec := ws.spec
	e := 0
	for r := 0; r < n; r++ {
		if r%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := range folds {
			folds[i].Push(valuers[i](int32(r)))
		}
		if spec.Sliding && r > spec.N {
			if err := faultinject.Hit(faultinject.PointWindowEvict); err != nil {
				return nil, fmt.Errorf("window evict at row %d: %w", r, err)
			}
			for i := range folds {
				folds[i].Evict()
			}
		}
		emitNow := spec.Sliding || (r+1)%spec.Size() == 0 || r == n-1
		if !emitNow {
			continue
		}
		if err := faultinject.Hit(faultinject.PointWindowEmit); err != nil {
			return nil, fmt.Errorf("window emit %d: %w", e, err)
		}
		for i := range folds {
			outs[i][e] = folds[i].Value()
			if !spec.Sliding {
				folds[i].Reset()
			}
		}
		e++
	}
	s.noteFoldStats(folds)
	return outs, nil
}

// noteFoldStats rolls a scan's fold counters into the session's window
// metrics.
func (s *Session) noteFoldStats(folds []*window.Fold) {
	var evicts, fast, refolds int64
	for _, f := range folds {
		ev, fa, re := f.Stats()
		evicts += ev
		fast += fa
		refolds += re
	}
	s.windowRowsEvicted.Add(evicts)
	s.windowFastFolds.Add(fast)
	s.windowRefolds.Add(refolds)
}

// windowTaskValues is the baseline window executor (shared with
// baseline subscriptions): every frame recomputed from scratch by the
// calls' native tasks, chunked exactly like a cold morselized scan
// whose row 0 is the frame start — which is what pins windowed baseline
// output bit-identical to a cold query over the same row range.
func windowTaskValues(ctx context.Context, reg *exec.TaskRegistry, tbl *storage.Table, frames []frame) ([][]float64, error) {
	b := exec.NewTableBinder(tbl)
	tasks := make([]exec.Task, reg.Len())
	for i := 0; i < reg.Len(); i++ {
		t, err := reg.Spec(i)(b)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	zeros := make([]int32, exec.MorselRows)
	remap := []int32{0}
	vals := make([][]float64, len(tasks))
	for i := range vals {
		vals[i] = make([]float64, len(frames))
	}
	for e, fr := range frames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit(faultinject.PointWindowEmit); err != nil {
			return nil, fmt.Errorf("window emit %d: %w", e, err)
		}
		for ti, task := range tasks {
			mp := task.NewPartial(1)
			for clo := fr.lo; clo < fr.hi; clo += exec.MorselRows {
				chi := clo + exec.MorselRows
				if chi > fr.hi {
					chi = fr.hi
				}
				pc := task.NewPartial(1)
				task.Accumulate(pc, clo, chi, zeros[:chi-clo])
				task.Merge(mp, pc, remap)
			}
			vals[ti][e] = task.Finalize(mp, 1)[0]
		}
	}
	return vals, nil
}

// buildWindowOutput assembles the output table for a sequence of
// emissions: one row per frame. Aggregate placeholders come from the
// value matrix through the plan's finishers; bare column references are
// read at each frame's emit row (its last row) with their storage type
// preserved; mixed numeric expressions evaluate over both. Numeric
// faults follow the session policy exactly like exec.BuildOutput.
func buildWindowOutput(ctx context.Context, ws *windowPlanState, tbl *storage.Table, frames []frame, vals [][]float64) (*storage.Table, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := ws.out
	numericFaults := 0
	phVals := make([][]float64, len(out.Finishers))
	phNames := make([]string, len(out.Finishers))
	phIdx := map[string]int{}
	for p, fin := range out.Finishers {
		col := make([]float64, len(frames))
		for e := range frames {
			if e%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			v := fin(vals, e)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if out.Numeric == exec.NumericStrict {
					label := exec.Placeholder(p)
					if p < len(out.Labels) {
						label = out.Labels[p]
					}
					return nil, 0, fmt.Errorf("aggregate %s: %w (%v) in window %d (strict numeric policy)",
						label, errs.ErrNumericFault, v, e)
				}
				numericFaults++
			}
			col[e] = v
		}
		phVals[p] = col
		phNames[p] = exec.Placeholder(p)
		phIdx[phNames[p]] = p
	}

	res := storage.NewTable("result")
	for pos, item := range out.Items {
		name := item.OutputName(pos)
		if v, ok := item.Expr.(*expr.Var); ok {
			// Bare placeholder: the precomputed aggregate column.
			if p, isPh := phIdx[v.Name]; isPh {
				col := storage.NewColumn(name, storage.KindFloat)
				col.F = append(col.F, phVals[p]...)
				if err := res.AddColumn(col); err != nil {
					return nil, 0, err
				}
				continue
			}
			// Bare table column: typed passthrough at each emit row.
			if src := tbl.Col(v.Name); src != nil {
				nc := storage.NewColumn(name, src.Kind)
				for _, fr := range frames {
					switch src.Kind {
					case storage.KindFloat:
						nc.AppendFloat(src.F[fr.hi-1])
					case storage.KindInt:
						nc.AppendInt(src.I[fr.hi-1])
					default:
						nc.AppendString(src.StringAt(fr.hi - 1))
					}
				}
				if err := res.AddColumn(nc); err != nil {
					return nil, 0, err
				}
				continue
			}
			return nil, 0, fmt.Errorf("select item %q: unknown column", v.Name)
		}
		// Mixed expression over placeholders and numeric columns read at
		// the emit row.
		refs := map[string]*storage.Column{}
		var walkErr error
		expr.Walk(item.Expr, func(nd expr.Node) bool {
			v, ok := nd.(*expr.Var)
			if !ok {
				return true
			}
			if _, isPh := phIdx[v.Name]; isPh {
				return true
			}
			if _, seen := refs[v.Name]; seen {
				return true
			}
			c := tbl.Col(v.Name)
			if c == nil {
				walkErr = fmt.Errorf("select item %q: unknown column %q", name, v.Name)
				return false
			}
			refs[v.Name] = c
			return true
		})
		if walkErr != nil {
			return nil, 0, walkErr
		}
		col := storage.NewColumn(name, storage.KindFloat)
		env := expr.MapEnv{}
		for e, fr := range frames {
			for p, pn := range phNames {
				env[pn] = phVals[p][e]
			}
			for rn, c := range refs {
				env[rn] = c.AsFloat(fr.hi - 1)
			}
			v, err := expr.Eval(item.Expr, env)
			if err != nil {
				return nil, 0, fmt.Errorf("select item %q: %w", name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if out.Numeric == exec.NumericStrict {
					return nil, 0, fmt.Errorf("select item %q: %w (%v) in window %d (strict numeric policy)",
						name, errs.ErrNumericFault, v, e)
				}
				numericFaults++
			}
			col.AppendFloat(v)
		}
		if err := res.AddColumn(col); err != nil {
			return nil, 0, err
		}
	}
	return res, numericFaults, nil
}
