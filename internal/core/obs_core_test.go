package core

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sudaf/internal/obs"
	"sudaf/internal/storage"
)

// TestResultTraceSampling pins the Options.TraceRate contract: rate 1
// attaches a span tree to every Result, rate 0 (the default) attaches
// none.
func TestResultTraceSampling(t *testing.T) {
	traced := NewSession(Options{Workers: 1, TraceRate: 1})
	plain := NewSession(Options{Workers: 1})
	for _, s := range []*Session{traced, plain} {
		tbl := storage.NewTable("sales",
			storage.NewColumn("region", storage.KindInt),
			storage.NewColumn("price", storage.KindFloat))
		for i := 0; i < 64; i++ {
			tbl.Col("region").AppendInt(int64(i % 4))
			tbl.Col("price").AppendFloat(float64(1 + i))
		}
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}

	res, err := plain.Query(explainQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("TraceRate 0 must not attach a trace")
	}

	res, err = traced.Query(explainQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("TraceRate 1 must attach a trace")
	}
	for _, name := range []string{"parse", "plan", "canonicalize", "sharing-lookup", "scan/agg", "cache-store", "finisher"} {
		if res.Trace.Find(name) == nil {
			t.Errorf("trace missing %q span:\n%s", name, res.Trace.Tree())
		}
	}
	if sp := res.Trace.Find("scan/agg"); sp != nil {
		var rows int64 = -1
		for _, a := range sp.Attrs {
			if a.Key == "rows" {
				rows = a.Int
			}
		}
		if rows != 64 {
			t.Errorf("scan/agg rows attr = %d, want 64", rows)
		}
	}
	if !strings.Contains(res.Trace.Tree(), "└─") {
		t.Errorf("Tree() should render a span tree:\n%s", res.Trace.Tree())
	}
	if js, err := res.Trace.JSON(); err != nil || !strings.Contains(js, `"name"`) {
		t.Errorf("JSON() = %q, %v", js, err)
	}

	// Second query on the traced session: an exact-hit run still traces,
	// with the sharing-lookup span but no scan.
	res, err = traced.Query(explainQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Find("sharing-lookup") == nil {
		t.Fatal("cache-hit query should still carry a sharing-lookup span")
	}
}

// TestEventsDrainOrdering pins the documented drain contract for
// degradation events queued on the cache (by Append invalidations or
// other out-of-band sources): they surface on the NEXT share-mode
// query's Result.Events, in FIFO order, exactly once, after the query's
// own events and before the numeric-fault note. Baseline and rewrite
// queries never drain them (those modes do not consult the cache).
func TestEventsDrainOrdering(t *testing.T) {
	s := newTestSession(t, 200, 1)
	s.Cache().AddEvent("ingest: first note")
	s.Cache().AddEvent("ingest: second note")

	// Baseline and rewrite leave the queue untouched.
	for _, mode := range []Mode{ModeBaseline, ModeRewrite} {
		res, err := s.Query(q1, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if strings.Contains(ev, "note") {
				t.Fatalf("%v query drained cache events: %v", mode, res.Events)
			}
		}
	}

	// The next share query drains both, FIFO, before any numeric note.
	res, err := s.Query("SELECT ss_store_sk, gm(ss_sales_price - 12.5) FROM store_sales GROUP BY ss_store_sk", ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	first, second, numeric := -1, -1, -1
	for i, ev := range res.Events {
		switch {
		case strings.Contains(ev, "first note"):
			first = i
		case strings.Contains(ev, "second note"):
			second = i
		case strings.HasPrefix(ev, "numeric:"):
			numeric = i
		}
	}
	if first == -1 || second == -1 || first > second {
		t.Fatalf("events %v: want first note then second note (FIFO)", res.Events)
	}
	if numeric == -1 {
		t.Fatalf("events %v: gm over negative bases should note numeric faults", res.Events)
	}
	if numeric < second {
		t.Fatalf("events %v: numeric note must come after drained ingest events", res.Events)
	}

	// Drained exactly once: a second share query sees a clean slate.
	res, err = s.Query(q1, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if strings.Contains(ev, "note") {
			t.Fatalf("event drained twice: %v", res.Events)
		}
	}
}

// TestAppendEventsReachNextShareQuery pins the end-to-end path the docs
// describe: an Append that invalidates cache entries queues the
// invalidation notes, and the next share-mode query's Result.Events
// carries them in append order.
func TestAppendEventsReachNextShareQuery(t *testing.T) {
	s := newTestSession(t, 300, 1)
	if _, err := s.Query(q1, ModeShare); err != nil {
		t.Fatal(err)
	}
	// Force invalidation rather than migration by stripping maintenance
	// records from every cached entry.
	c := s.stateCache()
	for _, snap := range c.Snapshot() {
		if gt, ok := c.Entry(snap.Fingerprint); ok {
			gt.Maint = nil
		}
	}
	res, err := s.Append(context.Background(), "store_sales", salesDelta(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesInvalidated == 0 {
		t.Fatalf("append invalidated nothing: %+v", res)
	}
	qres, err := s.Query(q1, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	got := -1
	for i, ev := range qres.Events {
		if strings.Contains(ev, "invalidated") {
			got = i
			break
		}
	}
	if got == -1 {
		t.Fatalf("query events %v: want the append invalidation note", qres.Events)
	}
	if qres.Events[got] != res.Events[0] {
		t.Fatalf("drained note %q != queued note %q", qres.Events[got], res.Events[0])
	}
}

// TestTraceOffOverheadGuard is the ≤2% regression guard from the issue:
// with tracing off, the per-query instrumentation must cost ≤2% of a
// kernel-dominated query. Comparative wall-clock runs of the same query
// are too noisy for a 2% threshold on shared hardware (observed ±7%
// between identical binaries), so the guard prices the disabled
// instrumentation directly: it replays the exact off-path sequence a
// query threads — one sampler check, every nil-span call, one histogram
// observation — in a tight loop, and compares that against the measured
// kernel query time. The off path is nanoseconds per query; if anyone
// makes it allocate or do real work, this fails loudly.
func TestTraceOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	const rows = 1_000_000
	s := NewSession(Options{Workers: 1, TraceRate: 0})
	tbl := storage.NewTable("big",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	gc, vc := tbl.Col("g"), tbl.Col("v")
	for i := 0; i < rows; i++ {
		gc.AppendInt(int64(i & 7))
		vc.AppendFloat(float64(1 + i%97))
	}
	if err := s.Register(tbl); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT g, gm(v), avg(v), sum(v*v) FROM big GROUP BY g"
	run := func() time.Duration {
		start := time.Now()
		// Rewrite mode recomputes every time: no cache interference.
		if _, err := s.Query(q, ModeRewrite); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run() // warm
	queryTime := run()
	for i := 0; i < 4; i++ {
		if d := run(); d < queryTime {
			queryTime = d
		}
	}

	// Price the off-path instrumentation: the sequence below is a strict
	// superset of the obs calls one non-sampled query makes (sampler
	// check, nil trace/span threading through every phase, latency
	// histogram observation).
	const iters = 200_000
	sampler := obs.NewSampler(0)
	hist := obs.NewRegistry().Histogram("guard_seconds", "", "", nil)
	start := time.Now()
	for i := 0; i < iters; i++ {
		var tr *obs.Trace
		if sampler.Sample() {
			tr = obs.NewTrace("query")
		}
		root := tr.Root()
		root.SetStr("mode", "sudaf-noshare")
		for _, name := range []string{"parse", "plan", "canonicalize", "sharing-lookup", "view-rewrite", "scan/agg", "cache-store", "finisher"} {
			sp := root.Child(name)
			sp.SetInt("rows", int64(i))
			sp.SetInt("groups", 8)
			sp.SetStr("kernels", "prod,count,sum")
			sp.End()
		}
		tr.Finish()
		hist.Observe(float64(i) * 1e-9)
	}
	perQuery := time.Since(start) / iters

	limit := queryTime / 50 // 2%
	if perQuery > limit {
		t.Errorf("trace-off instrumentation costs %v per query, above 2%% of the %v kernel query", perQuery, queryTime)
	}
	t.Logf("kernel query %v; trace-off instrumentation %v per query (%.4f%%)",
		queryTime, perQuery, 100*float64(perQuery)/float64(queryTime))
}

// TestSessionMetricsEndpoint pins the export contract: after a query
// and an append, the session's HTTP endpoint serves every engine, cache
// and ingestion family in Prometheus text format.
func TestSessionMetricsEndpoint(t *testing.T) {
	s := newTestSession(t, 200, 1)
	if _, err := s.Query(q1, ModeShare); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), "store_sales", salesDelta(7)); err != nil {
		t.Fatal(err)
	}
	srv, err := s.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want Prometheus text", ct)
	}
	text := string(body)
	for _, fam := range []string{
		"sudaf_queries_started_total", "sudaf_queries_completed_total",
		"sudaf_queries_failed_total", "sudaf_queries_queued_total",
		"sudaf_rows_scanned_total", "sudaf_query_seconds_total",
		"sudaf_queue_wait_seconds_total", "sudaf_query_duration_seconds_bucket",
		"sudaf_cache_lookups_total", `sudaf_cache_hits_total{kind="exact"}`,
		`sudaf_cache_hits_total{kind="shared"}`, `sudaf_cache_hits_total{kind="sign"}`,
		"sudaf_cache_misses_total", "sudaf_cache_evictions_total",
		"sudaf_cache_corruptions_total",
		"sudaf_ingest_appends_total", "sudaf_ingest_rows_total",
		"sudaf_ingest_entries_migrated_total", "sudaf_ingest_states_maintained_total",
		"sudaf_ingest_entries_invalidated_total",
		"sudaf_ingest_views_maintained_total", "sudaf_ingest_views_invalidated_total",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
	// The counters carry real values: at least one query started and one
	// append ingested rows.
	if !strings.Contains(text, "sudaf_queries_started_total 1") {
		t.Errorf("queries_started not 1:\n%s", grepLines(text, "sudaf_queries_started"))
	}
	if !strings.Contains(text, "sudaf_ingest_rows_total 7") {
		t.Errorf("ingest_rows not 7:\n%s", grepLines(text, "sudaf_ingest_rows"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// BenchmarkQueryTraceOff/On measure the same kernel-dominated query with
// tracing disabled and enabled; compare with benchstat. EXPERIMENTS.md
// records representative numbers.
func BenchmarkQueryTraceOff(b *testing.B) { benchQueryTrace(b, 0) }
func BenchmarkQueryTraceOn(b *testing.B)  { benchQueryTrace(b, 1) }

func benchQueryTrace(b *testing.B, rate float64) {
	s := NewSession(Options{TraceRate: rate})
	tbl := storage.NewTable("big",
		storage.NewColumn("g", storage.KindInt),
		storage.NewColumn("v", storage.KindFloat))
	for i := 0; i < 500_000; i++ {
		tbl.Col("g").AppendInt(int64(i & 7))
		tbl.Col("v").AppendFloat(float64(1 + i%97))
	}
	if err := s.Register(tbl); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("SELECT g, gm(v), avg(v) FROM big GROUP BY g", ModeRewrite); err != nil {
			b.Fatal(err)
		}
	}
}
