package core

import (
	"fmt"
	"strings"

	"sudaf/internal/canonical"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/sqlparse"
)

// RewriteSQL renders the SUDAF rewriting of a query as SQL text — the
// RQ1/RQ2 form of the paper's Section 2: a derived table computing the
// partial aggregates with built-in functions, and an outer projection
// applying the terminating functions. The output is what SUDAF would
// send to an underlying system like PostgreSQL or Spark SQL.
func (s *Session) RewriteSQL(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	for _, ref := range stmt.From {
		if ref.Sub != nil {
			return "", fmt.Errorf("RewriteSQL does not support subqueries")
		}
	}
	if !s.hasAggregates(stmt) {
		return "", fmt.Errorf("query has no aggregates to rewrite")
	}

	// Decompose every aggregate call, assigning state columns s1..sk.
	var calls []*expr.Call
	items := make([]sqlparse.SelectItem, len(stmt.Select))
	for i, item := range stmt.Select {
		items[i] = sqlparse.SelectItem{
			Expr:  exec.ExtractAggCalls(item.Expr, s.isAgg, &calls),
			Alias: item.Alias,
		}
	}
	stateIdx := map[string]int{}
	var states []canonical.State
	callT := make([]expr.Node, len(calls))
	for ci, call := range calls {
		form, err := s.formFor(call.Name)
		if err != nil {
			return "", err
		}
		if len(call.Args) != len(form.Params) {
			return "", fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		// Remap the form's local s-variables to global state columns.
		remap := map[string]expr.Node{}
		for j, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			key := bs.Key()
			idx, ok := stateIdx[key]
			if !ok {
				idx = len(states)
				stateIdx[key] = idx
				states = append(states, bs)
			}
			remap[canonical.StateVar(j)] = &expr.Var{Name: canonical.StateVar(idx)}
		}
		if form.HardT != nil {
			callT[ci] = &expr.Call{Name: form.Name, Args: stateVarList(form, remap)}
		} else {
			callT[ci] = expr.Simplify(expr.Substitute(form.T, remap))
		}
	}

	// Inner query: group-by columns + states as built-in aggregates.
	var inner strings.Builder
	inner.WriteString("SELECT ")
	var innerItems []string
	innerItems = append(innerItems, stmt.GroupBy...)
	for i, st := range states {
		innerItems = append(innerItems, stateSQL(st)+" "+canonical.StateVar(i))
	}
	inner.WriteString(strings.Join(innerItems, ", "))
	inner.WriteString("\nFROM ")
	var froms []string
	for _, ref := range stmt.From {
		froms = append(froms, ref.Name)
	}
	inner.WriteString(strings.Join(froms, ", "))
	if stmt.Where != nil {
		inner.WriteString("\nWHERE " + sqlparse.PredString(stmt.Where))
	}
	if len(stmt.GroupBy) > 0 {
		inner.WriteString("\nGROUP BY " + strings.Join(stmt.GroupBy, ", "))
	}

	// Outer query: original projections with aggregate calls replaced by
	// terminating expressions over the state columns.
	var outer strings.Builder
	outer.WriteString("SELECT ")
	var outItems []string
	for pos, item := range items {
		e := item.Expr
		for ci := range calls {
			e = expr.Substitute(e, map[string]expr.Node{
				fmt.Sprintf("__agg%d", ci): callT[ci],
			})
		}
		rendered := expr.Simplify(e).String()
		name := item.Alias
		if name == "" {
			name = stmt.Select[pos].OutputName(pos)
		}
		if v, ok := e.(*expr.Var); ok && v.Name == name {
			outItems = append(outItems, name)
		} else {
			outItems = append(outItems, rendered+" "+name)
		}
	}
	outer.WriteString(strings.Join(outItems, ", "))
	outer.WriteString("\nFROM (" + inner.String() + ") TEMP")
	if len(stmt.OrderBy) > 0 {
		var obs []string
		for _, o := range stmt.OrderBy {
			s := o.Col
			if o.Desc {
				s += " DESC"
			}
			obs = append(obs, s)
		}
		outer.WriteString("\nORDER BY " + strings.Join(obs, ", "))
	}
	if stmt.Limit >= 0 {
		fmt.Fprintf(&outer, "\nLIMIT %d", stmt.Limit)
	}
	return outer.String() + ";", nil
}

// stateSQL renders a state as a built-in SQL aggregate over its base.
func stateSQL(st canonical.State) string {
	switch st.Op {
	case canonical.OpCount:
		return "count(*)"
	case canonical.OpMin:
		return "min(" + st.Base.String() + ")"
	case canonical.OpMax:
		return "max(" + st.Base.String() + ")"
	case canonical.OpProd:
		// Standard SQL has no product aggregate; this is the exp/ln/sum
		// spelling SUDAF uses against engines without one.
		return "exp(sum(ln(" + st.F.NormalizeReal().Render(st.Base.String()) + ")))"
	default:
		return "sum(" + st.F.NormalizeReal().Render(st.Base.String()) + ")"
	}
}

// stateVarList renders the remapped state variables of a hardcoded-T
// form, for display purposes.
func stateVarList(form *canonical.Form, remap map[string]expr.Node) []expr.Node {
	out := make([]expr.Node, len(form.States))
	for j := range form.States {
		out[j] = remap[canonical.StateVar(j)]
	}
	return out
}
