// Session lifecycle: graceful drain. Close flips the session into the
// closed state and waits for in-flight work to finish, so a serving
// layer can stop a node without abandoning accepted queries or leaking
// worker tokens. The contract, relied on by internal/server:
//
//   - Work started before Close (queries, streaming-cursor queries,
//     appends, materializations) runs to completion; Close waits for it
//     (bounded by the caller's context).
//   - Work arriving after Close begins fails fast with a typed
//     ErrEngineClosed.
//   - Callers queued for an admission slot when Close begins resolve
//     deterministically: they either win a slot (their query is treated
//     as accepted and runs), observe the close (ErrEngineClosed), or
//     observe their own context (ErrCanceled) — never a hang.
//   - The state cache is left intact: Close drains execution, it does
//     not destroy state, so a new serving front-end over the same
//     process image (or a restart that re-opens the session's tables)
//     still benefits from warm sharing.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sudaf/internal/errs"
)

// lifecycle tracks the session's open/closed state and its in-flight
// operations. The RWMutex makes the pair {closed check, inflight add}
// in beginOp atomic with respect to Close's state flip, so Close never
// misses an operation and never waits for one it rejected.
type lifecycle struct {
	mu       sync.RWMutex
	closed   bool
	inflight sync.WaitGroup
	// ch is closed when Close begins; admission waiters select on it so
	// a queued query resolves instead of waiting for a slot that may
	// never free.
	ch chan struct{}
	// closeStart is when the first Close began (UnixNano); drainNanos is
	// set once, by whichever Close call observes the drain complete, to
	// the elapsed time since closeStart.
	closeStart atomic.Int64
	drainNanos atomic.Int64
}

// beginOp admits one operation (query, append, materialization). It
// fails with ErrEngineClosed once Close has begun; otherwise the
// operation is tracked until the paired endOp.
func (s *Session) beginOp(what string) error {
	s.life.mu.RLock()
	defer s.life.mu.RUnlock()
	if s.life.closed {
		return fmt.Errorf("%w: %s rejected", errs.ErrEngineClosed, what)
	}
	s.life.inflight.Add(1)
	return nil
}

// endOp retires an operation admitted by beginOp.
func (s *Session) endOp() { s.life.inflight.Done() }

// closedCh returns the channel closed when Close begins (admission
// waiters select on it).
func (s *Session) closedCh() <-chan struct{} { return s.life.ch }

// Closed reports whether Close has begun.
func (s *Session) Closed() bool {
	s.life.mu.RLock()
	defer s.life.mu.RUnlock()
	return s.life.closed
}

// DrainDuration returns how long the completed drain took (0 until the
// first Close finishes waiting). Exported to the metrics registry as
// sudaf_engine_drain_seconds.
func (s *Session) DrainDuration() time.Duration {
	return time.Duration(s.life.drainNanos.Load())
}

// Close stops the session accepting work and drains it: new operations
// fail with ErrEngineClosed, queued admission waiters resolve, and Close
// waits until every in-flight query, streaming-cursor query, append and
// materialization has finished — or ctx expires, in which case Close
// returns the context error (wrapped) while the stragglers keep
// honoring their own contexts and deadlines.
//
// Close is idempotent and safe to call from several goroutines: every
// call waits for the drain. It never interrupts admitted work — pair it
// with per-query contexts or QueryTimeout when a hard stop is needed.
func (s *Session) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.life.mu.Lock()
	first := !s.life.closed
	s.life.closed = true
	s.life.mu.Unlock()
	if first {
		s.life.closeStart.Store(time.Now().UnixNano())
		close(s.life.ch)
	}
	done := make(chan struct{})
	go func() {
		// This goroutine outlives an expired ctx only until the last
		// in-flight operation retires — each one is bounded by its own
		// context/timeout, so it cannot leak indefinitely.
		s.life.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Whichever call sees the drain finish stamps its duration,
		// measured from when the close began.
		s.life.drainNanos.CompareAndSwap(0,
			time.Now().UnixNano()-s.life.closeStart.Load())
		// Continuous subscriptions are long-lived, not in-flight ops, so
		// the drain above does not cover them: shut them down after it
		// (idempotent — racing closers and user Close calls are fine).
		s.closeSubscriptions()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("engine close: drain incomplete: %w", ctx.Err())
	}
}
