package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/sharing"
	"sudaf/internal/sqlparse"
)

// Batch state dispositions, as planned by planBatch and reported by
// BatchExplain.
const (
	// dispComputed: the state is computed by the group's fused scan.
	dispComputed = "computed"
	// dispFused: an identical state was already planned by an earlier
	// batch member; the fused scan computes it once for both.
	dispFused = "batch:fused"
	// dispDerived: Theorem 4.1 unifies the state with another in-flight
	// batch state — at replay it derives from the earlier member's
	// stored state instead of being scanned for.
	dispDerived = "batch:derived"
	// dispCache* : the pre-batch cache already serves the state.
	dispCacheExact  = "cache:exact"
	dispCacheShared = "cache:shared"
	dispCacheSign   = "cache:sign"
)

// batchStateInfo is the planning provenance of one member state.
type batchStateInfo struct {
	// Key is the canonical state key.
	Key string
	// Disposition is one of the disp* constants.
	Disposition string
	// Via is the serving state's key (cache hits and batch derivations).
	Via string
	// Rewrite is the scalar rewriting r with state = r(via), rendered
	// over s (sharing-based dispositions only).
	Rewrite string
}

// batchMember is one query of a batch as the planner sees it.
type batchMember struct {
	index int
	stmt  *sqlparse.Stmt
	// solo members (subqueries, non-aggregate statements) replay
	// through the ordinary pipeline without a fused-scan provider.
	solo    bool
	soloWhy string
	// group indexes batchPlan.groups; -1 for solo members.
	group  int
	states []batchStateInfo
}

// batchCand is a state planned for computation in a group's fused scan —
// the candidate pool for pairwise Theorem 4.1 unification among the
// in-flight batch.
type batchCand struct {
	st       canonical.State
	positive bool
	owner    int // batch index of the member that first planned it
}

// batchGroup collects the batch members whose data parts share one
// fingerprint: they are served by a single fused scan running the union
// of their surviving tasks.
type batchGroup struct {
	fp      string
	dp      *exec.DataPlan
	reg     *exec.TaskRegistry // fused-scan task union
	members []int
	compute []batchCand
	// gr is the fused scan's result; rowsGiven marks that its row/kernel
	// cost was already attributed to one member's Result.
	gr        *exec.GroupResult
	rowsGiven bool
}

// batchPlan is the analyzed shape of a whole batch.
type batchPlan struct {
	members []*batchMember
	groups  []*batchGroup
}

// planBatch analyzes a batch: canonicalizes every query, groups them by
// data fingerprint, and builds each group's fused-scan task union —
// dropping states the pre-batch cache already serves (probed read-only)
// and states Theorem 4.1 derives from another in-flight batch state.
// It has no side effects on the cache, so BatchExplain shares it.
func (s *Session) planBatch(qc *queryCtx, stmts []*sqlparse.Stmt, mode Mode) (*batchPlan, error) {
	plan := &batchPlan{}
	groupIdx := map[string]int{}
	for i, stmt := range stmts {
		m := &batchMember{index: i, stmt: stmt, group: -1}
		plan.members = append(plan.members, m)
		if err := s.checkAggregates(stmt); err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, err)
		}
		for _, ref := range stmt.From {
			if ref.Sub != nil {
				m.solo, m.soloWhy = true, "subqueries execute standalone"
			}
		}
		if !m.solo && !s.hasAggregates(stmt) && len(stmt.GroupBy) == 0 {
			m.solo, m.soloWhy = true, "non-aggregate statement"
		}
		if m.solo {
			continue
		}
		dp, err := s.eng.PrepareDataIn(qc.cat, stmt)
		if err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, err)
		}
		gi, ok := groupIdx[dp.Fingerprint]
		if !ok {
			gi = len(plan.groups)
			groupIdx[dp.Fingerprint] = gi
			plan.groups = append(plan.groups, &batchGroup{
				fp: dp.Fingerprint, dp: dp, reg: exec.NewTaskRegistry(),
			})
		}
		g := plan.groups[gi]
		m.group = gi
		g.members = append(g.members, i)
		if err := s.planMemberStates(qc, m, g, mode); err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return plan, nil
}

// planMemberStates folds one member's aggregation needs into its group's
// fused-scan union. The planner only decides what the fused scan
// computes; replay re-derives every sharing decision against the live
// cache, so a planning misprediction costs a fallback scan, never a
// wrong answer.
func (s *Session) planMemberStates(qc *queryCtx, m *batchMember, g *batchGroup, mode Mode) error {
	var calls []*expr.Call
	for _, item := range m.stmt.Select {
		exec.ExtractAggCalls(item.Expr, s.isAgg, &calls)
	}

	if mode == ModeBaseline {
		// Baseline tasks (builtin/naive/native) are keyed by call text:
		// merge each member's task set into the union, key-deduplicated.
		scratch := exec.NewTaskRegistry()
		for _, call := range calls {
			if _, err := s.baselineFinisher(call, scratch); err != nil {
				return err
			}
		}
		for i, key := range scratch.Keys() {
			if g.reg.Has(key) {
				m.states = append(m.states, batchStateInfo{Key: key, Disposition: dispFused})
				continue
			}
			g.reg.Add(key, scratch.Spec(i))
			m.states = append(m.states, batchStateInfo{Key: key, Disposition: dispComputed})
		}
		return nil
	}

	// SUDAF modes: decompose calls into bound states (the member-local
	// dedup mirrors the pipeline's slot dedup).
	seen := map[string]bool{}
	for _, call := range calls {
		form, err := s.formFor(call.Name)
		if err != nil {
			return err
		}
		if len(call.Args) != len(form.Params) {
			return fmt.Errorf("%s takes %d argument(s), got %d", call.Name, len(form.Params), len(call.Args))
		}
		bind := map[string]expr.Node{}
		for i, p := range form.Params {
			bind[p] = call.Args[i]
		}
		for _, st := range form.States {
			bs := st
			if st.Op != canonical.OpCount {
				bs.Base = expr.Simplify(expr.Substitute(st.Base, bind))
			}
			key := bs.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			positive := basePositive(qc.cat, bs.Base, g.dp.Tables())
			m.states = append(m.states, s.planOneState(qc, g, m.index, bs, positive, mode))
		}
	}
	return nil
}

// planOneState decides how one bound state is served: by the pre-batch
// cache, by an identical in-flight state, by Theorem 4.1 derivation from
// an in-flight state, or by computing it in the fused scan.
func (s *Session) planOneState(qc *queryCtx, g *batchGroup, owner int, bs canonical.State, positive bool, mode Mode) batchStateInfo {
	key := bs.Key()
	if mode == ModeShare {
		// Read-only probe against the pre-batch cache: states it already
		// serves are left to the replay's ordinary cache lookup.
		if pr := qc.cache.Probe(g.fp, bs, positive); pr.Kind != cache.HitNone {
			disp := dispCacheExact
			switch pr.Kind {
			case cache.HitShared:
				disp = dispCacheShared
			case cache.HitSign:
				disp = dispCacheSign
			}
			return batchStateInfo{Key: key, Disposition: disp, Via: pr.Matched, Rewrite: pr.Rewrite}
		}
	}
	if g.reg.Has(key) {
		// An earlier member plans the identical state: one task serves
		// both (in share mode the replay turns this into an exact cache
		// hit once the earlier member stores it).
		return batchStateInfo{Key: key, Disposition: dispFused}
	}
	if mode == ModeShare {
		// Pairwise Theorem 4.1 unification among the in-flight batch:
		// if an already-planned state subsumes this one, skip its task —
		// the replay derives it from the earlier member's stored state
		// exactly as it would from any cached state.
		for _, cand := range g.compute {
			if d, ok := sharing.ShareDetail(bs, cand.st, positive || cand.positive); ok {
				return batchStateInfo{
					Key: key, Disposition: dispDerived,
					Via: cand.st.Key(), Rewrite: d.R.Render("s"),
				}
			}
		}
	}
	addStateTask(g.reg, bs, key)
	g.compute = append(g.compute, batchCand{st: bs, positive: positive, owner: owner})
	if mode == ModeShare && !positive && needsSignSplit(bs) {
		lnAbs, sgnProd := cache.SignSplitStates(bs.Base)
		for _, comp := range []canonical.State{lnAbs, sgnProd} {
			if !g.reg.Has(comp.Key()) {
				addStateTask(g.reg, comp, comp.Key())
				g.compute = append(g.compute, batchCand{st: comp, owner: owner})
			}
		}
	}
	return batchStateInfo{Key: key, Disposition: dispComputed}
}

// provider builds the scanProvider the batch's replays consume. It
// serves a replayed query's task registry from its group's fused scan
// when — and only when — every requested task key was computed there;
// anything else (view-rewritten plans, planning mispredictions) falls
// back to a real scan in the replay. The scan's row/kernel cost is
// attributed to the first member that consumes it.
func (p *batchPlan) provider() scanProvider {
	byFp := map[string]*batchGroup{}
	for _, g := range p.groups {
		if g.gr != nil {
			byFp[g.fp] = g
		}
	}
	return func(dp *exec.DataPlan, reg *exec.TaskRegistry) (*exec.GroupResult, bool) {
		g, ok := byFp[dp.Fingerprint]
		if !ok {
			return nil, false
		}
		src := g.gr
		vals := make([][]float64, reg.Len())
		for i, key := range reg.Keys() {
			j, ok := g.reg.Index(key)
			if !ok {
				return nil, false
			}
			vals[i] = src.Values[j]
		}
		// Fresh GroupResult per consumer: members append cached arrays to
		// Values during assembly, so the outer slice must not be shared.
		// The group structure and value arrays are shared read-only —
		// exactly like cached arrays are.
		out := &exec.GroupResult{
			NumGroups:  src.NumGroups,
			Keys:       src.Keys,
			KeyNames:   src.KeyNames,
			KeyColumns: src.KeyColumns,
			Values:     vals,
		}
		if !g.rowsGiven {
			out.Rows = src.Rows
			out.Kernels = src.Kernels
			g.rowsGiven = true
		}
		return out, true
	}
}

// QueryBatch runs a batch of queries as one submission, sharing work
// across them: all queries are canonicalized together, their aggregation
// states unified pairwise via Theorem 4.1 sharing among the in-flight
// batch (not just against the cache), the surviving states grouped by
// data fingerprint, and one fused scan per group computes every group's
// union — so N overlapping queries cost far fewer than N scans, and in
// share mode the state cache warms once per batch instead of once per
// query.
//
// Results are positionally aligned with reqs and bit-identical to
// running the same statements sequentially in the same mode: each query
// replays through the ordinary analyzer pipeline — with real cache
// lookups and stores, in batch order — consuming the fused scans through
// a provider; the morsel engine's deterministic merge makes provided
// values indistinguishable from a private scan. The whole batch runs
// against one catalog snapshot (one version of the data) and occupies
// one admission slot. mode governs every query in the batch;
// per-Request modes are ignored. The first failing query aborts the
// batch — it's all results or one error. Batch queries are not trace
// sampled; per-query Stats (wall time, cache hits, rows) are still
// recorded, with the fused scan's rows attributed to the first query
// that consumes it.
func (s *Session) QueryBatch(ctx context.Context, reqs []Request, mode Mode) (results []*Result, err error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, queued, release, err := s.admitted(ctx, "query")
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() {
		if r := recover(); r != nil {
			results = nil
			err = fmt.Errorf("batch panicked (recovered): %v", r)
		}
		if err != nil && !errors.Is(err, errs.ErrCanceled) &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			err = fmt.Errorf("%w: %w", errs.ErrCanceled, err)
		}
	}()

	stmts := make([]*sqlparse.Stmt, len(reqs))
	for i, req := range reqs {
		stmt, perr := sqlparse.Parse(req.SQL)
		if perr != nil {
			return nil, fmt.Errorf("batch query %d: %w: %w", i, errs.ErrParse, perr)
		}
		stmts[i] = stmt
	}

	// One snapshot pair for planning, fused scans and every replay: the
	// whole batch sees one version of every table and one cache, so
	// concurrent appends never split a batch across data versions.
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache()}
	plan, err := s.planBatch(qc, stmts, mode)
	if err != nil {
		return nil, err
	}

	// Run the fused scans: one pass per fingerprint group computes the
	// group's entire task union. On a sharded session, SUDAF-mode groups
	// scatter-gather instead — g.compute is index-aligned with the task
	// registry, so the merged partials slot straight into g.gr.
	for _, g := range plan.groups {
		if g.reg.Len() == 0 {
			continue
		}
		if mode != ModeBaseline && s.shards != nil && len(g.compute) == g.reg.Len() {
			states := make([]canonical.State, len(g.compute))
			for i, cand := range g.compute {
				states[i] = cand.st
			}
			gr, ok, serr := s.scatter(ctx, qc, stmts[g.members[0]], g.dp, states, mode == ModeShare)
			if serr != nil {
				return nil, serr
			}
			if ok {
				g.gr = gr
				continue
			}
		}
		gr, rerr := s.eng.RunSpecs(ctx, g.dp, g.reg)
		if rerr != nil {
			return nil, rerr
		}
		g.gr = gr
	}

	// Sequential replay: each query runs through the unchanged pipeline
	// against the shared snapshots, with the provider standing in for
	// its scan. Cache lookups and stores happen here, in batch order —
	// the cache evolves exactly as under sequential execution.
	provider := plan.provider()
	results = make([]*Result, len(reqs))
	for i, m := range plan.members {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rqc := &queryCtx{cat: qc.cat, cache: qc.cache}
		if !m.solo {
			rqc.provide = provider
		}
		start := time.Now()
		s.queriesStarted.Add(1)
		res, rerr := s.runStmt(ctx, rqc, m.stmt, mode, 0)
		elapsed := time.Since(start)
		s.queryNanos.Add(int64(elapsed))
		s.queryHist.Observe(elapsed.Seconds())
		if rerr != nil {
			s.queriesFailed.Add(1)
			return nil, fmt.Errorf("batch query %d: %w", i, rerr)
		}
		s.queriesCompleted.Add(1)
		s.rowsScanned.Add(int64(res.RowsScanned))
		res.Stats.WallTime = elapsed
		res.Stats.QueueWait = queued
		res.Stats.RowsScanned = res.RowsScanned
		results[i] = res
	}
	return results, nil
}
