package core

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sudaf/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// epochRE strips table epochs from EXPLAIN output before golden
// comparison: epochs come from a process-global counter, so their
// absolute values depend on which tests ran earlier in the process.
var epochRE = regexp.MustCompile(`@\d+`)

// explainSession builds a session over a small deterministic table so
// the EXPLAIN golden files are stable: two regions, strictly positive
// prices (positivity widens sharing and is part of the provenance).
func explainSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(Options{Workers: 1})
	sales := storage.NewTable("sales",
		storage.NewColumn("region", storage.KindInt),
		storage.NewColumn("price", storage.KindFloat))
	prices := []float64{2, 3, 4, 5, 2.5, 3.5, 4.5, 5.5}
	for i, p := range prices {
		sales.Col("region").AppendInt(int64(i % 2))
		sales.Col("price").AppendFloat(p)
	}
	if err := s.Register(sales); err != nil {
		t.Fatal(err)
	}
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	got = epochRE.ReplaceAllString(got, "@N")
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output diverged from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

const explainQ = "SELECT region, gm(price) FROM sales GROUP BY region"

func TestExplainGoldenBaseline(t *testing.T) {
	s := explainSession(t)
	ex, err := s.ExplainQuery(explainQ, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_baseline.golden", ex.String())
}

func TestExplainGoldenRewrite(t *testing.T) {
	s := explainSession(t)
	ex, err := s.ExplainQuery(explainQ, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_rewrite.golden", ex.String())
}

func TestExplainGoldenShareMiss(t *testing.T) {
	s := explainSession(t)
	ex, err := s.ExplainQuery(explainQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_share_miss.golden", ex.String())
}

func TestExplainGoldenShareExactHit(t *testing.T) {
	s := explainSession(t)
	if _, err := s.Query(explainQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	ex, err := s.ExplainQuery(explainQ, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_share_exact.golden", ex.String())
}

func TestExplainGoldenShareSharedHit(t *testing.T) {
	s := explainSession(t)
	// lnprod's state Σ ln(x) shares gm's cached Π x via the Theorem 4.1
	// case 2.2 rewriting r(s) = ln(s) — the provenance the golden pins.
	if err := s.DefineUDAF("lnprod", []string{"x"}, "sum(ln(x))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(explainQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	ex, err := s.ExplainQuery("SELECT region, lnprod(price) FROM sales GROUP BY region", ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_share_shared.golden", ex.String())
}

// TestExplainDoesNotMutate pins the read-only contract: EXPLAIN in share
// mode probes the cache without touching stats, the LRU, or the entry's
// state set.
func TestExplainDoesNotMutate(t *testing.T) {
	s := explainSession(t)
	if err := s.DefineUDAF("lnprod", []string{"x"}, "sum(ln(x))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(explainQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats()
	gt, ok := s.Cache().Entry(fingerprintOf(t, s, explainQ))
	if !ok {
		t.Fatal("no cache entry after share-mode query")
	}
	statesBefore := strings.Join(gt.StateKeys(), ";")
	for i := 0; i < 3; i++ {
		if _, err := s.ExplainQuery("SELECT region, lnprod(price) FROM sales GROUP BY region", ModeShare); err != nil {
			t.Fatal(err)
		}
	}
	if after := s.CacheStats(); after != before {
		t.Errorf("EXPLAIN mutated cache stats: before %+v, after %+v", before, after)
	}
	if statesAfter := strings.Join(gt.StateKeys(), ";"); statesAfter != statesBefore {
		t.Errorf("EXPLAIN materialized derived states: before %q, after %q", statesBefore, statesAfter)
	}
}

// TestExplainSharedHitFields asserts the structured provenance a share-
// mode EXPLAIN must carry on a shared hit: the matched cached state, the
// scalar rewriting, and the (empty = strong) condition list.
func TestExplainSharedHitFields(t *testing.T) {
	s := explainSession(t)
	if err := s.DefineUDAF("lnprod", []string{"x"}, "sum(ln(x))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(explainQ, ModeShare); err != nil {
		t.Fatal(err)
	}
	ex, err := s.ExplainQuery("SELECT region, lnprod(price) FROM sales GROUP BY region", ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	var shared *ExplainState
	for i := range ex.States {
		if ex.States[i].Hit == "shared" {
			shared = &ex.States[i]
		}
	}
	if shared == nil {
		t.Fatalf("no shared-hit state in %+v", ex.States)
	}
	if shared.Matched == "" || !strings.Contains(shared.Matched, "prod") {
		t.Errorf("shared hit should name the matched product state, got %q", shared.Matched)
	}
	if shared.Rewrite == "" || !strings.Contains(shared.Rewrite, "ln") {
		t.Errorf("shared hit should carry the ln rewriting, got %q", shared.Rewrite)
	}
	if len(shared.Conditions) != 0 {
		t.Errorf("concrete-state sharing should be unconditional, got %v", shared.Conditions)
	}
	if !shared.PositiveOnly {
		t.Error("Σln ← Πx sharing should be marked positive-only")
	}
}

func fingerprintOf(t *testing.T, s *Session, sql string) string {
	t.Helper()
	ex, err := s.ExplainQuery(sql, ModeRewrite)
	if err != nil {
		t.Fatal(err)
	}
	return ex.Fingerprint
}

// TestExplainWindowProvenance pins the OVER-clause section: the frame
// shape, the window-qualified fingerprint, and — after a share-mode
// windowed run — exact per-state hits probed under that fingerprint
// rather than the plain data fingerprint.
func TestExplainWindowProvenance(t *testing.T) {
	s := explainSession(t)
	const q = "SELECT qm(price) OVER (ROWS 3 PRECEDING) FROM sales"
	ex, err := s.ExplainQuery(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Window
	if w == nil {
		t.Fatal("windowed statement must carry Window provenance")
	}
	if w.Frame != "ROWS 3 PRECEDING" || !w.Sliding || w.Size != 4 || w.Unit != "ROWS" {
		t.Fatalf("window = %+v", w)
	}
	if w.Fingerprint != ex.Fingerprint+"|W[ROWS 3 PRECEDING]" {
		t.Fatalf("window fingerprint = %q", w.Fingerprint)
	}
	out := ex.String()
	if !strings.Contains(out, "window:\n  frame:       ROWS 3 PRECEDING (sliding, size 4 rows)") {
		t.Fatalf("rendered explain missing window section:\n%s", out)
	}
	for _, st := range ex.States {
		if st.Hit != "miss" {
			t.Fatalf("cold window probe: state %s hit=%q, want miss", st.Key, st.Hit)
		}
	}

	// A share-mode windowed run caches per-emission vectors under the
	// window fingerprint; the probe must now see exact hits there.
	if _, err := s.Query(q, ModeShare); err != nil {
		t.Fatal(err)
	}
	ex, err = s.ExplainQuery(q, ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range ex.States {
		if st.Hit != "exact" {
			t.Fatalf("warm window probe: state %s hit=%q, want exact", st.Key, st.Hit)
		}
	}
	// The non-windowed statement still probes the plain fingerprint and
	// must NOT see the window partials.
	plain, err := s.ExplainQuery("SELECT qm(price) FROM sales", ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Window != nil {
		t.Fatal("non-windowed statement must not carry Window provenance")
	}
	for _, st := range plain.States {
		if st.Hit == "exact" {
			t.Fatalf("plain probe leaked window partials: state %s", st.Key)
		}
	}
}
