// Continuous windowed queries: Subscribe registers a windowed statement
// against a table and streams one WindowResult per emission as appends
// land. The delivery contract mirrors the server's event-stream drain
// contract (PR 5):
//
//   - FIFO: notifications are enqueued under ingestMu in append order,
//     so emissions arrive in the order their rows were appended.
//   - Exactly-once: each append enqueues exactly one notification per
//     subscription, the initial snapshot is cut atomically with
//     registration (under ingestMu), and the worker pops each note
//     once — no torn, duplicated or skipped windows even when appends
//     race the subscription start.
//   - Append never blocks: the note queue is unbounded; a slow consumer
//     exerts backpressure only on its own worker (the blocking send on
//     Results), which merely extends how long old table versions stay
//     pinned.
//
// Workers compute over pinned immutable versions (appends publish new
// versions and never mutate old ones), so a racing append can never
// tear a window mid-computation; absolute row indexes stay valid across
// versions because every new version extends the old rows in place.
package core

import (
	"context"
	"fmt"
	"sync"

	"sudaf/internal/errs"
	"sudaf/internal/exec"
	"sudaf/internal/faultinject"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
	"sudaf/internal/window"
)

// WindowResult is one emission batch of a continuous windowed query.
type WindowResult struct {
	// Table holds the emitted rows, shaped exactly like the one-shot
	// windowed query's output (one row per frame in this batch).
	Table *storage.Table
	// Seq numbers result batches contiguously from 1; a gap means a bug.
	Seq int64
	// Epoch is the table version the batch was computed against.
	Epoch int64
	// FirstRow/LastRow bound the absolute base-table rows this batch's
	// frames end at (sliding: the new rows; tumbling: the bucket).
	FirstRow, LastRow int
	// NumericFaults counts NaN/±Inf outputs tolerated under the
	// permissive numeric policy while building this batch.
	NumericFaults int
}

// subNote is one queued append notification: the pinned new table
// version and the absolute row range it added.
type subNote struct {
	tbl    *storage.Table
	lo, hi int
	epoch  int64
}

// Subscription is a live continuous windowed query. Read emissions from
// Results; after the channel closes, Err reports why (nil for a plain
// Close). Close is idempotent and waits for the worker to exit.
type Subscription struct {
	s    *Session
	id   int64
	mode Mode
	spec *sqlparse.WindowSpec
	ws   *windowPlanState

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []subNote
	closed bool
	err    error

	ch   chan *WindowResult
	quit chan struct{} // closed by Close to unblock a pending delivery
	done chan struct{} // closed when the worker has exited

	seq int64
	// Incremental frame state. folds persist across notifications (the
	// whole point of the two-stacks structure); valuers recompile per
	// pinned version. bucketLo/bucketRows track the open ROWS bucket,
	// ticks the live EPOCHS batches (oldest first).
	folds      []*window.Fold
	bucketLo   int
	bucketRows int
	ticks      []frame
	// prev* remember the folds' lifetime counters so each notification
	// adds only its delta to the session metrics.
	prevEvicts, prevFast, prevRefolds int64
}

// Subscribe parses a windowed statement and opens a continuous query
// over its base table in the given mode. The subscription first emits
// the windows already present in the table (the initial snapshot, cut
// atomically against racing appends), then one batch per Append. The
// statement must carry an OVER clause; EPOCHS frames are only legal
// here, where each Append batch is one tick.
func (s *Session) Subscribe(ctx context.Context, sql string, mode Mode) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.beginOp("subscribe"); err != nil {
		return nil, err
	}
	defer s.endOp()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrParse, err)
	}
	if stmt.Window == nil {
		return nil, fmt.Errorf("Subscribe requires an OVER clause (e.g. OVER (ROWS 9 PRECEDING))")
	}
	if err := s.checkAggregates(stmt); err != nil {
		return nil, err
	}

	// Registration and the initial-snapshot cut are atomic with respect
	// to appends: under ingestMu, the catalog snapshot, the queued
	// snapshot note, and the registry insertion all see the same table
	// version, so the first real append notification is exactly the
	// version after the snapshot — no torn or duplicated windows.
	s.ingestMu.Lock()
	qc := &queryCtx{cat: s.cat.Snapshot(), cache: s.stateCache()}
	ws := &windowPlanState{s: s, qc: qc, stmt: stmt, mode: mode, spec: stmt.Window, continuous: true}
	if err := windowPipeline.Run(ctx, ws, nil); err != nil {
		s.ingestMu.Unlock()
		return nil, err
	}
	for i, key := range ws.slotOrder {
		ws.slots[key].finalIdx = i
	}
	sub := &Subscription{
		s:    s,
		mode: mode,
		spec: stmt.Window,
		ws:   ws,
		ch:   make(chan *WindowResult),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	sub.cond = sync.NewCond(&sub.mu)
	if mode != ModeBaseline {
		sub.folds = make([]*window.Fold, len(ws.slotOrder))
		for i, key := range ws.slotOrder {
			sub.folds[i] = window.New(ws.slots[key].st, exec.MorselRows)
		}
	}
	if n := ws.tbl.NumRows(); n > 0 {
		sub.queue = append(sub.queue, subNote{tbl: ws.tbl, lo: 0, hi: n, epoch: ws.tbl.Epoch})
	}
	s.subMu.Lock()
	s.subSeq++
	sub.id = s.subSeq
	if s.subs == nil {
		s.subs = map[int64]*Subscription{}
	}
	s.subs[sub.id] = sub
	s.subMu.Unlock()
	s.ingestMu.Unlock()

	s.windowSubscriptions.Add(1)
	go sub.run()
	return sub, nil
}

// notifySubs enqueues one note per subscription on the appended table.
// Called under ingestMu right after the new version is published, so
// note order across subscriptions equals append order.
func (s *Session) notifySubs(table string, tbl *storage.Table, lo, hi int) {
	s.subMu.Lock()
	targets := make([]*Subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		if sub.ws.tbl.Name == table {
			targets = append(targets, sub)
		}
	}
	s.subMu.Unlock()
	for _, sub := range targets {
		sub.mu.Lock()
		if !sub.closed {
			sub.queue = append(sub.queue, subNote{tbl: tbl, lo: lo, hi: hi, epoch: tbl.Epoch})
			sub.cond.Signal()
		}
		sub.mu.Unlock()
	}
}

// closeSubscriptions shuts every live subscription down; Session.Close
// calls it after the drain (subscription workers are not in-flight
// operations — they are long-lived — so the drain does not cover them).
func (s *Session) closeSubscriptions() {
	s.subMu.Lock()
	subs := make([]*Subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// Results returns the emission stream. It is closed when the
// subscription ends — by Close, session Close, or an internal error
// (see Err). Consuming slowly is safe: it only delays this
// subscription's worker.
func (sub *Subscription) Results() <-chan *WindowResult { return sub.ch }

// Err reports why the stream ended: nil after a plain Close, the
// failure otherwise. Meaningful once Results is closed.
func (sub *Subscription) Err() error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.err
}

// Close ends the subscription and waits for its worker to exit. Safe to
// call multiple times and from multiple goroutines.
func (sub *Subscription) Close() {
	sub.mu.Lock()
	already := sub.closed
	sub.closed = true
	sub.mu.Unlock()
	if !already {
		close(sub.quit)
		sub.cond.Signal()
	}
	<-sub.done
	sub.s.subMu.Lock()
	delete(sub.s.subs, sub.id)
	sub.s.subMu.Unlock()
}

// fail records a terminal error and stops accepting notes; the result
// channel closes when run returns.
func (sub *Subscription) fail(err error) {
	sub.mu.Lock()
	if sub.err == nil {
		sub.err = err
	}
	sub.closed = true
	sub.mu.Unlock()
}

// run is the subscription worker: pop one note, compute its emissions
// over the pinned version, deliver them in order.
func (sub *Subscription) run() {
	defer close(sub.done)
	defer close(sub.ch)
	for {
		sub.mu.Lock()
		for len(sub.queue) == 0 && !sub.closed {
			sub.cond.Wait()
		}
		if sub.closed && len(sub.queue) == 0 || sub.err != nil {
			sub.mu.Unlock()
			return
		}
		if sub.closed {
			// Closed with notes pending: drop them — the consumer asked
			// to stop, not to drain.
			sub.mu.Unlock()
			return
		}
		note := sub.queue[0]
		sub.queue = sub.queue[1:]
		sub.mu.Unlock()

		// A panic anywhere on the compute path fails the subscription
		// cleanly instead of crashing the process (mirrors the query
		// path's submit-level recover).
		results, err := func() (res []*WindowResult, err error) {
			defer func() {
				if r := recover(); r != nil {
					res = nil
					err = fmt.Errorf("subscription panicked (recovered): %v", r)
				}
			}()
			return sub.process(note)
		}()
		for _, r := range results {
			select {
			case sub.ch <- r:
			case <-sub.quit:
				return
			}
		}
		if err != nil {
			sub.fail(err)
			return
		}
	}
}

// process computes the emission batches one note produces.
func (sub *Subscription) process(note subNote) ([]*WindowResult, error) {
	switch {
	case sub.spec.Unit == sqlparse.WindowEpochs:
		return sub.processEpochs(note)
	case sub.spec.Sliding:
		return sub.processRowsSliding(note)
	default:
		return sub.processRowsTumbling(note)
	}
}

// compileValuers rebuilds the per-row state valuers against a pinned
// version (versions share their row prefix, so the persistent folds
// stay consistent with the new accessors).
func (sub *Subscription) compileValuers(tbl *storage.Table) ([]exec.Accessor, error) {
	b := exec.NewTableBinder(tbl)
	valuers := make([]exec.Accessor, len(sub.ws.slotOrder))
	for i, key := range sub.ws.slotOrder {
		v, err := exec.StateValuer(sub.ws.slots[key].st, b)
		if err != nil {
			return nil, err
		}
		valuers[i] = v
	}
	return valuers, nil
}

// emit builds one WindowResult from a batch of frames and its value
// matrix.
func (sub *Subscription) emit(note subNote, frames []frame, vals [][]float64, firstRow, lastRow int) (*WindowResult, error) {
	tbl, faults, err := buildWindowOutput(context.Background(), sub.ws, note.tbl, frames, vals)
	if err != nil {
		return nil, err
	}
	sub.seq++
	sub.s.windowEmits.Add(int64(len(frames)))
	return &WindowResult{
		Table:         tbl,
		Seq:           sub.seq,
		Epoch:         note.epoch,
		FirstRow:      firstRow,
		LastRow:       lastRow,
		NumericFaults: faults,
	}, nil
}

// flushFoldStats adds this notification's fold-counter deltas to the
// session's window metrics.
func (sub *Subscription) flushFoldStats() {
	var ev, fa, re int64
	for _, f := range sub.folds {
		e, a, r := f.Stats()
		ev += e
		fa += a
		re += r
	}
	sub.s.windowRowsEvicted.Add(ev - sub.prevEvicts)
	sub.s.windowFastFolds.Add(fa - sub.prevFast)
	sub.s.windowRefolds.Add(re - sub.prevRefolds)
	sub.prevEvicts, sub.prevFast, sub.prevRefolds = ev, fa, re
}

// processRowsSliding emits one output row per new row — the frame
// ending at it — in a single WindowResult per note.
func (sub *Subscription) processRowsSliding(note subNote) ([]*WindowResult, error) {
	k := note.hi - note.lo
	frames := make([]frame, 0, k)
	for r := note.lo; r < note.hi; r++ {
		lo := r - sub.spec.N
		if lo < 0 {
			lo = 0
		}
		frames = append(frames, frame{lo, r + 1})
	}
	var vals [][]float64
	if sub.mode == ModeBaseline {
		v, err := windowTaskValues(context.Background(), sub.ws.reg, note.tbl, frames)
		if err != nil {
			return nil, err
		}
		vals = v
	} else {
		valuers, err := sub.compileValuers(note.tbl)
		if err != nil {
			return nil, err
		}
		vals = make([][]float64, len(sub.folds))
		for i := range vals {
			vals[i] = make([]float64, k)
		}
		for j, r := 0, note.lo; r < note.hi; j, r = j+1, r+1 {
			for i := range sub.folds {
				sub.folds[i].Push(valuers[i](int32(r)))
			}
			if r > sub.spec.N {
				if err := faultinject.Hit(faultinject.PointWindowEvict); err != nil {
					return nil, fmt.Errorf("window evict at row %d: %w", r, err)
				}
				for i := range sub.folds {
					sub.folds[i].Evict()
				}
			}
			if err := faultinject.Hit(faultinject.PointWindowEmit); err != nil {
				return nil, fmt.Errorf("window emit: %w", err)
			}
			for i := range sub.folds {
				vals[i][j] = sub.folds[i].Value()
			}
		}
		sub.flushFoldStats()
	}
	res, err := sub.emit(note, frames, vals, note.lo, note.hi-1)
	if err != nil {
		return nil, err
	}
	return []*WindowResult{res}, nil
}

// processRowsTumbling emits one WindowResult per bucket completed by
// the note's rows; a partially filled bucket keeps growing.
func (sub *Subscription) processRowsTumbling(note subNote) ([]*WindowResult, error) {
	b := sub.spec.Size()
	var valuers []exec.Accessor
	if sub.mode != ModeBaseline {
		var err error
		if valuers, err = sub.compileValuers(note.tbl); err != nil {
			return nil, err
		}
	}
	var out []*WindowResult
	for r := note.lo; r < note.hi; r++ {
		if sub.mode != ModeBaseline {
			for i := range sub.folds {
				sub.folds[i].Push(valuers[i](int32(r)))
			}
		}
		sub.bucketRows++
		if sub.bucketRows < b {
			continue
		}
		fr := frame{sub.bucketLo, r + 1}
		if err := faultinject.Hit(faultinject.PointWindowEmit); err != nil {
			return out, fmt.Errorf("window emit: %w", err)
		}
		var vals [][]float64
		if sub.mode == ModeBaseline {
			v, err := windowTaskValues(context.Background(), sub.ws.reg, note.tbl, []frame{fr})
			if err != nil {
				return out, err
			}
			vals = v
		} else {
			vals = make([][]float64, len(sub.folds))
			for i := range sub.folds {
				vals[i] = []float64{sub.folds[i].Value()}
				sub.folds[i].Reset()
			}
			sub.flushFoldStats()
		}
		res, err := sub.emit(note, []frame{fr}, vals, fr.lo, fr.hi-1)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		sub.bucketLo = r + 1
		sub.bucketRows = 0
	}
	return out, nil
}

// processEpochs treats the note as one tick (each Append batch is one
// epoch). Sliding frames cover the last n+1 ticks' rows and emit every
// tick; tumbling frames emit once per n accumulated ticks.
func (sub *Subscription) processEpochs(note subNote) ([]*WindowResult, error) {
	if sub.mode != ModeBaseline {
		valuers, err := sub.compileValuers(note.tbl)
		if err != nil {
			return nil, err
		}
		for r := note.lo; r < note.hi; r++ {
			for i := range sub.folds {
				sub.folds[i].Push(valuers[i](int32(r)))
			}
		}
	}
	sub.ticks = append(sub.ticks, frame{note.lo, note.hi})

	if sub.spec.Sliding {
		for len(sub.ticks) > sub.spec.N+1 {
			expired := sub.ticks[0]
			sub.ticks = sub.ticks[1:]
			if err := faultinject.Hit(faultinject.PointWindowEvict); err != nil {
				return nil, fmt.Errorf("window evict epoch rows [%d,%d): %w", expired.lo, expired.hi, err)
			}
			if sub.mode != ModeBaseline {
				for i := range sub.folds {
					for r := expired.lo; r < expired.hi; r++ {
						sub.folds[i].Evict()
					}
				}
			}
		}
	} else if len(sub.ticks) < sub.spec.N {
		return nil, nil
	}

	fr := frame{sub.ticks[0].lo, note.hi}
	if err := faultinject.Hit(faultinject.PointWindowEmit); err != nil {
		return nil, fmt.Errorf("window emit: %w", err)
	}
	var vals [][]float64
	if sub.mode == ModeBaseline {
		v, err := windowTaskValues(context.Background(), sub.ws.reg, note.tbl, []frame{fr})
		if err != nil {
			return nil, err
		}
		vals = v
	} else {
		vals = make([][]float64, len(sub.folds))
		for i := range sub.folds {
			vals[i] = []float64{sub.folds[i].Value()}
		}
		if !sub.spec.Sliding {
			for i := range sub.folds {
				sub.folds[i].Reset()
			}
		}
		sub.flushFoldStats()
	}
	if !sub.spec.Sliding {
		sub.ticks = sub.ticks[:0]
	}
	res, err := sub.emit(note, []frame{fr}, vals, fr.lo, fr.hi-1)
	if err != nil {
		return nil, err
	}
	return []*WindowResult{res}, nil
}
