// Package core implements the SUDAF framework itself — the paper's
// primary contribution. A Session owns the catalog, the execution engine,
// the UDAF registry (declarative mathematical expressions canonicalized
// into aggregation states), the precomputed symbolic sharing space, the
// dynamic state cache, and the materialized state views used for
// aggregate-view rewriting.
//
// Queries run in one of three modes mirroring the paper's experimental
// systems:
//
//	ModeBaseline — "PostgreSQL / Spark SQL": built-in aggregates run
//	  native fast paths; UDAFs run as hardcoded, per-tuple interpreted
//	  accumulators (the PL/pgSQL / UserDefinedAggregateFunction model).
//	ModeRewrite  — "SUDAF (no share)": every aggregate is decomposed
//	  into aggregation states computed by compiled built-in loops, with
//	  the terminating function applied per group (queries RQ1/RQ2).
//	ModeShare    — "SUDAF (share)": ModeRewrite plus the dynamic cache:
//	  states are served from cache exactly, through Theorem 4.1
//	  rewritings, or via §5.3 sign-split reconstruction; only missing
//	  states touch base data.
//
// # Concurrency
//
// A Session is safe for any number of goroutines calling Query,
// QueryContext, QueryBatches, Materialize and the setter methods
// concurrently. Each query call builds a shared-nothing per-call context
// (parse tree, canonicalization, rewrite plan, result assembly, and a
// catalog overlay for materialized subquery temporaries); the shared
// structures are an RWMutex-guarded registry (UDAFs, views, policies), a
// striped state cache swapped atomically by ClearCache, and atomic
// engine counters. The lock hierarchy is flat: Session.mu is never held
// across engine execution or cache shard locks, and cache shard locks
// never nest. Options.MaxConcurrentQueries adds admission control so a
// burst of clients queues (context-aware) instead of oversubscribing the
// morsel scheduler.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/obs"
	"sudaf/internal/rewrite"
	"sudaf/internal/sketch"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

// Mode selects how aggregate functions execute.
type Mode int

const (
	// ModeBaseline models PostgreSQL/Spark SQL with hardcoded UDAFs.
	ModeBaseline Mode = iota
	// ModeRewrite is SUDAF without sharing.
	ModeRewrite
	// ModeShare is SUDAF with the dynamic state cache.
	ModeShare
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeRewrite:
		return "sudaf-noshare"
	case ModeShare:
		return "sudaf-share"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// NumericPolicy selects how NaN/±Inf aggregate outputs are handled; see
// exec.NumericPolicy.
type NumericPolicy = exec.NumericPolicy

// Numeric policies.
const (
	// NumericPermissive emits NaN/±Inf (the SQL-NULL analogue) and counts
	// the fault in Result.NumericFaults. The default.
	NumericPermissive = exec.NumericPermissive
	// NumericStrict fails the query on a numeric domain fault.
	NumericStrict = exec.NumericStrict
)

// Options configures a session.
type Options struct {
	// Workers is the engine parallelism: 1 = "PostgreSQL mode" (serial),
	// 0 = all CPUs = "Spark mode". The worker pool is shared by every
	// concurrent query, so N simultaneous queries never run more than
	// Workers aggregation goroutines in total.
	Workers int
	// CacheBytes bounds the state cache (≤0: 256 MiB).
	CacheBytes int64
	// CacheShards is the number of independent cache stripes (≤0:
	// cache.DefaultShards). More stripes reduce lock contention between
	// concurrent queries caching states under different fingerprints.
	CacheShards int
	// SymbolicL bounds the precomputed symbolic space (default 2).
	SymbolicL int
	// DisableViews turns off aggregate-view rewriting.
	DisableViews bool
	// QueryTimeout bounds every query's execution (0 = no timeout); it
	// also applies under QueryContext, nested inside the caller's context.
	QueryTimeout time.Duration
	// Numeric is the numeric fault policy (default NumericPermissive).
	Numeric NumericPolicy
	// MaxConcurrentQueries caps the queries executing at once (0 = no
	// cap). Excess callers queue inside QueryContext and honor their
	// context's cancellation/deadline while waiting.
	MaxConcurrentQueries int
	// TraceRate is the fraction of queries that record a span tree on
	// Result.Trace: 1 traces every query, 0 (the default) none, 0.01
	// every 100th. Sampling is deterministic (a modulus over an atomic
	// counter), and an untraced query threads nil spans through the
	// pipeline at zero allocation cost.
	TraceRate float64
	// Metrics, when non-nil, is the registry this session exports its
	// counters and latency histogram into. Several sessions may share one
	// registry as long as their MetricsLabel differs. Nil gives the
	// session a private registry (still reachable via Session.Metrics).
	Metrics *obs.Registry
	// MetricsLabel distinguishes this session's series when Metrics is
	// shared, rendered as an engine="..." label. Empty means no label.
	MetricsLabel string
	// Shards > 1 partitions every registered table into that many
	// contiguous row-range shards and executes SUDAF-mode aggregations
	// scatter-gather: each shard computes its partial canonical states
	// (against its own private state cache, so Theorem 4.1 sharing works
	// per shard), the coordinator ⊕-merges the partials, and the
	// terminating functions run once over the merged groups. Results are
	// bit-identical to an unsharded session. 0 or 1 disables sharding.
	Shards int
	// DataDir, when non-empty, is the persistence directory: NewSession
	// restores every table segment file and the state-cache snapshot
	// found there (see Session.LoadError for restore problems), and
	// Session.Save writes the current tables and cache back. Restored
	// tables keep their epochs, so warm cache entries keep matching
	// post-restart fingerprints. See persist.go.
	DataDir string
}

// EngineStats are session-lifetime aggregate counters, maintained with
// atomics so they are cheap to bump from concurrent queries.
type EngineStats struct {
	// QueriesStarted counts queries admitted to execution.
	QueriesStarted int64
	// QueriesCompleted counts queries that returned a result.
	QueriesCompleted int64
	// QueriesFailed counts queries that returned an error (including
	// cancellation).
	QueriesFailed int64
	// RowsScanned totals joined base rows read across all queries.
	RowsScanned int64
	// QueryTime totals wall time across all completed and failed queries
	// (admission queue wait excluded).
	QueryTime time.Duration
	// QueueWait totals time queries spent waiting for an admission slot.
	QueueWait time.Duration
	// QueriesQueued counts queries that had to wait for an admission slot
	// (a nonzero QueueWait) rather than being admitted immediately.
	QueriesQueued int64
}

// IngestStats are session-lifetime ingestion counters: what Append did
// across all batches. Maintained with atomics; also exported through the
// metrics registry as the sudaf_ingest_* families.
type IngestStats struct {
	// Appends counts successful Append/AppendCSV batches (no-op empty
	// batches included).
	Appends int64
	// RowsAppended totals ingested rows.
	RowsAppended int64
	// EntriesMigrated counts cache entries delta-maintained across an
	// append; StatesMaintained totals their per-entry states.
	EntriesMigrated  int64
	StatesMaintained int64
	// EntriesInvalidated counts cache entries dropped because they could
	// not be delta-maintained.
	EntriesInvalidated int64
	// ViewsMaintained / ViewsInvalidated count materialized views
	// delta-folded vs dropped across appends.
	ViewsMaintained  int64
	ViewsInvalidated int64
}

// Session is a SUDAF instance bound to a catalog of tables. It is safe
// for concurrent use; see the package comment for the concurrency model.
type Session struct {
	// mu guards the registry maps (udafs, builtinForms, views) and the
	// mutable policies (queryTimeout, numeric). It is never held across
	// query execution.
	mu           sync.RWMutex
	cat          *catalog.Catalog
	eng          *exec.Engine
	space        *symbolic.Space
	udafs        map[string]*canonical.Form
	builtinForms map[string]*canonical.Form
	views        map[string]*rewrite.View
	viewMaints   map[string]*viewMaint

	// ingestMu serializes appends (and view materialization, which seeds
	// maintenance state). Queries never take it: they pin a catalog
	// snapshot instead, so ingestion and querying overlap freely.
	ingestMu sync.Mutex

	// cache is swapped atomically by ClearCache; each query snapshots it
	// once, so an in-flight query keeps one coherent cache for its whole
	// lifetime even across a concurrent clear.
	cache       atomic.Pointer[cache.Cache]
	cacheBytes  int64
	cacheShards int

	// shards is the scatter-gather runtime (nil when Options.Shards ≤ 1):
	// per-table shard sets plus the in-process workers, each with its own
	// state cache. Shard sets are rebuilt under ingestMu (Register,
	// Append) and read via an immutable-snapshot pointer by queries.
	shards *shardRuntime

	// viewRewriting gates Q3→RQ3'-style roll-ups (atomic: toggled by
	// benchmarks while queries run).
	viewRewriting atomic.Bool

	// admit is the admission-control semaphore (nil = unlimited).
	admit chan struct{}

	// life tracks the closed/draining state and in-flight operations;
	// see close.go for the drain contract.
	life lifecycle

	queryTimeout time.Duration
	numeric      NumericPolicy

	// sampler decides which queries record a trace (nil when TraceRate
	// is 0 — the nil sampler never samples and costs one predicted
	// branch on the hot path).
	sampler *obs.Sampler
	// metrics is the export registry (never nil after NewSession);
	// queryHist is the query latency histogram registered in it.
	metrics   *obs.Registry
	queryHist *obs.Histogram

	// Engine-level counters (see EngineStats).
	queriesStarted   atomic.Int64
	queriesCompleted atomic.Int64
	queriesFailed    atomic.Int64
	queriesQueued    atomic.Int64
	rowsScanned      atomic.Int64
	queryNanos       atomic.Int64
	queueNanos       atomic.Int64

	// Ingestion counters (see IngestStats).
	appends            atomic.Int64
	rowsAppended       atomic.Int64
	entriesMigrated    atomic.Int64
	statesMaintained   atomic.Int64
	entriesInvalidated atomic.Int64
	viewsMaintained    atomic.Int64
	viewsInvalidated   atomic.Int64

	// Continuous windowed subscriptions (see subscribe.go). subMu guards
	// the registry; notifySubs runs under ingestMu, so queued notes
	// arrive in append order (the FIFO half of the delivery contract).
	subMu  sync.Mutex
	subs   map[int64]*Subscription
	subSeq int64

	// Windowed-query counters (the sudaf_window_* metric family).
	windowQueries       atomic.Int64
	windowEmits         atomic.Int64
	windowRowsEvicted   atomic.Int64
	windowFastFolds     atomic.Int64
	windowRefolds       atomic.Int64
	windowSubscriptions atomic.Int64

	// Persistence (see persist.go): dataDir is Options.DataDir, loadErr
	// (guarded by mu) joins the restore errors from construction, and the
	// counters feed the sudaf_storage_* metrics.
	dataDir              string
	loadErr              error
	persistSaves         atomic.Int64
	persistTablesLoaded  atomic.Int64
	persistEntriesLoaded atomic.Int64
}

// NewSession creates a session with the built-in UDAF library registered.
func NewSession(opts Options) *Session {
	if opts.Workers == 0 {
		opts.Workers = runtime.NumCPU()
	}
	l := opts.SymbolicL
	if l <= 0 {
		l = 2
	}
	cat := catalog.New()
	space := symbolic.NewSpace(l)
	s := &Session{
		cat:          cat,
		eng:          exec.NewEngine(cat, opts.Workers),
		space:        space,
		cacheBytes:   opts.CacheBytes,
		cacheShards:  opts.CacheShards,
		udafs:        map[string]*canonical.Form{},
		views:        map[string]*rewrite.View{},
		viewMaints:   map[string]*viewMaint{},
		queryTimeout: opts.QueryTimeout,
		numeric:      opts.Numeric,
		sampler:      obs.NewSampler(opts.TraceRate),
		metrics:      opts.Metrics,
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.life.ch = make(chan struct{})
	s.cache.Store(cache.NewSharded(opts.CacheBytes, opts.CacheShards, space))
	if opts.Shards > 1 {
		s.shards = newShardRuntime(s, opts.Shards, opts.CacheBytes, opts.CacheShards)
	}
	s.viewRewriting.Store(!opts.DisableViews)
	if opts.MaxConcurrentQueries > 0 {
		s.admit = make(chan struct{}, opts.MaxConcurrentQueries)
	}
	s.registerMetrics(opts.MetricsLabel)
	s.registerBuiltinLibrary()
	if opts.DataDir != "" {
		s.dataDir = opts.DataDir
		if err := s.loadDataDir(); err != nil {
			s.mu.Lock()
			s.loadErr = err
			s.mu.Unlock()
		}
	}
	return s
}

// Catalog exposes the session's catalog.
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// stateCache returns the current cache snapshot.
func (s *Session) stateCache() *cache.Cache { return s.cache.Load() }

// CacheStats returns cache counters.
func (s *Session) CacheStats() cache.Stats { return s.stateCache().Stats() }

// ResetCacheStats zeroes cache counters.
func (s *Session) ResetCacheStats() { s.stateCache().ResetStats() }

// ClearCache drops all cached states (fresh-cache experiments) by
// installing a new cache with the session's configured budget and shard
// count. Queries already in flight finish against the old cache — they
// snapshotted the pointer at admission — and their late inserts land in
// the discarded cache, which is then garbage.
func (s *Session) ClearCache() {
	s.cache.Store(cache.NewSharded(s.cacheBytes, s.cacheShards, s.space))
}

// Space exposes the precomputed symbolic space.
func (s *Session) Space() *symbolic.Space { return s.space }

// Cache exposes the session's state cache (testing and chaos harnesses).
func (s *Session) Cache() *cache.Cache { return s.stateCache() }

// Stats returns the session-lifetime engine counters.
func (s *Session) Stats() EngineStats {
	return EngineStats{
		QueriesStarted:   s.queriesStarted.Load(),
		QueriesCompleted: s.queriesCompleted.Load(),
		QueriesFailed:    s.queriesFailed.Load(),
		RowsScanned:      s.rowsScanned.Load(),
		QueryTime:        time.Duration(s.queryNanos.Load()),
		QueueWait:        time.Duration(s.queueNanos.Load()),
		QueriesQueued:    s.queriesQueued.Load(),
	}
}

// IngestStats returns the session-lifetime ingestion counters.
func (s *Session) IngestStats() IngestStats {
	return IngestStats{
		Appends:            s.appends.Load(),
		RowsAppended:       s.rowsAppended.Load(),
		EntriesMigrated:    s.entriesMigrated.Load(),
		StatesMaintained:   s.statesMaintained.Load(),
		EntriesInvalidated: s.entriesInvalidated.Load(),
		ViewsMaintained:    s.viewsMaintained.Load(),
		ViewsInvalidated:   s.viewsInvalidated.Load(),
	}
}

// Metrics returns the session's metrics registry (the one passed in
// Options.Metrics, or the private registry created in its absence).
func (s *Session) Metrics() *obs.Registry { return s.metrics }

// SetNumericPolicy switches strict/permissive numeric fault handling at
// runtime (e.g. from the shell).
func (s *Session) SetNumericPolicy(p NumericPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numeric = p
}

// NumericPolicySetting returns the session's numeric fault policy.
func (s *Session) NumericPolicySetting() NumericPolicy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numeric
}

// SetVectorizedKernels toggles the batch aggregation kernels (on by
// default). Off forces every task onto the tuple-at-a-time path; results
// are identical, only throughput changes. Used by benchmarks and the
// batch≡tuple differential tests. Safe to toggle while queries run: each
// query snapshots the knob once.
func (s *Session) SetVectorizedKernels(on bool) {
	s.eng.SetVectorKernels(on)
}

// SetEncodedFolds toggles aggregation directly over encoded segments
// (RLE run-folds; on by default). Off forces every morsel through the
// dense batch kernels. Results are bit-identical either way — the folds
// only engage where exactness is provable — so the knob exists for
// benchmarks and the encoded≡dense differential tests. Safe to toggle
// while queries run.
func (s *Session) SetEncodedFolds(on bool) { s.eng.SetEncodedFolds(on) }

// EncodedFolds reports whether encoded-segment folds are enabled.
func (s *Session) EncodedFolds() bool { return s.eng.EncodedFolds() }

// SetViewRewriting gates Q3→RQ3'-style roll-up rewritings at runtime.
func (s *Session) SetViewRewriting(on bool) { s.viewRewriting.Store(on) }

// ViewRewriting reports whether roll-up rewritings are enabled.
func (s *Session) ViewRewriting() bool { return s.viewRewriting.Load() }

// SetQueryTimeout changes the per-query timeout (0 disables it).
func (s *Session) SetQueryTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queryTimeout = d
}

// Register adds a table to the catalog. On a sharded session it also
// (re)builds the table's shard set: contiguous row-range slice versions,
// one per shard, each sealed and epoch-stamped once so per-shard cache
// fingerprints stay stable across queries.
func (s *Session) Register(t *storage.Table) error {
	if s.shards == nil {
		return s.cat.Register(t)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if err := s.cat.Register(t); err != nil {
		return err
	}
	s.shards.rebuild(t)
	return nil
}

// DefineUDAF registers a UDAF from its mathematical expression, e.g.
//
//	DefineUDAF("qm", []string{"x"}, "sqrt(sum(x^2)/count())")
//
// The expression is canonicalized immediately; errors surface here, not
// at query time.
func (s *Session) DefineUDAF(name string, params []string, body string) error {
	name = strings.ToLower(name)
	if _, builtin := exec.LookupBuiltin(name); builtin {
		return fmt.Errorf("%q is a built-in aggregate", name)
	}
	node, err := expr.Parse(body)
	if err != nil {
		return fmt.Errorf("UDAF %s: %w", name, err)
	}
	form, err := canonical.Decompose(name, params, node)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.udafs[name] = form
	return nil
}

// DefineSketchUDAF registers a UDAF whose terminating function is
// hardcoded Go over moment-sketch states (§4.1 scenario 2): quantile q
// approximated from MS(k).
func (s *Session) DefineSketchUDAF(name string, k int, q float64) error {
	form, err := sketch.QuantileForm(name, k, q)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.udafs[strings.ToLower(name)] = form
	return nil
}

// UDAF returns a registered UDAF's canonical form.
func (s *Session) UDAF(name string) (*canonical.Form, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.udafs[strings.ToLower(name)]
	return f, ok
}

// UDAFNames lists registered UDAFs.
func (s *Session) UDAFNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.udafs))
	for n := range s.udafs {
		out = append(out, n)
	}
	return out
}

// isAgg reports whether a call name denotes an aggregate in this session.
func (s *Session) isAgg(name string) bool {
	if _, ok := exec.LookupBuiltin(name); ok {
		return true
	}
	s.mu.RLock()
	_, ok := s.udafs[name]
	s.mu.RUnlock()
	return ok
}

// registerBuiltinLibrary installs the paper's aggregations (Table 1 and
// the experiment workloads) as declarative UDAFs.
func (s *Session) registerBuiltinLibrary() {
	lib := []struct {
		name   string
		params []string
		body   string
	}{
		{"qm", []string{"x"}, "sqrt(sum(x^2)/count())"},    // quadratic mean
		{"cm", []string{"x"}, "(sum(x^3)/count())^(1/3)"},  // cubic mean
		{"gm", []string{"x"}, "prod(x)^(1/count())"},       // geometric mean
		{"hm", []string{"x"}, "count()/sum(x^(-1))"},       // harmonic mean
		{"apm", []string{"x"}, "(sum(x^4)/count())^(1/4)"}, // power mean p=4
		{"logsumexp", []string{"x"}, "ln(sum(exp(x)))"},    // LogSumExp
		{"theta1", []string{"x", "y"}, "(count()*sum(x*y)-sum(y)*sum(x))/(count()*sum(x^2)-sum(x)^2)"},
		{"theta0", []string{"x", "y"}, "sum(y)/count() - ((count()*sum(x*y)-sum(y)*sum(x))/(count()*sum(x^2)-sum(x)^2))*(sum(x)/count())"},
		{"covariance", []string{"x", "y"}, "sum(x*y)/n - sum(x)*sum(y)/n^2"},
		{"correlation", []string{"x", "y"},
			"(n*sum(x*y)-sum(x)*sum(y))/(sqrt(n*sum(x^2)-sum(x)^2)*sqrt(n*sum(y^2)-sum(y)^2))"},
		{"skewness", []string{"x"},
			"(sum(x^3)/n - 3*(sum(x)/n)*(sum(x^2)/n) + 2*(sum(x)/n)^3)/(sum(x^2)/n - (sum(x)/n)^2)^1.5"},
		{"kurtosis", []string{"x"},
			"(sum(x^4)/n - 4*(sum(x)/n)*(sum(x^3)/n) + 6*(sum(x)/n)^2*(sum(x^2)/n) - 3*(sum(x)/n)^4)/(sum(x^2)/n - (sum(x)/n)^2)^2"},
	}
	for _, d := range lib {
		if err := s.DefineUDAF(d.name, d.params, d.body); err != nil {
			panic(fmt.Sprintf("builtin library: %v", err))
		}
	}
	for _, d := range []struct {
		name string
		q    float64
	}{
		{"approx_median", 0.5},
		{"approx_first_quantile", 0.25},
		{"approx_third_quantile", 0.75},
	} {
		if err := s.DefineSketchUDAF(d.name, sketch.DefaultK, d.q); err != nil {
			panic(fmt.Sprintf("sketch library: %v", err))
		}
	}
	// moment_sketch(x) computes and caches the MS(k=10) states with a
	// trivial terminating function — the AS2 prefetch operator.
	s.udafs["moment_sketch"] = sketch.PrefetchForm("moment_sketch", sketch.DefaultK)
}
