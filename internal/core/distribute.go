// Scatter-gather distribution: the session side of internal/shard. A
// sharded session (Options.Shards > 1) partitions every registered table
// into contiguous row-range slice versions — sealed and epoch-stamped
// once, so per-shard cache fingerprints are stable across queries — and
// executes SUDAF-mode aggregations as N partial state scans ⊕-merged at
// the coordinator.
//
// Correctness rests on the paper's canonical form: every aggregation
// state is a commutative-monoid fold over the input multiset, so
// states(shard₀ ⊎ … ⊎ shardₙ) = states(shard₀) ⊕ … ⊕ states(shardₙ)
// exactly (no floating-point caveat: the merge performs the same ⊕
// reductions the single-engine morsel merge would, over the same
// contiguous row ranges, in the same order). Baseline mode does not
// distribute: its hardcoded UDAF accumulators carry no merge contract —
// which is precisely the paper's argument for canonicalization.
package core

import (
	"context"
	"sync"
	"sync/atomic"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/catalog"
	"sudaf/internal/exec"
	"sudaf/internal/shard"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// ShardStats are session-lifetime scatter-gather counters (zero-valued
// on an unsharded session). Also exported as the sudaf_shard_* metric
// families.
type ShardStats struct {
	// Shards is the configured shard count (0 when sharding is off).
	Shards int
	// Tables is the number of tables with a live shard set.
	Tables int
	// Queries counts queries executed scatter-gather; Fallbacks counts
	// queries a sharded session ran single-engine instead (baseline mode
	// excluded — only plans that were eligible but not distributable:
	// epoch mismatch with an in-flight append, view rewrites, subquery
	// temporaries).
	Queries   int64
	Fallbacks int64
	// Scans counts per-shard worker scans (including full cache hits);
	// FullHits the scans answered entirely from a worker's cache;
	// StateHits the individual states served from worker caches;
	// RowsScanned the base rows read by partial recomputations.
	Scans       int64
	FullHits    int64
	StateHits   int64
	RowsScanned int64
	// AppendsRouted counts append batches routed to their owning shard;
	// EntriesMaintained the worker-cache entries ⊕-maintained in place
	// across those appends.
	AppendsRouted     int64
	EntriesMaintained int64
}

// shardSet is one table's partitioning: contiguous [lo, hi) row ranges
// and the matching slice versions, index-aligned with the workers. A set
// is immutable after install — appends and re-registrations build a new
// set — so queries can hold one without locks.
type shardSet struct {
	table     string
	baseEpoch int64    // epoch of the table version the set partitions
	ranges    [][2]int // per-shard [lo, hi) over the base table's rows
	slices    []*storage.Table
}

// shardRuntime is the per-session scatter-gather state: the in-process
// workers (each with a private state cache) and the per-table shard
// sets. Sets are rebuilt under ingestMu (Register, Append) and read via
// pointer snapshot by queries.
type shardRuntime struct {
	n       int
	workers []*shard.InProc

	mu   sync.RWMutex
	sets map[string]*shardSet

	queries           atomic.Int64
	fallbacks         atomic.Int64
	appendsRouted     atomic.Int64
	entriesMaintained atomic.Int64
}

// newShardRuntime builds the workers. Each worker's private cache gets
// an equal share of the session cache budget.
func newShardRuntime(s *Session, n int, cacheBytes int64, cacheShards int) *shardRuntime {
	per := cacheBytes
	if per <= 0 {
		per = 256 << 20
	}
	per /= int64(n)
	r := &shardRuntime{n: n, sets: map[string]*shardSet{}}
	for i := 0; i < n; i++ {
		r.workers = append(r.workers, shard.NewInProc(s.eng, per, cacheShards, s.space))
	}
	return r
}

// rebuild (re)partitions a just-registered table version into the shard
// set. Caller holds ingestMu. Slices are stamped with their own epochs
// here, exactly once, so a worker re-registering one into a per-query
// overlay keeps a stable fingerprint.
func (r *shardRuntime) rebuild(t *storage.Table) {
	ranges := t.Partition(r.n)
	slices := make([]*storage.Table, r.n)
	for i, rg := range ranges {
		sl := t.Slice(rg[0], rg[1])
		sl.Epoch = storage.NextEpoch()
		sl.Seal()
		slices[i] = sl
	}
	set := &shardSet{table: t.Name, baseEpoch: t.Epoch, ranges: ranges, slices: slices}
	r.mu.Lock()
	r.sets[t.Name] = set
	r.mu.Unlock()
}

// setFor returns a table's current shard set.
func (r *shardRuntime) setFor(name string) (*shardSet, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set, ok := r.sets[name]
	return set, ok
}

// pickSet chooses the scatter dimension for a data plan: the largest
// referenced table whose shard set partitions exactly the version the
// query pinned. A mismatched epoch (an append or re-registration slipped
// between the snapshot and here, or a subquery temp shadows the name)
// disqualifies the table — the torn-snapshot guard; every other table
// resolves at its pinned version inside each worker's overlay.
func (r *shardRuntime) pickSet(dp *exec.DataPlan) *shardSet {
	var best *shardSet
	bestRows := -1
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, ep := range dp.TableEpochs() {
		set, ok := r.sets[name]
		if !ok || set.baseEpoch != ep {
			continue
		}
		if rows := set.ranges[len(set.ranges)-1][1]; rows > bestRows {
			best, bestRows = set, rows
		}
	}
	return best
}

// ruleDistribute (distribute phase) replaces the query's local fused
// scan with a scatter-gather execution when the session is sharded and
// the plan is distributable: SUDAF mode (canonical states are what makes
// partials mergeable), no full cache hit, no batch-provided result, no
// view rewrite (roll-up states read view tables, which are coordinator
// business), and a registered task for every state. A shard failure
// surfaces as the query's one typed error; a non-distributable plan
// falls back to the single-engine scan silently.
func ruleDistribute(ctx context.Context, ps *planState) error {
	s := ps.s
	if s.shards == nil || ps.mode == ModeBaseline || ps.fullHit || ps.gr != nil ||
		ps.usedView != "" || ps.dpRun != ps.dp || ps.reg == nil || ps.reg.Len() == 0 {
		return nil
	}
	states, ok := ps.scatterStates()
	if !ok {
		s.shards.fallbacks.Add(1)
		return nil
	}
	gr, ok, err := s.scatter(ctx, ps.qc, ps.stmt, ps.dp, states, ps.mode == ModeShare)
	if err != nil {
		return err
	}
	if ok {
		ps.gr = gr
	}
	return nil
}

// scatterStates reconstructs the task registry's state list in task
// order from the plan's missing slots and sign-split companions. ok is
// false when any registry index is not covered by a canonical state
// (never the case for plans built by the standard pipeline — this is a
// bail-out, not an error path).
func (ps *planState) scatterStates() ([]canonical.State, bool) {
	n := ps.reg.Len()
	states := make([]canonical.State, n)
	have := make([]bool, n)
	fill := func(sl *slot) bool {
		if sl.taskIdx < 0 || sl.taskIdx >= n {
			return false
		}
		states[sl.taskIdx] = sl.st
		have[sl.taskIdx] = true
		return true
	}
	for _, sl := range ps.missing {
		if !fill(sl) {
			return nil, false
		}
	}
	for _, sl := range ps.companions {
		if !fill(sl) {
			return nil, false
		}
	}
	for _, h := range have {
		if !h {
			return nil, false
		}
	}
	return states, true
}

// scatter runs the states over the shard workers and merges the partials
// into a GroupResult shaped exactly like the single-engine scan would
// produce (Values indexed by registry task index, groups in global
// first-appearance order). ok=false means the plan was not
// distributable; err is a real shard failure (typed errs.ErrShard).
func (s *Session) scatter(ctx context.Context, qc *queryCtx, stmt *sqlparse.Stmt, dp *exec.DataPlan,
	states []canonical.State, useCache bool) (*exec.GroupResult, bool, error) {

	r := s.shards
	set := r.pickSet(dp)
	if set == nil {
		r.fallbacks.Add(1)
		return nil, false, nil
	}
	workers := make([]shard.Worker, len(r.workers))
	for i, w := range r.workers {
		workers[i] = w
	}
	sp := qc.sp.Child("scatter-gather")
	sp.SetStr("table", set.table)
	sp.SetInt("shards", int64(len(workers)))
	m, err := shard.Gather(ctx, workers, &shard.Request{
		Stmt: stmt, Cat: qc.cat, Table: set.table, Slices: set.slices,
		States: states, UseCache: useCache,
		Positive: basePositive,
		Maint:    func(st *sqlparse.Stmt, d *exec.DataPlan) any { return newMaintRec(st, d) },
	})
	if err != nil {
		sp.End()
		return nil, false, err
	}
	r.queries.Add(1)
	hits := 0
	for _, si := range m.Shards {
		hits += si.StateHits
	}
	sp.SetInt("rows", int64(m.Rows))
	sp.SetInt("groups", int64(len(m.Keys)))
	sp.SetInt("state-hits", int64(hits))
	sp.End()
	return &exec.GroupResult{
		NumGroups:  len(m.Keys),
		Keys:       m.Keys,
		KeyNames:   m.KeyNames,
		KeyColumns: m.KeyCols,
		Values:     m.Vals,
		Rows:       m.Rows,
		Kernels:    m.Kernels,
	}, true, nil
}

// routeAppend extends the appended table's shard set to the new version
// and ⊕-maintains the owning shard's cache. Contiguous ranges mean an
// append extends only the *last* shard: earlier shards' slices view a
// stable prefix of copy-on-write arrays, so their fingerprints — and
// every partial cached under them — stay valid untouched. Only the owner
// re-slices (fresh epoch) and delta-maintains its entries, reusing the
// session's migrateEntry machinery against the worker's private cache.
// Caller holds ingestMu; deltaCat is the session's delta overlay (the
// delta rows all belong to the owner's range).
func (s *Session) routeAppend(ctx context.Context, old, newTbl *storage.Table, deltaCat *catalog.Catalog) {
	r := s.shards
	set, ok := r.setFor(old.Name)
	if !ok || set.baseEpoch != old.Epoch {
		// No set (or one for a superseded version): start fresh.
		r.rebuild(newTbl)
		return
	}
	owner := r.n - 1
	oldOwner := set.slices[owner]
	ranges := make([][2]int, r.n)
	copy(ranges, set.ranges)
	ranges[owner] = [2]int{set.ranges[owner][0], newTbl.NumRows()}
	slices := make([]*storage.Table, r.n)
	copy(slices, set.slices)
	no := newTbl.Slice(ranges[owner][0], newTbl.NumRows())
	no.Epoch = storage.NextEpoch()
	no.Seal()
	slices[owner] = no
	r.appendsRouted.Add(1)

	// Owner-shard maintenance: entries computed at the old owner slice
	// (and current versions of every joined table) fold the delta in and
	// move to the new slice's fingerprint; anything else is left alone —
	// other shards' entries are still current, and entries referencing
	// superseded versions are unreachable garbage the LRU will evict.
	postCat := s.cat.Overlay()
	if err := postCat.Register(no); err == nil {
		c := r.workers[owner].StateCache()
		for _, snap := range c.Snapshot() {
			mr, mok := snap.Maint.(*maintRec)
			if !mok || mr == nil {
				if fpReferences(snap.Fingerprint, old.Name, oldOwner.Epoch) {
					c.Remove(snap.Fingerprint)
				}
				continue
			}
			if !s.recCurrent(mr.epochs, old.Name, oldOwner.Epoch) {
				continue
			}
			if _, err := s.migrateEntry(ctx, c, snap, mr, deltaCat, postCat); err != nil {
				c.Remove(snap.Fingerprint)
				continue
			}
			r.entriesMaintained.Add(1)
		}
	}

	r.mu.Lock()
	r.sets[newTbl.Name] = &shardSet{
		table: newTbl.Name, baseEpoch: newTbl.Epoch, ranges: ranges, slices: slices,
	}
	r.mu.Unlock()
}

// explainShards fills ex.Shards with per-worker scatter provenance:
// each shard's slice fingerprint and — in share mode — its private
// cache's probed outcome for every bound state (read-only, mirroring
// the coordinator probe). bound is index-aligned with ex.States.
func (s *Session) explainShards(qc *queryCtx, stmt *sqlparse.Stmt, dp *exec.DataPlan,
	ex *Explain, bound []canonical.State) {

	r := s.shards
	set := r.pickSet(dp)
	if set == nil {
		return
	}
	for i, w := range r.workers {
		ov := qc.cat.Overlay()
		if err := ov.Register(set.slices[i]); err != nil {
			return
		}
		dpi, err := s.eng.PrepareDataIn(ov, stmt)
		if err != nil {
			return
		}
		es := ExplainShard{
			Index: i, Table: set.table,
			Rows:        set.ranges[i][1] - set.ranges[i][0],
			Fingerprint: dpi.Fingerprint,
		}
		if ex.Mode == ModeShare {
			c := w.StateCache()
			for _, st := range bound {
				pos := basePositive(ov, st.Base, dpi.Tables())
				es.Hits = append(es.Hits, c.Probe(dpi.Fingerprint, st, pos).Kind.String())
			}
		}
		ex.Shards = append(ex.Shards, es)
	}
}

// ShardStats returns the session's scatter-gather counters (zero-valued
// when sharding is off).
func (s *Session) ShardStats() ShardStats {
	r := s.shards
	if r == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Shards:            r.n,
		Queries:           r.queries.Load(),
		Fallbacks:         r.fallbacks.Load(),
		AppendsRouted:     r.appendsRouted.Load(),
		EntriesMaintained: r.entriesMaintained.Load(),
	}
	r.mu.RLock()
	st.Tables = len(r.sets)
	r.mu.RUnlock()
	for _, w := range r.workers {
		ws := w.Stats()
		st.Scans += ws.Scans
		st.FullHits += ws.FullHits
		st.StateHits += ws.StateHits
		st.RowsScanned += ws.RowsScanned
	}
	return st
}

// ShardCount returns the configured shard count (0 when sharding is
// off).
func (s *Session) ShardCount() int {
	if s.shards == nil {
		return 0
	}
	return s.shards.n
}

// ShardWorkerCache exposes one worker's private state cache (tests,
// chaos harnesses, EXPLAIN probing).
func (s *Session) ShardWorkerCache(i int) *cache.Cache {
	if s.shards == nil || i < 0 || i >= len(s.shards.workers) {
		return nil
	}
	return s.shards.workers[i].StateCache()
}

// ClearShardWorker drops a single worker's cached partials, simulating
// one shard rebooting while its peers stay warm: the next scatter
// rescans only that worker's row range.
func (s *Session) ClearShardWorker(i int) {
	if s.shards == nil || i < 0 || i >= len(s.shards.workers) {
		return
	}
	s.shards.workers[i].ClearCache()
}

// ClearShardCaches drops every worker's cached partials (the per-shard
// analogue of ClearCache, which only clears the session cache).
func (s *Session) ClearShardCaches() {
	if s.shards == nil {
		return
	}
	for _, w := range s.shards.workers {
		w.ClearCache()
	}
}
