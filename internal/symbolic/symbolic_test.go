package symbolic

import (
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/scalar"
	"sudaf/internal/sharing"
)

func TestSpaceSizeMatchesPaperBound(t *testing.T) {
	// |saggs_l| ≤ 2(4^{l+1}-1)/3, with equality for our four families.
	for l := 0; l <= 2; l++ {
		sp := NewSpace(l)
		want := SpaceSizeBound(l)
		if len(sp.States) != want {
			t.Errorf("l=%d: %d states, want %d", l, len(sp.States), want)
		}
	}
	// The paper's l=2 space has 42 states.
	if SpaceSizeBound(2) != 42 {
		t.Errorf("bound(2) = %d, want 42", SpaceSizeBound(2))
	}
}

func TestStrongEdgeSumLinearProdExp(t *testing.T) {
	// Figure 4: Σp·x shares Πp^x strongly (and vice versa).
	sp := NewSpace(1)
	var sumLin, prodExp *State
	for _, s := range sp.States {
		if s.Sig == "sum,linear" {
			sumLin = s
		}
		if s.Sig == "prod,exp" {
			prodExp = s
		}
	}
	if sumLin == nil || prodExp == nil {
		t.Fatal("missing expected nodes")
	}
	e, ok := sp.EdgeBetween(sumLin.ID, prodExp.ID)
	if !ok || !e.Strong() {
		t.Fatalf("Σp·x → Πp^x should be a strong edge, got %+v ok=%v", e, ok)
	}
	back, ok := sp.EdgeBetween(prodExp.ID, sumLin.ID)
	if !ok || !back.Strong() {
		t.Fatalf("Πp^x → Σp·x should be a strong edge")
	}
	// They are in the same equivalence class as Σx.
	if sp.Rep(sumLin.ID) != sp.Rep(prodExp.ID) {
		t.Error("Σp·x and Πp^x should share an equivalence class")
	}
}

func TestSumXEquivalenceClass(t *testing.T) {
	// Figure 4 (which shows an excerpt of l=2) puts Σx, Σp·x, Πp^x and
	// Πp1^(p2·x) in [Σx]. Over the full l=2 space the class additionally
	// contains the redundant length-2 spellings of the same families:
	// Σp2·(p1·x), Σlog_p2(p1^x) and Π(p1^x)^p2 — seven members total, all
	// denoting {Σc·x | c≠0} ∪ {Πc^x | c>0,≠1} instances.
	sp := NewSpace(2)
	var sumX *State
	for _, s := range sp.States {
		if s.Sig == "sum" {
			sumX = s
		}
	}
	if sumX == nil {
		t.Fatal("Σx node missing")
	}
	class := sp.Class(sumX.ID)
	var names []string
	for _, id := range class {
		names = append(names, sp.States[id].Expr())
	}
	if len(class) != 7 {
		t.Fatalf("[Σx] has %d members %v, want 7", len(class), names)
	}
	wantSigs := map[string]bool{
		"sum": true, "sum,linear": true, "sum,linear,linear": true,
		"sum,exp,log": true, "prod,exp": true, "prod,linear,exp": true,
		"prod,exp,power": true,
	}
	for _, id := range class {
		if !wantSigs[sp.States[id].Sig] {
			t.Errorf("unexpected class member %s (%s)", sp.States[id].Expr(), sp.States[id].Sig)
		}
	}
	// Σx must be the representative (shortest chain).
	if sp.Rep(sumX.ID).ID != sumX.ID {
		t.Errorf("representative of [Σx] is %s", sp.Rep(sumX.ID).Expr())
	}
	// Figure 4's excerpt members must all be present.
	for _, sig := range []string{"sum,linear", "prod,exp", "prod,linear,exp"} {
		found := false
		for _, id := range class {
			if sp.States[id].Sig == sig {
				found = true
			}
		}
		if !found {
			t.Errorf("class [Σx] missing %s", sig)
		}
	}
}

func TestWeakEdgePowerCondition(t *testing.T) {
	// Σx^p shares Σp2·x^p1 iff p = p1 (weak edge).
	sp := NewSpace(2)
	var from, to *State
	for _, s := range sp.States {
		if s.Sig == "sum,power" {
			from = s
		}
		if s.Sig == "sum,power,linear" {
			to = s
		}
	}
	if from == nil || to == nil {
		t.Fatal("missing nodes")
	}
	e, ok := sp.EdgeBetween(from.ID, to.ID)
	if !ok {
		t.Fatal("expected weak edge Σx^p → Σp2·x^p1")
	}
	if e.Strong() {
		t.Error("edge should carry conditions")
	}
}

func TestShareViaConcreteStates(t *testing.T) {
	sp := NewSpace(2)
	// Σ ln x (runtime shape sum,log) shares Π x: r = ln.
	r, ok := sp.ShareVia(
		canonical.OpSum, scalar.NewChain(scalar.LogP(scalar.E)),
		canonical.OpProd, scalar.IdentityChain())
	if !ok {
		t.Fatal("Σln x should share Πx via the space")
	}
	if got := r(math.E * math.E); math.Abs(got-2) > 1e-9 {
		t.Errorf("r(e²) = %v, want 2", got)
	}
	// Σ4x² vs Σx² — same node (sum,power,linear vs sum,power): via edge.
	r2, ok := sp.ShareVia(
		canonical.OpSum, scalar.NewChain(scalar.PowerP(2), scalar.Linear(4)),
		canonical.OpProd, scalar.IdentityChain())
	if ok {
		_ = r2
		t.Error("Σ4x² must not share Πx")
	}
	// Weak edge condition check: Σx³ shares Σ5x³ but not Σ5x².
	r3, ok := sp.ShareVia(
		canonical.OpSum, scalar.NewChain(scalar.PowerP(3)),
		canonical.OpSum, scalar.NewChain(scalar.PowerP(3), scalar.Linear(5)))
	if !ok {
		t.Fatal("Σx³ should share Σ5x³")
	}
	if got := r3(10); math.Abs(got-2) > 1e-9 {
		t.Errorf("r(10) = %v, want 2", got)
	}
	if _, ok := sp.ShareVia(
		canonical.OpSum, scalar.NewChain(scalar.PowerP(3)),
		canonical.OpSum, scalar.NewChain(scalar.PowerP(2), scalar.Linear(5))); ok {
		t.Error("Σx³ must not share Σ5x² (condition p=p1 fails)")
	}
}

// TestSpaceAgreesWithDirectDecision cross-validates the precomputed
// digraph against the direct decision procedure on random concrete
// instantiations — the space is an index, not a different algorithm.
func TestSpaceAgreesWithDirectDecision(t *testing.T) {
	sp := NewSpace(2)
	rng := rand.New(rand.NewSource(99))
	coefPool := []float64{0.5, 2, 3, math.E, 10}
	mk := func(s *State) (scalar.Chain, bool) {
		prims := make([]scalar.Prim, len(s.F.Prims))
		for i, p := range s.F.Prims {
			c := coefPool[rng.Intn(len(coefPool))]
			prims[i] = scalar.Prim{Kind: p.Kind, A: scalar.Num(c)}
		}
		return scalar.Chain{Prims: prims}, true
	}
	checked := 0
	for trial := 0; trial < 400; trial++ {
		s1 := sp.States[rng.Intn(len(sp.States))]
		s2 := sp.States[rng.Intn(len(sp.States))]
		if s1.ID == s2.ID {
			continue
		}
		f1, _ := mk(s1)
		f2, _ := mk(s2)
		rSpace, okSpace := sp.ShareVia(s1.Op, f1, s2.Op, f2)
		d := sharing.Decide(s1.Op, f1, s2.Op, f2, true)
		okDirect := d.OK
		if okDirect {
			for _, c := range d.Conds {
				v, err := scalar.CEval(c.C, nil)
				if err != nil || math.Abs(v-c.Want) > 1e-9 {
					okDirect = false
				}
			}
		}
		// The space is sound w.r.t. the direct procedure but deliberately
		// incomplete: an edge dropped by the ∀∃ semantics (condition on
		// source parameters only) can still hold for special concrete
		// instances (e.g. Πc·x with c=1), which the direct procedure
		// accepts. space=true ⇒ direct=true must always hold.
		if okSpace && !okDirect {
			t.Fatalf("space unsound on %s vs %s (f1=%s f2=%s): space=true direct=false",
				s1.Expr(), s2.Expr(), f1, f2)
		}
		if okSpace && okDirect {
			// Rewritten values must agree at a sample point.
			x := 0.5 + rng.Float64()*3
			direct, err := d.R.EvalWith(x, nil)
			if err == nil && !math.IsNaN(direct) {
				via := rSpace(x)
				if math.Abs(via-direct) > 1e-6*(1+math.Abs(direct)) {
					t.Fatalf("rewriting mismatch on %s vs %s: %v vs %v",
						s1.Expr(), s2.Expr(), via, direct)
				}
			}
			checked++
		}
	}
	if checked < 5 {
		t.Errorf("too few positive cross-checks: %d", checked)
	}
}

func TestMatchUnknownShape(t *testing.T) {
	sp := NewSpace(1)
	// Length-3 chain has no node in saggs_1.
	longChain := scalar.NewChain(scalar.PowerP(2), scalar.LogP(scalar.E), scalar.Linear(3))
	if _, _, ok := sp.Match(canonical.OpSum, longChain, "a"); ok {
		t.Error("length-3 chain should not match saggs_1")
	}
}

func TestDumpMentionsClasses(t *testing.T) {
	sp := NewSpace(1)
	d := sp.Dump()
	if len(d) == 0 || sp.NumClasses() == 0 || sp.NumEdges() == 0 {
		t.Errorf("dump/classes/edges empty: %d classes, %d edges", sp.NumClasses(), sp.NumEdges())
	}
}

func BenchmarkNewSpaceL2(b *testing.B) {
	// The paper reports 110 ms to precompute saggs_2 sharing relationships.
	for i := 0; i < b.N; i++ {
		NewSpace(2)
	}
}

func BenchmarkShareViaLookup(b *testing.B) {
	sp := NewSpace(2)
	f1 := scalar.NewChain(scalar.LogP(scalar.E))
	f2 := scalar.IdentityChain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sp.ShareVia(canonical.OpSum, f1, canonical.OpProd, f2); !ok {
			b.Fatal("share lost")
		}
	}
}
