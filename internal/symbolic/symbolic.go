// Package symbolic implements Section 5 of the SUDAF paper: symbolic
// representations of aggregation states and the precomputed l-bounded
// symbolic space saggs_l(X) with its sharing digraph (Figures 4 and 5).
//
// A symbolic state such as Σ p₂·x^p₁ stands for every concrete state of
// that shape (Σ 4x², Σ 9x², …). Sharing relationships between symbolic
// states are computed once, when a Space is built: a *strong* edge means
// every instance of the source shares every instance of the target; a
// *weak* edge carries parameter conditions (e.g. Σx^p shares Σp₂x^p₁ iff
// p = p₁). At query time, concrete states are matched to symbolic nodes
// by shape signature and the precomputed edges answer the sharing problem
// with two map lookups plus a numeric condition check — no expression
// transformations, which is the point of Section 5.1.
package symbolic

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sudaf/internal/canonical"
	"sudaf/internal/scalar"
	"sudaf/internal/sharing"
)

// State is a node of the symbolic space.
type State struct {
	ID int
	Op canonical.AggOp
	// F is the symbolic chain, with parameters named <prefix><position>.
	F scalar.Chain
	// Sig is the shape signature (op + primitive kinds).
	Sig string
}

// Expr renders the state, e.g. "sum[p2*x^p1]".
func (s *State) Expr() string {
	return s.Op.String() + "(" + s.F.Render("x") + ")"
}

// Edge is a precomputed sharing relationship: source shares target.
type Edge struct {
	From, To int
	// R is the rewriting chain over the renamed parameters: source
	// parameters are a1,a2,…, target parameters b1,b2,… .
	R scalar.Chain
	// Conds are the parameter conditions of a weak edge (empty = strong).
	Conds []sharing.Cond
}

// Strong reports whether the edge holds unconditionally.
func (e *Edge) Strong() bool { return len(e.Conds) == 0 }

// Space is the precomputed l-bounded symbolic space.
type Space struct {
	L      int
	States []*State
	// edges maps (from, to) to the sharing edge "from shares to".
	edges map[[2]int]*Edge
	// bySig indexes states by shape signature.
	bySig map[string][]*State
	// classRep maps a state ID to its equivalence-class representative.
	classRep []int
	// classes lists the members of each equivalence class, keyed by
	// representative ID.
	classes map[int][]int
}

// SpaceSizeBound returns the paper's bound 2(4^{l+1}-1)/3 on |saggs_l|.
func SpaceSizeBound(l int) int {
	return 2 * (pow4(l+1) - 1) / 3
}

func pow4(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 4
	}
	return out
}

// families are the parameterized primitive families of symbolic chains.
var families = []scalar.Kind{scalar.KLinear, scalar.KPower, scalar.KLog, scalar.KExp}

// genChains enumerates all symbolic chains of length exactly n with
// parameters named prefix1..prefixN (innermost first).
func genChains(n int, prefix string) []scalar.Chain {
	if n == 0 {
		return []scalar.Chain{scalar.IdentityChain()}
	}
	var out []scalar.Chain
	for _, tail := range genChains(n-1, prefix) {
		for _, k := range families {
			p := scalar.Prim{Kind: k, A: scalar.Param(fmt.Sprintf("%s%d", prefix, n))}
			out = append(out, tail.Then(p))
		}
	}
	return out
}

// Signature computes the shape signature of an op+chain: the aggregate op
// followed by the primitive kind sequence. Concrete states match symbolic
// nodes through equal signatures.
func Signature(op canonical.AggOp, f scalar.Chain) string {
	parts := make([]string, 0, len(f.Prims)+1)
	parts = append(parts, op.String())
	for _, p := range f.Prims {
		parts = append(parts, p.Kind.String())
	}
	return strings.Join(parts, ",")
}

// NewSpace builds saggs_l and precomputes every pairwise sharing
// relationship. l=2 (the paper's default) yields 42 states and runs in
// well under a second.
func NewSpace(l int) *Space {
	sp := &Space{
		L:     l,
		edges: map[[2]int]*Edge{},
		bySig: map[string][]*State{},
	}
	for n := 0; n <= l; n++ {
		for _, ch := range genChains(n, "p") {
			for _, op := range []canonical.AggOp{canonical.OpSum, canonical.OpProd} {
				st := &State{ID: len(sp.States), Op: op, F: ch, Sig: Signature(op, ch)}
				sp.States = append(sp.States, st)
				sp.bySig[st.Sig] = append(sp.bySig[st.Sig], st)
			}
		}
	}
	// Pairwise sharing decisions with disjoint parameter namespaces.
	for _, s1 := range sp.States {
		f1 := renameParams(s1.F, "a")
		for _, s2 := range sp.States {
			if s1.ID == s2.ID {
				continue
			}
			f2 := renameParams(s2.F, "b")
			d := sharing.Decide(s1.Op, f1, s2.Op, f2, true)
			if d.OK && validEdgeConds(d.Conds) {
				sp.edges[[2]int{s1.ID, s2.ID}] = &Edge{
					From: s1.ID, To: s2.ID, R: d.R, Conds: d.Conds,
				}
			}
		}
	}
	sp.computeClasses()
	return sp
}

// validEdgeConds enforces the ∀∃ semantics of symbolic sharing: "ss1
// shares ss2" means every instance of ss1 has SOME instance of ss2 it
// shares. A condition mentioning only source (a-prefixed) parameters
// would instead restrict which instances of ss1 qualify — e.g. Σx^p
// sharing Σx only when p=1 — so such edges are rejected. Conditions
// mentioning a target parameter remain solvable by choosing the target
// instance (the weak edges of Figure 4, e.g. p = p1).
func validEdgeConds(conds []sharing.Cond) bool {
	for _, c := range conds {
		params := map[string]bool{}
		scalar.CoefParams(c.C, params)
		hasTarget := false
		for p := range params {
			if strings.HasPrefix(p, "b") {
				hasTarget = true
			}
		}
		if !hasTarget {
			return false
		}
	}
	return true
}

// renameParams rewrites parameter names pK → prefixK.
func renameParams(c scalar.Chain, prefix string) scalar.Chain {
	prims := make([]scalar.Prim, len(c.Prims))
	for i, p := range c.Prims {
		prims[i] = scalar.Prim{Kind: p.Kind, A: renameCoef(p.A, prefix)}
	}
	return scalar.Chain{Prims: prims}
}

func renameCoef(c scalar.Coef, prefix string) scalar.Coef {
	switch t := c.(type) {
	case scalar.Param:
		return scalar.Param(prefix + strings.TrimPrefix(string(t), "p"))
	case scalar.OpCoef:
		out := scalar.OpCoef{Op: t.Op, L: renameCoef(t.L, prefix)}
		if t.R != nil {
			out.R = renameCoef(t.R, prefix)
		}
		return out
	default:
		return c
	}
}

// computeClasses partitions the space into equivalence classes (mutual
// sharing, strong or weak) and picks representatives: the member with the
// shortest chain, then fewest parameters, then lexicographic signature —
// matching the shaded nodes of Figure 4.
func (sp *Space) computeClasses() {
	n := len(sp.States)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for k := range sp.edges {
		if _, back := sp.edges[[2]int{k[1], k[0]}]; back {
			union(k[0], k[1])
		}
	}
	members := map[int][]int{}
	for i := 0; i < n; i++ {
		members[find(i)] = append(members[find(i)], i)
	}
	sp.classRep = make([]int, n)
	sp.classes = map[int][]int{}
	for _, ms := range members {
		rep := ms[0]
		for _, m := range ms[1:] {
			if better(sp.States[m], sp.States[rep]) {
				rep = m
			}
		}
		sort.Ints(ms)
		sp.classes[rep] = ms
		for _, m := range ms {
			sp.classRep[m] = rep
		}
	}
}

// better orders candidate representatives.
func better(a, b *State) bool {
	la, lb := a.F.Len(), b.F.Len()
	if la != lb {
		return la < lb
	}
	pa, pb := len(a.F.Params()), len(b.F.Params())
	if pa != pb {
		return pa < pb
	}
	return a.Sig < b.Sig
}

// Rep returns the representative state of id's equivalence class.
func (sp *Space) Rep(id int) *State { return sp.States[sp.classRep[id]] }

// Class returns the member IDs of the class represented by rep.
func (sp *Space) Class(rep int) []int { return sp.classes[sp.classRep[rep]] }

// NumClasses returns the number of equivalence classes.
func (sp *Space) NumClasses() int { return len(sp.classes) }

// EdgeBetween returns the precomputed edge "from shares to", if any.
func (sp *Space) EdgeBetween(from, to int) (*Edge, bool) {
	e, ok := sp.edges[[2]int{from, to}]
	return e, ok
}

// NumEdges returns the number of precomputed sharing relationships.
func (sp *Space) NumEdges() int { return len(sp.edges) }

// Match finds the symbolic node for a concrete op+chain and binds its
// parameters (prefixed with the given namespace) to the concrete
// coefficient values. The chain must consist of concrete coefficients.
func (sp *Space) Match(op canonical.AggOp, f scalar.Chain, prefix string) (*State, map[string]float64, bool) {
	sig := Signature(op, f)
	nodes := sp.bySig[sig]
	if len(nodes) == 0 {
		return nil, nil, false
	}
	st := nodes[0]
	bind := map[string]float64{}
	for i, p := range f.Prims {
		v, err := scalar.CEval(p.A, nil)
		if err != nil {
			return nil, nil, false // symbolic concrete mismatch
		}
		bind[fmt.Sprintf("%s%d", prefix, i+1)] = v
	}
	return st, bind, true
}

// ShareVia answers the runtime sharing problem through the precomputed
// digraph: does the concrete state (op1, f1) share (op2, f2)? On success
// it returns the rewriting as a ready-to-apply scalar function.
func (sp *Space) ShareVia(op1 canonical.AggOp, f1 scalar.Chain, op2 canonical.AggOp, f2 scalar.Chain) (func(float64) float64, bool) {
	n1, bind1, ok := sp.Match(op1, f1, "a")
	if !ok {
		return nil, false
	}
	n2, bind2, ok := sp.Match(op2, f2, "b")
	if !ok {
		return nil, false
	}
	e, ok := sp.EdgeBetween(n1.ID, n2.ID)
	if !ok {
		return nil, false
	}
	bind := make(map[string]float64, len(bind1)+len(bind2))
	for k, v := range bind1 {
		bind[k] = v
	}
	for k, v := range bind2 {
		bind[k] = v
	}
	for _, c := range e.Conds {
		v, err := scalar.CEval(c.C, bind)
		if err != nil || math.IsNaN(v) || math.Abs(v-c.Want) > 1e-9 {
			return nil, false
		}
	}
	r := e.R
	return func(x float64) float64 {
		v, err := r.EvalWith(x, bind)
		if err != nil {
			return math.NaN()
		}
		return v
	}, true
}

// Dump renders the digraph grouped by equivalence class, for the space
// inspection tool and EXPERIMENTS.md.
func (sp *Space) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "saggs_%d: %d states, %d sharing edges, %d equivalence classes\n",
		sp.L, len(sp.States), len(sp.edges), len(sp.classes))
	reps := make([]int, 0, len(sp.classes))
	for rep := range sp.classes {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	for _, rep := range reps {
		fmt.Fprintf(&sb, "class [%s]:\n", sp.States[rep].Expr())
		for _, m := range sp.classes[rep] {
			marker := "  "
			if m == rep {
				marker = " *"
			}
			fmt.Fprintf(&sb, "%s %s\n", marker, sp.States[m].Expr())
		}
	}
	return sb.String()
}
