package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"text/tabwriter"
	"time"

	"sudaf/internal/canonical"
	"sudaf/internal/core"
	"sudaf/internal/data"
	"sudaf/internal/exec"
	"sudaf/internal/window"
)

// WindowQueryResult is one end-to-end cell: a one-shot OVER query of a
// given frame size over the Milan stream. Aggregates whose per-row
// values are association-free on this data (min/max/count on positive
// traffic) ride the O(1) two-stacks combination, so their cost stays
// flat as the window grows. Sums over lognormal values are not exact
// under reassociation, so bit-identity with the cold executor forces
// the chunked per-frame refold — the O(window) bound shows in that row,
// matching the naive baseline by construction.
type WindowQueryResult struct {
	Query      string
	WindowRows int
	Rows       int
	QueryMS    float64
	MRowsPerS  float64
}

// WindowFoldResult is one core-level cell: the two-stacks Fold against
// a literal per-frame refold over the same stream, per canonical ⊕.
type WindowFoldResult struct {
	Stream     string // "integral" or "lognormal"
	Op         string
	WindowRows int
	// Per-emitted-frame costs. NaiveNs is measured over a capped frame
	// count (naive is O(window) per frame, so full runs are infeasible
	// by construction — which is the point).
	TwoStacksNs float64
	NaiveNs     float64
	Speedup     float64
	// FastPct is the share of emissions served by the O(1) two-stacks
	// combination; the rest fell back to the chunked in-order refold to
	// preserve bit-identity with the cold executor.
	FastPct float64
}

// windowSizes are the sliding frame sizes measured, in rows.
var windowSizes = []int{64, 1024, 16384}

// Window measures sliding-window streaming aggregation (docs/WINDOWS.md):
// first end-to-end one-shot OVER queries over the Milan stream, then the
// two-stacks core against naive per-frame recompute, then a live
// Subscribe throughput pass. Single-CPU caveat: like every experiment
// here, absolute numbers on a 1-CPU runner mostly reflect memory
// bandwidth; the shapes (flat vs linear in window size) are the result.
func (r *Runner) Window() ([]WindowQueryResult, []WindowFoldResult) {
	cfg := r.cfg
	rows := cfg.ConcRows

	sizes := make([]int, 0, len(windowSizes))
	for _, w := range windowSizes {
		if w < rows/2 {
			sizes = append(sizes, w)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{rows / 4}
	}

	// -- End to end: one-shot OVER queries, both fold regimes. --
	fmt.Fprintf(r.out, "\n== WINDOW: one-shot OVER queries, %d-row Milan stream, %d worker(s) ==\n",
		rows, cfg.Workers)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\twindow\tquery(ms)\tMrows/s\n")
	queries := []struct{ name, aggs string }{
		// Positive traffic keeps min/max/count association-free, so these
		// ride the fast path and the ms column stays flat in window size.
		{"min/max/count (fast path)", "min(internet_traffic), max(internet_traffic), count()"},
		// Lognormal sums reassociate inexactly, so bit-identity forces the
		// chunked refold: cost grows with the window, like naive recompute.
		{"sum/avg (refold bound)", "sum(internet_traffic), avg(internet_traffic)"},
	}
	var qres []WindowQueryResult
	for _, qs := range queries {
		for _, w := range sizes {
			// Fresh session per size: window partials cache under
			// frame-qualified fingerprints, so reuse would measure the
			// cache, not the fold.
			s := core.NewSession(core.Options{Workers: cfg.Workers,
				Metrics: cfg.Metrics, MetricsLabel: "window"})
			must(s.Register(data.Milan(rows, cfg.MilanSquares, cfg.Seed+7)))
			q := fmt.Sprintf("SELECT %s OVER (ROWS %d PRECEDING) FROM milan_data",
				qs.aggs, w-1)
			start := time.Now()
			_, err := s.Query(q, core.ModeShare)
			must(err)
			el := time.Since(start)
			wr := WindowQueryResult{
				Query:      qs.name,
				WindowRows: w,
				Rows:       rows,
				QueryMS:    float64(el.Microseconds()) / 1000,
			}
			if el > 0 {
				wr.MRowsPerS = float64(rows) / el.Seconds() / 1e6
			}
			qres = append(qres, wr)
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\n", qs.name, w, wr.QueryMS, wr.MRowsPerS)
		}
	}
	tw.Flush()

	// -- Core: two-stacks Fold vs naive per-frame refold. --
	fmt.Fprintf(r.out, "\n== WINDOW CORE: two-stacks fold vs naive per-frame recompute, %d rows ==\n", rows)
	tw = tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stream\top\twindow\ttwo-stacks(ns/frame)\tnaive(ns/frame)\tspeedup\tfast-path\n")

	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	integral := make([]float64, rows)
	lognormal := make([]float64, rows)
	for i := range integral {
		integral[i] = float64(1 + rng.Intn(1000))
		lognormal[i] = math.Exp(3 + 1.1*rng.NormFloat64())
	}
	streams := []struct {
		name string
		vals []float64
	}{{"integral", integral}, {"lognormal", lognormal}}
	ops := []struct {
		name string
		op   canonical.AggOp
	}{{"sum", canonical.OpSum}, {"min", canonical.OpMin}, {"max", canonical.OpMax}}

	var fres []WindowFoldResult
	var sink float64
	for _, st := range streams {
		for _, op := range ops {
			state := canonical.State{Op: op.op}
			for _, w := range sizes {
				f := window.New(state, exec.MorselRows)
				start := time.Now()
				for i, v := range st.vals {
					f.Push(v)
					if i >= w {
						f.Evict()
					}
					sink += f.Value()
				}
				two := time.Since(start)
				_, fast, refolds := f.Stats()

				// Naive bar: rebuild each frame from scratch. Cap the frame
				// count so the O(rows × window) loop stays ~10M updates.
				naiveFrames := len(st.vals) - w
				if budget := 10_000_000 / w; naiveFrames > budget {
					naiveFrames = budget
				}
				if naiveFrames < 1 {
					naiveFrames = 1
				}
				start = time.Now()
				for i := 0; i < naiveFrames; i++ {
					acc := state.MergeIdentity()
					for j := i; j < i+w; j++ {
						acc = state.Merge(acc, st.vals[j])
					}
					sink += acc
				}
				naive := time.Since(start)

				res := WindowFoldResult{
					Stream:      st.name,
					Op:          op.name,
					WindowRows:  w,
					TwoStacksNs: float64(two.Nanoseconds()) / float64(len(st.vals)),
					NaiveNs:     float64(naive.Nanoseconds()) / float64(naiveFrames),
					FastPct:     100 * float64(fast) / float64(fast+refolds),
				}
				if res.TwoStacksNs > 0 {
					res.Speedup = res.NaiveNs / res.TwoStacksNs
				}
				fres = append(fres, res)
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%.0fx\t%.1f%%\n",
					st.name, op.name, w, res.TwoStacksNs, res.NaiveNs, res.Speedup, res.FastPct)
			}
		}
	}
	tw.Flush()
	if sink == 0 {
		fmt.Fprintln(r.out, "(sink was zero)")
	}

	// -- Live: Subscribe throughput, appends racing a draining consumer.
	// The small window keeps per-row refold cost bounded; this section
	// measures streaming liveness, not fold asymptotics.
	r.windowSubscribe(sizes[0])
	return qres, fres
}

// windowSubscribe drives a live sliding subscription: a Milan base
// snapshot, then a stream of append batches, with the consumer draining
// emissions concurrently. Reported throughput is emitted window rows
// per second, snapshot included.
func (r *Runner) windowSubscribe(w int) {
	cfg := r.cfg
	base := cfg.ConcRows / 4
	if base < 1 {
		base = 1
	}
	batches := 20
	batchRows := cfg.ConcRows / 40
	if batchRows < 1 {
		batchRows = 1
	}
	total := base + batches*batchRows

	s := core.NewSession(core.Options{Workers: cfg.Workers,
		Metrics: cfg.Metrics, MetricsLabel: "window_sub"})
	must(s.Register(data.Milan(base, cfg.MilanSquares, cfg.Seed+7)))
	ctx := context.Background()

	start := time.Now()
	sub, err := s.Subscribe(ctx,
		fmt.Sprintf("SELECT sum(internet_traffic) OVER (ROWS %d PRECEDING), qm(internet_traffic) FROM milan_data", w-1),
		core.ModeShare)
	must(err)
	done := make(chan int)
	go func() {
		n := 0
		for wr := range sub.Results() {
			n += wr.Table.NumRows()
			if n >= total {
				break
			}
		}
		done <- n
	}()
	for i := 0; i < batches; i++ {
		_, err := s.Append(ctx, "milan_data",
			data.Milan(batchRows, cfg.MilanSquares, cfg.Seed+200+int64(i)))
		must(err)
	}
	emitted := <-done
	el := time.Since(start)
	sub.Close()
	must(s.Close(ctx))

	fmt.Fprintf(r.out, "\n== WINDOW SUBSCRIBE: ROWS %d PRECEDING over a live Milan stream ==\n", w-1)
	fmt.Fprintf(r.out, "base %d rows + %d appends × %d rows: %d window rows emitted in %v (%.2f Mrows/s)\n",
		base, batches, batchRows, emitted, el.Round(time.Millisecond),
		float64(emitted)/el.Seconds()/1e6)
}
