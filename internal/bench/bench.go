// Package bench reproduces the SUDAF paper's evaluation (Section 6):
// every figure's workload, parameter sweep and system comparison, over
// the synthetic TPC-DS-like and Milan-like datasets.
//
//	Fig 1 (a,b,c)  PostgreSQL-mode Q1 / Q2-after-Q1 / Q3-vs-RQ3'
//	Fig 2 (a,b,c)  the same in Spark mode (parallel partial aggregation)
//	Fig 6 / Fig 8  PostgreSQL-mode query models 1–3 × sequences AS1/AS2,
//	               total and per-query times for the three systems
//	Fig 7 / Fig 9  the same in Spark mode
//	Fig 10         a random 200-query sequence over 16 aggregates
//	Table 1        canonical forms derived from Table 1's expressions
//	Figures 4/5    the saggs_2 symbolic space and its equivalence classes
//
// The three systems are the paper's: the baseline (hardcoded UDAFs),
// SUDAF without sharing, and SUDAF with sharing. Absolute times depend
// on this machine; the *shape* (who wins, by what factor, where sharing
// collapses runtimes) is the reproduction target recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/data"
	"sudaf/internal/obs"
)

// Config sizes the experiments.
type Config struct {
	// PGScale is the TPC-DS scale factor for serial ("PostgreSQL") runs.
	PGScale int
	// SparkScale is the TPC-DS scale factor for parallel ("Spark") runs.
	SparkScale int
	// MilanRowsPG / MilanRowsSpark size the telecom table.
	MilanRowsPG    int
	MilanRowsSpark int
	// MilanSquares is the group cardinality of query model 2.
	MilanSquares int
	// Workers for the Spark-mode engine (0 = NumCPU).
	Workers int
	// Seed for dataset generation and the random sequence.
	Seed int64
	// Fig10Queries is the length of the random sequence (paper: 200).
	Fig10Queries int
	// ConcRows sizes the Milan table of the multi-client throughput
	// experiment (default 1.5M).
	ConcRows int
	// ConcSeconds is the time budget per (system, clients) cell of the
	// concurrent experiment (default 3s).
	ConcSeconds float64
	// Out receives the report (defaults to no output when nil... callers
	// pass os.Stdout).
	Out io.Writer
	// Metrics, when non-nil, is shared by both sessions so a scraper (see
	// sudaf-bench -metrics-addr) can watch the harness live. The serial
	// session registers under engine="pg", the parallel one under
	// engine="spark".
	Metrics *obs.Registry
}

// Defaults fills unset fields with laptop-scale values.
func (c *Config) Defaults() {
	if c.PGScale == 0 {
		c.PGScale = 2
	}
	if c.SparkScale == 0 {
		c.SparkScale = 4
	}
	if c.MilanRowsPG == 0 {
		c.MilanRowsPG = 4_000_000
	}
	if c.MilanRowsSpark == 0 {
		c.MilanRowsSpark = 8_000_000
	}
	if c.MilanSquares == 0 {
		c.MilanSquares = 10_000
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Seed == 0 {
		c.Seed = 20200330 // EDBT 2020 opening day
	}
	if c.Fig10Queries == 0 {
		c.Fig10Queries = 200
	}
	if c.ConcRows == 0 {
		c.ConcRows = 1_500_000
	}
	if c.ConcSeconds == 0 {
		c.ConcSeconds = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// Measurement is one timed query execution.
type Measurement struct {
	Exp     string // e.g. "fig1a"
	Label   string // e.g. "Q1" or "qm"
	System  string // baseline | sudaf-noshare | sudaf-share
	Seconds float64
	Rows    int // base rows scanned
}

// Runner owns the two sessions (serial and parallel) with data loaded.
type Runner struct {
	cfg      Config
	pg       *core.Session
	spark    *core.Session
	out      io.Writer
	Results  []Measurement
	haveData bool
}

// NewRunner builds sessions and datasets per the config.
func NewRunner(cfg Config) *Runner {
	cfg.Defaults()
	return &Runner{cfg: cfg, out: cfg.Out}
}

// session returns the serial or parallel session, building it (and its
// datasets) on first use.
func (r *Runner) session(spark bool) *core.Session {
	if !r.haveData {
		r.pg = core.NewSession(core.Options{Workers: 1,
			Metrics: r.cfg.Metrics, MetricsLabel: "pg"})
		r.spark = core.NewSession(core.Options{Workers: r.cfg.Workers,
			Metrics: r.cfg.Metrics, MetricsLabel: "spark"})
		for _, t := range data.TPCDS(r.cfg.PGScale, r.cfg.Seed) {
			must(r.pg.Register(t))
		}
		must(r.pg.Register(data.Milan(r.cfg.MilanRowsPG, r.cfg.MilanSquares, r.cfg.Seed+1)))
		for _, t := range data.TPCDS(r.cfg.SparkScale, r.cfg.Seed+2) {
			must(r.spark.Register(t))
		}
		must(r.spark.Register(data.Milan(r.cfg.MilanRowsSpark, r.cfg.MilanSquares, r.cfg.Seed+3)))
		r.haveData = true
	}
	if spark {
		return r.spark
	}
	return r.pg
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// run times one query.
func (r *Runner) run(s *core.Session, exp, label string, mode core.Mode, sql string) Measurement {
	start := time.Now()
	res, err := s.Query(sql, mode)
	if err != nil {
		panic(fmt.Sprintf("%s/%s (%v): %v", exp, label, mode, err))
	}
	m := Measurement{
		Exp: exp, Label: label, System: mode.String(),
		Seconds: time.Since(start).Seconds(), Rows: res.RowsScanned,
	}
	r.Results = append(r.Results, m)
	return m
}

// ---- the paper's queries ----

// Q1/Q2/Q3 of Section 2 (the TN predicate keeps half the stores).
const paperQ1 = `SELECT ss_item_sk, d_year, avg(ss_list_price),
	avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

// The cov/var alternative of Figure 1(a): theta1 = covar/var built-ins.
const paperQ1CovVar = `SELECT ss_item_sk, d_year, avg(ss_list_price),
	avg(ss_sales_price),
	covar_pop(ss_list_price, ss_sales_price)/var_pop(ss_list_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

const paperQ2 = `SELECT ss_item_sk, d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

const paperQ3 = `SELECT d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim, item
WHERE ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
	and ss_store_sk = s_store_sk and i_category = 'Sports'
	and s_state = 'TN' and d_year >= 2000
GROUP BY d_year`

// The view V1: Q1's data part holding the five partial aggregates
// (s1..s5 of RQ1; avg and theta1 contribute count, Σx, Σx², Σy, Σxy).
const paperV1 = `SELECT ss_item_sk, d_year, avg(ss_list_price),
	avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

// Fig1 reproduces Figure 1 (serial) or Figure 2 (parallel).
func (r *Runner) Fig1(spark bool) {
	exp := "fig1"
	engine := "PostgreSQL-mode (serial)"
	if spark {
		exp = "fig2"
		engine = "Spark-mode (parallel)"
	}
	s := r.session(spark)
	s.ClearCache()
	s.DropView("v1_states")

	fmt.Fprintf(r.out, "\n== %s: motivating example, %s ==\n", strings.ToUpper(exp), engine)

	// (a) Q1: UDAF vs cov/var vs SUDAF.
	a1 := r.run(s, exp+"a", "Q1 UDAF", core.ModeBaseline, paperQ1)
	a2 := r.run(s, exp+"a", "Q1 cov/var", core.ModeBaseline, paperQ1CovVar)
	a3 := r.run(s, exp+"a", "Q1 SUDAF", core.ModeRewrite, paperQ1)
	r.printRows("(a) Q1", []Measurement{a1, a2, a3})

	// (b) Q2 after Q1: baseline vs SUDAF no-share vs SUDAF share.
	b1 := r.run(s, exp+"b", "Q2 UDAF", core.ModeBaseline, paperQ2)
	b2 := r.run(s, exp+"b", "Q2 SUDAF (no share)", core.ModeRewrite, paperQ2)
	s.ClearCache()
	r.run(s, exp+"b", "Q1 warmup (share)", core.ModeShare, paperQ1)
	b3 := r.run(s, exp+"b", "Q2 SUDAF (share, after Q1)", core.ModeShare, paperQ2)
	r.printRows("(b) Q2 after Q1", []Measurement{b1, b2, b3})

	// (c) Q3 vs RQ3' (roll-up over the materialized state view V1).
	c1 := r.run(s, exp+"c", "Q3", core.ModeBaseline, paperQ3)
	s.SetViewRewriting(false)
	c2 := r.run(s, exp+"c", "Q3 SUDAF (no view)", core.ModeRewrite, paperQ3)
	must(s.Materialize("v1_states", paperV1))
	s.SetViewRewriting(true)
	s.ClearCache() // isolate the view effect from the state cache
	c3 := r.run(s, exp+"c", "RQ3' (view roll-up)", core.ModeRewrite, paperQ3)
	r.printRows("(c) Q3 vs RQ3'", []Measurement{c1, c2, c3})
	s.DropView("v1_states")
}

// ---- query models and aggregate sequences (Figures 6–9) ----

var (
	// AS1 and AS2 are the paper's two execution orders.
	AS1 = []string{"cm", "qm", "gm", "hm", "min", "max", "count", "std", "var", "sum", "avg"}
	AS2 = []string{"max", "min", "sum", "avg", "count", "std", "var", "cm", "gm", "hm", "qm"}
)

// aggSQL renders one aggregate call for a query model.
func aggSQL(agg, col string) string {
	if agg == "count" {
		return "count(*)"
	}
	return agg + "(" + col + ")"
}

// queryModel renders query model m (1..3) instantiated with agg.
func queryModel(m int, agg string) string {
	switch m {
	case 1:
		return "SELECT " + aggSQL(agg, "internet_traffic") + " FROM milan_data"
	case 2:
		return "SELECT square_id, " + aggSQL(agg, "internet_traffic") +
			" FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 20"
	case 3:
		return `SELECT i_item_id, ` + aggSQL(agg, "ss_quantity") + ` agg1, ` +
			aggSQL(agg, "ss_list_price") + ` agg2, ` +
			aggSQL(agg, "ss_coupon_amt") + ` agg3, ` +
			aggSQL(agg, "ss_sales_price") + ` agg4
FROM store_sales, customer_demographics, date_dim, item, promotion
WHERE ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk and
	ss_cdemo_sk = cd_demo_sk and ss_promo_sk = p_promo_sk and
	cd_gender = 'M' and cd_marital_status = 'S' and
	cd_education_status = 'College' and
	(p_channel_email = 'N' or p_channel_event = 'N') and d_year = 2000
GROUP BY i_item_id ORDER BY i_item_id LIMIT 100`
	}
	panic("bad query model")
}

// prefetchSQL builds the moment-sketch prefetch query for a model's data
// part (the paper prefetches MS(k=10) before AS2).
func prefetchSQL(m int) string {
	switch m {
	case 1:
		return "SELECT moment_sketch(internet_traffic) FROM milan_data"
	case 2:
		return "SELECT square_id, moment_sketch(internet_traffic) FROM milan_data GROUP BY square_id"
	case 3:
		return queryModel(3, "moment_sketch")
	}
	panic("bad query model")
}

// SequenceResult is one (model, sequence, system) run.
type SequenceResult struct {
	Model    int
	Sequence string
	System   string
	PerQuery []Measurement
	Total    float64
	Prefetch float64 // seconds spent prefetching MS (AS2+share only)
}

// RunSequences reproduces Figures 6–9's data: for each query model and
// each sequence, the three systems' per-query and total times.
func (r *Runner) RunSequences(spark bool) []SequenceResult {
	exp := "fig6/8"
	if spark {
		exp = "fig7/9"
	}
	s := r.session(spark)
	var out []SequenceResult
	for _, model := range []int{1, 2, 3} {
		for _, seq := range []struct {
			name string
			aggs []string
		}{{"AS1", AS1}, {"AS2", AS2}} {
			for _, mode := range []core.Mode{core.ModeBaseline, core.ModeRewrite, core.ModeShare} {
				s.ClearCache()
				sr := SequenceResult{Model: model, Sequence: seq.name, System: mode.String()}
				if mode == core.ModeShare && seq.name == "AS2" {
					// Prefetch the moment sketch (excluded from totals, as
					// in the paper; we still record it).
					start := time.Now()
					_, err := s.Query(prefetchSQL(model), core.ModeShare)
					must(err)
					sr.Prefetch = time.Since(start).Seconds()
				}
				for _, agg := range seq.aggs {
					m := r.run(s, fmt.Sprintf("%s-m%d-%s", exp, model, seq.name),
						agg, mode, queryModel(model, agg))
					sr.PerQuery = append(sr.PerQuery, m)
					sr.Total += m.Seconds
				}
				out = append(out, sr)
			}
		}
	}
	return out
}

// Fig6and8 runs and prints the serial sequence experiments; Fig7and9 the
// parallel ones.
func (r *Runner) Fig6and8(spark bool) []SequenceResult {
	label := "FIG6 (totals) + FIG8 (per query), PostgreSQL-mode"
	if spark {
		label = "FIG7 (totals) + FIG9 (per query), Spark-mode"
	}
	results := r.RunSequences(spark)
	fmt.Fprintf(r.out, "\n== %s ==\n", label)
	// Totals (Fig 6/7).
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tsequence\tsystem\ttotal(s)\tprefetch(s)\n")
	for _, sr := range results {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%.3f\n", sr.Model, sr.Sequence, sr.System, sr.Total, sr.Prefetch)
	}
	tw.Flush()
	// Per-query (Fig 8/9).
	for _, sr := range results {
		fmt.Fprintf(r.out, "\nmodel %d %s %s:", sr.Model, sr.Sequence, sr.System)
		for _, m := range sr.PerQuery {
			fmt.Fprintf(r.out, " %s=%.4fs", m.Label, m.Seconds)
		}
		fmt.Fprintln(r.out)
	}
	return results
}

// Fig10Aggs are the 16 aggregates of the random sequence.
var Fig10Aggs = []string{
	"min", "max", "sum", "avg", "hm", "qm", "cm", "gm", "std", "var",
	"skewness", "kurtosis", "approx_median", "count",
	"approx_first_quantile", "approx_thrid_quantile",
}

// Fig10 runs the random 200-query sequence over query model 2 in Spark
// mode, for the three systems, and prints summary statistics.
func (r *Runner) Fig10() {
	s := r.session(true)
	// The paper's list includes "approx_thrid_quantile" (sic); register
	// the alias so the workload strings match.
	_ = s.DefineSketchUDAF("approx_thrid_quantile", 10, 0.75)

	rng := rand.New(rand.NewSource(r.cfg.Seed + 10))
	seq := make([]string, r.cfg.Fig10Queries)
	for i := range seq {
		seq[i] = Fig10Aggs[rng.Intn(len(Fig10Aggs))]
	}
	fmt.Fprintf(r.out, "\n== FIG10: random %d-query sequence, Spark-mode, query model 2 ==\n", len(seq))
	type summary struct {
		total, mean, p50, p95 float64
	}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeRewrite, core.ModeShare} {
		s.ClearCache()
		times := make([]float64, 0, len(seq))
		total := 0.0
		for i, agg := range seq {
			m := r.run(s, "fig10", fmt.Sprintf("%03d:%s", i, agg), mode, queryModel(2, agg))
			times = append(times, m.Seconds)
			total += m.Seconds
		}
		sorted := append([]float64{}, times...)
		sort.Float64s(sorted)
		sum := summary{
			total: total,
			mean:  total / float64(len(times)),
			p50:   sorted[len(sorted)/2],
			p95:   sorted[len(sorted)*95/100],
		}
		fmt.Fprintf(r.out, "%-14s total=%8.3fs  mean=%8.4fs  p50=%8.4fs  p95=%8.4fs\n",
			mode.String(), sum.total, sum.mean, sum.p50, sum.p95)
	}
}

// Table1 prints the canonical forms SUDAF derives for the paper's
// Table 1 aggregations.
func (r *Runner) Table1() {
	s := core.NewSession(core.Options{Workers: 1})
	extra := []struct {
		name   string
		params []string
		body   string
	}{
		{"power_mean_p3", []string{"x"}, "(sum(x^3)/n)^(1/3)"},
		{"central_moment_2", []string{"x"}, "sum(x^2)/n - (sum(x)/n)^2"},
		{"stddev_t1", []string{"x"}, "sqrt(sum(x^2)/n - (sum(x)/n)^2)"},
	}
	for _, e := range extra {
		must(s.DefineUDAF(e.name, e.params, e.body))
	}
	fmt.Fprintf(r.out, "\n== TABLE 1: derived canonical forms ==\n")
	names := []string{"power_mean_p3", "gm", "stddev_t1", "central_moment_2",
		"logsumexp", "skewness", "covariance", "correlation"}
	for _, n := range names {
		f, ok := s.UDAF(n)
		if !ok {
			continue
		}
		fmt.Fprintf(r.out, "%s\n", f)
	}
}

// Space prints the symbolic sharing space (Figures 4/5).
func (r *Runner) Space() {
	s := core.NewSession(core.Options{Workers: 1})
	fmt.Fprintf(r.out, "\n== FIGURES 4/5: symbolic space saggs_2 ==\n%s", s.Space().Dump())
}

// printRows renders a block of measurements.
func (r *Runner) printRows(title string, ms []Measurement) {
	fmt.Fprintf(r.out, "%s\n", title)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	for _, m := range ms {
		fmt.Fprintf(tw, "  %s\t%s\t%.4f s\trows=%d\n", m.Label, m.System, m.Seconds, m.Rows)
	}
	tw.Flush()
}

// All runs every experiment.
func (r *Runner) All() {
	r.Table1()
	r.Space()
	r.Fig1(false)
	r.Fig1(true)
	r.Fig6and8(false)
	r.Fig6and8(true)
	r.Fig10()
}
