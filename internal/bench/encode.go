package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/storage"
)

// EncodeResult captures the storage-engine-v2 micro-benchmark: scan
// throughput aggregating directly over encoded segments (run-folds)
// versus the dense batch kernels, plus the persistence round-trip
// (segment files vs CSV, and the warm-cache restart).
type EncodeResult struct {
	Rows            int
	FoldSeconds     float64 // encoded-fold scan, best of 3
	DenseSeconds    float64 // dense-kernel scan, best of 3
	SaveSeconds     float64 // Session.Save (segments + cache snapshot)
	SegLoadSeconds  float64 // full restore from segment files
	CSVLoadSeconds  float64 // loading the same table from CSV (control)
	WarmRowsScanned int     // rows scanned by the first post-restart query
}

// Speedup is the encoded-over-dense scan throughput ratio.
func (e EncodeResult) Speedup() float64 {
	if e.FoldSeconds <= 0 {
		return 0
	}
	return e.DenseSeconds / e.FoldSeconds
}

// encodeTable builds the run-heavy measurement table: qty carries long
// integral runs (every fold engages), price is high-entropy (folds
// decline, keeping the dense path honest in the same query plan).
func encodeTable(rows int, seed int64) *storage.Table {
	tbl := storage.NewTable("encbench",
		storage.NewColumn("qty", storage.KindFloat),
		storage.NewColumn("price", storage.KindFloat))
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < rows; i++ {
		tbl.Col("qty").AppendFloat(float64(1 + (i/1024)%7))
		x = x*2862933555777941757 + 3037000493
		tbl.Col("price").AppendFloat(float64(x%100000) / 100)
	}
	tbl.Seal()
	return tbl
}

// Encode runs the storage-v2 experiment: encoded-segment folds vs dense
// kernels over MilanRowsPG rows, then the persistence round-trip with a
// warm-cache restart.
func (r *Runner) Encode() EncodeResult {
	rows := r.cfg.MilanRowsPG
	er := EncodeResult{Rows: rows}
	fmt.Fprintf(r.out, "\n== ENCODE: aggregation over encoded segments + persistent restart, %d rows ==\n", rows)

	s := core.NewSession(core.Options{Workers: 1})
	must(s.Register(encodeTable(rows, r.cfg.Seed+41)))
	const q = `SELECT count(), sum(qty), min(qty), max(qty) FROM encbench;`
	measure := func(folds bool) float64 {
		s.SetEncodedFolds(folds)
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			s.ClearCache()
			start := time.Now()
			if _, err := s.Query(q, core.ModeShare); err != nil {
				panic(fmt.Sprintf("encode bench: %v", err))
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		return best
	}
	er.DenseSeconds = measure(false)
	er.FoldSeconds = measure(true)
	fmt.Fprintf(r.out, "scan     folds=%8.2f Mrows/s  dense=%8.2f Mrows/s  speedup=%5.2fx\n",
		float64(rows)/er.FoldSeconds/1e6, float64(rows)/er.DenseSeconds/1e6, er.Speedup())

	// Persistence: save, restart, and answer the same query warm.
	dir, err := os.MkdirTemp("", "sudaf-encode-bench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	ps := core.NewSession(core.Options{Workers: 1, DataDir: dir})
	must(ps.Register(encodeTable(rows, r.cfg.Seed+41)))
	if _, err := ps.Query(q, core.ModeShare); err != nil {
		panic(err)
	}
	start := time.Now()
	if err := ps.Save(); err != nil {
		panic(err)
	}
	er.SaveSeconds = time.Since(start).Seconds()

	start = time.Now()
	warm := core.NewSession(core.Options{Workers: 1, DataDir: dir})
	if err := warm.LoadError(); err != nil {
		panic(err)
	}
	er.SegLoadSeconds = time.Since(start).Seconds()
	res, err := warm.Query(q, core.ModeShare)
	if err != nil {
		panic(err)
	}
	er.WarmRowsScanned = res.RowsScanned

	// CSV control: the same table through the text path.
	csvPath := filepath.Join(dir, "encbench.csv")
	tbl, err := warm.Catalog().Table("encbench")
	if err != nil {
		panic(err)
	}
	must(tbl.SaveCSVFile(csvPath))
	start = time.Now()
	if _, err := storage.LoadCSVFile("encbench", csvPath); err != nil {
		panic(err)
	}
	er.CSVLoadSeconds = time.Since(start).Seconds()

	fmt.Fprintf(r.out, "persist  save=%.3fs  seg-restore=%.3fs  csv-load=%.3fs (%.1fx)  warm-query rows scanned=%d\n",
		er.SaveSeconds, er.SegLoadSeconds, er.CSVLoadSeconds,
		er.CSVLoadSeconds/math.Max(er.SegLoadSeconds, 1e-9), er.WarmRowsScanned)
	return er
}
