package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/data"
)

// ShardResult is one scatter-gather measurement: a cold share-mode query
// sequence at a given shard count, and (for sharded rows) the same
// sequence rerun after a "shard reboot" — session cache dropped, ONE
// worker's partial cache dropped — so the other shards serve from their
// maintained partials and only 1/n of the rows rescan.
type ShardResult struct {
	Shards  int
	ColdMS  float64
	WarmMS  float64 // rebooted-shard rerun; 0 for the unsharded row
	Speedup float64 // ColdMS / WarmMS
}

// shardAggs is the query-model-2 sequence: distinct aggregates whose
// states overlap pairwise, so the sequence exercises both scatter
// compute and per-shard Theorem 4.1 probes.
var shardAggs = []string{"qm", "avg", "std", "sum", "min", "max"}

// Shard measures scatter-gather aggregation on the Milan workload.
//
// The cold rows are the scale-out shape: the same sequence at 1, 2 and
// 4 shards, each on a fresh session. In a 1-CPU container the per-shard
// scans serialize, so cold wall time stays roughly flat — the column
// records coordination overhead, not speedup.
//
// The headline is the rebooted-shard rerun: after the cold pass every
// worker holds its shard's partials, so dropping the session cache plus
// one worker's cache leaves n-1 shards answering ⊕-exact from cache
// while only the rebooted shard rescans its row range. That is the
// fault-recovery story sharding buys even without extra cores.
func (r *Runner) Shard() []ShardResult {
	cfg := r.cfg
	rows := cfg.ConcRows

	queries := make([]string, 0, len(shardAggs))
	for _, agg := range shardAggs {
		queries = append(queries, queryModel(2, agg))
	}
	runSeq := func(s *core.Session) time.Duration {
		start := time.Now()
		for _, q := range queries {
			_, err := s.Query(q, core.ModeShare)
			must(err)
		}
		return time.Since(start)
	}

	fmt.Fprintf(r.out, "\n== SHARD: scatter-gather over %d-row Milan, %d-query share-mode sequence, %d squares ==\n",
		rows, len(queries), cfg.MilanSquares)
	fmt.Fprintf(r.out, "(cold column is scale-out shape only: with one CPU the per-shard scans serialize;\n")
	fmt.Fprintf(r.out, " warm column reruns after rebooting one shard — the others answer from partials)\n")
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "shards\tcold(ms)\trebooted-warm(ms)\tspeedup\n")

	var out []ShardResult
	for _, n := range []int{1, 2, 4} {
		s := core.NewSession(core.Options{Workers: 1, Shards: n,
			Metrics: cfg.Metrics, MetricsLabel: fmt.Sprintf("shard%d", n)})
		must(s.Register(data.Milan(rows, cfg.MilanSquares, cfg.Seed+13)))

		cold := runSeq(s)
		res := ShardResult{Shards: n, ColdMS: float64(cold.Microseconds()) / 1000}
		r.Results = append(r.Results, Measurement{Exp: "shard",
			Label: fmt.Sprintf("%dshard-cold", n), System: "sudaf-share", Seconds: cold.Seconds(), Rows: rows})

		if n > 1 {
			s.ClearCache()         // session cache: every query must replan
			s.ClearShardWorker(n - 1) // one shard reboots; peers stay warm
			if ex, err := s.ExplainQuery(queries[0], core.ModeShare); err == nil {
				for _, es := range ex.Shards {
					fmt.Fprintf(r.out, "  shard %d: rows=%d cache=%s\n",
						es.Index, es.Rows, strings.Join(es.Hits, ","))
				}
			}
			warm := runSeq(s)
			res.WarmMS = float64(warm.Microseconds()) / 1000
			if res.WarmMS > 0 {
				res.Speedup = res.ColdMS / res.WarmMS
			}
			r.Results = append(r.Results, Measurement{Exp: "shard",
				Label: fmt.Sprintf("%dshard-rebooted", n), System: "sudaf-share", Seconds: warm.Seconds(), Rows: rows / n})
		}

		if res.WarmMS > 0 {
			fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.1fx\n", res.Shards, res.ColdMS, res.WarmMS, res.Speedup)
		} else {
			fmt.Fprintf(tw, "%d\t%.2f\t-\t-\n", res.Shards, res.ColdMS)
		}
		if n == 4 {
			st := s.ShardStats()
			fmt.Fprintf(tw, "\t(4-shard stats: queries=%d scans=%d full_hits=%d rows_scanned=%d)\n",
				st.Queries, st.Scans, st.FullHits, st.RowsScanned)
		}
		out = append(out, res)
	}
	tw.Flush()
	return out
}
