package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner builds a runner at smoke-test scale.
func tinyRunner() (*Runner, *bytes.Buffer) {
	var buf bytes.Buffer
	r := NewRunner(Config{
		PGScale:        1,
		SparkScale:     1,
		MilanRowsPG:    60_000,
		MilanRowsSpark: 80_000,
		MilanSquares:   200,
		Fig10Queries:   12,
		Out:            &buf,
	})
	return r, &buf
}

func TestFig1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	r, buf := tinyRunner()
	r.Fig1(false)
	out := buf.String()
	for _, want := range []string{"Q1 UDAF", "cov/var", "RQ3'", "(b) Q2 after Q1"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
	// The share run of Q2 must touch zero rows.
	for _, m := range r.Results {
		if m.Exp == "fig1b" && strings.Contains(m.Label, "share, after Q1") && m.Rows != 0 {
			t.Errorf("Q2 after Q1 scanned %d rows", m.Rows)
		}
	}
}

func TestSequencesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	r, _ := tinyRunner()
	results := r.RunSequences(false)
	if len(results) != 18 { // 3 models × 2 sequences × 3 systems
		t.Fatalf("got %d sequence results", len(results))
	}
	for _, sr := range results {
		if len(sr.PerQuery) != 11 {
			t.Fatalf("model %d %s %s: %d queries", sr.Model, sr.Sequence, sr.System, len(sr.PerQuery))
		}
		if sr.Total <= 0 {
			t.Errorf("model %d %s %s: zero total", sr.Model, sr.Sequence, sr.System)
		}
	}
	// The sharing system must beat no-share on every (model, sequence):
	// at tiny scale allow ties but require a win on total across all.
	var shareTotal, noShareTotal float64
	for _, sr := range results {
		switch sr.System {
		case "sudaf-share":
			shareTotal += sr.Total
		case "sudaf-noshare":
			noShareTotal += sr.Total
		}
	}
	if shareTotal >= noShareTotal {
		t.Errorf("sharing (%.4fs) should beat no-share (%.4fs) overall", shareTotal, noShareTotal)
	}
	// AS2+share: the prefetched sketch must leave only hm touching data.
	for _, sr := range results {
		if sr.Sequence != "AS2" || sr.System != "sudaf-share" {
			continue
		}
		for _, m := range sr.PerQuery {
			if m.Label == "hm" {
				if m.Rows == 0 {
					t.Errorf("model %d: hm should scan (Σx⁻¹ not in sketch)", sr.Model)
				}
			} else if m.Rows != 0 {
				t.Errorf("model %d: %s scanned %d rows despite the prefetched sketch",
					sr.Model, m.Label, m.Rows)
			}
		}
	}
}

func TestBatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	r, buf := tinyRunner()
	results := r.Batch()
	if len(results) != 3 {
		t.Fatalf("got %d batch results", len(results))
	}
	if !strings.Contains(buf.String(), "fused scans") {
		t.Error("batch report missing the fused-scan column")
	}
	for _, br := range results {
		// One fused scan serves the whole overlapping batch, so the batch
		// scans strictly fewer rows than N sequential cold queries.
		if br.BatchScans != 1 {
			t.Errorf("%s: %d fused scans, want 1", br.System, br.BatchScans)
		}
		if br.BatchRows >= br.SeqRows {
			t.Errorf("%s: batch scanned %d rows, sequential %d — batch must scan fewer",
				br.System, br.BatchRows, br.SeqRows)
		}
	}
}

func TestTable1AndSpace(t *testing.T) {
	r, buf := tinyRunner()
	r.Table1()
	r.Space()
	out := buf.String()
	for _, want := range []string{"gm =", "covariance =", "saggs_2: 42 states", "equivalence classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestQueryModelSQL(t *testing.T) {
	for m := 1; m <= 3; m++ {
		q := queryModel(m, "qm")
		if !strings.Contains(q, "qm(") {
			t.Errorf("model %d: %q", m, q)
		}
	}
	if q := queryModel(1, "count"); !strings.Contains(q, "count(*)") {
		t.Errorf("count rendering: %q", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad model should panic")
		}
	}()
	queryModel(9, "qm")
}
