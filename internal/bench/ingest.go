package bench

import (
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/data"
)

// IngestResult is one delta-ratio measurement: the cost of keeping the
// warm state cache current via monoid delta maintenance (Append) versus
// recomputing the same cached states from scratch on the grown table.
type IngestResult struct {
	BaseRows  int
	DeltaRows int
	// MaintainMS times Append: delta partial states + ⊕-merge into every
	// warm cache entry. RecomputeMS times a cold share-mode pass over the
	// full post-append table for the same query set.
	MaintainMS  float64
	RecomputeMS float64
	Speedup  float64
	Migrated int
	// States counts individual ⊕-folded state vectors: the eight warm
	// queries share one data-part entry, so expect few entries, many states.
	States int
}

// ingestDenoms are the delta:base ratios measured, largest delta first.
var ingestDenoms = []int{10, 100, 1000, 10000}

// Ingest measures incremental ingestion: a warm share-mode session
// absorbs an append batch of shrinking size. Delta maintenance does work
// proportional to the delta, recompute does work proportional to the
// whole table, so the margin must widen as the ratio shrinks — that gap
// is what makes a maintained state cache viable under streaming loads.
func (r *Runner) Ingest() []IngestResult {
	cfg := r.cfg
	rows := cfg.ConcRows
	ctx := context.Background()

	queries := make([]string, 0, len(concurrentAggs))
	for _, agg := range concurrentAggs {
		queries = append(queries, queryModel(2, agg))
	}

	fmt.Fprintf(r.out, "\n== INGEST: delta maintenance vs recompute, %d-row Milan base, %d warm queries, %d worker(s) ==\n",
		rows, len(queries), cfg.Workers)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "delta:base\tdelta rows\tmaintain(ms)\trecompute(ms)\tspeedup\tentries\tstates\n")

	var out []IngestResult
	for i, den := range ingestDenoms {
		deltaRows := rows / den
		if deltaRows < 1 {
			deltaRows = 1
		}
		// Fresh session per ratio: same base, same warm set, so cells are
		// comparable and earlier appends don't compound the base size.
		// Same label per ratio: re-registration replaces the previous
		// session's series, so a scraper follows the live one.
		s := core.NewSession(core.Options{Workers: cfg.Workers,
			Metrics: cfg.Metrics, MetricsLabel: "ingest"})
		must(s.Register(data.Milan(rows, cfg.MilanSquares, cfg.Seed+7)))
		for _, q := range queries {
			_, err := s.Query(q, core.ModeShare)
			must(err)
		}
		delta := data.Milan(deltaRows, cfg.MilanSquares, cfg.Seed+100+int64(i))

		start := time.Now()
		ares, err := s.Append(ctx, "milan_data", delta)
		must(err)
		maintain := time.Since(start)
		if ares.EntriesMigrated == 0 {
			panic(fmt.Sprintf("ingest bench: no entries migrated (events %v)", ares.Events))
		}

		// Recompute bar: the same states rebuilt from zero over the grown
		// table (what invalidation-on-append would force on first touch).
		s.ClearCache()
		start = time.Now()
		for _, q := range queries {
			_, err := s.Query(q, core.ModeShare)
			must(err)
		}
		recompute := time.Since(start)

		ir := IngestResult{
			BaseRows:    rows,
			DeltaRows:   deltaRows,
			MaintainMS:  float64(maintain.Microseconds()) / 1000,
			RecomputeMS: float64(recompute.Microseconds()) / 1000,
			Migrated:    ares.EntriesMigrated,
			States:      ares.StatesMaintained,
		}
		if ir.MaintainMS > 0 {
			ir.Speedup = ir.RecomputeMS / ir.MaintainMS
		}
		out = append(out, ir)
		fmt.Fprintf(tw, "1:%d\t%d\t%.2f\t%.2f\t%.1fx\t%d\t%d\n",
			den, ir.DeltaRows, ir.MaintainMS, ir.RecomputeMS, ir.Speedup, ir.Migrated, ir.States)
	}
	tw.Flush()
	return out
}
