package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/data"
)

// concurrentAggs is the workload mix for the multi-client experiment:
// aggregates whose states overlap heavily (qm/std/var/avg share Σx², Σx
// and n), so share mode serves most of the fleet from the cache.
var concurrentAggs = []string{"qm", "std", "var", "avg", "cm", "apm", "sum", "count"}

// ConcurrentResult is one (system, clients) throughput measurement.
type ConcurrentResult struct {
	System  string
	Clients int
	Queries int
	Seconds float64
	// QPS is aggregate throughput: Queries / Seconds.
	QPS float64
}

// Concurrent measures multi-client query throughput: C client goroutines
// issue aggregate queries against one shared session for a fixed time
// budget, for C ∈ {1, 2, 4, 8}, in each of the three systems. The
// dataset is the 1.5M-row Milan-like table; the per-client work is query
// model 2's shape (GROUP BY square_id, ORDER BY + LIMIT 20). Share mode
// is warmed with one pass first, so the measured steady state is what a
// serving deployment sees: exact and Theorem 4.1 cache hits, with the
// striped cache and per-query contexts carrying the concurrency. The
// scaling factor from 1 to 4 clients is printed per system; meaningful
// scaling requires multiple CPUs (GOMAXPROCS is printed alongside — on
// one core the experiment degenerates to a fairness check).
func (r *Runner) Concurrent() []ConcurrentResult {
	cfg := r.cfg
	rows := cfg.ConcRows
	s := core.NewSession(core.Options{Workers: cfg.Workers,
		Metrics: cfg.Metrics, MetricsLabel: "concurrent"})
	must(s.Register(data.Milan(rows, cfg.MilanSquares, cfg.Seed+7)))

	queries := make([]string, 0, len(concurrentAggs))
	for _, agg := range concurrentAggs {
		queries = append(queries, queryModel(2, agg))
	}
	budget := time.Duration(cfg.ConcSeconds * float64(time.Second))

	fmt.Fprintf(r.out, "\n== CONCURRENT: multi-client throughput, %d-row Milan, %.1fs/cell, %d worker(s) ==\n",
		rows, budget.Seconds(), cfg.Workers)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "system\tclients\tqueries\ttime(s)\tqps\n")

	var out []ConcurrentResult
	scaling := map[string]map[int]float64{}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeRewrite, core.ModeShare} {
		perClients := map[int]float64{}
		for _, clients := range []int{1, 2, 4, 8} {
			s.ClearCache()
			if mode == core.ModeShare {
				// Warm pass: populate the cache so the measurement is the
				// serving steady state, not first-touch computation.
				for _, q := range queries {
					_, err := s.Query(q, mode)
					must(err)
				}
			}
			var next, done atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			deadline := start.Add(budget)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for time.Now().Before(deadline) {
						i := int(next.Add(1)) - 1
						_, err := s.Query(queries[i%len(queries)], mode)
						must(err)
						done.Add(1)
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			n := int(done.Load())
			cr := ConcurrentResult{
				System: mode.String(), Clients: clients, Queries: n,
				Seconds: elapsed, QPS: float64(n) / elapsed,
			}
			out = append(out, cr)
			perClients[clients] = cr.QPS
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.1f\n", cr.System, cr.Clients, cr.Queries, cr.Seconds, cr.QPS)
		}
		scaling[mode.String()] = perClients
	}
	tw.Flush()
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeRewrite, core.ModeShare} {
		pc := scaling[mode.String()]
		if pc[1] > 0 {
			fmt.Fprintf(r.out, "%-14s 1→4 client scaling: %.2fx\n", mode.String(), pc[4]/pc[1])
		}
	}
	return out
}
