package bench

import (
	"sync"
	"testing"

	"sudaf/internal/core"
	"sudaf/internal/data"
)

func TestKernelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	r, buf := tinyRunner()
	kr := r.Kernel()
	if len(kr.Rewrite) != 2*len(KernelAggs) || len(kr.Baseline) != 2*len(KernelAggs) {
		t.Fatalf("got %d rewrite / %d baseline measurements", len(kr.Rewrite), len(kr.Baseline))
	}
	if kr.Speedup() <= 0 {
		t.Error("speedup not computed")
	}
	for _, want := range []string{"== KERNEL", "rewrite  qm", "baseline qm", "geomean"} {
		if out := buf.String(); !containsStr(out, want) {
			t.Errorf("kernel output missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ---- the Fig 10-adjacent kernel micro-benchmark (≥1M rows) ----

var (
	kernelOnce sync.Once
	kernelSess *core.Session
)

// kernelSession loads 1.5M Milan rows once for all kernel benchmarks.
func kernelSession(b *testing.B) *core.Session {
	b.Helper()
	kernelOnce.Do(func() {
		kernelSess = core.NewSession(core.Options{Workers: 0})
		s := kernelSess
		if err := s.Register(data.Milan(1_500_000, 500, 7)); err != nil {
			panic(err)
		}
	})
	return kernelSess
}

func benchKernelQuery(b *testing.B, mode core.Mode, vectorized bool) {
	s := kernelSession(b)
	s.SetVectorizedKernels(vectorized)
	defer s.SetVectorizedKernels(true)
	sql := queryModel(2, "qm")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		if _, err := s.Query(sql, mode); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1_500_000 * 8) // value column bytes per query, for MB/s
}

// The acceptance pair: Rewrite-mode group-by qm over 1.5M rows, batch
// kernels vs tuple-at-a-time. The vectorized run must be ≥ 2× faster.
func BenchmarkKernel_Rewrite_Vectorized(b *testing.B) { benchKernelQuery(b, core.ModeRewrite, true) }
func BenchmarkKernel_Rewrite_Tuple(b *testing.B)      { benchKernelQuery(b, core.ModeRewrite, false) }

// Baseline controls: interpreted per-tuple UDAFs never vectorize, so the
// kernel toggle must not move these.
func BenchmarkKernel_Baseline_Vectorized(b *testing.B) { benchKernelQuery(b, core.ModeBaseline, true) }
func BenchmarkKernel_Baseline_Tuple(b *testing.B)      { benchKernelQuery(b, core.ModeBaseline, false) }
