package bench

import (
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"sudaf/internal/core"
)

// BatchAggs are the overlapping aggregates of the batch experiment: all
// share the Milan table's query-model-2 data part, so a batch plans one
// fused scan where sequential submission scans once per cold state set.
var BatchAggs = []string{"avg", "std", "var", "qm", "gm", "hm", "cm", "sum"}

// BatchResult is one (system) row of the batch experiment.
type BatchResult struct {
	System     string
	Queries    int
	SeqSecs    float64
	SeqRows    int
	BatchSecs  float64
	BatchRows  int
	BatchScans int // fused scans the batch planned (from BatchExplain)
}

// Batch measures Engine.QueryBatch against sequential submission: the
// same N overlapping Milan query-model-2 queries, cold cache both ways,
// for the three systems. Sharing-aware batches collapse the N table
// scans into one fused scan (plus whatever sequential sharing already
// saved), so the scanned-row column is the headline.
func (r *Runner) Batch() []BatchResult {
	s := r.session(true)
	queries := make([]string, len(BatchAggs))
	reqs := make([]core.Request, len(BatchAggs))
	for i, agg := range BatchAggs {
		queries[i] = queryModel(2, agg)
		reqs[i] = core.Request{SQL: queries[i]}
	}
	fmt.Fprintf(r.out, "\n== BATCH: %d overlapping model-2 queries, sequential vs QueryBatch, Spark-mode ==\n",
		len(queries))
	var out []BatchResult
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "system\tseq(s)\tseq rows\tbatch(s)\tbatch rows\tfused scans\tspeedup\n")
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeRewrite, core.ModeShare} {
		br := BatchResult{System: mode.String(), Queries: len(queries)}

		s.ClearCache()
		for i, q := range queries {
			m := r.run(s, "batch-seq", BatchAggs[i], mode, q)
			br.SeqRows += m.Rows
			br.SeqSecs += m.Seconds
		}

		s.ClearCache()
		be, err := s.BatchExplain(reqs, mode)
		must(err)
		br.BatchScans = be.Scans
		start := time.Now()
		results, err := s.QueryBatch(context.Background(), reqs, mode)
		must(err)
		br.BatchSecs = time.Since(start).Seconds()
		for _, res := range results {
			br.BatchRows += res.RowsScanned
		}
		r.Results = append(r.Results, Measurement{
			Exp: "batch", Label: fmt.Sprintf("%d queries", len(queries)),
			System: mode.String(), Seconds: br.BatchSecs, Rows: br.BatchRows,
		})

		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\t%d\t%d\t%.2fx\n",
			br.System, br.SeqSecs, br.SeqRows, br.BatchSecs, br.BatchRows,
			br.BatchScans, br.SeqSecs/br.BatchSecs)
		out = append(out, br)
	}
	tw.Flush()
	return out
}
