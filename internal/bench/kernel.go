package bench

import (
	"fmt"
	"math"
	"time"

	"sudaf/internal/core"
)

// KernelAggs are the group-by UDAF queries of the kernel micro-benchmark:
// qm exercises the sum(x²)+count fused kernels, gm the generic (chain)
// kernel, std the sum/sum-of-squares pair, min the comparison kernel.
var KernelAggs = []string{"qm", "std", "gm", "min"}

// KernelMeasurement is one (aggregate, execution path) timing.
type KernelMeasurement struct {
	Agg        string
	Vectorized bool
	Mode       core.Mode
	Seconds    float64
	Rows       int
}

// RowsPerSec reports throughput in base rows per second.
func (k KernelMeasurement) RowsPerSec() float64 {
	if k.Seconds <= 0 {
		return 0
	}
	return float64(k.Rows) / k.Seconds
}

// KernelResult aggregates the micro-benchmark: per-aggregate Rewrite-mode
// timings with batch kernels on and off, plus Baseline-mode timings both
// ways (Baseline never vectorizes its interpreted UDAFs, so those two
// must track each other — the paper's interpreted-vs-rewritten comparison
// is preserved).
type KernelResult struct {
	Rewrite  []KernelMeasurement // vectorized + tuple pairs, per aggregate
	Baseline []KernelMeasurement
}

// Speedup returns the geometric-mean Rewrite-mode speedup of the batch
// kernels over the tuple-at-a-time path.
func (kr KernelResult) Speedup() float64 {
	prod, n := 1.0, 0
	byAgg := map[string][2]float64{}
	for _, m := range kr.Rewrite {
		e := byAgg[m.Agg]
		if m.Vectorized {
			e[0] = m.Seconds
		} else {
			e[1] = m.Seconds
		}
		byAgg[m.Agg] = e
	}
	for _, e := range byAgg {
		if e[0] > 0 && e[1] > 0 {
			prod *= e[1] / e[0]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Kernel runs the vectorized-kernel micro-benchmark on the serial
// session's Milan table (cfg.MilanRowsPG rows): query model 2 (group-by
// square_id) for each KernelAggs aggregate, Rewrite mode with kernels on
// and off, then Baseline mode both ways as the control.
func (r *Runner) Kernel() KernelResult {
	s := r.session(false)
	defer s.SetVectorizedKernels(true)
	var kr KernelResult
	fmt.Fprintf(r.out, "\n== KERNEL: batch kernels vs tuple-at-a-time, query model 2, %d rows ==\n", r.cfg.MilanRowsPG)
	// Best of three repetitions per configuration: the first query against
	// freshly generated data pays page-fault and cache-warming costs that
	// would otherwise be booked to whichever configuration ran first.
	measure := func(agg string, mode core.Mode, vec bool) KernelMeasurement {
		s.SetVectorizedKernels(vec)
		sql := queryModel(2, agg)
		best, rows := math.Inf(1), 0
		for rep := 0; rep < 3; rep++ {
			s.ClearCache()
			start := time.Now()
			res, err := s.Query(sql, mode)
			if err != nil {
				panic(fmt.Sprintf("kernel/%s (%v): %v", agg, mode, err))
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
			rows = res.RowsScanned
		}
		return KernelMeasurement{Agg: agg, Vectorized: vec, Mode: mode,
			Seconds: best, Rows: rows}
	}
	for _, agg := range KernelAggs {
		vec := measure(agg, core.ModeRewrite, true)
		tup := measure(agg, core.ModeRewrite, false)
		kr.Rewrite = append(kr.Rewrite, vec, tup)
		fmt.Fprintf(r.out, "rewrite  %-4s  vec=%8.2f Mrows/s  tuple=%8.2f Mrows/s  speedup=%5.2fx\n",
			agg, vec.RowsPerSec()/1e6, tup.RowsPerSec()/1e6, tup.Seconds/vec.Seconds)
	}
	for _, agg := range KernelAggs {
		vec := measure(agg, core.ModeBaseline, true)
		tup := measure(agg, core.ModeBaseline, false)
		kr.Baseline = append(kr.Baseline, vec, tup)
		// qm and gm run as interpreted UDAFs in Baseline mode — the kernel
		// toggle must not move them. std and min resolve to native builtins
		// there; those share the dense group-assignment machinery (also
		// behind the toggle), so a gap on them is expected and honest.
		note := "(interpreted; must match)"
		if agg == "std" || agg == "min" {
			note = "(native builtin; shares dense grouping)"
		}
		fmt.Fprintf(r.out, "baseline %-4s  vec=%8.2f Mrows/s  tuple=%8.2f Mrows/s  %s\n",
			agg, vec.RowsPerSec()/1e6, tup.RowsPerSec()/1e6, note)
	}
	fmt.Fprintf(r.out, "geomean rewrite speedup: %.2fx\n", kr.Speedup())
	return kr
}
