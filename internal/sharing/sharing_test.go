package sharing

import (
	"math"
	"math/rand"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
)

// st builds a Sum/Prod state over base x with the given chain.
func st(op canonical.AggOp, prims ...scalar.Prim) canonical.State {
	return canonical.State{Op: op, F: scalar.NewChain(prims...), Base: &expr.Var{Name: "x"}}
}

// apply computes a state over a multiset directly (ground truth).
func apply(s canonical.State, xs []float64) float64 {
	acc := s.MergeIdentity()
	for _, x := range xs {
		if s.Op == canonical.OpCount {
			acc = s.Update(acc, 1)
		} else {
			acc = s.Update(acc, s.F.Eval(x))
		}
	}
	return acc
}

// checkShare asserts the sharing outcome and, when shared, validates
// s1(X) = r(s2(X)) on fresh random positive multisets.
func checkShare(t *testing.T, s1, s2 canonical.State, positive, want bool) {
	t.Helper()
	r, ok := Share(s1, s2, positive)
	if ok != want {
		t.Fatalf("Share(%s, %s, pos=%v) = %v, want %v", s1.Render(), s2.Render(), positive, ok, want)
	}
	if !ok {
		return
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(6)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = 0.3 + rng.Float64()*3
			if !positive && rng.Intn(2) == 0 {
				xs[j] = -xs[j]
			}
		}
		v1 := apply(s1, xs)
		v2 := apply(s2, xs)
		if math.IsNaN(v1) || math.IsNaN(v2) {
			continue
		}
		got := r.Eval(v2)
		if math.Abs(got-v1) > 1e-6*(1+math.Abs(v1)) {
			t.Fatalf("rewriting %s of %s->%s wrong: r(%v)=%v, want %v (X=%v)",
				r, s2.Render(), s1.Render(), v2, got, v1, xs)
		}
	}
}

func TestIdenticalStatesShare(t *testing.T) {
	s := st(canonical.OpSum, scalar.PowerP(2))
	r, ok := Share(s, s, false)
	if !ok || !r.IsIdentity() {
		t.Fatalf("identical states must share via identity, got %v %v", r, ok)
	}
}

func TestCase21SumSum(t *testing.T) {
	// Σ4x² shares Σx² with r = 4x.
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2), scalar.Linear(4)),
		st(canonical.OpSum, scalar.PowerP(2)), false, true)
	// Σ4x² shares Σ(3x)² = Σ9x² with r = (4/9)x.
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2), scalar.Linear(4)),
		st(canonical.OpSum, scalar.Linear(3), scalar.PowerP(2)), false, true)
	// Σ6x³ shares Σ(5x)³ (the paper's Example 5.2 generalization).
	checkShare(t, st(canonical.OpSum, scalar.PowerP(3), scalar.Linear(6)),
		st(canonical.OpSum, scalar.Linear(5), scalar.PowerP(3)), false, true)
	// Σx² does not share Σx³ (distinct exponents).
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2)),
		st(canonical.OpSum, scalar.PowerP(3)), true, false)
}

func TestCase22SumProd(t *testing.T) {
	// Σln x shares Πx with r = ln x (the gm ↔ moment-sketch bridge).
	checkShare(t, st(canonical.OpSum, scalar.LogP(scalar.E)),
		st(canonical.OpProd), true, true)
	// Example 4.2: Σ4x shares Π2^x with r = 4·log₂x.
	checkShare(t, st(canonical.OpSum, scalar.Linear(4)),
		st(canonical.OpProd, scalar.ExpP(2)), true, true)
	// Σx does not share Πx (no valid log shape: g = ln is fine... it is
	// actually shareable: Σx = ln(Πe^x)? No: f2 = id, g = f1∘f2⁻¹ = x,
	// which is not a·log_b x).
	checkShare(t, st(canonical.OpSum),
		st(canonical.OpProd), true, false)
}

func TestCase23ProdSum(t *testing.T) {
	// Πx shares Σln x with r = e^x (paper §2: gm from the moment sketch).
	checkShare(t, st(canonical.OpProd),
		st(canonical.OpSum, scalar.LogP(scalar.E)), true, true)
	// Πe^x shares Σx with r = e^x.
	checkShare(t, st(canonical.OpProd, scalar.ExpP(scalar.E)),
		st(canonical.OpSum), true, true)
	// Π2^x shares Σ4x with r = 2^(x/4).
	checkShare(t, st(canonical.OpProd, scalar.ExpP(2)),
		st(canonical.OpSum, scalar.Linear(4)), true, true)
	// Πx does not share Σx.
	checkShare(t, st(canonical.OpProd),
		st(canonical.OpSum), true, false)
}

func TestCase24ProdProd(t *testing.T) {
	// Πx² shares Πx over positive data with r = x².
	checkShare(t, st(canonical.OpProd, scalar.PowerP(2)),
		st(canonical.OpProd), true, true)
	// Πx² shares Πx⁴ even over mixed-sign data: r = √x and Πx⁴ > 0.
	checkShare(t, st(canonical.OpProd, scalar.PowerP(2)),
		st(canonical.OpProd, scalar.PowerP(4)), false, true)
	// Πx² does not share Πx³ on mixed-sign data (sign condition of 2.4
	// fails: (Πx³) may be negative and |x|^(2/3) cannot recover it).
	checkShare(t, st(canonical.OpProd, scalar.PowerP(2)),
		st(canonical.OpProd, scalar.PowerP(3)), false, false)
	// ...but it does over positive data.
	checkShare(t, st(canonical.OpProd, scalar.PowerP(2)),
		st(canonical.OpProd, scalar.PowerP(3)), true, true)
}

func TestCase1NoShare(t *testing.T) {
	// f1 injective, f2 even: Σx³ does not share Σx².
	checkShare(t, st(canonical.OpSum, scalar.PowerP(3)),
		st(canonical.OpSum, scalar.PowerP(2)), false, false)
	// Dual: Σx² does not share Σx³ over reals.
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2)),
		st(canonical.OpSum, scalar.PowerP(3)), false, false)
}

func TestCase3BothEven(t *testing.T) {
	// Σ4x² shares Σ9x² on mixed-sign data: both even, reduce to |x|.
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2), scalar.Linear(4)),
		st(canonical.OpSum, scalar.PowerP(2), scalar.Linear(9)), false, true)
	// Σx² does not share Σx⁴ (g = √x is not linear).
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2)),
		st(canonical.OpSum, scalar.PowerP(4)), false, false)
}

func TestCountMinMax(t *testing.T) {
	cnt := canonical.State{Op: canonical.OpCount, Base: &expr.Num{Val: 1}}
	if _, ok := Share(cnt, cnt, false); !ok {
		t.Error("count must share count")
	}
	if _, ok := Share(cnt, st(canonical.OpSum), false); ok {
		t.Error("count must not share Σx")
	}
	mn := st(canonical.OpMin)
	mx := st(canonical.OpMax)
	if _, ok := Share(mn, mn, false); !ok {
		t.Error("min must share min")
	}
	if _, ok := Share(mn, mx, false); ok {
		t.Error("min must not share max")
	}
}

func TestDifferentBasesNoShare(t *testing.T) {
	s1 := canonical.State{Op: canonical.OpSum, F: scalar.NewChain(), Base: &expr.Var{Name: "x"}}
	s2 := canonical.State{Op: canonical.OpSum, F: scalar.NewChain(), Base: expr.MustParse("x*y")}
	if _, ok := Share(s1, s2, true); ok {
		t.Error("states over different abstract columns must not share")
	}
}

func TestLogOfSquareSharesLog(t *testing.T) {
	// Σln(x²) shares Σln(x) over positive data with r = 2x.
	checkShare(t, st(canonical.OpSum, scalar.PowerP(2), scalar.LogP(scalar.E)),
		st(canonical.OpSum, scalar.LogP(scalar.E)), true, true)
}

func TestSymbolicDecisionConditions(t *testing.T) {
	// Σx^p shares Σ p2·x^p1 iff p = p1 (the paper's running example).
	f1 := scalar.NewChain(scalar.Prim{Kind: scalar.KPower, A: scalar.Param("p")})
	f2 := scalar.NewChain(
		scalar.Prim{Kind: scalar.KPower, A: scalar.Param("p1")},
		scalar.Prim{Kind: scalar.KLinear, A: scalar.Param("p2")})
	d := Decide(canonical.OpSum, f1, canonical.OpSum, f2, true)
	if !d.OK {
		t.Fatal("symbolic decision should succeed with conditions")
	}
	if len(d.Conds) == 0 {
		t.Fatal("expected parameter conditions")
	}
	// Condition holds when p = p1 = 3.
	bind := map[string]float64{"p": 3, "p1": 3, "p2": 5}
	for _, c := range d.Conds {
		v, err := scalar.CEval(c.C, bind)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-c.Want) > 1e-9 {
			t.Errorf("condition %v = %v, want %v under p=p1", c.C, v, c.Want)
		}
	}
	// And fails when p ≠ p1.
	bind2 := map[string]float64{"p": 3, "p1": 2, "p2": 5}
	holds := true
	for _, c := range d.Conds {
		v, _ := scalar.CEval(c.C, bind2)
		if math.Abs(v-c.Want) > 1e-9 {
			holds = false
		}
	}
	if holds {
		t.Error("conditions should fail when p ≠ p1")
	}
	// The rewriting chain evaluates correctly under the binding: s1 = Σx³,
	// s2 = Σ5x³, r should give s1 = s2/5.
	v, err := d.R.EvalWith(10, bind)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-9 {
		t.Errorf("r(10) = %v, want 2", v)
	}
}

func TestSymbolicStrongEdge(t *testing.T) {
	// Σ p·x shares Πp^x... no wait: Σln x and Πx: with symbolic linear
	// parameter, Σ p·ln x shares Πx unconditionally (strong edge).
	f1 := scalar.NewChain(scalar.LogP(scalar.E), scalar.Prim{Kind: scalar.KLinear, A: scalar.Param("p")})
	f2 := scalar.IdentityChain()
	d := Decide(canonical.OpSum, f1, canonical.OpProd, f2, true)
	if !d.OK {
		t.Fatal("Σp·ln x should share Πx")
	}
	if len(d.Conds) != 0 {
		t.Errorf("expected strong (unconditional) edge, got conds %v", d.Conds)
	}
}

// TestShareProperty: constructed shares are always found. For random
// injective chains f2 and random linear tweaks a, Σ(a·f2) shares Σf2.
func TestSharePropertySumLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for i := 0; i < 300; i++ {
		f2 := randomInjectiveChain(rng)
		a := float64(rng.Intn(9) + 2)
		f1 := f2.Then(scalar.Linear(a))
		s1 := canonical.State{Op: canonical.OpSum, F: f1, Base: &expr.Var{Name: "x"}}
		s2 := canonical.State{Op: canonical.OpSum, F: f2, Base: &expr.Var{Name: "x"}}
		r, ok := Share(s1, s2, true)
		if !ok {
			t.Fatalf("Σ%v·f should share Σf for f=%s", a, f2)
		}
		// r must be multiplication by a.
		got := r.Eval(7)
		if math.Abs(got-7*a) > 1e-6*(1+7*a) {
			t.Fatalf("r(7) = %v, want %v (f=%s)", got, 7*a, f2)
		}
	}
}

// TestShareSymmetricPairs: sharing both ways implies mutually inverse
// rewritings (the equivalence classes of §5.2).
func TestShareSymmetricPairs(t *testing.T) {
	s1 := st(canonical.OpSum, scalar.LogP(scalar.E))
	s2 := canonical.State{Op: canonical.OpProd, F: scalar.IdentityChain(), Base: &expr.Var{Name: "x"}}
	r12, ok12 := Share(s1, s2, true)
	r21, ok21 := Share(s2, s1, true)
	if !ok12 || !ok21 {
		t.Fatal("Σln x and Πx must share both ways")
	}
	for _, v := range []float64{0.5, 1, 2, 5} {
		back := r21.Eval(r12.Eval(v))
		if math.Abs(back-v) > 1e-9*(1+v) {
			t.Fatalf("rewritings not inverse: %v -> %v", v, back)
		}
	}
}

func randomInjectiveChain(rng *rand.Rand) scalar.Chain {
	prims := []scalar.Prim{}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			prims = append(prims, scalar.Linear(float64(rng.Intn(4)+2)))
		case 1:
			prims = append(prims, scalar.PowerP([]float64{0.5, 3, -1}[rng.Intn(3)]))
		case 2:
			prims = append(prims, scalar.LogP(scalar.E))
		default:
			prims = append(prims, scalar.ExpP([]float64{2, scalar.E}[rng.Intn(2)]))
		}
	}
	return scalar.NewChain(prims...)
}

func TestNoShareAcrossConstant(t *testing.T) {
	s1 := st(canonical.OpSum, scalar.Const(3))
	s2 := st(canonical.OpSum)
	if _, ok := Share(s1, s2, true); ok {
		t.Error("constant chains must not share")
	}
}

func TestMomentSketchServesGM(t *testing.T) {
	// The paper's §2 example: the moment sketch caches Σln(x); the
	// geometric mean's Πx state must be computable from it.
	msLn := st(canonical.OpSum, scalar.LogP(scalar.E))
	gmProd := canonical.State{Op: canonical.OpProd, F: scalar.IdentityChain(), Base: &expr.Var{Name: "x"}}
	r, ok := Share(gmProd, msLn, true)
	if !ok {
		t.Fatal("Πx must share Σln x")
	}
	// Πx = exp(Σ ln x): for X = {1,2,3}, Σln = ln6, r(ln6) = 6.
	if got := r.Eval(math.Log(6)); math.Abs(got-6) > 1e-9 {
		t.Fatalf("r(ln 6) = %v, want 6", got)
	}
}
