// Package sharing implements the SUDAF sharing problem: deciding whether
// an aggregation state s1 can be computed from a cached aggregation state
// s2 through a scalar rewriting function r with s1(X) = r(s2(X)) for every
// multiset X (Definition 3.1). The general problem is undecidable
// (Theorem 3.2); within SUDAF's restricted function classes Theorem 4.1
// gives a complete characterization, implemented here:
//
//	case 1   f1 injective, f2 not injective  → no sharing
//	case 2.1 (Σ,Σ) f1∘f2⁻¹ = a·x             → r = a·x
//	case 2.2 (Σ,Π) f1∘f2⁻¹ = a·log_b|x|      → r = a·log_b x
//	case 2.3 (Π,Σ) f1∘f2⁻¹ = b^(a·x)         → r = b^(a·x)
//	case 2.4 (Π,Π) f1∘f2⁻¹ = ±|x|^a          → r = x^a (sign-checked)
//	case 3   both even → reduce to the positive domain (|x|, §5.3)
//	case 4   neither → splitting rules at decomposition, else syntactic
//
// The decision procedure works symbolically: chains may carry named
// parameters, in which case the result includes parameter conditions
// (the "weak" sharing edges of Figure 4). For concrete states the
// algebraic decision is additionally verified numerically on random
// multisets, which guards the sign subtleties of cases 2.4 and 3 without
// trusting the rewrite algebra beyond its domain of soundness.
package sharing

import (
	"math"
	"math/rand"

	"sudaf/internal/canonical"
	"sudaf/internal/scalar"
)

// Cond is a parameter condition: CEval(C) must equal Want.
type Cond struct {
	C    scalar.Coef
	Want float64
}

// Decision is the outcome of the symbolic sharing decision.
type Decision struct {
	// OK reports whether s1 shares s2 (subject to Conds).
	OK bool
	// R is the rewriting chain: s1(X) = R(s2(X)).
	R scalar.Chain
	// Conds are parameter conditions under which the sharing holds
	// ("weak" sharing); empty for unconditional ("strong") sharing.
	Conds []Cond
	// PositiveOnly: the rewriting is guaranteed only when the underlying
	// data (after the state's base expression) is positive, or when both
	// scalar functions are even (sign-oblivious).
	PositiveOnly bool
}

// no is the negative decision.
func no() Decision { return Decision{} }

// Decide solves the sharing problem share(s1, s2) at the level of
// aggregate ops and scalar chains. Chains with symbolic parameters are
// decided over the positive domain with parameter conditions; concrete
// chains are decided per the full Theorem 4.1 case analysis.
// positiveData asserts the underlying values are known positive, which
// makes evenness immaterial (every non-constant PS∘ function is injective
// on the positive half-line).
func Decide(op1 canonical.AggOp, f1 scalar.Chain, op2 canonical.AggOp, f2 scalar.Chain, positiveData bool) Decision {
	// count/min/max share only themselves (identity rewriting).
	if op1 == canonical.OpCount || op2 == canonical.OpCount ||
		op1 == canonical.OpMin || op2 == canonical.OpMin ||
		op1 == canonical.OpMax || op2 == canonical.OpMax {
		if op1 == op2 && f1.Equal(f2) {
			return Decision{OK: true, R: scalar.IdentityChain()}
		}
		return no()
	}

	symbolic := len(f1.Params()) > 0 || len(f2.Params()) > 0
	posOnly := symbolic || positiveData
	if !symbolic && !positiveData {
		p1 := f1.Classify()
		p2 := f2.Classify()
		if p1.Constant || p2.Constant {
			return no()
		}
		posOnly = p1.NeedsPositive || p2.NeedsPositive
		if !p2.Injective {
			// Case 1 and case 3: a non-injective f2 is even (Figure 3).
			// Only an even f1 can factor through it; both sides are then
			// sign-oblivious and the problem reduces to x > 0 (§5.3).
			if !p2.Even || !p1.Even {
				return no()
			}
			posOnly = true
		} else if !p1.Injective && !p1.Even {
			return no()
		} else if p1.Even && p2.Injective && !p2.Even {
			// f1 = g∘f2 with f1 even and f2 injective requires g to erase
			// exactly the sign structure f2 preserves; over M(Q) no such
			// computable r exists in our classes (paper case 1 dual).
			// Over positive domains evenness is immaterial, so allow it
			// only when f2's own domain forces positivity.
			if !p2.NeedsPositive {
				return no()
			}
		}
	}

	f1p := f1.Normalize()
	f2p := f2.Normalize()
	inv, ok := f2p.Inverse()
	if !ok {
		return no()
	}
	// The composition f1∘f2⁻¹ is only ever applied to values in the range
	// of f2, where the inverse cancellation is exact; normalize assuming
	// positive intermediates. Concrete decisions are verified numerically
	// afterwards, so over-eager cancellation cannot produce a wrong share.
	g := inv.Compose(f1p).NormalizeAssumePositive()

	var conds []Cond
	var matched bool
	switch {
	case op1 == canonical.OpSum && op2 == canonical.OpSum:
		conds, matched = matchShape(g, shapeLinear)
	case op1 == canonical.OpSum && op2 == canonical.OpProd:
		conds, matched = matchShape(g, shapeLogLinear)
	case op1 == canonical.OpProd && op2 == canonical.OpSum:
		conds, matched = matchShape(g, shapeExp)
	case op1 == canonical.OpProd && op2 == canonical.OpProd:
		conds, matched = matchShape(g, shapePower)
	default:
		return no()
	}
	if !matched {
		return no()
	}
	if op2 == canonical.OpProd {
		// r reads a product of f2-values: sound sign handling needs the
		// positive domain (or the §5.3 sign-split cache layout).
		posOnly = true
	}
	return Decision{OK: true, R: g, Conds: conds, PositiveOnly: posOnly}
}

// Shape targets for f1∘f2⁻¹ per Theorem 4.1.
const (
	shapeLinear    = iota // a·x (case 2.1)
	shapeLogLinear        // a·log_b x (case 2.2)
	shapeExp              // b^(a·x) (case 2.3)
	shapePower            // |x|^a (case 2.4)
)

// matchShape checks whether the normalized chain g has the target shape,
// possibly under parameter conditions. The returned conditions force
// stray exponents/coefficients to 1, at which point g itself evaluates as
// the required rewriting function.
func matchShape(g scalar.Chain, shape int) ([]Cond, bool) {
	var conds []Cond
	needOne := func(c scalar.Coef) bool {
		if v, ok := c.(scalar.Num); ok {
			return approxOne(float64(v))
		}
		conds = append(conds, Cond{C: c, Want: 1})
		return true
	}
	prims := g.Prims
	switch shape {
	case shapeLinear:
		for _, p := range prims {
			switch p.Kind {
			case scalar.KLinear:
				// any coefficient is fine
			case scalar.KPower:
				if !needOne(p.A) {
					return nil, false
				}
			default:
				return nil, false
			}
		}
		return conds, true
	case shapePower:
		for _, p := range prims {
			switch p.Kind {
			case scalar.KPower:
				// any exponent is fine
			case scalar.KLinear:
				if !needOne(p.A) {
					return nil, false
				}
			default:
				return nil, false
			}
		}
		return conds, true
	case shapeLogLinear:
		logs := 0
		for i, p := range prims {
			switch p.Kind {
			case scalar.KLog:
				logs++
				if i != 0 || logs > 1 {
					return nil, false
				}
			case scalar.KLinear:
				if i == 0 {
					return nil, false
				}
			case scalar.KPower:
				if i == 0 || !needOne(p.A) {
					return nil, false
				}
			default:
				return nil, false
			}
		}
		return conds, logs == 1
	case shapeExp:
		exps := 0
		for _, p := range prims {
			switch p.Kind {
			case scalar.KExp:
				exps++
				if exps > 1 {
					return nil, false
				}
			case scalar.KLinear, scalar.KPower:
				if !needOne(p.A) {
					return nil, false
				}
			default:
				return nil, false
			}
		}
		return conds, exps == 1
	}
	return nil, false
}

func approxOne(v float64) bool { return math.Abs(v-1) <= 1e-9 }

// Share decides whether concrete state s1 shares concrete state s2 and
// returns the rewriting chain. Bases must denote the same abstract column
// (the data dimension is handled by the caller's fingerprinting). The
// algebraic decision is verified numerically before being accepted.
// positiveData tells the verifier the underlying values are known > 0.
func Share(s1, s2 canonical.State, positiveData bool) (scalar.Chain, bool) {
	d, ok := ShareDetail(s1, s2, positiveData)
	return d.R, ok
}

// ShareDetail is Share with provenance: on success the returned Decision
// carries the rewriting chain R with s1 = R∘s2, the parameter conditions
// that were checked (empty for strong sharing), and whether the
// rewriting is sound only over positive data. EXPLAIN uses it to report
// *why* a shared hit happened.
func ShareDetail(s1, s2 canonical.State, positiveData bool) (Decision, bool) {
	if s1.Key() == s2.Key() {
		return Decision{OK: true, R: scalar.IdentityChain()}, true
	}
	if s1.Op != canonical.OpCount && s2.Op != canonical.OpCount {
		if s1.Base.String() != s2.Base.String() {
			return Decision{}, false
		}
	}
	d := Decide(s1.Op, s1.F, s2.Op, s2.F, positiveData)
	if !d.OK {
		return Decision{}, false
	}
	for _, c := range d.Conds {
		v, err := scalar.CEval(c.C, nil)
		if err != nil || math.Abs(v-c.Want) > 1e-9 {
			return Decision{}, false
		}
	}
	if d.PositiveOnly && !positiveData {
		// Without the sign-split cache companion, positive-only
		// rewritings cannot be trusted on mixed-sign data. Verify on the
		// real domain anyway: some (e.g. odd/even-compatible powers)
		// remain valid; reject the rest.
		if !verify(s1, s2, d.R, false) {
			return Decision{}, false
		}
		return d, true
	}
	if !verify(s1, s2, d.R, positiveData || d.PositiveOnly) {
		return Decision{}, false
	}
	return d, true
}

// verify empirically checks s1(X) = r(s2(X)) over random multisets drawn
// from the positive or mixed-sign domain. Multisets on which either side
// is undefined are skipped; at least minValid checks must pass.
func verify(s1, s2 canonical.State, r scalar.Chain, positive bool) bool {
	const (
		trials   = 60
		minValid = 12
	)
	rng := rand.New(rand.NewSource(0x5daf))
	valid := 0
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(5)
		xs := make([]float64, n)
		for i := range xs {
			v := 0.25 + rng.Float64()*4
			if !positive && rng.Intn(2) == 0 {
				v = -v
			}
			xs[i] = v
		}
		v1, ok1 := evalState(s1, xs)
		v2, ok2 := evalState(s2, xs)
		if !ok1 || !ok2 {
			continue
		}
		got, err := r.EvalWith(v2, nil)
		if err != nil || math.IsNaN(got) || math.IsInf(got, 0) {
			return false // r itself must be defined wherever s2 is
		}
		if math.Abs(got-v1) > 1e-6*(1+math.Abs(v1)) {
			return false
		}
		valid++
	}
	return valid >= minValid
}

// evalState computes a state over a raw value multiset (the base
// expression is taken as already applied — states being compared share
// the same base).
func evalState(s canonical.State, xs []float64) (float64, bool) {
	acc := s.MergeIdentity()
	for _, x := range xs {
		var fx float64
		if s.Op == canonical.OpCount {
			fx = 1
		} else {
			fx = s.F.Eval(x)
		}
		if math.IsNaN(fx) || math.IsInf(fx, 0) {
			return 0, false
		}
		acc = s.Update(acc, fx)
	}
	if math.IsNaN(acc) || math.IsInf(acc, 0) {
		return 0, false
	}
	return acc, true
}
