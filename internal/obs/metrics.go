package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric, safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefBuckets are the default latency histogram bounds in seconds,
// spanning 100µs (a cache-served query) to 10s (a cold multi-million-row
// scan).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with Prometheus
// semantics: counts are cumulative per bucket at export time, plus a
// total sum and count. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBit atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram creates a histogram with the given upper bounds (must be
// sorted ascending; nil uses DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBit.Load()) }

// Metric type strings for the Prometheus TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// sample is one label set's value source within a family.
type sample struct {
	labels  string // rendered label pairs without braces, e.g. `engine="pg"`
	intFn   func() int64
	floatFn func() float64
	hist    *Histogram
}

// family is one metric name: its metadata plus a sample per label set.
type family struct {
	name, typ, help string
	order           []string
	samples         map[string]*sample
}

// Registry aggregates metric families for export. Multiple engines may
// register into one registry as long as their label sets differ
// (typically an engine="..." label); re-registering an existing
// (name, labels) pair replaces the sample, so short-lived sessions (e.g.
// a benchmark loop) don't leak series.
type Registry struct {
	mu       sync.Mutex
	order    []*family
	byName   map[string]*family
	expvarOn sync.Once
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*family{}} }

func (r *Registry) add(name, labels, typ, help string, s *sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help, samples: map[string]*sample{}}
		r.byName[name] = f
		r.order = append(r.order, f)
	}
	s.labels = labels
	if _, exists := f.samples[labels]; !exists {
		f.order = append(f.order, labels)
	}
	f.samples[labels] = s
}

// CounterFunc registers a counter family sample backed by a read
// function (typically an atomic load). labels is a rendered label list
// such as `engine="pg"`, or "" for none.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.add(name, labels, TypeCounter, help, &sample{intFn: fn})
}

// GaugeFunc registers a gauge family sample backed by a read function.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.add(name, labels, TypeGauge, help, &sample{floatFn: fn})
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.add(name, labels, TypeCounter, help, &sample{intFn: c.Value})
	return c
}

// Histogram registers and returns a histogram (nil bounds = DefBuckets).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, labels, TypeHistogram, help, &sample{hist: h})
	return h
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, lbl := range f.order {
			s := f.samples[lbl]
			switch {
			case s.hist != nil:
				writeHistogram(w, f.name, lbl, s.hist)
			case s.intFn != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, braced(lbl), s.intFn())
			default:
				fmt.Fprintf(w, "%s%s %v\n", f.name, braced(lbl), s.floatFn())
			}
		}
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func withLe(labels, le string) string {
	pair := `le="` + le + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return "{" + labels + "," + pair + "}"
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(labels, formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %v\n", name, braced(labels), h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// ExpvarFunc returns a function suitable for expvar.Publish: a map of
// "name{labels}" → value (histograms export their _sum and _count).
func (r *Registry) ExpvarFunc() func() any {
	return func() any {
		out := map[string]any{}
		r.mu.Lock()
		fams := append([]*family(nil), r.order...)
		r.mu.Unlock()
		for _, f := range fams {
			for _, lbl := range f.order {
				s := f.samples[lbl]
				key := f.name + braced(lbl)
				switch {
				case s.hist != nil:
					out[key+"_sum"] = s.hist.Sum()
					out[key+"_count"] = s.hist.Count()
				case s.intFn != nil:
					out[key] = s.intFn()
				default:
					out[key] = s.floatFn()
				}
			}
		}
		return out
	}
}

// PublishExpvar publishes the registry under the given expvar name,
// once; re-publishing (or a name already taken by an earlier registry)
// is a no-op rather than the panic expvar.Publish would raise.
func (r *Registry) PublishExpvar(name string) {
	r.expvarOn.Do(func() {
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(r.ExpvarFunc()))
		}
	})
}

// Handler returns an http.Handler serving the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// MetricsServer is a running metrics endpoint; Close shuts it down.
type MetricsServer struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Close stops the server.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// ServeMetrics starts an HTTP server on addr exposing:
//
//	/metrics      Prometheus text format (reg; 404 when reg is nil)
//	/debug/vars   expvar JSON (reg also published under "sudaf_metrics")
//	/debug/pprof  the standard pprof profiles
//
// It returns once the listener is bound; the server runs until Close.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	mux := http.NewServeMux()
	if reg != nil {
		reg.PublishExpvar("sudaf_metrics")
		mux.Handle("/metrics", reg.Handler())
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}
