// Package obs is the engine's observability layer: per-query span
// tracing, a metrics registry with Prometheus text and expvar export,
// and the HTTP endpoint that serves both (plus pprof).
//
// # Tracing
//
// A query records a Trace: a tree of Spans mirroring the query pipeline
// (parse → plan → canonicalize → sharing-lookup → scan/agg → finisher →
// cache-store), each with wall time and key=value attributes (rows,
// batches, kernels, cache-hit counts). Traces are built by the query
// orchestration goroutine only and read after the query finishes, so no
// locking is needed.
//
// The hot path stays allocation-free when tracing is off: every Span
// method is safe on a nil receiver and does nothing, so instrumentation
// sites call unconditionally and a disabled query (Sampler said no)
// threads a nil trace through the whole pipeline at zero cost.
//
// # Metrics
//
// A Registry aggregates counter/gauge/histogram families, each family
// holding one sample per label set (so several engines can share a
// registry, distinguished by an engine="..." label). Export formats:
// Prometheus text (WritePrometheus, Handler) and expvar (ExpvarFunc).
// ServeMetrics starts an HTTP server with /metrics, /debug/vars and
// /debug/pprof.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Attr is one key=value annotation on a span. Exactly one of Str/Int is
// meaningful, selected by IsStr.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsStr bool   `json:"-"`
}

func (a Attr) value() string {
	if a.IsStr {
		return a.Str
	}
	return fmt.Sprintf("%d", a.Int)
}

// Span is one timed stage of a query. Spans form a tree under the
// trace's root; children are appended in execution order. All methods
// are safe on a nil receiver (they do nothing), which is how disabled
// tracing stays allocation-free.
type Span struct {
	Name string `json:"name"`
	// StartNS is the span's start offset from the trace start, in
	// nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's wall time in nanoseconds (0 until End).
	DurNS    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	start   time.Time
	traceT0 time.Time
}

// Child starts a child span. It returns nil (and records nothing) on a
// nil receiver.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, StartNS: now.Sub(sp.traceT0).Nanoseconds(), start: now, traceT0: sp.traceT0}
	sp.Children = append(sp.Children, c)
	return c
}

// SetInt records an integer attribute. No-op on a nil receiver.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Int: v})
}

// SetStr records a string attribute. No-op on a nil receiver. Empty
// values are skipped so optional attributes (kernel lists, view names)
// never render as noise.
func (sp *Span) SetStr(key, v string) {
	if sp == nil || v == "" {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v, IsStr: true})
}

// End stamps the span's duration. No-op on a nil receiver; idempotent
// (the second End wins, which only happens if a caller double-ends).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.DurNS = time.Since(sp.start).Nanoseconds()
}

// Trace is one query's span tree. It is built by the query goroutine and
// rendered (Tree, JSON) after the query returns.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	now := time.Now()
	return &Trace{root: &Span{Name: name, start: now, traceT0: now}}
}

// Root returns the root span (nil on a nil trace, keeping the nil-safe
// chain intact: tr.Root().Child(...) is valid everywhere).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. No-op on a nil trace.
func (t *Trace) Finish() { t.Root().End() }

// Tree renders the trace as an indented text tree:
//
//	query (1.93ms) mode=sudaf-share
//	├─ parse (21µs)
//	├─ scan/agg (1.7ms) rows=100000 groups=10 kernels=sum,count
//	└─ finisher (88µs) groups=10
func (t *Trace) Tree() string {
	if t == nil || t.root == nil {
		return ""
	}
	var b strings.Builder
	writeSpan(&b, t.root, "", "", true)
	return b.String()
}

func writeSpan(b *strings.Builder, sp *Span, branch, indent string, root bool) {
	b.WriteString(branch)
	b.WriteString(sp.Name)
	fmt.Fprintf(b, " (%v)", time.Duration(sp.DurNS).Round(time.Microsecond))
	for _, a := range sp.Attrs {
		b.WriteString(" " + a.Key + "=" + a.value())
	}
	b.WriteString("\n")
	for i, c := range sp.Children {
		last := i == len(sp.Children)-1
		cb, ci := "├─ ", "│  "
		if last {
			cb, ci = "└─ ", "   "
		}
		writeSpan(b, c, indent+cb, indent+ci, false)
	}
}

// JSON renders the trace as indented JSON (the span tree, durations in
// nanoseconds).
func (t *Trace) JSON() (string, error) {
	if t == nil || t.root == nil {
		return "", nil
	}
	b, err := json.MarshalIndent(t.root, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Spans returns every span in the trace in depth-first order (testing
// and tooling).
func (t *Trace) Spans() []*Span {
	if t == nil || t.root == nil {
		return nil
	}
	var out []*Span
	var walk func(sp *Span)
	walk = func(sp *Span) {
		out = append(out, sp)
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Find returns the first span with the given name in depth-first order.
func (t *Trace) Find(name string) *Span {
	for _, sp := range t.Spans() {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// Sampler decides, allocation-free, whether a query is traced. A rate of
// 1 traces everything, 0 nothing, 0.01 every 100th query (deterministic
// modulus over an atomic counter, so a burst of queries is sampled
// evenly rather than randomly). A nil Sampler never samples.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler builds a sampler for the given rate; rate <= 0 returns nil
// (never sample).
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		return nil
	}
	every := int64(1)
	if rate < 1 {
		every = int64(1 / rate)
	}
	return &Sampler{every: every}
}

// Sample reports whether the next query should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 1
}
