package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("query")
	root := tr.Root()
	root.SetStr("mode", "sudaf-share")
	p := root.Child("parse")
	p.End()
	sa := root.Child("scan/agg")
	sa.SetInt("rows", 100000)
	sa.SetStr("kernels", "sum,count")
	m := sa.Child("morsel")
	m.End()
	sa.End()
	f := root.Child("finisher")
	f.SetInt("groups", 10)
	f.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("want 5 spans, got %d", len(spans))
	}
	if got := tr.Find("scan/agg"); got == nil || len(got.Children) != 1 {
		t.Fatalf("scan/agg span missing or wrong children: %+v", got)
	}
	tree := tr.Tree()
	for _, want := range []string{"query", "mode=sudaf-share", "├─ parse", "│  └─ morsel", "rows=100000", "kernels=sum,count", "└─ finisher", "groups=10"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}
	js, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "query"`, `"name": "morsel"`, `"key": "rows"`} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON() missing %q:\n%s", want, js)
		}
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTrace("q")
	c := tr.Root().Child("work")
	time.Sleep(2 * time.Millisecond)
	c.End()
	tr.Finish()
	if c.DurNS <= 0 {
		t.Fatalf("child duration not recorded: %d", c.DurNS)
	}
	if root := tr.Root(); root.DurNS < c.DurNS {
		t.Fatalf("root (%d ns) shorter than child (%d ns)", root.DurNS, c.DurNS)
	}
	if c.StartNS < 0 {
		t.Fatalf("negative start offset: %d", c.StartNS)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Root()
	c := sp.Child("x") // must not panic, must stay nil
	if c != nil {
		t.Fatal("nil span Child returned non-nil")
	}
	c.SetInt("rows", 1)
	c.SetStr("k", "v")
	c.End()
	tr.Finish()
	if tr.Tree() != "" || tr.Find("x") != nil || tr.Spans() != nil {
		t.Fatal("nil trace rendered content")
	}
	if s, err := tr.JSON(); err != nil || s != "" {
		t.Fatalf("nil trace JSON = %q, %v", s, err)
	}
}

func TestNilSpanAllocationFree(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("stage")
		c.SetInt("rows", 42)
		c.SetStr("kernels", "sum")
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-1) != nil {
		t.Fatal("rate<=0 should return nil sampler")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate=1 should always sample")
		}
	}
	tenth := NewSampler(0.1)
	n := 0
	for i := 0; i < 1000; i++ {
		if tenth.Sample() {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("rate=0.1 over 1000 queries sampled %d, want 100", n)
	}
}

func TestCounterAndHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sudaf_queries_total", `engine="pg"`, "Queries run.")
	c.Add(7)
	r.CounterFunc("sudaf_queries_total", `engine="spark"`, "Queries run.", func() int64 { return 3 })
	r.GaugeFunc("sudaf_cache_bytes", "", "Cache footprint.", func() float64 { return 1.5 })
	h := r.Histogram("sudaf_query_seconds", `engine="pg"`, "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP sudaf_queries_total Queries run.",
		"# TYPE sudaf_queries_total counter",
		`sudaf_queries_total{engine="pg"} 7`,
		`sudaf_queries_total{engine="spark"} 3`,
		"# TYPE sudaf_cache_bytes gauge",
		"sudaf_cache_bytes 1.5",
		"# TYPE sudaf_query_seconds histogram",
		`sudaf_query_seconds_bucket{engine="pg",le="0.1"} 1`,
		`sudaf_query_seconds_bucket{engine="pg",le="1"} 2`,
		`sudaf_query_seconds_bucket{engine="pg",le="+Inf"} 3`,
		`sudaf_query_seconds_sum{engine="pg"} 5.55`,
		`sudaf_query_seconds_count{engine="pg"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family even with two label sets.
	if n := strings.Count(out, "# TYPE sudaf_queries_total"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}

func TestRegistryReRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("x_total", `engine="pg"`, "h", func() int64 { return 1 })
	r.CounterFunc("x_total", `engine="pg"`, "h", func() int64 { return 2 })
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `x_total{engine="pg"} 2`) {
		t.Fatalf("re-registration did not replace sample:\n%s", out)
	}
	if n := strings.Count(out, `x_total{engine="pg"}`); n != 1 {
		t.Fatalf("sample duplicated %d times:\n%s", n, out)
	}
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("a_total", "", "h", func() int64 { return 9 })
	h := r.Histogram("lat_seconds", "", "h", nil)
	h.Observe(0.2)
	m, ok := r.ExpvarFunc()().(map[string]any)
	if !ok {
		t.Fatal("ExpvarFunc did not return a map")
	}
	if m["a_total"] != int64(9) {
		t.Fatalf("a_total = %v", m["a_total"])
	}
	if m["lat_seconds_count"] != int64(1) {
		t.Fatalf("lat_seconds_count = %v", m["lat_seconds_count"])
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("sudaf_up", "", "Up.", func() int64 { return 1 })
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sudaf_up 1") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "sudaf_metrics") {
		t.Fatalf("/debug/vars: code=%d body missing sudaf_metrics", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if got, want := h.Sum(), 4.0; got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}
