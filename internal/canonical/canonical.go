// Package canonical derives the canonical form of a UDAF from its
// mathematical expression, per Section 3.1 and Section 4.1 of the SUDAF
// paper: a well-formed aggregation α(X) = T(F(x₁) ⊕ … ⊕ F(xₙ)) is
// represented as a set of aggregation states s_j = Σ⊕_j f_j(base_j) plus a
// terminating scalar expression T over the states.
//
// Decomposition applies the paper's splitting rules (SR1 for sums of
// scalar functions under Σ, SR2 for products under Π), hoists linear
// coefficients out of Σ-states and power exponents out of Π-states into T
// (so stored states are the representatives of their symbolic equivalence
// classes, Section 5.3), and deduplicates states across the expression.
package canonical

import (
	"fmt"
	"math"
	"strings"

	"sudaf/internal/expr"
	"sudaf/internal/scalar"
)

// AggOp is the primitive aggregate (the ⊕ operation) of a state.
type AggOp int

const (
	// OpSum is Σ.
	OpSum AggOp = iota
	// OpProd is Π.
	OpProd
	// OpCount is count(*) (a Σ of 1s, kept distinct so it can be computed
	// without reading any column and shared with every query shape).
	OpCount
	// OpMin and OpMax are the order-statistic built-ins; per the paper
	// they share only with themselves.
	OpMin
	OpMax
)

func (o AggOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpCount:
		return "count"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("AggOp(%d)", int(o))
}

// State is one aggregation state: Op over F applied to the Base input
// expression (an expression over the UDAF's formal parameters; the
// "abstract column" of the paper for multivariate cases like x·y).
type State struct {
	Op   AggOp
	F    scalar.Chain // per-tuple scalar function, real-domain normalized
	Base expr.Node    // canonical base input expression
}

// Key is the state's identity string: equal keys ⇔ same state.
func (s State) Key() string {
	if s.Op == OpCount {
		return "count()"
	}
	return s.Op.String() + "[" + s.F.NormalizeReal().String() + "](" + s.Base.String() + ")"
}

// Render returns a human-readable formula, e.g. "sum((x)^2)".
func (s State) Render() string {
	if s.Op == OpCount {
		return "count()"
	}
	return s.Op.String() + "(" + s.F.NormalizeReal().Render(s.Base.String()) + ")"
}

// MergeIdentity returns the neutral element of the state's merge
// operation (0 for Σ/count, 1 for Π, ±Inf for min/max).
func (s State) MergeIdentity() float64 {
	switch s.Op {
	case OpProd:
		return 1
	case OpMin:
		return math.Inf(1)
	case OpMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// Merge combines two partial values of the state (the ⊕ of the canonical
// form); it is commutative and associative by construction.
func (s State) Merge(a, b float64) float64 {
	switch s.Op {
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	default:
		return a + b
	}
}

// Update folds one translated tuple value into a partial state value.
func (s State) Update(acc, fx float64) float64 { return s.Merge(acc, fx) }

// MergeVals ⊕-merges two aligned per-group value vectors into a fresh
// vector: out[i] = acc[i] ⊕ delta[i]. This is the delta-fold primitive
// of incremental ingestion — because every state is a ⊕-homomorphism
// over the input multiset, the states of (base ⊎ delta) are exactly
// states(base) ⊕ states(delta), so an append batch folds into cached
// per-group states with one merge per group instead of a rescan. Groups
// absent from the delta pass MergeIdentity() as their delta value.
func (s State) MergeVals(acc, delta []float64) []float64 {
	out := make([]float64, len(acc))
	for i := range acc {
		out[i] = s.Merge(acc[i], delta[i])
	}
	return out
}

// Form is the canonical form (F, ⊕, T) of a UDAF.
type Form struct {
	Name   string
	Params []string // formal parameters, e.g. ["x"] or ["x","y"]
	States []State  // s1..sk, deduplicated
	// T is the terminating expression over variables s1..sk.
	T expr.Node
	// Source is the simplified original expression.
	Source expr.Node
	// HardT, when non-nil, is a hardcoded terminating function overriding
	// T (the paper's second definition scenario in §4.1 — e.g. the moment
	// solver approximating a quantile from moment-sketch states).
	HardT func(states []float64) (float64, error)
}

// StateVar returns the T-variable name for state index i (0-based).
func StateVar(i int) string { return fmt.Sprintf("s%d", i+1) }

// Evaluate applies the terminating function to computed state values.
func (f *Form) Evaluate(states []float64) (float64, error) {
	if len(states) != len(f.States) {
		return 0, fmt.Errorf("%s: got %d state values, want %d", f.Name, len(states), len(f.States))
	}
	if f.HardT != nil {
		return f.HardT(states)
	}
	env := expr.MapEnv{}
	for i, v := range states {
		env[StateVar(i)] = v
	}
	return expr.Eval(f.T, env)
}

// String renders the canonical form in the paper's (F, ⊕, T) notation.
func (f *Form) String() string {
	var fs, ops []string
	for _, s := range f.States {
		if s.Op == OpCount {
			fs = append(fs, "1")
			ops = append(ops, "+")
			continue
		}
		fs = append(fs, s.F.NormalizeReal().Render(s.Base.String()))
		switch s.Op {
		case OpProd:
			ops = append(ops, "×")
		case OpMin:
			ops = append(ops, "min")
		case OpMax:
			ops = append(ops, "max")
		default:
			ops = append(ops, "+")
		}
	}
	return fmt.Sprintf("%s = ( F=(%s), ⊕=(%s), T=%s )",
		f.Name, strings.Join(fs, ", "), strings.Join(ops, ", "), f.T.String())
}

// ChainToExpr renders a scalar chain as an expression tree applied to
// inner — used by the baseline's interpreted accumulator, which evaluates
// update statements as boxed expression trees the way PL/pgSQL would.
func ChainToExpr(ch scalar.Chain, inner expr.Node) expr.Node {
	out := inner
	for _, p := range ch.Prims {
		a, err := scalar.CEval(p.A, nil)
		if err != nil {
			return inner // symbolic chains never reach the baseline path
		}
		switch p.Kind {
		case scalar.KConst:
			out = &expr.Num{Val: a}
		case scalar.KLinear:
			out = &expr.Bin{Op: '*', L: &expr.Num{Val: a}, R: out}
		case scalar.KPower:
			out = &expr.Bin{Op: '^', L: out, R: &expr.Num{Val: a}}
		case scalar.KLog:
			if a == scalar.E {
				out = &expr.Call{Name: "ln", Args: []expr.Node{out}}
			} else {
				out = &expr.Call{Name: "log", Args: []expr.Node{&expr.Num{Val: a}, out}}
			}
		case scalar.KExp:
			if a == scalar.E {
				out = &expr.Call{Name: "exp", Args: []expr.Node{out}}
			} else {
				out = &expr.Bin{Op: '^', L: &expr.Num{Val: a}, R: out}
			}
		}
	}
	return out
}

// UpdateExpr renders state i's per-tuple update statement
// s_i := s_i ⊕ F_i(params) as an expression tree over the parameter and
// state variables. Min/max states return nil (they update natively).
func (f *Form) UpdateExpr(i int) expr.Node {
	s := f.States[i]
	sv := &expr.Var{Name: StateVar(i)}
	switch s.Op {
	case OpCount:
		return &expr.Bin{Op: '+', L: sv, R: &expr.Num{Val: 1}}
	case OpSum:
		return &expr.Bin{Op: '+', L: sv, R: ChainToExpr(s.F, s.Base)}
	case OpProd:
		return &expr.Bin{Op: '*', L: sv, R: ChainToExpr(s.F, s.Base)}
	default:
		return nil
	}
}

// decomposer accumulates deduplicated states while rewriting T.
type decomposer struct {
	states []State
	index  map[string]int
	params map[string]bool
}

func (d *decomposer) add(s State) int {
	k := s.Key()
	if i, ok := d.index[k]; ok {
		return i
	}
	d.states = append(d.states, s)
	d.index[k] = len(d.states) - 1
	return len(d.states) - 1
}

func (d *decomposer) stateVar(s State) expr.Node {
	return &expr.Var{Name: StateVar(d.add(s))}
}

// Decompose derives the canonical form of a UDAF given its name, formal
// parameters, and body expression.
func Decompose(name string, params []string, body expr.Node) (*Form, error) {
	// avg(e) is sugar for sum(e)/count().
	body = expr.Rewrite(body, func(n expr.Node) expr.Node {
		if c, ok := n.(*expr.Call); ok && c.Name == "avg" {
			return &expr.Bin{Op: '/',
				L: &expr.Call{Name: "sum", Args: c.Args},
				R: &expr.Call{Name: "count"}}
		}
		return n
	})
	body = expr.Simplify(body)

	d := &decomposer{index: map[string]int{}, params: map[string]bool{}}
	for _, p := range params {
		d.params[p] = true
	}

	T, err := d.rewriteAggs(body)
	if err != nil {
		return nil, fmt.Errorf("UDAF %s: %w", name, err)
	}
	if len(d.states) == 0 {
		return nil, fmt.Errorf("UDAF %s: expression contains no aggregate function", name)
	}
	// The terminating function must be scalar over the states only.
	for _, v := range expr.Vars(T) {
		if !strings.HasPrefix(v, "s") {
			return nil, fmt.Errorf("UDAF %s: terminating function references non-aggregated variable %q", name, v)
		}
	}
	// State bases may reference only the declared formal parameters.
	for _, s := range d.states {
		if s.Op == OpCount {
			continue
		}
		for _, v := range expr.Vars(s.Base) {
			if !d.params[v] {
				return nil, fmt.Errorf("UDAF %s: state %s references undeclared parameter %q", name, s.Render(), v)
			}
		}
	}
	return &Form{
		Name:   name,
		Params: params,
		States: d.states,
		T:      expr.Simplify(T),
		Source: body,
	}, nil
}

// rewriteAggs replaces aggregate calls in n with state variables,
// registering the states, and returns the resulting T fragment.
func (d *decomposer) rewriteAggs(n expr.Node) (expr.Node, error) {
	switch t := n.(type) {
	case *expr.Num, *expr.Var:
		return n, nil
	case *expr.Neg:
		x, err := d.rewriteAggs(t.X)
		if err != nil {
			return nil, err
		}
		return &expr.Neg{X: x}, nil
	case *expr.Bin:
		l, err := d.rewriteAggs(t.L)
		if err != nil {
			return nil, err
		}
		r, err := d.rewriteAggs(t.R)
		if err != nil {
			return nil, err
		}
		return &expr.Bin{Op: t.Op, L: l, R: r}, nil
	case *expr.Call:
		if !expr.AggregateFuncs[t.Name] {
			args := make([]expr.Node, len(t.Args))
			for i, a := range t.Args {
				v, err := d.rewriteAggs(a)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return &expr.Call{Name: t.Name, Args: args}, nil
		}
		return d.aggToStates(t)
	}
	return nil, fmt.Errorf("unsupported node %T", n)
}

// aggToStates converts one aggregate call into (possibly several) states
// combined by a T fragment, applying SR1/SR2 and hoisting.
func (d *decomposer) aggToStates(c *expr.Call) (expr.Node, error) {
	switch c.Name {
	case "count":
		return d.stateVar(State{Op: OpCount, Base: &expr.Num{Val: 1}}), nil
	case "min", "max":
		arg := expr.Simplify(c.Args[0])
		if expr.ContainsAggregate(arg) {
			return nil, fmt.Errorf("nested aggregates are not supported: %s", c)
		}
		op := OpMin
		if c.Name == "max" {
			op = OpMax
		}
		return d.stateVar(State{Op: op, F: scalar.IdentityChain(), Base: arg}), nil
	case "sum":
		return d.sumToStates(expr.Simplify(c.Args[0]))
	case "prod":
		return d.prodToStates(expr.Simplify(c.Args[0]))
	}
	return nil, fmt.Errorf("unsupported aggregate %q", c.Name)
}

// sumToStates implements Σ decomposition with SR1 (Σ(g1±g2) = Σg1 ± Σg2)
// and linear hoisting (Σ c·f = c·Σf).
func (d *decomposer) sumToStates(arg expr.Node) (expr.Node, error) {
	if expr.ContainsAggregate(arg) {
		return nil, fmt.Errorf("nested aggregates are not supported: sum(%s)", arg)
	}
	var parts []expr.Node
	for _, term := range expr.SplitSum(arg) {
		coef, factors := expr.TermParts(term)
		if len(factors) == 0 {
			// Σ of a constant: c·count().
			cnt := d.stateVar(State{Op: OpCount, Base: &expr.Num{Val: 1}})
			parts = append(parts, &expr.Bin{Op: '*', L: &expr.Num{Val: coef}, R: cnt})
			continue
		}
		base, chain, err := extractChain(expr.MulAll(factors))
		if err != nil {
			return nil, err
		}
		// Hoist a trailing linear out of the state: Σ c·f = c·Σf, so the
		// stored state is its equivalence class representative.
		norm := chain.NormalizeReal()
		if k := len(norm.Prims); k > 0 && norm.Prims[k-1].Kind == scalar.KLinear {
			if c, ok := norm.Prims[k-1].A.(scalar.Num); ok {
				coef *= float64(c)
				norm = scalar.Chain{Prims: norm.Prims[:k-1]}
			}
		}
		sv := d.stateVar(State{Op: OpSum, F: norm, Base: base})
		if coef == 1 {
			parts = append(parts, sv)
		} else {
			parts = append(parts, &expr.Bin{Op: '*', L: &expr.Num{Val: coef}, R: sv})
		}
	}
	return expr.AddAll(parts), nil
}

// prodToStates implements Π decomposition with SR2 (Π(g1·g2) = Πg1 · Πg2),
// power hoisting (Π f^c = (Πf)^c) and constant hoisting (Π c·f = c^n·Πf,
// which introduces a count state).
func (d *decomposer) prodToStates(arg expr.Node) (expr.Node, error) {
	if expr.ContainsAggregate(arg) {
		return nil, fmt.Errorf("nested aggregates are not supported: prod(%s)", arg)
	}
	terms := expr.SplitSum(arg)
	if len(terms) > 1 {
		// Π over a sum of scalar functions: not covered by the splitting
		// rules; keep the whole argument as an opaque base (syntactic
		// sharing only), exactly the paper's fallback for case 4.
		base, chain, err := extractChain(arg)
		if err != nil {
			return nil, err
		}
		return d.stateVar(State{Op: OpProd, F: chain.NormalizeReal(), Base: base}), nil
	}
	coef, factors := expr.TermParts(terms[0])
	var parts []expr.Node
	if coef != 1 {
		// Π c·f = c^count · Πf.
		cnt := d.stateVar(State{Op: OpCount, Base: &expr.Num{Val: 1}})
		parts = append(parts, &expr.Bin{Op: '^', L: &expr.Num{Val: coef}, R: cnt})
	}
	for _, f := range factors {
		fbase, fexp := expr.SplitFactor(f)
		base, chain, err := extractChain(fbase)
		if err != nil {
			return nil, err
		}
		// Hoist a trailing power out of the state: Π f^c = (Πf)^c.
		norm := chain.NormalizeReal()
		if k := len(norm.Prims); k > 0 && norm.Prims[k-1].Kind == scalar.KPower {
			if c, ok := norm.Prims[k-1].A.(scalar.Num); ok {
				fexp *= float64(c)
				norm = scalar.Chain{Prims: norm.Prims[:k-1]}
			}
		}
		sv := d.stateVar(State{Op: OpProd, F: norm, Base: base})
		if fexp == 1 {
			parts = append(parts, sv)
		} else {
			parts = append(parts, &expr.Bin{Op: '^', L: sv, R: &expr.Num{Val: fexp}})
		}
	}
	return expr.MulAll(parts), nil
}

// extractChain factors a canonical scalar expression into a base input
// expression and a PS∘ chain applied to it: 4·ln(x)² yields base x and
// chain [log_e, power 2, linear 4]. Expressions that do not fit the
// primitive algebra (sums, abs, sgn, multi-factor products with unequal
// exponents) become opaque bases with identity chains.
func extractChain(n expr.Node) (expr.Node, scalar.Chain, error) {
	n = expr.Simplify(n)
	terms := expr.SplitSum(n)
	if len(terms) > 1 {
		return n, scalar.IdentityChain(), nil
	}
	coef, factors := expr.TermParts(terms[0])
	var base expr.Node
	var chain scalar.Chain
	switch len(factors) {
	case 0:
		return n, scalar.NewChain(scalar.Const(coef)), nil
	case 1:
		fbase, fexp := expr.SplitFactor(factors[0])
		var err error
		base, chain, err = extractAtom(fbase)
		if err != nil {
			return nil, scalar.Chain{}, err
		}
		if fexp != 1 {
			chain = chain.Then(scalar.PowerP(fexp))
		}
	default:
		// Multi-factor product: if all factors share one exponent,
		// (u·v)^c factors through a power chain over the product base.
		_, exp0 := expr.SplitFactor(factors[0])
		same := true
		bases := make([]expr.Node, len(factors))
		for i, f := range factors {
			b, e := expr.SplitFactor(f)
			bases[i] = b
			if e != exp0 {
				same = false
			}
		}
		if same && exp0 != 1 {
			base = expr.Simplify(expr.MulAll(bases))
			chain = scalar.NewChain(scalar.PowerP(exp0))
		} else {
			base = expr.MulAll(factors)
			chain = scalar.IdentityChain()
		}
	}
	if coef != 1 {
		chain = chain.Then(scalar.Linear(coef))
	}
	return base, chain, nil
}

// extractAtom peels scalar-function applications (ln, log, exp, b^u) off a
// canonical factor base.
func extractAtom(n expr.Node) (expr.Node, scalar.Chain, error) {
	switch t := n.(type) {
	case *expr.Var:
		return n, scalar.IdentityChain(), nil
	case *expr.Call:
		switch t.Name {
		case "ln":
			base, ch, err := extractChain(t.Args[0])
			if err != nil {
				return nil, scalar.Chain{}, err
			}
			return base, ch.Then(scalar.LogP(scalar.E)), nil
		case "log":
			if b, ok := t.Args[0].(*expr.Num); ok && b.Val > 0 && b.Val != 1 {
				base, ch, err := extractChain(t.Args[1])
				if err != nil {
					return nil, scalar.Chain{}, err
				}
				return base, ch.Then(scalar.LogP(b.Val)), nil
			}
			return n, scalar.IdentityChain(), nil
		case "exp":
			base, ch, err := extractChain(t.Args[0])
			if err != nil {
				return nil, scalar.Chain{}, err
			}
			return base, ch.Then(scalar.ExpP(scalar.E)), nil
		default:
			// abs, sgn and friends are not PS primitives; opaque base.
			return n, scalar.IdentityChain(), nil
		}
	case *expr.Bin:
		if t.Op == '^' {
			if b, ok := t.L.(*expr.Num); ok && b.Val > 0 {
				// b^u is the exponential primitive.
				base, ch, err := extractChain(t.R)
				if err != nil {
					return nil, scalar.Chain{}, err
				}
				return base, ch.Then(scalar.ExpP(b.Val)), nil
			}
		}
		return n, scalar.IdentityChain(), nil
	}
	return n, scalar.IdentityChain(), nil
}
