package canonical

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sudaf/internal/expr"
	"sudaf/internal/scalar"
)

// KernelClass names the specialized batch-kernel shapes of the vectorized
// executor. Kernel selection happens here, on the decomposed state — the
// canonical form is what makes the hot shapes recognizable (sum(x^k) is a
// Σ-state with a power chain, never an opaque expression).
type KernelClass int

const (
	// KernelGeneric uses the batch expression evaluator plus a generic
	// merge loop — correct for every state, fused for none.
	KernelGeneric KernelClass = iota
	// KernelCount is count(): no input column at all.
	KernelCount
	// KernelSumCol is sum(col).
	KernelSumCol
	// KernelSumPow is sum(col^k) for k ∈ {2, 3, 4}.
	KernelSumPow
	// KernelSumMul is sum(colX * colY).
	KernelSumMul
	// KernelProdCol is prod(col).
	KernelProdCol
	// KernelMinCol and KernelMaxCol are min(col) / max(col).
	KernelMinCol
	KernelMaxCol
)

func (k KernelClass) String() string {
	switch k {
	case KernelGeneric:
		return "generic"
	case KernelCount:
		return "count"
	case KernelSumCol:
		return "sum(col)"
	case KernelSumPow:
		return "sum(col^k)"
	case KernelSumMul:
		return "sum(col*col)"
	case KernelProdCol:
		return "prod(col)"
	case KernelMinCol:
		return "min(col)"
	case KernelMaxCol:
		return "max(col)"
	}
	return fmt.Sprintf("KernelClass(%d)", int(k))
}

// KernelPlan is the executor directive chosen for one state: which fused
// loop to run and over which base columns. Pow is the exponent for
// KernelSumPow.
type KernelPlan struct {
	Class     KernelClass
	Col, Col2 string
	Pow       int
}

// SelectKernel classifies the state into a batch-kernel shape. Bases that
// are not bare columns (or a product/power of bare columns with an
// identity chain) fall back to KernelGeneric, which batch-evaluates the
// base expression and applies the scalar chain element-wise.
func (s State) SelectKernel() KernelPlan {
	if s.Op == OpCount {
		return KernelPlan{Class: KernelCount}
	}
	ch := s.F.NormalizeReal()
	v, isVar := s.Base.(*expr.Var)
	ident := ch.IsIdentity()
	switch s.Op {
	case OpSum:
		if isVar {
			if ident {
				return KernelPlan{Class: KernelSumCol, Col: v.Name}
			}
			// A single power primitive with a small integer exponent:
			// sum(x^2) / sum(x^3) / sum(x^4) — the moment states.
			if len(ch.Prims) == 1 && ch.Prims[0].Kind == scalar.KPower {
				if a, err := scalar.CEval(ch.Prims[0].A, nil); err == nil {
					if k := int(a); float64(k) == a && k >= 2 && k <= 4 {
						return KernelPlan{Class: KernelSumPow, Col: v.Name, Pow: k}
					}
				}
			}
			return KernelPlan{Class: KernelGeneric}
		}
		if !ident {
			return KernelPlan{Class: KernelGeneric}
		}
		if b, ok := s.Base.(*expr.Bin); ok {
			if b.Op == '*' {
				if l, lok := b.L.(*expr.Var); lok {
					if r, rok := b.R.(*expr.Var); rok {
						return KernelPlan{Class: KernelSumMul, Col: l.Name, Col2: r.Name}
					}
				}
			}
			if b.Op == '^' {
				if l, lok := b.L.(*expr.Var); lok {
					if r, rok := b.R.(*expr.Num); rok {
						if k := int(r.Val); float64(k) == r.Val && k >= 2 && k <= 4 {
							return KernelPlan{Class: KernelSumPow, Col: l.Name, Pow: k}
						}
					}
				}
			}
		}
	case OpProd:
		if isVar && ident {
			return KernelPlan{Class: KernelProdCol, Col: v.Name}
		}
	case OpMin:
		if isVar && ident {
			return KernelPlan{Class: KernelMinCol, Col: v.Name}
		}
	case OpMax:
		if isVar && ident {
			return KernelPlan{Class: KernelMaxCol, Col: v.Name}
		}
	}
	return KernelPlan{Class: KernelGeneric}
}

// CompileT compiles the terminating function into a closure over the
// state vector, avoiding per-group map environments and tree walks. The
// hardcoded HardT takes precedence when present.
func (f *Form) CompileT() (func(states []float64) float64, error) {
	if f.HardT != nil {
		hard := f.HardT
		return func(states []float64) float64 {
			v, err := hard(states)
			if err != nil {
				return math.NaN()
			}
			return v
		}, nil
	}
	return compileStateExpr(f.T, len(f.States))
}

// compileStateExpr compiles an expression over s1..sk variables.
func compileStateExpr(n expr.Node, k int) (func([]float64) float64, error) {
	switch t := n.(type) {
	case *expr.Num:
		v := t.Val
		return func([]float64) float64 { return v }, nil
	case *expr.Var:
		if !strings.HasPrefix(t.Name, "s") {
			return nil, fmt.Errorf("terminating function references %q", t.Name)
		}
		idx, err := strconv.Atoi(t.Name[1:])
		if err != nil || idx < 1 || idx > k {
			return nil, fmt.Errorf("bad state variable %q", t.Name)
		}
		i := idx - 1
		return func(s []float64) float64 { return s[i] }, nil
	case *expr.Neg:
		x, err := compileStateExpr(t.X, k)
		if err != nil {
			return nil, err
		}
		return func(s []float64) float64 { return -x(s) }, nil
	case *expr.Bin:
		l, err := compileStateExpr(t.L, k)
		if err != nil {
			return nil, err
		}
		r, err := compileStateExpr(t.R, k)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case '+':
			return func(s []float64) float64 { return l(s) + r(s) }, nil
		case '-':
			return func(s []float64) float64 { return l(s) - r(s) }, nil
		case '*':
			return func(s []float64) float64 { return l(s) * r(s) }, nil
		case '/':
			return func(s []float64) float64 { return l(s) / r(s) }, nil
		case '^':
			if c, ok := t.R.(*expr.Num); ok {
				switch c.Val {
				case 2:
					return func(s []float64) float64 { v := l(s); return v * v }, nil
				case 0.5:
					return func(s []float64) float64 { return math.Sqrt(l(s)) }, nil
				case -1:
					return func(s []float64) float64 { return 1 / l(s) }, nil
				}
			}
			return func(s []float64) float64 { return math.Pow(l(s), r(s)) }, nil
		}
		return nil, fmt.Errorf("unknown operator %q", t.Op)
	case *expr.Call:
		args := make([]func([]float64) float64, len(t.Args))
		for i, a := range t.Args {
			c, err := compileStateExpr(a, k)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		switch t.Name {
		case "sqrt":
			a := args[0]
			return func(s []float64) float64 { return math.Sqrt(a(s)) }, nil
		case "cbrt":
			a := args[0]
			return func(s []float64) float64 { return math.Cbrt(a(s)) }, nil
		case "ln":
			a := args[0]
			return func(s []float64) float64 { return math.Log(a(s)) }, nil
		case "log":
			b, x := args[0], args[1]
			return func(s []float64) float64 { return math.Log(x(s)) / math.Log(b(s)) }, nil
		case "exp":
			a := args[0]
			return func(s []float64) float64 { return math.Exp(a(s)) }, nil
		case "abs":
			a := args[0]
			return func(s []float64) float64 { return math.Abs(a(s)) }, nil
		case "sgn":
			a := args[0]
			return func(s []float64) float64 {
				v := a(s)
				if v > 0 {
					return 1
				} else if v < 0 {
					return -1
				}
				return 0
			}, nil
		case "pow":
			a, b := args[0], args[1]
			return func(s []float64) float64 { return math.Pow(a(s), b(s)) }, nil
		case "inv":
			a := args[0]
			return func(s []float64) float64 { return 1 / a(s) }, nil
		}
		return nil, fmt.Errorf("unknown function %q in terminating expression", t.Name)
	}
	return nil, fmt.Errorf("cannot compile %T", n)
}
