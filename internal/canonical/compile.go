package canonical

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sudaf/internal/expr"
)

// CompileT compiles the terminating function into a closure over the
// state vector, avoiding per-group map environments and tree walks. The
// hardcoded HardT takes precedence when present.
func (f *Form) CompileT() (func(states []float64) float64, error) {
	if f.HardT != nil {
		hard := f.HardT
		return func(states []float64) float64 {
			v, err := hard(states)
			if err != nil {
				return math.NaN()
			}
			return v
		}, nil
	}
	return compileStateExpr(f.T, len(f.States))
}

// compileStateExpr compiles an expression over s1..sk variables.
func compileStateExpr(n expr.Node, k int) (func([]float64) float64, error) {
	switch t := n.(type) {
	case *expr.Num:
		v := t.Val
		return func([]float64) float64 { return v }, nil
	case *expr.Var:
		if !strings.HasPrefix(t.Name, "s") {
			return nil, fmt.Errorf("terminating function references %q", t.Name)
		}
		idx, err := strconv.Atoi(t.Name[1:])
		if err != nil || idx < 1 || idx > k {
			return nil, fmt.Errorf("bad state variable %q", t.Name)
		}
		i := idx - 1
		return func(s []float64) float64 { return s[i] }, nil
	case *expr.Neg:
		x, err := compileStateExpr(t.X, k)
		if err != nil {
			return nil, err
		}
		return func(s []float64) float64 { return -x(s) }, nil
	case *expr.Bin:
		l, err := compileStateExpr(t.L, k)
		if err != nil {
			return nil, err
		}
		r, err := compileStateExpr(t.R, k)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case '+':
			return func(s []float64) float64 { return l(s) + r(s) }, nil
		case '-':
			return func(s []float64) float64 { return l(s) - r(s) }, nil
		case '*':
			return func(s []float64) float64 { return l(s) * r(s) }, nil
		case '/':
			return func(s []float64) float64 { return l(s) / r(s) }, nil
		case '^':
			if c, ok := t.R.(*expr.Num); ok {
				switch c.Val {
				case 2:
					return func(s []float64) float64 { v := l(s); return v * v }, nil
				case 0.5:
					return func(s []float64) float64 { return math.Sqrt(l(s)) }, nil
				case -1:
					return func(s []float64) float64 { return 1 / l(s) }, nil
				}
			}
			return func(s []float64) float64 { return math.Pow(l(s), r(s)) }, nil
		}
		return nil, fmt.Errorf("unknown operator %q", t.Op)
	case *expr.Call:
		args := make([]func([]float64) float64, len(t.Args))
		for i, a := range t.Args {
			c, err := compileStateExpr(a, k)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		switch t.Name {
		case "sqrt":
			a := args[0]
			return func(s []float64) float64 { return math.Sqrt(a(s)) }, nil
		case "cbrt":
			a := args[0]
			return func(s []float64) float64 { return math.Cbrt(a(s)) }, nil
		case "ln":
			a := args[0]
			return func(s []float64) float64 { return math.Log(a(s)) }, nil
		case "log":
			b, x := args[0], args[1]
			return func(s []float64) float64 { return math.Log(x(s)) / math.Log(b(s)) }, nil
		case "exp":
			a := args[0]
			return func(s []float64) float64 { return math.Exp(a(s)) }, nil
		case "abs":
			a := args[0]
			return func(s []float64) float64 { return math.Abs(a(s)) }, nil
		case "sgn":
			a := args[0]
			return func(s []float64) float64 {
				v := a(s)
				if v > 0 {
					return 1
				} else if v < 0 {
					return -1
				}
				return 0
			}, nil
		case "pow":
			a, b := args[0], args[1]
			return func(s []float64) float64 { return math.Pow(a(s), b(s)) }, nil
		case "inv":
			a := args[0]
			return func(s []float64) float64 { return 1 / a(s) }, nil
		}
		return nil, fmt.Errorf("unknown function %q in terminating expression", t.Name)
	}
	return nil, fmt.Errorf("cannot compile %T", n)
}
