package canonical

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sudaf/internal/expr"
)

// decompose is a test helper.
func decompose(t *testing.T, name, params, body string) *Form {
	t.Helper()
	var ps []string
	if params != "" {
		ps = strings.Split(params, ",")
	}
	f, err := Decompose(name, ps, expr.MustParse(body))
	if err != nil {
		t.Fatalf("Decompose(%s): %v", name, err)
	}
	return f
}

// stateKeys returns sorted state keys for comparison.
func stateKeys(f *Form) []string {
	out := make([]string, len(f.States))
	for i, s := range f.States {
		out[i] = s.Key()
	}
	sort.Strings(out)
	return out
}

func TestDecomposeTable1(t *testing.T) {
	// Table 1 aggregations: state count and op kinds must match the paper.
	cases := []struct {
		name, params, body string
		wantStates         int
		wantOps            map[AggOp]int
	}{
		{"qm", "x", "sqrt(sum(x^2)/count())", 2, map[AggOp]int{OpSum: 1, OpCount: 1}},
		{"gm", "x", "prod(x)^(1/count())", 2, map[AggOp]int{OpProd: 1, OpCount: 1}},
		{"stddev", "x", "sqrt(sum(x^2)/n - (sum(x)/n)^2)", 3, map[AggOp]int{OpSum: 2, OpCount: 1}},
		{"logsumexp", "x", "ln(sum(exp(x)))", 1, map[AggOp]int{OpSum: 1}},
		{"hm", "x", "count()/sum(x^(-1))", 2, map[AggOp]int{OpSum: 1, OpCount: 1}},
		{"covariance", "x,y", "sum(x*y)/n - sum(x)*sum(y)/n^2", 4, map[AggOp]int{OpSum: 3, OpCount: 1}},
		{"theta1", "x,y", "(count()*sum(x*y)-sum(y)*sum(x))/(count()*sum(x^2)-sum(x)^2)", 5, map[AggOp]int{OpSum: 4, OpCount: 1}},
		{"correlation", "x,y",
			"(n*sum(x*y)-sum(x)*sum(y))/(sqrt(n*sum(x^2)-sum(x)^2)*sqrt(n*sum(y^2)-sum(y)^2))",
			6, map[AggOp]int{OpSum: 5, OpCount: 1}},
		{"power_mean_3", "x", "(sum(x^3)/n)^(1/3)", 2, map[AggOp]int{OpSum: 1, OpCount: 1}},
	}
	for _, c := range cases {
		f := decompose(t, c.name, c.params, c.body)
		if len(f.States) != c.wantStates {
			t.Errorf("%s: got %d states %v, want %d", c.name, len(f.States), stateKeys(f), c.wantStates)
		}
		got := map[AggOp]int{}
		for _, s := range f.States {
			got[s.Op]++
		}
		for op, n := range c.wantOps {
			if got[op] != n {
				t.Errorf("%s: got %d %v states, want %d (%v)", c.name, got[op], op, n, stateKeys(f))
			}
		}
	}
}

func TestDecomposeDedup(t *testing.T) {
	// sum(x) appears three times but must produce one state.
	f := decompose(t, "d", "x", "sum(x)/count() + sum(x)^2 - sum(x)")
	if len(f.States) != 2 {
		t.Fatalf("got %d states (%v), want 2", len(f.States), stateKeys(f))
	}
}

func TestDecomposeEquivalentBodiesShareStates(t *testing.T) {
	// sum(x*x) and sum(x^2) must produce the same state key.
	a := decompose(t, "a", "x", "sum(x*x)")
	b := decompose(t, "b", "x", "sum(x^2)")
	if a.States[0].Key() != b.States[0].Key() {
		t.Errorf("keys differ: %q vs %q", a.States[0].Key(), b.States[0].Key())
	}
}

func TestHoistLinearFromSum(t *testing.T) {
	// Σ4x² = 4·Σx²: the stored state must be the representative Σx².
	a := decompose(t, "a", "x", "sum(4*x^2)")
	b := decompose(t, "b", "x", "sum(x^2)")
	if len(a.States) != 1 || a.States[0].Key() != b.States[0].Key() {
		t.Fatalf("hoisting failed: %v vs %v", stateKeys(a), stateKeys(b))
	}
	// Σ(3x)² = 9Σx² likewise.
	c := decompose(t, "c", "x", "sum((3*x)^2)")
	if c.States[0].Key() != b.States[0].Key() {
		t.Fatalf("(3x)^2 not hoisted: %v", stateKeys(c))
	}
	// And ln(x^3) = 3·ln x.
	d1 := decompose(t, "d1", "x", "sum(ln(x^3))")
	d2 := decompose(t, "d2", "x", "sum(ln(x))")
	if d1.States[0].Key() != d2.States[0].Key() {
		t.Fatalf("ln(x^3) not hoisted: %v vs %v", stateKeys(d1), stateKeys(d2))
	}
}

func TestHoistPowerFromProd(t *testing.T) {
	// Πx² = (Πx)²: stored state must be Πx.
	a := decompose(t, "a", "x", "prod(x^2)")
	b := decompose(t, "b", "x", "prod(x)")
	if a.States[0].Key() != b.States[0].Key() {
		t.Fatalf("power not hoisted from prod: %v vs %v", stateKeys(a), stateKeys(b))
	}
}

func TestSplittingRules(t *testing.T) {
	// SR1: Σ(x²+y²) = Σx² + Σy².
	f := decompose(t, "sr1", "x,y", "sum(x^2+y^2)")
	if len(f.States) != 2 {
		t.Fatalf("SR1: got states %v", stateKeys(f))
	}
	// SR2: Π(x·y) = Πx · Πy.
	g := decompose(t, "sr2", "x,y", "prod(x*y)")
	if len(g.States) != 2 {
		t.Fatalf("SR2: got states %v", stateKeys(g))
	}
	for _, s := range g.States {
		if s.Op != OpProd {
			t.Errorf("SR2 state has op %v", s.Op)
		}
	}
	// Π(2x) = 2^count · Πx.
	h := decompose(t, "sr2c", "x", "prod(2*x)")
	ops := map[AggOp]int{}
	for _, s := range h.States {
		ops[s.Op]++
	}
	if ops[OpCount] != 1 || ops[OpProd] != 1 {
		t.Fatalf("prod const hoist: got %v", stateKeys(h))
	}
}

func TestMinMaxCount(t *testing.T) {
	f := decompose(t, "range", "x", "max(x) - min(x)")
	if len(f.States) != 2 {
		t.Fatalf("got %v", stateKeys(f))
	}
	if f.States[0].Op != OpMax && f.States[1].Op != OpMax {
		t.Error("missing max state")
	}
	c := decompose(t, "cnt", "x", "count()")
	if len(c.States) != 1 || c.States[0].Op != OpCount {
		t.Fatalf("count: %v", stateKeys(c))
	}
	if c.States[0].Key() != "count()" {
		t.Errorf("count key = %q", c.States[0].Key())
	}
}

func TestDecomposeErrors(t *testing.T) {
	cases := []struct{ params, body string }{
		{"x", "x + 1"},          // no aggregate
		{"x", "x + sum(x)"},     // free variable in T
		{"x", "sum(sum(x))"},    // nested aggregate
		{"x", "sum(x+y)"},       // undeclared parameter in state
		{"x", "min(count()+x)"}, // aggregate inside min
		{"x", "prod(sum(x)*x)"}, // aggregate inside prod
	}
	for _, c := range cases {
		_, err := Decompose("bad", strings.Split(c.params, ","), expr.MustParse(c.body))
		if err == nil {
			t.Errorf("Decompose(%q) should fail", c.body)
		}
	}
}

// evalUDAF computes a decomposed UDAF over a dataset directly from its
// canonical form: translate each tuple with F, merge with ⊕, finish with T.
func evalUDAF(t *testing.T, f *Form, xs, ys []float64) float64 {
	t.Helper()
	states := make([]float64, len(f.States))
	for i, s := range f.States {
		acc := s.MergeIdentity()
		for j := range xs {
			var fx float64
			switch {
			case s.Op == OpCount:
				fx = 1
			default:
				env := expr.MapEnv{"x": xs[j]}
				if ys != nil {
					env["y"] = ys[j]
				}
				base, err := expr.Eval(s.Base, env)
				if err != nil {
					t.Fatalf("eval base: %v", err)
				}
				fx = s.F.Eval(base)
			}
			acc = s.Update(acc, fx)
		}
		states[i] = acc
	}
	v, err := f.Evaluate(states)
	if err != nil {
		t.Fatalf("Evaluate(%s): %v", f.Name, err)
	}
	return v
}

// TestCanonicalFormCorrectness: for each aggregation, computing via the
// canonical form must equal computing the textbook formula directly.
func TestCanonicalFormCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 0.5 + r.Float64()*9
		ys[i] = 0.5 + r.Float64()*4
	}
	sum := func(vs []float64, f func(float64) float64) float64 {
		acc := 0.0
		for _, v := range vs {
			acc += f(v)
		}
		return acc
	}
	sx := sum(xs, func(v float64) float64 { return v })
	sx2 := sum(xs, func(v float64) float64 { return v * v })
	sy := sum(ys, func(v float64) float64 { return v })
	sxy := 0.0
	for i := range xs {
		sxy += xs[i] * ys[i]
	}
	nf := float64(n)

	checks := []struct {
		name, params, body string
		want               float64
	}{
		{"qm", "x", "sqrt(sum(x^2)/count())", math.Sqrt(sx2 / nf)},
		{"stddev", "x", "sqrt(sum(x^2)/n - (sum(x)/n)^2)", math.Sqrt(sx2/nf - (sx/nf)*(sx/nf))},
		{"avg", "x", "avg(x)", sx / nf},
		{"hm", "x", "count()/sum(x^(-1))", nf / sum(xs, func(v float64) float64 { return 1 / v })},
		{"gm", "x", "prod(x)^(1/count())", math.Exp(sum(xs, math.Log) / nf)},
		{"theta1", "x,y", "(count()*sum(x*y)-sum(y)*sum(x))/(count()*sum(x^2)-sum(x)^2)",
			(nf*sxy - sy*sx) / (nf*sx2 - sx*sx)},
		{"logsumexp", "x", "ln(sum(exp(x)))",
			math.Log(sum(xs, math.Exp))},
		{"range", "x", "max(x)-min(x)", maxOf(xs) - minOf(xs)},
		{"sum4x2", "x", "sum(4*x^2)", 4 * sx2},
		{"cm_shifted", "x", "sum(x^3)/n - 3*(sum(x^2)/n)*(sum(x)/n) + 2*(sum(x)/n)^3",
			centralMoment3(xs)},
	}
	for _, c := range checks {
		var ps []string = strings.Split(c.params, ",")
		f, err := Decompose(c.name, ps, expr.MustParse(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var yv []float64
		if len(ps) > 1 {
			yv = ys
		}
		got := evalUDAF(t, f, xs, yv)
		if math.Abs(got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: canonical form gives %v, direct gives %v\nform: %s",
				c.name, got, c.want, f)
		}
	}
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		m = math.Min(m, v)
	}
	return m
}

func maxOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		m = math.Max(m, v)
	}
	return m
}

func centralMoment3(vs []float64) float64 {
	n := float64(len(vs))
	mu := 0.0
	for _, v := range vs {
		mu += v
	}
	mu /= n
	acc := 0.0
	for _, v := range vs {
		d := v - mu
		acc += d * d * d
	}
	return acc / n
}

func TestFormString(t *testing.T) {
	f := decompose(t, "qm", "x", "sqrt(sum(x^2)/count())")
	s := f.String()
	if !strings.Contains(s, "F=") || !strings.Contains(s, "T=") {
		t.Errorf("String() = %q", s)
	}
}

func TestStateMerge(t *testing.T) {
	sumState := State{Op: OpSum}
	if sumState.Merge(2, 3) != 5 || sumState.MergeIdentity() != 0 {
		t.Error("sum merge")
	}
	prodState := State{Op: OpProd}
	if prodState.Merge(2, 3) != 6 || prodState.MergeIdentity() != 1 {
		t.Error("prod merge")
	}
	minState := State{Op: OpMin}
	if minState.Merge(2, 3) != 2 || !math.IsInf(minState.MergeIdentity(), 1) {
		t.Error("min merge")
	}
	maxState := State{Op: OpMax}
	if maxState.Merge(2, 3) != 3 || !math.IsInf(maxState.MergeIdentity(), -1) {
		t.Error("max merge")
	}
}

func TestMultivariateBase(t *testing.T) {
	// The cofactor Σ x·y is a univariate aggregate over the abstract
	// column x·y (footnote 3 in the paper).
	f := decompose(t, "cof", "x,y", "sum(x*y)")
	if len(f.States) != 1 {
		t.Fatalf("states: %v", stateKeys(f))
	}
	if got := f.States[0].Base.String(); got != "(x*y)" {
		t.Errorf("base = %q", got)
	}
}

func TestEvaluateArityMismatch(t *testing.T) {
	f := decompose(t, "qm", "x", "sqrt(sum(x^2)/count())")
	if _, err := f.Evaluate([]float64{1}); err == nil {
		t.Error("expected arity error")
	}
}
