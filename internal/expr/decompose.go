package expr

// Helpers for pattern-matching the canonical trees produced by Simplify:
// a canonical tree is a left-leaning '+' spine of terms; a term is a
// left-leaning '*' spine whose first factor may be a numeric coefficient;
// a factor is base or base^Num. The canonicalizer in internal/canonical
// uses these to factor aggregation states out of UDAF bodies.

// SplitSum flattens the top-level '+' spine of a canonical tree into its
// additive terms. Non-sum nodes yield a single term.
func SplitSum(n Node) []Node {
	if b, ok := n.(*Bin); ok && b.Op == '+' {
		return append(SplitSum(b.L), SplitSum(b.R)...)
	}
	return []Node{n}
}

// SplitProduct flattens the top-level '*' spine of a term into its factors.
func SplitProduct(n Node) []Node {
	if b, ok := n.(*Bin); ok && b.Op == '*' {
		return append(SplitProduct(b.L), SplitProduct(b.R)...)
	}
	return []Node{n}
}

// SplitFactor decomposes a canonical factor into base and exponent:
// base^Num yields (base, exponent); anything else is (n, 1).
func SplitFactor(n Node) (Node, float64) {
	if b, ok := n.(*Bin); ok && b.Op == '^' {
		if e, ok := b.R.(*Num); ok {
			return b.L, e.Val
		}
	}
	return n, 1
}

// TermParts decomposes a canonical term into its numeric coefficient and
// its non-numeric factors.
func TermParts(term Node) (coef float64, factors []Node) {
	coef = 1
	for _, f := range SplitProduct(term) {
		if num, ok := f.(*Num); ok {
			coef *= num.Val
			continue
		}
		factors = append(factors, f)
	}
	return coef, factors
}

// MulAll multiplies nodes into a single product tree ({} → 1).
func MulAll(ns []Node) Node {
	if len(ns) == 0 {
		return &Num{Val: 1}
	}
	out := ns[0]
	for _, n := range ns[1:] {
		out = &Bin{Op: '*', L: out, R: n}
	}
	return out
}

// AddAll sums nodes into a single sum tree ({} → 0).
func AddAll(ns []Node) Node {
	if len(ns) == 0 {
		return &Num{Val: 0}
	}
	out := ns[0]
	for _, n := range ns[1:] {
		out = &Bin{Op: '+', L: out, R: n}
	}
	return out
}
