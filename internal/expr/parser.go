package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp     // + - * / ^
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a UDAF expression.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9' || c == '.':
			start := l.pos
			seenDot := false
			seenExp := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch >= '0' && ch <= '9' {
					l.pos++
				} else if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					l.pos++
				} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos > start {
					// exponent must be followed by digits or sign
					if l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
						seenExp = true
						l.pos += 2
					} else {
						break
					}
				} else {
					break
				}
			}
			l.toks = append(l.toks, token{tokNum, l.src[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '^':
			l.toks = append(l.toks, token{tokOp, string(c), l.pos})
			l.pos++
		case c == '(':
			l.toks = append(l.toks, token{tokLParen, "(", l.pos})
			l.pos++
		case c == ')':
			l.toks = append(l.toks, token{tokRParen, ")", l.pos})
			l.pos++
		case c == ',':
			l.toks = append(l.toks, token{tokComma, ",", l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(l.src)})
	return l.toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// parser is a recursive-descent parser with standard precedence:
// ^ (right-assoc, binds tightest), unary -, then * /, then + -.
type parser struct {
	toks  []token
	i     int
	src   string
	depth int
}

// maxParseDepth bounds expression nesting. The parser (and every AST
// consumer after it: String, Simplify, Eval, Walk) recurses per nesting
// level, so unbounded input depth means an unrecoverable goroutine stack
// overflow. 500 is far beyond any real UDAF definition.
const maxParseDepth = 500

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("expression nested deeper than %d levels", maxParseDepth)
	}
	return nil
}

// Parse parses a UDAF expression into an AST.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	n, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return n, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, fmt.Errorf("expected %s at offset %d, found %q", what, t.pos, t.text)
	}
	return p.next(), nil
}

func (p *parser) parseAdd() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &Bin{Op: t.text[0], L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMul() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Bin{Op: t.text[0], L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	}
	if t.kind == tokOp && t.text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePow()
}

func (p *parser) parsePow() (Node, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp && t.text == "^" {
		p.next()
		// right-associative; exponent may itself be a unary-negated power
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: '^', L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNum:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q at offset %d: %v", t.text, t.pos, err)
		}
		return &Num{Val: v}, nil
	case tokIdent:
		p.next()
		name := strings.ToLower(t.text)
		if p.peek().kind == tokLParen {
			p.next()
			var args []Node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseAdd()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokComma {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return p.checkCall(name, args, t.pos)
		}
		switch name {
		case "pi":
			return &Num{Val: 3.141592653589793}, nil
		case "e":
			return &Num{Val: 2.718281828459045}, nil
		case "n":
			// n is sugar for count() in statistics formulas.
			return &Call{Name: "count"}, nil
		}
		return &Var{Name: t.text}, nil
	case tokLParen:
		p.next()
		n, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return n, nil
	}
	return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
}

func (p *parser) checkCall(name string, args []Node, pos int) (Node, error) {
	if AggregateFuncs[name] {
		want := 1
		if name == "count" {
			want = 0
		}
		if len(args) != want {
			return nil, fmt.Errorf("aggregate %s takes %d argument(s), got %d (offset %d)", name, want, len(args), pos)
		}
		return &Call{Name: name, Args: args}, nil
	}
	if arity, ok := ScalarFuncs[name]; ok {
		if len(args) != arity {
			return nil, fmt.Errorf("function %s takes %d argument(s), got %d (offset %d)", name, arity, len(args), pos)
		}
		return &Call{Name: name, Args: args}, nil
	}
	return nil, fmt.Errorf("unknown function %q at offset %d", name, pos)
}
