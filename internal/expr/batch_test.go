package expr

import (
	"math"
	"math/rand"
	"testing"
)

// genNode builds a random expression over variables x, y, z covering
// every operator and scalar function the evaluators know.
func genNode(rng *rand.Rand, depth int) Node {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			consts := []float64{0, 1, -1, 0.5, 2, 3, -2.5, 7, 1e-3, 1e6}
			return &Num{Val: consts[rng.Intn(len(consts))]}
		default:
			names := []string{"x", "y", "z"}
			return &Var{Name: names[rng.Intn(len(names))]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Neg{X: genNode(rng, depth-1)}
	case 1, 2, 3, 4:
		ops := []byte{'+', '-', '*', '/', '^'}
		op := ops[rng.Intn(len(ops))]
		r := genNode(rng, depth-1)
		if op == '^' && rng.Intn(2) == 0 {
			// Exercise the strength-reduced exponents too.
			pows := []float64{2, 3, -1, 0.5, 4}
			r = &Num{Val: pows[rng.Intn(len(pows))]}
		}
		return &Bin{Op: op, L: genNode(rng, depth-1), R: r}
	case 5, 6:
		unary := []string{"sqrt", "cbrt", "ln", "exp", "abs", "sgn", "inv"}
		return &Call{Name: unary[rng.Intn(len(unary))], Args: []Node{genNode(rng, depth-1)}}
	default:
		binary := []string{"log", "pow"}
		return &Call{Name: binary[rng.Intn(len(binary))],
			Args: []Node{genNode(rng, depth-1), genNode(rng, depth-1)}}
	}
}

// genValue draws inputs that stress every numeric regime: ordinary
// magnitudes, zeros, negatives, subnormals, and the IEEE specials.
func genValue(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return math.NaN()
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return -rng.Float64() * 100
	case 5:
		return rng.Float64() * 1e-300
	default:
		return (rng.Float64() - 0.5) * 200
	}
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// TestEvalBatchMatchesEval is the property test: for random expressions
// and random batches (including NaN/±Inf/zero/negative inputs), EvalBatch
// must produce bit-identical results to row-by-row Eval.
func TestEvalBatchMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows = 257 // deliberately not a power of two
	for trial := 0; trial < 500; trial++ {
		node := genNode(rng, 1+rng.Intn(4))
		vecs := MapVecEnv{
			"x": make([]float64, rows),
			"y": make([]float64, rows),
			"z": make([]float64, rows),
		}
		for _, v := range vecs {
			for i := range v {
				v[i] = genValue(rng)
			}
		}
		out := make([]float64, rows)
		if err := EvalBatch(node, vecs, rows, out); err != nil {
			t.Fatalf("trial %d: EvalBatch(%s): %v", trial, node.String(), err)
		}
		env := MapEnv{}
		for i := 0; i < rows; i++ {
			for name, v := range vecs {
				env[name] = v[i]
			}
			want, err := Eval(node, env)
			if err != nil {
				t.Fatalf("trial %d: Eval(%s): %v", trial, node.String(), err)
			}
			if !sameBits(out[i], want) {
				t.Fatalf("trial %d: %s row %d: batch %v (%#x), scalar %v (%#x)",
					trial, node.String(), i, out[i], math.Float64bits(out[i]),
					want, math.Float64bits(want))
			}
		}
	}
}

// TestEvalBatchErrors checks the failure contract: unbound variables,
// short vectors, aggregates in scalar position, and undersized outputs
// all surface as errors, never as silent partial writes.
func TestEvalBatchErrors(t *testing.T) {
	n := MustParse("x + y")
	out := make([]float64, 4)
	if err := EvalBatch(n, MapVecEnv{"x": make([]float64, 4)}, 4, out); err == nil {
		t.Error("unbound variable should fail")
	}
	if err := EvalBatch(n, MapVecEnv{"x": make([]float64, 2), "y": make([]float64, 4)}, 4, out); err == nil {
		t.Error("short vector should fail")
	}
	if err := EvalBatch(MustParse("sum(x)"), MapVecEnv{"x": make([]float64, 4)}, 4, out); err == nil {
		t.Error("aggregate in scalar context should fail")
	}
	if err := EvalBatch(n, MapVecEnv{"x": make([]float64, 8), "y": make([]float64, 8)}, 8, out); err == nil {
		t.Error("undersized out should fail")
	}
}

// FuzzEvalBatchMatchesEval fuzzes expression text and a value triple:
// whenever the expression parses and evaluates as a scalar, the batch
// evaluator must agree bit for bit on a batch assembled from rotations of
// the triple.
func FuzzEvalBatchMatchesEval(f *testing.F) {
	f.Add("x + y*z", 1.5, -2.0, 0.25)
	f.Add("sqrt(x^2 + y^2)", 3.0, 4.0, 0.0)
	f.Add("log(x, abs(y)+1) / (z - x)", 2.0, -7.0, 2.0)
	f.Add("exp(ln(x)) - pow(y, z)", 0.1, 2.0, 10.0)
	f.Add("inv(sgn(x)) + cbrt(y)", -5.0, 8.0, 1.0)
	f.Fuzz(func(t *testing.T, src string, a, b, c float64) {
		node, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		vals := []float64{a, b, c}
		const rows = 3
		vecs := MapVecEnv{"x": make([]float64, rows), "y": make([]float64, rows), "z": make([]float64, rows)}
		for i := 0; i < rows; i++ {
			vecs["x"][i] = vals[i%3]
			vecs["y"][i] = vals[(i+1)%3]
			vecs["z"][i] = vals[(i+2)%3]
		}
		out := make([]float64, rows)
		batchErr := EvalBatch(node, vecs, rows, out)
		for i := 0; i < rows; i++ {
			env := MapEnv{"x": vecs["x"][i], "y": vecs["y"][i], "z": vecs["z"][i]}
			want, scalarErr := Eval(node, env)
			if (batchErr != nil) != (scalarErr != nil) {
				t.Fatalf("%q: batch err %v, scalar err %v", src, batchErr, scalarErr)
			}
			if batchErr != nil {
				return
			}
			if !sameBits(out[i], want) {
				t.Fatalf("%q row %d: batch %v, scalar %v", src, i, out[i], want)
			}
		}
	})
}
