// Package expr implements the mathematical expression language in which
// SUDAF users write user-defined aggregate functions (UDAFs).
//
// An expression is built from numbers, variables (column references or
// formal parameters such as x and y), the binary operators + - * / ^,
// scalar functions (sqrt, ln, log, exp, abs, sgn, pow) and aggregate
// functions (sum, prod, count, avg, min, max). The package provides a
// lexer, a recursive-descent parser, an algebraic simplifier that brings
// expressions into a canonical sum-of-products form, and an evaluator.
//
// The simplifier is what lets the canonicalizer (internal/canonical)
// recognize that sum(x*x) and sum(x^2) denote the same aggregation state.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Node is an expression tree node. Nodes are immutable after construction;
// transformations return new trees.
type Node interface {
	// String renders the node as parseable source text.
	String() string
}

// Num is a numeric literal.
type Num struct{ Val float64 }

// Var is a reference to a variable: a UDAF formal parameter, a column
// name, or a state placeholder such as s1 introduced by canonicalization.
type Var struct{ Name string }

// Bin is a binary operation. Op is one of '+', '-', '*', '/', '^'.
type Bin struct {
	Op   byte
	L, R Node
}

// Neg is unary negation.
type Neg struct{ X Node }

// Call is a function application, scalar or aggregate.
type Call struct {
	Name string
	Args []Node
}

func (n *Num) String() string {
	if n.Val < 0 {
		return "(" + FormatFloat(n.Val) + ")"
	}
	return FormatFloat(n.Val)
}

func (v *Var) String() string { return v.Name }

func (b *Bin) String() string {
	return "(" + b.L.String() + string(b.Op) + b.R.String() + ")"
}

func (n *Neg) String() string { return "(-" + n.X.String() + ")" }

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ",") + ")"
}

// FormatFloat renders a float compactly and deterministically, so that
// canonical strings of equal expressions compare equal.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// AggregateFuncs are the aggregate function names recognized inside UDAF
// expressions. count takes zero arguments; the rest take one.
var AggregateFuncs = map[string]bool{
	"sum":   true,
	"prod":  true,
	"count": true,
	"avg":   true,
	"min":   true,
	"max":   true,
}

// ScalarFuncs maps recognized scalar function names to their arity.
var ScalarFuncs = map[string]int{
	"sqrt": 1,
	"cbrt": 1,
	"ln":   1,
	"log":  2, // log(base, x)
	"exp":  1,
	"abs":  1,
	"sgn":  1,
	"pow":  2,
	"inv":  1, // inv(x) = 1/x, convenience
}

// IsAggregate reports whether the node is an aggregate function call.
func IsAggregate(n Node) bool {
	c, ok := n.(*Call)
	return ok && AggregateFuncs[c.Name]
}

// ContainsAggregate reports whether any descendant of n is an aggregate call.
func ContainsAggregate(n Node) bool {
	found := false
	Walk(n, func(m Node) bool {
		if IsAggregate(m) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Walk visits n and its descendants in preorder. If fn returns false the
// walk does not descend into that node's children.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch t := n.(type) {
	case *Bin:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case *Neg:
		Walk(t.X, fn)
	case *Call:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	}
}

// Rewrite applies fn bottom-up, replacing each node by fn's result.
func Rewrite(n Node, fn func(Node) Node) Node {
	switch t := n.(type) {
	case *Bin:
		return fn(&Bin{Op: t.Op, L: Rewrite(t.L, fn), R: Rewrite(t.R, fn)})
	case *Neg:
		return fn(&Neg{X: Rewrite(t.X, fn)})
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = Rewrite(a, fn)
		}
		return fn(&Call{Name: t.Name, Args: args})
	default:
		return fn(n)
	}
}

// Vars returns the sorted set of variable names referenced by n.
func Vars(n Node) []string {
	set := map[string]bool{}
	Walk(n, func(m Node) bool {
		if v, ok := m.(*Var); ok {
			set[v.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports structural equality of two expression trees.
func Equal(a, b Node) bool {
	switch ta := a.(type) {
	case *Num:
		tb, ok := b.(*Num)
		return ok && ta.Val == tb.Val
	case *Var:
		tb, ok := b.(*Var)
		return ok && ta.Name == tb.Name
	case *Neg:
		tb, ok := b.(*Neg)
		return ok && Equal(ta.X, tb.X)
	case *Bin:
		tb, ok := b.(*Bin)
		return ok && ta.Op == tb.Op && Equal(ta.L, tb.L) && Equal(ta.R, tb.R)
	case *Call:
		tb, ok := b.(*Call)
		if !ok || ta.Name != tb.Name || len(ta.Args) != len(tb.Args) {
			return false
		}
		for i := range ta.Args {
			if !Equal(ta.Args[i], tb.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Substitute returns n with every Var whose name appears in bind replaced
// by the bound expression.
func Substitute(n Node, bind map[string]Node) Node {
	return Rewrite(n, func(m Node) Node {
		if v, ok := m.(*Var); ok {
			if r, ok := bind[v.Name]; ok {
				return r
			}
		}
		return m
	})
}

// MustParse parses src and panics on error. Intended for tests and for
// built-in definitions that are known to be valid.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("expr.MustParse(%q): %v", src, err))
	}
	return n
}
