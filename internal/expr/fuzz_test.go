package expr

import (
	"strings"
	"testing"
)

// FuzzParse drives the expression parser with arbitrary input. For any
// input that parses, it checks the printer/parser round-trip (String()
// must reparse to the same canonical form), that Simplify and Eval
// terminate without panicking, and that Simplify preserves the canonical
// form's ability to be printed and reparsed.
// TestParseDepthLimit pins the fix for a fuzzing find: deeply nested
// input used to recurse once per level and kill the process with an
// unrecoverable stack overflow. The parser now rejects it with an error.
func TestParseDepthLimit(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("(", 100_000) + "x" + strings.Repeat(")", 100_000),
		strings.Repeat("-", 100_000) + "x",
		strings.Repeat("abs(", 100_000) + "x" + strings.Repeat(")", 100_000),
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected depth error for %d-byte input", len(src))
		}
	}
	// Left-associated chains grow the token list, not the stack.
	if _, err := Parse(strings.Repeat("1+", 100_000) + "1"); err != nil {
		t.Errorf("wide expression should parse: %v", err)
	}
	// Real UDAF definitions stay far below the limit (each paren level
	// costs two recursion frames, so 200 parens ≈ depth 400).
	if _, err := Parse(strings.Repeat("(", 200) + "x" + strings.Repeat(")", 200)); err != nil {
		t.Errorf("200-deep nesting should parse: %v", err)
	}
}

func FuzzParse(f *testing.F) {
	seeds := []string{
		"x",
		"sum(x^2)",
		"sqrt(sum(x^2)/count())",
		"prod(x)^(1/count())",
		"ln(sum(exp(x)))",
		"count()/sum(x^(-1))",
		"(sum(x*y) - sum(x)*sum(y)/count()) / count()",
		"1 + 2 * 3 - 4 / 5",
		"-x^2",
		"2^-3",
		"1e3 + 1.5e-2 + .5",
		"abs(sgn(cbrt(inv(x))))",
		"x_1 + x_2",
		"((((x))))",
		"sum(2*x) / 2",
		// Regression seeds from earlier fuzzing sessions.
		"0e-0",     // zero with exponent: FormatFloat must round-trip
		"1e309",    // overflows to +Inf at lex time
		"9e99^9e99",
		strings.Repeat("(", 30) + "x" + strings.Repeat(")", 30),
		strings.Repeat("-", 40) + "x",
		"sum(" + strings.Repeat("abs(", 20) + "x" + strings.Repeat(")", 20) + ")",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		s := n.String()
		n2, err := Parse(s)
		if err != nil {
			t.Fatalf("String() of parsed %q does not reparse: %q: %v", src, s, err)
		}
		c1, c2 := CanonicalString(n), CanonicalString(n2)
		if c1 != c2 {
			t.Fatalf("round-trip changed canonical form: %q -> %q vs %q", src, c1, c2)
		}
		// Simplify and Eval must terminate cleanly on anything that parses.
		env := MapEnv{}
		for _, v := range Vars(n) {
			env[v] = 1.5
		}
		if !ContainsAggregate(n) {
			_, _ = Eval(n, env)
			_, _ = Eval(Simplify(n), env)
		}
	})
}
