package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1+2*3", "(1+(2*3))"},
		{"(1+2)*3", "((1+2)*3)"},
		{"2^3^2", "(2^(3^2))"},
		{"-x^2", "(-(x^2))"},
		{"x-y-z", "((x-y)-z)"},
		{"sum(x)/count()", "(sum(x)/count())"},
		{"sqrt(sum(x^2)/n)", "sqrt((sum((x^2))/count()))"},
		{"log(2, x)", "log(2,x)"},
		{"a_b2 * C", "(a_b2*C)"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if n.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, n.String(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1+", "sum(x", "sum()", "count(x)", "log(x)", "sqrt(x,y)",
		"foo(x)", "1 @ 2", "((x)", "x y", "1..2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestParseNumberForms(t *testing.T) {
	for src, want := range map[string]float64{
		"1.5e3":  1500,
		"2E-2":   0.02,
		"0.25":   0.25,
		".5":     0.5,
		"3":      3,
		"1e2":    100,
		"1.5e+1": 15,
	} {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		num, ok := n.(*Num)
		if !ok || num.Val != want {
			t.Errorf("Parse(%q) = %v, want %v", src, n, want)
		}
	}
}

func TestSimplifyCanonicalEquality(t *testing.T) {
	// Pairs that must simplify to identical canonical strings.
	pairs := [][2]string{
		{"x*x", "x^2"},
		{"x*x*x", "x^3"},
		{"2*x+3*x", "5*x"},
		{"x*y", "y*x"},
		{"x+y", "y+x"},
		{"(3*x)^2", "9*x^2"},
		{"x^2*x^3", "x^5"},
		{"x/x", "1"},
		{"x-x", "0"},
		{"sqrt(x^2)^2", "x^2"},
		{"(x-y)^2", "x^2-2*x*y+y^2"},
		{"pow(x,3)", "x^3"},
		{"inv(x)", "x^(-1)"},
		{"sqrt(4)", "2"},
		{"ln(e)", "1"},
		{"log(2,8)", "3"},
		{"2^3", "8"},
		{"x/(y*z)", "x*y^(-1)*z^(-1)"},
		{"sum(x*x)", "sum(x^2)"},
		{"sqrt(sum(x*x)/n)", "sqrt(sum(x^2)/count())"},
		{"-(-x)", "x"},
		{"cbrt(x^3)", "x"},
		{"abs(-3)", "3"},
		{"sgn(-2)", "-1"},
		{"x^0", "1"},
		{"x^1", "x"},
		{"(x*y)^2", "x^2*y^2"},
		{"1/(x-y)^2", "(x-y)^(-2)"},
	}
	for _, p := range pairs {
		a := CanonicalString(MustParse(p[0]))
		b := CanonicalString(MustParse(p[1]))
		if a != b {
			t.Errorf("canonical mismatch: %q -> %s, %q -> %s", p[0], a, p[1], b)
		}
	}
}

func TestSimplifyKeepsDistinct(t *testing.T) {
	pairs := [][2]string{
		{"x^2", "x^3"},
		{"sum(x)", "sum(y)"},
		{"sum(x^2)", "sum(x)^2"},
		{"ln(x)", "ln(y)"},
		{"x+y", "x*y"},
		{"exp(x)", "ln(x)"},
	}
	for _, p := range pairs {
		a := CanonicalString(MustParse(p[0]))
		b := CanonicalString(MustParse(p[1]))
		if a == b {
			t.Errorf("canonical collision: %q and %q both -> %s", p[0], p[1], a)
		}
	}
}

// randomExpr builds a random scalar expression over variables x, y with
// positive-safe operations so evaluation is well-defined.
func randomExpr(r *rand.Rand, depth int) Node {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Num{Val: float64(r.Intn(9) + 1)}
		case 1:
			return &Var{Name: "x"}
		default:
			return &Var{Name: "y"}
		}
	}
	switch r.Intn(6) {
	case 0:
		return &Bin{Op: '+', L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &Bin{Op: '-', L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 2:
		return &Bin{Op: '*', L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 3:
		return &Bin{Op: '/', L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 4:
		return &Bin{Op: '^', L: randomExpr(r, depth-1), R: &Num{Val: float64(r.Intn(3) + 1)}}
	default:
		return &Neg{X: randomExpr(r, depth-1)}
	}
}

// TestSimplifyPreservesValue is the core property test: simplification
// never changes the value of an expression at positive inputs.
func TestSimplifyPreservesValue(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		n := randomExpr(r, 4)
		env := MapEnv{"x": 0.5 + r.Float64()*4, "y": 0.5 + r.Float64()*4}
		v1, err1 := Eval(n, env)
		v2, err2 := Eval(Simplify(n), env)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval error: %v / %v on %s", err1, err2, n)
		}
		if math.IsNaN(v1) || math.IsInf(v1, 0) || hasNonFiniteIntermediate(n, env) {
			continue // a singular intermediate: algebraic laws do not apply
		}
		if diff := math.Abs(v1 - v2); diff > 1e-9*(1+math.Abs(v1)) {
			t.Fatalf("simplify changed value of %s: %v vs %v (simplified %s)",
				n, v1, v2, Simplify(n))
		}
	}
}

// hasNonFiniteIntermediate reports whether evaluating any subexpression of
// n yields NaN or ±Inf (e.g. a division by a coincidental zero), in which
// case value-preservation of algebraic rewrites is not expected.
func hasNonFiniteIntermediate(n Node, env Env) bool {
	bad := false
	Walk(n, func(m Node) bool {
		if bad {
			return false
		}
		if v, err := Eval(m, env); err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
			bad = true
			return false
		}
		return true
	})
	return bad
}

// TestSimplifyIdempotent checks Simplify(Simplify(n)) == Simplify(n).
func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		n := randomExpr(r, 4)
		s1 := Simplify(n)
		s2 := Simplify(s1)
		if s1.String() != s2.String() {
			t.Fatalf("not idempotent: %s -> %s -> %s", n, s1, s2)
		}
	}
}

func TestSimplifyStringRoundTrip(t *testing.T) {
	// Canonical strings must re-parse to the same canonical form.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		n := Simplify(randomExpr(r, 3))
		re, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", n.String(), err)
		}
		if CanonicalString(re) != n.String() {
			t.Fatalf("round trip changed: %s vs %s", n.String(), CanonicalString(re))
		}
	}
}

func TestEvalScalarFunctions(t *testing.T) {
	env := MapEnv{"x": 4, "y": -2}
	cases := map[string]float64{
		"sqrt(x)":     2,
		"ln(exp(x))":  4,
		"log(2,x)":    2,
		"abs(y)":      2,
		"sgn(y)":      -1,
		"sgn(0)":      0,
		"pow(x,0.5)":  2,
		"inv(x)":      0.25,
		"cbrt(8)":     2,
		"x^y":         0.0625,
		"-x + 2*y":    -8,
		"exp(0)":      1,
		"2^(-1)":      0.5,
		"(x+y)*(x-y)": 12,
	}
	for src, want := range cases {
		got, err := Eval(MustParse(src), env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(MustParse("x+z"), MapEnv{"x": 1}); err == nil {
		t.Error("expected unbound variable error")
	}
	if _, err := Eval(MustParse("sum(x)"), MapEnv{"x": 1}); err == nil {
		t.Error("expected aggregate-in-scalar error")
	}
}

func TestVarsAndWalk(t *testing.T) {
	n := MustParse("sum(x*y) + count() - b*ln(a)")
	got := Vars(n)
	want := []string{"a", "b", "x", "y"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if !ContainsAggregate(n) {
		t.Error("ContainsAggregate should be true")
	}
	if ContainsAggregate(MustParse("x+ln(y)")) {
		t.Error("ContainsAggregate should be false")
	}
}

func TestSubstitute(t *testing.T) {
	n := MustParse("sum(x)/count()")
	sub := Substitute(n, map[string]Node{"x": MustParse("price*2")})
	want := "(sum((price*2))/count())"
	if sub.String() != want {
		t.Errorf("Substitute = %s, want %s", sub.String(), want)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("sum(x^2)/count()")
	b := MustParse("sum(x^2)/count()")
	c := MustParse("sum(x^2)/sum(x)")
	if !Equal(a, b) {
		t.Error("Equal(a,b) should be true")
	}
	if Equal(a, c) {
		t.Error("Equal(a,c) should be false")
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(2) != "2" {
		t.Errorf("FormatFloat(2) = %s", FormatFloat(2))
	}
	if FormatFloat(0.5) != "0.5" {
		t.Errorf("FormatFloat(0.5) = %s", FormatFloat(0.5))
	}
	if strings.Contains(FormatFloat(1e20), ".") {
		// large values fall back to 'g'; just ensure it parses back
		t.Logf("large float format: %s", FormatFloat(1e20))
	}
}

// Property: addition commutes under canonicalization (quick check over
// random small integer coefficient pairs).
func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b int8) bool {
		l := &Bin{Op: '+', L: &Bin{Op: '*', L: &Num{Val: float64(a)}, R: &Var{Name: "x"}}, R: &Num{Val: float64(b)}}
		r := &Bin{Op: '+', L: &Num{Val: float64(b)}, R: &Bin{Op: '*', L: &Num{Val: float64(a)}, R: &Var{Name: "x"}}}
		return CanonicalString(l) == CanonicalString(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
