package expr

import (
	"fmt"
	"math"
)

// Env supplies variable values during evaluation.
type Env interface {
	// Value returns the value bound to name, and whether it is bound.
	Value(name string) (float64, bool)
}

// MapEnv is an Env backed by a map.
type MapEnv map[string]float64

// Value implements Env.
func (m MapEnv) Value(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// Eval evaluates a scalar expression (no aggregate calls) in env.
// Domain errors (log of a non-positive number, division by zero) surface
// as NaN or ±Inf, matching SQL engines' floating-point behaviour; callers
// that need errors should check math.IsNaN/IsInf on the result.
func Eval(n Node, env Env) (float64, error) {
	switch t := n.(type) {
	case *Num:
		return t.Val, nil
	case *Var:
		v, ok := env.Value(t.Name)
		if !ok {
			return 0, fmt.Errorf("unbound variable %q", t.Name)
		}
		return v, nil
	case *Neg:
		v, err := Eval(t.X, env)
		return -v, err
	case *Bin:
		l, err := Eval(t.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(t.R, env)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		case '^':
			return math.Pow(l, r), nil
		}
		return 0, fmt.Errorf("unknown operator %q", t.Op)
	case *Call:
		if AggregateFuncs[t.Name] {
			return 0, fmt.Errorf("aggregate %s() cannot be evaluated as a scalar", t.Name)
		}
		args := make([]float64, len(t.Args))
		for i, a := range t.Args {
			v, err := Eval(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return evalScalarFunc(t.Name, args)
	}
	return 0, fmt.Errorf("cannot evaluate %T", n)
}

func evalScalarFunc(name string, args []float64) (float64, error) {
	switch name {
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "cbrt":
		return math.Cbrt(args[0]), nil
	case "ln":
		return math.Log(args[0]), nil
	case "log":
		return math.Log(args[1]) / math.Log(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "abs":
		return math.Abs(args[0]), nil
	case "sgn":
		if args[0] > 0 {
			return 1, nil
		} else if args[0] < 0 {
			return -1, nil
		}
		return 0, nil
	case "pow":
		return math.Pow(args[0], args[1]), nil
	case "inv":
		return 1 / args[0], nil
	}
	return 0, fmt.Errorf("unknown scalar function %q", name)
}
