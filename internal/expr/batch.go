package expr

import (
	"fmt"
	"math"
)

// VecEnv supplies whole vectors of variable values to the batch
// evaluator. All vectors bound by one env must have the same length.
type VecEnv interface {
	// Vector returns the values bound to name, and whether it is bound.
	Vector(name string) ([]float64, bool)
}

// MapVecEnv is a VecEnv backed by a map.
type MapVecEnv map[string][]float64

// Vector implements VecEnv.
func (m MapVecEnv) Vector(name string) ([]float64, bool) {
	v, ok := m[name]
	return v, ok
}

// EvalBatch evaluates a scalar expression over n rows at once, writing
// one result per row into out (which must have length n). It computes
// exactly the same element-wise values as Eval on each row — the same
// operators, the same scalar-function semantics, the same NaN/±Inf
// propagation — just restructured as vector loops so the tree is walked
// once per batch instead of once per tuple.
func EvalBatch(node Node, env VecEnv, n int, out []float64) error {
	if len(out) < n {
		return fmt.Errorf("EvalBatch: out has %d slots for %d rows", len(out), n)
	}
	return evalBatch(node, env, n, out[:n], nil)
}

// evalBatch recursively evaluates into dst. scratch is a free buffer pool
// threaded through the recursion so intermediate vectors are reused.
func evalBatch(node Node, env VecEnv, n int, dst []float64, pool *[][]float64) error {
	if pool == nil {
		pool = &[][]float64{}
	}
	switch t := node.(type) {
	case *Num:
		for i := range dst {
			dst[i] = t.Val
		}
		return nil
	case *Var:
		v, ok := env.Vector(t.Name)
		if !ok {
			return fmt.Errorf("unbound variable %q", t.Name)
		}
		if len(v) < n {
			return fmt.Errorf("vector %q has %d rows, batch has %d", t.Name, len(v), n)
		}
		copy(dst, v[:n])
		return nil
	case *Neg:
		if err := evalBatch(t.X, env, n, dst, pool); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = -dst[i]
		}
		return nil
	case *Bin:
		if err := evalBatch(t.L, env, n, dst, pool); err != nil {
			return err
		}
		tmp := borrow(pool, n)
		defer release(pool, tmp)
		if err := evalBatch(t.R, env, n, tmp, pool); err != nil {
			return err
		}
		switch t.Op {
		case '+':
			for i := range dst {
				dst[i] += tmp[i]
			}
		case '-':
			for i := range dst {
				dst[i] -= tmp[i]
			}
		case '*':
			for i := range dst {
				dst[i] *= tmp[i]
			}
		case '/':
			for i := range dst {
				dst[i] /= tmp[i]
			}
		case '^':
			for i := range dst {
				dst[i] = math.Pow(dst[i], tmp[i])
			}
		default:
			return fmt.Errorf("unknown operator %q", t.Op)
		}
		return nil
	case *Call:
		if AggregateFuncs[t.Name] {
			return fmt.Errorf("aggregate %s() cannot be evaluated as a scalar", t.Name)
		}
		arity, ok := ScalarFuncs[t.Name]
		if !ok {
			return fmt.Errorf("unknown scalar function %q", t.Name)
		}
		if len(t.Args) != arity {
			return fmt.Errorf("%s expects %d args, got %d", t.Name, arity, len(t.Args))
		}
		if err := evalBatch(t.Args[0], env, n, dst, pool); err != nil {
			return err
		}
		var second []float64
		if arity == 2 {
			second = borrow(pool, n)
			defer release(pool, second)
			if err := evalBatch(t.Args[1], env, n, second, pool); err != nil {
				return err
			}
		}
		switch t.Name {
		case "sqrt":
			for i := range dst {
				dst[i] = math.Sqrt(dst[i])
			}
		case "cbrt":
			for i := range dst {
				dst[i] = math.Cbrt(dst[i])
			}
		case "ln":
			for i := range dst {
				dst[i] = math.Log(dst[i])
			}
		case "log":
			// log(base, x) = ln(x)/ln(base); args[0] is the base.
			for i := range dst {
				dst[i] = math.Log(second[i]) / math.Log(dst[i])
			}
		case "exp":
			for i := range dst {
				dst[i] = math.Exp(dst[i])
			}
		case "abs":
			for i := range dst {
				dst[i] = math.Abs(dst[i])
			}
		case "sgn":
			for i := range dst {
				if dst[i] > 0 {
					dst[i] = 1
				} else if dst[i] < 0 {
					dst[i] = -1
				} else {
					dst[i] = 0
				}
			}
		case "pow":
			for i := range dst {
				dst[i] = math.Pow(dst[i], second[i])
			}
		case "inv":
			for i := range dst {
				dst[i] = 1 / dst[i]
			}
		default:
			return fmt.Errorf("unknown scalar function %q", t.Name)
		}
		return nil
	}
	return fmt.Errorf("cannot evaluate %T", node)
}

func borrow(pool *[][]float64, n int) []float64 {
	if k := len(*pool); k > 0 {
		b := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func release(pool *[][]float64, b []float64) {
	*pool = append(*pool, b)
}
