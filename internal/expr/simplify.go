package expr

import (
	"math"
	"sort"
	"strings"
)

// Simplify brings an expression into a canonical sum-of-products form:
// constants are folded, products are flattened with collected exponents
// (x*x becomes x^2), terms with equal factor sets are merged, sums and
// products are deterministically ordered, and sqrt/cbrt/pow/inv are
// normalized to the ^ operator. Two algebraically equal expressions that
// differ only by these laws simplify to structurally equal trees, so
// Simplify(a).String() == Simplify(b).String() is the equality test used
// throughout SUDAF (for aggregation-state matching in particular).
//
// Simplify never changes the value of the expression on its domain of
// definition. Power laws on negative bases with fractional exponents are
// left untouched (kept opaque) rather than rewritten unsoundly.
func Simplify(n Node) Node {
	ts := toTerms(n)
	return fromTerms(ts)
}

// CanonicalString returns the canonical rendering of an expression; equal
// expressions (up to the simplifier's algebra) yield equal strings.
func CanonicalString(n Node) string { return Simplify(n).String() }

// term is coef * Π base_i ^ exp_i with factors sorted by key.
type term struct {
	coef    float64
	factors []factor
}

// factor is base^exp where base is a canonical non-numeric node.
type factor struct {
	base Node
	exp  float64
	key  string
}

func toTerms(n Node) []term {
	switch t := n.(type) {
	case *Num:
		return []term{{coef: t.Val}}
	case *Var:
		return []term{{coef: 1, factors: []factor{newFactor(t, 1)}}}
	case *Neg:
		return negTerms(toTerms(t.X))
	case *Bin:
		switch t.Op {
		case '+':
			return addTerms(toTerms(t.L), toTerms(t.R))
		case '-':
			return addTerms(toTerms(t.L), negTerms(toTerms(t.R)))
		case '*':
			return mulTermLists(toTerms(t.L), toTerms(t.R))
		case '/':
			return mulTermLists(toTerms(t.L), invTerms(toTerms(t.R)))
		case '^':
			return powTerms(toTerms(t.L), toTerms(t.R))
		}
	case *Call:
		return callTerms(t)
	}
	return []term{{coef: 1, factors: []factor{newFactor(n, 1)}}}
}

func newFactor(base Node, exp float64) factor {
	return factor{base: base, exp: exp, key: base.String()}
}

func negTerms(ts []term) []term {
	out := make([]term, len(ts))
	for i, t := range ts {
		out[i] = term{coef: -t.coef, factors: t.factors}
	}
	return out
}

func addTerms(a, b []term) []term {
	merged := append(append([]term{}, a...), b...)
	return collectTerms(merged)
}

// collectTerms expands residual sum-factors, merges terms with identical
// factor sets, and drops zeros.
func collectTerms(ts []term) []term {
	return collectRaw(expandSumFactors(ts))
}

// expandSumFactors multiplies out factors whose base is a sum raised to a
// small positive integer exponent (these arise when division by a sum is
// later cancelled, e.g. x/(x+y)*(x+y)^2). Expansion runs to fixpoint so
// canonical forms are fully distributed.
func expandSumFactors(ts []term) []term {
	for pass := 0; pass < 16; pass++ {
		changed := false
		var out []term
		for _, t := range ts {
			idx := -1
			negIdx := -1
			for i, f := range t.factors {
				if _, isSum := sumBase(f.base); isSum && f.exp == math.Trunc(f.exp) {
					if f.exp >= 1 && f.exp <= 6 {
						idx = i
						break
					}
					if f.exp <= -2 && f.exp >= -6 && negIdx < 0 {
						negIdx = i
					}
				}
			}
			if idx < 0 && negIdx >= 0 {
				// Canonicalize (sum)^(-k) as (expanded sum^k)^(-1) so both
				// syntactic routes to a reciprocal power coincide.
				changed = true
				f := t.factors[negIdx]
				parts := toTerms(f.base)
				prod := parts
				for i := 1; i < int(-f.exp); i++ {
					prod = rawMulTermLists(prod, parts)
				}
				nt := term{coef: t.coef}
				nt.factors = append(nt.factors, t.factors[:negIdx]...)
				nt.factors = append(nt.factors, t.factors[negIdx+1:]...)
				nt.factors = append(nt.factors, newFactor(fromTerms(prod), -1))
				nt.factors = mergeFactors(nt.factors)
				out = append(out, nt)
				continue
			}
			if idx < 0 {
				out = append(out, t)
				continue
			}
			changed = true
			f := t.factors[idx]
			rest := term{coef: t.coef}
			rest.factors = append(rest.factors, t.factors[:idx]...)
			rest.factors = append(rest.factors, t.factors[idx+1:]...)
			parts := toTerms(f.base)
			acc := []term{rest}
			for i := 0; i < int(f.exp); i++ {
				acc = rawMulTermLists(acc, parts)
			}
			out = append(out, acc...)
		}
		ts = out
		if !changed {
			break
		}
	}
	return ts
}

// sumBase reports whether n is a top-level sum (more than one additive term).
func sumBase(n Node) (Node, bool) {
	if b, ok := n.(*Bin); ok && (b.Op == '+' || b.Op == '-') {
		return n, true
	}
	return n, false
}

func rawMulTermLists(a, b []term) []term {
	var out []term
	for _, ta := range a {
		for _, tb := range b {
			out = append(out, mulTerms(ta, tb))
		}
	}
	return collectRaw(out)
}

// collectRaw merges terms with identical factor sets and drops zeros.
func collectRaw(ts []term) []term {
	byKey := map[string]*term{}
	var order []string
	for _, t := range ts {
		k := factorsKey(t.factors)
		if ex, ok := byKey[k]; ok {
			ex.coef += t.coef
		} else {
			cp := t
			byKey[k] = &cp
			order = append(order, k)
		}
	}
	out := make([]term, 0, len(order))
	for _, k := range order {
		if byKey[k].coef != 0 {
			out = append(out, *byKey[k])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return factorsKey(out[i].factors) < factorsKey(out[j].factors)
	})
	return out
}

func factorsKey(fs []factor) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(f.key)
		sb.WriteByte('^')
		sb.WriteString(FormatFloat(f.exp))
		sb.WriteByte('|')
	}
	return sb.String()
}

func mulTermLists(a, b []term) []term {
	var out []term
	for _, ta := range a {
		for _, tb := range b {
			out = append(out, mulTerms(ta, tb))
		}
	}
	return collectTerms(out)
}

func mulTerms(a, b term) term {
	res := term{coef: a.coef * b.coef}
	fs := append(append([]factor{}, a.factors...), b.factors...)
	res.factors = mergeFactors(fs)
	return res
}

func mergeFactors(fs []factor) []factor {
	byKey := map[string]*factor{}
	var order []string
	for _, f := range fs {
		if ex, ok := byKey[f.key]; ok {
			ex.exp += f.exp
		} else {
			cp := f
			byKey[f.key] = &cp
			order = append(order, f.key)
		}
	}
	out := make([]factor, 0, len(order))
	for _, k := range order {
		if byKey[k].exp != 0 {
			out = append(out, *byKey[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// invTerms computes the reciprocal of a term list. Single terms invert
// exactly; sums become an opaque (sum)^-1 factor.
func invTerms(ts []term) []term {
	if len(ts) == 0 || (len(ts) == 1 && ts[0].coef == 0 && len(ts[0].factors) == 0) {
		// Reciprocal of a syntactic zero: keep an explicit 0^-1 marker so
		// the result stays parseable and idempotent (evaluates to +Inf).
		opaque := &Bin{Op: '^', L: &Num{Val: 0}, R: &Num{Val: -1}}
		return []term{{coef: 1, factors: []factor{newFactor(opaque, 1)}}}
	}
	if len(ts) == 1 && ts[0].coef != 0 {
		t := ts[0]
		inv := term{coef: 1 / t.coef}
		for _, f := range t.factors {
			inv.factors = append(inv.factors, factor{base: f.base, exp: -f.exp, key: f.key})
		}
		inv.factors = mergeFactors(inv.factors)
		return []term{inv}
	}
	base := fromTerms(ts)
	return []term{{coef: 1, factors: []factor{newFactor(base, -1)}}}
}

// powTerms raises base terms to an exponent. Constant exponents distribute
// over single-term bases when sound; everything else stays opaque.
func powTerms(base, exp []term) []term {
	expNode := fromTerms(exp)
	if en, ok := expNode.(*Num); ok {
		c := en.Val
		if c == 0 {
			return []term{{coef: 1}}
		}
		if c == 1 {
			return base
		}
		if len(base) == 1 {
			t := base[0]
			// (coef * Πf^e)^c = coef^c * Πf^(e*c), sound when coef > 0,
			// or when coef is negative and c is an integer.
			if t.coef > 0 || (t.coef < 0 && c == math.Trunc(c)) {
				res := term{coef: math.Pow(t.coef, c)}
				for _, f := range t.factors {
					res.factors = append(res.factors, factor{base: f.base, exp: f.exp * c, key: f.key})
				}
				res.factors = mergeFactors(res.factors)
				// coef^c may be NaN only for negative coef and non-integer c,
				// excluded above.
				return []term{res}
			}
		}
		// Small positive integer powers of sums expand (binomial), which
		// canonicalizes e.g. (x-y)^2 == x^2 - 2*x*y + y^2.
		if c == math.Trunc(c) && c >= 2 && c <= 4 && len(base) > 1 {
			acc := base
			for i := 1; i < int(c); i++ {
				acc = mulTermLists(acc, base)
			}
			return acc
		}
		if c == math.Trunc(c) && c <= -1 && c >= -4 && len(base) > 1 {
			// Expand the positive power first so that 1/(x-y)^2 and
			// (x-y)^(-2) reach the same opaque reciprocal factor.
			pos := base
			for i := 1; i < int(-c); i++ {
				pos = mulTermLists(pos, base)
			}
			return invTerms(pos)
		}
	}
	bn := fromTerms(base)
	if bnum, ok := bn.(*Num); ok {
		if enum, ok2 := expNode.(*Num); ok2 {
			v := math.Pow(bnum.Val, enum.Val)
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				return []term{{coef: v}}
			}
		}
	}
	opaque := &Bin{Op: '^', L: bn, R: expNode}
	return []term{{coef: 1, factors: []factor{newFactor(opaque, 1)}}}
}

// callTerms simplifies a function call: arguments are canonicalized,
// sqrt/cbrt/pow/inv rewrite to ^, and constant arguments fold.
func callTerms(c *Call) []term {
	args := make([]Node, len(c.Args))
	for i, a := range c.Args {
		args[i] = Simplify(a)
	}
	switch c.Name {
	case "sqrt":
		return powTerms(toTerms(args[0]), []term{{coef: 0.5}})
	case "cbrt":
		return powTerms(toTerms(args[0]), []term{{coef: 1.0 / 3}})
	case "pow":
		return powTerms(toTerms(args[0]), toTerms(args[1]))
	case "inv":
		return invTerms(toTerms(args[0]))
	case "ln":
		if n, ok := args[0].(*Num); ok && n.Val > 0 {
			return []term{{coef: math.Log(n.Val)}}
		}
	case "log":
		if b, ok := args[0].(*Num); ok {
			if x, ok2 := args[1].(*Num); ok2 && b.Val > 0 && b.Val != 1 && x.Val > 0 {
				return []term{{coef: math.Log(x.Val) / math.Log(b.Val)}}
			}
		}
	case "exp":
		if n, ok := args[0].(*Num); ok {
			return []term{{coef: math.Exp(n.Val)}}
		}
	case "abs":
		if n, ok := args[0].(*Num); ok {
			return []term{{coef: math.Abs(n.Val)}}
		}
	case "sgn":
		if n, ok := args[0].(*Num); ok {
			s := 0.0
			if n.Val > 0 {
				s = 1
			} else if n.Val < 0 {
				s = -1
			}
			return []term{{coef: s}}
		}
	}
	canon := &Call{Name: c.Name, Args: args}
	return []term{{coef: 1, factors: []factor{newFactor(canon, 1)}}}
}

// fromTerms rebuilds a canonical Node from a term list.
func fromTerms(ts []term) Node {
	ts = collectTerms(ts)
	if len(ts) == 0 {
		return &Num{Val: 0}
	}
	var sum Node
	for _, t := range ts {
		tn := termNode(t)
		if sum == nil {
			sum = tn
			continue
		}
		sum = &Bin{Op: '+', L: sum, R: tn}
	}
	return sum
}

func termNode(t term) Node {
	if len(t.factors) == 0 {
		return &Num{Val: t.coef}
	}
	var prod Node
	for _, f := range t.factors {
		var fn Node
		if f.exp == 1 {
			fn = f.base
		} else {
			fn = &Bin{Op: '^', L: f.base, R: &Num{Val: f.exp}}
		}
		if prod == nil {
			prod = fn
		} else {
			prod = &Bin{Op: '*', L: prod, R: fn}
		}
	}
	if t.coef == 1 {
		return prod
	}
	return &Bin{Op: '*', L: &Num{Val: t.coef}, R: prod}
}
