package server

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at every wire decoder the server
// exposes to the network: the framed-stream reader (length prefixes,
// truncation, oversized declarations) and the three request-body
// decoders. The only acceptable outcomes are a value or an error —
// never a panic, and never an allocation driven by a declared length
// the bytes can't back (ReadFrame's bound is checked before the body
// is read). Wired into CI's fuzz-smoke job.
func FuzzDecode(f *testing.F) {
	// Well-formed seeds, one per decoder...
	f.Add([]byte(`{"type":"schema","columns":[{"name":"s","kind":"string"}]}`))
	f.Add([]byte(`{"type":"batch","rows":[["TN",1.5,"NaN"],[2,3,"+Inf"]]}`))
	f.Add([]byte(`{"type":"end","groups":4,"stats":{"wallMicros":12,"rowsScanned":100}}`))
	f.Add([]byte(`{"type":"error","code":"overloaded","error":"queue full"}`))
	f.Add([]byte(`{"sql":"SELECT avg(x) FROM t","mode":"share","batchRows":2}`))
	f.Add([]byte(`{"prepared":"p1","session":"s1"}`))
	f.Add([]byte(`{"session":"s1","sql":"SELECT qm(x) FROM t","mode":"baseline"}`))
	f.Add([]byte(`{"table":"t","columns":[{"name":"x","kind":"float","floats":[1,2]},{"name":"k","kind":"int","ints":[3,4]}]}`))
	// ...and framed streams: valid, torn, lying lengths, oversized.
	f.Add([]byte("25 {\"type\":\"end\",\"groups\":4}\n"))
	f.Add([]byte("25 {\"type\":\"end\",\"gro"))
	f.Add([]byte("3 {}\n"))
	f.Add([]byte("999999999 {}\n"))
	f.Add([]byte("1x {}\n"))
	f.Add([]byte(" "))
	f.Add([]byte("18 {\"type\":\"schema\"}\n18 {\"type\":\"schema\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeFrame(data)          //nolint:errcheck
		DecodeQueryRequest(data)   //nolint:errcheck
		DecodePrepareRequest(data) //nolint:errcheck
		if a, err := DecodeAppendRequest(data); err == nil {
			// A decodable append must also materialize consistently.
			if _, err := a.ToTable(); err != nil {
				t.Fatalf("DecodeAppendRequest accepted what ToTable rejects: %v", err)
			}
		}
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ { // bounded: a stream is many frames
			if _, err := ReadFrame(br, 1<<16); err != nil {
				break
			}
		}
		ModeFromString(string(data))
	})
}
