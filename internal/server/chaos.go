// Network chaos surface: the listener and connections the server hands
// to net/http are wrapped so the faultinject net.* points fire on real
// I/O paths. With injection disabled every wrapper costs one atomic
// load per call — the same contract as the engine-side points.
package server

import (
	"fmt"
	"net"
	"sync/atomic"

	"sudaf/internal/faultinject"
)

// hitNet fires a net.* fault point, converting an injected panic into
// an error: the network has no way to deliver a panic, so at this layer
// every fault kind degrades to a torn connection. (The accept loop and
// net/http's background connection reader run outside any recover —
// letting a panic through would crash the process, which is exactly the
// failure class this server exists to rule out.)
func hitNet(point string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", faultinject.ErrInjected, r)
		}
	}()
	return faultinject.Hit(point)
}

// chaosListener wraps the server's TCP listener: it enforces the
// connection cap and fires PointNetAccept on every accept. An injected
// accept error tears the just-accepted connection down and keeps
// serving — a flaky accept path must never take the whole server out
// (returning a non-temporary error from Accept stops http.Server.Serve
// for good).
type chaosListener struct {
	net.Listener
	srv *Server
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			// Real listener errors (including close-on-shutdown) propagate.
			return nil, err
		}
		if err := hitNet(faultinject.PointNetAccept); err != nil {
			// Chaos: the connection dies at the threshold. From the client's
			// side this is indistinguishable from a network flake.
			c.Close()
			continue
		}
		if max := l.srv.cfg.MaxConns; max > 0 {
			if l.srv.connsOpen.Load() >= int64(max) {
				// Over the connection cap: refuse at the socket level. The
				// client sees a reset rather than a queued, starving request.
				c.Close()
				l.srv.shedConns.Add(1)
				continue
			}
		}
		l.srv.connsOpen.Add(1)
		return &chaosConn{Conn: c, open: &l.srv.connsOpen}, nil
	}
}

// chaosConn wraps an accepted connection: reads and writes pass through
// PointNetRead / PointNetWrite, and the open-connection gauge is
// released exactly once on close.
type chaosConn struct {
	net.Conn
	open   *atomic.Int64
	closed atomic.Bool
}

func (c *chaosConn) Read(p []byte) (int, error) {
	if err := hitNet(faultinject.PointNetRead); err != nil {
		c.Conn.Close()
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if err := hitNet(faultinject.PointNetWrite); err != nil {
		c.Conn.Close()
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *chaosConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.open.Add(-1)
	}
	return c.Conn.Close()
}
