// POST /v1/subscribe: continuous windowed queries over the wire.
//
// A subscription is a long-lived push stream, so it deliberately sits
// outside the global execution-slot semaphore: an idle subscriber costs
// one goroutine and one connection, and letting it pin an inflight slot
// would let a handful of subscribers starve the query path. What bounds
// the work is the engine itself — per-emission computation happens on
// the engine's subscription workers, paced by appends.
//
// Drain contract (mirrors docs/SERVING.md): when Shutdown begins, every
// active subscribe stream ends promptly with a clean end frame carrying
// the "server draining" event, so the server's request drain never
// waits on an idle subscriber; new subscribe requests are shed with the
// typed 503 like any other request.
package server

import (
	"fmt"
	"net/http"

	"sudaf/internal/core"
	"sudaf/internal/errs"
)

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, CodeBadRequest, "use POST")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeSubscribeRequest(body)
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}
	mode, _ := ModeFromString(req.Mode)
	var ss *session
	if id := sessionID(r, req.Session); id != "" {
		ss, ok = s.sessions.get(id)
		if !ok {
			writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
	}
	if err := s.beginReq(); err != nil {
		writeError(w, err)
		return
	}
	defer s.endReq()
	// A subscription occupies one of its session's concurrency slots for
	// its whole life — a session's subscriber fleet is bounded the same
	// way its query fan-out is.
	if ss != nil {
		if !ss.acquire() {
			s.shedSession.Add(1)
			writeError(w, fmt.Errorf("%w: session %s at its concurrency cap", errs.ErrOverloaded, ss.id))
			return
		}
		defer ss.release()
	}
	ctx, cancel := requestContext(r)
	defer cancel()

	sub, err := s.eng.Subscribe(ctx, req.SQL, mode)
	if err != nil {
		writeError(w, err)
		return
	}
	defer sub.Close()
	s.subscribeReqs.Add(1)
	s.subscribeActive.Add(1)
	defer s.subscribeActive.Add(-1)

	emit := startStream(w)
	sentSchema := false
	emits := 0
	for {
		select {
		case wr, open := <-sub.Results():
			if !open {
				// The engine closed the stream: surface its terminal error,
				// or end cleanly (engine Close during drain).
				if err := sub.Err(); err != nil {
					emit(ErrorFrame(err))
				} else {
					emit(&Frame{Type: FrameEnd, Groups: emits})
				}
				return
			}
			if !sentSchema {
				if !emit(SchemaFrame(wr.Table)) {
					return
				}
				sentSchema = true
			}
			if !emit(subscribeFrame(wr)) {
				return // client went away; the deferred Close detaches us
			}
			s.subscribeEmits.Add(1)
			emits++
			if req.MaxEmits > 0 && emits >= req.MaxEmits {
				emit(&Frame{Type: FrameEnd, Groups: emits})
				return
			}
		case <-ctx.Done():
			emit(ErrorFrame(fmt.Errorf("%w: %v", errs.ErrCanceled, ctx.Err())))
			return
		case <-s.drainCh:
			emit(&Frame{Type: FrameEnd, Groups: emits, Events: []string{"server draining"}})
			return
		}
	}
}

// subscribeFrame renders one WindowResult as a tagged batch frame.
func subscribeFrame(wr *core.WindowResult) *Frame {
	f := BatchFrame(wr.Table)
	f.Window = &WindowMeta{
		Seq:           wr.Seq,
		Epoch:         wr.Epoch,
		FirstRow:      wr.FirstRow,
		LastRow:       wr.LastRow,
		NumericFaults: wr.NumericFaults,
	}
	return f
}
