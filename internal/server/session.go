package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sudaf/internal/core"
	"sudaf/internal/sqlparse"
)

// prepared is a statement handle: the SQL parsed once at prepare time,
// its execution mode fixed.
type prepared struct {
	sql  string
	mode core.Mode
}

// session is one server-side client session: a namespace for prepared
// statements plus a per-session concurrency bound, so one chatty client
// cannot monopolize the engine's admission slots.
type session struct {
	id string
	// slots bounds this session's concurrent requests (nil = unbounded).
	slots chan struct{}

	mu       sync.Mutex
	prepared map[string]*prepared
	nextPrep int
	closed   bool
}

// acquire takes a per-session slot without blocking; a session at its
// concurrency cap sheds instead of queueing (the global queue already
// provides the buffering — stacking a second queue here would just hide
// the overload).
func (ss *session) acquire() bool {
	if ss.slots == nil {
		return true
	}
	select {
	case ss.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (ss *session) release() {
	if ss.slots != nil {
		<-ss.slots
	}
}

func (ss *session) prepare(sql string, mode core.Mode) (string, error) {
	// Parse eagerly so a bad statement fails at prepare time, not on
	// every execution.
	if _, err := sqlparse.Parse(sql); err != nil {
		return "", err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return "", fmt.Errorf("session %s closed", ss.id)
	}
	ss.nextPrep++
	h := fmt.Sprintf("p%d", ss.nextPrep)
	ss.prepared[h] = &prepared{sql: sql, mode: mode}
	return h, nil
}

func (ss *session) lookup(handle string) (*prepared, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	p, ok := ss.prepared[handle]
	return p, ok
}

// sessions is the server's session registry.
type sessions struct {
	maxOpen     int // 0 = unbounded
	concurrency int // per-session slot count, 0 = unbounded

	mu     sync.Mutex
	open   map[string]*session
	nextID atomic.Int64
	opened atomic.Int64 // lifetime total, for the metrics registry
}

func newSessions(maxOpen, concurrency int) *sessions {
	return &sessions{
		maxOpen:     maxOpen,
		concurrency: concurrency,
		open:        map[string]*session{},
	}
}

// create opens a new session, enforcing the open-session cap.
func (sr *sessions) create() (*session, error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.maxOpen > 0 && len(sr.open) >= sr.maxOpen {
		return nil, fmt.Errorf("session cap reached (%d open)", sr.maxOpen)
	}
	id := fmt.Sprintf("s%d", sr.nextID.Add(1))
	ss := &session{id: id, prepared: map[string]*prepared{}}
	if sr.concurrency > 0 {
		ss.slots = make(chan struct{}, sr.concurrency)
	}
	sr.open[id] = ss
	sr.opened.Add(1)
	return ss, nil
}

func (sr *sessions) get(id string) (*session, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	ss, ok := sr.open[id]
	return ss, ok
}

// close removes a session; its prepared handles die with it. In-flight
// requests already holding a slot finish normally.
func (sr *sessions) close(id string) bool {
	sr.mu.Lock()
	ss, ok := sr.open[id]
	delete(sr.open, id)
	sr.mu.Unlock()
	if !ok {
		return false
	}
	ss.mu.Lock()
	ss.closed = true
	ss.prepared = map[string]*prepared{}
	ss.mu.Unlock()
	return true
}

// closeAll closes every session (server shutdown).
func (sr *sessions) closeAll() {
	sr.mu.Lock()
	all := make([]*session, 0, len(sr.open))
	for _, ss := range sr.open {
		all = append(all, ss)
	}
	sr.open = map[string]*session{}
	sr.mu.Unlock()
	for _, ss := range all {
		ss.mu.Lock()
		ss.closed = true
		ss.prepared = map[string]*prepared{}
		ss.mu.Unlock()
	}
}

// numOpen reports the open-session count.
func (sr *sessions) numOpen() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.open)
}
