// Package client is the retrying HTTP client for the SUDAF serving
// layer. Its retry policy is driven by what the server's overload
// design guarantees:
//
//   - Queries are read-only, so ANY failure — connection refused, torn
//     stream mid-response, 429 shed, 503 drain — is safe to retry. The
//     client retries them up to Options.Retries times with
//     deterministic exponential backoff.
//   - Appends mutate state, so they are retried ONLY on typed
//     overloaded/draining rejections: the server sheds those before
//     execution, so a rejected append has provably not run. A network
//     error mid-append is ambiguous (it may have committed) and is
//     returned to the caller wrapped in ErrAmbiguous instead.
//
// Torn streams are detected by the wire protocol's length framing: a
// response that stops before its end frame, or whose frame lengths
// disagree with the bytes on the wire, surfaces as server.ErrTornStream
// and the query is retried.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sudaf/internal/errs"
	"sudaf/internal/server"
)

// ErrAmbiguous wraps an append failure where the server may or may not
// have executed the append (e.g. the connection died mid-response). The
// caller must reconcile — the client never blindly retries these.
var ErrAmbiguous = errors.New("append outcome unknown")

// ErrRetriesExhausted wraps the last error after every retry failed.
var ErrRetriesExhausted = errors.New("retries exhausted")

// Options tunes a Client. Zero values pick defaults.
type Options struct {
	// Retries is the number of retry attempts after the first failure
	// (default 4; negative = none).
	Retries int
	// Backoff is the first retry's delay; each subsequent retry doubles
	// it (default 10ms). The schedule is deterministic — no jitter — so
	// chaos tests reproduce exactly.
	Backoff time.Duration
	// HTTPClient overrides the transport (default: a dedicated
	// http.Client, so tests don't share the global keep-alive pool).
	HTTPClient *http.Client
	// Sleep overrides the backoff sleep (tests inject a recorder; nil =
	// time.Sleep honoring the context).
	Sleep func(context.Context, time.Duration)
}

// Client talks to one sudaf-serve instance.
type Client struct {
	base    string
	hc      *http.Client
	opts    Options
	session string
}

// New builds a client for the server at addr ("host:port").
func New(addr string, opts Options) *Client {
	if opts.Retries == 0 {
		opts.Retries = 4
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	return &Client{base: "http://" + addr, hc: hc, opts: opts}
}

// Session returns the open session id ("" when sessionless).
func (c *Client) Session() string { return c.session }

// Result is a fully received query result.
type Result struct {
	Columns []server.ColumnSpec
	Rows    [][]any
	End     *server.Frame // the end frame: groups, events, stats
}

// Float returns cell (row, col) as float64; non-finite values decode
// from their wire spellings.
func (r *Result) Float(row, col int) float64 {
	v, _ := server.CellFloat(r.Rows[row][col])
	return v
}

// String returns cell (row, col) rendered as text.
func (r *Result) String(row, col int) string {
	return fmt.Sprint(r.Rows[row][col])
}

// retryQuery reports whether a query error is worth retrying. Queries
// are read-only, so everything transient qualifies: network failures,
// torn streams, overload sheds, drains.
func retryQuery(err error) bool {
	switch {
	case errors.Is(err, errs.ErrOverloaded),
		errors.Is(err, errs.ErrEngineClosed),
		errors.Is(err, server.ErrTornStream):
		return true
	case errors.Is(err, errs.ErrParse),
		errors.Is(err, errs.ErrUnknownTable),
		errors.Is(err, errs.ErrUnknownUDAF),
		errors.Is(err, errs.ErrNumericFault),
		errors.Is(err, errs.ErrCanceled):
		return false
	}
	var ne *netError
	return errors.As(err, &ne)
}

// netError marks transport-level failures (as opposed to typed server
// rejections), so the retry policy can tell them apart.
type netError struct{ err error }

func (e *netError) Error() string { return e.err.Error() }
func (e *netError) Unwrap() error { return e.err }

// IsTransport reports whether err was a transport-level failure — the
// connection refused, reset, or torn — rather than a typed server
// rejection. During a drain these are expected for callers who dial
// after the listener closed; the server guarantees any such request
// never reached execution.
func IsTransport(err error) bool {
	var ne *netError
	return errors.As(err, &ne) || errors.Is(err, server.ErrTornStream)
}

// withRetry runs op under the retry schedule, retrying while shouldRetry
// approves and attempts remain.
func (c *Client) withRetry(ctx context.Context, shouldRetry func(error) bool, op func() error) error {
	var last error
	for attempt := 0; ; attempt++ {
		last = op()
		if last == nil || !shouldRetry(last) {
			return last
		}
		if attempt >= c.opts.Retries {
			return fmt.Errorf("%w after %d attempt(s): %w", ErrRetriesExhausted, attempt+1, last)
		}
		if ctx.Err() != nil {
			return last
		}
		c.opts.Sleep(ctx, c.opts.Backoff<<attempt)
	}
}

// newRequest builds a request carrying the session header and, when ctx
// has a deadline, the X-Sudaf-Deadline-Ms header so the server bounds
// its own work even if the connection outlives the client's patience.
func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.session != "" {
		req.Header.Set("X-Sudaf-Session", c.session)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Sudaf-Deadline-Ms", strconv.FormatInt(ms, 10))
		}
	}
	return req, nil
}

// doJSON posts body and decodes a JSON response into out, mapping
// non-200 responses onto typed errors via their wire code.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &netError{err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, server.MaxFrameBytes))
	if err != nil {
		return &netError{err}
	}
	if resp.StatusCode != http.StatusOK {
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			return server.ErrorForCode(eb.Code, eb.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// OpenSession opens a server-side session; subsequent requests carry
// it. Retried like a query (creating a session twice leaks at most an
// idle session slot, reaped when the client closes the one it kept).
func (c *Client) OpenSession(ctx context.Context) error {
	return c.withRetry(ctx, retryQuery, func() error {
		var sr server.SessionResponse
		if err := c.doJSON(ctx, http.MethodPost, "/v1/session", []byte("{}"), &sr); err != nil {
			return err
		}
		c.session = sr.ID
		return nil
	})
}

// CloseSession closes the client's session (no-op when sessionless).
func (c *Client) CloseSession(ctx context.Context) error {
	if c.session == "" {
		return nil
	}
	err := c.doJSON(ctx, http.MethodDelete, "/v1/session", nil, nil)
	c.session = ""
	return err
}

// Prepare registers sql as a prepared statement in the session and
// returns its handle.
func (c *Client) Prepare(ctx context.Context, sql, mode string) (string, error) {
	body, _ := json.Marshal(server.PrepareRequest{SQL: sql, Mode: mode})
	var handle string
	err := c.withRetry(ctx, retryQuery, func() error {
		var pr server.PrepareResponse
		if err := c.doJSON(ctx, http.MethodPost, "/v1/prepare", body, &pr); err != nil {
			return err
		}
		handle = pr.Handle
		return nil
	})
	return handle, err
}

// Query runs sql in the given mode ("" = share), retrying transient
// failures, and returns the fully received result.
func (c *Client) Query(ctx context.Context, sql, mode string) (*Result, error) {
	return c.query(ctx, server.QueryRequest{SQL: sql, Mode: mode})
}

// QueryPrepared runs a prepared statement by handle.
func (c *Client) QueryPrepared(ctx context.Context, handle string) (*Result, error) {
	return c.query(ctx, server.QueryRequest{Prepared: handle})
}

func (c *Client) query(ctx context.Context, qr server.QueryRequest) (*Result, error) {
	body, err := json.Marshal(qr)
	if err != nil {
		return nil, err
	}
	var res *Result
	err = c.withRetry(ctx, retryQuery, func() error {
		r, err := c.queryOnce(ctx, body)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	return res, err
}

// queryOnce performs one query attempt, reading the framed stream to
// its end frame. A stream that stops early is a torn stream.
func (c *Client) queryOnce(ctx context.Context, body []byte) (*Result, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/query", body)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &netError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, server.MaxFrameBytes))
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			return nil, server.ErrorForCode(eb.Code, eb.Error)
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	br := bufio.NewReader(resp.Body)
	res := &Result{}
	sawSchema := false
	for {
		f, err := server.ReadFrame(br, 0)
		if err != nil {
			if err == io.EOF {
				// Clean EOF but no end frame: the response was cut at a
				// frame boundary — still a tear.
				return nil, fmt.Errorf("%w: stream ended before its end frame", server.ErrTornStream)
			}
			if errors.Is(err, server.ErrTornStream) || errors.Is(err, server.ErrFrameTooLarge) {
				return nil, err
			}
			return nil, &netError{err}
		}
		switch f.Type {
		case server.FrameSchema:
			res.Columns = f.Columns
			sawSchema = true
		case server.FrameBatch:
			if !sawSchema {
				return nil, fmt.Errorf("%w: batch before schema", server.ErrTornStream)
			}
			res.Rows = append(res.Rows, f.Rows...)
		case server.FrameError:
			return nil, server.ErrorForCode(f.Code, f.Error)
		case server.FrameEnd:
			res.End = f
			return res, nil
		}
	}
}

// QueryBatch runs queries as one server-side batch (POST /v1/batch) in
// the given mode ("" = share) and returns one fully received result per
// query, positionally aligned. The server plans the batch's aggregation
// states together, so overlapping queries share fused scans; results
// are bit-identical to running the queries sequentially. The batch is
// all-or-nothing — any query's failure fails the whole call with that
// query's typed error. Batches are read-only and retried like queries.
func (c *Client) QueryBatch(ctx context.Context, queries []string, mode string) ([]*Result, error) {
	body, err := json.Marshal(server.BatchRequest{Queries: queries, Mode: mode})
	if err != nil {
		return nil, err
	}
	var res []*Result
	err = c.withRetry(ctx, retryQuery, func() error {
		r, err := c.queryBatchOnce(ctx, body, len(queries))
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	return res, err
}

// queryBatchOnce performs one batch attempt, demultiplexing the tagged
// frame stream into per-query results. The stream must deliver every
// query's end frame; anything less is a torn stream.
func (c *Client) queryBatchOnce(ctx context.Context, body []byte, n int) ([]*Result, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/batch", body)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &netError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, server.MaxFrameBytes))
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			return nil, server.ErrorForCode(eb.Code, eb.Error)
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	br := bufio.NewReader(resp.Body)
	results := make([]*Result, n)
	done := 0
	for done < n {
		f, err := server.ReadFrame(br, 0)
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: batch stream ended after %d of %d results",
					server.ErrTornStream, done, n)
			}
			if errors.Is(err, server.ErrTornStream) || errors.Is(err, server.ErrFrameTooLarge) {
				return nil, err
			}
			return nil, &netError{err}
		}
		if f.Type == server.FrameError {
			return nil, server.ErrorForCode(f.Code, f.Error)
		}
		if f.Query < 0 || f.Query >= n {
			return nil, fmt.Errorf("%w: frame for query %d of a %d-query batch",
				server.ErrTornStream, f.Query, n)
		}
		r := results[f.Query]
		switch f.Type {
		case server.FrameSchema:
			results[f.Query] = &Result{Columns: f.Columns}
		case server.FrameBatch:
			if r == nil {
				return nil, fmt.Errorf("%w: batch before schema for query %d",
					server.ErrTornStream, f.Query)
			}
			r.Rows = append(r.Rows, f.Rows...)
		case server.FrameEnd:
			if r == nil || r.End != nil {
				return nil, fmt.Errorf("%w: stray end frame for query %d",
					server.ErrTornStream, f.Query)
			}
			r.End = f
			done++
		}
	}
	return results, nil
}

// retryAppend approves retry only for typed shed/drain rejections —
// the server guarantees those were rejected before execution.
func retryAppend(err error) bool {
	return errors.Is(err, errs.ErrOverloaded) || errors.Is(err, errs.ErrEngineClosed)
}

// Append sends a columnar delta for table. Transport failures are
// returned wrapped in ErrAmbiguous (the append may have committed);
// only typed pre-execution rejections are retried.
func (c *Client) Append(ctx context.Context, table string, cols []server.ColumnData) (*server.AppendResponse, error) {
	body, err := json.Marshal(server.AppendRequest{Table: table, Columns: cols})
	if err != nil {
		return nil, err
	}
	var out *server.AppendResponse
	err = c.withRetry(ctx, retryAppend, func() error {
		var ar server.AppendResponse
		if err := c.doJSON(ctx, http.MethodPost, "/v1/append", body, &ar); err != nil {
			var ne *netError
			if errors.As(err, &ne) {
				return fmt.Errorf("%w: %v", ErrAmbiguous, err)
			}
			return err
		}
		out = &ar
		return nil
	})
	return out, err
}

// Emission is one window result received on a subscription stream.
type Emission struct {
	// Rows are the emission's result rows (see Result for cell shapes).
	Rows [][]any
	// Window is the emission's provenance: Seq (contiguous from 1),
	// pinned Epoch, covered base-table rows.
	Window *server.WindowMeta
}

// Float returns cell (row, col) as float64; non-finite values decode
// from their wire spellings.
func (e *Emission) Float(row, col int) float64 {
	v, _ := server.CellFloat(e.Rows[row][col])
	return v
}

// SubStream is a live /v1/subscribe stream. Unlike queries it is never
// retried: a subscription is stateful (Seq restarts from 1 on a fresh
// subscribe), so reconnect policy belongs to the caller. Iterate with
// Next; Close releases the connection.
type SubStream struct {
	resp    *http.Response
	br      *bufio.Reader
	columns []server.ColumnSpec
	end     *server.Frame
	closed  bool
}

// Subscribe opens a continuous windowed query (the SQL must carry an
// OVER clause). maxEmits > 0 asks the server to end the stream cleanly
// after that many emissions; 0 streams until Close, ctx cancellation,
// or server drain.
func (c *Client) Subscribe(ctx context.Context, sql, mode string, maxEmits int) (*SubStream, error) {
	body, err := json.Marshal(server.SubscribeRequest{SQL: sql, Mode: mode, MaxEmits: maxEmits})
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/subscribe", body)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &netError{err}
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, server.MaxFrameBytes))
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			return nil, server.ErrorForCode(eb.Code, eb.Error)
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	return &SubStream{resp: resp, br: bufio.NewReader(resp.Body)}, nil
}

// Next blocks for the next emission. It returns io.EOF when the server
// ended the stream cleanly (maxEmits reached or drain; End then carries
// the end frame), a typed engine error if the subscription failed, and
// ErrTornStream when the stream was cut without a terminal frame.
func (s *SubStream) Next() (*Emission, error) {
	if s.end != nil {
		return nil, io.EOF
	}
	for {
		f, err := server.ReadFrame(s.br, 0)
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: subscription ended before its end frame", server.ErrTornStream)
			}
			if errors.Is(err, server.ErrTornStream) || errors.Is(err, server.ErrFrameTooLarge) {
				return nil, err
			}
			return nil, &netError{err}
		}
		switch f.Type {
		case server.FrameSchema:
			s.columns = f.Columns
		case server.FrameBatch:
			if s.columns == nil {
				return nil, fmt.Errorf("%w: batch before schema", server.ErrTornStream)
			}
			return &Emission{Rows: f.Rows, Window: f.Window}, nil
		case server.FrameError:
			return nil, server.ErrorForCode(f.Code, f.Error)
		case server.FrameEnd:
			s.end = f
			return nil, io.EOF
		}
	}
}

// Columns returns the stream's result schema (nil before the first
// emission arrives — the schema rides with it).
func (s *SubStream) Columns() []server.ColumnSpec { return s.columns }

// End returns the clean-termination frame (nil until Next returned
// io.EOF); its Events carry "server draining" when a drain ended the
// stream.
func (s *SubStream) End() *server.Frame { return s.end }

// Close releases the stream's connection. Safe to call at any point and
// more than once.
func (s *SubStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.resp.Body.Close()
}

// Health fetches the server's health summary (never retried — its
// point is to observe the server as it is right now).
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var h server.HealthResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/health", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
