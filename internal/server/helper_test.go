package server_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/server"
	"sudaf/internal/storage"
)

// testQuery joins the fixture tables through two UDAF-bearing
// aggregations, so share-mode runs exercise the state cache.
const testQuery = `SELECT s_state, qm(ss_list_price), avg(ss_sales_price)
	FROM store_sales, store WHERE ss_store_sk = s_store_sk
	GROUP BY s_state ORDER BY s_state`

// newEngine builds a session over a small store/store_sales fixture.
func newEngine(t *testing.T, rows int, opts core.Options) *core.Session {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s := core.NewSession(opts)
	rng := rand.New(rand.NewSource(2026))

	const nStores = 6
	storeT := storage.NewTable("store",
		storage.NewColumn("s_store_sk", storage.KindInt),
		storage.NewColumn("s_state", storage.KindString))
	states := []string{"TN", "CA", "TN", "NY", "TN", "WA"}
	for i := 0; i < nStores; i++ {
		storeT.Col("s_store_sk").AppendInt(int64(i))
		storeT.Col("s_state").AppendString(states[i])
	}
	sales := storage.NewTable("store_sales",
		storage.NewColumn("ss_store_sk", storage.KindInt),
		storage.NewColumn("ss_list_price", storage.KindFloat),
		storage.NewColumn("ss_sales_price", storage.KindFloat))
	for i := 0; i < rows; i++ {
		sales.Col("ss_store_sk").AppendInt(int64(rng.Intn(nStores)))
		lp := 10 + rng.Float64()*90
		sales.Col("ss_list_price").AppendFloat(lp)
		sales.Col("ss_sales_price").AppendFloat(lp * (0.5 + rng.Float64()*0.5))
	}
	for _, tbl := range []*storage.Table{storeT, sales} {
		if err := s.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

var serverSeq atomic.Int64

// startServer builds and starts a server on a free port, shut down at
// test cleanup. Each server gets a distinct metrics label so several
// servers in one test never collide in a shared registry.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.MetricsLabel == "" {
		cfg.MetricsLabel = "t" + time.Now().Format("150405") + "-" +
			string(rune('a'+serverSeq.Add(1)%26))
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort cleanup
	})
	return srv
}
