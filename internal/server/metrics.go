package server

import (
	"fmt"

	"sudaf/internal/obs"
)

// registerMetrics installs the serving-layer families into the metrics
// registry alongside the engine's own. Like the engine families, every
// sample is reader-backed: the request path bumps only atomics and
// scrape time pays the reads.
//
// The exported families (all documented in docs/SERVING.md):
//
//	sudaf_server_requests_total{kind=...}
//	sudaf_server_batch_requests_total, sudaf_server_batch_queries_total
//	sudaf_server_subscribe_emits_total, sudaf_server_subscriptions_active
//	sudaf_server_shed_total{reason=...}
//	sudaf_server_inflight, sudaf_server_queue_depth
//	sudaf_server_sessions_open, sudaf_server_sessions_opened_total
//	sudaf_server_connections_open
//	sudaf_server_drain_seconds
func (s *Server) registerMetrics(r *obs.Registry, label string) {
	lbl := ""
	if label != "" {
		lbl = fmt.Sprintf("server=%q", label)
	}
	with := func(key, val string) string {
		pair := fmt.Sprintf("%s=%q", key, val)
		if lbl == "" {
			return pair
		}
		return lbl + "," + pair
	}

	r.CounterFunc("sudaf_server_requests_total", with("kind", "query"),
		"Requests accepted for execution, by kind.", s.queryReqs.Load)
	r.CounterFunc("sudaf_server_requests_total", with("kind", "append"),
		"Requests accepted for execution, by kind.", s.appendReqs.Load)
	r.CounterFunc("sudaf_server_requests_total", with("kind", "batch"),
		"Requests accepted for execution, by kind.", s.batchReqs.Load)
	r.CounterFunc("sudaf_server_batch_requests_total", lbl,
		"Multi-query batches accepted for execution (each holds one server slot).",
		s.batchReqs.Load)
	r.CounterFunc("sudaf_server_batch_queries_total", lbl,
		"Queries submitted inside accepted batches.", s.batchQueries.Load)
	r.CounterFunc("sudaf_server_requests_total", with("kind", "subscribe"),
		"Requests accepted for execution, by kind.", s.subscribeReqs.Load)
	r.CounterFunc("sudaf_server_subscribe_emits_total", lbl,
		"Window emissions streamed to /v1/subscribe clients.", s.subscribeEmits.Load)
	r.GaugeFunc("sudaf_server_subscriptions_active", lbl,
		"Subscribe streams currently open.",
		func() float64 { return float64(s.subscribeActive.Load()) })
	r.CounterFunc("sudaf_server_shed_total", with("reason", "queue_full"),
		"Requests shed before execution, by reason: global queue full, per-session cap, server draining.",
		s.shedQueue.Load)
	r.CounterFunc("sudaf_server_shed_total", with("reason", "session_cap"),
		"Requests shed before execution, by reason: global queue full, per-session cap, server draining.",
		s.shedSession.Load)
	r.CounterFunc("sudaf_server_shed_total", with("reason", "draining"),
		"Requests shed before execution, by reason: global queue full, per-session cap, server draining.",
		s.shedDraining.Load)
	r.GaugeFunc("sudaf_server_inflight", lbl,
		"Requests currently executing (holding a global slot).",
		func() float64 { return float64(s.inflightN.Load()) })
	r.GaugeFunc("sudaf_server_queue_depth", lbl,
		"Requests waiting for a global slot right now.",
		func() float64 { return float64(s.queued.Load()) })
	r.GaugeFunc("sudaf_server_sessions_open", lbl,
		"Client sessions currently open.",
		func() float64 { return float64(s.sessions.numOpen()) })
	r.CounterFunc("sudaf_server_sessions_opened_total", lbl,
		"Client sessions opened over the server's lifetime.",
		s.sessions.opened.Load)
	r.GaugeFunc("sudaf_server_connections_open", lbl,
		"TCP connections currently open (0 until the chaos listener is serving).",
		func() float64 { return float64(s.connsOpen.Load()) })
	r.GaugeFunc("sudaf_server_drain_seconds", lbl,
		"How long the completed server Shutdown drain took (0 until shut down).",
		func() float64 { return float64(s.drainNanos.Load()) / 1e9 })
}
