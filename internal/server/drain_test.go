package server_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/errs"
	"sudaf/internal/faultinject"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// TestGracefulDrainUnderLoad is the PR's headline guarantee: shutting a
// loaded server down loses no accepted query, resolves every caller to
// a typed outcome, leaks no goroutines, and leaves the engine — and its
// warm state cache — intact for the next front-end.
func TestGracefulDrainUnderLoad(t *testing.T) {
	eng := newEngine(t, 20000, core.Options{Workers: 2, MaxConcurrentQueries: 2})
	baseline := runtime.NumGoroutine()
	srv := startServer(t, server.Config{
		Session: eng, MaxInflight: 4, QueueDepth: 8, MetricsLabel: "drain-a"})

	const callers = 24
	type outcome struct{ ok, shed, closed, canceled, refused bool }
	outcomes := make([]outcome, callers)
	errsSeen := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(srv.Addr(), client.Options{Retries: -1})
			_, err := c.Query(context.Background(), testQuery, "share")
			switch {
			case err == nil:
				outcomes[i].ok = true
			case errors.Is(err, errs.ErrOverloaded):
				outcomes[i].shed = true
			case errors.Is(err, errs.ErrEngineClosed):
				outcomes[i].closed = true
			case errors.Is(err, errs.ErrCanceled):
				outcomes[i].canceled = true
			case client.IsTransport(err):
				// Dialed after the listener closed: refused at the socket.
				// The request provably never reached execution.
				outcomes[i].refused = true
			default:
				errsSeen[i] = err
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let a queue form mid-burst
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	var ok, typedRejects int
	for i, o := range outcomes {
		if errsSeen[i] != nil {
			t.Errorf("caller %d: untyped outcome: %v", i, errsSeen[i])
		}
		if o.ok {
			ok++
		}
		if o.shed || o.closed || o.canceled || o.refused {
			typedRejects++
		}
	}
	if ok == 0 {
		t.Error("no query completed before the drain — burst mistimed")
	}
	if ok+typedRejects != callers {
		t.Errorf("outcomes don't account for every caller: ok=%d rejects=%d of %d",
			ok, typedRejects, callers)
	}
	// Zero lost accepted queries: the engine's lifetime counters balance.
	st := eng.Stats()
	if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
		t.Errorf("engine stats unbalanced: started=%d completed=%d failed=%d",
			st.QueriesStarted, st.QueriesCompleted, st.QueriesFailed)
	}
	// Idempotent shutdown.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}

	// No leaked goroutines: the count settles back to the pre-server
	// baseline (engine worker pool included in both measurements).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines after drain = %d, baseline %d", n, baseline)
	}

	// The engine survives its front-end: a NEW server over the same
	// session serves immediately, and the share-mode cache is still warm
	// — the repeated query is a full cache hit across the restart.
	srv2 := startServer(t, server.Config{Session: eng, MetricsLabel: "drain-b"})
	c := client.New(srv2.Addr(), client.Options{})
	res, err := c.Query(context.Background(), testQuery, "share")
	if err != nil {
		t.Fatalf("query after front-end restart: %v", err)
	}
	if !res.End.FullCacheHit {
		t.Error("restarted front-end lost the warm cache: want a full cache hit")
	}
}

// TestDrainDeadline: a Shutdown bounded by a too-short context reports
// the incomplete drain without abandoning the in-flight stream, and a
// follow-up unbounded Shutdown completes cleanly.
func TestDrainDeadline(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, MetricsLabel: "drain-dl"})

	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 150 * time.Millisecond, Times: 1})
	qErr := make(chan error, 1)
	go func() {
		c := client.New(srv.Addr(), client.Options{Retries: -1})
		_, err := c.Query(context.Background(), testQuery, "rewrite")
		qErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow query get in flight

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded Shutdown: got %v, want DeadlineExceeded", err)
	}
	if err := <-qErr; err != nil {
		t.Fatalf("in-flight query must survive an interrupted drain: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("final Shutdown: %v", err)
	}
}

// TestDrainRejectsTyped: requests arriving at a draining server get the
// typed closed rejection (503), which the retrying client classifies as
// retryable — it would find the replacement server on a real redeploy.
func TestDrainRejectsTyped(t *testing.T) {
	eng := newEngine(t, 500, core.Options{})
	srv := startServer(t, server.Config{Session: eng, MetricsLabel: "drain-rej"})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The listener is down; transport errors are what clients see. What
	// matters here: the engine is untouched and still serves directly.
	if eng.Closed() {
		t.Fatal("server Shutdown must not close the engine")
	}
	if _, err := eng.Query(testQuery, core.ModeShare); err != nil {
		t.Fatalf("engine query after server shutdown: %v", err)
	}
}
