package server_test

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// deltaCols builds one append batch for the store_sales fixture.
func deltaCols(store []int64, list, sales []float64) []server.ColumnData {
	return []server.ColumnData{
		{Name: "ss_store_sk", Kind: "int", Ints: store},
		{Name: "ss_list_price", Kind: "float", Floats: list},
		{Name: "ss_sales_price", Kind: "float", Floats: sales},
	}
}

// TestSubscribeStream covers the /v1/subscribe happy path end to end:
// snapshot emission, append-driven emissions with contiguous Seq and
// correct row coverage, values matching a one-shot windowed query, and
// a clean maxEmits termination.
func TestSubscribeStream(t *testing.T) {
	eng := newEngine(t, 5, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx,
		"SELECT sum(ss_list_price) OVER (ROWS 2 PRECEDING) FROM store_sales", "share", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Snapshot: 5 seed rows, one output row each.
	first, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Window == nil || first.Window.Seq != 1 {
		t.Fatalf("first emission meta = %+v", first.Window)
	}
	if len(first.Rows) != 5 || first.Window.FirstRow != 0 || first.Window.LastRow != 4 {
		t.Fatalf("snapshot covers rows [%d,%d], %d rows",
			first.Window.FirstRow, first.Window.LastRow, len(first.Rows))
	}
	if sub.Columns() == nil {
		t.Fatal("schema must precede the first emission")
	}

	// Two appends → two more emissions, then the maxEmits end frame.
	if _, err := c.Append(ctx, "store_sales",
		deltaCols([]int64{0, 1}, []float64{10, 20}, []float64{5, 10})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "store_sales",
		deltaCols([]int64{2}, []float64{30}, []float64{15})); err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	rows = append(rows, first.Rows...)
	for seq := int64(2); seq <= 3; seq++ {
		e, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.Window.Seq != seq {
			t.Fatalf("Seq = %d, want %d (gap)", e.Window.Seq, seq)
		}
		rows = append(rows, e.Rows...)
	}
	if _, err := sub.Next(); err != io.EOF {
		t.Fatalf("after maxEmits: err = %v, want io.EOF", err)
	}
	if sub.End() == nil || sub.End().Groups != 3 {
		t.Fatalf("end frame = %+v", sub.End())
	}

	// The concatenated emissions must equal the one-shot windowed query
	// over the final table.
	res, err := eng.Query("SELECT sum(ss_list_price) OVER (ROWS 2 PRECEDING) FROM store_sales", core.ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != res.Table.NumRows() {
		t.Fatalf("streamed %d rows, one-shot has %d", len(rows), res.Table.NumRows())
	}
	for i := range rows {
		got, _ := server.CellFloat(rows[i][0])
		want := res.Table.Cols[0].F[i]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: %v != one-shot %v", i, got, want)
		}
	}
}

// TestSubscribeDrain pins the drain contract: an open subscribe stream
// ends promptly with a clean "server draining" end frame when Shutdown
// begins, and Shutdown is not held up by idle subscribers.
func TestSubscribeDrain(t *testing.T) {
	eng := newEngine(t, 4, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx,
		"SELECT avg(ss_list_price) OVER (ROWS 1 PRECEDING) FROM store_sales", "rewrite", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Next(); err != nil { // snapshot
		t.Fatal(err)
	}

	shutErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(sctx)
	}()
	if _, err := sub.Next(); err != io.EOF {
		t.Fatalf("during drain: err = %v, want io.EOF", err)
	}
	end := sub.End()
	if end == nil || len(end.Events) == 0 || end.Events[0] != "server draining" {
		t.Fatalf("end frame = %+v, want the draining event", end)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown held up by subscriber: %v", err)
	}
	// New subscriptions are shed with the typed draining rejection.
	if _, err := c.Subscribe(ctx,
		"SELECT avg(ss_list_price) OVER (ROWS 1 PRECEDING) FROM store_sales", "share", 0); err == nil {
		t.Fatal("subscribe after drain must fail")
	}
}

// TestSubscribeRejections: bad requests fail before streaming with
// typed bodies.
func TestSubscribeRejections(t *testing.T) {
	eng := newEngine(t, 4, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{Retries: -1})
	ctx := context.Background()

	// No OVER clause: the engine rejects at subscribe time.
	if _, err := c.Subscribe(ctx, "SELECT avg(ss_list_price) FROM store_sales", "share", 0); err == nil {
		t.Fatal("subscribe without OVER must fail")
	}
	// Unknown table: typed error survives the wire.
	_, err := c.Subscribe(ctx, "SELECT avg(x) OVER (ROWS 1 PRECEDING) FROM nope", "share", 0)
	if err == nil {
		t.Fatal("unknown table must fail")
	}
	if sub, err := c.Subscribe(ctx, "", "share", 0); err == nil {
		sub.Close()
		t.Fatal("empty sql must fail")
	}
}

// TestSubscribeClientGone: a subscriber that disconnects mid-stream
// must not wedge the server — the handler notices the dead connection
// on the next emission and detaches.
func TestSubscribeClientGone(t *testing.T) {
	eng := newEngine(t, 4, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx,
		"SELECT sum(ss_list_price) OVER (ROWS 1 PRECEDING) FROM store_sales", "share", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	sub.Close() // hang up

	// Appends keep flowing; the abandoned handler must clean up rather
	// than block the engine or the drain.
	for i := 0; i < 3; i++ {
		if _, err := c.Append(ctx, "store_sales",
			deltaCols([]int64{0}, []float64{1}, []float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after client hangup: %v", err)
	}
	if errors.Is(sctx.Err(), context.DeadlineExceeded) {
		t.Fatal("drain timed out")
	}
}
