// Wire protocol: JSON requests over HTTP, length-framed NDJSON
// responses for streamed query results.
//
// A query response is a sequence of frames, one per line, each line
// carrying its own byte length so a torn connection is detectable:
//
//	<decimal byte length> <json>\n
//
// The JSON payload is a Frame. A well-formed stream is
//
//	schema (batch)* (end | error)
//
// and a stream that stops before its end/error frame — or whose length
// prefix disagrees with the bytes that follow — was torn mid-flight;
// the client surfaces ErrTornStream and may retry (queries are
// read-only). Errors are classified by a short machine-readable code
// that maps 1:1 onto the engine's typed sentinels, so errors.Is keeps
// working across the network boundary.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"sudaf/internal/core"
	"sudaf/internal/errs"
	"sudaf/internal/storage"
)

// MaxFrameBytes is the default bound on one frame's JSON payload, for
// both writers and readers; oversized frames are a protocol error.
const MaxFrameBytes = 8 << 20

// Error codes carried in error frames and error response bodies.
const (
	// CodeParse: the SQL failed to parse (ErrParse).
	CodeParse = "parse"
	// CodeUnknownTable: FROM names an unregistered table (ErrUnknownTable).
	CodeUnknownTable = "unknown_table"
	// CodeUnknownUDAF: an aggregate is neither built-in nor registered
	// (ErrUnknownUDAF).
	CodeUnknownUDAF = "unknown_udaf"
	// CodeNumericFault: strict numeric policy rejected a NaN/±Inf output
	// (ErrNumericFault).
	CodeNumericFault = "numeric_fault"
	// CodeCanceled: the request's context/deadline stopped the query
	// (ErrCanceled).
	CodeCanceled = "canceled"
	// CodeClosed: the engine or server is closed/draining
	// (ErrEngineClosed).
	CodeClosed = "closed"
	// CodeOverloaded: shed by overload protection before execution
	// (ErrOverloaded).
	CodeOverloaded = "overloaded"
	// CodeBadRequest: malformed request body, unknown mode, oversized
	// payload.
	CodeBadRequest = "bad_request"
	// CodeUnknownSession: the named session does not exist (expired,
	// closed, or never created).
	CodeUnknownSession = "unknown_session"
	// CodeUnknownPrepared: the named prepared-statement handle does not
	// exist in the session.
	CodeUnknownPrepared = "unknown_prepared"
	// CodeInternal: everything else.
	CodeInternal = "internal"
)

// Frame types.
const (
	FrameSchema = "schema"
	FrameBatch  = "batch"
	FrameEnd    = "end"
	FrameError  = "error"
)

// ColumnSpec describes one result (or append) column on the wire.
type ColumnSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "float" | "int" | "string"
}

// QueryStatsWire is the end frame's per-query observability record.
type QueryStatsWire struct {
	WallMicros      int64 `json:"wallMicros"`
	QueueWaitMicros int64 `json:"queueWaitMicros,omitempty"`
	RowsScanned     int   `json:"rowsScanned"`
	CacheExactHits  int   `json:"cacheExactHits,omitempty"`
	CacheSharedHits int   `json:"cacheSharedHits,omitempty"`
	CacheSignHits   int   `json:"cacheSignHits,omitempty"`
	CacheMisses     int   `json:"cacheMisses,omitempty"`
}

// Frame is one line of a streamed query response.
type Frame struct {
	Type string `json:"type"`
	// Query is the batch index the frame belongs to; single-query
	// streams leave it zero. A /v1/batch response is each query's
	// schema (batch)* end sub-stream in batch order, every frame
	// tagged, terminated early by one error frame for the whole batch.
	Query int `json:"query,omitempty"`
	// schema
	Columns []ColumnSpec `json:"columns,omitempty"`
	// batch: row-major cells; floats are numbers except NaN/±Inf, which
	// arrive as the strings "NaN", "+Inf", "-Inf".
	Rows [][]any `json:"rows,omitempty"`
	// end
	Groups       int             `json:"groups,omitempty"`
	FullCacheHit bool            `json:"fullCacheHit,omitempty"`
	UsedView     string          `json:"usedView,omitempty"`
	Events       []string        `json:"events,omitempty"`
	Stats        *QueryStatsWire `json:"stats,omitempty"`
	// error
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Window tags a /v1/subscribe batch frame with its emission
	// provenance; nil on plain query streams.
	Window *WindowMeta `json:"window,omitempty"`
}

// WindowMeta is one subscription emission's provenance: its position in
// the stream (Seq, contiguous from 1 — a gap means frames were lost),
// the pinned table version it was computed against, and the absolute
// base-table rows the emission's windows cover.
type WindowMeta struct {
	Seq           int64 `json:"seq"`
	Epoch         int64 `json:"epoch"`
	FirstRow      int   `json:"firstRow"`
	LastRow       int   `json:"lastRow"`
	NumericFaults int   `json:"numericFaults,omitempty"`
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// SQL is the statement to run; mutually exclusive with Prepared.
	SQL string `json:"sql,omitempty"`
	// Prepared names a prepared-statement handle in the request's
	// session.
	Prepared string `json:"prepared,omitempty"`
	// Mode is "baseline", "rewrite" or "share" (default "share");
	// ignored for prepared statements, which fixed their mode at
	// prepare time.
	Mode string `json:"mode,omitempty"`
	// Session is the session id; optional for plain SQL (sessionless
	// requests count only against global caps), required for Prepared.
	// The X-Sudaf-Session header takes precedence.
	Session string `json:"session,omitempty"`
	// BatchRows bounds rows per batch frame (0 = server default).
	BatchRows int `json:"batchRows,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: one multi-query batch
// submitted for shared planning (Engine.QueryBatch). All queries run
// under one mode and one catalog snapshot; the batch occupies a single
// server execution slot.
type BatchRequest struct {
	// Queries are the statements, in order; responses tag frames with
	// each query's index here.
	Queries []string `json:"queries"`
	// Mode is "baseline", "rewrite" or "share" (default "share"),
	// applied to the whole batch.
	Mode string `json:"mode,omitempty"`
	// Session is the session id (optional; the X-Sudaf-Session header
	// takes precedence).
	Session string `json:"session,omitempty"`
	// BatchRows bounds rows per batch frame (0 = server default).
	BatchRows int `json:"batchRows,omitempty"`
}

// SubscribeRequest is the body of POST /v1/subscribe: a continuous
// windowed query (the SQL must carry an OVER clause). The response is a
// long-lived NDJSON stream — schema on the first emission, then one
// batch frame per WindowResult, each tagged with WindowMeta — ended by
// an end frame (MaxEmits reached or server drain) or an error frame.
type SubscribeRequest struct {
	SQL string `json:"sql"`
	// Mode is "baseline", "rewrite" or "share" (default "share").
	Mode string `json:"mode,omitempty"`
	// Session is the session id (optional; the X-Sudaf-Session header
	// takes precedence).
	Session string `json:"session,omitempty"`
	// MaxEmits closes the stream cleanly after that many emissions
	// (0 = until the client disconnects or the server drains).
	MaxEmits int `json:"maxEmits,omitempty"`
}

// PrepareRequest is the body of POST /v1/prepare.
type PrepareRequest struct {
	Session string `json:"session,omitempty"`
	SQL     string `json:"sql"`
	Mode    string `json:"mode,omitempty"`
}

// PrepareResponse is the body answering POST /v1/prepare.
type PrepareResponse struct {
	Handle string `json:"handle"`
}

// SessionResponse is the body answering POST /v1/session.
type SessionResponse struct {
	ID string `json:"id"`
}

// ColumnData is one column of an append delta, columnar on the wire.
type ColumnData struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Floats  []float64 `json:"floats,omitempty"`
	Ints    []int64   `json:"ints,omitempty"`
	Strings []string  `json:"strings,omitempty"`
}

// AppendRequest is the body of POST /v1/append.
type AppendRequest struct {
	Session string       `json:"session,omitempty"`
	Table   string       `json:"table"`
	Columns []ColumnData `json:"columns"`
}

// AppendResponse is the body answering POST /v1/append.
type AppendResponse struct {
	Table              string   `json:"table"`
	RowsAppended       int      `json:"rowsAppended"`
	OldEpoch           int64    `json:"oldEpoch"`
	NewEpoch           int64    `json:"newEpoch"`
	EntriesMigrated    int      `json:"entriesMigrated,omitempty"`
	StatesMaintained   int      `json:"statesMaintained,omitempty"`
	EntriesInvalidated int      `json:"entriesInvalidated,omitempty"`
	ViewsMaintained    int      `json:"viewsMaintained,omitempty"`
	ViewsInvalidated   int      `json:"viewsInvalidated,omitempty"`
	Events             []string `json:"events,omitempty"`
}

// ErrorBody is the JSON body of a non-200 response (errors detected
// before streaming began).
type ErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// HealthResponse is the body answering GET /v1/health.
type HealthResponse struct {
	Status       string `json:"status"` // "ok" | "draining"
	SessionsOpen int64  `json:"sessionsOpen"`
	Inflight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
}

// ModeFromString maps a wire mode name onto core.Mode; empty means
// Share.
func ModeFromString(s string) (core.Mode, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "share", "sudaf-share":
		return core.ModeShare, true
	case "rewrite", "noshare", "sudaf-noshare":
		return core.ModeRewrite, true
	case "baseline":
		return core.ModeBaseline, true
	}
	return 0, false
}

// CodeForError classifies an engine error under a wire code.
func CodeForError(err error) string {
	switch {
	case errors.Is(err, errs.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, errs.ErrEngineClosed):
		return CodeClosed
	case errors.Is(err, errs.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	case errors.Is(err, errs.ErrParse):
		return CodeParse
	case errors.Is(err, errs.ErrUnknownTable):
		return CodeUnknownTable
	case errors.Is(err, errs.ErrUnknownUDAF):
		return CodeUnknownUDAF
	case errors.Is(err, errs.ErrNumericFault):
		return CodeNumericFault
	}
	return CodeInternal
}

// ErrorForCode reconstructs a typed error from a wire code, wrapping
// the matching sentinel so errors.Is classification survives the trip.
func ErrorForCode(code, msg string) error {
	var sentinel error
	switch code {
	case CodeOverloaded:
		sentinel = errs.ErrOverloaded
	case CodeClosed:
		sentinel = errs.ErrEngineClosed
	case CodeCanceled:
		sentinel = errs.ErrCanceled
	case CodeParse:
		sentinel = errs.ErrParse
	case CodeUnknownTable:
		sentinel = errs.ErrUnknownTable
	case CodeUnknownUDAF:
		sentinel = errs.ErrUnknownUDAF
	case CodeNumericFault:
		sentinel = errs.ErrNumericFault
	default:
		return fmt.Errorf("server error [%s]: %s", code, msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// HTTPStatusForCode maps a wire code onto the HTTP status used when the
// error is reported before streaming begins.
func HTTPStatusForCode(code string) int {
	switch code {
	case CodeOverloaded:
		return 429
	case CodeClosed:
		return 503
	case CodeCanceled:
		return 408
	case CodeUnknownSession, CodeUnknownPrepared, CodeUnknownTable, CodeUnknownUDAF:
		return 404
	case CodeParse, CodeNumericFault, CodeBadRequest:
		return 400
	}
	return 500
}

// WriteFrame length-frames one frame onto w: "<len> <json>\n".
func WriteFrame(w io.Writer, f *Frame) error {
	js, err := json.Marshal(f)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%d %s\n", len(js), js)
	return err
}

// Frame read errors.
var (
	// ErrTornStream reports a response stream that ended or corrupted
	// mid-frame — the wire-level signature of a torn connection.
	ErrTornStream = errors.New("torn response stream")
	// ErrFrameTooLarge reports a frame whose declared length exceeds the
	// reader's bound.
	ErrFrameTooLarge = errors.New("frame exceeds size bound")
)

// ReadFrame reads one length-framed frame from br, enforcing maxLen
// (<=0 uses MaxFrameBytes). io.EOF at a frame boundary is returned
// verbatim; any mid-frame truncation or framing mismatch wraps
// ErrTornStream.
func ReadFrame(br *bufio.Reader, maxLen int) (*Frame, error) {
	if maxLen <= 0 {
		maxLen = MaxFrameBytes
	}
	// Length prefix: ASCII decimal up to the separating space.
	n := 0
	digits := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: reading length prefix: %v", ErrTornStream, err)
		}
		if b == ' ' {
			if digits == 0 {
				return nil, fmt.Errorf("%w: empty length prefix", ErrTornStream)
			}
			break
		}
		if b < '0' || b > '9' {
			return nil, fmt.Errorf("%w: bad length prefix byte %q", ErrTornStream, b)
		}
		digits++
		if digits > 9 { // > 999,999,999 bytes is nonsense before overflow
			return nil, fmt.Errorf("%w: declared %d+ digit frame length", ErrFrameTooLarge, digits)
		}
		n = n*10 + int(b-'0')
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: declared %d bytes, bound %d", ErrFrameTooLarge, n, maxLen)
	}
	buf := make([]byte, n+1) // +1 for the trailing newline
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTornStream, err)
	}
	if buf[n] != '\n' {
		return nil, fmt.Errorf("%w: frame not newline-terminated", ErrTornStream)
	}
	f, err := DecodeFrame(buf[:n])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTornStream, err)
	}
	return f, nil
}

// DecodeFrame parses one frame payload (without the length prefix).
func DecodeFrame(data []byte) (*Frame, error) {
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameSchema, FrameBatch, FrameEnd, FrameError:
		return &f, nil
	}
	return nil, fmt.Errorf("unknown frame type %q", f.Type)
}

// DecodeQueryRequest parses and validates a query request body.
func DecodeQueryRequest(data []byte) (*QueryRequest, error) {
	var q QueryRequest
	if err := strictUnmarshal(data, &q); err != nil {
		return nil, err
	}
	if (q.SQL == "") == (q.Prepared == "") {
		return nil, fmt.Errorf("exactly one of sql and prepared must be set")
	}
	if _, ok := ModeFromString(q.Mode); !ok {
		return nil, fmt.Errorf("unknown mode %q", q.Mode)
	}
	if q.BatchRows < 0 {
		return nil, fmt.Errorf("negative batchRows")
	}
	return &q, nil
}

// DecodeBatchRequest parses and validates a batch request body.
func DecodeBatchRequest(data []byte) (*BatchRequest, error) {
	var b BatchRequest
	if err := strictUnmarshal(data, &b); err != nil {
		return nil, err
	}
	if len(b.Queries) == 0 {
		return nil, fmt.Errorf("empty queries")
	}
	for i, q := range b.Queries {
		if strings.TrimSpace(q) == "" {
			return nil, fmt.Errorf("query %d is empty", i)
		}
	}
	if _, ok := ModeFromString(b.Mode); !ok {
		return nil, fmt.Errorf("unknown mode %q", b.Mode)
	}
	if b.BatchRows < 0 {
		return nil, fmt.Errorf("negative batchRows")
	}
	return &b, nil
}

// DecodeSubscribeRequest parses and validates a subscribe request body.
func DecodeSubscribeRequest(data []byte) (*SubscribeRequest, error) {
	var sr SubscribeRequest
	if err := strictUnmarshal(data, &sr); err != nil {
		return nil, err
	}
	if sr.SQL == "" {
		return nil, fmt.Errorf("empty sql")
	}
	if _, ok := ModeFromString(sr.Mode); !ok {
		return nil, fmt.Errorf("unknown mode %q", sr.Mode)
	}
	if sr.MaxEmits < 0 {
		return nil, fmt.Errorf("negative maxEmits")
	}
	return &sr, nil
}

// DecodePrepareRequest parses and validates a prepare request body.
func DecodePrepareRequest(data []byte) (*PrepareRequest, error) {
	var p PrepareRequest
	if err := strictUnmarshal(data, &p); err != nil {
		return nil, err
	}
	if p.SQL == "" {
		return nil, fmt.Errorf("empty sql")
	}
	if _, ok := ModeFromString(p.Mode); !ok {
		return nil, fmt.Errorf("unknown mode %q", p.Mode)
	}
	return &p, nil
}

// DecodeAppendRequest parses and validates an append request body.
func DecodeAppendRequest(data []byte) (*AppendRequest, error) {
	var a AppendRequest
	if err := strictUnmarshal(data, &a); err != nil {
		return nil, err
	}
	if a.Table == "" {
		return nil, fmt.Errorf("empty table")
	}
	if len(a.Columns) == 0 {
		return nil, fmt.Errorf("no columns")
	}
	if _, err := a.ToTable(); err != nil {
		return nil, err
	}
	return &a, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage, so typos in hand-written clients fail loudly.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// KindFromString maps a wire kind name onto a storage kind.
func KindFromString(s string) (storage.Kind, bool) {
	switch s {
	case "float":
		return storage.KindFloat, true
	case "int":
		return storage.KindInt, true
	case "string":
		return storage.KindString, true
	}
	return 0, false
}

// kindString renders a storage kind for the wire.
func kindString(k storage.Kind) string {
	switch k {
	case storage.KindInt:
		return "int"
	case storage.KindString:
		return "string"
	}
	return "float"
}

// ToTable materializes an append delta as a storage table, validating
// kinds and per-column lengths.
func (a *AppendRequest) ToTable() (*storage.Table, error) {
	cols := make([]*storage.Column, len(a.Columns))
	rows := -1
	for i, cd := range a.Columns {
		kind, ok := KindFromString(cd.Kind)
		if !ok {
			return nil, fmt.Errorf("column %s: unknown kind %q", cd.Name, cd.Kind)
		}
		c := storage.NewColumn(cd.Name, kind)
		n := 0
		switch kind {
		case storage.KindFloat:
			for _, v := range cd.Floats {
				c.AppendFloat(v)
			}
			n = len(cd.Floats)
		case storage.KindInt:
			for _, v := range cd.Ints {
				c.AppendInt(v)
			}
			n = len(cd.Ints)
		default:
			for _, v := range cd.Strings {
				c.AppendString(v)
			}
			n = len(cd.Strings)
		}
		if rows >= 0 && n != rows {
			return nil, fmt.Errorf("column %s: %d values, want %d", cd.Name, n, rows)
		}
		rows = n
		cols[i] = c
	}
	t := storage.NewTable(a.Table, cols...)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SchemaFrame builds the schema frame for a result table.
func SchemaFrame(t *storage.Table) *Frame {
	cols := make([]ColumnSpec, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = ColumnSpec{Name: c.Name, Kind: kindString(c.Kind)}
	}
	return &Frame{Type: FrameSchema, Columns: cols}
}

// BatchFrame renders a result batch row-major. Non-finite floats are
// encoded as the strings "NaN", "+Inf", "-Inf" — JSON has no spelling
// for them.
func BatchFrame(b *storage.Table) *Frame {
	n := b.NumRows()
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(b.Cols))
		for j, c := range b.Cols {
			switch c.Kind {
			case storage.KindString:
				row[j] = c.StringAt(i)
			case storage.KindInt:
				row[j] = c.AsInt(i)
			default:
				v := c.AsFloat(i)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					row[j] = nonFiniteString(v)
				} else {
					row[j] = v
				}
			}
		}
		rows[i] = row
	}
	return &Frame{Type: FrameBatch, Rows: rows}
}

func nonFiniteString(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return "NaN"
}

// CellFloat decodes a batch cell as float64, accepting the non-finite
// string spellings BatchFrame emits (and json.Number-free decoding's
// float64s).
func CellFloat(cell any) (float64, bool) {
	switch v := cell.(type) {
	case float64:
		return v, true
	case string:
		switch v {
		case "NaN":
			return math.NaN(), true
		case "+Inf":
			return math.Inf(1), true
		case "-Inf":
			return math.Inf(-1), true
		}
	}
	return 0, false
}

// EndFrame builds the terminal frame for a successful query.
func EndFrame(res *core.Result) *Frame {
	return &Frame{
		Type:         FrameEnd,
		Groups:       res.Groups,
		FullCacheHit: res.FullCacheHit,
		UsedView:     res.UsedView,
		Events:       res.Events,
		Stats: &QueryStatsWire{
			WallMicros:      res.Stats.WallTime.Microseconds(),
			QueueWaitMicros: res.Stats.QueueWait.Microseconds(),
			RowsScanned:     res.Stats.RowsScanned,
			CacheExactHits:  res.Stats.CacheExactHits,
			CacheSharedHits: res.Stats.CacheSharedHits,
			CacheSignHits:   res.Stats.CacheSignHits,
			CacheMisses:     res.Stats.CacheMisses,
		},
	}
}

// ErrorFrame builds the terminal frame for a failed query.
func ErrorFrame(err error) *Frame {
	return &Frame{Type: FrameError, Code: CodeForError(err), Error: err.Error()}
}
