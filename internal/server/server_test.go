package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/errs"
	"sudaf/internal/faultinject"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// TestQueryRoundTrip: a query over the wire returns exactly what the
// engine returns directly — schema, values, and the end-frame stats.
func TestQueryRoundTrip(t *testing.T) {
	eng := newEngine(t, 4000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})

	direct, err := eng.Query(testQuery, core.ModeShare)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), testQuery, "share")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns = %v, want 3", res.Columns)
	}
	if len(res.Rows) != direct.Table.NumRows() {
		t.Fatalf("rows = %d, want %d", len(res.Rows), direct.Table.NumRows())
	}
	for i := 0; i < direct.Table.NumRows(); i++ {
		if got, want := res.String(i, 0), direct.Table.Cols[0].StringAt(i); got != want {
			t.Errorf("row %d state = %q, want %q", i, got, want)
		}
		for col := 1; col < 3; col++ {
			got, want := res.Float(i, col), direct.Table.Cols[col].AsFloat(i)
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("row %d col %d = %v, want %v", i, col, got, want)
			}
		}
	}
	if res.End == nil || res.End.Groups != direct.Groups {
		t.Errorf("end frame = %+v, want groups %d", res.End, direct.Groups)
	}
	if res.End.Stats == nil {
		t.Error("end frame missing stats")
	}
}

// TestSmallBatchStreaming: tiny batch frames arrive as several frames
// and reassemble into the same result.
func TestSmallBatchStreaming(t *testing.T) {
	eng := newEngine(t, 4000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1})
	c := client.New(srv.Addr(), client.Options{})
	res, err := c.Query(context.Background(), testQuery, "rewrite")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 4 distinct states
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
}

// TestSessionsAndPrepared: prepared handles are scoped to their
// session, survive across requests, and die with the session.
func TestSessionsAndPrepared(t *testing.T) {
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	ctx := context.Background()

	c := client.New(srv.Addr(), client.Options{})
	if err := c.OpenSession(ctx); err != nil {
		t.Fatal(err)
	}
	handle, err := c.Prepare(ctx, testQuery, "share")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.QueryPrepared(ctx, handle)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.QueryPrepared(ctx, handle)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("prepared reruns disagree: %d vs %d rows", len(r1.Rows), len(r2.Rows))
	}
	// The second identical share-mode run is answered from the cache.
	if !r2.End.FullCacheHit {
		t.Error("second prepared share run should be a full cache hit")
	}

	// A bad statement fails at prepare time.
	if _, err := c.Prepare(ctx, "SELECT nonsense FROM", "share"); !errors.Is(err, errs.ErrParse) {
		t.Errorf("bad prepare: got %v, want ErrParse", err)
	}
	// Handles are per-session: a fresh session cannot see them.
	c2 := client.New(srv.Addr(), client.Options{})
	if err := c2.OpenSession(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.QueryPrepared(ctx, handle); err == nil ||
		!strings.Contains(err.Error(), "no prepared statement") {
		t.Errorf("cross-session prepared lookup: got %v, want unknown_prepared", err)
	}
	// Sessionless prepared execution is a bad request.
	c3 := client.New(srv.Addr(), client.Options{})
	if _, err := c3.QueryPrepared(ctx, handle); err == nil ||
		!strings.Contains(err.Error(), "require a session") {
		t.Errorf("sessionless prepared: got %v", err)
	}
	// Closing the session kills its handles.
	sid := c.Session()
	if err := c.CloseSession(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+srv.Addr()+"/v1/query", "application/json",
		strings.NewReader(`{"prepared":"`+handle+`","session":"`+sid+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("prepared query on closed session: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionCap: the open-session cap sheds session creation with a
// typed overloaded error.
func TestSessionCap(t *testing.T) {
	eng := newEngine(t, 500, core.Options{})
	srv := startServer(t, server.Config{Session: eng, MaxSessions: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c := client.New(srv.Addr(), client.Options{})
		if err := c.OpenSession(ctx); err != nil {
			t.Fatal(err)
		}
	}
	c := client.New(srv.Addr(), client.Options{Retries: -1})
	if err := c.OpenSession(ctx); !errors.Is(err, errs.ErrOverloaded) {
		t.Errorf("over-cap session open: got %v, want ErrOverloaded", err)
	}
}

// TestDeadlineHeaderPropagation: X-Sudaf-Deadline-Ms becomes a server-
// side context deadline that cancels the engine mid-query, surfacing as
// a typed canceled error — proof the deadline crossed all three layers.
func TestDeadlineHeaderPropagation(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})

	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 200 * time.Millisecond})
	body := `{"sql":` + jsonString(testQuery) + `,"mode":"rewrite"}`
	req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/v1/query",
		strings.NewReader(body))
	req.Header.Set("X-Sudaf-Deadline-Ms", "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 408 {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
	var eb server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != server.CodeCanceled {
		t.Errorf("code = %q, want canceled", eb.Code)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestOverloadShedding: with one slot and a one-deep queue, a burst of
// slow queries sheds the excess fast with typed 429s, and the shed
// counter shows up in the metrics scrape.
func TestOverloadShedding(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 1000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, MaxInflight: 1, QueueDepth: 1})

	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 80 * time.Millisecond})
	const burst = 6
	var wg sync.WaitGroup
	var ok, shed, other int64
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(srv.Addr(), client.Options{Retries: -1})
			_, err := c.Query(context.Background(), testQuery, "rewrite")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, errs.ErrOverloaded):
				shed++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Errorf("%d untyped outcomes in overload burst", other)
	}
	if ok == 0 || shed == 0 {
		t.Errorf("burst outcomes ok=%d shed=%d; want both nonzero", ok, shed)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sudaf_server_shed_total", "sudaf_server_requests_total",
		"sudaf_server_queue_depth", "sudaf_queries_started_total",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("metrics scrape missing %s", want)
		}
	}
}

// TestSessionConcurrencyCap: one session at its cap sheds its own
// excess while a different session keeps being served.
func TestSessionConcurrencyCap(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 1000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, SessionConcurrency: 1})
	ctx := context.Background()

	busy := client.New(srv.Addr(), client.Options{Retries: -1})
	if err := busy.OpenSession(ctx); err != nil {
		t.Fatal(err)
	}
	calm := client.New(srv.Addr(), client.Options{Retries: -1})
	if err := calm.OpenSession(ctx); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 100 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := busy.Query(ctx, testQuery, "rewrite")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow query hold the session slot
	if _, err := busy.Query(ctx, testQuery, "rewrite"); !errors.Is(err, errs.ErrOverloaded) {
		t.Errorf("second query in capped session: got %v, want ErrOverloaded", err)
	}
	if _, err := calm.Query(ctx, testQuery, "rewrite"); err != nil {
		t.Errorf("other session must not be starved: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("slow query: %v", err)
	}
}

// TestAppendOverWire: a columnar append lands in the engine and the
// next query sees it; malformed appends fail typed.
func TestAppendOverWire(t *testing.T) {
	eng := newEngine(t, 1000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	ctx := context.Background()
	c := client.New(srv.Addr(), client.Options{})

	before, err := c.Query(ctx, "SELECT count() FROM store_sales", "rewrite")
	if err != nil {
		t.Fatal(err)
	}
	ar, err := c.Append(ctx, "store_sales", []server.ColumnData{
		{Name: "ss_store_sk", Kind: "int", Ints: []int64{0, 1}},
		{Name: "ss_list_price", Kind: "float", Floats: []float64{50, 60}},
		{Name: "ss_sales_price", Kind: "float", Floats: []float64{25, 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.RowsAppended != 2 || ar.NewEpoch <= ar.OldEpoch {
		t.Fatalf("append response %+v", ar)
	}
	after, err := c.Query(ctx, "SELECT count() FROM store_sales", "rewrite")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Float(0, 0), before.Float(0, 0)+2; got != want {
		t.Errorf("count after append = %v, want %v", got, want)
	}

	// Unknown table → typed 404.
	if _, err := c.Append(ctx, "no_such_table", []server.ColumnData{
		{Name: "x", Kind: "float", Floats: []float64{1}},
	}); !errors.Is(err, errs.ErrUnknownTable) {
		t.Errorf("append to unknown table: got %v, want ErrUnknownTable", err)
	}
	// Ragged columns → bad request, never ambiguous (rejected at decode).
	if _, err := c.Append(ctx, "store_sales", []server.ColumnData{
		{Name: "ss_store_sk", Kind: "int", Ints: []int64{1}},
		{Name: "ss_list_price", Kind: "float", Floats: []float64{1, 2}},
		{Name: "ss_sales_price", Kind: "float", Floats: []float64{1}},
	}); err == nil || errors.Is(err, client.ErrAmbiguous) {
		t.Errorf("ragged append: got %v, want non-ambiguous bad request", err)
	}
}

// TestBadRequests: malformed bodies fail with 400s, not hangs or 500s.
func TestBadRequests(t *testing.T) {
	eng := newEngine(t, 200, core.Options{})
	srv := startServer(t, server.Config{Session: eng, MaxRequestBytes: 512})
	base := "http://" + srv.Addr()

	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"not json", "/v1/query", "{", 400},
		{"unknown field", "/v1/query", `{"sql":"SELECT 1","bogus":true}`, 400},
		{"sql and prepared", "/v1/query", `{"sql":"x","prepared":"p1"}`, 400},
		{"neither sql nor prepared", "/v1/query", `{}`, 400},
		{"unknown mode", "/v1/query", `{"sql":"SELECT 1","mode":"warp"}`, 400},
		{"negative batch", "/v1/query", `{"sql":"SELECT 1","batchRows":-1}`, 400},
		{"oversized body", "/v1/query", `{"sql":"` + strings.Repeat("x", 1024) + `"}`, 400},
		{"append no columns", "/v1/append", `{"table":"t"}`, 400},
		{"append bad kind", "/v1/append", `{"table":"t","columns":[{"name":"x","kind":"blob"}]}`, 400},
		{"unknown session", "/v1/query", `{"sql":"SELECT 1","session":"s999"}`, 404},
	}
	for _, tc := range cases {
		resp, err := http.Post(base+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}
}

// TestClientRetrySchedule: the backoff schedule is deterministic
// (10ms, 20ms, 40ms, ... by default) and gives up typed after the
// attempt budget against a persistently overloaded server.
func TestClientRetrySchedule(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(429)
		json.NewEncoder(w).Encode(server.ErrorBody{ //nolint:errcheck
			Code: server.CodeOverloaded, Error: "always full"})
	}))
	defer stub.Close()

	var slept []time.Duration
	c := client.New(strings.TrimPrefix(stub.URL, "http://"), client.Options{
		Retries: 3,
		Sleep:   func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	})
	_, err := c.Query(context.Background(), testQuery, "share")
	if !errors.Is(err, client.ErrRetriesExhausted) || !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("got %v, want ErrRetriesExhausted wrapping ErrOverloaded", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Errorf("backoff schedule = %v, want %v", slept, want)
	}
}

// TestHealthAndStats: the unauthenticated introspection endpoints
// respond with well-formed JSON.
func TestHealthAndStats(t *testing.T) {
	eng := newEngine(t, 500, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health status = %q, want ok", h.Status)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
}

// TestNonFiniteFloatsOverWire: NaN aggregates survive the JSON trip via
// their string spellings.
func TestNonFiniteFloatsOverWire(t *testing.T) {
	eng := newEngine(t, 0, core.Options{}) // zero rows: avg over nothing → NaN
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	res, err := c.Query(context.Background(),
		"SELECT avg(ss_list_price) FROM store_sales", "rewrite")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !math.IsNaN(res.Float(0, 0)) {
		t.Errorf("empty-table avg over the wire = %v, want NaN", res.Rows)
	}
}
