package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/faultinject"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// TestTornStreamDetectedAndRetried: an injected truncation mid-stream
// is detected by the client via length framing and the (read-only)
// query is retried to success.
func TestTornStreamDetectedAndRetried(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1})

	// After the schema frame, the first batch write tears the stream.
	faultinject.Arm(faultinject.PointNetStall, faultinject.Spec{
		Kind: faultinject.KindError, After: 1, Times: 1})
	var slept int
	c := client.New(srv.Addr(), client.Options{
		Sleep: func(context.Context, time.Duration) { slept++ },
	})
	res, err := c.Query(context.Background(), testQuery, "rewrite")
	if err != nil {
		t.Fatalf("retried torn stream must succeed: %v", err)
	}
	if len(res.Rows) != 4 || res.End == nil {
		t.Fatalf("result incomplete after retry: %d rows", len(res.Rows))
	}
	if slept == 0 {
		t.Error("no backoff recorded — the tear was never hit")
	}
	if faultinject.Fired(faultinject.PointNetStall) != 1 {
		t.Errorf("stall point fired %d times, want 1", faultinject.Fired(faultinject.PointNetStall))
	}
}

// TestTornStreamNoRetryIsTyped: with retries off, the tear surfaces as
// ErrTornStream — never as a half-parsed result.
func TestTornStreamNoRetryIsTyped(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1})
	faultinject.Arm(faultinject.PointNetStall, faultinject.Spec{
		Kind: faultinject.KindError, After: 2, Times: 1})
	c := client.New(srv.Addr(), client.Options{Retries: -1})
	if _, err := c.Query(context.Background(), testQuery, "rewrite"); !errors.Is(err, server.ErrTornStream) {
		t.Fatalf("got %v, want ErrTornStream", err)
	}
}

// TestTornConnectionRead: an injected read fault kills the connection
// mid-request; the client's transport error is retried and the server
// keeps serving.
func TestTornConnectionRead(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 1000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	faultinject.Arm(faultinject.PointNetRead, faultinject.Spec{
		Kind: faultinject.KindError, Times: 1})
	c := client.New(srv.Addr(), client.Options{
		Sleep: func(context.Context, time.Duration) {},
	})
	if _, err := c.Query(context.Background(), testQuery, "rewrite"); err != nil {
		t.Fatalf("query through a flaky read path: %v", err)
	}
}

// TestAcceptFaults: flaky accepts tear connections at the threshold
// without taking the accept loop down.
func TestAcceptFaults(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 1000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	faultinject.Arm(faultinject.PointNetAccept, faultinject.Spec{
		Kind: faultinject.KindError, Times: 2})
	c := client.New(srv.Addr(), client.Options{
		Sleep: func(context.Context, time.Duration) {},
	})
	if _, err := c.Query(context.Background(), testQuery, "rewrite"); err != nil {
		t.Fatalf("query through a flaky accept path: %v", err)
	}
	if fired := faultinject.Fired(faultinject.PointNetAccept); fired == 0 {
		t.Error("accept fault never fired — test proved nothing")
	}
}

// TestStallDuringDrainNeverWedges: a response stalling frame-by-frame
// while the server drains must finish (it is accepted work), the drain
// must complete, and the engine must come out untouched.
func TestStallDuringDrainNeverWedges(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1})

	faultinject.Arm(faultinject.PointNetStall, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 20 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		c := client.New(srv.Addr(), client.Options{Retries: -1})
		_, err := c.Query(context.Background(), testQuery, "rewrite")
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // the stream is now mid-stall

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain wedged behind a stalled stream: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("stalled stream must complete under drain: %v", err)
	}
	// Engine state: untouched, no leaked tokens, cache intact.
	st := eng.Stats()
	if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
		t.Errorf("engine stats unbalanced: %+v", st)
	}
	if _, err := eng.Query(testQuery, core.ModeShare); err != nil {
		t.Fatalf("engine after drained server: %v", err)
	}
}

// TestMidStreamClientDisconnect: a client vanishing mid-response (raw
// socket close) must not wedge the server, leak its slot, or corrupt
// the engine.
func TestMidStreamClientDisconnect(t *testing.T) {
	defer faultinject.Reset()
	eng := newEngine(t, 4000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1, MetricsLabel: "chaos-disc"})

	// Slow the stream so the disconnect happens mid-response.
	faultinject.Arm(faultinject.PointNetStall, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 10 * time.Millisecond})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	body := `{"sql":` + jsonString(testQuery) + `,"mode":"rewrite"}`
	fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: sudaf\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	// Read just the status line, then walk away mid-stream.
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	conn.Close()

	faultinject.Reset()
	// The server recovers: the abandoned handler unwinds, its slot frees,
	// and new clients are served.
	c := client.New(srv.Addr(), client.Options{})
	if _, err := c.Query(context.Background(), testQuery, "rewrite"); err != nil {
		t.Fatalf("query after mid-stream disconnect: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain after mid-stream disconnect: %v", err)
	}
	st := eng.Stats()
	if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
		t.Errorf("engine stats unbalanced after disconnect: %+v", st)
	}
}

// TestSharingAcrossReconnects: the state cache is a property of the
// engine, not the connection — a brand-new client over a brand-new
// connection gets the full-cache-hit answer for a repeated query.
func TestSharingAcrossReconnects(t *testing.T) {
	eng := newEngine(t, 4000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	ctx := context.Background()

	warm := client.New(srv.Addr(), client.Options{})
	if _, err := warm.Query(ctx, testQuery, "share"); err != nil {
		t.Fatal(err)
	}
	fresh := client.New(srv.Addr(), client.Options{})
	res, err := fresh.Query(ctx, testQuery, "share")
	if err != nil {
		t.Fatal(err)
	}
	if !res.End.FullCacheHit {
		t.Error("repeated share query over a new connection must be a full cache hit")
	}
	// And a *related* query shares states (Theorem 4.1), visible as
	// shared/sign hits rather than a cold run.
	res2, err := fresh.Query(ctx,
		`SELECT s_state, avg(ss_list_price) FROM store_sales, store
		 WHERE ss_store_sk = s_store_sk GROUP BY s_state`, "share")
	if err != nil {
		t.Fatal(err)
	}
	stats := res2.End.Stats
	if stats == nil || stats.CacheExactHits+stats.CacheSharedHits+stats.CacheSignHits == 0 {
		t.Errorf("related query shows no sharing over the wire: %+v", stats)
	}
}

// TestChaosSeedsServing sweeps deterministic seeds, each arming one
// random fault point (engine or network), while a retrying client runs
// queries. Whatever the fault, the outcome is a result or a clean
// error; afterwards the server drains and the engine still answers.
func TestChaosSeedsServing(t *testing.T) {
	eng := newEngine(t, 2000, core.Options{})
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			defer faultinject.Reset()
			srv := startServer(t, server.Config{Session: eng, MetricsLabel: fmt.Sprintf("seed%d", seed)})
			point, spec := faultinject.PlanFromSeed(seed)
			t.Logf("seed %d: %s %v after=%d", seed, point, spec.Kind, spec.After)

			c := client.New(srv.Addr(), client.Options{
				Retries: 2,
				Sleep:   func(context.Context, time.Duration) {},
			})
			for i := 0; i < 3; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := c.Query(ctx, testQuery, "share")
				cancel()
				if err != nil && strings.Contains(err.Error(), "panic") &&
					!strings.Contains(err.Error(), "recovered") {
					t.Errorf("query %d surfaced an unrecovered panic: %v", i, err)
				}
				// Any other error is acceptable — it must just be an error,
				// not a hang, crash, or wrong shape.
			}
			faultinject.Reset()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("drain after chaos: %v", err)
			}
			if _, err := eng.Query(testQuery, core.ModeShare); err != nil {
				t.Fatalf("engine corrupted by serving chaos: %v", err)
			}
		})
	}
	st := eng.Stats()
	if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
		t.Errorf("engine stats unbalanced after chaos sweep: %+v", st)
	}
}
