package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"sudaf/internal/core"
	"sudaf/internal/errs"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// batchQueries is an overlapping trio: the first two share a data part
// (same fingerprint group → one fused scan), the third groups by a
// different key and scans on its own.
var batchQueries = []string{
	`SELECT s_state, avg(ss_list_price) FROM store_sales, store
		WHERE ss_store_sk = s_store_sk GROUP BY s_state ORDER BY s_state`,
	`SELECT s_state, stddev(ss_list_price), qm(ss_sales_price) FROM store_sales, store
		WHERE ss_store_sk = s_store_sk GROUP BY s_state ORDER BY s_state`,
	`SELECT ss_store_sk, sum(ss_sales_price) FROM store_sales
		GROUP BY ss_store_sk ORDER BY ss_store_sk`,
}

// TestBatchRoundTrip: a batch over the wire returns, per query, exactly
// what a fresh engine returns running the same queries sequentially —
// values bit-identical, end frames carrying per-query stats.
func TestBatchRoundTrip(t *testing.T) {
	eng := newEngine(t, 4000, core.Options{})
	ref := newEngine(t, 4000, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})

	results, err := c.QueryBatch(context.Background(), batchQueries, "share")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batchQueries) {
		t.Fatalf("results = %d, want %d", len(results), len(batchQueries))
	}
	for qi, res := range results {
		direct, err := ref.Query(batchQueries[qi], core.ModeShare)
		if err != nil {
			t.Fatal(err)
		}
		if res.End == nil {
			t.Fatalf("query %d missing end frame", qi)
		}
		if len(res.Rows) != direct.Table.NumRows() {
			t.Fatalf("query %d rows = %d, want %d", qi, len(res.Rows), direct.Table.NumRows())
		}
		for i := 0; i < direct.Table.NumRows(); i++ {
			for col := range direct.Table.Cols {
				dc := direct.Table.Cols[col]
				if res.Columns[col].Kind == "string" {
					if got, want := res.String(i, col), dc.StringAt(i); got != want {
						t.Errorf("query %d row %d col %d = %q, want %q", qi, i, col, got, want)
					}
					continue
				}
				got, want := res.Float(i, col), dc.AsFloat(i)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("query %d row %d col %d = %v, want bit-identical %v", qi, i, col, got, want)
				}
			}
		}
		if res.End.Groups != direct.Groups {
			t.Errorf("query %d groups = %d, want %d", qi, res.End.Groups, direct.Groups)
		}
	}
	// The batch's fused scan means the wire stats show fewer scanned rows
	// than three standalone scans would.
	total := 0
	for _, res := range results {
		total += res.End.Stats.RowsScanned
	}
	if total >= 3*4000 {
		t.Errorf("batch scanned %d rows, want fewer than 3 full scans", total)
	}
}

// TestBatchSmallFrames: tiny frames force interleaved multi-frame
// sub-streams and the query tags still demultiplex them correctly.
func TestBatchSmallFrames(t *testing.T) {
	eng := newEngine(t, 2000, core.Options{})
	srv := startServer(t, server.Config{Session: eng, BatchRows: 1})
	c := client.New(srv.Addr(), client.Options{})
	results, err := c.QueryBatch(context.Background(), batchQueries, "rewrite")
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Rows) != 4 || len(results[1].Rows) != 4 { // 4 distinct states
		t.Fatalf("rows = %d, %d; want 4 each", len(results[0].Rows), len(results[1].Rows))
	}
	if len(results[2].Rows) != 6 { // 6 stores
		t.Fatalf("query 2 rows = %d, want 6", len(results[2].Rows))
	}
}

// TestBatchErrors: malformed bodies are 400s, and one bad query fails
// the whole batch with its typed error (all-or-nothing contract).
func TestBatchErrors(t *testing.T) {
	eng := newEngine(t, 500, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	ctx := context.Background()
	c := client.New(srv.Addr(), client.Options{Retries: -1})

	if _, err := c.QueryBatch(ctx, nil, "share"); err == nil {
		t.Error("empty batch accepted")
	}
	_, err := c.QueryBatch(ctx, []string{
		batchQueries[0],
		"SELECT s_state, prod(ss_list_price) FROM store_sales, store WHERE ss_store_sk = s_store_sk GROUP BY s_state",
	}, "share")
	if !errors.Is(err, errs.ErrUnknownUDAF) {
		t.Errorf("err = %v, want ErrUnknownUDAF across the wire", err)
	}
	if _, err := c.QueryBatch(ctx, []string{"SELEC nope"}, "share"); !errors.Is(err, errs.ErrParse) {
		t.Errorf("err = %v, want ErrParse", err)
	}
	// Raw protocol check: unknown mode is a pre-execution bad_request.
	resp, err := http.Post("http://"+srv.Addr()+"/v1/batch", "application/json",
		strings.NewReader(`{"queries":["SELECT 1"],"mode":"turbo"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown mode status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchMetrics: the batch families count requests and member
// queries, and show up in a scrape.
func TestBatchMetrics(t *testing.T) {
	eng := newEngine(t, 500, core.Options{})
	srv := startServer(t, server.Config{Session: eng})
	c := client.New(srv.Addr(), client.Options{})
	if _, err := c.QueryBatch(context.Background(), batchQueries, "share"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sudaf_server_batch_requests_total", "sudaf_server_batch_queries_total",
		fmt.Sprintf("kind=%q", "batch"),
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("metrics scrape missing %s", want)
		}
	}
}
