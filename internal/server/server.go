// Package server is the resilient query-serving layer over a SUDAF
// engine session: an HTTP/JSON front-end with per-client sessions and
// prepared-statement handles, length-framed NDJSON streaming for query
// results, overload shedding, and a graceful drain that hands back to
// the engine's own Close contract.
//
// Resilience model, in one place:
//
//   - Admission: requests take a global slot (Config.MaxInflight);
//     excess requests queue up to Config.QueueDepth and anything beyond
//     that is shed immediately with a typed 429 — shed work has
//     provably not executed, so clients may always retry it.
//   - Sessions additionally bound their own concurrency
//     (Config.SessionConcurrency) without queueing: one chatty client
//     sheds at its own cap instead of starving the rest.
//   - Deadlines: the X-Sudaf-Deadline-Ms request header becomes a
//     context deadline that propagates through admission queueing into
//     the engine's scan/join/accumulate loops.
//   - Drain: Shutdown stops accepting work (typed 503), wakes every
//     queued waiter, finishes all in-flight requests (bounded by the
//     caller's context) and records the drain duration. The engine is
//     NOT closed — it belongs to the caller, and its state cache stays
//     warm for the next front-end.
//   - Chaos: the listener and connections route through the
//     faultinject net.* points, so torn connections, stalled streams
//     and flaky accepts are first-class, deterministic test inputs.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sudaf/internal/core"
	"sudaf/internal/errs"
	"sudaf/internal/faultinject"
	"sudaf/internal/obs"
)

// Config configures a Server. The zero value of every field picks a
// sane default; only Session is required.
type Config struct {
	// Session is the engine session served. Required.
	Session *core.Session

	// MaxInflight bounds requests executing at once (0 = 16).
	MaxInflight int
	// QueueDepth bounds requests waiting for a slot before the server
	// sheds with 429 (0 = 64).
	QueueDepth int
	// MaxSessions bounds open client sessions (0 = 64).
	MaxSessions int
	// SessionConcurrency bounds one session's concurrent requests;
	// requests over the cap shed immediately (0 = unbounded).
	SessionConcurrency int
	// MaxConns bounds open TCP connections; connections over the cap are
	// refused at accept (0 = unbounded).
	MaxConns int
	// MaxRequestBytes bounds a request body (0 = 8 MiB).
	MaxRequestBytes int64
	// BatchRows is the default rows per streamed batch frame (0 = the
	// engine's batch size).
	BatchRows int

	// Metrics is the registry the server families register into
	// (nil = the session's registry). MetricsLabel distinguishes several
	// servers sharing one registry.
	Metrics      *obs.Registry
	MetricsLabel string
}

// Server is one HTTP serving front-end over an engine session.
type Server struct {
	cfg      Config
	eng      *core.Session
	sessions *sessions
	httpSrv  *http.Server
	ln       net.Listener

	// inflight is the global slot semaphore; queued counts waiters.
	inflight  chan struct{}
	queued    atomic.Int64
	inflightN atomic.Int64

	// Drain state: the RWMutex makes {draining check, reqWG.Add} atomic
	// against Shutdown's flip, mirroring the engine's beginOp/Close pair.
	drainMu    sync.RWMutex
	draining   bool
	drainCh    chan struct{}
	reqWG      sync.WaitGroup
	shutStart  atomic.Int64
	drainNanos atomic.Int64

	// Metrics counters (reader-backed; see metrics.go).
	queryReqs       atomic.Int64
	appendReqs      atomic.Int64
	batchReqs       atomic.Int64
	batchQueries    atomic.Int64
	subscribeReqs   atomic.Int64
	subscribeEmits  atomic.Int64
	subscribeActive atomic.Int64
	shedQueue    atomic.Int64
	shedSession  atomic.Int64
	shedDraining atomic.Int64
	shedConns    atomic.Int64
	connsOpen    atomic.Int64
}

// New builds a server over cfg.Session. Call Start to begin serving.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("server: Config.Session is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = MaxFrameBytes
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Session,
		sessions: newSessions(cfg.MaxSessions, cfg.SessionConcurrency),
		inflight: make(chan struct{}, cfg.MaxInflight),
		drainCh:  make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = cfg.Session.Metrics()
	}
	s.registerMetrics(reg, cfg.MetricsLabel)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/session", s.handleSession)
	mux.HandleFunc("/v1/prepare", s.handlePrepare)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/append", s.handleAppend)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.Handle("/metrics", reg.Handler())
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// Start listens on addr (use "127.0.0.1:0" to pick a free port — the
// bound address is Addr) and serves in a background goroutine until
// Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = &chaosListener{Listener: ln, srv: s}
	go s.httpSrv.Serve(s.ln) //nolint:errcheck // ErrServerClosed on Shutdown
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully drains the server: new requests are rejected with
// a typed 503, queued admission waiters wake and shed, in-flight
// requests (including mid-stream queries) run to completion, and open
// sessions are then closed. Bounded by ctx: on expiry Shutdown returns
// the context error while stragglers keep honoring their own deadlines.
//
// Shutdown is idempotent and does NOT close the engine session — the
// engine outlives its front-ends, keeping the state cache warm.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.drainMu.Lock()
	first := !s.draining
	s.draining = true
	s.drainMu.Unlock()
	if first {
		s.shutStart.Store(time.Now().UnixNano())
		close(s.drainCh)
	}
	// Stop the listener and wait for connections; http.Shutdown returns
	// early with ctx's error if the drain outlives it.
	httpErr := s.httpSrv.Shutdown(ctx)
	// Belt and braces: also wait on our own request tracking, which
	// covers handlers even if their connection was hijacked or torn.
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server shutdown: drain incomplete: %w", ctx.Err())
	}
	if httpErr != nil {
		return fmt.Errorf("server shutdown: %w", httpErr)
	}
	s.drainNanos.CompareAndSwap(0, time.Now().UnixNano()-s.shutStart.Load())
	s.sessions.closeAll()
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// beginReq admits one request under the drain gate; the paired endReq
// must run when the handler returns.
func (s *Server) beginReq() error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.shedDraining.Add(1)
		return fmt.Errorf("%w: server draining", errs.ErrEngineClosed)
	}
	s.reqWG.Add(1)
	return nil
}

func (s *Server) endReq() { s.reqWG.Done() }

// acquireSlot takes a global execution slot, queueing up to QueueDepth
// waiters and shedding beyond that. A waiter resolves deterministically:
// slot, own context, or drain — never a hang.
func (s *Server) acquireSlot(ctx context.Context) error {
	select {
	case s.inflight <- struct{}{}:
		s.inflightN.Add(1)
		return nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shedQueue.Add(1)
		return fmt.Errorf("%w: admission queue full (%d waiting)", errs.ErrOverloaded, n-1)
	}
	defer s.queued.Add(-1)
	select {
	case s.inflight <- struct{}{}:
		s.inflightN.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: while queued for a server slot: %v", errs.ErrCanceled, ctx.Err())
	case <-s.drainCh:
		s.shedDraining.Add(1)
		return fmt.Errorf("%w: server drained while queued", errs.ErrEngineClosed)
	}
}

func (s *Server) releaseSlot() {
	<-s.inflight
	s.inflightN.Add(-1)
}

// requestContext derives the handler context: the client's
// X-Sudaf-Deadline-Ms header, when present, becomes a deadline that
// propagates through queueing into the engine.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if h := r.Header.Get("X-Sudaf-Deadline-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		}
	}
	return context.WithCancel(ctx)
}

// sessionID resolves the request's session id: the X-Sudaf-Session
// header wins over the body field.
func sessionID(r *http.Request, body string) string {
	if h := r.Header.Get("X-Sudaf-Session"); h != "" {
		return h
	}
	return body
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

// writeErrorCode reports a pre-streaming failure: HTTP status from the
// wire code, JSON ErrorBody so typed errors survive the trip.
func writeErrorCode(w http.ResponseWriter, code, msg string) {
	writeJSON(w, HTTPStatusForCode(code), ErrorBody{Code: code, Error: msg})
}

func writeError(w http.ResponseWriter, err error) {
	writeErrorCode(w, CodeForError(err), err.Error())
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		writeErrorCode(w, CodeBadRequest, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	return body, true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       status,
		SessionsOpen: int64(s.sessions.numOpen()),
		Inflight:     s.inflightN.Load(),
		Queued:       s.queued.Load(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if err := s.beginReq(); err != nil {
			writeError(w, err)
			return
		}
		defer s.endReq()
		ss, err := s.sessions.create()
		if err != nil {
			writeErrorCode(w, CodeOverloaded, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: ss.id})
	case http.MethodDelete:
		id := sessionID(r, r.URL.Query().Get("id"))
		if id == "" || !s.sessions.close(id) {
			writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"closed": id})
	default:
		writeErrorCode(w, CodeBadRequest, "use POST to open or DELETE to close")
	}
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, CodeBadRequest, "use POST")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodePrepareRequest(body)
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}
	if err := s.beginReq(); err != nil {
		writeError(w, err)
		return
	}
	defer s.endReq()
	ss, ok := s.sessions.get(sessionID(r, req.Session))
	if !ok {
		writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", sessionID(r, req.Session)))
		return
	}
	mode, _ := ModeFromString(req.Mode)
	handle, err := ss.prepare(req.SQL, mode)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errs.ErrParse, err))
		return
	}
	writeJSON(w, http.StatusOK, PrepareResponse{Handle: handle})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, CodeBadRequest, "use POST")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeQueryRequest(body)
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}

	sql, mode := req.SQL, core.ModeShare
	if req.SQL != "" {
		mode, _ = ModeFromString(req.Mode)
	}
	// Resolve the session (optional for plain SQL, required for
	// prepared handles — those live in a session's namespace).
	var ss *session
	if id := sessionID(r, req.Session); id != "" {
		ss, ok = s.sessions.get(id)
		if !ok {
			writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
	}
	if req.Prepared != "" {
		if ss == nil {
			writeErrorCode(w, CodeBadRequest, "prepared statements require a session")
			return
		}
		p, ok := ss.lookup(req.Prepared)
		if !ok {
			writeErrorCode(w, CodeUnknownPrepared, fmt.Sprintf("no prepared statement %q", req.Prepared))
			return
		}
		sql, mode = p.sql, p.mode
	}

	if err := s.beginReq(); err != nil {
		writeError(w, err)
		return
	}
	defer s.endReq()
	if ss != nil {
		if !ss.acquire() {
			s.shedSession.Add(1)
			writeError(w, fmt.Errorf("%w: session %s at its concurrency cap", errs.ErrOverloaded, ss.id))
			return
		}
		defer ss.release()
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	if err := s.acquireSlot(ctx); err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseSlot()
	s.queryReqs.Add(1)

	cur, err := s.eng.QueryBatches(ctx, sql, mode)
	if err != nil {
		// Nothing streamed yet: report over HTTP status + typed body so
		// the client never confuses an engine error with a torn stream.
		writeError(w, err)
		return
	}
	defer cur.Close()
	if n := req.BatchRows; n > 0 {
		cur = cur.Result().Batches(n)
	} else if s.cfg.BatchRows > 0 {
		cur = cur.Result().Batches(s.cfg.BatchRows)
	}
	s.streamResult(w, cur)
}

// startStream begins an NDJSON response and returns the frame emitter.
// Every frame passes the net.stall fault point first — an injected
// error truncates the stream mid-flight (the client detects the tear
// via length framing), a delay stalls it.
func startStream(w http.ResponseWriter) func(*Frame) bool {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	return func(f *Frame) bool {
		if err := hitNet(faultinject.PointNetStall); err != nil {
			return false // torn stream: stop without the end frame
		}
		if err := WriteFrame(w, f); err != nil {
			return false // client went away
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
}

// streamResult writes the framed response: schema, batches, end.
func (s *Server) streamResult(w http.ResponseWriter, cur *core.BatchCursor) {
	emit := startStream(w)
	if !emit(SchemaFrame(cur.Result().Table)) {
		return
	}
	for cur.Next() {
		if !emit(BatchFrame(cur.Batch())) {
			return
		}
	}
	if err := cur.Err(); err != nil {
		emit(ErrorFrame(err))
		return
	}
	emit(EndFrame(cur.Result()))
}

// handleBatch runs one multi-query batch through Engine.QueryBatch: the
// whole batch occupies a single execution slot (its internal fan-out is
// the engine's to schedule), and the response is each query's
// schema/batch/end sub-stream in batch order, every frame tagged with
// its query index. QueryBatch is all-results-or-one-error, so a failed
// batch reports one typed error for the lot — over HTTP status when
// nothing streamed yet, as a single error frame otherwise.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, CodeBadRequest, "use POST")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeBatchRequest(body)
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}
	mode, _ := ModeFromString(req.Mode)
	var ss *session
	if id := sessionID(r, req.Session); id != "" {
		ss, ok = s.sessions.get(id)
		if !ok {
			writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
	}

	if err := s.beginReq(); err != nil {
		writeError(w, err)
		return
	}
	defer s.endReq()
	if ss != nil {
		if !ss.acquire() {
			s.shedSession.Add(1)
			writeError(w, fmt.Errorf("%w: session %s at its concurrency cap", errs.ErrOverloaded, ss.id))
			return
		}
		defer ss.release()
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	if err := s.acquireSlot(ctx); err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseSlot()
	s.batchReqs.Add(1)
	s.batchQueries.Add(int64(len(req.Queries)))

	reqs := make([]core.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = core.Request{SQL: q, Mode: mode}
	}
	results, err := s.eng.QueryBatch(ctx, reqs, mode)
	if err != nil {
		writeError(w, err)
		return
	}
	rows := req.BatchRows
	if rows == 0 {
		rows = s.cfg.BatchRows
	}
	emit := startStream(w)
	for qi, res := range results {
		tag := func(f *Frame) *Frame { f.Query = qi; return f }
		if !emit(tag(SchemaFrame(res.Table))) {
			return
		}
		cur := res.Batches(rows)
		for cur.Next() {
			if !emit(tag(BatchFrame(cur.Batch()))) {
				return
			}
		}
		if !emit(tag(EndFrame(res))) {
			return
		}
	}
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, CodeBadRequest, "use POST")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeAppendRequest(body)
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}
	var ss *session
	if id := sessionID(r, req.Session); id != "" {
		ss, ok = s.sessions.get(id)
		if !ok {
			writeErrorCode(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
	}
	if err := s.beginReq(); err != nil {
		writeError(w, err)
		return
	}
	defer s.endReq()
	if ss != nil {
		if !ss.acquire() {
			s.shedSession.Add(1)
			writeError(w, fmt.Errorf("%w: session %s at its concurrency cap", errs.ErrOverloaded, ss.id))
			return
		}
		defer ss.release()
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	if err := s.acquireSlot(ctx); err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseSlot()
	s.appendReqs.Add(1)

	delta, err := req.ToTable()
	if err != nil {
		writeErrorCode(w, CodeBadRequest, err.Error())
		return
	}
	res, err := s.eng.Append(ctx, req.Table, delta)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Table:              res.Table,
		RowsAppended:       res.RowsAppended,
		OldEpoch:           res.OldEpoch,
		NewEpoch:           res.NewEpoch,
		EntriesMigrated:    res.EntriesMigrated,
		StatesMaintained:   res.StatesMaintained,
		EntriesInvalidated: res.EntriesInvalidated,
		ViewsMaintained:    res.ViewsMaintained,
		ViewsInvalidated:   res.ViewsInvalidated,
		Events:             res.Events,
	})
}
