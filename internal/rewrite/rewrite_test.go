package rewrite

import (
	"strings"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
)

// info builds a DataInfo by hand.
func info(tables []string, joins []string, filters map[string][]string, groupBy []string) *exec.DataInfo {
	di := &exec.DataInfo{
		Tables:  tables,
		Joins:   joins,
		Filters: filters,
		Preds:   map[string][]sqlparse.Pred{},
		GroupBy: groupBy,
	}
	for t, fs := range filters {
		for _, f := range fs {
			// Reconstruct a minimal predicate carrying the string form.
			di.Preds[t] = append(di.Preds[t], reparse(f))
		}
	}
	return di
}

// reparse turns a normalized predicate string back into a Pred via a
// throwaway statement.
func reparse(p string) sqlparse.Pred {
	stmt, err := sqlparse.Parse("SELECT a FROM t WHERE " + p)
	if err != nil {
		panic(p + ": " + err.Error())
	}
	return stmt.Where
}

func st(op canonical.AggOp, col string) canonical.State {
	if op == canonical.OpCount {
		return canonical.State{Op: op, Base: &expr.Num{Val: 1}}
	}
	return canonical.State{Op: op, F: scalar.IdentityChain(), Base: &expr.Var{Name: col}}
}

// testView is the V1 of the paper: grouped by (ss_item_sk, d_year) over
// store_sales ⋈ store ⋈ date_dim with the TN filter.
func testView() *View {
	states := []canonical.State{
		st(canonical.OpCount, ""),
		st(canonical.OpSum, "ss_list_price"),
	}
	cols := map[string]string{}
	for i, s := range states {
		cols[s.Key()] = "s" + string(rune('1'+i))
	}
	return &View{
		Name: "v1",
		Info: &exec.DataInfo{
			Tables: []string{"date_dim", "store", "store_sales"},
			Joins: []string{
				"date_dim.d_date_sk=store_sales.ss_sold_date_sk",
				"store.s_store_sk=store_sales.ss_store_sk",
			},
			Filters: map[string][]string{"store": {"s_state='TN'"}},
			GroupBy: []string{"ss_item_sk", "d_year"},
		},
		States:    states,
		StateCols: cols,
	}
}

// ownerFor maps the test schema's columns to tables.
func ownerFor(col string) string {
	switch {
	case strings.HasPrefix(col, "ss_"):
		return "store_sales"
	case strings.HasPrefix(col, "s_"):
		return "store"
	case strings.HasPrefix(col, "d_"):
		return "date_dim"
	case strings.HasPrefix(col, "i_"):
		return "item"
	}
	return ""
}

func q3Info() *exec.DataInfo {
	return info(
		[]string{"date_dim", "item", "store", "store_sales"},
		[]string{
			"date_dim.d_date_sk=store_sales.ss_sold_date_sk",
			"item.i_item_sk=store_sales.ss_item_sk",
			"store.s_store_sk=store_sales.ss_store_sk",
		},
		map[string][]string{
			"store":    {"s_state='TN'"},
			"item":     {"i_category='Sports'"},
			"date_dim": {"d_year>=2000"},
		},
		[]string{"d_year"},
	)
}

func TestRollupQ3(t *testing.T) {
	v := testView()
	states := []canonical.State{st(canonical.OpCount, ""), st(canonical.OpSum, "ss_list_price")}
	r, reason := TryRollup(q3Info(), states, v, ownerFor)
	if r == nil {
		t.Fatalf("rollup rejected: %s", reason)
	}
	// FROM must be view + item.
	if len(r.Stmt.From) != 2 || r.Stmt.From[0].Name != "v1" || r.Stmt.From[1].Name != "item" {
		t.Fatalf("FROM: %+v", r.Stmt.From)
	}
	if len(r.Stmt.GroupBy) != 1 || r.Stmt.GroupBy[0] != "d_year" {
		t.Fatalf("GROUP BY: %v", r.Stmt.GroupBy)
	}
	// Where must include the item join and the two extra filters.
	ws := sqlparse.PredString(r.Stmt.Where)
	for _, want := range []string{"i_item_sk", "i_category", "d_year"} {
		if !strings.Contains(ws, want) {
			t.Errorf("WHERE %q missing %s", ws, want)
		}
	}
	if len(r.StateCol) != 2 {
		t.Errorf("StateCol: %v", r.StateCol)
	}
}

func TestRollupRejections(t *testing.T) {
	v := testView()
	okStates := []canonical.State{st(canonical.OpSum, "ss_list_price")}

	// Missing view table in the query.
	q := q3Info()
	q.Tables = []string{"item", "store_sales"}
	if r, _ := TryRollup(q, okStates, v, ownerFor); r != nil {
		t.Error("should reject when view tables missing")
	}

	// Query lacks the view's filter.
	q = q3Info()
	q.Filters["store"] = nil
	q.Preds["store"] = nil
	if r, _ := TryRollup(q, okStates, v, ownerFor); r != nil {
		t.Error("should reject when view filter absent")
	}

	// Extra filter on a non-grouped view column.
	q = q3Info()
	q.Filters["store_sales"] = []string{"ss_quantity>5"}
	q.Preds["store_sales"] = []sqlparse.Pred{reparse("ss_quantity>5")}
	if r, _ := TryRollup(q, okStates, v, ownerFor); r != nil {
		t.Error("should reject filter on non-grouped view column")
	}

	// Group-by below the view's granularity.
	q = q3Info()
	q.GroupBy = []string{"ss_store_sk"}
	if r, _ := TryRollup(q, okStates, v, ownerFor); r != nil {
		t.Error("should reject finer grouping")
	}

	// State not in the view.
	q = q3Info()
	missing := []canonical.State{st(canonical.OpSum, "ss_sales_price")}
	if r, _ := TryRollup(q, missing, v, ownerFor); r != nil {
		t.Error("should reject missing state")
	}
}

func TestRollupState(t *testing.T) {
	cnt := st(canonical.OpCount, "")
	rolled := RollupState(cnt, "s1")
	if rolled.Op != canonical.OpSum {
		t.Errorf("count must roll up by summation, got %v", rolled.Op)
	}
	mn := st(canonical.OpMin, "x")
	rolled = RollupState(mn, "s2")
	if rolled.Op != canonical.OpMin {
		t.Errorf("min must stay min, got %v", rolled.Op)
	}
	if v, ok := rolled.Base.(*expr.Var); !ok || v.Name != "s2" {
		t.Errorf("base: %v", rolled.Base)
	}
}

func TestSplitHelpers(t *testing.T) {
	l, r, ok := splitJoin("a.x=b.y")
	if !ok || l != "a.x" || r != "b.y" {
		t.Errorf("splitJoin: %q %q %v", l, r, ok)
	}
	if _, _, ok := splitJoin("nojoin"); ok {
		t.Error("malformed join should fail")
	}
	tb, col := splitQualified("t.c")
	if tb != "t" || col != "c" {
		t.Errorf("splitQualified: %q %q", tb, col)
	}
	tb, col = splitQualified("bare")
	if tb != "" || col != "bare" {
		t.Errorf("splitQualified bare: %q %q", tb, col)
	}
}
