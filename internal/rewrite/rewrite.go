// Package rewrite implements aggregate-view rewriting over SUDAF state
// views (Section 2 of the paper, queries Q3 → RQ3'): because SUDAF
// rewrites UDAFs into sum/count-style aggregation states, a materialized
// view holding grouped states can answer a new query by *rolling up* the
// states — joining extra dimension tables, applying extra predicates on
// view output columns, and re-aggregating to a coarser grouping. This is
// the classic rewriting of Cohen, Nutt & Serebrenik restricted to the
// state algebra (sum/count roll up by Σ, min/max by min/max, Π by ×).
package rewrite

import (
	"fmt"
	"strings"

	"sudaf/internal/canonical"
	"sudaf/internal/exec"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/sqlparse"
	"sudaf/internal/storage"
)

// View is a materialized state view: the stored group table plus the
// normalized description of the query that produced it.
type View struct {
	Name  string
	Table *storage.Table // group-by columns + one float column per state
	Info  *exec.DataInfo
	// States lists the cached states; StateCols maps state key → column.
	States    []canonical.State
	StateCols map[string]string
}

// Rollup describes how to answer a query from a view: the rewritten
// data part (FROM view + extra tables) and, per requested state, the
// view column to re-aggregate.
type Rollup struct {
	View *View
	// Stmt is the rewritten statement's data part (no select list):
	// FROM view, extra tables; WHERE extra joins/filters; GROUP BY.
	Stmt *sqlparse.Stmt
	// StateCol maps a requested state key to its view column.
	StateCol map[string]string
}

// TryRollup decides whether the query described by q, needing the given
// states, can be answered from view v, and constructs the roll-up plan.
// colOwner resolves a column name to its base table. It returns
// (nil, reason) when rewriting is not possible.
func TryRollup(q *exec.DataInfo, states []canonical.State, v *View, colOwner func(string) string) (*Rollup, string) {
	// 1. The view's tables must all appear in the query.
	qTables := map[string]bool{}
	for _, t := range q.Tables {
		qTables[t] = true
	}
	for _, t := range v.Info.Tables {
		if !qTables[t] {
			return nil, fmt.Sprintf("query lacks view table %s", t)
		}
	}
	vTables := map[string]bool{}
	for _, t := range v.Info.Tables {
		vTables[t] = true
	}
	var extraTables []string
	for _, t := range q.Tables {
		if !vTables[t] {
			extraTables = append(extraTables, t)
		}
	}

	// 2. Every view join and filter must appear in the query (the view's
	// data is a superset restriction the query also applies).
	qJoins := map[string]bool{}
	for _, j := range q.Joins {
		qJoins[j] = true
	}
	for _, j := range v.Info.Joins {
		if !qJoins[j] {
			return nil, fmt.Sprintf("query lacks view join %s", j)
		}
		delete(qJoins, j)
	}
	for t, fs := range v.Info.Filters {
		qf := map[string]bool{}
		for _, f := range q.Filters[t] {
			qf[f] = true
		}
		for _, f := range fs {
			if !qf[f] {
				return nil, fmt.Sprintf("query lacks view filter %s", f)
			}
		}
	}

	// Columns available after the roll-up scan: the view's group-by
	// columns plus every column of the extra tables.
	avail := map[string]bool{}
	for _, g := range v.Info.GroupBy {
		avail[g] = true
	}

	// 3. Remaining query joins must connect through available columns.
	var extraJoins []sqlparse.Pred
	for j := range qJoins {
		l, r, ok := splitJoin(j)
		if !ok {
			return nil, fmt.Sprintf("malformed join %s", j)
		}
		lT, lC := splitQualified(l)
		rT, rC := splitQualified(r)
		lOK := !vTables[lT] || avail[lC]
		rOK := !vTables[rT] || avail[rC]
		if !lOK || !rOK {
			return nil, fmt.Sprintf("join %s needs a non-grouped view column", j)
		}
		extraJoins = append(extraJoins, &sqlparse.Cmp{
			Op: "=",
			L:  sqlparse.Operand{Col: lC, IsCol: true},
			R:  sqlparse.Operand{Col: rC, IsCol: true},
		})
	}

	// 4. Extra query filters must touch only available columns.
	var extraFilters []sqlparse.Pred
	for t, preds := range q.Preds {
		vf := map[string]bool{}
		for _, f := range v.Info.Filters[t] {
			vf[f] = true
		}
		for i, p := range preds {
			if vf[q.Filters[t][i]] {
				continue // already enforced by the view
			}
			if vTables[t] {
				cols := map[string]bool{}
				sqlparse.PredColumns(p, cols)
				for c := range cols {
					if !avail[c] {
						return nil, fmt.Sprintf("filter %s needs non-grouped view column %s", q.Filters[t][i], c)
					}
				}
			}
			extraFilters = append(extraFilters, p)
		}
	}

	// 5. Query grouping must be at or above the view's granularity:
	// each group-by column is either a view group column or lives in an
	// extra table (joined 1:1 per view group through the extra joins).
	for _, g := range q.GroupBy {
		if avail[g] {
			continue
		}
		if vTables[colOwner(g)] {
			return nil, fmt.Sprintf("group-by column %s not in view grouping", g)
		}
	}

	// 6. Every requested state must be stored and roll-uppable.
	stateCol := map[string]string{}
	for _, st := range states {
		col, ok := v.StateCols[st.Key()]
		if !ok {
			return nil, fmt.Sprintf("view lacks state %s", st.Key())
		}
		switch st.Op {
		case canonical.OpSum, canonical.OpCount, canonical.OpMin, canonical.OpMax, canonical.OpProd:
			stateCol[st.Key()] = col
		default:
			return nil, fmt.Sprintf("state %s is not distributive", st.Key())
		}
	}

	// Assemble the rewritten data part.
	stmt := &sqlparse.Stmt{Limit: -1}
	stmt.From = append(stmt.From, sqlparse.TableRef{Name: v.Name})
	for _, t := range extraTables {
		stmt.From = append(stmt.From, sqlparse.TableRef{Name: t})
	}
	for _, p := range append(extraJoins, extraFilters...) {
		if stmt.Where == nil {
			stmt.Where = p
		} else {
			stmt.Where = &sqlparse.And{L: stmt.Where, R: p}
		}
	}
	stmt.GroupBy = append(stmt.GroupBy, q.GroupBy...)
	return &Rollup{View: v, Stmt: stmt, StateCol: stateCol}, ""
}

// RollupState converts a requested state into the state to compute over
// the view table: count partials roll up by summation, everything else
// keeps its merge operation over the stored column.
func RollupState(st canonical.State, viewCol string) canonical.State {
	op := st.Op
	if op == canonical.OpCount {
		op = canonical.OpSum
	}
	return canonical.State{
		Op:   op,
		F:    scalar.IdentityChain(),
		Base: &expr.Var{Name: viewCol},
	}
}

// splitJoin parses a normalized join string "t1.c1=t2.c2".
func splitJoin(j string) (string, string, bool) {
	i := strings.IndexByte(j, '=')
	if i < 0 {
		return "", "", false
	}
	return j[:i], j[i+1:], true
}

// splitQualified splits "table.column".
func splitQualified(q string) (table, col string) {
	if i := strings.LastIndexByte(q, '.'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return "", q
}
