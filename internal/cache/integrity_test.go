package cache

import (
	"errors"
	"strings"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/faultinject"
	"sudaf/internal/scalar"
)

func TestChecksumVals(t *testing.T) {
	a := ChecksumVals([]float64{1, 2, 3})
	b := ChecksumVals([]float64{1, 2, 3})
	c := ChecksumVals([]float64{1, 2, 3.0000001})
	if a != b {
		t.Error("checksum must be deterministic")
	}
	if a == c {
		t.Error("checksum must detect a changed value")
	}
	if ChecksumVals(nil) != ChecksumVals([]float64{}) {
		t.Error("empty and nil should agree")
	}
}

func TestCorruptionDetectedOnLookup(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp", 3)
	s := st(canonical.OpSum, "x", scalar.PowerP(2))
	if err := gt.AddState(&CachedState{State: s, Vals: []float64{1, 4, 9}, PositiveInput: true}); err != nil {
		t.Fatal(err)
	}
	c.Put(gt)

	// Sanity: intact state hits.
	if _, ok := c.Lookup("fp", s, true); !ok {
		t.Fatal("intact state should hit")
	}

	if n := c.CorruptEntryForTest("fp"); n != 1 {
		t.Fatalf("CorruptEntryForTest = %d, want 1", n)
	}
	// The corrupt state must be dropped: lookup misses, never serves bad data.
	if vals, ok := c.Lookup("fp", s, true); ok {
		t.Fatalf("corrupt state served: %v", vals)
	}
	if got := c.Stats().Corruptions; got != 1 {
		t.Errorf("Corruptions = %d, want 1", got)
	}
	evs := c.DrainEvents()
	if len(evs) == 0 || !strings.Contains(evs[0], "integrity") {
		t.Errorf("expected an integrity degradation event, got %v", evs)
	}
	if len(c.DrainEvents()) != 0 {
		t.Error("DrainEvents should clear the queue")
	}
	// Subsequent lookups stay clean misses, not repeated corruption noise.
	if _, ok := c.Lookup("fp", s, true); ok {
		t.Fatal("dropped state resurrected")
	}
	if got := c.Stats().Corruptions; got != 1 {
		t.Errorf("corruption double-counted: %d", got)
	}
}

func TestCorruptionSparesHealthyStates(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp", 2)
	s1 := st(canonical.OpSum, "x")
	_ = gt.AddState(&CachedState{State: s1, Vals: []float64{1, 2}, PositiveInput: true})
	c.Put(gt)
	_ = c.CorruptEntryForTest("fp")

	// Add a fresh, healthy state under the same fingerprint.
	gt2 := mkGT("fp", 2)
	s2 := st(canonical.OpSum, "x", scalar.PowerP(2))
	_ = gt2.AddState(&CachedState{State: s2, Vals: []float64{1, 4}, PositiveInput: true})
	c.Put(gt2)

	if _, ok := c.Lookup("fp", s2, true); !ok {
		t.Error("healthy state should survive the corrupt sibling's removal")
	}
	if _, ok := c.Lookup("fp", s1, true); ok {
		t.Error("corrupt state should be gone")
	}
}

func TestInjectedCacheFaultIsMiss(t *testing.T) {
	defer faultinject.Reset()
	c := New(0, nil)
	gt := mkGT("fp", 2)
	s := st(canonical.OpSum, "x")
	_ = gt.AddState(&CachedState{State: s, Vals: []float64{1, 2}, PositiveInput: true})
	c.Put(gt)

	faultinject.Arm(faultinject.PointCacheGet, faultinject.Spec{Kind: faultinject.KindError})
	if _, ok := c.Lookup("fp", s, true); ok {
		t.Fatal("injected cache fault must read as a miss")
	}
	evs := c.DrainEvents()
	if len(evs) == 0 || !strings.Contains(evs[0], "injected") {
		t.Errorf("expected injected-fault event, got %v", evs)
	}

	faultinject.Reset()
	if _, ok := c.Lookup("fp", s, true); !ok {
		t.Fatal("cache should serve normally once the fault clears")
	}
}

func TestInjectedCacheErrorSentinel(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.PointCacheGet, faultinject.Spec{Kind: faultinject.KindError})
	if err := faultinject.Hit(faultinject.PointCacheGet); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sentinel lost: %v", err)
	}
}
