package cache

// Randomized concurrency property tests for the striped cache. The
// properties checked:
//
//   - byte accounting never goes negative and matches entry sizes at
//     quiescence, even under eviction pressure;
//   - checksum integrity: a corrupted state is never served as an exact
//     hit — lookups return either the deterministic expected values or
//     nothing;
//   - no stats increments are lost: every LookupKind call lands in
//     exactly one outcome counter.
//
// Values are made deterministic per (fingerprint, state, group) so that
// any exact hit can be verified against the closed form, regardless of
// which goroutine populated the entry. The exact-check fingerprints use
// states with pairwise-distinct bases so no sharing rewriting can relate
// them (a derived state would have values the closed form doesn't
// predict); sharing is exercised on a disjoint fingerprint pool with
// mathematically consistent values checked under tolerance.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/scalar"
	"sudaf/internal/symbolic"
)

// exactVal is the closed form for values in the exact-check pool.
func exactVal(fpIdx, stIdx, group int) float64 {
	return float64((fpIdx+1)*1000 + stIdx*10 + group)
}

// exactState returns state stIdx over its own private base column, so
// states never share with each other.
func exactState(stIdx int) canonical.State {
	return st(canonical.OpSum, fmt.Sprintf("x%d", stIdx))
}

func putExact(c *Cache, fpIdx, nStates int) {
	fp := fmt.Sprintf("fp%d", fpIdx)
	gt := mkGT(fp, 8)
	for j := 0; j < nStates; j++ {
		vals := make([]float64, 8)
		for g := range vals {
			vals[g] = exactVal(fpIdx, j, g)
		}
		_ = gt.AddState(&CachedState{State: exactState(j), Vals: vals})
	}
	c.Put(gt)
}

// The sharing pool caches Σ ln x with vals ln(g+1); a lookup for Π x is
// served by the exp rewriting, so any hit must be ≈ g+1.
func putShared(c *Cache, fpIdx int) {
	fp := fmt.Sprintf("sh%d", fpIdx)
	gt := mkGT(fp, 8)
	vals := make([]float64, 8)
	for g := range vals {
		vals[g] = math.Log(float64(g + 1))
	}
	_ = gt.AddState(&CachedState{
		State:         st(canonical.OpSum, "x", scalar.LogP(scalar.E)),
		Vals:          vals,
		PositiveInput: true,
	})
	c.Put(gt)
}

func TestConcurrentCacheProperty(t *testing.T) {
	space := symbolic.NewSpace(2)
	// Small budget: with ~20 fingerprints of ~1.2 KiB spread over 8
	// shards, eviction churns constantly.
	c := NewSharded(64*1024, 8, space)

	const goroutines = 8
	const opsPerG = 400
	const nFPs = 16
	const nStates = 4
	var lookupsIssued atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			for op := 0; op < opsPerG; op++ {
				switch rng.Intn(10) {
				case 0, 1:
					putExact(c, rng.Intn(nFPs), 1+rng.Intn(nStates))
				case 2, 3, 4:
					fpIdx, stIdx := rng.Intn(nFPs), rng.Intn(nStates)
					fp := fmt.Sprintf("fp%d", fpIdx)
					lookupsIssued.Add(1)
					vals, kind, ok := c.LookupKind(fp, exactState(stIdx), false)
					if !ok {
						continue
					}
					if kind != HitExact {
						errCh <- fmt.Errorf("exact pool served a %v hit", kind)
						return
					}
					for g, v := range vals {
						if v != exactVal(fpIdx, stIdx, g) {
							errCh <- fmt.Errorf("%s state %d group %d: got %v, want %v (corrupt value served?)",
								fp, stIdx, g, v, exactVal(fpIdx, stIdx, g))
							return
						}
					}
				case 5:
					// Entry reads: the key structure is immutable after
					// construction, so these are safe concurrent reads.
					if gt, ok := c.Entry(fmt.Sprintf("fp%d", rng.Intn(nFPs))); ok {
						if gt.NumGroups() != 8 {
							errCh <- fmt.Errorf("entry has %d groups, want 8", gt.NumGroups())
							return
						}
					}
				case 6:
					putShared(c, rng.Intn(4))
				case 7:
					fp := fmt.Sprintf("sh%d", rng.Intn(4))
					lookupsIssued.Add(1)
					vals, _, ok := c.LookupKind(fp, st(canonical.OpProd, "x"), true)
					if !ok {
						continue
					}
					for g, v := range vals {
						if math.Abs(v-float64(g+1)) > 1e-9 {
							errCh <- fmt.Errorf("%s Πx group %d: got %v, want ≈%d", fp, g, v, g+1)
							return
						}
					}
				case 8:
					// Corruption chaos: checksums must keep corrupt values
					// from ever being served (checked by the exact lookups).
					if rng.Intn(8) == 0 {
						c.CorruptEntryForTest(fmt.Sprintf("fp%d", rng.Intn(nFPs)))
					}
					_ = c.DrainEvents()
				case 9:
					s := c.Stats()
					if s.Lookups < 0 || s.Evictions < 0 {
						errCh <- fmt.Errorf("negative counters: %+v", s)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiescent invariants: structural integrity, byte accounting, LRU
	// bookkeeping and counter balance (CheckInvariants verifies
	// Lookups == Exact+Shared+Sign+Misses).
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// No lost increments: the cache saw exactly the lookups we issued.
	// (Shared hits materialize derived states internally without touching
	// the lookup counter, so this is an equality, not a lower bound.)
	if got := c.Stats().Lookups; got != lookupsIssued.Load() {
		t.Fatalf("cache counted %d lookups, test issued %d", got, lookupsIssued.Load())
	}
}

// TestConcurrentResetStats pins that ResetStats racing with traffic
// leaves counters consistent once traffic stops: counters never go
// negative and the quiescent balance invariant holds.
func TestConcurrentResetStats(t *testing.T) {
	space := symbolic.NewSpace(2)
	c := NewSharded(1<<20, 4, space)
	putExact(c, 0, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.ResetStats()
			}
		}
	}()
	for i := 0; i < 500; i++ {
		c.LookupKind("fp0", exactState(i%2), false)
		if s := c.Stats(); s.Lookups < 0 || s.ExactHits < 0 || s.Misses < 0 {
			t.Fatalf("negative counters under concurrent reset: %+v", s)
		}
	}
	close(stop)
	wg.Wait()
	c.ResetStats()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutSameFingerprint hammers one fingerprint from many
// goroutines (the merge-into-existing-entry path) and checks the entry
// ends structurally sound with correct byte accounting.
func TestConcurrentPutSameFingerprint(t *testing.T) {
	space := symbolic.NewSpace(2)
	c := NewSharded(1<<20, 4, space)
	var wg sync.WaitGroup
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				putExact(c, 3, 1+(gi+i)%4)
			}
		}(gi)
	}
	wg.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	gt, ok := c.Entry("fp3")
	if !ok {
		t.Fatal("entry evicted from an empty cache")
	}
	for j := 0; j < 4; j++ {
		if vals, _, ok := c.LookupKind("fp3", exactState(j), false); ok {
			for g, v := range vals {
				if v != exactVal(3, j, g) {
					t.Fatalf("state %d group %d: got %v, want %v", j, g, v, exactVal(3, j, g))
				}
			}
		}
	}
	if gt.NumGroups() != 8 {
		t.Fatalf("merged entry has %d groups, want 8", gt.NumGroups())
	}
}
