package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/storage"
)

// TestQuickAlignRoundTrip: for any permutation of group keys, Align
// restores value/key correspondence.
func TestQuickAlignRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]GroupKey, n)
		vals := make([]float64, n)
		kc := storage.NewColumn("g", storage.KindInt)
		for i := 0; i < n; i++ {
			keys[i] = GroupKey{int64(i) * 7, int64(i) % 3}
			vals[i] = float64(i) * 1.5
			kc.AppendInt(int64(i))
		}
		gt := NewGroupTable("fp", []string{"g"}, keys, []*storage.Column{kc})
		// Shuffle (keys, vals) jointly; Align must invert the shuffle.
		perm := rng.Perm(n)
		shKeys := make([]GroupKey, n)
		shVals := make([]float64, n)
		for i, p := range perm {
			shKeys[i] = keys[p]
			shVals[i] = vals[p]
		}
		aligned, ok := gt.Align(shKeys, shVals)
		if !ok {
			return false
		}
		for i := range aligned {
			if aligned[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlignRejectsForeignKeys: aligning values keyed by a different
// group set must fail rather than silently misattribute.
func TestQuickAlignRejectsForeignKeys(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		keys := make([]GroupKey, n)
		kc := storage.NewColumn("g", storage.KindInt)
		for i := 0; i < n; i++ {
			keys[i] = GroupKey{int64(i), 0}
			kc.AppendInt(int64(i))
		}
		gt := NewGroupTable("fp", []string{"g"}, keys, []*storage.Column{kc})
		foreign := make([]GroupKey, n)
		copy(foreign, keys)
		foreign[n-1] = GroupKey{9999, 9999}
		_, ok := gt.Align(foreign, make([]float64, n))
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLookupNeverLies: whatever state is requested, a successful
// lookup must return values consistent with directly evaluating the
// state over synthetic per-group multisets.
func TestQuickLookupNeverLies(t *testing.T) {
	exps := []float64{1, 2, 3}
	f := func(seed int64, e1Raw, e2Raw uint8) bool {
		e1 := exps[int(e1Raw)%len(exps)]
		e2 := exps[int(e2Raw)%len(exps)]
		rng := rand.New(rand.NewSource(seed))
		const groups = 5
		// Per-group random positive multisets.
		data := make([][]float64, groups)
		for g := range data {
			m := make([]float64, 3+rng.Intn(4))
			for i := range m {
				m[i] = 0.5 + rng.Float64()*3
			}
			data[g] = m
		}
		evalState := func(exp float64) []float64 {
			out := make([]float64, groups)
			for g, m := range data {
				acc := 0.0
				for _, x := range m {
					v := x
					for k := 1; k < int(exp); k++ {
						v *= x
					}
					acc += v
				}
				out[g] = acc
			}
			return out
		}
		st1 := canonical.State{Op: canonical.OpSum, F: scalar.NewChain(scalar.PowerP(e1)), Base: &expr.Var{Name: "x"}}
		st2 := canonical.State{Op: canonical.OpSum, F: scalar.NewChain(scalar.PowerP(e2)), Base: &expr.Var{Name: "x"}}

		c := New(0, nil)
		keys := make([]GroupKey, groups)
		kc := storage.NewColumn("g", storage.KindInt)
		for g := 0; g < groups; g++ {
			keys[g] = GroupKey{int64(g), 0}
			kc.AppendInt(int64(g))
		}
		gt := NewGroupTable("fp", []string{"g"}, keys, []*storage.Column{kc})
		if err := gt.AddState(&CachedState{State: st2, Vals: evalState(e2), PositiveInput: true}); err != nil {
			return false
		}
		c.Put(gt)
		got, ok := c.Lookup("fp", st1, true)
		want := evalState(e1)
		if !ok {
			// A miss is always safe; it only happens when e1 ≠ e2.
			return e1 != e2
		}
		for g := range want {
			diff := got[g] - want[g]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*(1+want[g]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
