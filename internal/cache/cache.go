// Package cache implements SUDAF's dynamic aggregation-state cache
// (Sections 3.2 and 5 of the paper). The cache is keyed on the *data
// fingerprint* of a query's data part (tables, join conditions,
// predicates, grouping) — the paper's data dimension — and stores, per
// fingerprint, a group table: the group keys plus one value vector per
// cached aggregation state (the computation dimension).
//
// Lookups first try exact state-key matches, then the sharing machinery:
// the precomputed symbolic space answers "does the requested state share
// a cached one?" in O(1) per candidate, with the direct (verified)
// decision procedure as the authority. Rewriting functions are applied
// per group, so a hit costs O(#groups) instead of a base-data scan — the
// source of the paper's two-orders-of-magnitude speedups.
//
// Section 5.3's sign handling is supported through companion states: a
// product or log state over data that is not provably positive is cached
// as the pair (Σ ln|b|, Π sgn(b)), from which Π b and the log family are
// reconstructed.
package cache

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/scalar"
	"sudaf/internal/sharing"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

// GroupKey mirrors exec.GroupKey (composite int64 group key).
type GroupKey = [2]int64

// CachedState is one aggregation state's per-group values.
type CachedState struct {
	State canonical.State
	Vals  []float64
	// PositiveInput records whether every base value folded into this
	// state was > 0 (enables the positive-domain sharing cases).
	PositiveInput bool
	// checksum is the integrity checksum over Vals, set by AddState. A
	// mismatch on lookup marks the state corrupted: it is dropped and the
	// query recomputes from base data instead of failing.
	checksum uint64
}

// ChecksumVals computes the FNV-1a integrity checksum of a value vector.
func ChecksumVals(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// verify reports whether the state's values still match their checksum.
func (cs *CachedState) verify() bool { return ChecksumVals(cs.Vals) == cs.checksum }

// GroupTable is the cached content for one data fingerprint.
type GroupTable struct {
	Fingerprint string
	KeyNames    []string
	Keys        []GroupKey
	KeyCols     []*storage.Column // materialized key columns, aligned with Keys
	states      []*CachedState
	byKey       map[string]int
	index       map[GroupKey]int
}

// NewGroupTable creates an empty group table.
func NewGroupTable(fp string, keyNames []string, keys []GroupKey, keyCols []*storage.Column) *GroupTable {
	gt := &GroupTable{
		Fingerprint: fp,
		KeyNames:    keyNames,
		Keys:        keys,
		KeyCols:     keyCols,
		byKey:       map[string]int{},
		index:       make(map[GroupKey]int, len(keys)),
	}
	for i, k := range keys {
		gt.index[k] = i
	}
	return gt
}

// IndexOf returns the group position of a key.
func (gt *GroupTable) IndexOf(k GroupKey) (int, bool) {
	i, ok := gt.index[k]
	return i, ok
}

// Align reorders values given in the order of keys into this table's
// group order. It fails when the key sets differ.
func (gt *GroupTable) Align(keys []GroupKey, vals []float64) ([]float64, bool) {
	if len(keys) != len(gt.Keys) {
		return nil, false
	}
	out := make([]float64, len(vals))
	for g, k := range keys {
		i, ok := gt.index[k]
		if !ok {
			return nil, false
		}
		out[i] = vals[g]
	}
	return out, true
}

// NumGroups returns the group count.
func (gt *GroupTable) NumGroups() int { return len(gt.Keys) }

// NumStates returns the number of cached states.
func (gt *GroupTable) NumStates() int { return len(gt.states) }

// StateKeys lists cached state keys.
func (gt *GroupTable) StateKeys() []string {
	out := make([]string, len(gt.states))
	for i, s := range gt.states {
		out[i] = s.State.Key()
	}
	return out
}

// AddState inserts or replaces a state's values (length must match) and
// stamps the integrity checksum verified on later lookups.
func (gt *GroupTable) AddState(cs *CachedState) error {
	if len(cs.Vals) != len(gt.Keys) {
		return fmt.Errorf("state %s: %d values for %d groups", cs.State.Key(), len(cs.Vals), len(gt.Keys))
	}
	cs.checksum = ChecksumVals(cs.Vals)
	k := cs.State.Key()
	if i, ok := gt.byKey[k]; ok {
		gt.states[i] = cs
		return nil
	}
	gt.byKey[k] = len(gt.states)
	gt.states = append(gt.states, cs)
	return nil
}

// dropState removes a state by key, rebuilding the key index.
func (gt *GroupTable) dropState(key string) {
	i, ok := gt.byKey[key]
	if !ok {
		return
	}
	gt.states = append(gt.states[:i], gt.states[i+1:]...)
	delete(gt.byKey, key)
	for k, j := range gt.byKey {
		if j > i {
			gt.byKey[k] = j - 1
		}
	}
}

// Exact returns the cached state with the given key.
func (gt *GroupTable) Exact(key string) (*CachedState, bool) {
	if i, ok := gt.byKey[key]; ok {
		return gt.states[i], true
	}
	return nil, false
}

// bytes approximates the memory footprint for eviction accounting.
func (gt *GroupTable) bytes() int64 {
	per := int64(16) // key
	per += int64(len(gt.states)) * 8
	return int64(len(gt.Keys))*per + 1024
}

// ToTable materializes the group table as a storage table (used as a
// materialized aggregate view for query rewriting, §2's V1). State value
// columns are named by stateName.
func (gt *GroupTable) ToTable(name string, stateName func(i int, s *CachedState) string) *storage.Table {
	t := storage.NewTable(name)
	for _, kc := range gt.KeyCols {
		t.AddColumn(kc)
	}
	for i, s := range gt.states {
		col := storage.NewColumn(stateName(i, s), storage.KindFloat)
		col.F = append(col.F, s.Vals...)
		t.AddColumn(col)
	}
	return t
}

// Stats counts cache activity.
type Stats struct {
	Lookups    int64 // state lookup attempts
	ExactHits  int64 // exact state-key hits
	SharedHits int64 // hits via Theorem 4.1 rewritings
	SignHits   int64 // hits via §5.3 sign-split companions
	Misses     int64
	Evictions  int64
	// Corruptions counts cached states dropped because their integrity
	// checksum no longer matched (each is a degradation event: the query
	// fell back to recomputation instead of failing).
	Corruptions int64
}

// Cache is the session-wide state cache with LRU eviction by fingerprint.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*GroupTable
	order    []string // LRU order, most recent last
	maxBytes int64
	curBytes int64
	space    *symbolic.Space
	stats    Stats
	// events records degradation events (corruption fallbacks, injected
	// faults) until drained by the session.
	events []string
}

// New creates a cache with the given byte budget (≤0 means 256 MiB) and
// an optional precomputed symbolic space for fast sharing lookups.
func New(maxBytes int64, space *symbolic.Space) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{entries: map[string]*GroupTable{}, maxBytes: maxBytes, space: space}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// Entry returns the group table for a fingerprint.
func (c *Cache) Entry(fp string) (*GroupTable, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gt, ok := c.entries[fp]
	if ok {
		c.touch(fp)
	}
	return gt, ok
}

// Put inserts or merges a group table; existing states under the same
// fingerprint are kept (states accumulate across queries). Incoming
// state vectors are realigned to the existing entry's group order; if
// the group sets differ (the underlying data changed), the incoming
// table replaces the entry.
func (c *Cache) Put(gt *GroupTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[gt.Fingerprint]; ok {
		c.curBytes -= prev.bytes()
		replaced := false
		for _, s := range gt.states {
			aligned, ok := prev.Align(gt.Keys, s.Vals)
			if !ok {
				replaced = true
				break
			}
			_ = prev.AddState(&CachedState{State: s.State, Vals: aligned, PositiveInput: s.PositiveInput})
		}
		if replaced {
			c.entries[gt.Fingerprint] = gt
			c.curBytes += gt.bytes()
		} else {
			c.curBytes += prev.bytes()
		}
		c.touch(gt.Fingerprint)
		c.evict()
		return
	}
	c.entries[gt.Fingerprint] = gt
	c.order = append(c.order, gt.Fingerprint)
	c.curBytes += gt.bytes()
	c.evict()
}

func (c *Cache) touch(fp string) {
	for i, f := range c.order {
		if f == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

func (c *Cache) evict() {
	for c.curBytes > c.maxBytes && len(c.order) > 1 {
		victim := c.order[0]
		c.order = c.order[1:]
		if gt, ok := c.entries[victim]; ok {
			c.curBytes -= gt.bytes()
			delete(c.entries, victim)
			c.stats.Evictions++
		}
	}
}

// DrainEvents returns and clears accumulated degradation events.
func (c *Cache) DrainEvents() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := c.events
	c.events = nil
	return ev
}

// sweepCorrupt drops every cached state under gt whose values no longer
// match their integrity checksum, recording a degradation event per
// state. The caller holds c.mu.
func (c *Cache) sweepCorrupt(gt *GroupTable) {
	var bad []string
	for _, s := range gt.states {
		if !s.verify() {
			bad = append(bad, s.State.Key())
		}
	}
	if len(bad) == 0 {
		return
	}
	c.curBytes -= gt.bytes()
	for _, key := range bad {
		gt.dropState(key)
		c.stats.Corruptions++
		c.events = append(c.events,
			fmt.Sprintf("cache: state %s under %s failed integrity check; dropped, recomputing from base data", key, gt.Fingerprint))
	}
	c.curBytes += gt.bytes()
}

// Lookup resolves a requested state under a fingerprint: exact match,
// Theorem 4.1 sharing, or §5.3 sign-split reconstruction. On success it
// returns the per-group values (freshly materialized if rewritten).
// Corrupted states (integrity-check failures) are dropped and reported
// as misses, so callers degrade to recomputation rather than failing.
func (c *Cache) Lookup(fp string, want canonical.State, positiveData bool) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	if err := faultinject.Hit(faultinject.PointCacheGet); err != nil {
		c.stats.Misses++
		c.events = append(c.events, "cache: injected fault on get, treated as miss: "+err.Error())
		return nil, false
	}
	gt, ok := c.entries[fp]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.touch(fp)
	c.sweepCorrupt(gt)
	if cs, ok := gt.Exact(want.Key()); ok {
		c.stats.ExactHits++
		return cs.Vals, true
	}
	// Sharing pass: find a cached state the request shares.
	for _, cand := range gt.states {
		if cand.State.Op == canonical.OpCount && want.Op != canonical.OpCount {
			continue
		}
		pos := positiveData || cand.PositiveInput
		// Fast path: the precomputed symbolic digraph.
		if c.space != nil && sameBase(want, cand.State) {
			if r, ok := c.space.ShareVia(want.Op, want.F.NormalizeReal(), cand.State.Op, cand.State.F.NormalizeReal()); ok && pos {
				// Confirm with the verified direct procedure, then apply.
				if _, confirmed := sharing.Share(want, cand.State, pos); confirmed {
					vals := applyScalar(r, cand.Vals)
					c.stats.SharedHits++
					c.storeDerived(gt, want, vals, cand.PositiveInput)
					return vals, true
				}
			}
		}
		if r, ok := sharing.Share(want, cand.State, pos); ok {
			fn, err := r.Compile()
			if err != nil {
				continue
			}
			vals := applyScalar(fn, cand.Vals)
			c.stats.SharedHits++
			c.storeDerived(gt, want, vals, cand.PositiveInput)
			return vals, true
		}
	}
	// Sign-split reconstruction (§5.3): Π b from (Σ ln|b|, Π sgn b);
	// Σ a·ln|b|-shaped states likewise.
	if vals, ok := c.signSplitLookup(gt, want); ok {
		c.stats.SignHits++
		c.storeDerived(gt, want, vals, false)
		return vals, true
	}
	c.stats.Misses++
	return nil, false
}

// storeDerived caches a rewritten state's materialized values so repeated
// requests become exact hits.
func (c *Cache) storeDerived(gt *GroupTable, st canonical.State, vals []float64, pos bool) {
	c.curBytes -= gt.bytes()
	_ = gt.AddState(&CachedState{State: st, Vals: vals, PositiveInput: pos})
	c.curBytes += gt.bytes()
}

func sameBase(a, b canonical.State) bool {
	return a.Base != nil && b.Base != nil && a.Base.String() == b.Base.String()
}

func applyScalar(fn func(float64) float64, in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = fn(v)
	}
	return out
}

// SignSplitStates returns the companion states that must be cached for a
// log/product-family state over a base b that is not provably positive:
// Σ ln|b| and Π sgn(b) (the paper's X̂ translation).
func SignSplitStates(base expr.Node) (lnAbs, sgnProd canonical.State) {
	absBase := expr.Simplify(&expr.Call{Name: "abs", Args: []expr.Node{base}})
	sgnBase := expr.Simplify(&expr.Call{Name: "sgn", Args: []expr.Node{base}})
	lnAbs = canonical.State{
		Op:   canonical.OpSum,
		F:    scalar.NewChain(scalar.LogP(scalar.E)),
		Base: absBase,
	}
	sgnProd = canonical.State{
		Op:   canonical.OpProd,
		F:    scalar.IdentityChain(),
		Base: sgnBase,
	}
	return lnAbs, sgnProd
}

// signSplitLookup reconstructs states from sign-split companions.
func (c *Cache) signSplitLookup(gt *GroupTable, want canonical.State) ([]float64, bool) {
	if want.Op != canonical.OpProd && want.Op != canonical.OpSum {
		return nil, false
	}
	if want.Base == nil {
		return nil, false
	}
	lnAbs, sgnProd := SignSplitStates(want.Base)
	ln, ok1 := gt.Exact(lnAbs.Key())
	sg, ok2 := gt.Exact(sgnProd.Key())
	if !ok1 {
		return nil, false
	}
	f := want.F.NormalizeReal()
	switch want.Op {
	case canonical.OpProd:
		// Π b = sgn-product · exp(Σ ln|b|); Π b^k likewise.
		if !ok2 {
			return nil, false
		}
		if f.IsIdentity() {
			out := make([]float64, len(ln.Vals))
			for i := range out {
				out[i] = sg.Vals[i] * math.Exp(ln.Vals[i])
			}
			return out, true
		}
	case canonical.OpSum:
		// Σ ln(b²) = 2·Σ ln|b| and other even-log shapes: f = ln ∘ b^k
		// with k even means |·| is implicit.
		if len(f.Prims) == 2 &&
			f.Prims[0].Kind == scalar.KPower &&
			f.Prims[1].Kind == scalar.KLog {
			if k, ok := coefOf(f.Prims[0]); ok && k == math.Trunc(k) && int64(k)%2 == 0 {
				out := make([]float64, len(ln.Vals))
				for i := range out {
					out[i] = k * ln.Vals[i]
				}
				return out, true
			}
		}
	}
	return nil, false
}

func coefOf(p scalar.Prim) (float64, bool) {
	v, err := scalar.CEval(p.A, nil)
	return v, err == nil
}

// CorruptEntryForTest flips a bit in every cached state's values under a
// fingerprint without updating checksums — a chaos/testing aid for the
// integrity path. An empty fingerprint corrupts every entry. It returns
// the number of states corrupted; 0 means the fingerprint is absent or
// holds no states (or only empty vectors).
func (c *Cache) CorruptEntryForTest(fp string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for f, gt := range c.entries {
		if fp != "" && f != fp {
			continue
		}
		for _, s := range gt.states {
			if len(s.Vals) == 0 {
				continue
			}
			s.Vals[0] = math.Float64frombits(math.Float64bits(s.Vals[0]) ^ 1)
			n++
		}
	}
	return n
}
